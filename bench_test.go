package gatekeeper

// One benchmark per table and figure of the paper's evaluation section.
// Each bench executes the real code path behind that experiment (generated
// pairs through the kernel / engine / mapper) and reports measured pairs/s
// alongside the modelled paper-scale rate where applicable. `gkbench -exp
// <id>` prints the corresponding full table with paper reference values.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/align"
	"repro/internal/cuda"
	"repro/internal/dna"
	"repro/internal/filter"
	"repro/internal/gkgpu"
	"repro/internal/mapper"
	"repro/internal/ref32"
	"repro/internal/simdata"
)

func benchRNG() *rand.Rand { return rand.New(rand.NewSource(42)) }

func benchPairs(b *testing.B, set string, n int) []gkgpu.Pair {
	b.Helper()
	p, err := simdata.Set(set)
	if err != nil {
		b.Fatal(err)
	}
	return simdata.ToEnginePairs(simdata.Generate(p, 42, n))
}

func benchEngine(b *testing.B, readLen, maxE, nDev int, enc gkgpu.EncodingActor) *gkgpu.Engine {
	b.Helper()
	eng, err := gkgpu.NewEngine(gkgpu.Config{
		ReadLen: readLen, MaxE: maxE, Encoding: enc, MaxBatchPairs: 1 << 14,
	}, cuda.NewUniformContext(nDev, cuda.GTX1080Ti()))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(eng.Close)
	return eng
}

// BenchmarkTable1BatchSize regenerates Table 1's variable: the mapper's
// reads-per-batch setting, whose transfer amortization the modelled filter
// time reflects.
func BenchmarkTable1BatchSize(b *testing.B) {
	g := simdata.Genome(simdata.DefaultGenomeConfig(150_000))
	reads, err := simdata.SimulateReads(g, simdata.Illumina100, 400, 1)
	if err != nil {
		b.Fatal(err)
	}
	seqs := make([][]byte, len(reads))
	for i, r := range reads {
		seqs[i] = r.Seq
	}
	for _, batch := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				eng := benchEngine(b, 100, 5, 1, gkgpu.EncodeOnDevice)
				m, err := mapper.New(g, mapper.Config{
					ReadLen: 100, MaxE: 5, SeedLen: 9, MaxReadsPerBatch: batch, Filter: eng,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, _, err := m.MapReads(seqs, 5); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2Throughput regenerates Table 2's variable: encoding actor
// and error threshold for the 100bp filtering workload.
func BenchmarkTable2Throughput(b *testing.B) {
	pairs := benchPairs(b, "set3", 4_000)
	for _, enc := range []gkgpu.EncodingActor{gkgpu.EncodeOnDevice, gkgpu.EncodeOnHost} {
		for _, e := range []int{2, 5} {
			b.Run(fmt.Sprintf("%v/e%d", enc, e), func(b *testing.B) {
				eng := benchEngine(b, 100, 5, 1, enc)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := eng.FilterPairs(pairs, e); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(len(pairs))*float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
			})
		}
	}
}

// BenchmarkTable3WholeGenome regenerates Table 3's comparison: mapping with
// and without the pre-alignment filter.
func BenchmarkTable3WholeGenome(b *testing.B) {
	g := simdata.Genome(simdata.DefaultGenomeConfig(200_000))
	reads, err := simdata.SimulateReads(g, simdata.Illumina100, 500, 2)
	if err != nil {
		b.Fatal(err)
	}
	seqs := make([][]byte, len(reads))
	for i, r := range reads {
		seqs[i] = r.Seq
	}
	for _, withFilter := range []bool{false, true} {
		name := "nofilter"
		if withFilter {
			name = "gatekeeper-gpu"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := mapper.Config{ReadLen: 100, MaxE: 5, SeedLen: 9}
				if withFilter {
					cfg.Filter = benchEngine(b, 100, 5, 1, gkgpu.EncodeOnDevice)
				}
				m, err := mapper.New(g, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, _, err := m.MapReads(seqs, 5); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable4Verification regenerates Table 4's quantity: banded-DP
// verification cost on unfiltered vs filtered candidate streams.
func BenchmarkTable4Verification(b *testing.B) {
	pairs := benchPairs(b, "set3", 3_000)
	kern := filter.NewKernel(filter.ModeGPU, 100, 5)
	var filtered []gkgpu.Pair
	for _, p := range pairs {
		if kern.Filter(p.Read, p.Ref, 5).Accept {
			filtered = append(filtered, p)
		}
	}
	verify := func(b *testing.B, ps []gkgpu.Pair) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			for _, p := range ps {
				align.DistanceBanded(p.Read, p.Ref, 5)
			}
		}
		b.ReportMetric(float64(len(ps)), "pairs/op")
	}
	b.Run("unfiltered", func(b *testing.B) { verify(b, pairs) })
	b.Run("filtered", func(b *testing.B) { verify(b, filtered) })
}

// BenchmarkTable5Overall regenerates Table 5's quantity: the full mapping
// pipeline (seed + filter + verify) with the filter in place.
func BenchmarkTable5Overall(b *testing.B) {
	g := simdata.Genome(simdata.DefaultGenomeConfig(200_000))
	reads, err := simdata.SimulateReads(g, simdata.Illumina100, 400, 3)
	if err != nil {
		b.Fatal(err)
	}
	seqs := make([][]byte, len(reads))
	for i, r := range reads {
		seqs[i] = r.Seq
	}
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		eng := benchEngine(b, 100, 5, 1, gkgpu.EncodeOnDevice)
		m, err := mapper.New(g, mapper.Config{ReadLen: 100, MaxE: 5, SeedLen: 9, Filter: eng})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, _, err := m.MapReads(seqs, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable6Power regenerates Table 6's quantity: the nvprof-style
// power trace over batched kernels.
func BenchmarkTable6Power(b *testing.B) {
	m := cuda.DefaultCostModel()
	spec := cuda.GTX1080Ti()
	for i := 0; i < b.N; i++ {
		d := cuda.NewDevice(0, spec)
		for _, c := range []struct{ L, e int }{{100, 4}, {250, 10}} {
			w := cuda.Workload{Pairs: 1_000_000, ReadLen: c.L, E: c.e, DeviceEncoded: true}
			for batch := 0; batch < 100; batch++ {
				d.RecordKernel(m.KernelSeconds(spec, w)/100, m.Utilization(spec, w))
			}
		}
		if d.Power().AvgWatts() <= 0 {
			b.Fatal("power trace empty")
		}
	}
}

// BenchmarkKernelFusedVsRef32 times the fused 64-bit kernel against the
// retained 32-bit unfused chain (internal/ref32) on identical defined
// pairs — the reproducible record of this repo's word-widening + fusion
// speedup. Undefined ('N') pairs are dropped so both kernels run the same
// workload. `gkbench -json` writes the same comparison into a
// BENCH_<stamp>.json baseline.
func BenchmarkKernelFusedVsRef32(b *testing.B) {
	for _, c := range []struct {
		set  string
		L, e int
	}{{"set3", 100, 5}, {"set11", 250, 10}} {
		all := benchPairs(b, c.set, 1_000)
		var pairs []gkgpu.Pair
		for _, p := range all {
			if !dna.HasN(p.Read) && !dna.HasN(p.Ref) {
				pairs = append(pairs, p)
			}
		}
		b.Run(fmt.Sprintf("fused/%dbp-e%d", c.L, c.e), func(b *testing.B) {
			kern := filter.NewKernel(filter.ModeGPU, c.L, c.e)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, p := range pairs {
					kern.Filter(p.Read, p.Ref, c.e)
				}
			}
			b.ReportMetric(float64(len(pairs))*float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
		})
		b.Run(fmt.Sprintf("ref32/%dbp-e%d", c.L, c.e), func(b *testing.B) {
			kern := ref32.NewKernel(true, c.L)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, p := range pairs {
					kern.Filter(p.Read, p.Ref, c.e)
				}
			}
			b.ReportMetric(float64(len(pairs))*float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
		})
	}
}

// BenchmarkKernelFilterEncoded isolates the engine's launch-stage hot path:
// pre-encoded words through the fused kernel, no byte encoding. The allocs
// column is the zero-allocation guard in benchmark form (the test-form
// guard is TestFilterEncodedZeroAllocs).
func BenchmarkKernelFilterEncoded(b *testing.B) {
	all := benchPairs(b, "set3", 1_000)
	type encPair struct{ read, ref []uint64 }
	var enc []encPair
	for _, p := range all {
		re, err1 := dna.Encode(p.Read)
		fe, err2 := dna.Encode(p.Ref)
		if err1 != nil || err2 != nil {
			continue
		}
		enc = append(enc, encPair{re, fe})
	}
	kern := filter.NewKernel(filter.ModeGPU, 100, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range enc {
			kern.FilterEncoded(p.read, p.ref, 5)
		}
	}
	b.ReportMetric(float64(len(enc))*float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
}

// BenchmarkFig4Accuracy regenerates Figure 4's hot path: GateKeeper-GPU
// kernel decisions across the threshold grid on Set 3 pairs.
func BenchmarkFig4Accuracy(b *testing.B) {
	pairs := benchPairs(b, "set3", 2_000)
	kern := filter.NewKernel(filter.ModeGPU, 100, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range pairs {
			kern.Filter(p.Read, p.Ref, 5)
		}
	}
	b.ReportMetric(float64(len(pairs))*float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
}

// BenchmarkFig5Comparison regenerates Figure 5's comparison: every filter on
// the same Set 1 pairs.
func BenchmarkFig5Comparison(b *testing.B) {
	pairs := benchPairs(b, "set1", 300)
	for _, f := range filter.All() {
		b.Run(f.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, p := range pairs {
					f.Filter(p.Read, p.Ref, 5)
				}
			}
			b.ReportMetric(float64(len(pairs))*float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
		})
	}
}

// BenchmarkFig6Encoding regenerates Figure 6's variable: the encoding actor.
func BenchmarkFig6Encoding(b *testing.B) {
	pairs := benchPairs(b, "set3", 4_000)
	for _, enc := range []gkgpu.EncodingActor{gkgpu.EncodeOnDevice, gkgpu.EncodeOnHost} {
		b.Run(enc.String(), func(b *testing.B) {
			eng := benchEngine(b, 100, 5, 1, enc)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.FilterPairs(pairs, 4); err != nil {
					b.Fatal(err)
				}
			}
			st := eng.Stats()
			b.ReportMetric(float64(st.Pairs)/st.KernelSeconds/1e6, "modelMpairs/s")
		})
	}
}

// BenchmarkFig7ReadLength regenerates Figure 7's variable: the read length.
func BenchmarkFig7ReadLength(b *testing.B) {
	for _, c := range []struct {
		set string
		L   int
	}{{"set3", 100}, {"set7", 150}, {"set11", 250}} {
		b.Run(fmt.Sprintf("%dbp", c.L), func(b *testing.B) {
			pairs := benchPairs(b, c.set, 1_000)
			kern := filter.NewKernel(filter.ModeGPU, c.L, 4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, p := range pairs {
					kern.Filter(p.Read, p.Ref, 4)
				}
			}
			b.ReportMetric(float64(len(pairs))*float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
		})
	}
}

// BenchmarkFig8MultiGPU regenerates Figure 8's variable: the device count.
func BenchmarkFig8MultiGPU(b *testing.B) {
	pairs := benchPairs(b, "set3", 4_000)
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("gpus%d", n), func(b *testing.B) {
			eng := benchEngine(b, 100, 2, n, gkgpu.EncodeOnHost)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.FilterPairs(pairs, 2); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(pairs))*float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
		})
	}
}

// BenchmarkAblation measures the cost of each kernel design element in
// isolation (the DESIGN.md ablation experiments).
func BenchmarkAblation(b *testing.B) {
	pairs := benchPairs(b, "set3", 1_000)
	variants := []struct {
		name string
		abl  filter.Ablation
	}{
		{"full", filter.Ablation{}},
		{"no-amendment", filter.Ablation{SkipAmendment: true}},
		{"run-counting", filter.Ablation{CountRuns: true}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			kern := filter.NewKernel(filter.ModeGPU, 100, 5)
			kern.SetAblation(v.abl)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, p := range pairs {
					kern.Filter(p.Read, p.Ref, 5)
				}
			}
			b.ReportMetric(float64(len(pairs))*float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
		})
	}
}

// BenchmarkGenASM measures the related-work Bitap filter next to the
// GateKeeper family (Section 2.3 extension).
func BenchmarkGenASM(b *testing.B) {
	pairs := benchPairs(b, "set1", 300)
	g, err := filter.New("genasm")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range pairs {
			g.Filter(p.Read, p.Ref, 5)
		}
	}
	b.ReportMetric(float64(len(pairs))*float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
}

// BenchmarkCandidatePath compares the index-named filtering path (encoded
// reference in unified memory) against materialized pairs.
func BenchmarkCandidatePath(b *testing.B) {
	g := simdata.Genome(simdata.DefaultGenomeConfig(100_000))
	rng := benchRNG()
	var reads [][]byte
	var cands []gkgpu.Candidate
	var pairs []gkgpu.Pair
	for i := 0; i < 50; i++ {
		pos := rng.Intn(len(g) - 100)
		read := append([]byte(nil), g[pos:pos+100]...)
		reads = append(reads, read)
		for c := 0; c < 20; c++ {
			p := rng.Intn(len(g) - 100)
			cands = append(cands, gkgpu.Candidate{ReadID: int64(i), Pos: int64(p)})
			pairs = append(pairs, gkgpu.Pair{Read: read, Ref: g[p : p+100]})
		}
	}
	b.Run("candidates", func(b *testing.B) {
		eng := benchEngine(b, 100, 5, 1, gkgpu.EncodeOnHost)
		if err := eng.SetReference(g); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.FilterCandidates(reads, cands, 5); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pairs", func(b *testing.B) {
		eng := benchEngine(b, 100, 5, 1, gkgpu.EncodeOnHost)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.FilterPairs(pairs, 5); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFigS12Threshold regenerates Sup. Figure S.12's variable: the
// error threshold, on the CPU baseline whose cost is threshold-linear.
func BenchmarkFigS12Threshold(b *testing.B) {
	pairs := benchPairs(b, "set11", 300)
	kern := filter.NewKernel(filter.ModeGPU, 250, 10)
	for _, e := range []int{0, 2, 4, 8, 10} {
		b.Run(fmt.Sprintf("e%d", e), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, p := range pairs {
					kern.Filter(p.Read, p.Ref, e)
				}
			}
			b.ReportMetric(float64(len(pairs))*float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
		})
	}
}
