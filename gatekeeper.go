// Package gatekeeper is the public API of the GateKeeper-GPU reproduction:
// fast and accurate pre-alignment filtering for short read mapping (Bingöl,
// Alser, Mutlu, Ozturk, Alkan — HiCOMB/IPDPSW 2021, arXiv:2103.14978),
// implemented in pure Go on a simulated CUDA runtime.
//
// Three layers are exposed, lowest to highest:
//
//   - Filters: single-pair pre-alignment filters — the paper's improved
//     GateKeeper algorithm plus the five comparators of its evaluation
//     (GateKeeper-FPGA, SHD, MAGNET, Shouji, SneakySnake).
//   - Engines: batched filtering on one or more simulated GPUs with the
//     paper's unified-memory pipeline (system configuration, host/device
//     encoding, prefetching, multi-GPU fan-out) and calibrated kernel/filter
//     time, power, and occupancy telemetry. Two entry points are offered:
//     Engine.FilterPairs, the paper's one-shot round pipeline, and
//     Engine.FilterStream, an asynchronous double-buffered streaming layer —
//     pairs flow in on a channel (many concurrent producers are fine),
//     results flow out in input order, and each device overlaps the host
//     encoding of one batch with the kernel execution of the previous one.
//   - Mapper: an mrFAST-style seed-and-extend read mapper with the engine as
//     its pre-alignment stage, reproducing the whole-genome evaluation.
//
// The exported names are aliases of the implementation packages under
// internal/, so downstream users get the full concrete types through this
// single import.
package gatekeeper

import (
	"io"

	"repro/internal/align"
	"repro/internal/cuda"
	"repro/internal/dna"
	"repro/internal/filter"
	"repro/internal/gkgpu"
	"repro/internal/mapper"
	"repro/internal/simdata"
)

// Version identifies the reproduction release.
const Version = "1.0.0"

// Filtering layer ---------------------------------------------------------

// Filter is a single-pair pre-alignment filter.
type Filter = filter.Filter

// Decision is a filter's verdict on one pair.
type Decision = filter.Decision

// Kernel is the GateKeeper filtration kernel for one fixed geometry (one
// per worker thread, like a CUDA thread's stack frame).
type Kernel = filter.Kernel

// Filter algorithm variants.
const (
	ModeGPU  = filter.ModeGPU
	ModeFPGA = filter.ModeFPGA
)

// NewFilter constructs a filter by name: gatekeeper-gpu, gatekeeper-fpga,
// shd, magnet, shouji, or sneakysnake.
func NewFilter(name string) (Filter, error) { return filter.New(name) }

// AllFilters returns one instance of every implemented filter.
func AllFilters() []Filter { return filter.All() }

// NewKernel builds a GateKeeper kernel for a fixed read length and maximum
// error threshold.
func NewKernel(mode filter.Mode, readLen, maxE int) *Kernel {
	return filter.NewKernel(mode, readLen, maxE)
}

// Engine layer ------------------------------------------------------------

// Pair is one read/candidate-reference-segment input.
type Pair = gkgpu.Pair

// Result is one batched filtration outcome.
type Result = gkgpu.Result

// Engine is the GateKeeper-GPU batched filtering engine.
type Engine = gkgpu.Engine

// CPUEngine is the multicore GateKeeper-CPU baseline.
type CPUEngine = gkgpu.CPUEngine

// EngineConfig parametrizes an Engine (read length and maximum threshold
// mirror the CUDA build's compile-time constants).
type EngineConfig = gkgpu.Config

// EngineStats carries the paper's kernel-time/filter-time measurements.
type EngineStats = gkgpu.Stats

// Setup describes a host platform (Setup1 and Setup2 mirror the paper's).
type Setup = gkgpu.Setup

// Encoding actors: where the 2-bit packing happens.
const (
	EncodeOnDevice = gkgpu.EncodeOnDevice
	EncodeOnHost   = gkgpu.EncodeOnHost
)

// Setup1 returns the paper's primary platform (Xeon Gold + GTX 1080 Ti).
func Setup1() Setup { return gkgpu.Setup1() }

// Setup2 returns the secondary platform (Xeon E5 + Tesla K20X).
func Setup2() Setup { return gkgpu.Setup2() }

// DeviceSpec describes a simulated GPU model.
type DeviceSpec = cuda.DeviceSpec

// GTX1080Ti returns the Setup 1 device model.
func GTX1080Ti() DeviceSpec { return cuda.GTX1080Ti() }

// TeslaK20X returns the Setup 2 device model.
func TeslaK20X() DeviceSpec { return cuda.TeslaK20X() }

// NewEngine builds a GateKeeper-GPU engine on n simulated devices of the
// given model.
func NewEngine(cfg EngineConfig, nDevices int, spec DeviceSpec) (*Engine, error) {
	return gkgpu.NewEngine(cfg, cuda.NewUniformContext(nDevices, spec))
}

// NewCPUEngine builds the GateKeeper-CPU baseline.
func NewCPUEngine(readLen, maxE, cores int) (*CPUEngine, error) {
	return gkgpu.NewCPUEngine(readLen, maxE, cores, gkgpu.Setup1(), cuda.DefaultCostModel())
}

// Mapper layer ------------------------------------------------------------

// Mapper is the mrFAST-style seed-and-extend read mapper.
type Mapper = mapper.Mapper

// MapperConfig parametrizes a mapper, including its optional PreFilter.
type MapperConfig = mapper.Config

// Mapping is one reported alignment, with contig-relative coordinates.
type Mapping = mapper.Mapping

// MapStats carries the whole-genome evaluation counters.
type MapStats = mapper.Stats

// Reference is a multi-contig reference genome: concatenated contig bases
// plus the name/offset/length table the mapper uses to keep every candidate
// window, concordant pair, and SAM record inside one contig.
type Reference = mapper.Reference

// Contig is one named sequence of a Reference.
type Contig = mapper.Contig

// SeqRecord is a named sequence parsed from FASTA/FASTQ input (dna.Record).
type SeqRecord = dna.Record

// NewReference builds a multi-contig Reference from FASTA records, e.g.
// the output of ReadFASTA over a whole-genome file.
func NewReference(recs []SeqRecord) (*Reference, error) { return mapper.NewReference(recs) }

// ReadFASTA parses FASTA records (multi-contig references included) with no
// line-length limit; headers split into id and description.
func ReadFASTA(r io.Reader) ([]SeqRecord, error) { return dna.ReadFASTA(r) }

// NewMapper builds a mapper over a flat single-contig reference sequence.
func NewMapper(ref []byte, cfg MapperConfig) (*Mapper, error) { return mapper.New(ref, cfg) }

// NewMapperFromReference builds a mapper over a multi-contig reference.
func NewMapperFromReference(ref *Reference, cfg MapperConfig) (*Mapper, error) {
	return mapper.NewFromReference(ref, cfg)
}

// Performance model ---------------------------------------------------------

// CostModel holds the calibrated performance-model constants used for
// kernel-time, filter-time and power telemetry.
type CostModel = cuda.CostModel

// Workload describes a filtering batch for the cost model.
type Workload = cuda.Workload

// DefaultCostModel returns the constants calibrated against the paper's
// Setup 1 measurements.
func DefaultCostModel() CostModel { return cuda.DefaultCostModel() }

// Ground truth and data ---------------------------------------------------

// EditDistance returns the exact global edit distance (the Edlib-equivalent
// ground truth of every accuracy experiment).
func EditDistance(a, b []byte) int { return align.Distance(a, b) }

// DatasetProfile describes one of the paper's evaluation datasets.
type DatasetProfile = simdata.Profile

// Dataset returns a registered dataset profile (set1..set12, minimap2,
// bwamem).
func Dataset(name string) (DatasetProfile, error) { return simdata.Set(name) }

// GeneratePairs synthesizes n pairs from a dataset profile.
func GeneratePairs(p DatasetProfile, seed int64, n int) []Pair {
	return simdata.ToEnginePairs(simdata.Generate(p, seed, n))
}
