// Multi-GPU: scale GateKeeper-GPU from one to eight simulated GTX 1080 Ti
// devices and watch kernel-time throughput grow — Figure 8 in miniature,
// for both encoding actors. A real filtering run on multiple simulated
// devices backs the numbers; throughput itself is modelled at the paper's
// 30M-pair scale where compute dominates launch overhead.
//
// Run with: go run ./examples/multigpu
package main

import (
	"fmt"
	"log"

	gatekeeper "repro"
)

func main() {
	profile, err := gatekeeper.Dataset("set3")
	if err != nil {
		log.Fatal(err)
	}
	pairs := gatekeeper.GeneratePairs(profile, 5, 4_000)
	const e = 2

	// Real execution across simulated devices: decisions must not depend on
	// the device count.
	var firstRejects int64
	for _, n := range []int{1, 8} {
		eng, err := gatekeeper.NewEngine(gatekeeper.EngineConfig{
			ReadLen: 100, MaxE: e, MaxBatchPairs: 1 << 14,
		}, n, gatekeeper.GTX1080Ti())
		if err != nil {
			log.Fatal(err)
		}
		if _, err := eng.FilterPairs(pairs, e); err != nil {
			log.Fatal(err)
		}
		st := eng.Stats()
		if n == 1 {
			firstRejects = st.Rejected
		} else if st.Rejected != firstRejects {
			log.Fatalf("device count changed decisions: %d vs %d rejects", st.Rejected, firstRejects)
		}
		fmt.Printf("real run on %d device(s): %d pairs, %d rejected\n", n, st.Pairs, st.Rejected)
		eng.Close()
	}

	// Modelled throughput at paper scale (30M pairs, 100bp, e=2).
	model := gatekeeper.DefaultCostModel()
	spec := gatekeeper.GTX1080Ti()
	fmt.Println("\nKernel-time throughput vs device count (30M pairs, 100bp, e=2):")
	fmt.Printf("%5s  %18s  %18s\n", "GPUs", "device-encoded", "host-encoded")
	for _, n := range []int{1, 2, 4, 8} {
		var cells []string
		for _, deviceEncoded := range []bool{true, false} {
			w := gatekeeper.Workload{Pairs: 30_000_000, ReadLen: 100, E: e, DeviceEncoded: deviceEncoded}
			kt := model.MultiGPUKernelSeconds(spec, w, n)
			cells = append(cells, fmt.Sprintf("%10.0f M/s", 30_000_000/kt/1e6))
		}
		fmt.Printf("%5d  %18s  %18s\n", n, cells[0], cells[1])
	}
	fmt.Println("\nExpected shape (paper Figure 8): host-encoded kernels scale near-linearly")
	fmt.Println("(199 -> 1333 M/s in the paper); device-encoded scaling is flatter (102 -> 496 M/s).")
}
