// Quickstart: filter a handful of read/candidate pairs with GateKeeper-GPU
// and see which would have wasted verification work.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	gatekeeper "repro"
)

func main() {
	// One engine per (read length, max threshold) geometry — these mirror
	// the CUDA build's compile-time constants.
	eng, err := gatekeeper.NewEngine(gatekeeper.EngineConfig{
		ReadLen: 100,
		MaxE:    5,
	}, 1, gatekeeper.GTX1080Ti())
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// A dataset profile from the paper's evaluation: mrFAST candidates for
	// 100bp reads at threshold 5 (Set 3).
	profile, err := gatekeeper.Dataset("set3")
	if err != nil {
		log.Fatal(err)
	}
	pairs := gatekeeper.GeneratePairs(profile, 1, 10)

	results, err := eng.FilterPairs(pairs, 5)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("pair  filter   estimate  exact-distance  verdict")
	for i, r := range results {
		exact := gatekeeper.EditDistance(pairs[i].Read, pairs[i].Ref)
		verdict := "correct reject"
		switch {
		case r.Accept && exact <= 5:
			verdict = "true accept"
		case r.Accept && exact > 5:
			verdict = "false accept (verification will discard)"
		case !r.Accept && exact <= 5:
			verdict = "FALSE REJECT (should never happen)"
		}
		fmt.Printf("%4d  %-7v  %8d  %14d  %s\n", i, r.Accept, r.Estimate, exact, verdict)
	}

	st := eng.Stats()
	fmt.Printf("\n%d pairs: %d rejected before alignment (%.0f%% of the DP work saved)\n",
		st.Pairs, st.Rejected, 100*st.RejectionRate())
	fmt.Printf("modelled kernel time %.2fus, end-to-end filter time %.2fus\n",
		st.KernelSeconds*1e6, st.FilterSeconds*1e6)
}
