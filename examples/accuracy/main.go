// Accuracy: compare all six pre-alignment filters against the exact edit
// distance on one of the paper's dataset profiles — a miniature of Figure 5.
//
// Run with: go run ./examples/accuracy
package main

import (
	"fmt"
	"log"

	gatekeeper "repro"
)

func main() {
	profile, err := gatekeeper.Dataset("set1") // 100bp low-edit profile
	if err != nil {
		log.Fatal(err)
	}
	pairs := gatekeeper.GeneratePairs(profile, 99, 2_000)
	const e = 5

	// Ground truth once per pair.
	within := make([]bool, len(pairs))
	rejects := 0
	for i, p := range pairs {
		within[i] = gatekeeper.EditDistance(p.Read, p.Ref) <= e
		if !within[i] {
			rejects++
		}
	}
	fmt.Printf("%d pairs at e=%d; exact alignment rejects %d\n\n", len(pairs), e, rejects)
	fmt.Printf("%-16s %13s %13s %9s\n", "filter", "false accepts", "false rejects", "FA rate")

	genasm, err := gatekeeper.NewFilter("genasm")
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range append(gatekeeper.AllFilters(), genasm) {
		fa, fr := 0, 0
		for i, p := range pairs {
			accept := f.Filter(p.Read, p.Ref, e).Accept
			switch {
			case accept && !within[i]:
				fa++
			case !accept && within[i]:
				fr++
			}
		}
		fmt.Printf("%-16s %13d %13d %8.2f%%\n", f.Name(), fa, fr, 100*float64(fa)/float64(rejects))
	}

	fmt.Println("\nExpected ordering (paper Figure 5): SneakySnake & MAGNET lowest,")
	fmt.Println("then Shouji, then GateKeeper-GPU, with GateKeeper-FPGA == SHD highest.")
}
