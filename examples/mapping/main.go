// Mapping: the paper's whole-genome scenario end to end — simulate a
// repeat-rich genome and an Illumina-like read set, then map the reads with
// and without GateKeeper-GPU pre-alignment filtering and compare the
// verification workload (Table 3's experiment in miniature).
//
// Run with: go run ./examples/mapping
package main

import (
	"fmt"
	"log"
	"math/rand"

	gatekeeper "repro"
)

const (
	genomeLen = 300_000
	nReads    = 1_500
	readLen   = 100
	threshold = 5
)

func main() {
	// Synthesize a repeat-rich reference and sample error-bearing reads.
	rng := rand.New(rand.NewSource(11))
	genome := makeGenome(rng, genomeLen)
	reads := sampleReads(rng, genome, nReads)

	// Pass 1: no pre-alignment filter — every candidate is verified.
	noFilter, err := gatekeeper.NewMapper(genome, gatekeeper.MapperConfig{
		ReadLen: readLen, MaxE: threshold, SeedLen: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	baseMappings, baseStats, err := noFilter.MapReads(reads, threshold)
	if err != nil {
		log.Fatal(err)
	}

	// Pass 2: GateKeeper-GPU between seeding and verification.
	eng, err := gatekeeper.NewEngine(gatekeeper.EngineConfig{
		ReadLen: readLen, MaxE: threshold,
	}, 1, gatekeeper.GTX1080Ti())
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	withFilter, err := gatekeeper.NewMapper(genome, gatekeeper.MapperConfig{
		ReadLen: readLen, MaxE: threshold, SeedLen: 8, Filter: eng,
	})
	if err != nil {
		log.Fatal(err)
	}
	filtMappings, filtStats, err := withFilter.MapReads(reads, threshold)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %15s %15s\n", "", "no filter", "GateKeeper-GPU")
	fmt.Printf("%-22s %15d %15d\n", "candidate mappings", baseStats.CandidatePairs, filtStats.CandidatePairs)
	fmt.Printf("%-22s %15d %15d\n", "verification pairs", baseStats.VerificationPairs, filtStats.VerificationPairs)
	fmt.Printf("%-22s %15s %15d\n", "rejected pairs", "-", filtStats.RejectedPairs)
	fmt.Printf("%-22s %15d %15d\n", "mappings", len(baseMappings), len(filtMappings))
	fmt.Printf("%-22s %15d %15d\n", "mapped reads", baseStats.MappedReads, filtStats.MappedReads)
	fmt.Printf("%-22s %14.3fs %14.3fs\n", "verification time", baseStats.VerifySeconds, filtStats.VerifySeconds)
	fmt.Printf("\nfilter removed %.0f%% of the verification workload; mappings identical: %v\n",
		100*filtStats.Reduction(), len(baseMappings) == len(filtMappings))
}

// makeGenome builds a random reference with planted repeats so seeding
// yields multiple candidate locations per read, like a real genome.
func makeGenome(rng *rand.Rand, n int) []byte {
	bases := []byte("ACGT")
	g := make([]byte, n)
	for i := range g {
		g[i] = bases[rng.Intn(4)]
	}
	// Stamp a few diverged copies of one 500bp unit.
	unit := append([]byte(nil), g[1000:1500]...)
	for c := 0; c < n/5000; c++ {
		dst := rng.Intn(n - 500)
		for i, b := range unit {
			if rng.Float64() < 0.02 {
				g[dst+i] = bases[rng.Intn(4)]
			} else {
				g[dst+i] = b
			}
		}
	}
	return g
}

// sampleReads draws reads from the genome with a 1% substitution rate.
func sampleReads(rng *rand.Rand, genome []byte, n int) [][]byte {
	bases := []byte("ACGT")
	reads := make([][]byte, n)
	for i := range reads {
		pos := rng.Intn(len(genome) - readLen)
		r := append([]byte(nil), genome[pos:pos+readLen]...)
		for p := range r {
			if rng.Float64() < 0.01 {
				r[p] = bases[rng.Intn(4)]
			}
		}
		reads[i] = r
	}
	return reads
}
