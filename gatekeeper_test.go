package gatekeeper

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/dna"
)

// These tests exercise the public facade end to end — the same calls a
// downstream user would make.

func TestPublicFilterRoundTrip(t *testing.T) {
	f, err := NewFilter("gatekeeper-gpu")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	read := dna.RandomSeq(rng, 100)
	if d := f.Filter(read, read, 2); !d.Accept {
		t.Fatal("exact match rejected")
	}
	other := dna.RandomSeq(rng, 100)
	if d := f.Filter(read, other, 2); d.Accept {
		t.Fatal("random pair accepted at e=2")
	}
	if len(AllFilters()) != 6 {
		t.Fatal("AllFilters should expose the six filters of the paper")
	}
}

func TestPublicKernel(t *testing.T) {
	k := NewKernel(ModeGPU, 100, 5)
	rng := rand.New(rand.NewSource(2))
	read := dna.RandomSeq(rng, 100)
	mutated := dna.MutateSubstitutions(rng, read, 3)
	d := k.Filter(read, mutated, 5)
	if !d.Accept || d.Estimate > 5 {
		t.Fatalf("3 substitutions at e=5: %+v", d)
	}
}

func TestPublicEngineEndToEnd(t *testing.T) {
	eng, err := NewEngine(EngineConfig{ReadLen: 100, MaxE: 5, MaxBatchPairs: 512}, 2, GTX1080Ti())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	profile, err := Dataset("set3")
	if err != nil {
		t.Fatal(err)
	}
	pairs := GeneratePairs(profile, 3, 400)
	res, err := eng.FilterPairs(pairs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 400 {
		t.Fatalf("got %d results", len(res))
	}
	// No false rejects against the public ground truth.
	for i, p := range pairs {
		if EditDistance(p.Read, p.Ref) <= 5 && !res[i].Accept {
			t.Fatalf("false reject at pair %d", i)
		}
	}
	st := eng.Stats()
	if st.Pairs != 400 || st.KernelSeconds <= 0 {
		t.Fatalf("engine stats implausible: %+v", st)
	}
}

func TestPublicStreamMatchesOneShotOnAllSets(t *testing.T) {
	// Acceptance: FilterStream returns byte-identical decisions to
	// FilterPairs, in input order, on every seeded evaluation dataset.
	for _, set := range []string{"set1", "set2", "set3", "set4", "set5", "set6",
		"set7", "set8", "set9", "set10", "set11", "set12"} {
		profile, err := Dataset(set)
		if err != nil {
			t.Fatal(err)
		}
		pairs := GeneratePairs(profile, 9, 300)
		e := profile.ReadLen / 20
		cfg := EngineConfig{ReadLen: profile.ReadLen, MaxE: e, Encoding: EncodeOnHost,
			MaxBatchPairs: 128, StreamBatchPairs: 64}
		oneShot, err := NewEngine(cfg, 2, GTX1080Ti())
		if err != nil {
			t.Fatal(err)
		}
		want, err := oneShot.FilterPairs(pairs, e)
		oneShot.Close()
		if err != nil {
			t.Fatal(err)
		}
		stream, err := NewEngine(cfg, 2, GTX1080Ti())
		if err != nil {
			t.Fatal(err)
		}
		in := make(chan Pair, len(pairs))
		for _, p := range pairs {
			in <- p
		}
		close(in)
		out, err := stream.FilterStream(context.Background(), in, e)
		if err != nil {
			stream.Close()
			t.Fatal(err)
		}
		i := 0
		for r := range out {
			if r != want[i] {
				t.Fatalf("%s pair %d: stream %+v one-shot %+v", set, i, r, want[i])
			}
			i++
		}
		stream.Close()
		if i != len(want) {
			t.Fatalf("%s: stream returned %d of %d results", set, i, len(want))
		}
	}
}

func TestPublicCPUEngine(t *testing.T) {
	cpu, err := NewCPUEngine(100, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	profile, _ := Dataset("set1")
	pairs := GeneratePairs(profile, 4, 100)
	res, err := cpu.FilterPairs(pairs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 100 {
		t.Fatal("result length mismatch")
	}
}

func TestPublicMapper(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	genome := dna.RandomSeq(rng, 60_000)
	eng, err := NewEngine(EngineConfig{ReadLen: 100, MaxE: 4, MaxBatchPairs: 1024}, 1, GTX1080Ti())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	m, err := NewMapper(genome, MapperConfig{ReadLen: 100, MaxE: 4, Filter: eng})
	if err != nil {
		t.Fatal(err)
	}
	var reads [][]byte
	for i := 0; i < 30; i++ {
		pos := rng.Intn(len(genome) - 100)
		reads = append(reads, dna.MutateSubstitutions(rng, genome[pos:pos+100], 2))
	}
	mappings, st, err := m.MapReads(reads, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.MappedReads != int64(len(reads)) {
		t.Fatalf("only %d/%d reads mapped", st.MappedReads, len(reads))
	}
	if len(mappings) == 0 {
		t.Fatal("no mappings")
	}
}

func TestPublicSetups(t *testing.T) {
	if Setup1().Name == "" || Setup2().Name == "" {
		t.Fatal("setups incomplete")
	}
	if GTX1080Ti().Cores() != 3584 || TeslaK20X().Cores() != 2688 {
		t.Fatal("device models wrong")
	}
	if Version == "" {
		t.Fatal("version empty")
	}
	if _, err := Dataset("never"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if _, err := NewFilter("never"); err == nil {
		t.Fatal("unknown filter accepted")
	}
}

func TestEncodingActorsExposed(t *testing.T) {
	if EncodeOnDevice == EncodeOnHost {
		t.Fatal("encoding actors must differ")
	}
	eng, err := NewEngine(EngineConfig{ReadLen: 100, MaxE: 3, Encoding: EncodeOnHost,
		MaxBatchPairs: 256}, 1, TeslaK20X())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	profile, _ := Dataset("set1")
	if _, err := eng.FilterPairs(GeneratePairs(profile, 6, 50), 3); err != nil {
		t.Fatal(err)
	}
}
