package bitvec

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dna"
)

// refMaskFromString builds a mask from a '0'/'1' string, position 0 first.
func refMaskFromString(s string) []uint64 {
	mask := make([]uint64, MaskWords(len(s)))
	for i, c := range s {
		if c == '1' {
			SetBit(mask, i)
		}
	}
	return mask
}

func TestWordsHelpers(t *testing.T) {
	if EncodedWords(100) != 4 {
		t.Fatalf("EncodedWords(100) = %d, want 4", EncodedWords(100))
	}
	if MaskWords(100) != 2 {
		t.Fatalf("MaskWords(100) = %d, want 2", MaskWords(100))
	}
	if EncodedWords(250) != 8 || MaskWords(250) != 4 {
		t.Fatalf("250bp sizing: enc=%d mask=%d", EncodedWords(250), MaskWords(250))
	}
	if MaskWords(0) != 0 || EncodedWords(0) != 0 {
		t.Fatal("zero-length sizing wrong")
	}
}

func TestShiftCharsUpAgainstDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{10, 32, 33, 100, 250} {
		seq := dna.RandomSeq(rng, n)
		words, err := dna.Encode(seq)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{0, 1, 2, 3, 7, 31, 32, 33} {
			if k > n {
				continue
			}
			dst := make([]uint64, len(words))
			ShiftCharsUp(dst, words, k)
			got := dna.Decode(dst, n)
			for i := 0; i < n; i++ {
				want := byte('A') // vacated positions decode as code 00
				if i-k >= 0 {
					want = seq[i-k]
				}
				if got[i] != want {
					t.Fatalf("n=%d k=%d pos=%d: got %c want %c", n, k, i, got[i], want)
				}
			}
		}
	}
}

func TestShiftCharsDownAgainstDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{10, 32, 33, 100, 250} {
		seq := dna.RandomSeq(rng, n)
		words, err := dna.Encode(seq)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{0, 1, 2, 3, 7, 31, 32, 33} {
			if k > n {
				continue
			}
			dst := make([]uint64, len(words))
			ShiftCharsDown(dst, words, k)
			got := dna.Decode(dst, n)
			for i := 0; i < n; i++ {
				want := byte('A')
				if i+k < n {
					want = seq[i+k]
				}
				if got[i] != want {
					t.Fatalf("n=%d k=%d pos=%d: got %c want %c", n, k, i, got[i], want)
				}
			}
		}
	}
}

func TestShiftRoundTrip(t *testing.T) {
	// Shifting up then down by the same k must restore all but the k lowest
	// characters.
	rng := rand.New(rand.NewSource(3))
	seq := dna.RandomSeq(rng, 150)
	words, _ := dna.Encode(seq)
	up := make([]uint64, len(words))
	back := make([]uint64, len(words))
	for k := 0; k <= 10; k++ {
		ShiftCharsUp(up, words, k)
		ShiftCharsDown(back, up, k)
		got := dna.Decode(back, 150)
		for i := 0; i < 150-k; i++ {
			if got[i] != seq[i] {
				t.Fatalf("k=%d pos=%d: round trip lost data", k, i)
			}
		}
	}
}

func TestExtractChars(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	ref := dna.RandomSeq(rng, 500)
	refEnc, err := dna.Encode(ref)
	if err != nil {
		t.Fatal(err)
	}
	for _, start := range []int{0, 1, 7, 31, 32, 33, 100, 399, 400} {
		for _, n := range []int{1, 32, 100, 33} {
			if start+n > len(ref) {
				continue
			}
			dst := make([]uint64, EncodedWords(n))
			ExtractChars(dst, refEnc, start, n)
			got := dna.Decode(dst, n)
			if string(got) != string(ref[start:start+n]) {
				t.Fatalf("ExtractChars(start=%d n=%d) = %q, want %q", start, n, got, ref[start:start+n])
			}
		}
	}
}

func TestExtractCharsPaddingZeroed(t *testing.T) {
	src := []uint64{^uint64(0), ^uint64(0)}
	dst := make([]uint64, 1)
	ExtractChars(dst, src, 3, 5) // 5 chars -> 10 bits used
	if dst[0]>>10 != 0 {
		t.Fatalf("padding bits leaked: %#x", dst[0])
	}
}

func TestExtractCharsQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ref := dna.RandomSeq(rng, 300)
	refEnc, _ := dna.Encode(ref)
	f := func(startRaw, nRaw uint16) bool {
		n := int(nRaw)%150 + 1
		start := int(startRaw) % (300 - n)
		dst := make([]uint64, EncodedWords(n))
		ExtractChars(dst, refEnc, start, n)
		return string(dna.Decode(dst, n)) == string(ref[start:start+n])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCollapseMatchesPerCharComparison(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{5, 32, 33, 100, 150, 250} {
		a := dna.RandomSeq(rng, n)
		b := dna.MutateSubstitutions(rng, a, n/10+1)
		wa, _ := dna.Encode(a)
		wb, _ := dna.Encode(b)
		x := make([]uint64, len(wa))
		XorInto(x, wa, wb)
		mask := make([]uint64, MaskWords(n))
		Collapse(mask, x)
		for i := 0; i < n; i++ {
			want := a[i] != b[i]
			if Bit(mask, i) != want {
				t.Fatalf("n=%d pos=%d: mask=%v want %v", n, i, Bit(mask, i), want)
			}
		}
	}
}

func TestCollapsePairMatchesCollapse(t *testing.T) {
	f := func(lo, hi uint64) bool {
		dst := make([]uint64, 1)
		Collapse(dst, []uint64{lo, hi})
		return dst[0] == CollapsePair(lo, hi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLogicOps(t *testing.T) {
	a := []uint64{0b1100, 0xFFFF0000FFFF0000}
	b := []uint64{0b1010, 0x0F0F0F0F0F0F0F0F}
	dst := make([]uint64, 2)
	AndInto(dst, a, b)
	if dst[0] != 0b1000 || dst[1] != 0x0F0F00000F0F0000 {
		t.Fatalf("AndInto = %#x %#x", dst[0], dst[1])
	}
	OrInto(dst, a, b)
	if dst[0] != 0b1110 || dst[1] != 0xFFFF0F0FFFFF0F0F {
		t.Fatalf("OrInto = %#x %#x", dst[0], dst[1])
	}
	XorInto(dst, a, b)
	if dst[0] != 0b0110 || dst[1] != 0xF0F00F0FF0F00F0F {
		t.Fatalf("XorInto = %#x %#x", dst[0], dst[1])
	}
}

func TestSetLeadingOnes(t *testing.T) {
	for _, k := range []int{0, 1, 5, 63, 64, 65, 128, 140} {
		mask := make([]uint64, 3)
		SetLeadingOnes(mask, k)
		for i := 0; i < 192; i++ {
			want := i < k
			if Bit(mask, i) != want {
				t.Fatalf("k=%d bit %d = %v, want %v", k, i, Bit(mask, i), want)
			}
		}
	}
}

func TestSetTrailingOnes(t *testing.T) {
	for _, n := range []int{10, 64, 65, 140, 192} {
		for _, k := range []int{0, 1, 5, 64, 80, 200} {
			mask := make([]uint64, 3)
			SetTrailingOnes(mask, n, k)
			kk := k
			if kk > n {
				kk = n
			}
			for i := 0; i < n; i++ {
				want := i >= n-kk
				if Bit(mask, i) != want {
					t.Fatalf("n=%d k=%d bit %d = %v, want %v", n, k, i, Bit(mask, i), want)
				}
			}
			for i := n; i < 192; i++ {
				if Bit(mask, i) {
					t.Fatalf("n=%d k=%d: bit %d beyond n set", n, k, i)
				}
			}
		}
	}
}

func TestClearLeading(t *testing.T) {
	for _, k := range []int{0, 1, 5, 63, 64, 65, 128, 140} {
		mask := []uint64{^uint64(0), ^uint64(0), ^uint64(0)}
		ClearLeading(mask, k)
		for i := 0; i < 192; i++ {
			want := i >= k
			if Bit(mask, i) != want {
				t.Fatalf("k=%d bit %d = %v, want %v", k, i, Bit(mask, i), want)
			}
		}
	}
}

func TestClearTrailing(t *testing.T) {
	for _, n := range []int{10, 64, 65, 140, 192} {
		for _, k := range []int{0, 1, 5, 64, 80, 200} {
			mask := []uint64{^uint64(0), ^uint64(0), ^uint64(0)}
			ClearTrailing(mask, n, k)
			kk := k
			if kk > n {
				kk = n
			}
			for i := 0; i < n; i++ {
				want := i < n-kk
				if Bit(mask, i) != want {
					t.Fatalf("n=%d k=%d bit %d = %v, want %v", n, k, i, Bit(mask, i), want)
				}
			}
		}
	}
}

func TestClearTail(t *testing.T) {
	mask := []uint64{^uint64(0), ^uint64(0), ^uint64(0)}
	ClearTail(mask, 70)
	for i := 0; i < 70; i++ {
		if !Bit(mask, i) {
			t.Fatalf("bit %d cleared inside range", i)
		}
	}
	for i := 70; i < 192; i++ {
		if Bit(mask, i) {
			t.Fatalf("bit %d set beyond range", i)
		}
	}
}

// refAmend is the obvious O(n) reference implementation of the amendment.
func refAmend(s string) string {
	out := []byte(s)
	n := len(s)
	for i := 0; i < n; i++ {
		if s[i] != '0' {
			continue
		}
		// Zero run starting at i.
		j := i
		for j < n && s[j] == '0' {
			j++
		}
		runLen := j - i
		leftOne := i-1 >= 0 && s[i-1] == '1'
		rightOne := j < n && s[j] == '1'
		if runLen <= 2 && leftOne && rightOne {
			for p := i; p < j; p++ {
				out[p] = '1'
			}
		}
		i = j - 1
	}
	return string(out)
}

func TestAmendAgainstReference(t *testing.T) {
	cases := []string{
		"101",
		"1001",
		"10001",
		"0101",
		"1010",
		"110011",
		"1100011",
		"11000011",
		"000",
		"111",
		"1",
		"0",
		"10",
		"01",
		"1011101",
		"100110011001",
	}
	for _, s := range cases {
		mask := refMaskFromString(s)
		dst := make([]uint64, len(mask))
		Amend(dst, mask, len(s))
		if got := String(dst, len(s)); got != refAmend(s) {
			t.Errorf("Amend(%s) = %s, want %s", s, got, refAmend(s))
		}
	}
}

func TestAmendQuick(t *testing.T) {
	f := func(raw []byte, nRaw uint8) bool {
		n := int(nRaw)%200 + 1
		var sb strings.Builder
		for i := 0; i < n; i++ {
			if i < len(raw) && raw[i]%2 == 1 {
				sb.WriteByte('1')
			} else {
				sb.WriteByte('0')
			}
		}
		s := sb.String()
		mask := refMaskFromString(s)
		dst := make([]uint64, len(mask))
		Amend(dst, mask, n)
		return String(dst, n) == refAmend(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAmendCrossesWordBoundary(t *testing.T) {
	// A single zero exactly at a 64-bit word boundary must still be filled.
	s := strings.Repeat("1", 63) + "0" + strings.Repeat("1", 10)
	mask := refMaskFromString(s)
	dst := make([]uint64, len(mask))
	Amend(dst, mask, len(s))
	if got := String(dst, len(s)); got != strings.Repeat("1", 74) {
		t.Fatalf("boundary fill failed: %s", got)
	}
	// Double zero straddling the boundary.
	s = strings.Repeat("1", 63) + "00" + strings.Repeat("1", 10)
	mask = refMaskFromString(s)
	dst = make([]uint64, len(mask))
	Amend(dst, mask, len(s))
	if got := String(dst, len(s)); got != strings.Repeat("1", 75) {
		t.Fatalf("double boundary fill failed: %s", got)
	}
}

func refCountRuns(s string) int {
	count := 0
	prev := byte('0')
	for i := 0; i < len(s); i++ {
		if s[i] == '1' && prev == '0' {
			count++
		}
		prev = s[i]
	}
	return count
}

func TestCountRunsKnown(t *testing.T) {
	cases := map[string]int{
		"":            0,
		"0":           0,
		"1":           1,
		"101":         2,
		"111":         1,
		"0110":        1,
		"10101":       3,
		"1111111":     1,
		"00100100100": 3,
	}
	for s, want := range cases {
		mask := refMaskFromString(s)
		if got := CountRuns(mask, len(s)); got != want {
			t.Errorf("CountRuns(%q) = %d, want %d", s, got, want)
		}
		if got := CountRunsLUT(mask, len(s)); got != want {
			t.Errorf("CountRunsLUT(%q) = %d, want %d", s, got, want)
		}
	}
}

func TestCountRunsLUTAgreesWithBitTrick(t *testing.T) {
	f := func(raw []byte, nRaw uint8) bool {
		n := int(nRaw)%200 + 1
		mask := make([]uint64, MaskWords(n))
		for i := 0; i < n; i++ {
			if i < len(raw) && raw[i]%2 == 1 {
				SetBit(mask, i)
			}
		}
		return CountRuns(mask, n) == CountRunsLUT(mask, n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestCountRunsAcrossWordBoundary(t *testing.T) {
	// One run spanning bits 62..66 must count once.
	mask := make([]uint64, 2)
	for i := 62; i <= 66; i++ {
		SetBit(mask, i)
	}
	if got := CountRuns(mask, 128); got != 1 {
		t.Fatalf("spanning run counted %d times", got)
	}
	if got := CountRunsLUT(mask, 128); got != 1 {
		t.Fatalf("LUT spanning run counted %d times", got)
	}
}

// refCountWindows is the per-character reference for the windowed counter.
func refCountWindows(s string) int {
	count := 0
	for i := 0; i < len(s); i += 4 {
		hi := i + 4
		if hi > len(s) {
			hi = len(s)
		}
		if strings.Contains(s[i:hi], "1") {
			count++
		}
	}
	return count
}

func TestCountWindowsAgainstReference(t *testing.T) {
	f := func(raw []byte, nRaw uint8) bool {
		n := int(nRaw)%200 + 1
		var sb strings.Builder
		for i := 0; i < n; i++ {
			if i < len(raw) && raw[i]%2 == 1 {
				sb.WriteByte('1')
			} else {
				sb.WriteByte('0')
			}
		}
		s := sb.String()
		mask := refMaskFromString(s)
		return CountWindowsLUT(mask, n) == refCountWindows(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestOnesCount(t *testing.T) {
	mask := refMaskFromString("110100111")
	if got := OnesCount(mask, 9); got != 6 {
		t.Fatalf("OnesCount = %d, want 6", got)
	}
	if got := OnesCount(mask, 3); got != 2 {
		t.Fatalf("OnesCount prefix = %d, want 2", got)
	}
	big := []uint64{^uint64(0), ^uint64(0)}
	if got := OnesCount(big, 80); got != 80 {
		t.Fatalf("OnesCount(80 of ones) = %d", got)
	}
}

// refLongestZeroRun is the bit-by-bit oracle the word-at-a-time scan must
// reproduce exactly (same start on ties: first longest wins).
func refLongestZeroRun(mask []uint64, lo, hi int) (start, length int) {
	bestStart, bestLen := lo, 0
	curStart, curLen := lo, 0
	for i := lo; i < hi; i++ {
		if mask[i/64]>>(uint(i%64))&1 == 0 {
			if curLen == 0 {
				curStart = i
			}
			curLen++
			if curLen > bestLen {
				bestStart, bestLen = curStart, curLen
			}
		} else {
			curLen = 0
		}
	}
	return bestStart, bestLen
}

func TestLongestZeroRun(t *testing.T) {
	mask := refMaskFromString("1100011110000001")
	start, length := LongestZeroRun(mask, 0, 16)
	if start != 9 || length != 6 {
		t.Fatalf("LongestZeroRun = (%d,%d), want (9,6)", start, length)
	}
	start, length = LongestZeroRun(mask, 0, 7)
	if start != 2 || length != 3 {
		t.Fatalf("LongestZeroRun prefix = (%d,%d), want (2,3)", start, length)
	}
	_, length = LongestZeroRun(refMaskFromString("1111"), 0, 4)
	if length != 0 {
		t.Fatalf("all-ones should have zero-length run, got %d", length)
	}
	if s, l := LongestZeroRun(mask, 5, 5); s != 5 || l != 0 {
		t.Fatalf("empty interval = (%d,%d), want (5,0)", s, l)
	}
}

func TestLongestZeroRunQuickAgainstBitScan(t *testing.T) {
	f := func(raw []byte, loRaw, hiRaw uint8, dense bool) bool {
		n := 200
		mask := make([]uint64, MaskWords(n))
		for i := 0; i < n; i++ {
			if i < len(raw)*8 {
				bit := raw[i/8] >> uint(i%8) & 1
				if (bit == 1) == dense {
					SetBit(mask, i)
				}
			}
		}
		lo := int(loRaw) % n
		hi := lo + int(hiRaw)%(n-lo+1)
		gs, gl := LongestZeroRun(mask, lo, hi)
		ws, wl := refLongestZeroRun(mask, lo, hi)
		return gs == ws && gl == wl
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestLongestZeroRunCrossesWordBoundaries(t *testing.T) {
	// A 100-zero run spanning two word boundaries must be stitched whole.
	s := strings.Repeat("1", 30) + strings.Repeat("0", 100) + strings.Repeat("1", 20)
	mask := refMaskFromString(s)
	start, length := LongestZeroRun(mask, 0, len(s))
	if start != 30 || length != 100 {
		t.Fatalf("spanning zero run = (%d,%d), want (30,100)", start, length)
	}
}

func TestStringRender(t *testing.T) {
	mask := refMaskFromString("10110")
	if got := String(mask, 5); got != "10110" {
		t.Fatalf("String = %q", got)
	}
}

func TestShiftQuickInverse(t *testing.T) {
	f := func(raw []byte, kRaw uint8) bool {
		n := 100
		seq := make([]byte, n)
		for i := range seq {
			b := byte(0)
			if i < len(raw) {
				b = raw[i]
			}
			seq[i] = dna.Alphabet[int(b)%4]
		}
		k := int(kRaw) % 40
		words, err := dna.Encode(seq)
		if err != nil {
			return false
		}
		up := make([]uint64, len(words))
		back := make([]uint64, len(words))
		ShiftCharsUp(up, words, k)
		ShiftCharsDown(back, up, k)
		got := dna.Decode(back, n)
		for i := 0; i < n-k; i++ {
			if got[i] != seq[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
