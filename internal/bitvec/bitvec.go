// Package bitvec implements the word-array bitvector machinery of the
// GateKeeper-GPU kernel. The FPGA original manipulates one arbitrarily long
// register per sequence; a GPU (and this Go port) instead holds an array of
// machine words, so every bitwise shift must transfer carry bits between
// adjacent array elements (paper Section 3.4: "logical shift operations
// produce incorrect bits between array's elements. For correcting these
// bits, we apply carry-bit transfers").
//
// Where the paper's CUDA kernel uses 32-bit words, this port uses 64-bit
// words: word width is the central throughput lever of the bit-parallel
// design, and doubling it halves both the word count of every pass and the
// number of carry-bit transfers per shift. The original 32-bit layout is
// preserved in internal/ref32 as the differential reference model the
// property and fuzz tests compare against.
//
// Two representations appear here:
//
//   - encoded vectors: 2 bits per base, 32 bases per word (dna.Encode layout);
//     XOR and character shifts happen in this domain.
//   - character masks: 1 bit per base, 64 bases per word, produced by
//     collapsing each 2-bit XOR pair with OR ("every two-bit is combined with
//     bitwise OR to simplify the differences").
//
// Bit order is little-endian throughout: base i of an encoded vector lives at
// bits [2i mod 64, 2i mod 64 + 1] of word i/32; base i of a mask lives at bit
// i%64 of word i/64. Carry-transfer semantics are unchanged from the 32-bit
// layout — a shift by k characters moves 2k bits through the array, pulling
// the bits the per-word shift pushed out of each neighbouring element — there
// are simply half as many element boundaries to correct.
package bitvec

import "math/bits"

// CharsPerEncodedWord is the number of bases per encoded 64-bit word.
const CharsPerEncodedWord = 32

// CharsPerMaskWord is the number of bases per mask word.
const CharsPerMaskWord = 64

// EncodedWords returns the number of encoded words for n bases.
func EncodedWords(n int) int { return (n + CharsPerEncodedWord - 1) / CharsPerEncodedWord }

// MaskWords returns the number of mask words for n bases.
func MaskWords(n int) int { return (n + CharsPerMaskWord - 1) / CharsPerMaskWord }

// ShiftCharsUp writes into dst the encoded vector src shifted k characters
// towards higher positions (dst base i = src base i-k; the k lowest bases are
// vacated as zeros). This is the "deletion" shift of the GateKeeper loop.
// dst and src must have equal length; aliasing dst==src is not supported.
func ShiftCharsUp(dst, src []uint64, k int) {
	shiftBitsUp(dst, src, uint(2*k))
}

// ShiftCharsDown writes into dst the encoded vector src shifted k characters
// towards lower positions (dst base i = src base i+k; the k highest bases are
// vacated as zeros). This is the "insertion" shift of the GateKeeper loop.
func ShiftCharsDown(dst, src []uint64, k int) {
	shiftBitsDown(dst, src, uint(2*k))
}

// shiftBitsUp performs a little-endian left shift by n bits across the word
// array, applying the carry-bit transfer from each lower word into its upper
// neighbour — one carry operation per word boundary, exactly the correction
// the paper describes for the GPU port.
func shiftBitsUp(dst, src []uint64, n uint) {
	wordShift := int(n / 64)
	bitShift := n % 64
	for i := len(dst) - 1; i >= 0; i-- {
		var w uint64
		if j := i - wordShift; j >= 0 {
			w = src[j] << bitShift
			// Carry-bit transfer: pull the bits that the per-word shift
			// pushed out of the previous array element.
			if bitShift != 0 && j-1 >= 0 {
				w |= src[j-1] >> (64 - bitShift)
			}
		}
		dst[i] = w
	}
}

// shiftBitsDown performs a little-endian right shift by n bits across the
// word array with carry-bit transfers from each upper word into its lower
// neighbour.
func shiftBitsDown(dst, src []uint64, n uint) {
	wordShift := int(n / 64)
	bitShift := n % 64
	for i := 0; i < len(dst); i++ {
		var w uint64
		if j := i + wordShift; j < len(src) {
			w = src[j] >> bitShift
			if bitShift != 0 && j+1 < len(src) {
				w |= src[j+1] << (64 - bitShift)
			}
		}
		dst[i] = w
	}
}

// ExtractChars copies n characters starting at character offset `start` of
// a long encoded vector into dst (EncodedWords(n) words), shifting across
// word boundaries as needed. This is how the GateKeeper-GPU kernel pulls a
// candidate reference segment out of the unified-memory encoded reference
// ("each thread executes a single comparison, starting with extracting the
// relevant reference segment based on the index", Section 3.5).
func ExtractChars(dst, src []uint64, start, n int) {
	wordOff := start / CharsPerEncodedWord
	bitOff := uint(start%CharsPerEncodedWord) * 2
	outWords := EncodedWords(n)
	for i := 0; i < outWords; i++ {
		var w uint64
		if j := wordOff + i; j < len(src) {
			w = src[j] >> bitOff
			if bitOff != 0 && j+1 < len(src) {
				w |= src[j+1] << (64 - bitOff)
			}
		}
		dst[i] = w
	}
	// Zero the 2-bit lanes beyond n so padding cannot alias as bases.
	if rem := n % CharsPerEncodedWord; rem != 0 {
		dst[outWords-1] &= (uint64(1) << uint(2*rem)) - 1
	}
}

// XorInto writes a^b into dst; all three slices must have equal length.
func XorInto(dst, a, b []uint64) {
	for i := range dst {
		dst[i] = a[i] ^ b[i]
	}
}

// AndInto writes a&b into dst.
func AndInto(dst, a, b []uint64) {
	for i := range dst {
		dst[i] = a[i] & b[i]
	}
}

// OrInto writes a|b into dst.
func OrInto(dst, a, b []uint64) {
	for i := range dst {
		dst[i] = a[i] | b[i]
	}
}

// extractEven compresses the 32 even-indexed bits of x (bits 0,2,4,...,62)
// into the low 32 bits of the result, preserving order.
//
//gk:noalloc
func extractEven(x uint64) uint64 {
	x &= 0x5555555555555555
	x = (x | x>>1) & 0x3333333333333333
	x = (x | x>>2) & 0x0F0F0F0F0F0F0F0F
	x = (x | x>>4) & 0x00FF00FF00FF00FF
	x = (x | x>>8) & 0x0000FFFF0000FFFF
	x = (x | x>>16) & 0x00000000FFFFFFFF
	return x
}

// CollapsePair reduces two adjacent encoded-domain XOR words (2 bits per
// base, 64 bases total) to one character-mask word: mask bit i = OR of the
// two bits encoding base i. lo carries bases 0-31 of the mask word, hi bases
// 32-63. This is the single-word primitive behind Collapse, exposed for the
// fused kernel loop.
//
//gk:noalloc
func CollapsePair(lo, hi uint64) uint64 {
	return extractEven(lo|lo>>1) | extractEven(hi|hi>>1)<<32
}

// Collapse reduces an encoded-domain XOR result (2 bits per base) to a
// character mask (1 bit per base). dst must have MaskWords(n) words for
// n = 32*len(src) bases.
func Collapse(dst, src []uint64) {
	for m := range dst {
		lo2 := 2 * m
		var low, high uint64
		if lo2 < len(src) {
			low = src[lo2]
		}
		if lo2+1 < len(src) {
			high = src[lo2+1]
		}
		dst[m] = CollapsePair(low, high)
	}
}

// SetLeadingOnes forces the k lowest mask bits to 1. GateKeeper-GPU applies
// this to each k-shifted deletion mask so the positions vacated by the shift
// read as potential errors instead of silently matching (the Figure 2
// accuracy fix).
func SetLeadingOnes(mask []uint64, k int) {
	for i := 0; i < len(mask) && k > 0; i++ {
		if k >= 64 {
			mask[i] = ^uint64(0)
			k -= 64
			continue
		}
		mask[i] |= (uint64(1) << uint(k)) - 1
		return
	}
}

// SetTrailingOnes forces the k highest in-range mask bits to 1 for a mask of
// n bases — the insertion-mask counterpart of SetLeadingOnes.
func SetTrailingOnes(mask []uint64, n, k int) {
	if k > n {
		k = n
	}
	for pos := n - k; pos < n; {
		w := pos / 64
		b := uint(pos % 64)
		// Set bits [b, min(64, b + remaining)) of word w in one OR.
		remaining := n - pos
		width := 64 - int(b)
		if width > remaining {
			width = remaining
		}
		var m uint64
		if width >= 64 {
			m = ^uint64(0)
		} else {
			m = ((uint64(1) << uint(width)) - 1) << b
		}
		mask[w] |= m
		pos += width
	}
}

// ClearLeading zeroes the k lowest mask bits. SHD and the original
// GateKeeper explicitly zero the region a shift vacates, which is exactly
// the accuracy flaw Figure 2 illustrates: those zeros dominate the final AND
// and hide genuine edge mismatches.
func ClearLeading(mask []uint64, k int) {
	for i := 0; i < len(mask) && k > 0; i++ {
		if k >= 64 {
			mask[i] = 0
			k -= 64
			continue
		}
		mask[i] &^= (uint64(1) << uint(k)) - 1
		return
	}
}

// ClearTrailing zeroes the k highest in-range mask bits for a mask of n
// bases — the insertion-mask counterpart of ClearLeading.
func ClearTrailing(mask []uint64, n, k int) {
	if k > n {
		k = n
	}
	for pos := n - k; pos < n; {
		w := pos / 64
		b := uint(pos % 64)
		remaining := n - pos
		width := 64 - int(b)
		if width > remaining {
			width = remaining
		}
		var m uint64
		if width >= 64 {
			m = ^uint64(0)
		} else {
			m = ((uint64(1) << uint(width)) - 1) << b
		}
		mask[w] &^= m
		pos += width
	}
}

// ClearTail zeroes every mask bit at position >= n so padding never leaks
// into amendment or error counting.
func ClearTail(mask []uint64, n int) {
	w := n / 64
	b := uint(n % 64)
	if w < len(mask) && b != 0 {
		mask[w] &= (uint64(1) << b) - 1
		w++
	}
	for ; w < len(mask); w++ {
		mask[w] = 0
	}
}

// Amend turns short streaks of 0s (length 1 or 2) that are flanked by 1s
// into 1s, writing the result to dst. The hardware performs this with 4-bit
// LUT windows; the effect is identical: without amendment the final AND
// across masks would let a dominant 0 in one mask hide a genuine mismatch
// signalled by every other mask.
func Amend(dst, src []uint64, n int) {
	tmpUp1 := make([]uint64, len(src))
	tmpDn1 := make([]uint64, len(src))
	tmpDn2 := make([]uint64, len(src))
	AmendScratch(dst, src, n, tmpUp1, tmpDn1, tmpDn2)
}

// AmendScratch is Amend with caller-provided scratch buffers. The three
// scratch slices must each have len(src) words. The fused kernel performs
// this same amendment inline with a software-pipelined word window; this
// slice form remains for the trace path and as the oracle its tests check
// against.
func AmendScratch(dst, src []uint64, n int, up1, dn1, dn2 []uint64) {
	// Pass 1: fill isolated single zeros: bit i set when src[i-1] and
	// src[i+1] are both 1.
	shiftBitsUp(up1, src, 1)
	shiftBitsDown(dn1, src, 1)
	for i := range dst {
		dst[i] = src[i] | (up1[i] & dn1[i])
	}
	// Pass 2: fill double zeros: positions i and i+1 are zero with 1s at
	// i-1 and i+2. pair bit i = dst[i-1] & dst[i+2].
	shiftBitsUp(up1, dst, 1)
	shiftBitsDown(dn2, dst, 2)
	for i := range dn1 {
		dn1[i] = up1[i] & dn2[i] // pair start positions
	}
	shiftBitsUp(dn2, dn1, 1) // second position of each pair
	for i := range dst {
		dst[i] |= dn1[i] | dn2[i]
	}
	ClearTail(dst, n)
}

// OnesCount returns the total number of set bits in the first n positions.
func OnesCount(mask []uint64, n int) int {
	total := 0
	full := n / 64
	for i := 0; i < full; i++ {
		total += bits.OnesCount64(mask[i])
	}
	if rem := uint(n % 64); rem != 0 {
		total += bits.OnesCount64(mask[full] & ((uint64(1) << rem) - 1))
	}
	return total
}

// CountRuns returns the number of maximal runs of consecutive 1s within the
// first n positions, using the run-start identity popcount(m &^ (m << 1)).
// Each run approximates one edit after amendment, which is how the kernel
// estimates the edit distance.
func CountRuns(mask []uint64, n int) int {
	total := 0
	var prevTop uint64 // bit 63 of the previous word
	full := n / 64
	for i := 0; i < full; i++ {
		m := mask[i]
		starts := m &^ (m<<1 | prevTop)
		total += bits.OnesCount64(starts)
		prevTop = m >> 63
	}
	if rem := uint(n % 64); rem != 0 {
		m := mask[full] & ((uint64(1) << rem) - 1)
		starts := m &^ (m<<1 | prevTop)
		total += bits.OnesCount64(starts)
	}
	return total
}

// lutRunStarts[prev][nibble] is the number of 1-runs beginning inside the
// 4-bit window given whether the bit preceding the window was set. It is the
// look-up table the hardware kernel walks ("the errors are counted by
// following a window approach with a look-up table").
var lutRunStarts [2][16]uint8

func init() {
	for prev := 0; prev < 2; prev++ {
		for nib := 0; nib < 16; nib++ {
			count := 0
			p := prev
			for b := 0; b < 4; b++ {
				cur := (nib >> uint(b)) & 1
				if cur == 1 && p == 0 {
					count++
				}
				p = cur
			}
			lutRunStarts[prev][nib] = uint8(count)
		}
	}
}

// CountRunsLUT is the hardware-faithful windowed error counter: it walks the
// mask in 4-bit windows consulting a LUT with a one-bit carry (whether the
// previous window ended inside a run). It must agree with CountRuns — the
// property tests assert this for every input.
//
//gk:noalloc
func CountRunsLUT(mask []uint64, n int) int {
	total := 0
	prev := 0
	for pos := 0; pos < n; pos += 4 {
		w := mask[pos/64]
		nib := int(w>>uint(pos%64)) & 0xF
		width := n - pos
		if width < 4 {
			nib &= (1 << uint(width)) - 1
		}
		total += int(lutRunStarts[prev][nib])
		if width >= 4 {
			prev = (nib >> 3) & 1
		} else {
			prev = (nib >> uint(width-1)) & 1
		}
	}
	return total
}

// CountWindowsWord returns the number of 4-bit windows of one mask word that
// contain at least one set bit — CountWindowsLUT's per-word kernel, exposed
// for the fused filtration loop (a 64-bit word holds exactly 16 aligned
// windows, so the whole-mask count is the sum of per-word counts).
//
//gk:noalloc
func CountWindowsWord(w uint64) int {
	t := w | w>>1
	t |= t >> 2
	t &= 0x1111111111111111
	return bits.OnesCount64(t)
}

// CountWindowsLUT is the GateKeeper error counter: the final bitvector is
// walked in non-overlapping 4-bit windows and each window containing at
// least one 1 counts as one error ("the errors are counted by following a
// window approach with a look-up table"). Isolated mismatches cost exactly
// one error each, while the dense 1-regions a dissimilar pair produces cost
// ~n/4 errors — which is what keeps the filter discriminating at high
// error thresholds (Section 5.1's "filtering still continues to serve").
//
//gk:noalloc
func CountWindowsLUT(mask []uint64, n int) int {
	total := 0
	full := n / 64
	for i := 0; i < full; i++ {
		total += CountWindowsWord(mask[i])
	}
	if rem := uint(n % 64); rem != 0 {
		total += CountWindowsWord(mask[full] & ((uint64(1) << rem) - 1))
	}
	return total
}

// LongestZeroRun returns the start and length of the longest run of 0s
// within positions [lo, hi) of the mask; MAGNET's extraction step builds on
// this primitive. If the interval contains no zeros it returns (lo, 0).
//
// The scan is word-at-a-time: each 64-bit chunk is consumed by jumping over
// whole runs with trailing-zero counts instead of testing bits one by one,
// so a chunk costs one iteration per run transition rather than one per
// base. Runs crossing chunk boundaries are stitched by the open-run carry.
func LongestZeroRun(mask []uint64, lo, hi int) (start, length int) {
	bestStart, bestLen := lo, 0
	curStart, curLen := lo, 0
	for i := lo; i < hi; {
		w := i >> 6
		b := uint(i & 63)
		x := mask[w] >> b // bit p of x = mask position i+p
		n := 64 - int(b)  // valid bits in this chunk
		if i+n > hi {
			n = hi - i
		}
		pos := 0
		for pos < n {
			if (x>>uint(pos))&1 == 0 {
				z := bits.TrailingZeros64(x >> uint(pos)) // zero-run length (64 when chunk tail is all zeros)
				if z > n-pos {
					z = n - pos
				}
				if curLen == 0 {
					curStart = i + pos
				}
				curLen += z
				if curLen > bestLen {
					bestStart, bestLen = curStart, curLen
				}
				pos += z
			} else {
				o := bits.TrailingZeros64(^(x >> uint(pos))) // one-run length
				if o > n-pos {
					o = n - pos
				}
				curLen = 0
				pos += o
			}
		}
		i += n
	}
	return bestStart, bestLen
}

// Bit reports whether mask bit i is set.
func Bit(mask []uint64, i int) bool {
	return mask[i/64]>>(uint(i%64))&1 == 1
}

// SetBit sets mask bit i.
func SetBit(mask []uint64, i int) {
	mask[i/64] |= uint64(1) << uint(i%64)
}

// String renders the first n bits of a mask as a '0'/'1' string, position 0
// first — handy for tests and the worked Figure 2/3 examples.
func String(mask []uint64, n int) string {
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		if Bit(mask, i) {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}
