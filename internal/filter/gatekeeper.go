package filter

import (
	"fmt"
	"sync"

	"repro/internal/bitvec"
	"repro/internal/dna"
	"repro/internal/metrics"
)

// Mode selects between the two GateKeeper algorithm variants the paper
// compares.
type Mode int

const (
	// ModeGPU is the improved algorithm of GateKeeper-GPU: after amendment,
	// the bits vacated by each shift (k leading characters of a k-deletion
	// mask, k trailing characters of a k-insertion mask) are forced to 1 so
	// the final AND cannot hide mismatches near the sequence edges
	// (Section 3.4, Figure 2). This is the accuracy contribution that yields
	// up to 52x fewer false accepts.
	ModeGPU Mode = iota
	// ModeFPGA reproduces the original GateKeeper bit-vector behaviour
	// (identical to SHD's, per the paper's comparison tables): vacated bits
	// stay 0 and dominate the AND, so edge errors can be missed and the
	// filter degenerates to accept-all at high error thresholds.
	ModeFPGA
)

// Ablation switches off individual design elements of the GateKeeper-GPU
// kernel so their contribution can be measured in isolation (the ablation
// experiments of DESIGN.md). The zero value is the full algorithm.
type Ablation struct {
	// SkipAmendment disables the short-zero-streak amendment; without it a
	// single chance match inside any of the 2e+1 masks zeroes the AND and
	// hides genuine mismatches, inflating false accepts.
	SkipAmendment bool
	// CountRuns replaces the windowed-LUT error counter with counting
	// maximal 1-runs. Runs undercount clustered mismatches, so the filter
	// stops discriminating at high error thresholds. Run counting is not
	// monotone under the progressive AND, so it also disables the
	// early-accept shortcut.
	CountRuns bool
}

// Kernel performs GateKeeper filtrations for one fixed read length and
// maximum error threshold. Mirroring the CUDA kernel, whose bitmask arrays
// live in a reserved per-thread stack frame sized at compile time ("read
// length and error threshold should be specified at compile time"), a Kernel
// pre-allocates every scratch buffer at construction and is therefore NOT
// safe for concurrent use; allocate one Kernel per worker, exactly as the
// GPU allocates one stack frame per thread.
//
// The core is a fused 64-bit pipeline: each of the 2e+1 masks is produced in
// a single traversal of the mask words — the character shift, XOR, 2-bit
// collapse, tail clear, amendment, edge forcing, and AND into the
// accumulated final mask all happen per word, with the amendment's
// neighbour dependencies carried through a three-word software pipeline
// instead of intermediate full-slice passes. The retained 32-bit unfused
// chain lives in internal/ref32; the differential tests require the two to
// make bit-identical decisions.
type Kernel struct {
	mode    Mode
	readLen int
	maxE    int
	ablate  Ablation
	exact   bool

	encWords  int    // encoded words per sequence
	maskWords int    // mask words per sequence
	tailMask  uint64 // valid-bit mask of the final mask word

	// Per-thread "stack frame": encoding buffers for the raw-byte path and
	// the accumulated AND of amended masks. The fused pipeline needs no
	// other scratch.
	readEnc, refEnc []uint64
	final           []uint64
}

// NewKernel builds a kernel for reads of length readLen filtered at error
// thresholds up to maxE. Larger thresholds return an error from
// FilterChecked; GrowMaxE raises the bound in place (scratch depends only on
// the read length).
func NewKernel(mode Mode, readLen, maxE int) *Kernel {
	ew := bitvec.EncodedWords(readLen)
	mw := bitvec.MaskWords(readLen)
	tail := ^uint64(0)
	if rem := readLen % 64; rem != 0 {
		tail = uint64(1)<<uint(rem) - 1
	}
	return &Kernel{
		mode:      mode,
		readLen:   readLen,
		maxE:      maxE,
		encWords:  ew,
		maskWords: mw,
		tailMask:  tail,
		readEnc:   make([]uint64, ew),
		refEnc:    make([]uint64, ew),
		final:     make([]uint64, mw),
	}
}

// SetAblation configures ablation switches; see Ablation. Call before the
// first filtration.
func (k *Kernel) SetAblation(a Ablation) { k.ablate = a }

// SetExactEstimate disables the early-accept shortcut so Estimate is always
// the exact windowed count of the fully ANDed mask, as the unfused chain
// computed it. The trace and ablation paths (and any caller comparing
// estimates rather than decisions) want this; the hot filtration path does
// not, because for an accepted pair only the decision is consumed.
func (k *Kernel) SetExactEstimate(exact bool) { k.exact = exact }

// ReadLen returns the configured read length.
func (k *Kernel) ReadLen() int { return k.readLen }

// MaxE returns the configured maximum error threshold.
func (k *Kernel) MaxE() int { return k.maxE }

// GrowMaxE raises the maximum error threshold accepted by FilterChecked.
// Every scratch buffer is sized by read length alone, so growth allocates
// nothing.
func (k *Kernel) GrowMaxE(maxE int) {
	if maxE > k.maxE {
		k.maxE = maxE
	}
}

// Mode returns the algorithm variant.
func (k *Kernel) Mode() Mode { return k.mode }

// FilterEncoded runs one filtration on pre-encoded sequences (the
// host-encoded pipeline). Both slices must hold EncodedWords(readLen) words.
// It returns the approximated edit distance and the accept decision,
// allocating nothing.
//
// The final AND across masks only ever clears bits, so the windowed error
// count is non-increasing as masks accumulate: once the running estimate
// drops to <= e the accept decision is sealed and the remaining masks are
// skipped (the monotone early accept). On that path Estimate is the sealed
// running count — still <= e, but an upper bound on the exact final
// estimate; SetExactEstimate restores the exhaustive computation.
//
//gk:noalloc
func (k *Kernel) FilterEncoded(readEnc, refEnc []uint64, e int) (estimate int, accept bool) {
	metrics.Filtrations.Inc()
	L := k.readLen
	ew := k.encWords
	mw := k.maskWords

	if e == 0 {
		// Exact matching only: fused XOR + collapse + count, no masks kept.
		est := 0
		for m := 0; m < mw; m++ {
			j := 2 * m
			a := readEnc[j] ^ refEnc[j]
			var b uint64
			if j+1 < ew {
				b = readEnc[j+1] ^ refEnc[j+1]
			}
			w := bitvec.CollapsePair(a, b)
			if m == mw-1 {
				w &= k.tailMask
			}
			est += bitvec.CountWindowsWord(w)
		}
		return est, est == 0
	}

	early := !k.exact && !k.ablate.CountRuns

	// final := amend(Hamming mask), then AND in the 2e shifted masks. The
	// k-deletion and k-insertion masks of each shift are independent until
	// the final AND, so maskPassPair produces both lanes in one traversal
	// (shared reference loads, one loop's worth of pipeline bookkeeping);
	// AND is associative bit-by-bit, so folding outU & outD per word is
	// bit-identical to two sequential maskPass calls.
	k.maskPass(readEnc, refEnc, 0, true)
	if early {
		if est := k.windowEstimate(); est <= e {
			return est, true
		}
	}
	for shift := 1; shift <= e; shift++ {
		k.maskPassPair(readEnc, refEnc, shift) // deletion + insertion lanes
		if early {
			if est := k.windowEstimate(); est <= e {
				return est, true
			}
		}
	}

	estimate = k.countErrors(k.final, L)
	return estimate, estimate <= e
}

// windowEstimate is the windowed error count of the accumulated final mask
// (its tail is always clear, so whole-word counting is exact).
//
//gk:noalloc
func (k *Kernel) windowEstimate() int {
	est := 0
	for _, w := range k.final {
		est += bitvec.CountWindowsWord(w)
	}
	return est
}

// maskPass builds one amended, edge-forced mask — shift 0 for the Hamming
// mask, +k for the k-deletion mask, -k for the k-insertion mask — and folds
// it into k.final (direct store when init, AND otherwise), in one traversal
// of the mask words.
//
// Each mask word m collapses from encoded words 2m and 2m+1 of the shifted
// read XORed with the reference; the character shift is applied on the fly
// with its carry-bit transfer, so no shifted copy of the read is ever
// materialized. The amendment (fill 1-2 wide zero streaks flanked by 1s)
// needs raw-mask context up to two bits on either side of a word, which a
// three-word software pipeline provides: while word m is amended, word m+3's
// raw form is produced, reproducing internal/ref32's whole-array passes
// word by word.
//
//gk:noalloc
func (k *Kernel) maskPass(re, fe []uint64, shift int, init bool) {
	mw := k.maskWords
	ew := k.encWords
	L := k.readLen
	up := shift >= 0
	s := shift
	if s < 0 {
		s = -s
	}
	nbits := uint(2 * s) // character shift in bits
	ws := int(nbits >> 6)
	bs := nbits & 63

	// shifted returns encoded word j of the shifted read, carry-transferred
	// across word boundaries; out-of-range words are zero.
	shifted := func(j int) uint64 {
		if up {
			jj := j - ws
			if jj < 0 || jj >= ew {
				return 0
			}
			w := re[jj] << bs
			if bs != 0 && jj > 0 {
				w |= re[jj-1] >> (64 - bs)
			}
			return w
		}
		jj := j + ws
		if jj >= ew {
			return 0
		}
		w := re[jj] >> bs
		if bs != 0 && jj+1 < ew {
			w |= re[jj+1] << (64 - bs)
		}
		return w
	}

	// raw returns mask word m: shift, XOR, collapse, tail clear — fused.
	// Words at or beyond mw read as zero, which is exactly how the unfused
	// chain's shifts treat positions beyond the array.
	raw := func(m int) uint64 {
		if m >= mw {
			return 0
		}
		j := 2 * m
		a := shifted(j) ^ fe[j]
		var b uint64
		if j+1 < ew {
			b = shifted(j+1) ^ fe[j+1]
		}
		w := bitvec.CollapsePair(a, b)
		if m == mw-1 {
			w &= k.tailMask
		}
		return w
	}

	doAmend := !k.ablate.SkipAmendment
	// pass1 fills isolated single zeros of cur using one bit of neighbour
	// context on each side (amendment pass 1).
	pass1 := func(prev, cur, next uint64) uint64 {
		if !doAmend {
			return cur
		}
		return cur | ((cur<<1 | prev>>63) & (cur>>1 | next<<63))
	}

	gpu := k.mode == ModeGPU
	final := k.final

	// Pipeline state: r0..r2 = raw words m..m+2; p1p/p1m/p1n = pass-1 words
	// m-1..m+1; psPrev = pass-2 pair-start word m-1.
	r0, r1, r2 := raw(0), raw(1), raw(2)
	p1p := uint64(0)
	p1m := pass1(0, r0, r1)
	p1n := pass1(r0, r1, r2)
	var psPrev uint64

	for m := 0; m < mw; m++ {
		out := p1m
		if doAmend {
			// Amendment pass 2: fill double zeros. Pair starts where the
			// bit below and the bit two above are both set after pass 1.
			up1 := p1m<<1 | p1p>>63
			dn2 := p1m>>2 | p1n<<62
			ps := up1 & dn2
			out |= ps | ps<<1 | psPrev>>63
			psPrev = ps
		}
		if m == mw-1 {
			out &= k.tailMask
		}

		// Edge forcing: the positions the shift vacated. GPU mode forces
		// them to 1 (the Figure 2 accuracy fix); FPGA/SHD zeroes them.
		if s > 0 {
			if up {
				// Deletion mask: bits [0, s).
				if lo := m << 6; lo < s {
					n := s - lo
					var fm uint64
					if n >= 64 {
						fm = ^uint64(0)
					} else {
						fm = uint64(1)<<uint(n) - 1
					}
					if gpu {
						out |= fm
					} else {
						out &^= fm
					}
				}
			} else {
				// Insertion mask: bits [L-s, L).
				start := L - s
				if start < 0 {
					start = 0
				}
				if wlo := m << 6; wlo+64 > start {
					from := start - wlo
					if from < 0 {
						from = 0
					}
					to := L - wlo
					if to > 64 {
						to = 64
					}
					if to > from {
						width := to - from
						var fm uint64
						if width >= 64 {
							fm = ^uint64(0)
						} else {
							fm = uint64(1)<<uint(width) - 1
						}
						if gpu {
							out |= fm << uint(from)
						} else {
							out &^= fm << uint(from)
						}
					}
				}
			}
		}

		if init {
			final[m] = out
		} else {
			final[m] &= out
		}

		// Advance the pipeline one word.
		p1p, p1m = p1m, p1n
		r0, r1, r2 = r1, r2, raw(m+3)
		p1n = pass1(r0, r1, r2)
	}
}

// maskPassPair builds the s-deletion and s-insertion masks of one shift in a
// single traversal of the mask words and folds both into k.final. The two
// lanes are independent — they read the same reference words but shift the
// read in opposite directions — so producing them together unrolls the
// shift/XOR/collapse/amend/AND chain across two independent dependency
// chains per iteration (the superscalar win) and halves the loop and
// software-pipeline bookkeeping of two maskPass calls. Because the final
// AND is associative per bit, final[m] &= outU & outD is bit-identical to
// ANDing the lanes in sequence; the early-accept checkpoints in
// FilterEncoded sit after both lanes either way.
//
// s must be >= 1 (shift 0 is the Hamming init, maskPass's job).
//
//gk:noalloc
func (k *Kernel) maskPassPair(re, fe []uint64, s int) {
	mw := k.maskWords
	ew := k.encWords
	L := k.readLen
	nbits := uint(2 * s) // character shift in bits
	ws := int(nbits >> 6)
	bs := nbits & 63

	// shiftedU/shiftedD return encoded word j of the read shifted up
	// (deletion lane) and down (insertion lane), carry-transferred across
	// word boundaries; out-of-range words are zero.
	shiftedU := func(j int) uint64 {
		jj := j - ws
		if jj < 0 || jj >= ew {
			return 0
		}
		w := re[jj] << bs
		if bs != 0 && jj > 0 {
			w |= re[jj-1] >> (64 - bs)
		}
		return w
	}
	shiftedD := func(j int) uint64 {
		jj := j + ws
		if jj >= ew {
			return 0
		}
		w := re[jj] >> bs
		if bs != 0 && jj+1 < ew {
			w |= re[jj+1] << (64 - bs)
		}
		return w
	}

	// rawU/rawD are mask word m of each lane: shift, XOR, collapse, tail
	// clear — fused, as in maskPass.
	rawU := func(m int) uint64 {
		if m >= mw {
			return 0
		}
		j := 2 * m
		a := shiftedU(j) ^ fe[j]
		var b uint64
		if j+1 < ew {
			b = shiftedU(j+1) ^ fe[j+1]
		}
		w := bitvec.CollapsePair(a, b)
		if m == mw-1 {
			w &= k.tailMask
		}
		return w
	}
	rawD := func(m int) uint64 {
		if m >= mw {
			return 0
		}
		j := 2 * m
		a := shiftedD(j) ^ fe[j]
		var b uint64
		if j+1 < ew {
			b = shiftedD(j+1) ^ fe[j+1]
		}
		w := bitvec.CollapsePair(a, b)
		if m == mw-1 {
			w &= k.tailMask
		}
		return w
	}

	doAmend := !k.ablate.SkipAmendment
	pass1 := func(prev, cur, next uint64) uint64 {
		if !doAmend {
			return cur
		}
		return cur | ((cur<<1 | prev>>63) & (cur>>1 | next<<63))
	}

	gpu := k.mode == ModeGPU
	final := k.final

	// Two independent software pipelines, one per lane (see maskPass for the
	// stage layout).
	ru0, ru1, ru2 := rawU(0), rawU(1), rawU(2)
	rd0, rd1, rd2 := rawD(0), rawD(1), rawD(2)
	p1pU := uint64(0)
	p1mU := pass1(0, ru0, ru1)
	p1nU := pass1(ru0, ru1, ru2)
	p1pD := uint64(0)
	p1mD := pass1(0, rd0, rd1)
	p1nD := pass1(rd0, rd1, rd2)
	var psPrevU, psPrevD uint64

	for m := 0; m < mw; m++ {
		outU := p1mU
		outD := p1mD
		if doAmend {
			// Amendment pass 2 on both lanes: fill double zeros.
			up1 := p1mU<<1 | p1pU>>63
			dn2 := p1mU>>2 | p1nU<<62
			ps := up1 & dn2
			outU |= ps | ps<<1 | psPrevU>>63
			psPrevU = ps

			up1 = p1mD<<1 | p1pD>>63
			dn2 = p1mD>>2 | p1nD<<62
			ps = up1 & dn2
			outD |= ps | ps<<1 | psPrevD>>63
			psPrevD = ps
		}
		if m == mw-1 {
			outU &= k.tailMask
			outD &= k.tailMask
		}

		// Edge forcing, per lane: the deletion mask's vacated bits are
		// [0, s), the insertion mask's are [L-s, L). GPU mode forces them to
		// 1 (the Figure 2 accuracy fix); FPGA/SHD zeroes them.
		if lo := m << 6; lo < s {
			n := s - lo
			var fm uint64
			if n >= 64 {
				fm = ^uint64(0)
			} else {
				fm = uint64(1)<<uint(n) - 1
			}
			if gpu {
				outU |= fm
			} else {
				outU &^= fm
			}
		}
		start := L - s
		if start < 0 {
			start = 0
		}
		if wlo := m << 6; wlo+64 > start {
			from := start - wlo
			if from < 0 {
				from = 0
			}
			to := L - wlo
			if to > 64 {
				to = 64
			}
			if to > from {
				width := to - from
				var fm uint64
				if width >= 64 {
					fm = ^uint64(0)
				} else {
					fm = uint64(1)<<uint(width) - 1
				}
				if gpu {
					outD |= fm << uint(from)
				} else {
					outD &^= fm << uint(from)
				}
			}
		}

		final[m] &= outU & outD

		// Advance both pipelines one word.
		p1pU, p1mU = p1mU, p1nU
		ru0, ru1, ru2 = ru1, ru2, rawU(m+3)
		p1nU = pass1(ru0, ru1, ru2)

		p1pD, p1mD = p1mD, p1nD
		rd0, rd1, rd2 = rd1, rd2, rawD(m+3)
		p1nD = pass1(rd0, rd1, rd2)
	}
}

// countErrors applies the configured error counter.
//
//gk:noalloc
func (k *Kernel) countErrors(mask []uint64, n int) int {
	if k.ablate.CountRuns {
		return bitvec.CountRunsLUT(mask, n)
	}
	return bitvec.CountWindowsLUT(mask, n)
}

// Filter runs one filtration on raw sequences, encoding them first (the
// device-encoded pipeline: "the kernel performs the complete set of
// operations for a single filtration, starting with encoding the sequences
// if they are not encoded in the preprocessing stage"). Pairs containing
// unknown base calls bypass filtration as undefined.
func (k *Kernel) Filter(read, ref []byte, e int) Decision {
	d, err := k.FilterChecked(read, ref, e)
	if err != nil {
		panic(err) // programming error: caller violated the configured geometry
	}
	return d
}

// FilterChecked is Filter returning geometry violations as errors instead of
// panicking.
//
//gk:noalloc
func (k *Kernel) FilterChecked(read, ref []byte, e int) (Decision, error) {
	if len(read) != k.readLen || len(ref) != k.readLen {
		return Decision{}, fmt.Errorf("filter: kernel configured for length %d, got read=%d ref=%d", //gk:allow noalloc: cold geometry-violation path
			k.readLen, len(read), len(ref))
	}
	if e < 0 || e > k.maxE {
		return Decision{}, fmt.Errorf("filter: error threshold %d outside configured [0,%d]", e, k.maxE) //gk:allow noalloc: cold geometry-violation path
	}
	// Encoding doubles as the 'N' scan: an unrecognized base is exactly the
	// undefined-pair condition, so the sequences are walked once, not twice,
	// and no error value is constructed on the way.
	if dna.TryEncodeInto(k.readEnc, read) >= 0 || dna.TryEncodeInto(k.refEnc, ref) >= 0 {
		return Decision{Accept: true, Undefined: true}, nil
	}
	est, accept := k.FilterEncoded(k.readEnc, k.refEnc, e)
	return Decision{Accept: accept, Estimate: est}, nil
}

// gateKeeper adapts Kernel to the Filter interface for arbitrary lengths and
// thresholds by keeping a small cache of kernels keyed by read length — the
// only dimension scratch buffers depend on. A threshold above a cached
// kernel's bound grows the kernel in place (GrowMaxE) instead of building a
// fresh kernel with a fresh stack frame per distinct (length, e) pair.
//
// The wrapper is safe for concurrent use: a mutex guards the cache map, the
// in-place GrowMaxE, and the kernel itself (a Kernel is a per-thread stack
// frame, so filtrations through one wrapper serialize). It is the
// convenience path — hot loops should hold a Kernel per worker directly, or
// fan out through a BatchFilter, which builds one wrapper per worker.
type gateKeeper struct {
	mode    Mode
	name    string
	mu      sync.Mutex
	exact   bool
	kernels map[int]*Kernel
}

// SetExactEstimate switches every kernel this wrapper creates (or has
// created) to exhaustive estimates — for estimate-reporting callers like
// `gkfilter -v`, where the default sealed upper bound would be printed next
// to the true edit distance. Decisions are identical either way.
func (g *gateKeeper) SetExactEstimate(exact bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.exact = exact
	for _, k := range g.kernels {
		k.SetExactEstimate(exact)
	}
}

// NewGateKeeperGPU returns the improved GateKeeper filter of the paper.
// The returned Filter is safe for concurrent use, but filtrations through
// one instance serialize on its internal mutex; machine-width callers
// should hold a Kernel per worker, or use a BatchFilter.
func NewGateKeeperGPU() Filter {
	return &gateKeeper{mode: ModeGPU, name: "GateKeeper-GPU", kernels: map[int]*Kernel{}}
}

// NewGateKeeperFPGA returns the original GateKeeper behaviour, used as the
// FPGA baseline in every comparison figure.
func NewGateKeeperFPGA() Filter {
	return &gateKeeper{mode: ModeFPGA, name: "GateKeeper-FPGA", kernels: map[int]*Kernel{}}
}

// NewSHD returns the Shifted Hamming Distance filter. SHD is the software
// ancestor of GateKeeper and produces identical decisions (the paper's
// comparison tables report identical false-accept counts for the two), so it
// shares the ModeFPGA kernel under its own name.
func NewSHD() Filter {
	return &gateKeeper{mode: ModeFPGA, name: "SHD", kernels: map[int]*Kernel{}}
}

func (g *gateKeeper) Name() string { return g.name }

func (g *gateKeeper) Filter(read, ref []byte, e int) Decision {
	g.mu.Lock()
	defer g.mu.Unlock()
	k := g.kernels[len(read)]
	if k == nil {
		k = NewKernel(g.mode, len(read), e)
		k.SetExactEstimate(g.exact)
		g.kernels[len(read)] = k
	} else {
		k.GrowMaxE(e)
	}
	return k.Filter(read, ref, e)
}
