package filter

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/dna"
)

// Mode selects between the two GateKeeper algorithm variants the paper
// compares.
type Mode int

const (
	// ModeGPU is the improved algorithm of GateKeeper-GPU: after amendment,
	// the bits vacated by each shift (k leading characters of a k-deletion
	// mask, k trailing characters of a k-insertion mask) are forced to 1 so
	// the final AND cannot hide mismatches near the sequence edges
	// (Section 3.4, Figure 2). This is the accuracy contribution that yields
	// up to 52x fewer false accepts.
	ModeGPU Mode = iota
	// ModeFPGA reproduces the original GateKeeper bit-vector behaviour
	// (identical to SHD's, per the paper's comparison tables): vacated bits
	// stay 0 and dominate the AND, so edge errors can be missed and the
	// filter degenerates to accept-all at high error thresholds.
	ModeFPGA
)

// Ablation switches off individual design elements of the GateKeeper-GPU
// kernel so their contribution can be measured in isolation (the ablation
// experiments of DESIGN.md). The zero value is the full algorithm.
type Ablation struct {
	// SkipAmendment disables the short-zero-streak amendment; without it a
	// single chance match inside any of the 2e+1 masks zeroes the AND and
	// hides genuine mismatches, inflating false accepts.
	SkipAmendment bool
	// CountRuns replaces the windowed-LUT error counter with counting
	// maximal 1-runs. Runs undercount clustered mismatches, so the filter
	// stops discriminating at high error thresholds.
	CountRuns bool
}

// Kernel performs GateKeeper filtrations for one fixed read length and
// maximum error threshold. Mirroring the CUDA kernel, whose bitmask arrays
// live in a reserved per-thread stack frame sized at compile time ("read
// length and error threshold should be specified at compile time"), a Kernel
// pre-allocates every scratch buffer at construction and is therefore NOT
// safe for concurrent use; allocate one Kernel per worker, exactly as the
// GPU allocates one stack frame per thread.
type Kernel struct {
	mode    Mode
	readLen int
	maxE    int
	ablate  Ablation

	encWords  int // encoded words per sequence
	maskWords int // mask words per sequence

	// Per-thread "stack frame": encoding buffers, shift/XOR temporaries, the
	// accumulated AND of amended masks, and amendment scratch.
	readEnc, refEnc   []uint32
	shifted, xorBuf   []uint32
	charMask, amended []uint32
	final             []uint32
	amendUp, amendDn  []uint32
	amendDn2          []uint32
}

// NewKernel builds a kernel for reads of length readLen filtered at error
// thresholds up to maxE. maxE may be exceeded at Filter time only up to the
// configured value; larger thresholds return an error from FilterChecked.
func NewKernel(mode Mode, readLen, maxE int) *Kernel {
	ew := bitvec.EncodedWords(readLen)
	mw := bitvec.MaskWords(readLen)
	return &Kernel{
		mode:      mode,
		readLen:   readLen,
		maxE:      maxE,
		encWords:  ew,
		maskWords: mw,
		readEnc:   make([]uint32, ew),
		refEnc:    make([]uint32, ew),
		shifted:   make([]uint32, ew),
		xorBuf:    make([]uint32, ew),
		charMask:  make([]uint32, mw),
		amended:   make([]uint32, mw),
		final:     make([]uint32, mw),
		amendUp:   make([]uint32, mw),
		amendDn:   make([]uint32, mw),
		amendDn2:  make([]uint32, mw),
	}
}

// SetAblation configures ablation switches; see Ablation. Call before the
// first filtration.
func (k *Kernel) SetAblation(a Ablation) { k.ablate = a }

// ReadLen returns the configured read length.
func (k *Kernel) ReadLen() int { return k.readLen }

// MaxE returns the configured maximum error threshold.
func (k *Kernel) MaxE() int { return k.maxE }

// Mode returns the algorithm variant.
func (k *Kernel) Mode() Mode { return k.mode }

// FilterEncoded runs one filtration on pre-encoded sequences (the
// host-encoded pipeline). Both slices must hold EncodedWords(readLen) words.
// It returns the approximated edit distance and the accept decision.
func (k *Kernel) FilterEncoded(readEnc, refEnc []uint32, e int) (estimate int, accept bool) {
	L := k.readLen
	// Hamming mask: XOR for exact match detection.
	bitvec.XorInto(k.xorBuf, readEnc, refEnc)
	bitvec.Collapse(k.charMask, k.xorBuf)
	bitvec.ClearTail(k.charMask, L)

	if e == 0 {
		// Exact matching only: accept iff the Hamming mask is clean.
		est := bitvec.CountWindowsLUT(k.charMask, L)
		return est, est == 0
	}

	// final := amend(Hamming mask).
	k.amend(k.final, k.charMask, L)

	for shift := 1; shift <= e; shift++ {
		// Deletion mask: read shifted towards higher positions by `shift`
		// characters (2*shift bits plus the carry-bit transfer).
		bitvec.ShiftCharsUp(k.shifted, readEnc, shift)
		bitvec.XorInto(k.xorBuf, k.shifted, refEnc)
		bitvec.Collapse(k.charMask, k.xorBuf)
		bitvec.ClearTail(k.charMask, L)
		k.amend(k.amended, k.charMask, L)
		if k.mode == ModeGPU {
			bitvec.SetLeadingOnes(k.amended, shift)
		} else {
			bitvec.ClearLeading(k.amended, shift)
		}
		bitvec.AndInto(k.final, k.final, k.amended)

		// Insertion mask: read shifted towards lower positions.
		bitvec.ShiftCharsDown(k.shifted, readEnc, shift)
		bitvec.XorInto(k.xorBuf, k.shifted, refEnc)
		bitvec.Collapse(k.charMask, k.xorBuf)
		bitvec.ClearTail(k.charMask, L)
		k.amend(k.amended, k.charMask, L)
		if k.mode == ModeGPU {
			bitvec.SetTrailingOnes(k.amended, L, shift)
		} else {
			bitvec.ClearTrailing(k.amended, L, shift)
		}
		bitvec.AndInto(k.final, k.final, k.amended)
	}

	estimate = k.countErrors(k.final, L)
	return estimate, estimate <= e
}

// amend applies the short-zero-streak amendment unless ablated away.
func (k *Kernel) amend(dst, src []uint32, n int) {
	if k.ablate.SkipAmendment {
		copy(dst, src)
		return
	}
	bitvec.AmendScratch(dst, src, n, k.amendUp, k.amendDn, k.amendDn2)
}

// countErrors applies the configured error counter.
func (k *Kernel) countErrors(mask []uint32, n int) int {
	if k.ablate.CountRuns {
		return bitvec.CountRunsLUT(mask, n)
	}
	return bitvec.CountWindowsLUT(mask, n)
}

// Filter runs one filtration on raw sequences, encoding them first (the
// device-encoded pipeline: "the kernel performs the complete set of
// operations for a single filtration, starting with encoding the sequences
// if they are not encoded in the preprocessing stage"). Pairs containing
// unknown base calls bypass filtration as undefined.
func (k *Kernel) Filter(read, ref []byte, e int) Decision {
	d, err := k.FilterChecked(read, ref, e)
	if err != nil {
		panic(err) // programming error: caller violated the configured geometry
	}
	return d
}

// FilterChecked is Filter returning geometry violations as errors instead of
// panicking.
func (k *Kernel) FilterChecked(read, ref []byte, e int) (Decision, error) {
	if len(read) != k.readLen || len(ref) != k.readLen {
		return Decision{}, fmt.Errorf("filter: kernel configured for length %d, got read=%d ref=%d",
			k.readLen, len(read), len(ref))
	}
	if e < 0 || e > k.maxE {
		return Decision{}, fmt.Errorf("filter: error threshold %d outside configured [0,%d]", e, k.maxE)
	}
	if dna.HasN(read) || dna.HasN(ref) {
		return Decision{Accept: true, Undefined: true}, nil
	}
	if err := dna.EncodeInto(k.readEnc, read); err != nil {
		return Decision{}, err
	}
	if err := dna.EncodeInto(k.refEnc, ref); err != nil {
		return Decision{}, err
	}
	est, accept := k.FilterEncoded(k.readEnc, k.refEnc, e)
	return Decision{Accept: accept, Estimate: est}, nil
}

// gateKeeper adapts Kernel to the Filter interface for arbitrary lengths and
// thresholds by keeping a small cache of kernels keyed by geometry. It is
// the convenience path; hot loops should hold a Kernel directly.
type gateKeeper struct {
	mode    Mode
	name    string
	kernels map[[2]int]*Kernel
}

// NewGateKeeperGPU returns the improved GateKeeper filter of the paper.
// The returned Filter is not safe for concurrent use (see Kernel).
func NewGateKeeperGPU() Filter {
	return &gateKeeper{mode: ModeGPU, name: "GateKeeper-GPU", kernels: map[[2]int]*Kernel{}}
}

// NewGateKeeperFPGA returns the original GateKeeper behaviour, used as the
// FPGA baseline in every comparison figure.
func NewGateKeeperFPGA() Filter {
	return &gateKeeper{mode: ModeFPGA, name: "GateKeeper-FPGA", kernels: map[[2]int]*Kernel{}}
}

// NewSHD returns the Shifted Hamming Distance filter. SHD is the software
// ancestor of GateKeeper and produces identical decisions (the paper's
// comparison tables report identical false-accept counts for the two), so it
// shares the ModeFPGA kernel under its own name.
func NewSHD() Filter {
	return &gateKeeper{mode: ModeFPGA, name: "SHD", kernels: map[[2]int]*Kernel{}}
}

func (g *gateKeeper) Name() string { return g.name }

func (g *gateKeeper) Filter(read, ref []byte, e int) Decision {
	key := [2]int{len(read), e}
	k := g.kernels[key]
	if k == nil {
		k = NewKernel(g.mode, len(read), e)
		g.kernels[key] = k
	}
	return k.Filter(read, ref, e)
}
