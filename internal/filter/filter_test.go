package filter

import (
	"math/rand"
	"testing"

	"repro/internal/align"
	"repro/internal/bitvec"
	"repro/internal/dna"
)

func TestNewByName(t *testing.T) {
	for _, name := range []string{"gatekeeper-gpu", "gatekeeper-fpga", "shd", "magnet", "shouji", "sneakysnake"} {
		f, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if f.Name() == "" {
			t.Fatalf("New(%q) has empty name", name)
		}
	}
	if _, err := New("nope"); err == nil {
		t.Fatal("unknown filter accepted")
	}
	if got := len(All()); got != 6 {
		t.Fatalf("All() returned %d filters, want 6", got)
	}
}

func TestAllFiltersAcceptExactMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, L := range []int{100, 150, 250} {
		read := dna.RandomSeq(rng, L)
		ref := append([]byte(nil), read...)
		for _, f := range All() {
			for _, e := range []int{0, 2, 5} {
				d := f.Filter(read, ref, e)
				if !d.Accept {
					t.Errorf("%s rejected an exact match (L=%d, e=%d, est=%d)", f.Name(), L, e, d.Estimate)
				}
			}
		}
	}
}

func TestAllFiltersAcceptSubstitutionsWithinThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		L := []int{100, 150, 250}[trial%3]
		e := 1 + rng.Intn(L/10)
		k := rng.Intn(e + 1)
		read := dna.RandomSeq(rng, L)
		ref := dna.MutateSubstitutions(rng, read, k)
		for _, f := range All() {
			d := f.Filter(read, ref, e)
			if !d.Accept {
				t.Errorf("%s falsely rejected %d substitutions at e=%d (L=%d, est=%d)",
					f.Name(), k, e, L, d.Estimate)
			}
		}
	}
}

func TestGateKeeperGPUAcceptsSingleIndel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	gpu := NewGateKeeperGPU()
	for trial := 0; trial < 40; trial++ {
		L := 100
		read := dna.RandomSeq(rng, L)
		pos := rng.Intn(L)
		var refLong []byte
		if trial%2 == 0 {
			refLong = dna.ApplyEdits(read, []dna.Edit{{Pos: pos, Op: 'D'}})
		} else {
			refLong = dna.ApplyEdits(read, []dna.Edit{{Pos: pos, Op: 'I', Base: dna.Alphabet[rng.Intn(4)]}})
		}
		// Candidate segments are read-length windows; pad or trim to L as a
		// mapper would when extracting the segment.
		ref := make([]byte, L)
		copy(ref, refLong)
		for i := len(refLong); i < L; i++ {
			ref[i] = read[i] // mapper extends with the true downstream bases
		}
		e := 2
		if d := gpu.Filter(read, ref, e); !d.Accept {
			t.Errorf("GateKeeper-GPU rejected a single indel (trial=%d pos=%d est=%d)", trial, pos, d.Estimate)
		}
	}
}

func TestGateKeeperGPUNoFalseRejectsOnMapperProfilePairs(t *testing.T) {
	// The paper's core accuracy claim: "GateKeeper-GPU's false reject count
	// is always 0 for all data sets". Reproduce on mrFAST-profile pairs:
	// true-location candidates carrying subs+indels within the threshold.
	rng := rand.New(rand.NewSource(4))
	for _, L := range []int{100, 150, 250} {
		e := L / 20 // 5% threshold, the paper's mapping profile
		kern := NewKernel(ModeGPU, L, e)
		for trial := 0; trial < 400; trial++ {
			read := dna.RandomSeq(rng, L)
			nEdits := rng.Intn(e + 1)
			mutated := dna.ApplyEdits(read, dna.RandomEdits(rng, L, nEdits, 0.3))
			ref := make([]byte, L)
			n := copy(ref, mutated)
			for i := n; i < L; i++ {
				ref[i] = read[i]
			}
			trueDist := align.Distance(read, ref)
			if trueDist > e {
				continue // length-trim pushed it over; not a within-threshold pair
			}
			if d := kern.Filter(read, ref, e); !d.Accept {
				t.Fatalf("false reject: L=%d e=%d trial=%d trueDist=%d estimate=%d",
					L, e, trial, trueDist, d.Estimate)
			}
		}
	}
}

func TestGPUFalseAcceptsNeverExceedFPGAStatistically(t *testing.T) {
	// The GPU improvement forces the shift-vacated bits to 1, which
	// statistically can only surface additional edge errors. Run merging
	// makes the per-pair estimate non-monotone, but over a dataset the GPU
	// variant must produce no more false accepts than the FPGA original —
	// the mechanism behind "up to 52x less false accepts".
	rng := rand.New(rand.NewSource(5))
	L, e := 100, 5
	gpu := NewKernel(ModeGPU, L, e)
	fpga := NewKernel(ModeFPGA, L, e)
	gpuFA, fpgaFA := 0, 0
	for trial := 0; trial < 600; trial++ {
		read := dna.RandomSeq(rng, L)
		var ref []byte
		if trial%3 == 0 {
			ref = dna.RandomSeq(rng, L)
		} else {
			ref = dna.MutateSubstitutions(rng, read, 3+rng.Intn(17))
		}
		if align.Distance(read, ref) <= e {
			continue
		}
		if gpu.Filter(read, ref, e).Accept {
			gpuFA++
		}
		if fpga.Filter(read, ref, e).Accept {
			fpgaFA++
		}
	}
	if gpuFA > fpgaFA {
		t.Fatalf("GPU false accepts (%d) exceed FPGA false accepts (%d)", gpuFA, fpgaFA)
	}
}

func TestFPGAMissesEdgeMismatchesFigure2(t *testing.T) {
	// Deterministic Figure 2/3 scenario. The read is a homopolymer; the
	// candidate carries e isolated interior mismatches plus two mismatches
	// at each edge (true distance e+4 > e). In the original GateKeeper the
	// shift-vacated zeros erase the edge errors from the final AND, so it
	// falsely accepts; GateKeeper-GPU's forced leading/trailing 1s keep
	// them visible and reject the pair.
	L, e := 100, 5
	read := make([]byte, L)
	for i := range read {
		read[i] = 'A'
	}
	ref := append([]byte(nil), read...)
	interior := []int{20, 30, 40, 50, 60}
	for _, p := range interior {
		ref[p] = 'C'
	}
	for _, p := range []int{0, 1, L - 2, L - 1} {
		ref[p] = 'C'
	}
	if d := align.Distance(read, ref); d != e+4 {
		t.Fatalf("construction error: distance %d, want %d", d, e+4)
	}
	gpu := NewKernel(ModeGPU, L, e)
	fpga := NewKernel(ModeFPGA, L, e)
	// The assertions below pin exact estimate values; the default kernel may
	// seal an accept early with a coarser (<= e) estimate.
	gpu.SetExactEstimate(true)
	fpga.SetExactEstimate(true)
	df := fpga.Filter(read, ref, e)
	dg := gpu.Filter(read, ref, e)
	if !df.Accept {
		t.Errorf("FPGA mode should falsely accept the Figure 2 pair (est=%d)", df.Estimate)
	}
	if dg.Accept {
		t.Errorf("GPU mode should reject the Figure 2 pair (est=%d)", dg.Estimate)
	}
	if df.Estimate != e {
		t.Errorf("FPGA estimate = %d, want %d (edge errors erased)", df.Estimate, e)
	}
	if dg.Estimate != e+2 {
		t.Errorf("GPU estimate = %d, want %d (one run per edge)", dg.Estimate, e+2)
	}
}

func TestFPGASaturatesAtHighThresholds(t *testing.T) {
	// Sup. Tables S.8/S.10: at high error thresholds on high-edit data,
	// GateKeeper-FPGA/SHD accept everything while GateKeeper-GPU keeps
	// rejecting some dissimilar pairs.
	rng := rand.New(rand.NewSource(7))
	L := 100
	e := 10 // 10% of read length, the paper's maximum
	gpu := NewKernel(ModeGPU, L, e)
	fpga := NewKernel(ModeFPGA, L, e)
	gpuRejects, fpgaRejects := 0, 0
	const pairs = 300
	for i := 0; i < pairs; i++ {
		read := dna.RandomSeq(rng, L)
		ref := dna.RandomSeq(rng, L) // thoroughly dissimilar
		if !gpu.Filter(read, ref, e).Accept {
			gpuRejects++
		}
		if !fpga.Filter(read, ref, e).Accept {
			fpgaRejects++
		}
	}
	if gpuRejects <= fpgaRejects {
		t.Errorf("expected GPU to out-reject FPGA at high e: gpu=%d fpga=%d", gpuRejects, fpgaRejects)
	}
	if gpuRejects == 0 {
		t.Error("GateKeeper-GPU rejected nothing at e=10; filtering should still function")
	}
}

func TestSneakySnakeLowerBoundsEditDistance(t *testing.T) {
	// SneakySnake's estimate provably lower-bounds the true edit distance,
	// hence zero false rejects by construction.
	rng := rand.New(rand.NewSource(8))
	ss := NewSneakySnake()
	for trial := 0; trial < 300; trial++ {
		L := 50 + rng.Intn(100)
		read := dna.RandomSeq(rng, L)
		var ref []byte
		if trial%4 == 0 {
			ref = dna.RandomSeq(rng, L)
		} else {
			mutated := dna.ApplyEdits(read, dna.RandomEdits(rng, L, rng.Intn(10), 0.4))
			ref = make([]byte, L)
			n := copy(ref, mutated)
			for i := n; i < L; i++ {
				ref[i] = dna.Alphabet[rng.Intn(4)]
			}
		}
		e := rng.Intn(12)
		d := ss.Filter(read, ref, e)
		trueDist := align.Distance(read, ref)
		if d.Estimate > trueDist {
			t.Fatalf("SneakySnake estimate %d exceeds true distance %d (trial %d)", d.Estimate, trueDist, trial)
		}
		if trueDist <= e && !d.Accept {
			t.Fatalf("SneakySnake false reject: trueDist=%d e=%d", trueDist, e)
		}
	}
}

func TestShoujiAcceptsWithinThresholdSubs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sh := NewShouji()
	for trial := 0; trial < 50; trial++ {
		L := 100
		e := 1 + rng.Intn(10)
		k := rng.Intn(e + 1)
		read := dna.RandomSeq(rng, L)
		ref := dna.MutateSubstitutions(rng, read, k)
		if d := sh.Filter(read, ref, e); !d.Accept {
			t.Fatalf("Shouji rejected %d subs at e=%d (est=%d)", k, e, d.Estimate)
		}
	}
}

func TestFilterAccuracyOrdering(t *testing.T) {
	// Figure 5 ordering on a random low-edit dataset: false accepts of
	// SneakySnake <= Shouji <= GateKeeper-GPU <= GateKeeper-FPGA == SHD.
	rng := rand.New(rand.NewSource(10))
	L, e := 100, 5
	filters := []Filter{NewSneakySnake(), NewShouji(), NewGateKeeperGPU(), NewGateKeeperFPGA(), NewSHD()}
	fa := make([]int, len(filters))
	const pairs = 400
	for i := 0; i < pairs; i++ {
		read := dna.RandomSeq(rng, L)
		// Mix: near-threshold pairs that stress every filter.
		k := 3 + rng.Intn(12)
		mutated := dna.ApplyEdits(read, dna.RandomEdits(rng, L, k, 0.3))
		ref := make([]byte, L)
		n := copy(ref, mutated)
		for j := n; j < L; j++ {
			ref[j] = dna.Alphabet[rng.Intn(4)]
		}
		if align.Distance(read, ref) <= e {
			continue // only count pairs Edlib rejects
		}
		for fi, f := range filters {
			if f.Filter(read, ref, e).Accept {
				fa[fi]++
			}
		}
	}
	// SneakySnake should be the most accurate, FPGA/SHD identical and worst
	// of the bitvector family.
	if fa[4] != fa[3] {
		t.Errorf("SHD (%d) and GateKeeper-FPGA (%d) diverged; they share one algorithm", fa[4], fa[3])
	}
	if fa[2] > fa[3] {
		t.Errorf("GateKeeper-GPU false accepts (%d) exceed FPGA (%d)", fa[2], fa[3])
	}
	if fa[0] > fa[2] {
		t.Errorf("SneakySnake false accepts (%d) exceed GateKeeper-GPU (%d)", fa[0], fa[2])
	}
}

func TestUndefinedPairsBypassGateKeeper(t *testing.T) {
	kern := NewKernel(ModeGPU, 100, 5)
	read := make([]byte, 100)
	ref := make([]byte, 100)
	for i := range read {
		read[i], ref[i] = 'A', 'T' // would certainly be rejected
	}
	read[50] = 'N'
	d := kern.Filter(read, ref, 5)
	if !d.Accept || !d.Undefined {
		t.Fatalf("N-containing pair not passed through: %+v", d)
	}
	read[50] = 'A'
	ref[50] = 'N'
	d = kern.Filter(read, ref, 5)
	if !d.Accept || !d.Undefined {
		t.Fatalf("N in reference not passed through: %+v", d)
	}
}

func TestKernelGeometryErrors(t *testing.T) {
	kern := NewKernel(ModeGPU, 100, 5)
	read := make([]byte, 100)
	for i := range read {
		read[i] = 'A'
	}
	if _, err := kern.FilterChecked(read[:50], read, 5); err == nil {
		t.Fatal("short read accepted")
	}
	if _, err := kern.FilterChecked(read, read, 6); err == nil {
		t.Fatal("e beyond maxE accepted")
	}
	if _, err := kern.FilterChecked(read, read, -1); err == nil {
		t.Fatal("negative e accepted")
	}
	if _, err := kern.FilterChecked(read, read, 5); err != nil {
		t.Fatalf("valid call failed: %v", err)
	}
	if kern.ReadLen() != 100 || kern.MaxE() != 5 || kern.Mode() != ModeGPU {
		t.Fatal("kernel accessors wrong")
	}
}

func TestKernelExactMatchAtEZero(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	kern := NewKernel(ModeGPU, 100, 5)
	read := dna.RandomSeq(rng, 100)
	if d := kern.Filter(read, read, 0); !d.Accept || d.Estimate != 0 {
		t.Fatalf("exact match at e=0: %+v", d)
	}
	ref := dna.MutateSubstitutions(rng, read, 1)
	if d := kern.Filter(read, ref, 0); d.Accept {
		t.Fatalf("mismatch accepted at e=0: %+v", d)
	}
}

func TestGateKeeperNoFalseAcceptsAtEZero(t *testing.T) {
	// At e=0 the filter is a pure XOR comparison, so false accepts are
	// impossible for defined pairs (Table S.2 row e=0).
	rng := rand.New(rand.NewSource(12))
	kern := NewKernel(ModeGPU, 100, 0)
	for trial := 0; trial < 200; trial++ {
		read := dna.RandomSeq(rng, 100)
		ref := dna.MutateSubstitutions(rng, read, rng.Intn(3))
		wantAccept := align.Distance(read, ref) == 0
		if got := kern.Filter(read, ref, 0).Accept; got != wantAccept {
			t.Fatalf("e=0 decision %v, want %v", got, wantAccept)
		}
	}
}

func TestGateKeeperConvenienceWrapperGeometryCache(t *testing.T) {
	g := NewGateKeeperGPU()
	rng := rand.New(rand.NewSource(13))
	// Different lengths and thresholds through one wrapper.
	for _, L := range []int{50, 100, 150} {
		read := dna.RandomSeq(rng, L)
		for _, e := range []int{0, 2, 4} {
			if d := g.Filter(read, read, e); !d.Accept {
				t.Fatalf("wrapper rejected exact match at L=%d e=%d", L, e)
			}
		}
	}
}

func TestMagnetEstimateZeroOnExact(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	m := NewMAGNET()
	read := dna.RandomSeq(rng, 120)
	d := m.Filter(read, read, 3)
	if !d.Accept || d.Estimate != 0 {
		t.Fatalf("MAGNET exact: %+v", d)
	}
}

func TestMagnetRejectsDissimilar(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	m := NewMAGNET()
	rejects := 0
	for i := 0; i < 50; i++ {
		a := dna.RandomSeq(rng, 100)
		b := dna.RandomSeq(rng, 100)
		if !m.Filter(a, b, 5).Accept {
			rejects++
		}
	}
	if rejects < 45 {
		t.Fatalf("MAGNET rejected only %d/50 random pairs", rejects)
	}
}

func TestBaselinesRejectLengthMismatch(t *testing.T) {
	for _, f := range []Filter{NewMAGNET(), NewShouji(), NewSneakySnake()} {
		if f.Filter([]byte("ACGT"), []byte("ACG"), 2).Accept {
			t.Errorf("%s accepted a length mismatch", f.Name())
		}
	}
}

func TestBaselinesEmptyInput(t *testing.T) {
	for _, f := range []Filter{NewMAGNET(), NewShouji(), NewSneakySnake()} {
		if !f.Filter(nil, nil, 0).Accept {
			t.Errorf("%s rejected the empty pair", f.Name())
		}
	}
}

func TestNeighborhoodMap(t *testing.T) {
	read := []byte("ACGT")
	ref := []byte("AGGT")
	masks := neighborhood(read, ref, 1)
	if len(masks) != 3 {
		t.Fatalf("got %d masks", len(masks))
	}
	main := masks[1] // d = 0
	want := []bool{false, true, false, false}
	for i := range want {
		if main[i] != want[i] {
			t.Fatalf("main diagonal bit %d = %v", i, main[i])
		}
	}
	// d=+1: ref position i vs read position i-1; position 0 vacated.
	if !masks[2][0] {
		t.Fatal("vacated position should mismatch")
	}
}

func TestNeighborhoodMasksMatchBoolOracle(t *testing.T) {
	// The packed diagonal masks MAGNET scans must agree bit for bit with
	// the bool neighborhood, and the word-at-a-time longest-zero-run scan
	// must agree with the per-entry oracle on every diagonal and interval —
	// a packing bug here would only move MAGNET's accept rate, which the
	// differential suite merely bounds.
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 80; trial++ {
		L := 1 + rng.Intn(200)
		e := rng.Intn(8)
		read := dna.RandomSeq(rng, L)
		var ref []byte
		if trial%2 == 0 {
			ref = dna.MutateSubstitutions(rng, read, rng.Intn(L+1))
		} else {
			ref = dna.RandomSeq(rng, L)
		}
		if trial%7 == 0 {
			ref[rng.Intn(L)] = 'N' // byte-equality semantics: N matches N only
		}
		boolMasks := neighborhood(read, ref, e)
		packed := neighborhoodMasks(read, ref, e)
		if len(boolMasks) != len(packed) {
			t.Fatalf("mask count %d vs %d", len(packed), len(boolMasks))
		}
		for d := range boolMasks {
			for i := 0; i < L; i++ {
				if bitvec.Bit(packed[d], i) != boolMasks[d][i] {
					t.Fatalf("trial=%d L=%d e=%d diagonal=%d bit %d: packed=%v bool=%v",
						trial, L, e, d, i, bitvec.Bit(packed[d], i), boolMasks[d][i])
				}
			}
			lo := rng.Intn(L + 1)
			hi := lo + rng.Intn(L+1-lo)
			gs, gl := bitvec.LongestZeroRun(packed[d], lo, hi)
			ws, wl := longestZeroRunBool(boolMasks[d], lo, hi)
			if gs != ws || gl != wl {
				t.Fatalf("trial=%d diagonal=%d [%d,%d): packed run (%d,%d) vs bool (%d,%d)",
					trial, d, lo, hi, gs, gl, ws, wl)
			}
		}
	}
}

func TestEstimateTracksEditDistanceLoosely(t *testing.T) {
	// For substitution-only pairs the GateKeeper estimate equals the
	// Hamming distance exactly when mismatches are isolated.
	rng := rand.New(rand.NewSource(16))
	kern := NewKernel(ModeGPU, 100, 10)
	for trial := 0; trial < 50; trial++ {
		read := dna.RandomSeq(rng, 100)
		k := rng.Intn(8)
		ref := dna.MutateSubstitutions(rng, read, k)
		d := kern.Filter(read, ref, 10)
		if d.Estimate > 2*k+2 {
			t.Fatalf("estimate %d wildly above %d substitutions", d.Estimate, k)
		}
		if d.Estimate < 0 {
			t.Fatal("negative estimate")
		}
	}
}
