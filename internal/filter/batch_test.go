package filter

import (
	"encoding/binary"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/dna"
)

// batchTestPairs builds a mixed batch: similar pairs (within e), dissimilar
// random pairs, exact matches, and N-containing pairs (the undefined path).
func batchTestPairs(t *testing.T, rng *rand.Rand, n, L, e int) []BatchPair {
	t.Helper()
	pairs := make([]BatchPair, n)
	for i := range pairs {
		read := dna.RandomSeq(rng, L)
		var ref []byte
		switch i % 4 {
		case 0:
			ref = dna.MutateSubstitutions(rng, read, e/2)
		case 1:
			ref = dna.RandomSeq(rng, L)
		case 2:
			ref = append([]byte(nil), read...)
		default:
			ref = dna.MutateSubstitutions(rng, read, e)
			ref[rng.Intn(L)] = 'N'
		}
		pairs[i] = BatchPair{Read: read, Ref: ref}
	}
	return pairs
}

// TestBatchIdentity is the batch front end's oracle: for every filter and
// every worker count, FilterBatch must return exactly the decisions the
// serial path produces, in input order. This mirrors TestShardedBuildIdentity
// on the index side — parallelism is only a schedule change.
func TestBatchIdentity(t *testing.T) {
	factories := map[string]func() Filter{
		"gatekeeper-gpu":  NewGateKeeperGPU,
		"gatekeeper-fpga": NewGateKeeperFPGA,
		"shd":             NewSHD,
		"shouji":          NewShouji,
		"magnet":          NewMAGNET,
		"sneakysnake":     NewSneakySnake,
		"genasm":          NewGenASM,
	}
	workerCounts := []int{1, 2, runtime.GOMAXPROCS(0), 7}
	const L, e = 100, 5
	rng := rand.New(rand.NewSource(7))
	// 300 pairs spans several grain blocks so multi-worker runs genuinely
	// interleave; the tail block is deliberately partial.
	pairs := batchTestPairs(t, rng, 300, L, e)
	for name, factory := range factories {
		t.Run(name, func(t *testing.T) {
			serial := factory()
			want := make([]Decision, len(pairs))
			for i, p := range pairs {
				want[i] = serial.Filter(p.Read, p.Ref, e)
			}
			for _, w := range workerCounts {
				b := NewBatchFilter(factory, w)
				if b.Name() != serial.Name() {
					t.Fatalf("workers=%d: Name() = %q, want %q", w, b.Name(), serial.Name())
				}
				got := b.FilterBatch(pairs, e)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("workers=%d pair %d: batch decision %+v != serial %+v", w, i, got[i], want[i])
					}
				}
				// Second batch through the same instance: per-worker state
				// must not leak between batches.
				reuse := make([]Decision, len(pairs))
				b.FilterBatchInto(reuse, pairs, e)
				for i := range want {
					if reuse[i] != want[i] {
						t.Fatalf("workers=%d reuse pair %d: %+v != %+v", w, i, reuse[i], want[i])
					}
				}
			}
		})
	}
}

// slowIndexFilter decodes the pair index embedded in the read and returns it
// as the estimate after a jittered sleep, so fast workers routinely finish
// blocks out of claim order. Any misrouted write shows up as dst[i] != i.
type slowIndexFilter struct{ rng *rand.Rand }

func (slowIndexFilter) Name() string { return "slow-index" }

func (f slowIndexFilter) Filter(read, _ []byte, _ int) Decision {
	idx := int(binary.BigEndian.Uint32(read))
	if idx%17 == 0 {
		time.Sleep(time.Duration(1+idx%3) * time.Millisecond)
	}
	return Decision{Accept: true, Estimate: idx}
}

// TestBatchOrderPreserved pins the input-order guarantee under a worker pool
// with deliberately uneven per-pair latency.
func TestBatchOrderPreserved(t *testing.T) {
	const n = 4 * batchGrain // several blocks, so blocks complete out of order
	pairs := make([]BatchPair, n)
	for i := range pairs {
		read := make([]byte, 8)
		binary.BigEndian.PutUint32(read, uint32(i))
		pairs[i] = BatchPair{Read: read, Ref: read}
	}
	b := NewBatchFilter(func() Filter { return slowIndexFilter{} }, 4)
	got := b.FilterBatch(pairs, 0)
	for i, d := range got {
		if d.Estimate != i {
			t.Fatalf("decision %d carries estimate %d: batch results not in input order", i, d.Estimate)
		}
	}
}

// TestBatchFilterConcurrentBatches drives overlapping FilterBatch calls into
// one BatchFilter from several goroutines — the documented "batches
// serialize, pairs parallelize" contract — under -race in CI.
func TestBatchFilterConcurrentBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pairs := batchTestPairs(t, rng, 130, 100, 5)
	serial := NewGateKeeperGPU()
	want := make([]Decision, len(pairs))
	for i, p := range pairs {
		want[i] = serial.Filter(p.Read, p.Ref, 5)
	}
	b := NewBatchFilter(NewGateKeeperGPU, 0) // 0 = machine width
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				got := b.FilterBatch(pairs, 5)
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("concurrent batch pair %d: %+v != %+v", i, got[i], want[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestGateKeeperWrapperConcurrent is the -race regression for the formerly
// unguarded gateKeeper kernel cache: many goroutines hammer ONE wrapper with
// mixed read lengths (growing the length-keyed cache) and growing thresholds
// (forcing GrowMaxE on cached kernels) at once.
func TestGateKeeperWrapperConcurrent(t *testing.T) {
	g := NewGateKeeperGPU()
	lengths := []int{33, 64, 100, 150, 250}
	var wg sync.WaitGroup
	for worker := 0; worker < 8; worker++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for iter := 0; iter < 40; iter++ {
				L := lengths[iter%len(lengths)]
				e := 1 + iter%12 // climbs past earlier maxE values → GrowMaxE
				read := dna.RandomSeq(rng, L)
				if d := g.Filter(read, read, e); !d.Accept || d.Estimate != 0 {
					t.Errorf("identical pair (L=%d e=%d) rejected: %+v", L, e, d)
					return
				}
				far := dna.RandomSeq(rng, L)
				g.Filter(read, far, e)
			}
		}(int64(worker))
	}
	wg.Wait()
}

// TestBatchFilterRangeZeroAllocs guards the batch worker's steady state at
// run time: a claimed block filtered through a GateKeeper instance must not
// allocate. filterRange dispatches through the Filter interface, which the
// static noalloc analyzer rejects by rule, so this function is deliberately
// NOT in lint.NoAllocRegistry — the statically annotated per-worker steady
// state is the engine's cpuFilterRange (internal/gkgpu); this runtime guard
// covers the generic front end.
func TestBatchFilterRangeZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; run without -race")
	}
	rng := rand.New(rand.NewSource(3))
	f := NewGateKeeperGPU()
	pairs := make([]BatchPair, 16)
	for i := range pairs {
		read := dna.RandomSeq(rng, 100)
		pairs[i] = BatchPair{Read: read, Ref: dna.MutateSubstitutions(rng, read, 3)}
	}
	dst := make([]Decision, len(pairs))
	f.Filter(pairs[0].Read, pairs[0].Ref, 5) // warm the kernel cache
	if allocs := testing.AllocsPerRun(200, func() {
		filterRange(f, pairs, dst, 5)
	}); allocs != 0 {
		t.Fatalf("filterRange allocated %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkBatchFilter measures aggregate batch throughput at one worker and
// at machine width over the Fig. 4 geometry (L=100, e=5).
func BenchmarkBatchFilter(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	pairs := make([]BatchPair, 2048)
	for i := range pairs {
		read := dna.RandomSeq(rng, 100)
		var ref []byte
		if i%2 == 0 {
			ref = dna.MutateSubstitutions(rng, read, 3)
		} else {
			ref = dna.RandomSeq(rng, 100)
		}
		pairs[i] = BatchPair{Read: read, Ref: ref}
	}
	widths := []int{1}
	if w := runtime.GOMAXPROCS(0); w > 1 {
		widths = append(widths, w)
	}
	for _, w := range widths {
		b.Run("gatekeeper-gpu-L100-e5-w"+itoa(w), func(b *testing.B) {
			bf := NewBatchFilter(NewGateKeeperGPU, w)
			dst := make([]Decision, len(pairs))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bf.FilterBatchInto(dst, pairs, 5)
			}
			b.StopTimer()
			perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			b.ReportMetric(float64(len(pairs))/(perOp/1e9), "pairs/s")
		})
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
