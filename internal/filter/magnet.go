package filter

import "repro/internal/bitvec"

// magnet implements the MAGNET pre-alignment filter (Alser, Mutlu, Alkan,
// 2017). MAGNET addresses SHD's two main sources of false accepts — ignored
// leading/trailing zeros and naive consecutive-bit counting — by extracting,
// across all 2e+1 diagonal vectors, the e+1 longest non-overlapping runs of
// consecutive matches. Each extraction consumes a one-character border on
// each side (the presumed edit separating consecutive exact regions); the
// pair is accepted when the unmatched remainder is within the threshold.
//
// The diagonal vectors are packed bitmasks and each extraction scans them
// word-at-a-time (bitvec.LongestZeroRun): the extraction loop re-walks every
// vector for each of the e+1 extractions, which made the per-entry bool scan
// MAGNET's dominant cost.
type magnet struct{}

// NewMAGNET returns the MAGNET baseline filter. It is stateless and safe for
// concurrent use.
func NewMAGNET() Filter { return magnet{} }

func (magnet) Name() string { return "MAGNET" }

type magnetInterval struct{ lo, hi int }

func (magnet) Filter(read, ref []byte, e int) Decision {
	if len(read) != len(ref) {
		return Decision{Accept: false}
	}
	L := len(read)
	if L == 0 {
		return Decision{Accept: true}
	}
	masks := neighborhoodMasks(read, ref, e)

	intervals := []magnetInterval{{0, L}}
	matched := 0
	for extraction := 0; extraction < e+1; extraction++ {
		bestLen, bestStart, bestIv := 0, 0, -1
		for ivIdx, iv := range intervals {
			if iv.hi-iv.lo <= 0 {
				continue
			}
			for _, m := range masks {
				start, length := bitvec.LongestZeroRun(m, iv.lo, iv.hi)
				if length > bestLen {
					bestLen, bestStart, bestIv = length, start, ivIdx
				}
			}
		}
		if bestLen == 0 {
			break
		}
		matched += bestLen
		iv := intervals[bestIv]
		// Split the interval, excluding one border character on each side of
		// the extracted region: those positions are the edits that separate
		// consecutive exact-matching segments.
		intervals[bestIv] = magnetInterval{iv.lo, bestStart - 1}
		intervals = append(intervals, magnetInterval{bestStart + bestLen + 1, iv.hi})
	}

	estimate := L - matched
	return Decision{Accept: estimate <= e, Estimate: estimate}
}
