package filter

import (
	"math/rand"
	"testing"

	"repro/internal/align"
	"repro/internal/dna"
)

// ablationDataset builds near-threshold pairs that stress every design
// element: scattered substitutions plus occasional indels.
func ablationDataset(seed int64, n, L int) (pairs [][2][]byte, dists []int) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		read := dna.RandomSeq(rng, L)
		k := 2 + rng.Intn(18)
		mutated := dna.ApplyEdits(read, dna.RandomEdits(rng, L, k, 0.25))
		ref := make([]byte, L)
		c := copy(ref, mutated)
		for j := c; j < L; j++ {
			ref[j] = dna.Alphabet[rng.Intn(4)]
		}
		pairs = append(pairs, [2][]byte{read, ref})
		dists = append(dists, align.Distance(read, ref))
	}
	return pairs, dists
}

func falseAccepts(t *testing.T, kern *Kernel, pairs [][2][]byte, dists []int, e int) (fa, fr int) {
	t.Helper()
	for i, p := range pairs {
		d := kern.Filter(p[0], p[1], e)
		switch {
		case d.Accept && dists[i] > e:
			fa++
		case !d.Accept && dists[i] <= e:
			fr++
		}
	}
	return fa, fr
}

func TestAblationAmendmentReducesFalseAccepts(t *testing.T) {
	pairs, dists := ablationDataset(1, 400, 100)
	full := NewKernel(ModeGPU, 100, 5)
	noAmend := NewKernel(ModeGPU, 100, 5)
	noAmend.SetAblation(Ablation{SkipAmendment: true})
	faFull, frFull := falseAccepts(t, full, pairs, dists, 5)
	faNo, frNo := falseAccepts(t, noAmend, pairs, dists, 5)
	if frFull != 0 {
		t.Fatalf("full kernel produced %d false rejects", frFull)
	}
	if frNo != 0 {
		t.Fatalf("amendment-ablated kernel produced %d false rejects; ablation only removes 1s", frNo)
	}
	if faNo <= faFull {
		t.Errorf("amendment should reduce false accepts: full=%d ablated=%d", faFull, faNo)
	}
}

func TestAblationWindowCountingKeepsHighEDiscrimination(t *testing.T) {
	// At e = 10% of the read length, run counting collapses (nearly every
	// dissimilar pair shows few 1-runs after the 21-mask AND) while the
	// windowed counter keeps rejecting — the Section 5.1 observation that
	// "filtering still continues to serve" at the largest threshold.
	rng := rand.New(rand.NewSource(2))
	L, e := 100, 10
	windows := NewKernel(ModeGPU, L, e)
	runs := NewKernel(ModeGPU, L, e)
	runs.SetAblation(Ablation{CountRuns: true})
	rejWindows, rejRuns := 0, 0
	for i := 0; i < 300; i++ {
		read := dna.RandomSeq(rng, L)
		ref := dna.RandomSeq(rng, L)
		if !windows.Filter(read, ref, e).Accept {
			rejWindows++
		}
		if !runs.Filter(read, ref, e).Accept {
			rejRuns++
		}
	}
	if rejWindows <= rejRuns {
		t.Errorf("windowed counter should out-reject run counting at e=10: windows=%d runs=%d",
			rejWindows, rejRuns)
	}
	if rejWindows < 250 {
		t.Errorf("windowed counter rejected only %d/300 random pairs at e=10", rejWindows)
	}
}

func TestAblationRunCountingStillNoFalseRejects(t *testing.T) {
	// Both counters must preserve the zero-false-reject property; they
	// differ only on the reject side.
	rng := rand.New(rand.NewSource(3))
	kern := NewKernel(ModeGPU, 100, 5)
	kern.SetAblation(Ablation{CountRuns: true})
	for i := 0; i < 200; i++ {
		read := dna.RandomSeq(rng, 100)
		ref := dna.MutateSubstitutions(rng, read, rng.Intn(6))
		if !kern.Filter(read, ref, 5).Accept {
			t.Fatalf("run-counting ablation falsely rejected %d substitutions", i)
		}
	}
}

func TestAblationZeroValueIsFullAlgorithm(t *testing.T) {
	pairs, dists := ablationDataset(4, 100, 100)
	a := NewKernel(ModeGPU, 100, 5)
	b := NewKernel(ModeGPU, 100, 5)
	b.SetAblation(Ablation{})
	for i, p := range pairs {
		da := a.Filter(p[0], p[1], 5)
		db := b.Filter(p[0], p[1], 5)
		if da != db {
			t.Fatalf("zero-value ablation changed decision at pair %d (dist %d)", i, dists[i])
		}
	}
}

func TestKernelStateless(t *testing.T) {
	// The kernel reuses scratch buffers; verify no state leaks between
	// filtrations (same input, same answer, regardless of what ran before).
	rng := rand.New(rand.NewSource(5))
	kern := NewKernel(ModeGPU, 100, 5)
	read := dna.RandomSeq(rng, 100)
	ref := dna.MutateSubstitutions(rng, read, 7)
	first := kern.Filter(read, ref, 5)
	for i := 0; i < 20; i++ {
		kern.Filter(dna.RandomSeq(rng, 100), dna.RandomSeq(rng, 100), i%6)
	}
	if again := kern.Filter(read, ref, 5); again != first {
		t.Fatalf("scratch state leaked: %+v vs %+v", again, first)
	}
}
