package filter

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dna"
)

// refModel is a deliberately slow, per-character implementation of the
// GateKeeper-GPU algorithm — no bit tricks, no word packing — used as the
// oracle for the bit-parallel kernel. Any divergence between the two is a
// bug in the carry-transfer shifts, the collapse, the amendment, the edge
// forcing, or the windowed counter.
func refModel(read, ref []byte, e int, mode Mode) (estimate int, accept bool) {
	L := len(read)
	// Hamming mask.
	hamming := make([]bool, L)
	for i := range hamming {
		hamming[i] = read[i] != ref[i]
	}
	if e == 0 {
		est := refWindows(hamming)
		return est, est == 0
	}
	final := refAmendBools(hamming)
	for k := 1; k <= e; k++ {
		// Deletion mask: read shifted towards higher positions. The shift
		// brings in zero bits, which decode as 'A', so before amendment a
		// vacated position compares 'A' against the reference — exactly
		// what the real bit-parallel XOR produces.
		del := make([]bool, L)
		for i := range del {
			if i-k < 0 {
				del[i] = ref[i] != 'A'
			} else {
				del[i] = read[i-k] != ref[i]
			}
		}
		del = refAmendBools(del)
		for i := 0; i < k; i++ {
			del[i] = mode == ModeGPU // GPU forces 1s, FPGA zeroes
		}
		// Insertion mask: read shifted towards lower positions.
		ins := make([]bool, L)
		for i := range ins {
			if i+k >= L {
				ins[i] = ref[i] != 'A'
			} else {
				ins[i] = read[i+k] != ref[i]
			}
		}
		ins = refAmendBools(ins)
		for i := L - k; i < L; i++ {
			ins[i] = mode == ModeGPU
		}
		for i := range final {
			final[i] = final[i] && del[i] && ins[i]
		}
	}
	est := refWindows(final)
	return est, est <= e
}

// refAmendBools turns 0-runs of length <= 2 flanked by 1s into 1s.
func refAmendBools(mask []bool) []bool {
	out := append([]bool(nil), mask...)
	n := len(mask)
	for i := 0; i < n; i++ {
		if mask[i] {
			continue
		}
		j := i
		for j < n && !mask[j] {
			j++
		}
		if j-i <= 2 && i-1 >= 0 && mask[i-1] && j < n && mask[j] {
			for p := i; p < j; p++ {
				out[p] = true
			}
		}
		i = j - 1
	}
	return out
}

// refWindows counts non-overlapping 4-bit windows containing any set bit.
func refWindows(mask []bool) int {
	count := 0
	for i := 0; i < len(mask); i += 4 {
		hi := i + 4
		if hi > len(mask) {
			hi = len(mask)
		}
		for p := i; p < hi; p++ {
			if mask[p] {
				count++
				break
			}
		}
	}
	return count
}

func TestKernelMatchesReferenceModelExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, L := range []int{17, 32, 33, 100, 150, 250} {
		for _, e := range []int{0, 1, 2, 5, L / 10} {
			for _, mode := range []Mode{ModeGPU, ModeFPGA} {
				kern := NewKernel(mode, L, e)
				for trial := 0; trial < 25; trial++ {
					read := dna.RandomSeq(rng, L)
					var ref []byte
					switch trial % 3 {
					case 0:
						ref = dna.MutateSubstitutions(rng, read, rng.Intn(L/4+1))
					case 1:
						mutated := dna.ApplyEdits(read, dna.RandomEdits(rng, L, rng.Intn(e+3), 0.5))
						ref = make([]byte, L)
						c := copy(ref, mutated)
						for i := c; i < L; i++ {
							ref[i] = dna.Alphabet[rng.Intn(4)]
						}
					default:
						ref = dna.RandomSeq(rng, L)
					}
					wantEst, wantAccept := refModel(read, ref, e, mode)
					d := kern.Filter(read, ref, e)
					if d.Accept != wantAccept || d.Estimate != wantEst {
						t.Fatalf("L=%d e=%d mode=%v trial=%d: kernel (est=%d acc=%v) vs model (est=%d acc=%v)\nread=%s\nref =%s",
							L, e, mode, trial, d.Estimate, d.Accept, wantEst, wantAccept, read, ref)
					}
				}
			}
		}
	}
}

func TestKernelMatchesReferenceModelQuick(t *testing.T) {
	kernGPU := NewKernel(ModeGPU, 64, 6)
	kernFPGA := NewKernel(ModeFPGA, 64, 6)
	f := func(rawRead, rawRef [64]byte, eRaw uint8) bool {
		read := make([]byte, 64)
		ref := make([]byte, 64)
		for i := 0; i < 64; i++ {
			read[i] = dna.Alphabet[int(rawRead[i])%4]
			// Bias towards similarity so both branches of the decision are hit.
			if rawRef[i]%4 == 0 {
				ref[i] = dna.Alphabet[int(rawRef[i]/4)%4]
			} else {
				ref[i] = read[i]
			}
		}
		e := int(eRaw) % 7
		for _, tc := range []struct {
			kern *Kernel
			mode Mode
		}{{kernGPU, ModeGPU}, {kernFPGA, ModeFPGA}} {
			wantEst, wantAccept := refModel(read, ref, e, tc.mode)
			d := tc.kern.Filter(read, ref, e)
			if d.Accept != wantAccept || d.Estimate != wantEst {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
