package filter

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dna"
	"repro/internal/ref32"
)

// refModel is a deliberately slow, per-character implementation of the
// GateKeeper-GPU algorithm — no bit tricks, no word packing — used as the
// oracle for the bit-parallel kernel. Any divergence between the two is a
// bug in the carry-transfer shifts, the collapse, the amendment, the edge
// forcing, or the windowed counter.
func refModel(read, ref []byte, e int, mode Mode) (estimate int, accept bool) {
	L := len(read)
	// Hamming mask.
	hamming := make([]bool, L)
	for i := range hamming {
		hamming[i] = read[i] != ref[i]
	}
	if e == 0 {
		est := refWindows(hamming)
		return est, est == 0
	}
	final := refAmendBools(hamming)
	for k := 1; k <= e; k++ {
		// Deletion mask: read shifted towards higher positions. The shift
		// brings in zero bits, which decode as 'A', so before amendment a
		// vacated position compares 'A' against the reference — exactly
		// what the real bit-parallel XOR produces.
		del := make([]bool, L)
		for i := range del {
			if i-k < 0 {
				del[i] = ref[i] != 'A'
			} else {
				del[i] = read[i-k] != ref[i]
			}
		}
		del = refAmendBools(del)
		for i := 0; i < k; i++ {
			del[i] = mode == ModeGPU // GPU forces 1s, FPGA zeroes
		}
		// Insertion mask: read shifted towards lower positions.
		ins := make([]bool, L)
		for i := range ins {
			if i+k >= L {
				ins[i] = ref[i] != 'A'
			} else {
				ins[i] = read[i+k] != ref[i]
			}
		}
		ins = refAmendBools(ins)
		for i := L - k; i < L; i++ {
			ins[i] = mode == ModeGPU
		}
		for i := range final {
			final[i] = final[i] && del[i] && ins[i]
		}
	}
	est := refWindows(final)
	return est, est <= e
}

// refAmendBools turns 0-runs of length <= 2 flanked by 1s into 1s.
func refAmendBools(mask []bool) []bool {
	out := append([]bool(nil), mask...)
	n := len(mask)
	for i := 0; i < n; i++ {
		if mask[i] {
			continue
		}
		j := i
		for j < n && !mask[j] {
			j++
		}
		if j-i <= 2 && i-1 >= 0 && mask[i-1] && j < n && mask[j] {
			for p := i; p < j; p++ {
				out[p] = true
			}
		}
		i = j - 1
	}
	return out
}

// refWindows counts non-overlapping 4-bit windows containing any set bit.
func refWindows(mask []bool) int {
	count := 0
	for i := 0; i < len(mask); i += 4 {
		hi := i + 4
		if hi > len(mask) {
			hi = len(mask)
		}
		for p := i; p < hi; p++ {
			if mask[p] {
				count++
				break
			}
		}
	}
	return count
}

func TestKernelMatchesReferenceModelExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, L := range []int{17, 32, 33, 64, 65, 100, 150, 250} {
		for _, e := range []int{0, 1, 2, 5, L / 10} {
			for _, mode := range []Mode{ModeGPU, ModeFPGA} {
				exact := NewKernel(mode, L, e)
				exact.SetExactEstimate(true)
				kern := NewKernel(mode, L, e)
				ref32k := ref32.NewKernel(mode == ModeGPU, L)
				for trial := 0; trial < 25; trial++ {
					read := dna.RandomSeq(rng, L)
					var ref []byte
					switch trial % 3 {
					case 0:
						ref = dna.MutateSubstitutions(rng, read, rng.Intn(L/4+1))
					case 1:
						mutated := dna.ApplyEdits(read, dna.RandomEdits(rng, L, rng.Intn(e+3), 0.5))
						ref = make([]byte, L)
						c := copy(ref, mutated)
						for i := c; i < L; i++ {
							ref[i] = dna.Alphabet[rng.Intn(4)]
						}
					default:
						ref = dna.RandomSeq(rng, L)
					}
					wantEst, wantAccept := refModel(read, ref, e, mode)
					d := exact.Filter(read, ref, e)
					if d.Accept != wantAccept || d.Estimate != wantEst {
						t.Fatalf("L=%d e=%d mode=%v trial=%d: exact kernel (est=%d acc=%v) vs model (est=%d acc=%v)\nread=%s\nref =%s",
							L, e, mode, trial, d.Estimate, d.Accept, wantEst, wantAccept, read, ref)
					}
					// The retained 32-bit chain must agree bit for bit with
					// the exact-mode fused kernel.
					est32, acc32 := ref32k.Filter(read, ref, e)
					if acc32 != wantAccept || est32 != wantEst {
						t.Fatalf("L=%d e=%d mode=%v trial=%d: ref32 (est=%d acc=%v) vs model (est=%d acc=%v)",
							L, e, mode, trial, est32, acc32, wantEst, wantAccept)
					}
					// The default kernel may stop early, but its decision is
					// sealed by monotonicity and its estimate never exceeds e
					// on an accept.
					dd := kern.Filter(read, ref, e)
					if dd.Accept != wantAccept {
						t.Fatalf("L=%d e=%d mode=%v trial=%d: early-accept kernel decision %v, want %v",
							L, e, mode, trial, dd.Accept, wantAccept)
					}
					if dd.Accept && dd.Estimate > e {
						t.Fatalf("L=%d e=%d: early-accept estimate %d exceeds threshold", L, e, dd.Estimate)
					}
					if dd.Estimate < wantEst {
						t.Fatalf("L=%d e=%d: early estimate %d below exact %d (count must be monotone)",
							L, e, dd.Estimate, wantEst)
					}
				}
			}
		}
	}
}

func TestKernelMatchesReferenceModelQuick(t *testing.T) {
	kernGPU := NewKernel(ModeGPU, 64, 6)
	kernFPGA := NewKernel(ModeFPGA, 64, 6)
	kernGPU.SetExactEstimate(true)
	kernFPGA.SetExactEstimate(true)
	f := func(rawRead, rawRef [64]byte, eRaw uint8) bool {
		read := make([]byte, 64)
		ref := make([]byte, 64)
		for i := 0; i < 64; i++ {
			read[i] = dna.Alphabet[int(rawRead[i])%4]
			// Bias towards similarity so both branches of the decision are hit.
			if rawRef[i]%4 == 0 {
				ref[i] = dna.Alphabet[int(rawRef[i]/4)%4]
			} else {
				ref[i] = read[i]
			}
		}
		e := int(eRaw) % 7
		for _, tc := range []struct {
			kern *Kernel
			mode Mode
		}{{kernGPU, ModeGPU}, {kernFPGA, ModeFPGA}} {
			wantEst, wantAccept := refModel(read, ref, e, tc.mode)
			d := tc.kern.Filter(read, ref, e)
			if d.Accept != wantAccept || d.Estimate != wantEst {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestKernelMatchesRef32Property drives the fused 64-bit kernel and the
// retained 32-bit unfused chain (internal/ref32) with identical random
// pairs across geometries, ablations and both modes: exact-mode estimates
// and decisions must be bit-identical, and the default early-accept kernel
// must seal the same decisions.
func TestKernelMatchesRef32Property(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, L := range []int{1, 3, 16, 31, 32, 33, 63, 64, 65, 96, 100, 127, 128, 129, 250, 300} {
		for _, mode := range []Mode{ModeGPU, ModeFPGA} {
			for _, abl := range []Ablation{{}, {SkipAmendment: true}, {CountRuns: true}} {
				maxE := L
				if maxE > 20 {
					maxE = 20
				}
				exact := NewKernel(mode, L, maxE)
				exact.SetExactEstimate(true)
				exact.SetAblation(abl)
				def := NewKernel(mode, L, maxE)
				def.SetAblation(abl)
				r32 := ref32.NewKernel(mode == ModeGPU, L)
				r32.SkipAmendment = abl.SkipAmendment
				r32.CountRuns = abl.CountRuns
				for trial := 0; trial < 12; trial++ {
					read := dna.RandomSeq(rng, L)
					var ref []byte
					if trial%2 == 0 {
						ref = dna.MutateSubstitutions(rng, read, rng.Intn(L+1))
					} else {
						ref = dna.RandomSeq(rng, L)
					}
					e := rng.Intn(maxE + 1)
					wantEst, wantAccept := r32.Filter(read, ref, e)
					d := exact.Filter(read, ref, e)
					if d.Accept != wantAccept || d.Estimate != wantEst {
						t.Fatalf("L=%d e=%d mode=%v abl=%+v: fused exact (est=%d acc=%v) vs ref32 (est=%d acc=%v)\nread=%s\nref =%s",
							L, e, mode, abl, d.Estimate, d.Accept, wantEst, wantAccept, read, ref)
					}
					if dd := def.Filter(read, ref, e); dd.Accept != wantAccept {
						t.Fatalf("L=%d e=%d mode=%v abl=%+v: early-accept decision %v, want %v",
							L, e, mode, abl, dd.Accept, wantAccept)
					}
				}
			}
		}
	}
}
