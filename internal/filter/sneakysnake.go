package filter

// sneakySnake implements the SneakySnake pre-alignment filter (Alser et al.,
// 2020). SneakySnake casts approximate string matching as single net routing
// on a (2e+1) x L grid ("the chip maze"): a signal travels from the first
// column to the last along horizontal match segments of any diagonal, and
// each obstacle crossing — a column where no diagonal offers a match
// extension — costs one edit. The greedy solution is optimal for this
// formulation: from the current column, follow the diagonal whose run of
// consecutive matches reaches furthest, then pay one edit to hop the
// obstacle.
type sneakySnake struct{}

// NewSneakySnake returns the SneakySnake baseline filter. It is stateless
// and safe for concurrent use.
func NewSneakySnake() Filter { return sneakySnake{} }

func (sneakySnake) Name() string { return "SneakySnake" }

func (sneakySnake) Filter(read, ref []byte, e int) Decision {
	if len(read) != len(ref) {
		return Decision{Accept: false}
	}
	L := len(read)
	if L == 0 {
		return Decision{Accept: true}
	}

	edits := 0
	col := 0
	for col < L {
		// Longest run of consecutive matches starting at this column over
		// all diagonals in [-e, +e].
		bestRun := 0
		for d := -e; d <= e; d++ {
			run := 0
			for col+run < L {
				ri := col + run - d
				if ri < 0 || ri >= L || read[ri] != ref[col+run] {
					break
				}
				run++
			}
			if run > bestRun {
				bestRun = run
				if col+run >= L {
					break // already reaches the end; no better option exists
				}
			}
		}
		col += bestRun
		if col < L {
			// Obstacle: no diagonal extends the net here; one edit to cross.
			edits++
			col++
			if edits > e {
				return Decision{Accept: false, Estimate: edits}
			}
		}
	}
	return Decision{Accept: edits <= e, Estimate: edits}
}
