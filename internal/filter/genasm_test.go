package filter

import (
	"math/rand"
	"testing"

	"repro/internal/align"
	"repro/internal/dna"
)

func TestGenASMAcceptsExactAndSubs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := NewGenASM()
	for _, L := range []int{50, 100, 150, 250} {
		read := dna.RandomSeq(rng, L)
		if d := g.Filter(read, read, 0); !d.Accept || d.Estimate != 0 {
			t.Fatalf("exact match L=%d: %+v", L, d)
		}
		for k := 0; k <= 5; k++ {
			ref := dna.MutateSubstitutions(rng, read, k)
			if d := g.Filter(read, ref, 5); !d.Accept {
				t.Fatalf("%d subs at e=5 rejected (est=%d)", k, d.Estimate)
			}
		}
	}
}

func TestGenASMEstimateLowerBoundsGlobalDistance(t *testing.T) {
	// Semi-global Bitap distance <= global edit distance, hence never a
	// false reject.
	rng := rand.New(rand.NewSource(2))
	g := NewGenASM()
	for trial := 0; trial < 200; trial++ {
		L := 40 + rng.Intn(120)
		read := dna.RandomSeq(rng, L)
		var ref []byte
		if trial%4 == 0 {
			ref = dna.RandomSeq(rng, L)
		} else {
			mutated := dna.ApplyEdits(read, dna.RandomEdits(rng, L, rng.Intn(10), 0.4))
			ref = make([]byte, L)
			c := copy(ref, mutated)
			for i := c; i < L; i++ {
				ref[i] = dna.Alphabet[rng.Intn(4)]
			}
		}
		e := rng.Intn(10)
		d := g.Filter(read, ref, e)
		trueDist := align.Distance(read, ref)
		if d.Estimate <= e && d.Estimate > trueDist {
			t.Fatalf("estimate %d exceeds true distance %d", d.Estimate, trueDist)
		}
		if trueDist <= e && !d.Accept {
			t.Fatalf("false reject: trueDist=%d e=%d est=%d", trueDist, e, d.Estimate)
		}
	}
}

func TestGenASMRejectsDissimilar(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := NewGenASM()
	rejects := 0
	for i := 0; i < 100; i++ {
		a := dna.RandomSeq(rng, 100)
		b := dna.RandomSeq(rng, 100)
		if !g.Filter(a, b, 5).Accept {
			rejects++
		}
	}
	if rejects < 95 {
		t.Fatalf("GenASM rejected only %d/100 random pairs at e=5", rejects)
	}
}

func TestGenASMSingleIndel(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := NewGenASM()
	for trial := 0; trial < 50; trial++ {
		L := 100
		read := dna.RandomSeq(rng, L)
		pos := rng.Intn(L - 1)
		var op dna.Edit
		if trial%2 == 0 {
			op = dna.Edit{Pos: pos, Op: 'D'}
		} else {
			op = dna.Edit{Pos: pos, Op: 'I', Base: dna.Alphabet[rng.Intn(4)]}
		}
		mutated := dna.ApplyEdits(read, []dna.Edit{op})
		ref := make([]byte, L)
		c := copy(ref, mutated)
		for i := c; i < L; i++ {
			ref[i] = read[i]
		}
		if d := g.Filter(read, ref, 2); !d.Accept {
			t.Fatalf("single indel rejected at e=2 (trial %d, est=%d)", trial, d.Estimate)
		}
	}
}

func TestGenASMEdgeCases(t *testing.T) {
	g := NewGenASM()
	if g.Filter([]byte("ACGT"), []byte("ACG"), 2).Accept {
		t.Fatal("length mismatch accepted")
	}
	if !g.Filter(nil, nil, 0).Accept {
		t.Fatal("empty pair rejected")
	}
	if _, err := New("genasm"); err != nil {
		t.Fatal(err)
	}
}

func TestGenASMMultiWordPatterns(t *testing.T) {
	// Reads beyond 64 and 128 bases exercise the carry chain.
	rng := rand.New(rand.NewSource(5))
	g := NewGenASM()
	for _, L := range []int{64, 65, 128, 129, 200, 250} {
		read := dna.RandomSeq(rng, L)
		ref := dna.MutateSubstitutions(rng, read, 3)
		d := g.Filter(read, ref, 4)
		if !d.Accept {
			t.Fatalf("L=%d: 3 subs rejected at e=4 (est=%d)", L, d.Estimate)
		}
		if d.Estimate > 3 {
			t.Fatalf("L=%d: estimate %d above true distance 3", L, d.Estimate)
		}
	}
}
