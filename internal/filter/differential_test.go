package filter

import (
	"math/rand"
	"testing"

	"repro/internal/align"
	"repro/internal/dna"
)

// differentialCase is one randomized pair with its exact edit distance.
type differentialCase struct {
	read, ref []byte
	dist      int
}

// makeDifferentialCases builds a mixed population of pairs for one read
// length: exact copies, substitution-only mutants, indel-rich mutants near
// and past typical thresholds, and unrelated random windows — the spectrum
// every filter must discriminate.
func makeDifferentialCases(rng *rand.Rand, L, n int) []differentialCase {
	cases := make([]differentialCase, n)
	for i := range cases {
		read := dna.RandomSeq(rng, L)
		var ref []byte
		switch i % 5 {
		case 0: // exact copy
			ref = append([]byte(nil), read...)
		case 1: // few substitutions
			ref = dna.MutateSubstitutions(rng, read, rng.Intn(L/10+1))
		case 2: // indel-rich mutant, near-threshold edit count
			mutated := dna.ApplyEdits(read, dna.RandomEdits(rng, L, rng.Intn(L/10+2), 0.5))
			ref = make([]byte, L)
			for j := range ref {
				if j < len(mutated) {
					ref[j] = mutated[j]
				} else {
					ref[j] = dna.Alphabet[rng.Intn(4)]
				}
			}
		case 3: // heavily diverged mutant
			mutated := dna.ApplyEdits(read, dna.RandomEdits(rng, L, L/4+rng.Intn(L/4+1), 0.3))
			ref = make([]byte, L)
			for j := range ref {
				if j < len(mutated) {
					ref[j] = mutated[j]
				} else {
					ref[j] = dna.Alphabet[rng.Intn(4)]
				}
			}
		default: // unrelated window
			ref = dna.RandomSeq(rng, L)
		}
		cases[i] = differentialCase{read: read, ref: ref, dist: align.Distance(read, ref)}
	}
	return cases
}

// TestDifferentialAllFiltersZeroFalseRejects runs every implemented filter
// against the exact edit distance over thousands of randomized pairs across
// read lengths and thresholds, asserting the hard invariant of the paper's
// accuracy evaluation (Section 5.1): a pre-alignment filter may falsely
// accept — wasted verification — but must never falsely reject a pair
// within threshold, which would silently lose mappings. False-accept rates
// are reported per filter as the diagnostic half of the comparison.
//
// MAGNET is the documented exception: its extraction step consumes a
// one-character border around every selected region, which overcounts edits
// when that border actually matched — the related work (SneakySnake,
// PAPERS.md) records MAGNET as the one comparator that produces false
// rejects. Its false-reject rate is reported and bounded instead.
func TestDifferentialAllFiltersZeroFalseRejects(t *testing.T) {
	perLength := 1500
	if testing.Short() {
		perLength = 300
	}
	rng := rand.New(rand.NewSource(99))
	for _, L := range []int{64, 100, 150, 250} {
		cases := makeDifferentialCases(rng, L, perLength)
		thresholds := []int{0, 2, L / 25, L / 10}
		for _, f := range All() {
			for _, e := range thresholds {
				within, falseAccepts, falseRejects, trueRejects := 0, 0, 0, 0
				for _, c := range cases {
					d := f.Filter(c.read, c.ref, e)
					if c.dist <= e {
						within++
						if !d.Accept {
							if f.Name() != "MAGNET" {
								t.Fatalf("%s: false reject at L=%d e=%d (true distance %d, estimate %d)",
									f.Name(), L, e, c.dist, d.Estimate)
							}
							falseRejects++
						}
					} else if d.Accept {
						falseAccepts++
					} else {
						trueRejects++
					}
				}
				if over := len(cases) - within; over > 0 {
					t.Logf("%-16s L=%-3d e=%-2d  false-accept rate %5.1f%%  (%d/%d over-threshold pairs)",
						f.Name(), L, e, 100*float64(falseAccepts)/float64(over), falseAccepts, over)
				}
				if falseRejects > 0 {
					rate := float64(falseRejects) / float64(within)
					t.Logf("%-16s L=%-3d e=%-2d  false-REJECT rate %5.2f%% (%d/%d within-threshold pairs, documented lossy)",
						f.Name(), L, e, 100*rate, falseRejects, within)
					if rate > 0.01 {
						t.Errorf("%s: false-reject rate %.2f%% at L=%d e=%d exceeds the documented residual level",
							f.Name(), 100*rate, L, e)
					}
				}
			}
		}
	}
}

// TestDifferentialUndefinedPairHandling asserts the 'N' conventions the
// pipeline relies on. The GateKeeper family passes undefined pairs to
// verification untouched (Section 3.3); the comparator tools have no
// undefined-pair mechanism (see neighborhood's doc) and treat 'N' as an
// ordinary mismatching byte, which is why the paper's comparison protocol
// folds undefined pairs into the false-accept accounting.
func TestDifferentialUndefinedPairHandling(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	gateKeeperFamily := map[string]bool{"GateKeeper-GPU": true, "GateKeeper-FPGA": true, "SHD": true}
	for _, f := range All() {
		for trial := 0; trial < 50; trial++ {
			read := dna.RandomSeq(rng, 100)
			ref := append([]byte(nil), read...) // identical but for the N
			if trial%2 == 0 {
				read[rng.Intn(100)] = 'N'
			} else {
				ref[rng.Intn(100)] = 'N'
			}
			d := f.Filter(read, ref, 5)
			if gateKeeperFamily[f.Name()] {
				if !d.Accept || !d.Undefined {
					t.Fatalf("%s: undefined pair not passed through: %+v", f.Name(), d)
				}
			} else if !d.Accept {
				// A single 'N' on an otherwise identical pair is one
				// mismatch; no comparator may reject it at e=5.
				t.Fatalf("%s: rejected a near-identical pair over one 'N': %+v", f.Name(), d)
			}
		}
	}
}
