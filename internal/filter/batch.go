package filter

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// batchGrain is how many pairs a batch worker claims per scheduling step:
// large enough that the shared cursor's cache line is touched rarely
// relative to kernel work, small enough that a pathological pair (or a
// descheduled worker) cannot strand a long tail on one goroutine.
const batchGrain = 64

// BatchPair is one read/candidate-segment input to a BatchFilter.
type BatchPair struct {
	Read, Ref []byte
}

// BatchFilter is the machine-width batch filtering front end: it fans the
// pairs of one batch across a fixed pool of worker goroutines, each owning
// a private Filter instance built by the constructor's factory (a Kernel is
// a per-thread stack frame, so per-worker instances are what make the fan-
// out safe; the read-length-keyed kernel cache makes them cheap). Decisions
// are bit-identical to running one factory instance serially over the batch
// — pairs are filtered independently, only the schedule changes — for any
// worker count, and always come back in input order: worker w writing
// decision i means dst[i] belongs to pairs[i], regardless of which worker
// claimed it or when it finished.
//
// A BatchFilter is safe for concurrent use; concurrent batches serialize on
// an internal mutex (the parallelism lives inside a batch, across its
// pairs), exactly like the engine's device buffers.
type BatchFilter struct {
	mu      sync.Mutex
	workers int
	insts   []Filter
}

// NewBatchFilter builds a batch front end over workers instances of the
// factory's filter. workers <= 0 means GOMAXPROCS — the machine width.
func NewBatchFilter(factory func() Filter, workers int) *BatchFilter {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	b := &BatchFilter{workers: workers, insts: make([]Filter, workers)}
	for i := range b.insts {
		b.insts[i] = factory()
	}
	return b
}

// Name identifies the underlying filter.
func (b *BatchFilter) Name() string { return b.insts[0].Name() }

// Workers returns the worker pool width.
func (b *BatchFilter) Workers() int { return b.workers }

// FilterBatch filters every pair at threshold e across the worker pool and
// returns the decisions in input order.
func (b *BatchFilter) FilterBatch(pairs []BatchPair, e int) []Decision {
	dst := make([]Decision, len(pairs))
	b.FilterBatchInto(dst, pairs, e)
	return dst
}

// FilterBatchInto is FilterBatch writing into a caller-owned slice, so the
// steady state of a reused dst allocates nothing beyond the worker
// goroutines themselves. len(dst) must equal len(pairs).
func (b *BatchFilter) FilterBatchInto(dst []Decision, pairs []BatchPair, e int) {
	if len(dst) != len(pairs) {
		panic(fmt.Sprintf("filter: BatchFilter dst length %d != pairs length %d", len(dst), len(pairs)))
	}
	n := len(pairs)
	if n == 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	workers := b.workers
	if maxUseful := (n + batchGrain - 1) / batchGrain; workers > maxUseful {
		workers = maxUseful
	}
	if workers == 1 {
		filterRange(b.insts[0], pairs, dst, e)
		return
	}
	// Dynamic distribution: workers claim grain-sized blocks from a shared
	// cursor, so a slow pair (or a busy core) only delays its own block and
	// the batch finishes as soon as the last block does.
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(f Filter) {
			defer wg.Done()
			for {
				hi := int(cursor.Add(batchGrain))
				lo := hi - batchGrain
				if lo >= n {
					return
				}
				if hi > n {
					hi = n
				}
				filterRange(f, pairs[lo:hi], dst[lo:hi], e)
			}
		}(b.insts[w])
	}
	wg.Wait()
}

// filterRange is one worker's claimed block: the per-worker steady state.
// With a GateKeeper instance it allocates nothing (the wrapper's cache hit
// and the fused kernel are both allocation-free; TestBatchFilterRangeZeroAllocs
// guards it at run time — the dynamic Filter call is why this function
// cannot carry the static //gk:noalloc annotation, whose analyzer rejects
// interface dispatch; the statically proven per-worker steady state is the
// engine's cpuFilterRange in internal/gkgpu).
func filterRange(f Filter, pairs []BatchPair, dst []Decision, e int) {
	for i := range pairs {
		dst[i] = f.Filter(pairs[i].Read, pairs[i].Ref, e)
	}
}
