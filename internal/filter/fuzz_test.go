package filter

import (
	"testing"

	"repro/internal/align"
	"repro/internal/dna"
	"repro/internal/ref32"
)

// FuzzKernelFilterEncoded drives the improved GateKeeper kernel with
// arbitrary sequence pairs and thresholds. The fuzzed invariants are the
// kernel's load-bearing guarantees: it must never panic for any geometry
// the engine can configure, and it must never falsely reject — a pair
// whose exact edit distance is within threshold always passes to
// verification (the paper's Section 5.1 invariant, here pushed beyond the
// curated datasets onto adversarial inputs). The raw-byte FilterChecked
// path must agree with the pre-encoded path the engine uses, and the fused
// 64-bit kernel must stay bit-identical to the retained 32-bit unfused
// chain (internal/ref32): same decision always, same estimate in
// exact-estimate mode.
func FuzzKernelFilterEncoded(f *testing.F) {
	f.Add([]byte("ACGTACGTACGTACGTACGT"), []byte("ACGTACGTACGAACGTACGT"), uint8(2))
	f.Add([]byte("AAAAAAAAAAAAAAAAA"), []byte("TTTTTTTTTTTTTTTTT"), uint8(0))
	f.Add([]byte("ACACACACACACACACACACACACACACACAC"), []byte("CACACACACACACACACACACACACACACACA"), uint8(5))
	f.Add([]byte{0x00, 0xFF, 0x7F, 0x80, 0x01}, []byte{0xFF, 0x00, 0x80, 0x7F, 0x02}, uint8(9))
	f.Fuzz(func(t *testing.T, rawRead, rawRef []byte, e8 uint8) {
		L := len(rawRead)
		if len(rawRef) < L {
			L = len(rawRef)
		}
		if L == 0 {
			return
		}
		if L > 300 {
			L = 300 // beyond the paper's longest reads; keeps iterations fast
		}
		// Map arbitrary bytes onto the alphabet so the pair is well formed;
		// the encoding layer's own 'N' handling is FuzzDNAEncodeRoundTrip's
		// business.
		read := make([]byte, L)
		ref := make([]byte, L)
		for i := 0; i < L; i++ {
			read[i] = dna.Alphabet[rawRead[i]&3]
			ref[i] = dna.Alphabet[rawRef[i]&3]
		}
		e := int(e8) % (L + 1)

		kern := NewKernel(ModeGPU, L, e)
		readEnc, err := dna.Encode(read)
		if err != nil {
			t.Fatal(err)
		}
		refEnc, err := dna.Encode(ref)
		if err != nil {
			t.Fatal(err)
		}
		est, accept := kern.FilterEncoded(readEnc, refEnc, e)
		if est < 0 {
			t.Fatalf("negative estimate %d", est)
		}
		if d := align.Distance(read, ref); d <= e && !accept {
			t.Fatalf("false reject: L=%d e=%d true distance %d estimate %d", L, e, d, est)
		}
		checked, err := kern.FilterChecked(read, ref, e)
		if err != nil {
			t.Fatalf("FilterChecked rejected kernel geometry: %v", err)
		}
		if checked.Accept != accept || checked.Estimate != est {
			t.Fatalf("raw-byte path drifted from encoded path: %+v vs est=%d accept=%v",
				checked, est, accept)
		}

		// Differential against the retained 32-bit reference chain: the
		// default kernel's sealed decision must match, and the exact-mode
		// kernel must reproduce the estimate bit for bit.
		r32 := ref32.NewKernel(true, L)
		est32, acc32 := r32.Filter(read, ref, e)
		if acc32 != accept {
			t.Fatalf("64-bit decision %v diverged from 32-bit reference %v (L=%d e=%d est=%d est32=%d)",
				accept, acc32, L, e, est, est32)
		}
		exact := NewKernel(ModeGPU, L, e)
		exact.SetExactEstimate(true)
		estX, accX := exact.FilterEncoded(readEnc, refEnc, e)
		if accX != acc32 || estX != est32 {
			t.Fatalf("exact 64-bit (est=%d acc=%v) diverged from 32-bit reference (est=%d acc=%v), L=%d e=%d",
				estX, accX, est32, acc32, L, e)
		}
	})
}
