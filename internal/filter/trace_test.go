package filter

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dna"
)

func TestTraceMatchesKernelDecision(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		L := 40 + rng.Intn(80)
		e := rng.Intn(6)
		read := dna.RandomSeq(rng, L)
		ref := dna.MutateSubstitutions(rng, read, rng.Intn(10))
		for _, mode := range []Mode{ModeGPU, ModeFPGA} {
			tr, err := Trace(mode, read, ref, e)
			if err != nil {
				t.Fatal(err)
			}
			kern := NewKernel(mode, L, e)
			kern.SetExactEstimate(true) // Trace's estimate is always exhaustive
			d := kern.Filter(read, ref, e)
			if tr.Accept != d.Accept || tr.Estimate != d.Estimate {
				t.Fatalf("trace (est=%d acc=%v) != kernel (est=%d acc=%v), mode=%v trial=%d",
					tr.Estimate, tr.Accept, d.Estimate, d.Accept, mode, trial)
			}
		}
	}
}

func TestTraceStructure(t *testing.T) {
	read := []byte("ACGTACGTACGTACGT")
	ref := []byte("ACGTACATACGTACGT")
	tr, err := Trace(ModeGPU, read, ref, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Steps) != 5 { // Hamming + 2 deletions + 2 insertions
		t.Fatalf("got %d steps, want 5", len(tr.Steps))
	}
	if tr.Steps[0].Name != "Hamming" || tr.Steps[0].Shift != 0 {
		t.Fatalf("first step: %+v", tr.Steps[0])
	}
	if tr.Steps[1].Shift != 1 || tr.Steps[2].Shift != -1 {
		t.Fatalf("shift order wrong: %+v %+v", tr.Steps[1], tr.Steps[2])
	}
	for _, s := range tr.Steps {
		if len(s.H) != 16 || len(s.A) != 16 {
			t.Fatalf("mask strings wrong length in %q", s.Name)
		}
	}
	// Hamming mask must flag exactly the one substitution.
	if strings.Count(tr.Steps[0].H, "1") != 1 {
		t.Fatalf("Hamming mask = %s", tr.Steps[0].H)
	}
	out := tr.Render()
	for _, want := range []string{"GateKeeper-GPU", "Hamming", "AND", "estimate="} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render missing %q:\n%s", want, out)
		}
	}
}

func TestTraceFigure2EdgeScenario(t *testing.T) {
	// The Figure 2/3 demonstration: edge mismatches survive the AND in GPU
	// mode (forced 1s) and vanish in FPGA mode (vacated zeros).
	L, e := 40, 2
	read := []byte(strings.Repeat("A", L))
	ref := append([]byte(nil), read...)
	ref[0], ref[1] = 'C', 'C'
	ref[L-1], ref[L-2] = 'C', 'C'
	ref[20] = 'C'

	gpu, err := Trace(ModeGPU, read, ref, e)
	if err != nil {
		t.Fatal(err)
	}
	fpga, err := Trace(ModeFPGA, read, ref, e)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(gpu.Final, "11") || !strings.HasSuffix(gpu.Final, "11") {
		t.Fatalf("GPU final mask lost edge errors: %s", gpu.Final)
	}
	if !strings.HasPrefix(fpga.Final, "00") || !strings.HasSuffix(fpga.Final, "00") {
		t.Fatalf("FPGA final mask should erase edge errors: %s", fpga.Final)
	}
	if gpu.Estimate <= fpga.Estimate {
		t.Fatalf("GPU estimate %d should exceed FPGA %d here", gpu.Estimate, fpga.Estimate)
	}
}

func TestTraceErrors(t *testing.T) {
	if _, err := Trace(ModeGPU, []byte("ACG"), []byte("ACGT"), 1); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Trace(ModeGPU, []byte("ACNT"), []byte("ACGT"), 1); err == nil {
		t.Fatal("N accepted in trace")
	}
}

func TestTraceExactMode(t *testing.T) {
	read := []byte("ACGTACGT")
	tr, err := Trace(ModeGPU, read, read, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Accept || tr.Estimate != 0 || len(tr.Steps) != 1 {
		t.Fatalf("exact trace: %+v", tr)
	}
}
