package filter

import (
	"fmt"
	"strings"

	"repro/internal/bitvec"
	"repro/internal/dna"
)

// MaskTrace records every intermediate bitvector of one filtration — the
// material of the paper's Figures 2 and 3 and Sup. Figure S.1, where H is
// the Hamming (XOR) mask of a shifted comparison and A its amended form.
type MaskTrace struct {
	ReadLen int
	E       int
	Mode    Mode

	Steps []MaskStep
	// Final is the AND of all amended (and edge-forced) masks.
	Final string
	// Estimate and Accept are the kernel's decision for the pair.
	Estimate int
	Accept   bool
}

// MaskStep is one of the 2e+1 mask constructions.
type MaskStep struct {
	// Name is "Hamming", "Deletion k" or "Insertion k".
	Name string
	// Shift is 0 for the Hamming mask, +k for deletions, -k for insertions.
	Shift int
	// H is the raw XOR mask ('0' match, '1' mismatch), position 0 first.
	H string
	// A is the amended mask after edge treatment (forced 1s in GPU mode,
	// zeroed in FPGA mode).
	A string
}

// Trace runs one filtration capturing all intermediate masks. It allocates
// freely and exists for inspection, documentation and debugging; the hot
// path is Kernel.FilterEncoded. Its estimate is always exhaustive, so it
// matches a Kernel in exact-estimate mode (SetExactEstimate) — the default
// kernel may seal an accept early with a coarser (but still <= e) estimate.
func Trace(mode Mode, read, ref []byte, e int) (MaskTrace, error) {
	if len(read) != len(ref) {
		return MaskTrace{}, fmt.Errorf("filter: trace on unequal lengths %d/%d", len(read), len(ref))
	}
	if err := dna.Validate(read); err != nil {
		return MaskTrace{}, err
	}
	if err := dna.Validate(ref); err != nil {
		return MaskTrace{}, err
	}
	L := len(read)
	readEnc, err := dna.Encode(read)
	if err != nil {
		return MaskTrace{}, err
	}
	refEnc, err := dna.Encode(ref)
	if err != nil {
		return MaskTrace{}, err
	}
	ew := bitvec.EncodedWords(L)
	mw := bitvec.MaskWords(L)
	shifted := make([]uint64, ew)
	xorBuf := make([]uint64, ew)
	mask := make([]uint64, mw)
	amended := make([]uint64, mw)
	final := make([]uint64, mw)

	tr := MaskTrace{ReadLen: L, E: e, Mode: mode}

	build := func(name string, shift int) {
		switch {
		case shift == 0:
			copy(shifted, readEnc)
		case shift > 0:
			bitvec.ShiftCharsUp(shifted, readEnc, shift)
		default:
			bitvec.ShiftCharsDown(shifted, readEnc, -shift)
		}
		bitvec.XorInto(xorBuf, shifted, refEnc)
		bitvec.Collapse(mask, xorBuf)
		bitvec.ClearTail(mask, L)
		h := bitvec.String(mask, L)
		bitvec.Amend(amended, mask, L)
		switch {
		case shift > 0 && mode == ModeGPU:
			bitvec.SetLeadingOnes(amended, shift)
		case shift > 0:
			bitvec.ClearLeading(amended, shift)
		case shift < 0 && mode == ModeGPU:
			bitvec.SetTrailingOnes(amended, L, -shift)
		case shift < 0:
			bitvec.ClearTrailing(amended, L, -shift)
		}
		tr.Steps = append(tr.Steps, MaskStep{
			Name: name, Shift: shift, H: h, A: bitvec.String(amended, L),
		})
		if len(tr.Steps) == 1 {
			copy(final, amended)
		} else {
			bitvec.AndInto(final, final, amended)
		}
	}

	build("Hamming", 0)
	if e > 0 {
		for k := 1; k <= e; k++ {
			build(fmt.Sprintf("Deletion %d", k), k)
			build(fmt.Sprintf("Insertion %d", k), -k)
		}
		tr.Final = bitvec.String(final, L)
		tr.Estimate = bitvec.CountWindowsLUT(final, L)
	} else {
		tr.Final = tr.Steps[0].H
		tr.Estimate = bitvec.CountWindowsLUT(mask, L)
	}
	tr.Accept = tr.Estimate <= e
	if e == 0 {
		tr.Accept = tr.Estimate == 0
	}
	return tr, nil
}

// Render prints the trace in the visual style of the paper's figures.
func (t MaskTrace) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "mode=%s L=%d e=%d\n", modeName(t.Mode), t.ReadLen, t.E)
	for _, s := range t.Steps {
		fmt.Fprintf(&sb, "%-12s H %s\n", s.Name, s.H)
		fmt.Fprintf(&sb, "%-12s A %s\n", "", s.A)
	}
	fmt.Fprintf(&sb, "%-12s   %s\n", "AND", t.Final)
	fmt.Fprintf(&sb, "estimate=%d accept=%v\n", t.Estimate, t.Accept)
	return sb.String()
}

func modeName(m Mode) string {
	if m == ModeFPGA {
		return "GateKeeper-FPGA"
	}
	return "GateKeeper-GPU"
}
