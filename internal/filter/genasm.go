package filter

// genASM is a GenASM-style pre-alignment filter (Senol Cali et al., MICRO
// 2020, discussed in the paper's related work): approximate string matching
// with the Bitap algorithm extended to edits (Wu-Manber), bit-parallel over
// 64-bit words. The read is matched against the candidate segment in
// semi-global mode (free leading deletions of the segment); the pair is
// accepted when a match with at most e errors ends at the segment's final
// position. Semi-global distance lower-bounds global distance, so the
// filter never falsely rejects.
type genASM struct{}

// NewGenASM returns the GenASM-like Bitap baseline. It is stateless and
// safe for concurrent use.
func NewGenASM() Filter { return genASM{} }

func (genASM) Name() string { return "GenASM" }

func (genASM) Filter(read, ref []byte, e int) Decision {
	if len(read) != len(ref) {
		return Decision{Accept: false}
	}
	m := len(read)
	if m == 0 {
		return Decision{Accept: true}
	}
	words := (m + 63) / 64
	lastWord := words - 1
	lastBit := uint((m - 1) % 64)

	// Pattern masks: pm[c][w] has bit i set when read[i] == c.
	var pm [256][]uint64
	for i, c := range read {
		if pm[c] == nil {
			pm[c] = make([]uint64, words)
		}
		pm[c][i/64] |= uint64(1) << uint(i%64)
	}
	zero := make([]uint64, words)

	// r[d] is the Bitap state for exactly d errors; bit i set means the
	// read's prefix of length i+1 matches a window ending at the current
	// text position with <= d errors.
	r := make([][]uint64, e+1)
	next := make([][]uint64, e+1)
	for d := range r {
		r[d] = make([]uint64, words)
		next[d] = make([]uint64, words)
		// Initial state: the length-i prefix of the read aligns against the
		// empty text with i edits, so R[d] starts with its d lowest bits set.
		for i := 0; i < d && i < m; i++ {
			r[d][i/64] |= uint64(1) << uint(i%64)
		}
	}

	estimate := e + 1
	for j := 0; j < m; j++ {
		mask := pm[ref[j]]
		if mask == nil {
			mask = zero
		}
		for d := 0; d <= e; d++ {
			// next[d] = ((r[d] << 1) | 1) & mask                  (match)
			//         | r[d-1]                                    (deletion)
			//         | (r[d-1] << 1)                             (substitution)
			//         | (next[d-1] << 1)                          (insertion)
			shiftedOld := shiftLeftOne(r[d])
			shiftedOld[0] |= 1
			for w := 0; w < words; w++ {
				next[d][w] = shiftedOld[w] & mask[w]
			}
			if d > 0 {
				subIns := shiftLeftOne(r[d-1])
				insNew := shiftLeftOne(next[d-1])
				subIns[0] |= 1
				insNew[0] |= 1
				for w := 0; w < words; w++ {
					next[d][w] |= r[d-1][w] | subIns[w] | insNew[w]
				}
			}
		}
		r, next = next, r
		if j == m-1 {
			for d := 0; d <= e; d++ {
				if r[d][lastWord]>>lastBit&1 == 1 {
					estimate = d
					break
				}
			}
		}
	}
	return Decision{Accept: estimate <= e, Estimate: estimate}
}

// shiftLeftOne returns v shifted left by one bit across words.
func shiftLeftOne(v []uint64) []uint64 {
	out := make([]uint64, len(v))
	var carry uint64
	for w := 0; w < len(v); w++ {
		out[w] = v[w]<<1 | carry
		carry = v[w] >> 63
	}
	return out
}
