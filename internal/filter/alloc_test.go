package filter

import (
	"math/rand"
	"testing"

	"repro/internal/dna"
	"repro/internal/lint"
)

// TestFilterEncodedZeroAllocs is the kernel hot-path guard: a filtration
// over pre-encoded words — accepted, rejected, early-sealed or exhaustive —
// must not allocate. The engine runs this path once per candidate pair, so
// a single stray allocation multiplies by hundreds of millions at paper
// scale.
func TestFilterEncodedZeroAllocs(t *testing.T) {
	// The runtime guard and the static analyzer must cover the same
	// function: if FilterEncoded ever drops out of the noalloc registry,
	// this test is guarding something gklint no longer checks.
	if !lint.IsNoAlloc("repro/internal/filter", "Kernel.FilterEncoded") {
		t.Fatal("Kernel.FilterEncoded is not in lint.NoAllocRegistry; static and runtime guards have drifted")
	}
	if raceEnabled {
		t.Skip("race instrumentation allocates; run without -race")
	}
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct {
		name  string
		L, e  int
		exact bool
	}{
		{"L100-e5", 100, 5, false},
		{"L100-e5-exact", 100, 5, true},
		{"L250-e10", 250, 10, false},
		{"L33-e0", 33, 0, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			kern := NewKernel(ModeGPU, tc.L, tc.e)
			kern.SetExactEstimate(tc.exact)
			read := dna.RandomSeq(rng, tc.L)
			similar := dna.MutateSubstitutions(rng, read, tc.e/2)
			dissimilar := dna.RandomSeq(rng, tc.L)
			readEnc, _ := dna.Encode(read)
			simEnc, _ := dna.Encode(similar)
			disEnc, _ := dna.Encode(dissimilar)
			var est int
			var acc bool
			if allocs := testing.AllocsPerRun(500, func() {
				est, acc = kern.FilterEncoded(readEnc, simEnc, tc.e)
				est, acc = kern.FilterEncoded(readEnc, disEnc, tc.e)
			}); allocs != 0 {
				t.Fatalf("FilterEncoded allocated %.1f allocs/op, want 0", allocs)
			}
			_, _ = est, acc
		})
	}
}

// TestFilterCheckedZeroAllocs guards the raw-byte path too (encode into the
// kernel's scratch plus the fused filtration).
func TestFilterCheckedZeroAllocs(t *testing.T) {
	if !lint.IsNoAlloc("repro/internal/filter", "Kernel.FilterChecked") {
		t.Fatal("Kernel.FilterChecked is not in lint.NoAllocRegistry; static and runtime guards have drifted")
	}
	if raceEnabled {
		t.Skip("race instrumentation allocates; run without -race")
	}
	rng := rand.New(rand.NewSource(2))
	kern := NewKernel(ModeGPU, 100, 5)
	read := dna.RandomSeq(rng, 100)
	ref := dna.MutateSubstitutions(rng, read, 3)
	var d Decision
	if allocs := testing.AllocsPerRun(500, func() {
		d, _ = kern.FilterChecked(read, ref, 5)
	}); allocs != 0 {
		t.Fatalf("FilterChecked allocated %.1f allocs/op, want 0", allocs)
	}
	_ = d
}
