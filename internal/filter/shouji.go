package filter

// shouji implements the Shouji pre-alignment filter (Alser et al., 2019).
// Shouji builds a neighborhood map of 2e+1 diagonals, then slides a 4-column
// window across it; in each window it selects the diagonal segment with the
// most matches and, if that segment improves on what previous windows
// recorded, copies it into a global bitvector. The surviving 1s approximate
// the alignment's edits: the pair is accepted when their count is within the
// threshold.
type shouji struct{}

// shoujiWindow is the sliding search window size used by the paper.
const shoujiWindow = 4

// NewShouji returns the Shouji baseline filter. It is stateless and safe for
// concurrent use.
func NewShouji() Filter { return shouji{} }

func (shouji) Name() string { return "Shouji" }

func (shouji) Filter(read, ref []byte, e int) Decision {
	if len(read) != len(ref) {
		return Decision{Accept: false}
	}
	L := len(read)
	if L == 0 {
		return Decision{Accept: true}
	}
	masks := neighborhood(read, ref, e)

	// The Shouji bitvector starts all-ones (no common subsequence found yet).
	sb := make([]bool, L)
	for i := range sb {
		sb[i] = true
	}

	for j := 0; j < L; j++ {
		hi := j + shoujiWindow
		if hi > L {
			hi = L
		}
		// Find the diagonal with the most matches in this window.
		var best []bool
		bestZeros := -1
		for _, m := range masks {
			zeros := 0
			for i := j; i < hi; i++ {
				if !m[i] {
					zeros++
				}
			}
			if zeros > bestZeros {
				bestZeros, best = zeros, m
			}
		}
		// Record it only if it improves on what is already recorded, and
		// merge rather than overwrite: a zero (match) once found is never
		// flipped back to one. Overwriting the whole window would let a
		// later window's diagonal clobber matches recorded by an earlier
		// one near the window boundary, overcounting the edits of an
		// indel-bearing alignment — a false reject, which Shouji by
		// construction must never produce (its selected common
		// subsequences only ever under-count the true edit count).
		existing := 0
		for i := j; i < hi; i++ {
			if !sb[i] {
				existing++
			}
		}
		if bestZeros > existing {
			for i := j; i < hi; i++ {
				sb[i] = sb[i] && best[i]
			}
		}
	}

	estimate := 0
	for _, bit := range sb {
		if bit {
			estimate++
		}
	}
	return Decision{Accept: estimate <= e, Estimate: estimate}
}
