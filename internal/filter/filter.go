// Package filter implements pre-alignment filters for short read mapping:
// the paper's contribution (the improved GateKeeper algorithm of
// GateKeeper-GPU) and the five comparators of its accuracy evaluation —
// GateKeeper-FPGA, SHD, MAGNET, Shouji, and SneakySnake.
//
// A pre-alignment filter examines a (read, candidate reference segment) pair
// and decides whether the pair can possibly align within an edit-distance
// threshold e. Filters may falsely accept (pass a pair whose true distance
// exceeds e — wasted verification work) but should never falsely reject
// (drop a pair that would have aligned — lost mappings). Every experiment in
// Section 5.1 measures exactly these two failure modes against the exact
// edit distance ("Edlib", package align).
package filter

import "fmt"

// Decision is the outcome of one filtration.
type Decision struct {
	// Accept reports whether the pair should proceed to verification.
	Accept bool
	// Estimate is the filter's approximation of the edit distance. It is
	// meaningful only when the filter computed one (Undefined pairs skip
	// filtration entirely). The GateKeeper kernels seal accepts early by
	// default, so an accepted pair's Estimate is an upper bound (still
	// <= e) rather than the exhaustive windowed count; callers comparing
	// estimates should request Kernel.SetExactEstimate (the gatekeeper
	// wrappers forward it).
	Estimate int
	// Undefined reports that the pair contained an unknown base call ('N')
	// and was passed through without filtration, as GateKeeper-GPU does by
	// design (Section 3.3).
	Undefined bool
}

// Filter is a pre-alignment filter. Implementations must be safe for
// concurrent use by multiple goroutines unless documented otherwise.
type Filter interface {
	// Name identifies the filter in tables and harness output.
	Name() string
	// Filter decides whether read and ref (equal-length sequences) may be
	// within edit distance e of each other.
	Filter(read, ref []byte, e int) Decision
}

// New constructs a filter by its harness name. Recognized names:
// gatekeeper-gpu, gatekeeper-fpga, shd, magnet, shouji, sneakysnake, and
// genasm (a related-work extension beyond the paper's comparison set).
func New(name string) (Filter, error) {
	switch name {
	case "gatekeeper-gpu":
		return NewGateKeeperGPU(), nil
	case "gatekeeper-fpga":
		return NewGateKeeperFPGA(), nil
	case "shd":
		return NewSHD(), nil
	case "magnet":
		return NewMAGNET(), nil
	case "shouji":
		return NewShouji(), nil
	case "sneakysnake":
		return NewSneakySnake(), nil
	case "genasm":
		return NewGenASM(), nil
	default:
		return nil, fmt.Errorf("filter: unknown filter %q", name)
	}
}

// All returns one instance of every implemented filter, in the order the
// paper's comparison figures list them.
func All() []Filter {
	return []Filter{
		NewGateKeeperGPU(),
		NewGateKeeperFPGA(),
		NewSHD(),
		NewShouji(),
		NewMAGNET(),
		NewSneakySnake(),
	}
}
