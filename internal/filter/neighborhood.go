package filter

import "repro/internal/bitvec"

// neighborhood builds the 2e+1 diagonal mismatch vectors shared by the
// MAGNET, Shouji and SneakySnake baselines. Entry masks[e+d][i] is false
// (match) when the read shifted by d characters agrees with the reference at
// position i, for diagonals d in [-e, +e]; positions the shift vacates are
// mismatches. Diagonal d=+k corresponds to GateKeeper's k-deletion mask and
// d=-k to its k-insertion mask.
//
// Byte equality is used directly, so an 'N' matches another 'N' — the
// comparator tools have no undefined-pair mechanism, which is why the
// paper's comparison tables fold GateKeeper-GPU's undefined pairs into its
// false-accept counts.
func neighborhood(read, ref []byte, e int) [][]bool {
	L := len(read)
	masks := make([][]bool, 2*e+1)
	for d := -e; d <= e; d++ {
		m := make([]bool, L)
		for i := 0; i < L; i++ {
			ri := i - d // read index aligned against ref position i
			if ri < 0 || ri >= L {
				m[i] = true
				continue
			}
			m[i] = read[ri] != ref[i]
		}
		masks[e+d] = m
	}
	return masks
}

// longestZeroRunBool finds the longest run of matches (false entries) in
// mask within [lo, hi), returning its start and length (0 when none). It is
// the per-entry oracle for the packed scan MAGNET actually runs
// (bitvec.LongestZeroRun); the property tests hold the two together.
func longestZeroRunBool(mask []bool, lo, hi int) (start, length int) {
	bestStart, bestLen := lo, 0
	curStart, curLen := lo, 0
	for i := lo; i < hi; i++ {
		if !mask[i] {
			if curLen == 0 {
				curStart = i
			}
			curLen++
			if curLen > bestLen {
				bestStart, bestLen = curStart, curLen
			}
		} else {
			curLen = 0
		}
	}
	return bestStart, bestLen
}

// neighborhoodMasks is neighborhood in packed form: the same 2*e+1 diagonal
// vectors as 1-bit-per-base masks (bit set = mismatch), in one backing
// allocation. MAGNET's extraction loop re-scans these vectors e+1 times per
// pair, so it wants the word-at-a-time bitvec.LongestZeroRun rather than a
// per-entry walk. The same byte-equality semantics apply ('N' matches 'N').
func neighborhoodMasks(read, ref []byte, e int) [][]uint64 {
	L := len(read)
	mw := bitvec.MaskWords(L)
	masks := make([][]uint64, 2*e+1)
	backing := make([]uint64, (2*e+1)*mw)
	for d := -e; d <= e; d++ {
		m := backing[(e+d)*mw : (e+d+1)*mw]
		var w uint64
		for i := 0; i < L; i++ {
			ri := i - d // read index aligned against ref position i
			if ri < 0 || ri >= L || read[ri] != ref[i] {
				w |= uint64(1) << uint(i&63)
			}
			if i&63 == 63 {
				m[i>>6] = w
				w = 0
			}
		}
		if L&63 != 0 {
			m[mw-1] = w
		}
		masks[e+d] = m
	}
	return masks
}
