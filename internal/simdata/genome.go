package simdata

import (
	"fmt"
	"math/rand"

	"repro/internal/dna"
)

// GenomeConfig controls synthetic reference generation. Real genomes are
// highly repetitive — the reason seeding yields many candidate locations per
// read (Section 1) — so the generator plants duplicated segments with small
// divergence on top of a random backbone.
type GenomeConfig struct {
	Length     int
	RepeatFrac float64 // fraction of the genome covered by repeat copies
	RepeatLen  int     // length of each repeat unit
	RepeatDiv  float64 // per-base divergence between repeat copies
	NRate      float64 // unknown base rate (assembly gaps)
	Seed       int64
}

// DefaultGenomeConfig returns a laptop-scale human-like profile.
func DefaultGenomeConfig(length int) GenomeConfig {
	return GenomeConfig{
		Length:     length,
		RepeatFrac: 0.3,
		RepeatLen:  600,
		RepeatDiv:  0.02,
		NRate:      0.0002,
		Seed:       42,
	}
}

// Genome synthesizes a reference sequence per the config.
func Genome(cfg GenomeConfig) []byte {
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := dna.RandomSeq(rng, cfg.Length)
	if cfg.RepeatLen > 0 && cfg.RepeatFrac > 0 && cfg.Length > 2*cfg.RepeatLen {
		// Pick a handful of source units and stamp diverged copies.
		copies := int(float64(cfg.Length) * cfg.RepeatFrac / float64(cfg.RepeatLen))
		nUnits := copies/4 + 1
		units := make([][]byte, nUnits)
		for i := range units {
			start := rng.Intn(cfg.Length - cfg.RepeatLen)
			units[i] = append([]byte(nil), g[start:start+cfg.RepeatLen]...)
		}
		for c := 0; c < copies; c++ {
			u := units[rng.Intn(nUnits)]
			dst := rng.Intn(cfg.Length - cfg.RepeatLen)
			for i, b := range u {
				if rng.Float64() < cfg.RepeatDiv {
					g[dst+i] = dna.Alphabet[rng.Intn(4)]
				} else {
					g[dst+i] = b
				}
			}
		}
	}
	if cfg.NRate > 0 {
		dna.SprinkleN(rng, g, cfg.NRate)
	}
	return g
}

// genomeChunk is StreamGenome's generation granularity. Large enough that
// per-chunk bookkeeping vanishes against base generation, small enough that
// peak memory stays trivial next to any downstream consumer.
const genomeChunk = 1 << 20

// StreamGenome synthesizes a reference with the same statistical profile as
// Genome — random backbone, diverged copies of a shared repeat library,
// sprinkled 'N's — but generates it chunk by chunk into emit, so a contig
// is never materialized: peak memory is one chunk plus the repeat-unit
// library however large cfg.Length is. That is what lets gksim emit
// genome-scale (multi-gigabase) references without OOM. Deterministic for a
// given config; the chunked repeat placement means the byte stream differs
// from Genome's for the same seed (both are draws from the same profile —
// nothing may pin the two generators to each other). emit may retain
// nothing: the chunk is reused.
func StreamGenome(cfg GenomeConfig, emit func(chunk []byte) error) error {
	rng := rand.New(rand.NewSource(cfg.Seed))
	doRepeats := cfg.RepeatLen > 0 && cfg.RepeatFrac > 0 && cfg.Length > 2*cfg.RepeatLen
	var units [][]byte
	if doRepeats {
		copies := int(float64(cfg.Length) * cfg.RepeatFrac / float64(cfg.RepeatLen))
		nUnits := copies/4 + 1
		// Cap the library: its point is shared sequence between distant
		// sites, and a few thousand units already gives every downstream
		// seed plenty of multi-hit k-mers; an uncapped library would grow
		// O(Length) and defeat the constant-memory contract.
		if nUnits > 4096 {
			nUnits = 4096
		}
		units = make([][]byte, nUnits)
		for i := range units {
			units[i] = dna.RandomSeq(rng, cfg.RepeatLen)
		}
	}
	buf := make([]byte, genomeChunk)
	carry := 0.0 // fractional repeat copies owed across chunk boundaries
	for off := 0; off < cfg.Length; off += genomeChunk {
		n := cfg.Length - off
		if n > genomeChunk {
			n = genomeChunk
		}
		chunk := buf[:n]
		dna.FillRandom(rng, chunk)
		if doRepeats && n > cfg.RepeatLen {
			carry += float64(n) * cfg.RepeatFrac / float64(cfg.RepeatLen)
			copies := int(carry)
			carry -= float64(copies)
			for c := 0; c < copies; c++ {
				u := units[rng.Intn(len(units))]
				dst := rng.Intn(n - len(u) + 1)
				for i, b := range u {
					if rng.Float64() < cfg.RepeatDiv {
						chunk[dst+i] = dna.Alphabet[rng.Intn(4)]
					} else {
						chunk[dst+i] = b
					}
				}
			}
		}
		if cfg.NRate > 0 {
			dna.SprinkleN(rng, chunk, cfg.NRate)
		}
		if err := emit(chunk); err != nil {
			return err
		}
	}
	return nil
}

// ReadProfile is a Mason-like read simulation profile.
type ReadProfile struct {
	Name    string
	Length  int
	SubRate float64
	InsRate float64
	DelRate float64
	NRate   float64
}

// Profiles from the whole-genome evaluation (Sup. Table S.1).
var (
	// SimSet1 mirrors "sim set 1": 300bp simulated reads with a rich
	// deletion profile.
	SimSet1 = ReadProfile{Name: "sim set 1 (300bp rich-deletion)", Length: 300,
		SubRate: 0.01, InsRate: 0.001, DelRate: 0.02, NRate: 0}
	// SimSet2 mirrors "sim set 2": 150bp simulated reads with a low indel
	// profile.
	SimSet2 = ReadProfile{Name: "sim set 2 (150bp low-indel)", Length: 150,
		SubRate: 0.008, InsRate: 0.0005, DelRate: 0.0005, NRate: 0}
	// Illumina100 mirrors the real 100bp sets (ERR240727_1-like error rates).
	Illumina100 = ReadProfile{Name: "real-profile 100bp", Length: 100,
		SubRate: 0.01, InsRate: 0.0002, DelRate: 0.0002, NRate: 0.0005}
	// Illumina50 mirrors SRR20784572 (50bp).
	Illumina50 = ReadProfile{Name: "real-profile 50bp", Length: 50,
		SubRate: 0.008, InsRate: 0.0002, DelRate: 0.0002, NRate: 0.0005}
	// Illumina250 mirrors SRR826471_1 (250bp).
	Illumina250 = ReadProfile{Name: "real-profile 250bp", Length: 250,
		SubRate: 0.015, InsRate: 0.0005, DelRate: 0.0005, NRate: 0.001}
)

// SimRead is a simulated read with its true origin for accuracy accounting.
type SimRead struct {
	Seq     []byte
	TruePos int
}

// SimulateReads samples n reads uniformly from the genome and applies the
// profile's errors, Mason-style. Reads overlapping assembly gaps keep their
// 'N's (the mapper and filter must cope, exactly as with real data).
func SimulateReads(genome []byte, profile ReadProfile, n int, seed int64) ([]SimRead, error) {
	if len(genome) < profile.Length {
		return nil, fmt.Errorf("simdata: genome (%d) shorter than read length (%d)", len(genome), profile.Length)
	}
	rng := rand.New(rand.NewSource(seed))
	reads := make([]SimRead, n)
	for i := range reads {
		pos := rng.Intn(len(genome) - profile.Length)
		reads[i] = SimRead{Seq: simulateFrom(rng, genome, pos, profile), TruePos: pos}
	}
	return reads, nil
}

// simulateFrom sequences one read from the forward-strand window starting at
// pos: copy the window, apply the profile's errors, and restore the profile
// length (sequencers emit fixed-length reads).
func simulateFrom(rng *rand.Rand, genome []byte, pos int, profile ReadProfile) []byte {
	seq := append([]byte(nil), genome[pos:pos+profile.Length]...)
	var edits []dna.Edit
	for p := 0; p < len(seq); p++ {
		r := rng.Float64()
		switch {
		case r < profile.SubRate:
			edits = append(edits, dna.Edit{Pos: p, Op: 'X', Base: dna.Alphabet[rng.Intn(4)]})
		case r < profile.SubRate+profile.InsRate:
			edits = append(edits, dna.Edit{Pos: p, Op: 'I', Base: dna.Alphabet[rng.Intn(4)]})
		case r < profile.SubRate+profile.InsRate+profile.DelRate:
			edits = append(edits, dna.Edit{Pos: p, Op: 'D'})
		}
	}
	seq = dna.ApplyEdits(seq, edits)
	for len(seq) < profile.Length {
		ext := pos + profile.Length + (len(seq) - profile.Length)
		if ext < len(genome) {
			seq = append(seq, genome[ext])
		} else {
			seq = append(seq, dna.Alphabet[rng.Intn(4)])
		}
	}
	seq = seq[:profile.Length]
	if profile.NRate > 0 {
		dna.SprinkleN(rng, seq, profile.NRate)
	}
	return seq
}

// SimReadPair is one simulated mate pair from an FR paired-end library. R1
// reads the fragment's left end on the forward strand; R2 reads its right
// end on the reverse strand, so R2.Seq is reverse-complement oriented and
// R2.TruePos is the forward-strand offset of the window where the reverse
// complement of R2.Seq maps. Insert is the true fragment (outer) length.
type SimReadPair struct {
	R1, R2 SimRead
	Insert int
}

// SimulatePairs samples n FR mate pairs: a fragment start uniform over the
// genome, a fragment length drawn from a normal distribution with the given
// mean and standard deviation (clamped to [read length, genome length]),
// and profile errors applied to each mate independently, Mason-style.
func SimulatePairs(genome []byte, profile ReadProfile, n, insertMean, insertStd int, seed int64) ([]SimReadPair, error) {
	if len(genome) < profile.Length {
		return nil, fmt.Errorf("simdata: genome (%d) shorter than read length (%d)", len(genome), profile.Length)
	}
	if insertMean < profile.Length {
		return nil, fmt.Errorf("simdata: mean insert %d below read length %d", insertMean, profile.Length)
	}
	rng := rand.New(rand.NewSource(seed))
	pairs := make([]SimReadPair, n)
	for i := range pairs {
		insert := insertMean
		if insertStd > 0 {
			insert = int(rng.NormFloat64()*float64(insertStd)) + insertMean
		}
		if insert < profile.Length {
			insert = profile.Length
		}
		if insert > len(genome) {
			insert = len(genome)
		}
		pos := 0
		if len(genome) > insert {
			pos = rng.Intn(len(genome) - insert)
		}
		matePos := pos + insert - profile.Length
		r2 := simulateFrom(rng, genome, matePos, profile)
		pairs[i] = SimReadPair{
			R1:     SimRead{Seq: simulateFrom(rng, genome, pos, profile), TruePos: pos},
			R2:     SimRead{Seq: dna.ReverseComplement(r2), TruePos: matePos},
			Insert: insert,
		}
	}
	return pairs, nil
}
