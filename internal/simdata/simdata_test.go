package simdata

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/align"
	"repro/internal/dna"
)

func TestSetRegistry(t *testing.T) {
	for name, p := range Sets {
		if p.ReadLen <= 0 || p.FarMax < p.FarMin || p.CloseFrac < 0 || p.CloseFrac > 1 {
			t.Errorf("set %s has implausible profile %+v", name, p)
		}
		if p.PaperPairs <= 0 {
			t.Errorf("set %s missing paper size", name)
		}
	}
	if _, err := Set("set1"); err != nil {
		t.Fatal(err)
	}
	if _, err := Set("nope"); err == nil {
		t.Fatal("unknown set accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Sets["set3"]
	a := Generate(p, 7, 50)
	b := Generate(p, 7, 50)
	for i := range a {
		if string(a[i].Read) != string(b[i].Read) || string(a[i].Ref) != string(b[i].Ref) {
			t.Fatalf("generation not deterministic at pair %d", i)
		}
	}
	c := Generate(p, 8, 50)
	same := 0
	for i := range a {
		if string(a[i].Read) == string(c[i].Read) {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGenerateGeometry(t *testing.T) {
	for _, name := range []string{"set1", "set6", "set10", "bwamem"} {
		p := Sets[name]
		for _, pc := range Generate(p, 1, 100) {
			if len(pc.Read) != p.ReadLen || len(pc.Ref) != p.ReadLen {
				t.Fatalf("%s produced lengths %d/%d, want %d", name, len(pc.Read), len(pc.Ref), p.ReadLen)
			}
		}
	}
}

func TestGenerateEditMixture(t *testing.T) {
	p := Sets["set3"]
	cases := Generate(p, 2, 2000)
	within := 0
	undefined := 0
	for _, pc := range cases {
		if pc.Undefined {
			undefined++
			continue
		}
		if align.Distance(pc.Read, pc.Ref) <= p.SeedE {
			within++
		}
	}
	frac := float64(within) / float64(len(cases))
	// Paper Table S.2: ~1.9% of Set 3 is within e=5. Generator should land
	// in the single-digit percent range.
	if frac < 0.005 || frac > 0.12 {
		t.Errorf("Set 3 within-threshold fraction %.3f outside the plausible band", frac)
	}
}

func TestGenerateHighEditProfileIsFarther(t *testing.T) {
	low := Generate(Sets["set1"], 3, 300)
	high := Generate(Sets["set4"], 3, 300)
	avg := func(cases []PairCase) float64 {
		s := 0.0
		for _, pc := range cases {
			s += float64(align.Distance(pc.Read, pc.Ref))
		}
		return s / float64(len(cases))
	}
	if avg(high) <= avg(low) {
		t.Error("high-edit profile should have larger mean distance than low-edit")
	}
}

func TestGenerateUndefinedRate(t *testing.T) {
	p := Sets["set12"] // 15.9% undefined, the highest in the paper
	cases := Generate(p, 4, 3000)
	n := 0
	for _, pc := range cases {
		if pc.Undefined {
			n++
			if !dna.HasN(pc.Read) && !dna.HasN(pc.Ref) {
				t.Fatal("undefined pair without an N")
			}
		}
	}
	frac := float64(n) / float64(len(cases))
	if frac < 0.10 || frac > 0.22 {
		t.Errorf("Set 12 undefined fraction %.3f, paper has 0.159", frac)
	}
}

func TestSeededCandidatesShareExactRegion(t *testing.T) {
	p := Sets["set1"]
	cases := Generate(p, 5, 100)
	withSeed := 0
	for _, pc := range cases {
		if pc.Undefined {
			continue
		}
		// Look for a 20bp exact shared window at the same offset, the
		// signature of pigeonhole seeding.
		for off := 0; off+20 <= len(pc.Read); off++ {
			if string(pc.Read[off:off+20]) == string(pc.Ref[off:off+20]) {
				withSeed++
				break
			}
		}
	}
	if withSeed < 30 {
		t.Errorf("only %d/100 pairs share an exact window; seeded candidates should", withSeed)
	}
}

func TestToEnginePairs(t *testing.T) {
	cases := Generate(Sets["set1"], 6, 10)
	pairs := ToEnginePairs(cases)
	if len(pairs) != 10 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	for i := range pairs {
		if &pairs[i].Read[0] != &cases[i].Read[0] {
			t.Fatal("conversion should not copy sequences")
		}
	}
}

func TestGenomeGeneration(t *testing.T) {
	cfg := DefaultGenomeConfig(200_000)
	g := Genome(cfg)
	if len(g) != 200_000 {
		t.Fatalf("genome length %d", len(g))
	}
	// Determinism.
	g2 := Genome(cfg)
	if string(g) != string(g2) {
		t.Fatal("genome generation not deterministic")
	}
	// Composition: mostly ACGT with a trace of N.
	counts := map[byte]int{}
	for _, b := range g {
		counts[b]++
	}
	if counts['N'] == 0 {
		t.Error("no assembly gaps planted")
	}
	for _, b := range []byte("ACGT") {
		if counts[b] < len(g)/8 {
			t.Errorf("base %c suspiciously rare: %d", b, counts[b])
		}
	}
}

func TestGenomeHasRepeats(t *testing.T) {
	g := Genome(DefaultGenomeConfig(300_000))
	// Count 24-mers occurring more than once; a repeat-rich genome has many.
	seen := map[string]int{}
	for i := 0; i+24 <= len(g); i += 24 {
		seen[string(g[i:i+24])]++
	}
	dups := 0
	for _, c := range seen {
		if c > 1 {
			dups++
		}
	}
	if dups < 10 {
		t.Errorf("only %d duplicated 24-mers; repeats not planted", dups)
	}
}

func TestSimulateReads(t *testing.T) {
	g := Genome(DefaultGenomeConfig(100_000))
	reads, err := SimulateReads(g, Illumina100, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) != 200 {
		t.Fatalf("got %d reads", len(reads))
	}
	nearOrigin := 0
	for _, r := range reads {
		if len(r.Seq) != 100 {
			t.Fatalf("read length %d", len(r.Seq))
		}
		if r.TruePos < 0 || r.TruePos+100 > len(g) {
			t.Fatalf("true position %d out of range", r.TruePos)
		}
		seg := g[r.TruePos : r.TruePos+100]
		if d := align.Distance(r.Seq, seg); d <= 8 {
			nearOrigin++
		}
	}
	if nearOrigin < 180 {
		t.Errorf("only %d/200 reads near their origin; error rates too high", nearOrigin)
	}
}

func TestSimulateReadsRichDeletionProfile(t *testing.T) {
	g := Genome(DefaultGenomeConfig(200_000))
	reads, err := SimulateReads(g, SimSet1, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	// With a 2% deletion rate a 300bp read should usually carry deletions:
	// its distance to the origin window is dominated by indels.
	withEdits := 0
	for _, r := range reads {
		seg := g[r.TruePos : r.TruePos+300]
		if align.Distance(r.Seq, seg) >= 3 {
			withEdits++
		}
	}
	if withEdits < 80 {
		t.Errorf("rich-deletion profile produced only %d/100 edited reads", withEdits)
	}
}

func TestSimulateReadsErrors(t *testing.T) {
	if _, err := SimulateReads([]byte("ACGT"), Illumina100, 1, 1); err == nil {
		t.Fatal("genome shorter than read accepted")
	}
}

func TestSimulatePairs(t *testing.T) {
	g := Genome(DefaultGenomeConfig(100_000))
	pairs, err := SimulatePairs(g, Illumina100, 200, 400, 40, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 200 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	nearMean := 0
	for i, p := range pairs {
		if len(p.R1.Seq) != 100 || len(p.R2.Seq) != 100 {
			t.Fatalf("pair %d mate lengths %d/%d", i, len(p.R1.Seq), len(p.R2.Seq))
		}
		if p.Insert != p.R2.TruePos+100-p.R1.TruePos {
			t.Fatalf("pair %d insert %d inconsistent with mate positions %d/%d",
				i, p.Insert, p.R1.TruePos, p.R2.TruePos)
		}
		if p.Insert >= 400-3*40 && p.Insert <= 400+3*40 {
			nearMean++
		}
		// R2 is reverse-complement oriented: its RC must be close to the
		// forward window at its TruePos.
		rc := dna.ReverseComplement(p.R2.Seq)
		seg := g[p.R2.TruePos : p.R2.TruePos+100]
		if align.Distance(rc, seg) > 12 {
			t.Fatalf("pair %d R2 too far from its origin window", i)
		}
	}
	if nearMean < 195 { // ~99.7% within 3 sigma
		t.Errorf("only %d/200 inserts within 3 sigma of the mean", nearMean)
	}
	// Determinism per seed.
	again, err := SimulatePairs(g, Illumina100, 200, 400, 40, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range again {
		if string(again[i].R1.Seq) != string(pairs[i].R1.Seq) ||
			string(again[i].R2.Seq) != string(pairs[i].R2.Seq) {
			t.Fatalf("pair %d not deterministic", i)
		}
	}
	if _, err := SimulatePairs([]byte("ACGT"), Illumina100, 1, 400, 40, 1); err == nil {
		t.Fatal("genome shorter than read accepted")
	}
	if _, err := SimulatePairs(g, Illumina100, 1, 50, 10, 1); err == nil {
		t.Fatal("mean insert below read length accepted")
	}
}

// streamToBytes collects a StreamGenome run (copying each reused chunk).
func streamToBytes(t *testing.T, cfg GenomeConfig) []byte {
	t.Helper()
	var g []byte
	if err := StreamGenome(cfg, func(chunk []byte) error {
		g = append(g, chunk...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return g
}

// TestStreamGenome holds the chunked generator to Genome's profile:
// deterministic, exact length (including lengths that do not divide the
// chunk size), ACGT+N composition, and planted repeats.
func TestStreamGenome(t *testing.T) {
	cfg := DefaultGenomeConfig(2_500_001) // spans 3 chunks, ragged tail
	g := streamToBytes(t, cfg)
	if len(g) != cfg.Length {
		t.Fatalf("streamed genome length %d, want %d", len(g), cfg.Length)
	}
	if g2 := streamToBytes(t, cfg); !strings.HasPrefix(string(g), string(g2)) || len(g) != len(g2) {
		t.Fatal("streamed generation not deterministic")
	}
	counts := map[byte]int{}
	for _, b := range g {
		counts[b]++
	}
	if counts['N'] == 0 {
		t.Error("no assembly gaps planted")
	}
	for _, b := range []byte("ACGT") {
		if counts[b] < len(g)/8 {
			t.Errorf("base %c suspiciously rare: %d", b, counts[b])
		}
	}
	seen := map[string]int{}
	for i := 0; i+24 <= len(g); i += 24 {
		seen[string(g[i:i+24])]++
	}
	dups := 0
	for _, c := range seen {
		if c > 1 {
			dups++
		}
	}
	if dups < 10 {
		t.Errorf("only %d duplicated 24-mers; repeats not planted", dups)
	}
}

// TestStreamGenomeEmitError: a failing sink stops generation immediately.
func TestStreamGenomeEmitError(t *testing.T) {
	want := fmt.Errorf("sink full")
	calls := 0
	err := StreamGenome(DefaultGenomeConfig(5_000_000), func([]byte) error {
		calls++
		return want
	})
	if err != want {
		t.Fatalf("got %v, want the sink's error", err)
	}
	if calls != 1 {
		t.Fatalf("emit called %d times after failing", calls)
	}
}
