// Package simdata generates the synthetic workloads of the reproduction.
// The paper evaluates on 30M-pair datasets seeded by mrFAST from 1000
// Genomes reads against GRCh37 (Sup. Table S.1), plus Mason-simulated read
// sets; neither the reads nor the reference are redistributable here, so
// this package synthesizes equivalents that preserve what the filters
// actually see: (read, candidate segment) pairs with a controlled
// edit-distance profile, a controlled rate of undefined ('N'-containing)
// pairs, and the seed-and-extend structure of mapper-generated candidates
// (an exact seed region with edits distributed around it).
package simdata

import (
	"fmt"
	"math/rand"

	"repro/internal/dna"
	"repro/internal/gkgpu"
)

// PairCase is one generated read/candidate pair; TrueDistance is not
// precomputed (the harness computes Edlib ground truth itself) but the
// generator records the number of edits it planted for diagnostics.
type PairCase struct {
	Read, Ref    []byte
	PlantedEdits int
	Undefined    bool
}

// Profile describes a dataset's edit-distance mixture, mirroring one of the
// paper's Sets: a fraction of "close" candidates (the mapper's true and
// near-true locations) and a remainder of "far" candidates arising from
// genomic repeats, plus the measured undefined-pair rate.
type Profile struct {
	Name    string
	ReadLen int
	// SeedE is the mrFAST error threshold that curated the paper's set.
	SeedE int
	// CloseFrac of pairs draw their edit count from [0, CloseMax]; the rest
	// are "far" candidates: with probability RandomFrac a near-random
	// reference window that shares only the seed region with the read (the
	// typical spurious hash hit, edit distance ~0.45L), otherwise a
	// diverged-repeat candidate with edits drawn from [FarMin, FarMax].
	CloseFrac        float64
	CloseMax         int
	RandomFrac       float64
	FarMin, FarMax   int
	IndelFrac        float64
	UndefinedRate    float64
	SeededCandidates bool // plant an exact seed region, as pigeonhole seeding implies
	PaperPairs       int  // the paper's dataset size (30M for most sets)
}

// Sets is the registry of dataset profiles from Sup. Table S.1. Undefined
// rates are the paper's exact counts divided by 30M. The edit mixtures are
// chosen so the Edlib accept fractions track the paper's Tables S.2-S.4.
var Sets = map[string]Profile{
	"set1": {Name: "Set 1 (100bp low-edit)", ReadLen: 100, SeedE: 2, CloseFrac: 0.02,
		CloseMax: 5, RandomFrac: 0.80, FarMin: 4, FarMax: 30, IndelFrac: 0.25, UndefinedRate: 28009.0 / 30e6,
		SeededCandidates: true, PaperPairs: 30_000_000},
	"set2": {Name: "Set 2 (100bp, mrFAST e=3)", ReadLen: 100, SeedE: 3, CloseFrac: 0.04,
		CloseMax: 8, RandomFrac: 0.80, FarMin: 6, FarMax: 32, IndelFrac: 0.25, UndefinedRate: 30716.0 / 30e6,
		SeededCandidates: true, PaperPairs: 30_000_000},
	"set3": {Name: "Set 3 (100bp, mrFAST e=5)", ReadLen: 100, SeedE: 5, CloseFrac: 0.06,
		CloseMax: 11, RandomFrac: 0.80, FarMin: 8, FarMax: 35, IndelFrac: 0.25, UndefinedRate: 92414.0 / 30e6,
		SeededCandidates: true, PaperPairs: 30_000_000},
	"set4": {Name: "Set 4 (100bp high-edit)", ReadLen: 100, SeedE: 40, CloseFrac: 0.002,
		CloseMax: 10, RandomFrac: 0.85, FarMin: 15, FarMax: 60, IndelFrac: 0.30, UndefinedRate: 31487.0 / 30e6,
		SeededCandidates: false, PaperPairs: 30_000_000},
	"set5": {Name: "Set 5 (150bp low-edit)", ReadLen: 150, SeedE: 4, CloseFrac: 0.025,
		CloseMax: 8, RandomFrac: 0.80, FarMin: 6, FarMax: 45, IndelFrac: 0.25, UndefinedRate: 30142.0 / 30e6,
		SeededCandidates: true, PaperPairs: 30_000_000},
	"set6": {Name: "Set 6 (150bp, mrFAST e=6)", ReadLen: 150, SeedE: 6, CloseFrac: 0.05,
		CloseMax: 14, RandomFrac: 0.80, FarMin: 10, FarMax: 50, IndelFrac: 0.25, UndefinedRate: 15141.0 / 30e6,
		SeededCandidates: true, PaperPairs: 30_000_000},
	"set7": {Name: "Set 7 (150bp high-edit)", ReadLen: 150, SeedE: 10, CloseFrac: 0.03,
		CloseMax: 16, RandomFrac: 0.80, FarMin: 12, FarMax: 60, IndelFrac: 0.30, UndefinedRate: 329.0 / 30e6,
		SeededCandidates: true, PaperPairs: 30_000_000},
	"set8": {Name: "Set 8 (150bp high-edit e=70)", ReadLen: 150, SeedE: 70, CloseFrac: 0.001,
		CloseMax: 15, RandomFrac: 0.85, FarMin: 20, FarMax: 90, IndelFrac: 0.30, UndefinedRate: 309.0 / 30e6,
		SeededCandidates: false, PaperPairs: 30_000_000},
	"set9": {Name: "Set 9 (250bp low-edit)", ReadLen: 250, SeedE: 8, CloseFrac: 0.018,
		CloseMax: 16, RandomFrac: 0.80, FarMin: 12, FarMax: 70, IndelFrac: 0.25, UndefinedRate: 35072.0 / 30e6,
		SeededCandidates: true, PaperPairs: 30_000_000},
	"set10": {Name: "Set 10 (250bp, mrFAST e=12)", ReadLen: 250, SeedE: 12, CloseFrac: 0.02,
		CloseMax: 26, RandomFrac: 0.75, FarMin: 15, FarMax: 80, IndelFrac: 0.25, UndefinedRate: 379292.0 / 30e6,
		SeededCandidates: true, PaperPairs: 30_000_000},
	"set11": {Name: "Set 11 (250bp high-edit e=15)", ReadLen: 250, SeedE: 15, CloseFrac: 0.02,
		CloseMax: 26, RandomFrac: 0.75, FarMin: 18, FarMax: 90, IndelFrac: 0.30, UndefinedRate: 1273260.0 / 30e6,
		SeededCandidates: true, PaperPairs: 30_000_000},
	"set12": {Name: "Set 12 (250bp high-edit e=100)", ReadLen: 250, SeedE: 100, CloseFrac: 0.001,
		CloseMax: 25, RandomFrac: 0.85, FarMin: 30, FarMax: 125, IndelFrac: 0.30, UndefinedRate: 4763682.0 / 30e6,
		SeededCandidates: false, PaperPairs: 30_000_000},
	// Minimap2 candidates sampled before the first chaining DP: broader
	// close fraction than mrFAST (Table S.5 shows ~3-10% Edlib accepts).
	"minimap2": {Name: "Minimap2 pairs (100bp)", ReadLen: 100, SeedE: 10, CloseFrac: 0.09,
		CloseMax: 12, RandomFrac: 0.55, FarMin: 8, FarMax: 40, IndelFrac: 0.30, UndefinedRate: 26759.0 / 30e6,
		SeededCandidates: true, PaperPairs: 30_000_000},
	// BWA-MEM pairs before ksw_global2: small sets dominated by accepts at
	// e=0 and near-threshold rejects above (Table S.6).
	"bwamem": {Name: "BWA-MEM pairs (100bp)", ReadLen: 100, SeedE: 10, CloseFrac: 0.45,
		CloseMax: 8, RandomFrac: 0.20, FarMin: 5, FarMax: 25, IndelFrac: 0.30, UndefinedRate: 0.002,
		SeededCandidates: true, PaperPairs: 17_725},
}

// Set returns a registered profile.
func Set(name string) (Profile, error) {
	p, ok := Sets[name]
	if !ok {
		return Profile{}, fmt.Errorf("simdata: unknown set %q", name)
	}
	return p, nil
}

// Generate produces n pairs from the profile, deterministically for a seed.
func Generate(p Profile, seed int64, n int) []PairCase {
	rng := rand.New(rand.NewSource(seed))
	pairs := make([]PairCase, n)
	for i := range pairs {
		pairs[i] = generateOne(p, rng)
	}
	return pairs
}

func generateOne(p Profile, rng *rand.Rand) PairCase {
	L := p.ReadLen
	read := dna.RandomSeq(rng, L)

	var ref []byte
	k := 0
	switch {
	case rng.Float64() < p.CloseFrac:
		k = rng.Intn(p.CloseMax + 1)
		if p.SeededCandidates {
			ref = mutateOutsideSeed(rng, read, k, p.IndelFrac, p.SeedE)
		} else {
			mutated := dna.ApplyEdits(read, dna.RandomEdits(rng, L, k, p.IndelFrac))
			ref = fitLength(rng, mutated, L)
		}
	case rng.Float64() < p.RandomFrac:
		// Spurious candidate: a random window sharing only the seed.
		k = -1
		ref = dna.RandomSeq(rng, L)
		if p.SeededCandidates {
			segLen := seedSegmentLen(L, p.SeedE)
			start := rng.Intn(L - segLen + 1)
			copy(ref[start:start+segLen], read[start:start+segLen])
		}
	default:
		k = p.FarMin + rng.Intn(p.FarMax-p.FarMin+1)
		if p.SeededCandidates {
			ref = mutateOutsideSeed(rng, read, k, p.IndelFrac, p.SeedE)
		} else {
			mutated := dna.ApplyEdits(read, dna.RandomEdits(rng, L, k, p.IndelFrac))
			ref = fitLength(rng, mutated, L)
		}
	}

	pc := PairCase{Read: read, Ref: ref, PlantedEdits: k}
	if rng.Float64() < p.UndefinedRate {
		pos := rng.Intn(L)
		if rng.Intn(2) == 0 {
			pc.Read = append([]byte(nil), pc.Read...)
			pc.Read[pos] = 'N'
		} else {
			pc.Ref = append([]byte(nil), pc.Ref...)
			pc.Ref[pos] = 'N'
		}
		pc.Undefined = true
	}
	return pc
}

// seedSegmentLen is the pigeonhole seed length for a read of length L
// curated at threshold seedE.
func seedSegmentLen(L, seedE int) int {
	segments := seedE + 1
	if segments < 1 {
		segments = 1
	}
	segLen := L / segments
	if segLen < 8 {
		segLen = 8
	}
	if segLen > L {
		segLen = L
	}
	return segLen
}

// mutateOutsideSeed plants k edits while keeping one pigeonhole seed region
// exact, as a candidate reported by an (e+1)-segment seeding mapper must.
func mutateOutsideSeed(rng *rand.Rand, read []byte, k int, indelFrac float64, seedE int) []byte {
	L := len(read)
	segLen := seedSegmentLen(L, seedE)
	maxStart := L - segLen
	if maxStart < 0 {
		maxStart = 0
	}
	seedStart := rng.Intn(maxStart + 1)
	seedEnd := seedStart + segLen

	// Draw edit positions outside the seed.
	edits := make([]dna.Edit, 0, k)
	for len(edits) < k {
		pos := rng.Intn(L)
		if pos >= seedStart && pos < seedEnd {
			continue
		}
		e := dna.Edit{Pos: pos, Base: dna.Alphabet[rng.Intn(4)]}
		switch {
		case rng.Float64() >= indelFrac:
			e.Op = 'X'
		case rng.Intn(2) == 0:
			e.Op = 'I'
		default:
			e.Op = 'D'
		}
		edits = append(edits, e)
	}
	sortEditsByPos(edits)
	mutated := dna.ApplyEdits(read, edits)
	return fitLength(rng, mutated, L)
}

func sortEditsByPos(edits []dna.Edit) {
	for i := 1; i < len(edits); i++ {
		for j := i; j > 0 && edits[j].Pos < edits[j-1].Pos; j-- {
			edits[j], edits[j-1] = edits[j-1], edits[j]
		}
	}
}

// fitLength trims or extends a mutated sequence to exactly L bases, as a
// mapper extracting a read-length window from the reference would.
func fitLength(rng *rand.Rand, seq []byte, L int) []byte {
	out := make([]byte, L)
	n := copy(out, seq)
	for i := n; i < L; i++ {
		out[i] = dna.Alphabet[rng.Intn(4)]
	}
	return out
}

// ToEnginePairs converts generated cases to engine input.
func ToEnginePairs(cases []PairCase) []gkgpu.Pair {
	pairs := make([]gkgpu.Pair, len(cases))
	for i, c := range cases {
		pairs[i] = gkgpu.Pair{Read: c.Read, Ref: c.Ref}
	}
	return pairs
}
