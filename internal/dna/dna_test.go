package dna

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestCodeTable(t *testing.T) {
	cases := []struct {
		b    byte
		code byte
		ok   bool
	}{
		{'A', CodeA, true}, {'C', CodeC, true}, {'G', CodeG, true}, {'T', CodeT, true},
		{'a', CodeA, true}, {'c', CodeC, true}, {'g', CodeG, true}, {'t', CodeT, true},
		{'N', 0xFF, false}, {'n', 0xFF, false}, {'-', 0xFF, false}, {0, 0xFF, false},
	}
	for _, c := range cases {
		code, ok := Code(c.b)
		if ok != c.ok {
			t.Errorf("Code(%q) ok = %v, want %v", c.b, ok, c.ok)
		}
		if ok && code != c.code {
			t.Errorf("Code(%q) = %d, want %d", c.b, code, c.code)
		}
	}
}

func TestHasN(t *testing.T) {
	if HasN([]byte("ACGTACGT")) {
		t.Error("HasN reported N in a clean sequence")
	}
	if !HasN([]byte("ACGNACGT")) {
		t.Error("HasN missed an N")
	}
	if !HasN([]byte("acgxn")) {
		t.Error("HasN missed a lowercase unknown")
	}
	if HasN(nil) {
		t.Error("HasN on empty sequence")
	}
}

func TestWordsFor(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 31: 1, 32: 1, 33: 2, 64: 2, 100: 4, 150: 5, 250: 8, 300: 10}
	for n, want := range cases {
		if got := WordsFor(n); got != want {
			t.Errorf("WordsFor(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 15, 16, 17, 31, 32, 33, 100, 150, 250, 300} {
		seq := RandomSeq(rng, n)
		words, err := Encode(seq)
		if err != nil {
			t.Fatalf("Encode(len=%d): %v", n, err)
		}
		if len(words) != WordsFor(n) {
			t.Fatalf("Encode(len=%d) produced %d words, want %d", n, len(words), WordsFor(n))
		}
		back := Decode(words, n)
		if !bytes.Equal(back, seq) {
			t.Fatalf("round trip failed for n=%d: %q != %q", n, back, seq)
		}
	}
}

func TestEncodeKnownWord(t *testing.T) {
	// "ACGT" -> codes 00,01,10,11 little-endian pairs: 11 10 01 00 = 0xE4.
	words, err := Encode([]byte("ACGT"))
	if err != nil {
		t.Fatal(err)
	}
	if words[0] != 0xE4 {
		t.Fatalf("Encode(ACGT) = %#x, want 0xE4", words[0])
	}
}

func TestEncodeRejectsN(t *testing.T) {
	if _, err := Encode([]byte("ACNGT")); err == nil {
		t.Fatal("Encode accepted an N")
	}
	if err := Validate([]byte("ACGTN")); err == nil {
		t.Fatal("Validate accepted an N")
	}
	if err := Validate([]byte("acgt")); err != nil {
		t.Fatalf("Validate rejected lowercase: %v", err)
	}
}

func TestEncodeIntoBufferTooSmall(t *testing.T) {
	buf := make([]uint64, 1)
	if err := EncodeInto(buf, []byte(strings.Repeat("A", 33))); err == nil {
		t.Fatal("EncodeInto accepted an undersized buffer")
	}
}

func TestEncodeIntoZeroesStaleBits(t *testing.T) {
	buf := []uint64{^uint64(0), ^uint64(0)}
	if err := EncodeInto(buf, []byte("AAAA")); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0 {
		t.Fatalf("stale bits survived: %#x", buf[0])
	}
}

func TestBaseAt(t *testing.T) {
	seq := []byte("ACGTACGTACGTACGTACGT")
	words, _ := Encode(seq)
	for i := range seq {
		if got := BaseAt(words, i); got != seq[i] {
			t.Fatalf("BaseAt(%d) = %c, want %c", i, got, seq[i])
		}
	}
}

func TestReverseComplement(t *testing.T) {
	got := ReverseComplement([]byte("ACGTT"))
	if string(got) != "AACGT" {
		t.Fatalf("ReverseComplement = %s, want AACGT", got)
	}
	// Involution property.
	rng := rand.New(rand.NewSource(2))
	seq := RandomSeq(rng, 101)
	if !bytes.Equal(ReverseComplement(ReverseComplement(seq)), seq) {
		t.Fatal("reverse complement is not an involution")
	}
}

func TestComplementUnknown(t *testing.T) {
	if Complement('N') != 'N' {
		t.Fatal("Complement of N should be N")
	}
}

func TestUpper(t *testing.T) {
	got := Upper([]byte("acGt"))
	if string(got) != "ACGT" {
		t.Fatalf("Upper = %s", got)
	}
}

func TestCountMismatches(t *testing.T) {
	n, err := CountMismatches([]byte("ACGT"), []byte("ACGA"))
	if err != nil || n != 1 {
		t.Fatalf("CountMismatches = %d, %v; want 1, nil", n, err)
	}
	n, err = CountMismatches([]byte("ACNT"), []byte("ACNT"))
	if err != nil || n != 1 {
		t.Fatalf("N should mismatch everything: got %d, %v", n, err)
	}
	if _, err := CountMismatches([]byte("AC"), []byte("ACG")); err == nil {
		t.Fatal("length mismatch not detected")
	}
}

func TestMutateSubstitutionsCount(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	seq := RandomSeq(rng, 100)
	for _, k := range []int{0, 1, 5, 40, 100} {
		mut := MutateSubstitutions(rng, seq, k)
		n, err := CountMismatches(seq, mut)
		if err != nil {
			t.Fatal(err)
		}
		if n != k {
			t.Fatalf("MutateSubstitutions(k=%d) produced %d mismatches", k, n)
		}
	}
}

func TestApplyEditsSubstitution(t *testing.T) {
	out := ApplyEdits([]byte("ACGT"), []Edit{{Pos: 1, Op: 'X', Base: 'T'}})
	if string(out) != "ATGT" {
		t.Fatalf("substitution: got %s", out)
	}
}

func TestApplyEditsInsertionDeletion(t *testing.T) {
	out := ApplyEdits([]byte("ACGT"), []Edit{{Pos: 2, Op: 'I', Base: 'T'}})
	if string(out) != "ACTGT" {
		t.Fatalf("insertion: got %s", out)
	}
	out = ApplyEdits([]byte("ACGT"), []Edit{{Pos: 2, Op: 'D'}})
	if string(out) != "ACT" {
		t.Fatalf("deletion: got %s", out)
	}
	out = ApplyEdits([]byte("ACGT"), []Edit{{Pos: 4, Op: 'I', Base: 'A'}})
	if string(out) != "ACGTA" {
		t.Fatalf("append insertion: got %s", out)
	}
}

func TestRandomEditsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	edits := RandomEdits(rng, 100, 10, 0.5)
	if len(edits) != 10 {
		t.Fatalf("RandomEdits produced %d edits, want 10", len(edits))
	}
	for i := 1; i < len(edits); i++ {
		if edits[i].Pos < edits[i-1].Pos {
			t.Fatal("edits not sorted by position")
		}
	}
}

func TestRandomEditsSubsOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	edits := RandomEdits(rng, 50, 8, 0)
	for _, e := range edits {
		if e.Op != 'X' {
			t.Fatalf("indelFrac=0 produced op %c", e.Op)
		}
	}
}

func TestSprinkleN(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	seq := RandomSeq(rng, 1000)
	n := SprinkleN(rng, seq, 0.05)
	if n == 0 {
		t.Fatal("SprinkleN placed no Ns at 5% rate over 1000 bases")
	}
	count := 0
	for _, b := range seq {
		if b == 'N' {
			count++
		}
	}
	if count != n {
		t.Fatalf("SprinkleN reported %d but placed %d", n, count)
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) == 0 {
			return true
		}
		seq := make([]byte, len(raw))
		for i, b := range raw {
			seq[i] = Alphabet[int(b)%4]
		}
		words, err := Encode(seq)
		if err != nil {
			return false
		}
		return bytes.Equal(Decode(words, len(seq)), seq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFormatWords(t *testing.T) {
	words, _ := Encode([]byte("ACGTACGTAC"))
	got := FormatWords(words, 10)
	if got != "ACGTACGT AC" {
		t.Fatalf("FormatWords = %q", got)
	}
}

func TestFASTARoundTrip(t *testing.T) {
	recs := []Record{
		{Name: "chr1", Seq: bytes.Repeat([]byte("ACGT"), 40)},
		{Name: "chr2", Desc: "Homo sapiens description", Seq: []byte("GGGTTT")},
	}
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, recs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFASTA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("got %d records", len(back))
	}
	for i := range recs {
		if back[i].Name != recs[i].Name || back[i].Desc != recs[i].Desc ||
			!bytes.Equal(back[i].Seq, recs[i].Seq) {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, back[i], recs[i])
		}
	}
	// A described header never leaks whitespace into the id: Name is the
	// first word, the remainder is kept as the description.
	if back[1].Name != "chr2" || back[1].Desc != "Homo sapiens description" {
		t.Fatalf("header not split at first whitespace: %+v", back[1])
	}
}

func TestFASTAErrors(t *testing.T) {
	if _, err := ReadFASTA(strings.NewReader("ACGT\n")); err == nil {
		t.Fatal("sequence before header accepted")
	}
	recs, err := ReadFASTA(strings.NewReader(">x\n\nAC\nGT\n"))
	if err != nil {
		t.Fatal(err)
	}
	if string(recs[0].Seq) != "ACGT" {
		t.Fatalf("wrapped read = %s", recs[0].Seq)
	}
}

func TestFASTQRoundTrip(t *testing.T) {
	recs := []Record{
		{Name: "r1", Seq: []byte("ACGTACGT"), Qual: []byte("IIIIIIII")},
		{Name: "r2", Seq: []byte("TTTT")},
	}
	var buf bytes.Buffer
	if err := WriteFASTQ(&buf, recs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFASTQ(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("got %d records", len(back))
	}
	if back[0].Name != "r1" || string(back[0].Seq) != "ACGTACGT" {
		t.Fatalf("record 0 = %+v", back[0])
	}
	if string(back[1].Qual) != "IIII" {
		t.Fatalf("synthesized quality = %s", back[1].Qual)
	}
}

func TestFASTQErrors(t *testing.T) {
	if _, err := ReadFASTQ(strings.NewReader("r1\nACGT\n+\nIIII\n")); err == nil {
		t.Fatal("missing @ accepted")
	}
	if _, err := ReadFASTQ(strings.NewReader("@r1\nACGT\n+\nII\n")); err == nil {
		t.Fatal("quality length mismatch accepted")
	}
	if _, err := ReadFASTQ(strings.NewReader("@r1\nACGT\n")); err == nil {
		t.Fatal("truncated record accepted")
	}
}
