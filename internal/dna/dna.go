// Package dna provides DNA sequence primitives shared by every layer of the
// GateKeeper-GPU reproduction: 2-bit base encoding with the paper's code
// assignment (A=00, C=01, G=10, T=11), detection of unknown base calls
// ('N'), and small sequence utilities.
//
// The paper's CUDA kernel packs 16 bases per 32-bit word ("a 16-character
// window is encoded into an unsigned integer"). This port packs 32 bases
// per 64-bit word instead: word width is the throughput lever of the
// bit-parallel design, and doubling it halves both the word count of every
// bitvector operation and the number of carry-bit transfers per shift. The
// 32-bit layout is retained verbatim in internal/ref32 as the differential
// reference model.
package dna

import (
	"fmt"
	"strings"
)

// Base codes used by the 2-bit encoding (Section 3.3 of the paper).
const (
	CodeA = 0b00
	CodeC = 0b01
	CodeG = 0b10
	CodeT = 0b11
)

// BasesPerWord is the number of 2-bit encoded bases that fit in one 64-bit
// word: a 100bp read is represented as four words (the paper's 32-bit
// layout needed seven).
const BasesPerWord = 32

// Alphabet is the set of bases GateKeeper recognizes, in code order.
var Alphabet = [4]byte{'A', 'C', 'G', 'T'}

// codeTable maps an ASCII byte to its 2-bit code, or 0xFF for anything the
// filter does not recognize (including 'N').
var codeTable [256]byte

func init() {
	for i := range codeTable {
		codeTable[i] = 0xFF
	}
	for code, b := range Alphabet {
		codeTable[b] = byte(code)
		codeTable[b+'a'-'A'] = byte(code)
	}
}

// Code returns the 2-bit code for base b and whether b is a recognized base.
//
//gk:noalloc
func Code(b byte) (byte, bool) {
	c := codeTable[b]
	return c, c != 0xFF
}

// IsACGT reports whether b is one of the four recognized bases (either case).
//
//gk:noalloc
func IsACGT(b byte) bool { return codeTable[b] != 0xFF }

// HasN reports whether seq contains any unrecognized base call. Pairs with
// such bases are "undefined" in the paper's terms and bypass filtration.
func HasN(seq []byte) bool {
	for _, b := range seq {
		if codeTable[b] == 0xFF {
			return true
		}
	}
	return false
}

// WordsFor returns the number of 64-bit words needed to encode n bases.
//
//gk:noalloc
func WordsFor(n int) int { return (n + BasesPerWord - 1) / BasesPerWord }

// Encode packs seq into 2-bit codes, 32 bases per word. Base i occupies bits
// [2i mod 64, 2i mod 64 + 1] of word i/32 (little-endian within the word, so
// base 0 is the least significant pair of word 0). It returns an error if the
// sequence contains an unrecognized base; callers that must tolerate 'N'
// should check HasN first and route the pair around the filter, as
// GateKeeper-GPU does.
func Encode(seq []byte) ([]uint64, error) {
	words := make([]uint64, WordsFor(len(seq)))
	if err := EncodeInto(words, seq); err != nil {
		return nil, err
	}
	return words, nil
}

// EncodeInto is Encode writing into a caller-provided word buffer, which must
// hold at least WordsFor(len(seq)) words. Unused high bits of the final word
// are zeroed.
func EncodeInto(words []uint64, seq []byte) error {
	n := WordsFor(len(seq))
	if len(words) < n {
		return fmt.Errorf("dna: word buffer too small: have %d, need %d", len(words), n)
	}
	if i := TryEncodeInto(words, seq); i >= 0 {
		return fmt.Errorf("dna: unrecognized base %q at position %d", seq[i], i)
	}
	return nil
}

// TryEncodeInto is the hot-path form of EncodeInto: it packs seq into words
// (which must hold WordsFor(len(seq)) words) and returns -1 on success or
// the position of the first unrecognized base. It allocates nothing either
// way — an unknown base ('N') is the routine undefined-pair case, not an
// error worth constructing — and accumulates each 32-base window in a
// register before the single word store.
//
//gk:noalloc
func TryEncodeInto(words []uint64, seq []byte) int {
	n := WordsFor(len(seq))
	for wi := 0; wi < n; wi++ {
		lo := wi * BasesPerWord
		hi := lo + BasesPerWord
		if hi > len(seq) {
			hi = len(seq)
		}
		var w uint64
		for i := lo; i < hi; i++ {
			c := codeTable[seq[i]]
			if c == 0xFF {
				return i
			}
			w |= uint64(c) << uint((i-lo)*2)
		}
		words[wi] = w
	}
	return -1
}

// Decode expands n bases from the packed representation produced by Encode.
func Decode(words []uint64, n int) []byte {
	seq := make([]byte, n)
	for i := 0; i < n; i++ {
		code := (words[i/BasesPerWord] >> uint((i%BasesPerWord)*2)) & 0b11
		seq[i] = Alphabet[code]
	}
	return seq
}

// BaseAt returns the decoded base at position i of a packed sequence.
func BaseAt(words []uint64, i int) byte {
	code := (words[i/BasesPerWord] >> uint((i%BasesPerWord)*2)) & 0b11
	return Alphabet[code]
}

// Complement returns the Watson-Crick complement of a single base. Unknown
// bases map to 'N'.
func Complement(b byte) byte {
	switch b {
	case 'A', 'a':
		return 'T'
	case 'C', 'c':
		return 'G'
	case 'G', 'g':
		return 'C'
	case 'T', 't':
		return 'A'
	default:
		return 'N'
	}
}

// ReverseComplement returns the reverse complement of seq as a new slice.
func ReverseComplement(seq []byte) []byte {
	out := make([]byte, len(seq))
	for i, b := range seq {
		out[len(seq)-1-i] = Complement(b)
	}
	return out
}

// Upper normalizes a sequence to upper case in place and returns it.
func Upper(seq []byte) []byte {
	for i, b := range seq {
		if b >= 'a' && b <= 'z' {
			seq[i] = b - 'a' + 'A'
		}
	}
	return seq
}

// CountMismatches returns the Hamming distance between two equal-length
// sequences, treating unknown bases as mismatches against everything.
func CountMismatches(a, b []byte) (int, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("dna: length mismatch %d vs %d", len(a), len(b))
	}
	n := 0
	for i := range a {
		ca, okA := Code(a[i])
		cb, okB := Code(b[i])
		if !okA || !okB || ca != cb {
			n++
		}
	}
	return n, nil
}

// Validate returns an error describing the first unrecognized base in seq,
// or nil if every base is one of ACGT (either case).
func Validate(seq []byte) error {
	for i, b := range seq {
		if codeTable[b] == 0xFF {
			return fmt.Errorf("dna: unrecognized base %q at position %d", b, i)
		}
	}
	return nil
}

// FormatWords renders packed words as a human-readable base string; useful in
// debugging output and the worked examples.
func FormatWords(words []uint64, n int) string {
	var sb strings.Builder
	sb.Grow(n + n/8)
	for i := 0; i < n; i++ {
		if i > 0 && i%8 == 0 {
			sb.WriteByte(' ')
		}
		sb.WriteByte(BaseAt(words, i))
	}
	return sb.String()
}
