package dna

import (
	"bytes"
	"testing"
)

// FuzzDNAEncodeRoundTrip drives the 2-bit codec with arbitrary byte
// sequences: encoding must reject exactly the sequences containing unknown
// base calls (the 'N' handling every pipeline layer leans on), and for
// clean sequences Decode and BaseAt must invert Encode up to case
// normalization — the packing contract the kernel's word arithmetic
// assumes.
func FuzzDNAEncodeRoundTrip(f *testing.F) {
	f.Add([]byte("ACGT"))
	f.Add([]byte("acgtACGT"))
	f.Add([]byte("ACGTNACGT"))
	f.Add([]byte(""))
	f.Add([]byte("TTTTTTTTTTTTTTTTT")) // crosses a word boundary
	f.Add([]byte("ACGTXacgt"))
	f.Fuzz(func(t *testing.T, seq []byte) {
		if len(seq) > 4096 {
			seq = seq[:4096]
		}
		hasN := HasN(seq)
		if (Validate(seq) == nil) == hasN {
			t.Fatalf("Validate and HasN disagree on %q", seq)
		}
		words, err := Encode(seq)
		if hasN {
			if err == nil {
				t.Fatalf("Encode accepted a sequence with an unknown base: %q", seq)
			}
			return
		}
		if err != nil {
			t.Fatalf("Encode rejected a clean sequence %q: %v", seq, err)
		}
		if len(words) != WordsFor(len(seq)) {
			t.Fatalf("Encode produced %d words for %d bases, want %d",
				len(words), len(seq), WordsFor(len(seq)))
		}
		want := Upper(append([]byte(nil), seq...))
		if got := Decode(words, len(seq)); !bytes.Equal(got, want) {
			t.Fatalf("round trip: got %q, want %q", got, want)
		}
		for i := range want {
			if BaseAt(words, i) != want[i] {
				t.Fatalf("BaseAt(%d) = %c, want %c", i, BaseAt(words, i), want[i])
			}
		}
		// EncodeInto must agree with Encode and zero the tail bits it does
		// not use, so buffers can be reused across sequences.
		buf := make([]uint64, WordsFor(len(seq))+2)
		for i := range buf {
			buf[i] = ^uint64(0)
		}
		if err := EncodeInto(buf, seq); err != nil {
			t.Fatalf("EncodeInto rejected a clean sequence: %v", err)
		}
		for i, w := range words {
			if buf[i] != w {
				t.Fatalf("EncodeInto word %d = %#x, Encode word = %#x", i, buf[i], w)
			}
		}
	})
}
