package dna

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
)

// Record is a named sequence parsed from FASTA or FASTQ input. For FASTA
// records Name is the header's first whitespace-delimited word (the sequence
// id downstream formats like SAM require) and Desc the remainder of the
// header, so a described header (">chr1 Homo sapiens") never leaks whitespace
// into an identifier. FASTQ names keep the whole header in Name, as before.
type Record struct {
	Name string
	Desc string // FASTA header description (text after the id), "" otherwise
	Seq  []byte
	Qual []byte // nil for FASTA
}

// fastaBufSize is ReadFASTA's internal read-buffer size. Lines longer than
// the buffer — an unwrapped chromosome-scale sequence line, say — are
// consumed in buffer-sized chunks, so no line-length cap exists.
const fastaBufSize = 1 << 16

// ReadFASTA parses all records from a FASTA stream. It tolerates wrapped
// sequence lines and blank lines, and imposes no limit on line length (an
// unwrapped chromosome on a single line is read in chunks). Headers are
// split at the first whitespace into Record.Name and Record.Desc.
func ReadFASTA(r io.Reader) ([]Record, error) {
	br := bufio.NewReaderSize(r, fastaBufSize)
	var recs []Record
	var cur *Record
	var scratch []byte // one line, reused across lines
	line := 0
	for {
		b, err := readLine(br, scratch[:0])
		if b == nil && err == io.EOF {
			return recs, nil
		}
		if err != nil && err != io.EOF {
			return nil, fmt.Errorf("dna: fasta scan: %w", err)
		}
		scratch = b
		line++
		b = bytes.TrimSpace(b)
		if len(b) == 0 {
			continue
		}
		if b[0] == '>' {
			name, desc := splitHeader(bytes.TrimSpace(b[1:]))
			recs = append(recs, Record{Name: name, Desc: desc})
			cur = &recs[len(recs)-1]
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("dna: fasta line %d: sequence before header", line)
		}
		cur.Seq = append(cur.Seq, b...)
	}
}

// readLine appends one input line (without its terminator) to buf, growing
// buf as needed — unlike a bufio.Scanner there is no maximum line length.
// At end of input it returns (nil, io.EOF) when no bytes remain, or the
// final unterminated line with io.EOF.
func readLine(br *bufio.Reader, buf []byte) ([]byte, error) {
	read := false
	for {
		chunk, err := br.ReadSlice('\n')
		if len(chunk) > 0 {
			read = true
			if chunk[len(chunk)-1] == '\n' {
				return append(buf, chunk[:len(chunk)-1]...), nil
			}
			buf = append(buf, chunk...)
		}
		switch err {
		case nil:
			return buf, nil
		case bufio.ErrBufferFull:
			continue // long line: keep consuming chunks
		case io.EOF:
			if !read {
				return nil, io.EOF
			}
			return buf, io.EOF
		default:
			return nil, err
		}
	}
}

// splitHeader splits a FASTA header (after '>') into the id and description.
func splitHeader(h []byte) (name, desc string) {
	if i := bytes.IndexAny(h, " \t"); i >= 0 {
		return string(h[:i]), string(bytes.TrimSpace(h[i+1:]))
	}
	return string(h), ""
}

// WriteFASTA writes records in FASTA format with 70-column wrapping. A
// record's description, when present, follows the id on the header line, so
// ReadFASTA round-trips both fields.
func WriteFASTA(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	for _, rec := range recs {
		hdr := rec.Name
		if rec.Desc != "" {
			hdr += " " + rec.Desc
		}
		if _, err := fmt.Fprintf(bw, ">%s\n", hdr); err != nil {
			return err
		}
		for off := 0; off < len(rec.Seq); off += 70 {
			end := off + 70
			if end > len(rec.Seq) {
				end = len(rec.Seq)
			}
			if _, err := bw.Write(rec.Seq[off:end]); err != nil {
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// FASTQScanner decodes FASTQ records incrementally from a stream: one
// strict 4-line record per Scan call, with no full-file buffering, so a
// read set can flow straight into a mapping pipeline without ever being
// materialized. Blank lines are tolerated between records only; inside a
// record every line must be present and non-blank, the third line must be
// the '+' separator, and the quality string must match the sequence length
// — a mis-framed file (e.g. wrapped sequence lines) fails with a
// line-numbered error instead of silently pairing the wrong quality with a
// sequence. CRLF line endings are accepted.
type FASTQScanner struct {
	sc   *bufio.Scanner
	line int // 1-based number of the last line consumed
	rec  Record
	err  error
}

// NewFASTQScanner wraps a reader for incremental FASTQ decoding.
func NewFASTQScanner(r io.Reader) *FASTQScanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<26)
	return &FASTQScanner{sc: sc}
}

// Scan advances to the next record, returning false at end of input or on
// the first malformed record; Err distinguishes the two.
func (s *FASTQScanner) Scan() bool {
	if s.err != nil {
		return false
	}
	// Skip blank lines between records (never inside them).
	var hdr []byte
	for {
		if !s.sc.Scan() {
			if err := s.sc.Err(); err != nil {
				s.err = fmt.Errorf("dna: fastq scan: %w", err)
			}
			return false
		}
		s.line++
		hdr = bytes.TrimSpace(s.sc.Bytes())
		if len(hdr) > 0 {
			break
		}
	}
	if hdr[0] != '@' {
		s.err = fmt.Errorf("dna: fastq line %d: expected '@', got %q", s.line, hdr[0])
		return false
	}
	rec := Record{Name: string(hdr[1:])}
	seq, ok := s.recordLine("sequence")
	if !ok {
		return false
	}
	rec.Seq = append([]byte(nil), seq...)
	sep, ok := s.recordLine("'+'")
	if !ok {
		return false
	}
	if sep[0] != '+' {
		s.err = fmt.Errorf("dna: fastq line %d: expected '+' separator, got %q (wrapped sequence lines are not supported)",
			s.line, sep[0])
		return false
	}
	qual, ok := s.recordLine("quality")
	if !ok {
		return false
	}
	rec.Qual = append([]byte(nil), qual...)
	if len(rec.Qual) != len(rec.Seq) {
		s.err = fmt.Errorf("dna: fastq line %d: quality length %d != sequence length %d",
			s.line, len(rec.Qual), len(rec.Seq))
		return false
	}
	s.rec = rec
	return true
}

// recordLine consumes one in-record line, which must exist and be non-blank.
func (s *FASTQScanner) recordLine(what string) ([]byte, bool) {
	if !s.sc.Scan() {
		if err := s.sc.Err(); err != nil {
			s.err = fmt.Errorf("dna: fastq scan: %w", err)
		} else {
			s.err = fmt.Errorf("dna: fastq line %d: truncated record (missing %s)", s.line, what)
		}
		return nil, false
	}
	s.line++
	b := bytes.TrimSpace(s.sc.Bytes())
	if len(b) == 0 {
		s.err = fmt.Errorf("dna: fastq line %d: blank %s line inside record", s.line, what)
		return nil, false
	}
	return b, true
}

// Record returns the record produced by the last successful Scan. Its
// buffers are freshly allocated per record and may be retained.
func (s *FASTQScanner) Record() Record { return s.rec }

// Err returns the terminal decode error, nil at clean end of input.
func (s *FASTQScanner) Err() error { return s.err }

// Line returns the number of input lines consumed so far.
func (s *FASTQScanner) Line() int { return s.line }

// ReadFASTQ parses all records from a FASTQ stream (strict 4-line records).
// It shares the framing rules of FASTQScanner, which it delegates to.
func ReadFASTQ(r io.Reader) ([]Record, error) {
	s := NewFASTQScanner(r)
	var recs []Record
	for s.Scan() {
		recs = append(recs, s.Record())
	}
	if err := s.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// WriteFASTQ writes records in FASTQ format, synthesizing a constant quality
// string when a record has none.
func WriteFASTQ(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	for _, rec := range recs {
		qual := rec.Qual
		if qual == nil {
			qual = bytes.Repeat([]byte{'I'}, len(rec.Seq))
		}
		if _, err := fmt.Fprintf(bw, "@%s\n%s\n+\n%s\n", rec.Name, rec.Seq, qual); err != nil {
			return err
		}
	}
	return bw.Flush()
}
