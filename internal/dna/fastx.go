package dna

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
)

// Record is a named sequence parsed from FASTA or FASTQ input.
type Record struct {
	Name string
	Seq  []byte
	Qual []byte // nil for FASTA
}

// ReadFASTA parses all records from a FASTA stream. It tolerates wrapped
// sequence lines and blank lines.
func ReadFASTA(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<26)
	var recs []Record
	var cur *Record
	line := 0
	for sc.Scan() {
		line++
		b := bytes.TrimSpace(sc.Bytes())
		if len(b) == 0 {
			continue
		}
		if b[0] == '>' {
			recs = append(recs, Record{Name: string(bytes.TrimSpace(b[1:]))})
			cur = &recs[len(recs)-1]
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("dna: fasta line %d: sequence before header", line)
		}
		cur.Seq = append(cur.Seq, b...)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dna: fasta scan: %w", err)
	}
	return recs, nil
}

// WriteFASTA writes records in FASTA format with 70-column wrapping.
func WriteFASTA(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	for _, rec := range recs {
		if _, err := fmt.Fprintf(bw, ">%s\n", rec.Name); err != nil {
			return err
		}
		for off := 0; off < len(rec.Seq); off += 70 {
			end := off + 70
			if end > len(rec.Seq) {
				end = len(rec.Seq)
			}
			if _, err := bw.Write(rec.Seq[off:end]); err != nil {
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadFASTQ parses all records from a FASTQ stream (4-line records).
func ReadFASTQ(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<26)
	var recs []Record
	line := 0
	for sc.Scan() {
		line++
		hdr := bytes.TrimSpace(sc.Bytes())
		if len(hdr) == 0 {
			continue
		}
		if hdr[0] != '@' {
			return nil, fmt.Errorf("dna: fastq line %d: expected '@', got %q", line, hdr[0])
		}
		rec := Record{Name: string(hdr[1:])}
		if !sc.Scan() {
			return nil, fmt.Errorf("dna: fastq line %d: truncated record (missing sequence)", line)
		}
		line++
		rec.Seq = append(rec.Seq, bytes.TrimSpace(sc.Bytes())...)
		if !sc.Scan() {
			return nil, fmt.Errorf("dna: fastq line %d: truncated record (missing '+')", line)
		}
		line++
		if !sc.Scan() {
			return nil, fmt.Errorf("dna: fastq line %d: truncated record (missing quality)", line)
		}
		line++
		rec.Qual = append(rec.Qual, bytes.TrimSpace(sc.Bytes())...)
		if len(rec.Qual) != len(rec.Seq) {
			return nil, fmt.Errorf("dna: fastq line %d: quality length %d != sequence length %d",
				line, len(rec.Qual), len(rec.Seq))
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dna: fastq scan: %w", err)
	}
	return recs, nil
}

// WriteFASTQ writes records in FASTQ format, synthesizing a constant quality
// string when a record has none.
func WriteFASTQ(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	for _, rec := range recs {
		qual := rec.Qual
		if qual == nil {
			qual = bytes.Repeat([]byte{'I'}, len(rec.Seq))
		}
		if _, err := fmt.Fprintf(bw, "@%s\n%s\n+\n%s\n", rec.Name, rec.Seq, qual); err != nil {
			return err
		}
	}
	return bw.Flush()
}
