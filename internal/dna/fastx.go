package dna

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
)

// Record is a named sequence parsed from FASTA or FASTQ input. For FASTA
// records Name is the header's first whitespace-delimited word (the sequence
// id downstream formats like SAM require) and Desc the remainder of the
// header, so a described header (">chr1 Homo sapiens") never leaks whitespace
// into an identifier. FASTQ names keep the whole header in Name, as before.
type Record struct {
	Name string
	Desc string // FASTA header description (text after the id), "" otherwise
	Seq  []byte
	Qual []byte // nil for FASTA
}

// fastaBufSize is ReadFASTA's internal read-buffer size. Lines longer than
// the buffer — an unwrapped chromosome-scale sequence line, say — are
// consumed in buffer-sized chunks, so no line-length cap exists.
const fastaBufSize = 1 << 16

// ReadFASTA parses all records from a FASTA stream. It tolerates wrapped
// sequence lines and blank lines, and imposes no limit on line length (an
// unwrapped chromosome on a single line is read in chunks). Headers are
// split at the first whitespace into Record.Name and Record.Desc.
func ReadFASTA(r io.Reader) ([]Record, error) {
	br := bufio.NewReaderSize(r, fastaBufSize)
	var recs []Record
	var cur *Record
	var scratch []byte // one line, reused across lines
	line := 0
	for {
		b, err := readLine(br, scratch[:0])
		if b == nil && err == io.EOF {
			return recs, nil
		}
		if err != nil && err != io.EOF {
			return nil, fmt.Errorf("dna: fasta scan: %w", err)
		}
		scratch = b
		line++
		b = bytes.TrimSpace(b)
		if len(b) == 0 {
			continue
		}
		if b[0] == '>' {
			name, desc := splitHeader(bytes.TrimSpace(b[1:]))
			recs = append(recs, Record{Name: name, Desc: desc})
			cur = &recs[len(recs)-1]
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("dna: fasta line %d: sequence before header", line)
		}
		cur.Seq = append(cur.Seq, b...)
	}
}

// readLine appends one input line (without its terminator) to buf, growing
// buf as needed — unlike a bufio.Scanner there is no maximum line length.
// At end of input it returns (nil, io.EOF) when no bytes remain, or the
// final unterminated line with io.EOF.
func readLine(br *bufio.Reader, buf []byte) ([]byte, error) {
	read := false
	for {
		chunk, err := br.ReadSlice('\n')
		if len(chunk) > 0 {
			read = true
			if chunk[len(chunk)-1] == '\n' {
				return append(buf, chunk[:len(chunk)-1]...), nil
			}
			buf = append(buf, chunk...)
		}
		switch err {
		case nil:
			return buf, nil
		case bufio.ErrBufferFull:
			continue // long line: keep consuming chunks
		case io.EOF:
			if !read {
				return nil, io.EOF
			}
			return buf, io.EOF
		default:
			return nil, err
		}
	}
}

// splitHeader splits a FASTA header (after '>') into the id and description.
func splitHeader(h []byte) (name, desc string) {
	if i := bytes.IndexAny(h, " \t"); i >= 0 {
		return string(h[:i]), string(bytes.TrimSpace(h[i+1:]))
	}
	return string(h), ""
}

// WriteFASTA writes records in FASTA format with 70-column wrapping. A
// record's description, when present, follows the id on the header line, so
// ReadFASTA round-trips both fields.
func WriteFASTA(w io.Writer, recs []Record) error {
	fw := NewFASTAWriter(w)
	for _, rec := range recs {
		if err := fw.Begin(rec.Name, rec.Desc); err != nil {
			return err
		}
		if err := fw.Append(rec.Seq); err != nil {
			return err
		}
	}
	return fw.Flush()
}

// FASTAWriter writes FASTA incrementally with the same 70-column wrapping
// as WriteFASTA (which runs on top of it): Begin opens a record's header,
// any number of Append calls stream its sequence in arbitrary chunks, and
// Flush closes the last record. A record's bytes never need to exist in one
// slice, so a generator (gksim's genome mode) can emit a multi-gigabase
// contig in constant memory.
type FASTAWriter struct {
	bw  *bufio.Writer
	col int // bases already on the current sequence line
}

// NewFASTAWriter returns a writer emitting to w.
func NewFASTAWriter(w io.Writer) *FASTAWriter {
	return &FASTAWriter{bw: bufio.NewWriter(w)}
}

// Begin starts a record: it terminates the previous record's final partial
// line, then writes the ">name desc" header.
func (fw *FASTAWriter) Begin(name, desc string) error {
	if err := fw.breakLine(); err != nil {
		return err
	}
	hdr := name
	if desc != "" {
		hdr += " " + desc
	}
	_, err := fmt.Fprintf(fw.bw, ">%s\n", hdr)
	return err
}

// Append streams sequence bases into the current record, wrapping lines at
// 70 columns across chunk boundaries.
func (fw *FASTAWriter) Append(seq []byte) error {
	for len(seq) > 0 {
		room := 70 - fw.col
		if room > len(seq) {
			room = len(seq)
		}
		if _, err := fw.bw.Write(seq[:room]); err != nil {
			return err
		}
		fw.col += room
		seq = seq[room:]
		if fw.col == 70 {
			if err := fw.bw.WriteByte('\n'); err != nil {
				return err
			}
			fw.col = 0
		}
	}
	return nil
}

func (fw *FASTAWriter) breakLine() error {
	if fw.col == 0 {
		return nil
	}
	fw.col = 0
	return fw.bw.WriteByte('\n')
}

// Flush terminates the final record's last line and flushes buffered
// output. The writer is reusable afterwards (the next Begin starts cleanly).
func (fw *FASTAWriter) Flush() error {
	if err := fw.breakLine(); err != nil {
		return err
	}
	return fw.bw.Flush()
}

// FASTQScanner decodes FASTQ records incrementally from a stream: one
// strict 4-line record per Scan call, with no full-file buffering, so a
// read set can flow straight into a mapping pipeline without ever being
// materialized. Blank lines are tolerated between records only; inside a
// record every line must be present and non-blank, the third line must be
// the '+' separator, and the quality string must match the sequence length
// — a mis-framed file (e.g. wrapped sequence lines) fails with a
// line-numbered error instead of silently pairing the wrong quality with a
// sequence. CRLF line endings are accepted.
type FASTQScanner struct {
	sc   *bufio.Scanner
	line int // 1-based number of the last line consumed
	rec  Record
	err  error
}

// NewFASTQScanner wraps a reader for incremental FASTQ decoding.
func NewFASTQScanner(r io.Reader) *FASTQScanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<26)
	return &FASTQScanner{sc: sc}
}

// Scan advances to the next record, returning false at end of input or on
// the first malformed record; Err distinguishes the two.
func (s *FASTQScanner) Scan() bool {
	if s.err != nil {
		return false
	}
	// Skip blank lines between records (never inside them).
	var hdr []byte
	for {
		if !s.sc.Scan() {
			if err := s.sc.Err(); err != nil {
				s.err = fmt.Errorf("dna: fastq line %d: read failed: %w", s.line+1, err)
			}
			return false
		}
		s.line++
		hdr = bytes.TrimSpace(s.sc.Bytes())
		if len(hdr) > 0 {
			break
		}
	}
	if hdr[0] != '@' {
		s.err = fmt.Errorf("dna: fastq line %d: expected '@', got %q", s.line, hdr[0])
		return false
	}
	rec := Record{Name: string(hdr[1:])}
	seq, ok := s.recordLine("sequence")
	if !ok {
		return false
	}
	rec.Seq = append([]byte(nil), seq...)
	sep, ok := s.recordLine("'+'")
	if !ok {
		return false
	}
	if sep[0] != '+' {
		s.err = fmt.Errorf("dna: fastq line %d: expected '+' separator, got %q (wrapped sequence lines are not supported)",
			s.line, sep[0])
		return false
	}
	qual, ok := s.recordLine("quality")
	if !ok {
		return false
	}
	rec.Qual = append([]byte(nil), qual...)
	if len(rec.Qual) != len(rec.Seq) {
		s.err = fmt.Errorf("dna: fastq line %d: quality length %d != sequence length %d",
			s.line, len(rec.Qual), len(rec.Seq))
		return false
	}
	s.rec = rec
	return true
}

// recordLine consumes one in-record line, which must exist and be non-blank.
func (s *FASTQScanner) recordLine(what string) ([]byte, bool) {
	if !s.sc.Scan() {
		if err := s.sc.Err(); err != nil {
			s.err = fmt.Errorf("dna: fastq line %d: read failed: %w", s.line+1, err)
		} else {
			s.err = fmt.Errorf("dna: fastq line %d: truncated record (missing %s)", s.line, what)
		}
		return nil, false
	}
	s.line++
	b := bytes.TrimSpace(s.sc.Bytes())
	if len(b) == 0 {
		s.err = fmt.Errorf("dna: fastq line %d: blank %s line inside record", s.line, what)
		return nil, false
	}
	return b, true
}

// Record returns the record produced by the last successful Scan. Its
// buffers are freshly allocated per record and may be retained.
func (s *FASTQScanner) Record() Record { return s.rec }

// Err returns the terminal decode error, nil at clean end of input.
func (s *FASTQScanner) Err() error { return s.err }

// Line returns the number of input lines consumed so far.
func (s *FASTQScanner) Line() int { return s.line }

// ReadFASTQ parses all records from a FASTQ stream (strict 4-line records).
// It shares the framing rules of FASTQScanner, which it delegates to.
func ReadFASTQ(r io.Reader) ([]Record, error) {
	s := NewFASTQScanner(r)
	var recs []Record
	for s.Scan() {
		recs = append(recs, s.Record())
	}
	if err := s.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// WriteFASTQ writes records in FASTQ format, synthesizing a constant quality
// string when a record has none.
func WriteFASTQ(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	for _, rec := range recs {
		qual := rec.Qual
		if qual == nil {
			qual = bytes.Repeat([]byte{'I'}, len(rec.Seq))
		}
		if _, err := fmt.Fprintf(bw, "@%s\n%s\n+\n%s\n", rec.Name, rec.Seq, qual); err != nil {
			return err
		}
	}
	return bw.Flush()
}
