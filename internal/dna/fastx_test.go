package dna

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// TestFASTAUnwrappedChromosomeLine is the regression for the scanner-era
// line cap: an unwrapped chromosome-scale FASTA line longer than the
// reader's internal buffer used to fail with "token too long"; it must now
// decode in chunks, byte for byte.
func TestFASTAUnwrappedChromosomeLine(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	long := RandomSeq(rng, 3*fastaBufSize+137) // > internal buffer, unaligned
	var in bytes.Buffer
	in.WriteString(">chrLong unwrapped\n")
	in.Write(long)
	in.WriteString("\n>chr2\nACGTACGT\n")
	recs, err := ReadFASTA(&in)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].Name != "chrLong" || recs[0].Desc != "unwrapped" {
		t.Fatalf("header split drifted: %+v", recs[0])
	}
	if !bytes.Equal(recs[0].Seq, long) {
		t.Fatalf("chunked long line corrupted the sequence: got %d bytes, want %d",
			len(recs[0].Seq), len(long))
	}
	if string(recs[1].Seq) != "ACGTACGT" {
		t.Fatalf("record after the long line drifted: %+v", recs[1])
	}
}

// TestFASTAFinalLineNoNewline covers the chunked reader's EOF handling: the
// final sequence line may end without a terminator, terminated mid-chunk.
func TestFASTAFinalLineNoNewline(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	long := RandomSeq(rng, fastaBufSize+53)
	recs, err := ReadFASTA(bytes.NewReader(append([]byte(">c\n"), long...)))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || !bytes.Equal(recs[0].Seq, long) {
		t.Fatalf("unterminated long final line mis-read (%d records)", len(recs))
	}
}

// scanAll drives the incremental decoder record by record, the way a
// streaming consumer would.
func scanAll(input string) ([]Record, error) {
	sc := NewFASTQScanner(strings.NewReader(input))
	var recs []Record
	for sc.Scan() {
		recs = append(recs, sc.Record())
	}
	return recs, sc.Err()
}

// TestFASTQScannerMatchesReadFASTQ is the differential suite: on every
// input — clean, CRLF, blank-padded, wrapped, truncated at each framing
// position, mis-framed — the incremental decoder and the whole-file
// ReadFASTQ must produce identical records and identical errors.
func TestFASTQScannerMatchesReadFASTQ(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"blank only", "\n\n  \n"},
		{"one record", "@r1\nACGT\n+\nIIII\n"},
		{"two records", "@r1\nACGT\n+\nIIII\n@r2 desc here\nTTTT\n+\nJJJJ\n"},
		{"separator with name", "@r1\nACGT\n+r1\nIIII\n"},
		{"crlf", "@r1\r\nACGT\r\n+\r\nIIII\r\n@r2\r\nTTTT\r\n+\r\nJJJJ\r\n"},
		{"blank between records", "@r1\nACGT\n+\nIIII\n\n\n@r2\nTTTT\n+\nJJJJ\n"},
		{"no trailing newline", "@r1\nACGT\n+\nIIII"},
		{"wrapped sequence", "@r1\nACGT\nACGT\n+\nIIIIIIII\n"},
		{"missing at", "r1\nACGT\n+\nIIII\n"},
		{"truncated after header", "@r1\n"},
		{"truncated after sequence", "@r1\nACGT\n"},
		{"truncated after separator", "@r1\nACGT\n+\n"},
		{"quality length mismatch", "@r1\nACGT\n+\nII\n"},
		{"blank sequence line", "@r1\n\n+\nIIII\n"},
		{"blank quality line", "@r1\nACGT\n+\n\n@r2\nTTTT\n+\nJJJJ\n"},
		{"quality starts with at", "@r1\nACGT\n+\n@III\n"},
		{"second record bad", "@r1\nACGT\n+\nIIII\n@r2\nTT\nII\n+\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			whole, wholeErr := ReadFASTQ(strings.NewReader(tc.input))
			inc, incErr := scanAll(tc.input)
			if (wholeErr == nil) != (incErr == nil) {
				t.Fatalf("error disagreement: ReadFASTQ=%v scanner=%v", wholeErr, incErr)
			}
			if wholeErr != nil {
				// ReadFASTQ discards the records before the damage; the
				// scanner has already delivered them. Errors must agree.
				if wholeErr.Error() != incErr.Error() {
					t.Fatalf("error text drifted:\nReadFASTQ: %v\nscanner:   %v", wholeErr, incErr)
				}
				return
			}
			if len(whole) != len(inc) {
				t.Fatalf("record count drifted: ReadFASTQ=%d scanner=%d", len(whole), len(inc))
			}
			for i := range whole {
				if whole[i].Name != inc[i].Name || string(whole[i].Seq) != string(inc[i].Seq) ||
					string(whole[i].Qual) != string(inc[i].Qual) {
					t.Fatalf("record %d drifted: %+v vs %+v", i, whole[i], inc[i])
				}
			}
		})
	}
}

func TestFASTQRejectsWrappedSequence(t *testing.T) {
	// The old decoder silently treated a wrapped sequence's continuation as
	// the '+' line and the '+' line as quality, pairing the wrong quality
	// with the sequence. The separator check turns that into a line-numbered
	// error.
	_, err := ReadFASTQ(strings.NewReader("@r1\nACGTACGT\nACGTACGT\n+\nIIIIIIIIIIIIIIII\n"))
	if err == nil {
		t.Fatal("wrapped sequence accepted")
	}
	if !strings.Contains(err.Error(), "'+' separator") || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error does not name the separator and line: %v", err)
	}
}

func TestFASTQRejectsBlankLineInsideRecord(t *testing.T) {
	for _, tc := range []struct{ name, input, wantLine string }{
		{"blank sequence", "@r1\n\n+\nIIII\n", "line 2"},
		{"blank separator", "@r1\nACGT\n\nIIII\n", "line 3"},
		{"blank quality", "@r1\nACGT\n+\n\n", "line 4"},
	} {
		_, err := ReadFASTQ(strings.NewReader(tc.input))
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if !strings.Contains(err.Error(), "blank") || !strings.Contains(err.Error(), tc.wantLine) {
			t.Fatalf("%s: error does not report the blank line with its number: %v", tc.name, err)
		}
	}
}

func TestFASTQScannerCRLFAndNames(t *testing.T) {
	recs, err := scanAll("@read/1 pos=42\r\nACGTN\r\n+\r\nIIIII\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("%d records", len(recs))
	}
	if recs[0].Name != "read/1 pos=42" {
		t.Fatalf("name %q", recs[0].Name)
	}
	if string(recs[0].Seq) != "ACGTN" || string(recs[0].Qual) != "IIIII" {
		t.Fatalf("record %+v", recs[0])
	}
}

func TestFASTQScannerStopsAtFirstError(t *testing.T) {
	// The record before the damage is still delivered; Scan then reports
	// false forever with the same terminal error.
	sc := NewFASTQScanner(strings.NewReader("@r1\nACGT\n+\nIIII\n@r2\nACGT\nIIII\n+\n"))
	if !sc.Scan() {
		t.Fatalf("first record not delivered: %v", sc.Err())
	}
	if sc.Record().Name != "r1" {
		t.Fatalf("record %+v", sc.Record())
	}
	if sc.Scan() {
		t.Fatal("mis-framed record delivered")
	}
	err := sc.Err()
	if err == nil || !strings.Contains(err.Error(), "line 7") {
		t.Fatalf("want '+' error at line 7, got %v", err)
	}
	if sc.Scan() || sc.Err() != err {
		t.Fatal("scanner did not stay stopped on its terminal error")
	}
}

func TestFASTQScannerRecordBuffersIndependent(t *testing.T) {
	// Streaming consumers retain Record() buffers while the scanner moves
	// on; the buffers must not be aliased to the scanner's internals.
	sc := NewFASTQScanner(strings.NewReader("@r1\nAAAA\n+\nIIII\n@r2\nCCCC\n+\nJJJJ\n"))
	if !sc.Scan() {
		t.Fatal(sc.Err())
	}
	first := sc.Record()
	if !sc.Scan() {
		t.Fatal(sc.Err())
	}
	if string(first.Seq) != "AAAA" || string(first.Qual) != "IIII" {
		t.Fatalf("first record mutated by later Scan: %+v", first)
	}
}

// TestFASTAWriterMatchesWriteFASTA pins the incremental writer to
// WriteFASTA byte for byte, across record lengths around the wrap column
// and arbitrary chunkings of the same sequence.
func TestFASTAWriterMatchesWriteFASTA(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	lengths := []int{0, 1, 69, 70, 71, 140, 141, 350, 1234}
	var recs []Record
	for i, n := range lengths {
		desc := ""
		if i%2 == 1 {
			desc = "described"
		}
		recs = append(recs, Record{Name: "chr" + strings.Repeat("x", i+1), Desc: desc, Seq: RandomSeq(rng, n)})
	}
	var want bytes.Buffer
	if err := WriteFASTA(&want, recs); err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 7, 70, 71, 100000} {
		var got bytes.Buffer
		fw := NewFASTAWriter(&got)
		for _, rec := range recs {
			if err := fw.Begin(rec.Name, rec.Desc); err != nil {
				t.Fatal(err)
			}
			for off := 0; off < len(rec.Seq); off += chunk {
				end := off + chunk
				if end > len(rec.Seq) {
					end = len(rec.Seq)
				}
				if err := fw.Append(rec.Seq[off:end]); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := fw.Flush(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("chunk=%d: incremental output differs from WriteFASTA", chunk)
		}
	}
	// And the wrapped output must decode back to the records.
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, recs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFASTA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("round trip lost records: %d of %d", len(back), len(recs))
	}
	for i := range recs {
		if !bytes.Equal(back[i].Seq, recs[i].Seq) {
			t.Fatalf("record %d sequence changed in round trip", i)
		}
	}
}

// failingReader yields its payload, then fails every subsequent Read with
// its error — a disk dying mid-file.
type failingReader struct {
	data []byte
	err  error
}

func (r *failingReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, r.err
	}
	n := copy(p, r.data)
	r.data = r.data[n:]
	return n, nil
}

func TestFASTQScannerMidStreamIOError(t *testing.T) {
	// An I/O failure mid-stream must deliver every record decoded before the
	// failure, then surface the underlying error with the line it struck —
	// not a bare wrapped error a user can't locate in a multi-gigabyte file.
	boom := errors.New("read: device not configured")
	var in bytes.Buffer
	for i := 0; i < 3; i++ {
		fmt.Fprintf(&in, "@r%d\nACGT\n+\nIIII\n", i)
	}
	sc := NewFASTQScanner(&failingReader{data: in.Bytes(), err: boom})
	n := 0
	for sc.Scan() {
		n++
	}
	if n != 3 {
		t.Fatalf("delivered %d records before the failure, want 3", n)
	}
	err := sc.Err()
	if !errors.Is(err, boom) {
		t.Fatalf("underlying I/O error not wrapped: %v", err)
	}
	if !strings.Contains(err.Error(), "line 13") {
		t.Fatalf("error not line-numbered at the failure point: %v", err)
	}

	// Failure inside a record (between the sequence and its '+') goes
	// through the in-record path and is line-numbered the same way.
	partial := []byte("@r0\nACGT\n+\nIIII\n@r1\nACGT\n")
	sc = NewFASTQScanner(&failingReader{data: partial, err: boom})
	n = 0
	for sc.Scan() {
		n++
	}
	if n != 1 {
		t.Fatalf("delivered %d records before the mid-record failure, want 1", n)
	}
	err = sc.Err()
	if !errors.Is(err, boom) || !strings.Contains(err.Error(), "line 7") {
		t.Fatalf("mid-record I/O error mis-reported: %v", err)
	}
}
