package dna

import "math/rand"

// RandomSeq fills a new sequence of length n with uniformly random bases
// drawn from rng. It is the building block for every synthetic dataset in
// the reproduction.
func RandomSeq(rng *rand.Rand, n int) []byte {
	seq := make([]byte, n)
	FillRandom(rng, seq)
	return seq
}

// FillRandom overwrites dst with uniform random bases — RandomSeq without
// the allocation, for generators that reuse one chunk buffer.
func FillRandom(rng *rand.Rand, dst []byte) {
	for i := range dst {
		dst[i] = Alphabet[rng.Intn(4)]
	}
}

// MutateSubstitutions copies seq and applies exactly k substitutions at
// distinct positions, each changing the base to a different one.
func MutateSubstitutions(rng *rand.Rand, seq []byte, k int) []byte {
	out := append([]byte(nil), seq...)
	if k <= 0 {
		return out
	}
	perm := rng.Perm(len(seq))
	if k > len(seq) {
		k = len(seq)
	}
	for _, p := range perm[:k] {
		old := out[p]
		for {
			b := Alphabet[rng.Intn(4)]
			if b != old {
				out[p] = b
				break
			}
		}
	}
	return out
}

// Edit is a single sequencing error or variant applied by ApplyEdits.
type Edit struct {
	Pos  int  // position in the original sequence
	Op   byte // 'X' substitution, 'I' insertion before Pos, 'D' deletion of Pos
	Base byte // new base for 'X' and 'I'
}

// ApplyEdits applies edits (sorted by Pos) to seq and returns the result.
// Insertions insert Base before Pos; deletions drop the base at Pos. The
// output length may differ from the input length.
func ApplyEdits(seq []byte, edits []Edit) []byte {
	out := make([]byte, 0, len(seq)+len(edits))
	byPos := make(map[int][]Edit, len(edits))
	for _, e := range edits {
		byPos[e.Pos] = append(byPos[e.Pos], e)
	}
	for i := 0; i <= len(seq); i++ {
		skip := false
		for _, e := range byPos[i] {
			switch e.Op {
			case 'I':
				out = append(out, e.Base)
			case 'D':
				skip = true
			case 'X':
				if i < len(seq) {
					out = append(out, e.Base)
					skip = true
				}
			}
		}
		if i < len(seq) && !skip {
			out = append(out, seq[i])
		}
	}
	return out
}

// RandomEdits draws k random edits over a sequence of length n with the given
// probability split between substitutions and indels. indelFrac of the edits
// are indels (half insertions, half deletions); the rest are substitutions.
func RandomEdits(rng *rand.Rand, n, k int, indelFrac float64) []Edit {
	if k <= 0 || n == 0 {
		return nil
	}
	positions := rng.Perm(n)
	if k > n {
		k = n
	}
	edits := make([]Edit, 0, k)
	for i := 0; i < k; i++ {
		e := Edit{Pos: positions[i], Base: Alphabet[rng.Intn(4)]}
		switch {
		case rng.Float64() >= indelFrac:
			e.Op = 'X'
		case rng.Intn(2) == 0:
			e.Op = 'I'
		default:
			e.Op = 'D'
		}
		edits = append(edits, e)
	}
	sortEdits(edits)
	return edits
}

func sortEdits(edits []Edit) {
	for i := 1; i < len(edits); i++ {
		for j := i; j > 0 && edits[j].Pos < edits[j-1].Pos; j-- {
			edits[j], edits[j-1] = edits[j-1], edits[j]
		}
	}
}

// SprinkleN replaces approximately rate*len(seq) bases with 'N' to model
// unknown base calls; it returns the number of bases replaced.
func SprinkleN(rng *rand.Rand, seq []byte, rate float64) int {
	n := 0
	for i := range seq {
		if rng.Float64() < rate {
			seq[i] = 'N'
			n++
		}
	}
	return n
}
