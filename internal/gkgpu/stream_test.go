package gkgpu

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/cuda"
	"repro/internal/dna"
)

// drainStream feeds pairs through a stream with a single producer and
// returns the results in emission order.
func drainStream(t *testing.T, eng *Engine, pairs []Pair, e int) []Result {
	t.Helper()
	in := make(chan Pair)
	out, err := eng.FilterStream(context.Background(), in, e)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for _, p := range pairs {
			in <- p
		}
		close(in)
	}()
	var res []Result
	for r := range out {
		res = append(res, r)
	}
	return res
}

func newStreamEngine(t *testing.T, enc EncodingActor, nDev, streamBatch int) *Engine {
	t.Helper()
	cfg := Config{ReadLen: 100, MaxE: 5, Encoding: enc,
		MaxBatchPairs: 256, StreamBatchPairs: streamBatch}
	eng, err := NewEngine(cfg, cuda.NewUniformContext(nDev, cuda.GTX1080Ti()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	return eng
}

func TestFilterStreamMatchesFilterPairs(t *testing.T) {
	// The stream must return byte-identical decisions to the one-shot path,
	// in input order, whatever the encoding actor, device count, or batch
	// granularity.
	rng := rand.New(rand.NewSource(21))
	pairs, _ := makePairs(rng, 700, 100, 5)
	for _, enc := range []EncodingActor{EncodeOnDevice, EncodeOnHost} {
		for _, nDev := range []int{1, 3} {
			ref := newTestEngine(t, enc, nDev)
			want, err := ref.FilterPairs(pairs, 5)
			if err != nil {
				t.Fatal(err)
			}
			eng := newStreamEngine(t, enc, nDev, 64)
			got := drainStream(t, eng, pairs, 5)
			if len(got) != len(want) {
				t.Fatalf("enc=%v nDev=%d: %d results, want %d", enc, nDev, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("enc=%v nDev=%d pair %d: stream %+v one-shot %+v",
						enc, nDev, i, got[i], want[i])
				}
			}
		}
	}
}

func TestFilterStreamConcurrentProducers(t *testing.T) {
	// Many producers feed one input channel; results must come back in the
	// order pairs entered the channel. A tee goroutine records that order so
	// the expectation is exact even though producer interleaving is not.
	rng := rand.New(rand.NewSource(22))
	const producers, perProducer = 4, 150
	shards := make([][]Pair, producers)
	for k := range shards {
		shards[k], _ = makePairs(rng, perProducer, 100, 5)
	}

	src := make(chan Pair)
	in := make(chan Pair)
	var order []Pair
	go func() {
		for p := range src {
			order = append(order, p)
			in <- p
		}
		close(in)
	}()
	var pwg sync.WaitGroup
	for k := 0; k < producers; k++ {
		pwg.Add(1)
		go func(k int) {
			defer pwg.Done()
			for _, p := range shards[k] {
				src <- p
			}
		}(k)
	}
	go func() {
		pwg.Wait()
		close(src)
	}()

	eng := newStreamEngine(t, EncodeOnHost, 2, 32)
	out, err := eng.FilterStream(context.Background(), in, 5)
	if err != nil {
		t.Fatal(err)
	}
	var got []Result
	for r := range out {
		got = append(got, r)
	}
	if len(got) != producers*perProducer {
		t.Fatalf("%d results, want %d", len(got), producers*perProducer)
	}

	ref := newTestEngine(t, EncodeOnHost, 2)
	want, err := ref.FilterPairs(order, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("pair %d: stream %+v one-shot %+v", i, got[i], want[i])
		}
	}

	st := eng.Stats()
	if st.Pairs != int64(producers*perProducer) {
		t.Fatalf("stats.Pairs = %d", st.Pairs)
	}
	if st.Accepted+st.Rejected != st.Pairs {
		t.Fatalf("Accepted(%d)+Rejected(%d) != Pairs(%d)", st.Accepted, st.Rejected, st.Pairs)
	}
	if st.Batches == 0 || st.KernelSeconds <= 0 || st.FilterSeconds <= st.KernelSeconds {
		t.Fatalf("stream stats implausible: %+v", st)
	}
}

func TestFilterStreamInvalidInputs(t *testing.T) {
	eng := newStreamEngine(t, EncodeOnHost, 1, 16)
	if _, err := eng.FilterStream(context.Background(), nil, 6); err == nil {
		t.Fatal("threshold above compiled MaxE accepted")
	}

	// A wrong-length pair keeps its slot as a defensive Undefined+Accept
	// instead of failing the whole stream.
	rng := rand.New(rand.NewSource(23))
	pairs, _ := makePairs(rng, 10, 100, 5)
	pairs[3] = Pair{Read: make([]byte, 50), Ref: pairs[3].Ref}
	res := drainStream(t, eng, pairs, 5)
	if len(res) != 10 {
		t.Fatalf("%d results, want 10", len(res))
	}
	if !res[3].Accept || !res[3].Undefined {
		t.Fatalf("wrong-length pair not passed through undefined: %+v", res[3])
	}
}

func TestFilterStreamEmpty(t *testing.T) {
	eng := newStreamEngine(t, EncodeOnDevice, 2, 16)
	res := drainStream(t, eng, nil, 5)
	if len(res) != 0 {
		t.Fatalf("empty stream produced %d results", len(res))
	}
	if st := eng.Stats(); st.Pairs != 0 {
		t.Fatalf("empty stream counted %d pairs", st.Pairs)
	}
}

func TestFilterStreamCancel(t *testing.T) {
	eng := newStreamEngine(t, EncodeOnHost, 2, 8)
	rng := rand.New(rand.NewSource(24))
	pairs, _ := makePairs(rng, 64, 100, 5)

	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan Pair)
	out, err := eng.FilterStream(ctx, in, 5)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for i := 0; ; i++ {
			select {
			case in <- pairs[i%len(pairs)]:
			case <-ctx.Done():
				close(in)
				return
			}
		}
	}()
	// Take a few results, then cancel; the channel must close.
	for i := 0; i < 20; i++ {
		if _, ok := <-out; !ok {
			t.Fatal("stream closed before cancellation")
		}
	}
	cancel()
	for range out {
	}
	if st := eng.Stats(); st.Pairs == 0 {
		t.Fatal("cancelled stream committed no completed work")
	}
	if err := eng.StreamErr(); err != nil {
		t.Fatalf("cancellation is not a stream failure: %v", err)
	}
}

func TestFilterStreamSequentialReuse(t *testing.T) {
	// The same engine must support stream after stream (buffer sets are
	// returned), and a one-shot call in between.
	eng := newStreamEngine(t, EncodeOnDevice, 2, 32)
	rng := rand.New(rand.NewSource(25))
	pairs, _ := makePairs(rng, 200, 100, 5)
	first := drainStream(t, eng, pairs, 5)
	mid, err := eng.FilterPairs(pairs, 5)
	if err != nil {
		t.Fatal(err)
	}
	second := drainStream(t, eng, pairs, 5)
	for i := range first {
		if first[i] != second[i] || first[i] != mid[i] {
			t.Fatalf("pair %d drifted across runs: %+v / %+v / %+v", i, first[i], mid[i], second[i])
		}
	}
	if st := eng.Stats(); st.Pairs != int64(3*len(pairs)) {
		t.Fatalf("stats.Pairs = %d after three runs", st.Pairs)
	}
}

func TestStreamBeatsOneShotModelled(t *testing.T) {
	// Acceptance: pipelined host-encoded filtering must beat the one-shot
	// path on modelled FilterSeconds for >= 2 devices — the whole point of
	// hiding host work behind kernel execution. Zero the per-launch and
	// per-batch overheads (as TestEngineMultiGPUKernelScaling does: at paper
	// scale compute dominates the launch cost) so the comparison isolates
	// the overlap model and holds under ANY placement of batches on devices
	// — the win must not depend on how the shared dispatch queue happened
	// to balance.
	model := cuda.DefaultCostModel()
	model.PerLaunchSeconds = 0
	model.PerBatchHostSeconds = 0
	rng := rand.New(rand.NewSource(26))
	pairs, _ := makePairs(rng, 12000, 100, 5)
	for _, nDev := range []int{2, 4} {
		mk := func() *Engine {
			cfg := Config{ReadLen: 100, MaxE: 5, Encoding: EncodeOnHost,
				MaxBatchPairs: 2048, StreamBatchPairs: 2048, Model: model}
			eng, err := NewEngine(cfg, cuda.NewUniformContext(nDev, cuda.GTX1080Ti()))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(eng.Close)
			return eng
		}
		oneShot := mk()
		if _, err := oneShot.FilterPairs(pairs, 5); err != nil {
			t.Fatal(err)
		}
		stream := mk()
		// Pre-filled buffered channel: a saturated producer, so dispatch
		// granularity is deterministic whatever the host's scheduler does.
		in := make(chan Pair, len(pairs))
		for _, p := range pairs {
			in <- p
		}
		close(in)
		out, err := stream.FilterStream(context.Background(), in, 5)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for range out {
			n++
		}
		if n != len(pairs) {
			t.Fatalf("nDev=%d: stream returned %d results, want %d", nDev, n, len(pairs))
		}
		os, ss := oneShot.Stats().FilterSeconds, stream.Stats().FilterSeconds
		if ss >= os {
			t.Errorf("nDev=%d: stream FilterSeconds %.6f not below one-shot %.6f", nDev, ss, os)
		}
	}
}

// drainCandidateStream feeds candidates through a candidate stream with a
// single producer and returns the results in emission order.
func drainCandidateStream(t *testing.T, eng *Engine, cands []StreamCandidate, e int) []Result {
	t.Helper()
	in := make(chan StreamCandidate)
	out, err := eng.FilterCandidateStream(context.Background(), in, e)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for _, c := range cands {
			in <- c
		}
		close(in)
	}()
	var res []Result
	for r := range out {
		res = append(res, r)
	}
	return res
}

func TestFilterCandidateStreamMatchesFilterCandidates(t *testing.T) {
	// The streaming candidate path must make exactly the decisions of the
	// one-shot index-named path, in input order, whatever the device count
	// or batch granularity — including 'N'-touched windows and reads.
	rng := rand.New(rand.NewSource(31))
	genome := dna.RandomSeq(rng, 30_000)
	genome[11_050] = 'N'
	var reads [][]byte
	var cands []Candidate
	var scands []StreamCandidate
	for i := 0; i < 50; i++ {
		pos := rng.Intn(len(genome) - 100)
		read := dna.MutateSubstitutions(rng, genome[pos:pos+100], rng.Intn(12))
		if i == 7 {
			read = append([]byte(nil), read...)
			read[40] = 'N'
		}
		reads = append(reads, read)
		for _, p := range []int{pos, rng.Intn(len(genome) - 100), 11_000} {
			cands = append(cands, Candidate{ReadID: int64(i), Pos: int64(p)})
			scands = append(scands, StreamCandidate{Read: read, Pos: int64(p)})
		}
	}
	ref := newTestEngine(t, EncodeOnHost, 1)
	if err := ref.SetReference(genome); err != nil {
		t.Fatal(err)
	}
	want, err := ref.FilterCandidates(reads, cands, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, nDev := range []int{1, 3} {
		eng := newStreamEngine(t, EncodeOnHost, nDev, 32)
		if err := eng.SetReference(genome); err != nil {
			t.Fatal(err)
		}
		got := drainCandidateStream(t, eng, scands, 5)
		if len(got) != len(want) {
			t.Fatalf("nDev=%d: %d results, want %d", nDev, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("nDev=%d candidate %d: stream %+v one-shot %+v", nDev, i, got[i], want[i])
			}
		}
		st := eng.Stats()
		if st.Pairs != int64(len(scands)) {
			t.Fatalf("stats.Pairs = %d, want %d", st.Pairs, len(scands))
		}
		if st.KernelSeconds <= 0 || st.FilterSeconds <= 0 {
			t.Fatalf("candidate stream committed no modelled clocks: %+v", st)
		}
	}
}

func TestFilterCandidateStreamDefensivePassThrough(t *testing.T) {
	// Candidates FilterCandidates would reject as a whole call — windows
	// outside the reference, wrong-length reads — keep their ordering slot
	// as Undefined+Accept on the stream.
	rng := rand.New(rand.NewSource(32))
	genome := dna.RandomSeq(rng, 5_000)
	eng := newStreamEngine(t, EncodeOnHost, 1, 16)
	if err := eng.SetReference(genome); err != nil {
		t.Fatal(err)
	}
	read := dna.RandomSeq(rng, 100)
	cands := []StreamCandidate{
		{Read: read, Pos: 100},
		{Read: read, Pos: int64(len(genome) - 50)}, // window past the end
		{Read: read, Pos: -3},                      // negative offset
		{Read: read[:60], Pos: 100},                // wrong-length read
		{Read: read, Pos: 200},
	}
	res := drainCandidateStream(t, eng, cands, 5)
	if len(res) != len(cands) {
		t.Fatalf("%d results, want %d", len(res), len(cands))
	}
	for _, i := range []int{1, 2, 3} {
		if !res[i].Accept || !res[i].Undefined {
			t.Fatalf("invalid candidate %d not passed through undefined: %+v", i, res[i])
		}
	}
	for _, i := range []int{0, 4} {
		if res[i].Undefined {
			t.Fatalf("clean candidate %d reported undefined", i)
		}
	}
}

func TestFilterCandidateStreamRequiresReference(t *testing.T) {
	eng := newStreamEngine(t, EncodeOnHost, 1, 16)
	if _, err := eng.FilterCandidateStream(context.Background(), nil, 5); err == nil {
		t.Fatal("candidate stream before SetReference accepted")
	}
	if err := eng.SetReference(make([]byte, 500)); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.FilterCandidateStream(context.Background(), nil, 99); err == nil {
		t.Fatal("threshold above compiled MaxE accepted")
	}
}

func TestFilterCandidateStreamInterleavesWithOtherPaths(t *testing.T) {
	// One engine must support candidate streams, pair streams, and one-shot
	// calls back to back: buffer sets are returned and the reference stays
	// loaded across them.
	rng := rand.New(rand.NewSource(33))
	genome := dna.RandomSeq(rng, 20_000)
	eng := newStreamEngine(t, EncodeOnHost, 2, 32)
	if err := eng.SetReference(genome); err != nil {
		t.Fatal(err)
	}
	var scands []StreamCandidate
	for i := 0; i < 120; i++ {
		pos := rng.Intn(len(genome) - 100)
		scands = append(scands, StreamCandidate{
			Read: dna.MutateSubstitutions(rng, genome[pos:pos+100], rng.Intn(10)),
			Pos:  int64(pos),
		})
	}
	first := drainCandidateStream(t, eng, scands, 5)
	pairs, _ := makePairs(rng, 100, 100, 5)
	if _, err := eng.FilterPairs(pairs, 5); err != nil {
		t.Fatal(err)
	}
	mid := drainStream(t, eng, pairs, 5)
	second := drainCandidateStream(t, eng, scands, 5)
	if len(mid) != len(pairs) {
		t.Fatalf("pair stream returned %d of %d", len(mid), len(pairs))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("candidate %d drifted across interleaved runs: %+v vs %+v", i, first[i], second[i])
		}
	}
}

func TestRoundSharesWeighted(t *testing.T) {
	// A mixed Pascal/Kepler context must hand the slower Kepler card fewer
	// pairs, in proportion to the modelled filtration rates.
	cfg := Config{ReadLen: 100, MaxE: 5, Encoding: EncodeOnHost, MaxBatchPairs: 4096}
	eng, err := NewEngine(cfg, cuda.NewContext(cuda.GTX1080Ti(), cuda.TeslaK20X()))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	w := eng.workload(1000, 5)
	shares := eng.roundShares(1000, w)
	if shares[0]+shares[1] != 1000 {
		t.Fatalf("shares %v do not sum to 1000", shares)
	}
	if shares[0] <= shares[1] {
		t.Fatalf("Pascal share %d not above Kepler share %d", shares[0], shares[1])
	}
	// Homogeneous contexts keep the paper's equal split (within rounding).
	eng2, err := NewEngine(cfg, cuda.NewUniformContext(3, cuda.GTX1080Ti()))
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	eq := eng2.roundShares(700, eng2.workload(700, 5))
	for _, s := range eq {
		if s < 233 || s > 234 {
			t.Fatalf("homogeneous shares %v not near-equal", eq)
		}
	}
	// Capacity caps are respected and overflow moves to devices with room.
	capped := eng2.roundShares(3*4096, eng2.workload(3*4096, 5))
	for i, s := range capped {
		if s != 4096 {
			t.Fatalf("full round share %d = %d, want capacity 4096", i, s)
		}
	}
}

func TestHeterogeneousKernelClock(t *testing.T) {
	// The round's kernel clock must be the max across the actual device
	// specs: a mixed Pascal/Kepler pair sits strictly between the
	// homogeneous Pascal pair and the homogeneous Kepler pair.
	rng := rand.New(rand.NewSource(27))
	pairs, _ := makePairs(rng, 1024, 100, 5)
	kt := func(specs ...cuda.DeviceSpec) float64 {
		cfg := Config{ReadLen: 100, MaxE: 5, Encoding: EncodeOnHost, MaxBatchPairs: 2048}
		eng, err := NewEngine(cfg, cuda.NewContext(specs...))
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		if _, err := eng.FilterPairs(pairs, 5); err != nil {
			t.Fatal(err)
		}
		return eng.Stats().KernelSeconds
	}
	pp := kt(cuda.GTX1080Ti(), cuda.GTX1080Ti())
	pk := kt(cuda.GTX1080Ti(), cuda.TeslaK20X())
	kk := kt(cuda.TeslaK20X(), cuda.TeslaK20X())
	if !(pp < pk && pk < kk) {
		t.Fatalf("mixed-context kernel clock out of order: pascal %.3g mixed %.3g kepler %.3g", pp, pk, kk)
	}
}

func TestClosedEngineFailsFast(t *testing.T) {
	cfg := Config{ReadLen: 100, MaxE: 5, MaxBatchPairs: 64}
	eng, err := NewEngine(cfg, cuda.NewUniformContext(1, cuda.GTX1080Ti()))
	if err != nil {
		t.Fatal(err)
	}
	eng.Close()
	if _, err := eng.FilterPairs(make([]Pair, 0), 5); err == nil {
		t.Fatal("FilterPairs on closed engine accepted")
	}
	if err := eng.SetReference(make([]byte, 200)); err == nil {
		t.Fatal("SetReference on closed engine accepted")
	}
	in := make(chan Pair)
	close(in)
	out, err := eng.FilterStream(context.Background(), in, 5)
	if err != nil {
		t.Fatal(err)
	}
	for range out {
		t.Fatal("closed engine emitted a result")
	}
	if err := eng.StreamErr(); err == nil {
		t.Fatal("stream on closed engine reported no error")
	}
}

func TestFilterPairsStatsUnchangedOnError(t *testing.T) {
	// A failed call must leave the accumulated stats untouched.
	eng := newTestEngine(t, EncodeOnHost, 2)
	rng := rand.New(rand.NewSource(28))
	pairs, _ := makePairs(rng, 300, 100, 5)
	if _, err := eng.FilterPairs(pairs, 5); err != nil {
		t.Fatal(err)
	}
	before := eng.Stats()
	if _, err := eng.FilterPairs([]Pair{{Read: make([]byte, 10), Ref: make([]byte, 100)}}, 5); err == nil {
		t.Fatal("bad pair accepted")
	}
	if _, err := eng.FilterPairs(pairs, 99); err == nil {
		t.Fatal("bad threshold accepted")
	}
	if after := eng.Stats(); after != before {
		t.Fatalf("failed calls mutated stats:\nbefore %+v\nafter  %+v", before, after)
	}
}
