package gkgpu

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cuda"
)

// defaultStreamBatchPairs is the dispatch granularity when the configuration
// does not set one: large enough to amortize the per-launch overhead, small
// enough that a stream spreads across devices quickly.
const defaultStreamBatchPairs = 1 << 14

// streamOutBuffer is the result channel's capacity; it decouples the
// consumer from the reorder stage without unbounding memory.
const streamOutBuffer = 1 << 10

// streamLinger is how long the dispatcher waits for more pairs after a batch
// opens before flushing it partially filled. It trades a bounded latency for
// full batches: a saturating producer fills the batch long before the linger
// elapses, while a trickle stream still flushes promptly instead of paying
// the per-launch overhead on single-pair batches.
const streamLinger = 2 * time.Millisecond

// streamBatch carries one dispatch unit through the pipeline: from the
// dispatcher, to a device's encode stage, to its launch stage, to the
// reorder collector that emits results in input order. The item type is the
// stream's input unit: materialized Pairs on the FilterStream path,
// index-named StreamCandidates on the FilterCandidateStream path.
//
// A batch that fails on a quarantined device travels back through the
// collector and dispatcher to a surviving device, keeping its seq — the
// ordering slot is assigned once, so redispatch cannot reorder the stream.
type streamBatch[T any] struct {
	seq   int
	items []T
	res   []Result
	err   error

	// Fault bookkeeping: retries made for this batch on the device that last
	// ran it, and whether its failure was the one that quarantined a device.
	retries     int64
	quarantined bool

	// Modelled timing, filled by the device that ran the batch. Telemetry is
	// not committed here: the collector folds it in sequence order so an
	// aborted stream counts nothing from the failed batch onward.
	devIdx    int
	kernelSec float64 // kernel + launch overhead, the CUDA-event clock
	busySec   float64 // pipelined busy time (max of encode and kernel stage)
	prepSec   float64 // host-encode share after the worker-pool speedup
	xferSec   float64 // PCIe share
	util      float64 // modelled compute utilization, for the power trace
}

// streamOps specializes the generic streaming pipeline to one input type.
// encode is the host-side stage (fill a buffer set, submit prefetches);
// launch is the device-side stage (kernel over the encoded set, results into
// res); workload shapes the cost model for a batch.
type streamOps[T any] struct {
	encode   func(st *deviceState, set *bufferSet, items []T)
	launch   func(st *deviceState, devIdx int, set *bufferSet, items []T, errThreshold int, res []Result) error
	workload func(n, errThreshold int) cuda.Workload
}

// streamTally aggregates a stream's per-device modelled clocks; the stream's
// kernel and filter time are the clocks of the device that takes the longest,
// exactly as the paper treats multi-GPU rounds.
type streamTally struct {
	kernel, busy, prep, xfer []float64
	decisions                Stats
	records                  []kernelRecord
	err                      error // terminal classified error, if any
}

// FilterStream filters pairs arriving on in at the given threshold and
// returns a channel of results in input order (the order pairs are received
// from in, which many producer goroutines may feed concurrently). Each
// device runs an asynchronous double-buffered pipeline: while its kernel
// consumes one buffer set, the host-encode worker pool fills the other, so
// host preparation hides behind kernel execution instead of preceding it.
// Batches are bounded in flight — two per device, the buffer sets — so a
// slow consumer exerts backpressure all the way to the producers.
//
// Decisions are identical to FilterPairs. Unlike FilterPairs, which rejects
// the whole call, a pair whose lengths do not match the compiled geometry is
// reported as Undefined+Accept (the engine's defensive pass-to-verification
// convention) so the stream keeps its ordering slot. Cancelling ctx stops
// dispatch and closes the result channel after in-flight batches drain;
// results not yet emitted are dropped. The channel closes when in is closed
// and every result has been emitted.
//
// The stream is fault tolerant: a failed batch retries on its device under
// Config.Fault's bounded-backoff policy; a device that keeps failing (or is
// lost outright) is quarantined, and its in-flight and future batches
// redispatch to the surviving devices with decisions, order, and decision
// stats bit-identical to a fault-free run. Only when no device survives does
// the stream abort terminally: emission stops, the input channel is drained
// so producers never block, and StreamErr returns the first classified fault
// wrapped in ErrStreamAborted. An engine runs one stream or one FilterPairs
// call at a time; concurrent calls serialize on the device buffers.
func (e *Engine) FilterStream(ctx context.Context, in <-chan Pair, errThreshold int) (<-chan Result, error) {
	if errThreshold < 0 || errThreshold > e.cfg.MaxE {
		return nil, fmt.Errorf("gkgpu: threshold %d outside compiled [0,%d]", errThreshold, e.cfg.MaxE)
	}
	out := make(chan Result, streamOutBuffer)
	go runStream(e, ctx, in, errThreshold, out, streamOps[Pair]{
		encode: func(st *deviceState, set *bufferSet, items []Pair) {
			e.encodeChunk(st, set, items)
			e.prefetch(st, set)
		},
		launch: func(st *deviceState, _ int, set *bufferSet, items []Pair, errThreshold int, res []Result) error {
			return e.launchDecode(st, set, len(items), errThreshold, res)
		},
		workload: e.workload,
	})
	return out, nil
}

// StreamErr returns the terminal error of the most recently completed
// stream, or nil. A stream whose result channel closed before every input
// pair was answered either was cancelled (ctx) or failed; StreamErr
// distinguishes the two. A failure is the first classified DeviceFault,
// wrapped in ErrStreamAborted — errors.Is matches both the abort and the
// fault's taxonomy kind, and errors.As recovers the DeviceFault itself.
func (e *Engine) StreamErr() error {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	return e.streamErr
}

func (e *Engine) setStreamErr(err error) {
	e.statsMu.Lock()
	e.streamErr = err
	e.statsMu.Unlock()
}

// streamBatchPairs resolves the dispatch granularity against the smallest
// live per-device capacity.
func (e *Engine) streamBatchPairs() int {
	minCap := 0
	for _, st := range e.states {
		if st.down.Load() {
			continue
		}
		if minCap == 0 || st.sys.BatchPairs < minCap {
			minCap = st.sys.BatchPairs
		}
	}
	b := e.cfg.StreamBatchPairs
	if b == 0 {
		b = defaultStreamBatchPairs
	}
	if minCap > 0 && b > minCap {
		b = minCap
	}
	return b
}

// drainInput consumes a terminally failed stream's input to exhaustion, so a
// producer that does not watch the stream's state never deadlocks on send.
// Callers only invoke it on terminal failure, never on cancellation — a
// cancelled producer is expected to stop on the same ctx, whereas a failed
// stream's producer may know nothing and must be unblocked until it closes
// the channel, as the stream contract requires.
func drainInput[T any](in <-chan T) {
	for range in {
	}
}

// runStream owns a stream's lifetime: dispatching batches, fanning them out
// to the per-device pipelines, reordering completions, redispatching batches
// off quarantined devices, and committing stats. It is generic over the
// stream's input unit; ops provides the per-device encode/launch stages and
// the cost-model workload shape.
func runStream[T any](e *Engine, ctx context.Context, in <-chan T, errThreshold int, out chan<- Result, ops streamOps[T]) {
	defer close(out)
	// The stream owns every device for its whole life; runMu held across the
	// pipeline (including its channel waits) is that ownership.
	//gk:allow lockcheck: runMu intentionally serializes the whole stream against one-shot calls and reference replacement
	e.runMu.Lock()
	defer e.runMu.Unlock()
	if len(e.states) == 0 {
		e.setStreamErr(fmt.Errorf("%w: engine is closed", ErrStreamAborted))
		drainInput(in)
		return
	}
	if e.liveStates() == 0 {
		e.setStreamErr(fmt.Errorf("%w: %w: every device is quarantined", ErrStreamAborted, ErrDeviceLost))
		drainInput(in)
		return
	}

	wallStart := time.Now()
	nDev := len(e.states)
	batchCap := e.streamBatchPairs()

	// dispatch is unbuffered: a batch is accepted only when some device has
	// a free buffer set, which bounds in-flight work to two batches per
	// device. completed has room for every batch that can be in flight so
	// device pipelines never stall on the collector. resubmit carries
	// batches bounced off a quarantined device back to the dispatcher for a
	// surviving one; its capacity also covers every in-flight batch, so the
	// collector never blocks on it. settled pulses when the collector
	// finalizes a batch; after input ends the dispatcher waits on it until
	// every issued batch has resolved, forwarding redispatches meanwhile.
	dispatch := make(chan *streamBatch[T])
	completed := make(chan *streamBatch[T], bufferSets*nDev+1)
	// A dying device bounces at most its pipeline depth plus one in-hand
	// batch (bufferSets+2); sized for every device dying, the collector's
	// resubmit send can never block, so it always returns to draining
	// completed — the property the pipeline's liveness rests on.
	resubmit := make(chan *streamBatch[T], (bufferSets+2)*nDev)
	settled := make(chan struct{}, 1)
	var inFlight atomic.Int64

	// Batches recycle through a pool: in-flight count is bounded (two per
	// device plus the one being filled), so after warm-up the steady-state
	// stream allocates no batch structs, item slices, or result slices —
	// the dispatcher appends into a recycled items buffer and the collector
	// returns each batch once its results have been emitted and tallied.
	var pool sync.Pool
	newBatch := func() *streamBatch[T] {
		if b, ok := pool.Get().(*streamBatch[T]); ok {
			b.items = b.items[:0]
			b.err = nil
			b.retries = 0
			b.quarantined = false
			return b
		}
		return &streamBatch[T]{items: make([]T, 0, batchCap)}
	}
	recycle := func(b *streamBatch[T]) {
		clear(b.items) // drop references so recycling never retains sequences
		b.items = b.items[:0]
		pool.Put(b)
	}

	var workers sync.WaitGroup
	for di, st := range e.states {
		if st.down.Load() {
			continue // quarantined by an earlier stream or one-shot call
		}
		workers.Add(1)
		go func(di int, st *deviceState) {
			defer workers.Done()
			streamWorker(e, ctx, di, st, errThreshold, dispatch, completed, ops)
		}(di, st)
	}

	// Reorder collector: emit batches in sequence order, input order within
	// each batch. A failed batch redispatches while survivors exist; the
	// first failure with none left is terminal — emission stops, aborted
	// tells the dispatcher, and completions keep draining so the device
	// pipelines can finish.
	tallyCh := make(chan streamTally, 1)
	aborted := make(chan struct{})
	go func() {
		tally := streamTally{
			kernel: make([]float64, nDev),
			busy:   make([]float64, nDev),
			prep:   make([]float64, nDev),
			xfer:   make([]float64, nDev),
		}
		pending := make(map[int]*streamBatch[T])
		next := 0
		canceled, failed := false, false
		finalize := func(b *streamBatch[T]) {
			recycle(b)
			inFlight.Add(-1)
			select {
			case settled <- struct{}{}:
			default: // a wake-up is already pending
			}
		}
		for b := range completed {
			if b.err != nil {
				// Retries spent on the failing device still count, whatever
				// happens to the batch next.
				tally.decisions.Retries += b.retries
				b.retries = 0
				if b.quarantined {
					tally.decisions.DevicesLost++
					b.quarantined = false
				}
				if !failed && ctx.Err() == nil && e.liveStates() > 0 {
					// Redispatch: the batch keeps its seq, so emission order
					// is untouched; a surviving device reruns the identical
					// encode+launch, so decisions are bit-identical too.
					b.err = nil
					tally.decisions.Redispatches++
					resubmit <- b // capacity covers every in-flight batch, the send cannot block
					continue
				}
				if !failed && ctx.Err() == nil {
					tally.err = fmt.Errorf("%w: %w", ErrStreamAborted, b.err)
					failed = true
					//gk:allow chanlife: the failed flag above makes this close once-only; the guard is a boolean the flow analysis cannot track
					close(aborted)
				}
				// Terminal or cancelled: the batch is dropped undelivered.
				finalize(b)
				continue
			}
			pending[b.seq] = b
			for {
				nb, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				next++
				if failed {
					finalize(nb)
					continue
				}
				// Clocks, decisions, and device telemetry tally here, in
				// sequence order, so a failure cleanly cuts the stats at
				// the failed batch.
				tally.kernel[nb.devIdx] += nb.kernelSec
				tally.busy[nb.devIdx] += nb.busySec
				tally.prep[nb.devIdx] += nb.prepSec
				tally.xfer[nb.devIdx] += nb.xferSec
				tally.decisions.Batches++
				tally.decisions.Retries += nb.retries
				tally.decisions.countDecisions(nb.res)
				tally.records = append(tally.records, kernelRecord{
					dev: e.states[nb.devIdx].dev, kt: nb.kernelSec, util: nb.util})
				if !canceled {
					for _, r := range nb.res {
						select {
						case out <- r:
						case <-ctx.Done():
							canceled = true
						}
						if canceled {
							break
						}
					}
				}
				finalize(nb)
			}
		}
		tallyCh <- tally
	}()

	// Dispatcher: group incoming pairs into batches. The first pair of a
	// batch is awaited indefinitely; once a batch is open it fills until
	// full or until the linger window elapses, so a saturated stream ships
	// whole batches while a sparse one still flushes with bounded latency.
	// Batches come from the recycling pool, so steady-state dispatch
	// performs no allocation. The dispatcher doubles as the redispatch
	// router: batches bounced off a quarantined device re-enter dispatch
	// here, before fresh input, so they reach a surviving device promptly.
	seq := 0
	var batch *streamBatch[T]
	linger := time.NewTimer(streamLinger)
	if !linger.Stop() {
		<-linger.C
	}
	forward := func(b *streamBatch[T]) bool {
		select {
		case dispatch <- b:
			return true
		case <-ctx.Done():
			return false
		case <-aborted:
			return false
		}
	}
	flush := func() bool {
		if batch == nil || len(batch.items) == 0 {
			return true
		}
		b := batch
		batch = nil
		b.seq = seq
		seq++
		if cap(b.res) < len(b.items) {
			b.res = make([]Result, len(b.items))
		} else {
			b.res = b.res[:len(b.items)]
		}
		inFlight.Add(1)
		if !forward(b) {
			inFlight.Add(-1)
			return false
		}
		return true
	}
	stopLinger := func() {
		if !linger.Stop() {
			<-linger.C
		}
	}
receive:
	for {
		select {
		case p, ok := <-in:
			if !ok {
				break receive
			}
			if batch == nil {
				batch = newBatch()
			}
			batch.items = append(batch.items, p)
		case rb := <-resubmit:
			if !forward(rb) {
				break receive
			}
			continue receive
		case <-ctx.Done():
			break receive
		case <-aborted:
			break receive
		}
		linger.Reset(streamLinger)
	drain:
		for len(batch.items) < batchCap {
			select {
			case p, ok := <-in:
				if !ok {
					stopLinger()
					break receive
				}
				batch.items = append(batch.items, p)
			case rb := <-resubmit:
				if !forward(rb) {
					stopLinger()
					break receive
				}
			case <-ctx.Done():
				stopLinger()
				break receive
			case <-linger.C:
				break drain
			}
		}
		if len(batch.items) >= batchCap {
			stopLinger()
		}
		if !flush() {
			break receive
		}
	}
	if ctx.Err() == nil {
		flush()
	}
	// Input is done (closed, cancelled, or aborted), but redispatched
	// batches may still be in flight: keep routing them until the collector
	// has finalized everything issued.
settle:
	for inFlight.Load() > 0 {
		select {
		case rb := <-resubmit:
			if !forward(rb) {
				break settle
			}
		case <-settled:
		case <-ctx.Done():
			break settle
		case <-aborted:
			break settle
		}
	}
	close(dispatch)
	workers.Wait()
	close(completed)
	tally := <-tallyCh
	if tally.err != nil {
		// Terminal failure: honour the producer contract by draining the
		// input the receive loop walked away from.
		drainInput(in)
	}

	// Commit the stream's modelled clocks: the device that stayed busy the
	// longest is the stream's critical path.
	acc := tally.decisions
	acc.KernelSeconds = maxFloat(tally.kernel)
	acc.FilterSeconds = maxFloat(tally.busy)
	acc.HostPrepSeconds = maxFloat(tally.prep)
	acc.TransferSeconds = maxFloat(tally.xfer)
	acc.WallSeconds = time.Since(wallStart).Seconds()
	for _, r := range tally.records {
		r.dev.RecordKernel(r.kt, r.util)
	}
	e.setStreamErr(tally.err)
	e.commitStats(acc)
}

// streamWorker is one device's half of the pipeline: an encode stage (this
// goroutine) and a launch stage (a nested goroutine) connected by the two
// buffer sets. While the launcher runs the kernel over one set, the encoder
// fills the other — the double-buffered overlap the stream models. When the
// device is quarantined the worker bounces its current batch back through
// completed (for redispatch) and stops consuming; the surviving workers own
// the rest of the stream.
func streamWorker[T any](e *Engine, ctx context.Context, di int, st *deviceState, errThreshold int,
	dispatch <-chan *streamBatch[T], completed chan<- *streamBatch[T], ops streamOps[T]) {

	type work struct {
		set *bufferSet
		b   *streamBatch[T]
	}
	free := make(chan *bufferSet, len(st.sets))
	for _, set := range st.sets {
		free <- set
	}
	ready := make(chan work)
	launcherDone := make(chan struct{})
	go func() {
		defer close(launcherDone)
		for wk := range ready {
			b := wk.b
			b.err = launchWithRetry(e, ctx, st, di, wk.set, b, errThreshold, ops)
			if b.err == nil {
				tallyBatch(e, st, di, b, ops.workload(len(b.items), errThreshold))
			}
			free <- wk.set
			completed <- b //gk:allow streamsafe: the collector drains completed until every worker's launcherDone closes
		}
	}()
	for b := range dispatch {
		if st.down.Load() {
			b.err = classifyFault(st.dev.ID, b.seq, 0, cuda.ErrDeviceLost)
			completed <- b //gk:allow streamsafe: completed's capacity covers every in-flight batch
			break
		}
		set := <-free
		ops.encode(st, set, b.items)
		ready <- work{set: set, b: b} //gk:allow streamsafe: the launcher goroutine drains ready until this loop closes it
	}
	close(ready)
	<-launcherDone
}

// launchWithRetry runs one batch's launch stage under the engine's fault
// policy: transient failures retry on the same buffer set with doubling,
// capped, ctx-interruptible backoff (the encode is still in the buffers, and
// an injected fault fires before any kernel thread runs, so a retry
// reproduces the batch exactly). A lost device, exhausted attempts, or
// cancellation ends the loop with the classified fault; the first two also
// quarantine the device, marking the batch so the collector counts the
// quarantine event exactly once.
func launchWithRetry[T any](e *Engine, ctx context.Context, st *deviceState, di int,
	set *bufferSet, b *streamBatch[T], errThreshold int, ops streamOps[T]) error {

	pol := e.cfg.Fault
	backoff := pol.Backoff
	for attempt := 1; ; attempt++ {
		if st.down.Load() {
			return classifyFault(st.dev.ID, b.seq, attempt-1, cuda.ErrDeviceLost)
		}
		err := ops.launch(st, di, set, b.items, errThreshold, b.res)
		if err == nil {
			return nil
		}
		fault := classifyFault(st.dev.ID, b.seq, attempt, err)
		if lost := errors.Is(err, cuda.ErrDeviceLost); lost || attempt >= pol.MaxAttempts {
			if st.down.CompareAndSwap(false, true) {
				b.quarantined = true
			}
			return fault
		}
		if ctx.Err() != nil {
			// Cancelled mid-batch: no quarantine — the fault was transient
			// and the stream is winding down anyway.
			return fault
		}
		b.retries++
		t := time.NewTimer(backoff)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return fault
		}
		backoff *= 2
		if backoff > pol.MaxBackoff {
			backoff = pol.MaxBackoff
		}
	}
}

// tallyBatch fills a completed batch's modelled clocks for the device that
// ran it; the collector commits them (and the device telemetry) only for
// batches before any failure. The encode-pool width comes from the modelled
// Setup, not the simulating machine, so the clocks are reproducible anywhere.
//
//gk:noalloc
func tallyBatch[T any](e *Engine, st *deviceState, di int, b *streamBatch[T], w cuda.Workload) {
	m := e.cfg.Model
	encWorkers := e.cfg.Setup.EncodeWorkers
	if encWorkers < 1 {
		encWorkers = 1
	}
	b.devIdx = di
	b.kernelSec = m.KernelSeconds(st.dev.Spec, w) + m.PerLaunchSeconds
	b.busySec = m.PipelinedFilterSeconds(st.dev.Spec, w, encWorkers, e.cfg.Setup.HostFactor)
	b.prepSec = m.HostPrepSeconds(w, e.cfg.Setup.HostFactor) / m.EncodePoolSpeedup(encWorkers)
	b.xferSec = m.TransferSeconds(st.dev.Spec, w)
	b.util = m.Utilization(st.dev.Spec, w)
}

//gk:noalloc
func maxFloat(xs []float64) float64 {
	max := 0.0
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	return max
}
