package gkgpu

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/cuda"
)

// defaultStreamBatchPairs is the dispatch granularity when the configuration
// does not set one: large enough to amortize the per-launch overhead, small
// enough that a stream spreads across devices quickly.
const defaultStreamBatchPairs = 1 << 14

// streamOutBuffer is the result channel's capacity; it decouples the
// consumer from the reorder stage without unbounding memory.
const streamOutBuffer = 1 << 10

// streamLinger is how long the dispatcher waits for more pairs after a batch
// opens before flushing it partially filled. It trades a bounded latency for
// full batches: a saturating producer fills the batch long before the linger
// elapses, while a trickle stream still flushes promptly instead of paying
// the per-launch overhead on single-pair batches.
const streamLinger = 2 * time.Millisecond

// streamBatch carries one dispatch unit through the pipeline: from the
// dispatcher, to a device's encode stage, to its launch stage, to the
// reorder collector that emits results in input order. The item type is the
// stream's input unit: materialized Pairs on the FilterStream path,
// index-named StreamCandidates on the FilterCandidateStream path.
type streamBatch[T any] struct {
	seq   int
	items []T
	res   []Result
	err   error

	// Modelled timing, filled by the device that ran the batch. Telemetry is
	// not committed here: the collector folds it in sequence order so an
	// aborted stream counts nothing from the failed batch onward.
	devIdx    int
	kernelSec float64 // kernel + launch overhead, the CUDA-event clock
	busySec   float64 // pipelined busy time (max of encode and kernel stage)
	prepSec   float64 // host-encode share after the worker-pool speedup
	xferSec   float64 // PCIe share
	util      float64 // modelled compute utilization, for the power trace
}

// streamOps specializes the generic streaming pipeline to one input type.
// encode is the host-side stage (fill a buffer set, submit prefetches);
// launch is the device-side stage (kernel over the encoded set, results into
// res); workload shapes the cost model for a batch.
type streamOps[T any] struct {
	encode   func(st *deviceState, set *bufferSet, items []T)
	launch   func(st *deviceState, devIdx int, set *bufferSet, items []T, errThreshold int, res []Result) error
	workload func(n, errThreshold int) cuda.Workload
}

// streamTally aggregates a stream's per-device modelled clocks; the stream's
// kernel and filter time are the clocks of the device that takes the longest,
// exactly as the paper treats multi-GPU rounds.
type streamTally struct {
	kernel, busy, prep, xfer []float64
	decisions                Stats
	records                  []kernelRecord
	err                      error // first launch failure, if any
}

// FilterStream filters pairs arriving on in at the given threshold and
// returns a channel of results in input order (the order pairs are received
// from in, which many producer goroutines may feed concurrently). Each
// device runs an asynchronous double-buffered pipeline: while its kernel
// consumes one buffer set, the host-encode worker pool fills the other, so
// host preparation hides behind kernel execution instead of preceding it.
// Batches are bounded in flight — two per device, the buffer sets — so a
// slow consumer exerts backpressure all the way to the producers.
//
// Decisions are identical to FilterPairs. Unlike FilterPairs, which rejects
// the whole call, a pair whose lengths do not match the compiled geometry is
// reported as Undefined+Accept (the engine's defensive pass-to-verification
// convention) so the stream keeps its ordering slot. Cancelling ctx stops
// dispatch and closes the result channel after in-flight batches drain;
// results not yet emitted are dropped. The channel closes when in is closed
// and every result has been emitted. A kernel launch failure aborts the
// stream as FilterPairs' error return would: emission stops at the failed
// batch, nothing from it onward is counted, and the error is available from
// StreamErr after the channel closes. An engine runs one stream or one
// FilterPairs call at a time; concurrent calls serialize on the device
// buffers.
func (e *Engine) FilterStream(ctx context.Context, in <-chan Pair, errThreshold int) (<-chan Result, error) {
	if errThreshold < 0 || errThreshold > e.cfg.MaxE {
		return nil, fmt.Errorf("gkgpu: threshold %d outside compiled [0,%d]", errThreshold, e.cfg.MaxE)
	}
	out := make(chan Result, streamOutBuffer)
	go runStream(e, ctx, in, errThreshold, out, streamOps[Pair]{
		encode: func(st *deviceState, set *bufferSet, items []Pair) {
			e.encodeChunk(st, set, items)
			e.prefetch(st, set)
		},
		launch: func(st *deviceState, _ int, set *bufferSet, items []Pair, errThreshold int, res []Result) error {
			return e.launchDecode(st, set, len(items), errThreshold, res)
		},
		workload: e.workload,
	})
	return out, nil
}

// StreamErr returns the terminal error of the most recently completed
// stream, or nil. A stream whose result channel closed before every input
// pair was answered either was cancelled (ctx) or failed; StreamErr
// distinguishes the two.
func (e *Engine) StreamErr() error {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	return e.streamErr
}

// streamBatchPairs resolves the dispatch granularity against the smallest
// per-device capacity.
func (e *Engine) streamBatchPairs() int {
	minCap := e.states[0].sys.BatchPairs
	for _, st := range e.states[1:] {
		if st.sys.BatchPairs < minCap {
			minCap = st.sys.BatchPairs
		}
	}
	b := e.cfg.StreamBatchPairs
	if b == 0 {
		b = defaultStreamBatchPairs
	}
	if b > minCap {
		b = minCap
	}
	return b
}

// runStream owns a stream's lifetime: dispatching batches, fanning them out
// to the per-device pipelines, reordering completions, and committing stats.
// It is generic over the stream's input unit; ops provides the per-device
// encode/launch stages and the cost-model workload shape.
func runStream[T any](e *Engine, ctx context.Context, in <-chan T, errThreshold int, out chan<- Result, ops streamOps[T]) {
	defer close(out)
	e.runMu.Lock()
	defer e.runMu.Unlock()
	if len(e.states) == 0 {
		e.statsMu.Lock()
		e.streamErr = fmt.Errorf("gkgpu: engine is closed")
		e.statsMu.Unlock()
		return
	}

	wallStart := time.Now()
	nDev := len(e.states)
	batchCap := e.streamBatchPairs()

	// dispatch is unbuffered: a batch is accepted only when some device has
	// a free buffer set, which bounds in-flight work to two batches per
	// device. completed has room for every batch that can be in flight so
	// device pipelines never stall on the collector.
	dispatch := make(chan *streamBatch[T])
	completed := make(chan *streamBatch[T], bufferSets*nDev+1)

	// Batches recycle through a pool: in-flight count is bounded (two per
	// device plus the one being filled), so after warm-up the steady-state
	// stream allocates no batch structs, item slices, or result slices —
	// the dispatcher appends into a recycled items buffer and the collector
	// returns each batch once its results have been emitted and tallied.
	var pool sync.Pool
	newBatch := func() *streamBatch[T] {
		if b, ok := pool.Get().(*streamBatch[T]); ok {
			b.items = b.items[:0]
			b.err = nil
			return b
		}
		return &streamBatch[T]{items: make([]T, 0, batchCap)}
	}
	recycle := func(b *streamBatch[T]) {
		clear(b.items) // drop references so recycling never retains sequences
		b.items = b.items[:0]
		pool.Put(b)
	}

	var workers sync.WaitGroup
	for di, st := range e.states {
		workers.Add(1)
		go func(di int, st *deviceState) {
			defer workers.Done()
			streamWorker(e, di, st, errThreshold, dispatch, completed, ops)
		}(di, st)
	}

	// Reorder collector: emit batches in sequence order, input order within
	// each batch. After cancellation or a launch failure it keeps draining
	// completions (so the device pipelines can finish) without emitting;
	// aborted tells the dispatcher to stop accepting input on failure.
	tallyCh := make(chan streamTally, 1)
	aborted := make(chan struct{})
	go func() {
		tally := streamTally{
			kernel: make([]float64, nDev),
			busy:   make([]float64, nDev),
			prep:   make([]float64, nDev),
			xfer:   make([]float64, nDev),
		}
		pending := make(map[int]*streamBatch[T])
		next := 0
		canceled, failed := false, false
		for b := range completed {
			pending[b.seq] = b
			for {
				nb, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				next++
				if nb.err != nil && !failed {
					// A launch failure aborts the stream like FilterPairs'
					// error return: nothing from the failed batch onward is
					// emitted or counted; the error surfaces via StreamErr.
					tally.err = nb.err
					failed = true
					close(aborted)
				}
				if failed {
					recycle(nb)
					continue
				}
				// Clocks, decisions, and device telemetry tally here, in
				// sequence order, so a failure cleanly cuts the stats at
				// the failed batch.
				tally.kernel[nb.devIdx] += nb.kernelSec
				tally.busy[nb.devIdx] += nb.busySec
				tally.prep[nb.devIdx] += nb.prepSec
				tally.xfer[nb.devIdx] += nb.xferSec
				tally.decisions.Batches++
				tally.decisions.countDecisions(nb.res)
				tally.records = append(tally.records, kernelRecord{
					dev: e.states[nb.devIdx].dev, kt: nb.kernelSec, util: nb.util})
				if !canceled {
					for _, r := range nb.res {
						select {
						case out <- r:
						case <-ctx.Done():
							canceled = true
						}
						if canceled {
							break
						}
					}
				}
				recycle(nb)
			}
		}
		tallyCh <- tally
	}()

	// Dispatcher: group incoming pairs into batches. The first pair of a
	// batch is awaited indefinitely; once a batch is open it fills until
	// full or until the linger window elapses, so a saturated stream ships
	// whole batches while a sparse one still flushes with bounded latency.
	// Batches come from the recycling pool, so steady-state dispatch
	// performs no allocation.
	seq := 0
	var batch *streamBatch[T]
	linger := time.NewTimer(streamLinger)
	if !linger.Stop() {
		<-linger.C
	}
	flush := func() bool {
		if batch == nil || len(batch.items) == 0 {
			return true
		}
		b := batch
		batch = nil
		b.seq = seq
		seq++
		if cap(b.res) < len(b.items) {
			b.res = make([]Result, len(b.items))
		} else {
			b.res = b.res[:len(b.items)]
		}
		select {
		case dispatch <- b:
			return true
		case <-ctx.Done():
			return false
		case <-aborted:
			return false
		}
	}
receive:
	for {
		select {
		case p, ok := <-in:
			if !ok {
				break receive
			}
			if batch == nil {
				batch = newBatch()
			}
			batch.items = append(batch.items, p)
		case <-ctx.Done():
			break receive
		case <-aborted:
			break receive
		}
		linger.Reset(streamLinger)
	drain:
		for len(batch.items) < batchCap {
			select {
			case p, ok := <-in:
				if !ok {
					if !linger.Stop() {
						<-linger.C
					}
					break receive
				}
				batch.items = append(batch.items, p)
			case <-ctx.Done():
				if !linger.Stop() {
					<-linger.C
				}
				break receive
			case <-linger.C:
				break drain
			}
		}
		if len(batch.items) >= batchCap {
			if !linger.Stop() {
				<-linger.C
			}
		}
		if !flush() {
			break receive
		}
	}
	if ctx.Err() == nil {
		flush()
	}
	close(dispatch)
	workers.Wait()
	close(completed)
	tally := <-tallyCh

	// Commit the stream's modelled clocks: the device that stayed busy the
	// longest is the stream's critical path.
	acc := tally.decisions
	acc.KernelSeconds = maxFloat(tally.kernel)
	acc.FilterSeconds = maxFloat(tally.busy)
	acc.HostPrepSeconds = maxFloat(tally.prep)
	acc.TransferSeconds = maxFloat(tally.xfer)
	acc.WallSeconds = time.Since(wallStart).Seconds()
	for _, r := range tally.records {
		r.dev.RecordKernel(r.kt, r.util)
	}
	e.statsMu.Lock()
	e.streamErr = tally.err
	e.statsMu.Unlock()
	e.commitStats(acc)
}

// streamWorker is one device's half of the pipeline: an encode stage (this
// goroutine) and a launch stage (a nested goroutine) connected by the two
// buffer sets. While the launcher runs the kernel over one set, the encoder
// fills the other — the double-buffered overlap the stream models.
func streamWorker[T any](e *Engine, di int, st *deviceState, errThreshold int,
	dispatch <-chan *streamBatch[T], completed chan<- *streamBatch[T], ops streamOps[T]) {

	type work struct {
		set *bufferSet
		b   *streamBatch[T]
	}
	free := make(chan *bufferSet, len(st.sets))
	for _, set := range st.sets {
		free <- set
	}
	ready := make(chan work)
	launcherDone := make(chan struct{})
	go func() {
		defer close(launcherDone)
		for wk := range ready {
			b := wk.b
			b.err = ops.launch(st, di, wk.set, b.items, errThreshold, b.res)
			if b.err == nil {
				tallyBatch(e, st, di, b, ops.workload(len(b.items), errThreshold))
			}
			free <- wk.set
			completed <- b //gk:allow streamsafe: the collector drains completed until every worker's launcherDone closes
		}
	}()
	for b := range dispatch {
		set := <-free
		ops.encode(st, set, b.items)
		ready <- work{set: set, b: b} //gk:allow streamsafe: the launcher goroutine drains ready until this loop closes it
	}
	close(ready)
	<-launcherDone
}

// tallyBatch fills a completed batch's modelled clocks for the device that
// ran it; the collector commits them (and the device telemetry) only for
// batches before any failure. The encode-pool width comes from the modelled
// Setup, not the simulating machine, so the clocks are reproducible anywhere.
//
//gk:noalloc
func tallyBatch[T any](e *Engine, st *deviceState, di int, b *streamBatch[T], w cuda.Workload) {
	m := e.cfg.Model
	encWorkers := e.cfg.Setup.EncodeWorkers
	if encWorkers < 1 {
		encWorkers = 1
	}
	b.devIdx = di
	b.kernelSec = m.KernelSeconds(st.dev.Spec, w) + m.PerLaunchSeconds
	b.busySec = m.PipelinedFilterSeconds(st.dev.Spec, w, encWorkers, e.cfg.Setup.HostFactor)
	b.prepSec = m.HostPrepSeconds(w, e.cfg.Setup.HostFactor) / m.EncodePoolSpeedup(encWorkers)
	b.xferSec = m.TransferSeconds(st.dev.Spec, w)
	b.util = m.Utilization(st.dev.Spec, w)
}

//gk:noalloc
func maxFloat(xs []float64) float64 {
	max := 0.0
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	return max
}
