package gkgpu

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cuda"
)

// Sentinel error taxonomy of the fault-tolerant engine. Every device-layer
// failure the engine surfaces is wrapped in a DeviceFault carrying one of
// these kinds plus device and batch context, so callers can branch with
// errors.Is and still read the cause chain. A terminally failed stream wraps
// its first classified fault in ErrStreamAborted; errors.Is then matches both
// the abort and the underlying kind.
var (
	// ErrLaunch is a kernel launch failure (including async faults the
	// launch surfaced as the batch's synchronization point).
	ErrLaunch = errors.New("gkgpu: kernel launch failed")
	// ErrAlloc is a device memory allocation failure.
	ErrAlloc = errors.New("gkgpu: device allocation failed")
	// ErrTransfer is a host-device transfer failure.
	ErrTransfer = errors.New("gkgpu: host-device transfer failed")
	// ErrDeviceLost is a permanent device failure; the engine quarantines
	// the device and redispatches its work to survivors.
	ErrDeviceLost = errors.New("gkgpu: device lost")
	// ErrStreamAborted marks a stream that terminated before answering every
	// input; the wrapped cause is the first classified fault.
	ErrStreamAborted = errors.New("gkgpu: stream aborted")
)

// DeviceFault is one classified device-layer failure: the taxonomy kind, the
// device and stream batch it struck (Batch is -1 on one-shot and setup
// paths), how many attempts the engine made, and the underlying cause.
type DeviceFault struct {
	Kind     error // one of the sentinel taxonomy errors above
	Device   int   // cuda device ID
	Batch    int   // stream batch sequence number, -1 outside streams
	Attempts int   // attempts made before giving up
	Err      error // underlying cuda-layer cause
}

// Error implements error.
func (f *DeviceFault) Error() string {
	where := "one-shot call"
	if f.Batch >= 0 {
		where = fmt.Sprintf("batch %d", f.Batch)
	}
	return fmt.Sprintf("%v (device %d, %s, %d attempt(s)): %v",
		f.Kind, f.Device, where, f.Attempts, f.Err)
}

// Unwrap exposes both the taxonomy kind and the cause, so errors.Is matches
// either (e.g. gkgpu.ErrDeviceLost and cuda.ErrDeviceLost).
func (f *DeviceFault) Unwrap() []error { return []error{f.Kind, f.Err} }

// classifyFault wraps a raw device-layer error in its taxonomy kind.
func classifyFault(device, batch, attempts int, err error) *DeviceFault {
	kind := ErrLaunch
	switch {
	case errors.Is(err, cuda.ErrDeviceLost):
		kind = ErrDeviceLost
	case errors.Is(err, cuda.ErrInjectedTransfer):
		kind = ErrTransfer
	case errors.Is(err, cuda.ErrInjectedAlloc):
		kind = ErrAlloc
	}
	return &DeviceFault{Kind: kind, Device: device, Batch: batch, Attempts: attempts, Err: err}
}

// allocFault wraps an allocation failure from engine setup or reference
// loading in the taxonomy.
func allocFault(dev *cuda.Device, err error) *DeviceFault {
	return &DeviceFault{Kind: ErrAlloc, Device: dev.ID, Batch: -1, Attempts: 1, Err: err}
}

// errAllQuarantined is the round-level terminal condition: no live device
// remains to take work.
func errAllQuarantined() error {
	return fmt.Errorf("%w: every device is quarantined", ErrDeviceLost)
}

// FaultPolicy tunes how the streaming engine reacts to device failures.
// The zero value takes the defaults below.
type FaultPolicy struct {
	// MaxAttempts is how many times one batch is tried on one device before
	// the device is quarantined for repeated failures. ErrDeviceLost
	// quarantines immediately regardless. Minimum (and thus default-applied
	// floor) is 1 — a single attempt, no retry.
	MaxAttempts int
	// Backoff is the wait before the first retry; it doubles per retry up
	// to MaxBackoff. The wait always carries a ctx.Done arm, so a deadline
	// cuts it short mid-batch.
	Backoff time.Duration
	// MaxBackoff caps the doubling.
	MaxBackoff time.Duration
}

// Fault-policy defaults: three attempts per batch per device with a short
// doubling backoff. The backoff is deliberately small — the simulated
// runtime's transient faults clear instantly, and real CUDA launch retries
// are cheap next to the batch they repeat.
const (
	defaultFaultAttempts   = 3
	defaultFaultBackoff    = 200 * time.Microsecond
	defaultFaultMaxBackoff = 10 * time.Millisecond
)

func (p *FaultPolicy) applyDefaults() {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = defaultFaultAttempts
	}
	if p.Backoff <= 0 {
		p.Backoff = defaultFaultBackoff
	}
	if p.MaxBackoff < p.Backoff {
		p.MaxBackoff = defaultFaultMaxBackoff
		if p.MaxBackoff < p.Backoff {
			p.MaxBackoff = p.Backoff
		}
	}
}

// liveStates counts devices not quarantined.
func (e *Engine) liveStates() int {
	n := 0
	for _, st := range e.states {
		if !st.down.Load() {
			n++
		}
	}
	return n
}

// QuarantinedDevices returns the IDs of devices the engine has quarantined
// after repeated or permanent failures, in device order. A quarantined
// device receives no further work from any engine entry point; its share is
// re-weighted onto the survivors.
func (e *Engine) QuarantinedDevices() []int {
	var ids []int
	for _, st := range e.states {
		if st.down.Load() {
			ids = append(ids, st.dev.ID)
		}
	}
	return ids
}
