package gkgpu

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/bitvec"
	"repro/internal/cuda"
	"repro/internal/dna"
)

// Candidate names one filtration by indices instead of materialized
// sequences: read ReadID against the reference window starting at Pos. This
// is the paper's actual mrFAST integration — "Each thread executes a single
// comparison, starting with extracting the relevant reference segment based
// on the index" — and the reason unified memory fits the workload: the
// reference's designated segments are requested only on demand, and a read
// is copied to the device once for all of its candidate locations. IDs and
// positions are 64-bit so the candidate path addresses genome-scale
// (>2^31-base) references directly.
type Candidate struct {
	ReadID int64
	Pos    int64
}

// reference is the per-engine encoded reference state.
type reference struct {
	length int
	// nPositions are the sorted offsets of unknown base calls, recorded
	// during encoding (Section 3.5): windows overlapping them bypass
	// filtration as undefined.
	nPositions []int64
	// encoded reference words, one unified-memory copy per device.
	bufs []*cuda.UMBuffer
}

// SetReference encodes seq (multithreaded, as the paper does with OpenMP)
// and loads it into every device's unified memory, recording 'N' locations.
// It must be called before FilterCandidates and may be called again to
// replace the reference; it waits for any in-progress filtering call or
// active stream, so the old reference is never freed under a running kernel.
func (e *Engine) SetReference(seq []byte) error {
	if len(seq) < e.cfg.ReadLen {
		return fmt.Errorf("gkgpu: reference (%d) shorter than read length (%d)", len(seq), e.cfg.ReadLen)
	}
	// Replacing the reference must wait out running kernels; holding runMu
	// across the parallel encode's wg.Wait is that waiting, by design.
	//gk:allow lockcheck: runMu serializes reference replacement against running rounds and streams
	e.runMu.Lock()
	defer e.runMu.Unlock()
	if len(e.states) == 0 {
		return fmt.Errorf("gkgpu: engine is closed")
	}
	e.clearReference()

	words := bitvec.EncodedWords(len(seq))
	encoded := make([]uint64, words)
	var nMu sync.Mutex
	var nPositions []int64

	// Parallel encode: each worker packs a disjoint word range. 'N' (or any
	// unknown byte) encodes as 0 and its position is recorded.
	workers := cuda.MaxWorkers(words)
	var wg sync.WaitGroup
	chunk := (words + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= words {
			break
		}
		hi := lo + chunk
		if hi > words {
			hi = words
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var local []int64
			for wi := lo; wi < hi; wi++ {
				var word uint64
				base := wi * dna.BasesPerWord
				for b := 0; b < dna.BasesPerWord && base+b < len(seq); b++ {
					code, ok := dna.Code(seq[base+b])
					if !ok {
						local = append(local, int64(base+b))
						continue
					}
					word |= uint64(code) << uint(2*b)
				}
				encoded[wi] = word
			}
			if len(local) > 0 {
				nMu.Lock()
				nPositions = append(nPositions, local...)
				nMu.Unlock()
			}
		}(lo, hi)
	}
	wg.Wait()
	sort.Slice(nPositions, func(i, j int) bool { return nPositions[i] < nPositions[j] })

	ref := &reference{length: len(seq), nPositions: nPositions}
	for _, st := range e.states {
		buf, err := st.dev.AllocUnified(words * 8)
		if err != nil {
			ref.free()
			return fmt.Errorf("gkgpu: reference buffer: %w", allocFault(st.dev, err))
		}
		raw := buf.Bytes()
		for i, v := range encoded {
			binary.LittleEndian.PutUint64(raw[i*8:], v)
		}
		buf.HostWrite(0, len(raw))
		buf.Advise(cuda.AdviseReadMostly)
		buf.PrefetchAsync(st.sets[0].streams[1])
		ref.bufs = append(ref.bufs, buf)
	}
	e.ref = ref
	return nil
}

// clearReference releases the current reference buffers, if any.
func (e *Engine) clearReference() {
	if e.ref != nil {
		e.ref.free()
		e.ref = nil
	}
}

func (r *reference) free() {
	for _, b := range r.bufs {
		b.Free()
	}
	r.bufs = nil
}

// windowHasN reports whether [start, start+n) overlaps a recorded 'N'.
func (r *reference) windowHasN(start int64, n int) bool {
	i := sort.Search(len(r.nPositions), func(i int) bool { return r.nPositions[i] >= start })
	return i < len(r.nPositions) && r.nPositions[i] < start+int64(n)
}

// FilterCandidates filters index-named candidates against the loaded
// reference. Each distinct read is encoded and copied to the device once,
// however many candidate locations it has; the kernel extracts each
// reference segment from the encoded reference by index. Results are
// returned in candidate order.
func (e *Engine) FilterCandidates(reads [][]byte, cands []Candidate, errThreshold int) ([]Result, error) {
	if e.ref == nil {
		return nil, fmt.Errorf("gkgpu: FilterCandidates before SetReference")
	}
	if errThreshold < 0 || errThreshold > e.cfg.MaxE {
		return nil, fmt.Errorf("gkgpu: threshold %d outside compiled [0,%d]", errThreshold, e.cfg.MaxE)
	}
	L := e.cfg.ReadLen
	for i, r := range reads {
		if len(r) != L {
			return nil, fmt.Errorf("gkgpu: read %d has length %d; engine compiled for %d", i, len(r), L)
		}
	}
	for i, c := range cands {
		if c.ReadID < 0 || int(c.ReadID) >= len(reads) {
			return nil, fmt.Errorf("gkgpu: candidate %d references read %d of %d", i, c.ReadID, len(reads))
		}
		if c.Pos < 0 || int(c.Pos)+L > e.ref.length {
			return nil, fmt.Errorf("gkgpu: candidate %d window [%d,%d) outside reference of %d",
				i, c.Pos, int(c.Pos)+L, e.ref.length)
		}
	}
	// As in FilterPairs, rounds run under runMu by design.
	//gk:allow lockcheck: runMu intentionally serializes whole filtering rounds, including each round's wg.Wait
	e.runMu.Lock()
	defer e.runMu.Unlock()
	if len(e.states) == 0 {
		return nil, fmt.Errorf("gkgpu: engine is closed")
	}
	wallStart := time.Now()

	// Encode every read once ("it is sufficient to copy a single read only
	// once to GPU memory for its multiple candidate reference segments").
	encWords := bitvec.EncodedWords(L)
	readWords := make([]uint64, len(reads)*encWords)
	readHasN := make([]bool, len(reads))
	for i, r := range reads {
		if dna.HasN(r) {
			readHasN[i] = true
			continue
		}
		if err := dna.EncodeInto(readWords[i*encWords:(i+1)*encWords], r); err != nil {
			readHasN[i] = true
		}
	}

	results := make([]Result, len(cands))
	roundCap := e.liveRoundCap()
	if roundCap == 0 && len(cands) > 0 {
		return nil, errAllQuarantined()
	}

	// As in FilterPairs, round stats and device telemetry accumulate locally
	// and commit only after the per-device error check.
	var acc Stats
	var records []kernelRecord

	for off := 0; off < len(cands); off += roundCap {
		end := off + roundCap
		if end > len(cands) {
			end = len(cands)
		}
		round := cands[off:end]
		// Timing model: the index path ships encoded reads only (the
		// reference is already device-resident), i.e. the host-encoded
		// transfer profile.
		w := cuda.Workload{Pairs: len(round), ReadLen: L, E: errThreshold, DeviceEncoded: false}
		shares := e.roundShares(len(round), w)
		var wg sync.WaitGroup
		errs := make([]error, len(e.states))
		lo := 0
		for di, st := range e.states {
			if shares[di] == 0 {
				continue
			}
			hi := lo + shares[di]
			wg.Add(1)
			go func(di int, st *deviceState, chunk []Candidate, out []Result) {
				defer wg.Done()
				errs[di] = e.runCandidateBatch(st, di, chunk, readWords, readHasN, errThreshold, out)
			}(di, st, round[lo:hi], results[off+lo:off+hi])
			lo = hi
		}
		wg.Wait()
		if err := e.classifyRoundErrs(errs); err != nil {
			return nil, err
		}
		rc := e.modelRound(shares, w)
		acc.KernelSeconds += rc.kernel
		acc.FilterSeconds += rc.filter
		acc.Batches++
		records = append(records, rc.records...)
	}

	acc.countDecisions(results)
	acc.WallSeconds = time.Since(wallStart).Seconds()
	for _, r := range records {
		r.dev.RecordKernel(r.kt, r.util)
	}
	e.commitStats(acc)
	return results, nil
}

// StreamCandidate names one streaming filtration against the loaded
// reference: the read sequence itself and the reference window offset.
// Unlike FilterCandidates' (ReadID, Pos) naming, the stream carries the read
// bytes directly — concurrent producers need no shared read numbering —
// while the reference side still comes from the unified-memory encoded
// reference, so a window's bases are never materialized on the host.
// Pos is 64-bit, matching Candidate.
type StreamCandidate struct {
	Read []byte
	Pos  int64
}

// FilterCandidateStream is FilterStream for index-named candidates: the
// mrFAST integration path (Section 3.5) taken asynchronous. Candidates
// arriving on in are filtered against the reference loaded by SetReference,
// with each device running the same double-buffered encode/launch pipeline
// as FilterStream — the host pool packs reads into one buffer set while the
// kernel extracts reference segments for the other — and results return in
// input order.
//
// Decisions are identical to FilterCandidates. Where FilterCandidates
// rejects a whole call for an out-of-range window or wrong-length read, a
// streaming candidate keeps its ordering slot and is reported as
// Undefined+Accept (the defensive pass-to-verification convention), exactly
// like a wrong-length pair on FilterStream. Cancellation, failure, and
// StreamErr semantics match FilterStream. Do not call SetReference while a
// candidate stream is active (it would block until the stream drains).
func (e *Engine) FilterCandidateStream(ctx context.Context, in <-chan StreamCandidate, errThreshold int) (<-chan Result, error) {
	if e.ref == nil {
		return nil, fmt.Errorf("gkgpu: FilterCandidateStream before SetReference")
	}
	if errThreshold < 0 || errThreshold > e.cfg.MaxE {
		return nil, fmt.Errorf("gkgpu: threshold %d outside compiled [0,%d]", errThreshold, e.cfg.MaxE)
	}
	L := e.cfg.ReadLen
	out := make(chan Result, streamOutBuffer)
	go runStream(e, ctx, in, errThreshold, out, streamOps[StreamCandidate]{
		encode: e.encodeCandidateChunk,
		launch: e.launchCandidateBatch,
		workload: func(n, errThreshold int) cuda.Workload {
			// The index path ships encoded reads only (the reference is
			// already device-resident): the host-encoded transfer profile,
			// as in FilterCandidates.
			return cuda.Workload{Pairs: n, ReadLen: L, E: errThreshold, DeviceEncoded: false}
		},
	})
	return out, nil
}

// encodeCandidateChunk is the candidate stream's host-side encode stage:
// pack each candidate's read into the set's read buffer (2-bit, host
// encoded), mark undefined or out-of-geometry candidates in the flag
// buffer, and submit the prefetches. The reference buffer is untouched —
// it is the engine-lifetime unified-memory reference.
func (e *Engine) encodeCandidateChunk(st *deviceState, set *bufferSet, items []StreamCandidate) {
	n := len(items)
	L := e.cfg.ReadLen
	encWords := bitvec.EncodedWords(L)
	flags := set.flagBuf.Bytes()
	rb := set.readBuf.Bytes()
	ref := e.ref

	workers := len(st.encWords)
	if workers > n {
		workers = n
	}
	stride := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		lo := wk * stride
		if lo >= n {
			break
		}
		hi := lo + stride
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(wk, lo, hi int) {
			defer wg.Done()
			words := st.encWords[wk]
			for i := lo; i < hi; i++ {
				c := items[i]
				// Out-of-geometry candidates (FilterCandidates' validation
				// errors) and 'N'-touched candidates both flag undefined:
				// the former defensively, the latter by design.
				if len(c.Read) != L || c.Pos < 0 || int(c.Pos)+L > ref.length ||
					ref.windowHasN(c.Pos, L) || dna.TryEncodeInto(words, c.Read) >= 0 {
					flags[i] = 1
					continue
				}
				for w, v := range words {
					binary.LittleEndian.PutUint64(rb[(i*encWords+w)*8:], v)
				}
				flags[i] = 0
			}
		}(wk, lo, hi)
	}
	wg.Wait()

	set.readBuf.HostWrite(0, n*encWords*8)
	set.flagBuf.HostWrite(0, n)
	set.readBuf.PrefetchAsync(set.streams[0])
	set.flagBuf.PrefetchAsync(set.streams[2])
	if !st.dev.Spec.SupportsPrefetch() {
		set.readBuf.DeviceTouch(0, set.readBuf.Len())
	}
}

// launchCandidateBatch is the candidate stream's device-side stage: the
// kernel reads each packed read from the buffer set and extracts its
// reference segment from the device-resident encoded reference by index, as
// runCandidateBatch does for the one-shot path.
func (e *Engine) launchCandidateBatch(st *deviceState, devIdx int, set *bufferSet,
	items []StreamCandidate, errThreshold int, out []Result) error {

	n := len(items)
	if n == 0 {
		return nil
	}
	L := e.cfg.ReadLen
	encWords := bitvec.EncodedWords(L)
	flags := set.flagBuf.Bytes()
	rb := set.readBuf.Bytes()
	refBuf := e.ref.bufs[devIdx]
	refRaw := refBuf.Bytes()
	refBuf.DeviceTouch(0, refBuf.Len()) // on-demand migration on Kepler

	lc := st.sys.Launch
	if need := (n + lc.ThreadsPerBlock - 1) / lc.ThreadsPerBlock; need < lc.Blocks {
		lc.Blocks = need
	}
	return st.dev.Launch(lc, n, func(worker, tid int) {
		if flags[tid] == 1 {
			out[tid] = Result{Accept: true, Undefined: true}
			return
		}
		rw := st.readWords[worker]
		base := tid * encWords * 8
		for w := 0; w < encWords; w++ {
			rw[w] = binary.LittleEndian.Uint64(rb[base+w*8:])
		}
		fw := st.refWords[worker]
		extractFromRaw(fw, refRaw, int(items[tid].Pos), L)
		est, accept := st.kernels[worker].FilterEncoded(rw, fw, errThreshold)
		out[tid] = Result{Accept: accept, Estimate: uint16(est)}
	})
}

// runCandidateBatch executes one device's share of an index-named round.
func (e *Engine) runCandidateBatch(st *deviceState, devIdx int, chunk []Candidate,
	readWords []uint64, readHasN []bool, errThreshold int, out []Result) error {

	n := len(chunk)
	if n == 0 {
		return nil
	}
	L := e.cfg.ReadLen
	encWords := bitvec.EncodedWords(L)
	refBuf := e.ref.bufs[devIdx]
	refRaw := refBuf.Bytes()
	refBuf.DeviceTouch(0, refBuf.Len()) // on-demand migration on Kepler

	lc := st.sys.Launch
	if need := (n + lc.ThreadsPerBlock - 1) / lc.ThreadsPerBlock; need < lc.Blocks {
		lc.Blocks = need
	}
	return st.dev.Launch(lc, n, func(worker, tid int) {
		c := chunk[tid]
		if readHasN[c.ReadID] || e.ref.windowHasN(c.Pos, L) {
			out[tid] = Result{Accept: true, Undefined: true}
			return
		}
		rw := readWords[int(c.ReadID)*encWords : (int(c.ReadID)+1)*encWords]
		// Extract the candidate segment from the unified-memory reference:
		// read the word span covering [Pos, Pos+L) and shift into place.
		fw := st.refWords[worker]
		extractFromRaw(fw, refRaw, int(c.Pos), L)
		est, accept := st.kernels[worker].FilterEncoded(rw, fw, errThreshold)
		out[tid] = Result{Accept: accept, Estimate: uint16(est)}
	})
}

// extractFromRaw is bitvec.ExtractChars reading directly from the little-
// endian byte image of the encoded reference in unified memory.
func extractFromRaw(dst []uint64, raw []byte, start, n int) {
	wordOff := start / dna.BasesPerWord
	bitOff := uint(start%dna.BasesPerWord) * 2
	outWords := bitvec.EncodedWords(n)
	totalWords := len(raw) / 8
	for i := 0; i < outWords; i++ {
		var w uint64
		if j := wordOff + i; j < totalWords {
			w = binary.LittleEndian.Uint64(raw[j*8:]) >> bitOff
			if bitOff != 0 && j+1 < totalWords {
				w |= binary.LittleEndian.Uint64(raw[(j+1)*8:]) << (64 - bitOff)
			}
		}
		dst[i] = w
	}
	if rem := n % dna.BasesPerWord; rem != 0 {
		dst[outWords-1] &= (uint64(1) << uint(2*rem)) - 1
	}
}
