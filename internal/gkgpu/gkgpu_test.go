package gkgpu

import (
	"math/rand"
	"testing"

	"repro/internal/align"
	"repro/internal/cuda"
	"repro/internal/dna"
	"repro/internal/filter"
)

func makePairs(rng *rand.Rand, n, L, e int) ([]Pair, []bool) {
	pairs := make([]Pair, n)
	within := make([]bool, n)
	for i := range pairs {
		read := dna.RandomSeq(rng, L)
		var ref []byte
		switch i % 3 {
		case 0: // similar pair within threshold
			ref = dna.MutateSubstitutions(rng, read, rng.Intn(e+1))
		case 1: // borderline
			ref = dna.MutateSubstitutions(rng, read, e+1+rng.Intn(5))
		default: // dissimilar
			ref = dna.RandomSeq(rng, L)
		}
		pairs[i] = Pair{Read: read, Ref: ref}
		within[i] = align.Distance(read, ref) <= e
	}
	return pairs, within
}

func newTestEngine(t *testing.T, encoding EncodingActor, nDev int) *Engine {
	t.Helper()
	cfg := Config{ReadLen: 100, MaxE: 5, Encoding: encoding, MaxBatchPairs: 256}
	ctx := cuda.NewUniformContext(nDev, cuda.GTX1080Ti())
	e, err := NewEngine(cfg, ctx)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

func TestEngineMatchesKernelDecisions(t *testing.T) {
	// Whatever the batching, device count, or encoding actor, the engine
	// must produce exactly the decisions of a plain sequential kernel.
	rng := rand.New(rand.NewSource(1))
	pairs, _ := makePairs(rng, 700, 100, 5)
	kern := filter.NewKernel(filter.ModeGPU, 100, 5)
	want := make([]Result, len(pairs))
	for i, p := range pairs {
		d := kern.Filter(p.Read, p.Ref, 5)
		want[i] = Result{Accept: d.Accept, Undefined: d.Undefined, Estimate: uint16(d.Estimate)}
	}
	for _, enc := range []EncodingActor{EncodeOnDevice, EncodeOnHost} {
		for _, nDev := range []int{1, 3} {
			eng := newTestEngine(t, enc, nDev)
			got, err := eng.FilterPairs(pairs, 5)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("enc=%v nDev=%d pair %d: got %+v want %+v", enc, nDev, i, got[i], want[i])
				}
			}
		}
	}
}

func TestEngineNoFalseRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pairs, within := makePairs(rng, 600, 100, 5)
	eng := newTestEngine(t, EncodeOnDevice, 2)
	got, err := eng.FilterPairs(pairs, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if within[i] && !got[i].Accept {
			t.Fatalf("false reject at pair %d", i)
		}
	}
}

func TestEngineUndefinedPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	read := dna.RandomSeq(rng, 100)
	refN := append([]byte(nil), read...)
	refN[10] = 'N'
	pairs := []Pair{{Read: read, Ref: refN}, {Read: read, Ref: dna.RandomSeq(rng, 100)}}
	for _, enc := range []EncodingActor{EncodeOnDevice, EncodeOnHost} {
		eng := newTestEngine(t, enc, 1)
		got, err := eng.FilterPairs(pairs, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !got[0].Accept || !got[0].Undefined {
			t.Fatalf("enc=%v: undefined pair not passed through: %+v", enc, got[0])
		}
		if got[1].Undefined {
			t.Fatalf("enc=%v: defined pair marked undefined", enc)
		}
		st := eng.Stats()
		if st.Undefined != 1 {
			t.Fatalf("enc=%v: stats.Undefined = %d", enc, st.Undefined)
		}
	}
}

func TestEngineStatsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pairs, _ := makePairs(rng, 500, 100, 5)
	eng := newTestEngine(t, EncodeOnDevice, 1)
	res, err := eng.FilterPairs(pairs, 5)
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Pairs != 500 {
		t.Fatalf("Pairs = %d", st.Pairs)
	}
	if st.Accepted+st.Rejected != 500 {
		t.Fatalf("accept+reject = %d", st.Accepted+st.Rejected)
	}
	var accepts int64
	for _, r := range res {
		if r.Accept {
			accepts++
		}
	}
	if accepts != st.Accepted {
		t.Fatalf("stats accepted %d, results accepted %d", st.Accepted, accepts)
	}
	// MaxBatchPairs=256 forces two rounds of batching.
	if st.Batches != 2 {
		t.Fatalf("Batches = %d, want 2", st.Batches)
	}
	if st.KernelSeconds <= 0 || st.FilterSeconds <= st.KernelSeconds {
		t.Fatalf("modelled times implausible: kt=%v ft=%v", st.KernelSeconds, st.FilterSeconds)
	}
	if st.WallSeconds <= 0 {
		t.Fatal("wall time not recorded")
	}
	if st.RejectionRate() <= 0 || st.RejectionRate() >= 1 {
		t.Fatalf("rejection rate %v implausible for the mixed dataset", st.RejectionRate())
	}
	eng.ResetStats()
	if eng.Stats().Pairs != 0 {
		t.Fatal("ResetStats did not clear")
	}
}

func TestEngineGeometryValidation(t *testing.T) {
	ctx := cuda.NewUniformContext(1, cuda.GTX1080Ti())
	if _, err := NewEngine(Config{ReadLen: 0, MaxE: 1}, ctx); err == nil {
		t.Fatal("zero read length accepted")
	}
	if _, err := NewEngine(Config{ReadLen: 100, MaxE: 200}, ctx); err == nil {
		t.Fatal("e > L accepted")
	}
	if _, err := NewEngine(Config{ReadLen: 100, MaxE: 5}, cuda.NewContext()); err == nil {
		t.Fatal("empty context accepted")
	}
	eng := newTestEngine(t, EncodeOnDevice, 1)
	if _, err := eng.FilterPairs([]Pair{{Read: make([]byte, 50), Ref: make([]byte, 100)}}, 5); err == nil {
		t.Fatal("mismatched pair length accepted")
	}
	if _, err := eng.FilterPairs(nil, 6); err == nil {
		t.Fatal("threshold above compiled MaxE accepted")
	}
}

func TestEngineEmptyInput(t *testing.T) {
	eng := newTestEngine(t, EncodeOnDevice, 1)
	res, err := eng.FilterPairs(nil, 5)
	if err != nil || len(res) != 0 {
		t.Fatalf("empty input: %v, %d results", err, len(res))
	}
}

func TestSystemConfiguration(t *testing.T) {
	sys := Configure(cuda.GTX1080Ti(), 100, 5, EncodeOnDevice, 1024, 48, 0)
	if sys.BatchPairs <= 0 {
		t.Fatal("batch must be positive")
	}
	if !sys.Prefetch {
		t.Fatal("Pascal must prefetch")
	}
	if sys.Launch.ThreadsPerBlock != 1024 || sys.Launch.RegsPerThread != 48 {
		t.Fatalf("launch geometry %+v", sys.Launch)
	}
	if sys.Launch.Blocks*1024 < sys.BatchPairs {
		t.Fatal("geometry cannot cover the batch")
	}
	// Device-encoded buffers are larger per pair than host-encoded ones.
	sysHost := Configure(cuda.GTX1080Ti(), 100, 5, EncodeOnHost, 1024, 48, 0)
	if sysHost.BufferBytesPerPair >= sys.BufferBytesPerPair {
		t.Fatalf("host-encoded per-pair bytes %d should be below device-encoded %d",
			sysHost.BufferBytesPerPair, sys.BufferBytesPerPair)
	}
	// So the same memory sustains a larger host-encoded batch.
	if sysHost.BatchPairs <= sys.BatchPairs {
		t.Fatal("host-encoded batch should be larger")
	}
	// Kepler: smaller memory, smaller batch, no prefetch.
	sysK := Configure(cuda.TeslaK20X(), 100, 5, EncodeOnDevice, 1024, 48, 0)
	if sysK.Prefetch {
		t.Fatal("Kepler must not prefetch")
	}
	if sysK.BatchPairs >= sys.BatchPairs {
		t.Fatal("K20X (5 GB) batch should be below 1080 Ti (10 GB) batch")
	}
	// Cap applies.
	sysCap := Configure(cuda.GTX1080Ti(), 100, 5, EncodeOnDevice, 1024, 48, 1000)
	if sysCap.BatchPairs != 1000 {
		t.Fatalf("cap ignored: %d", sysCap.BatchPairs)
	}
}

func TestEngineModelledTimeShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pairs, _ := makePairs(rng, 400, 100, 5)

	run := func(enc EncodingActor) Stats {
		eng := newTestEngine(t, enc, 1)
		if _, err := eng.FilterPairs(pairs, 5); err != nil {
			t.Fatal(err)
		}
		return eng.Stats()
	}
	dev := run(EncodeOnDevice)
	host := run(EncodeOnHost)
	// Figure 6: host-encoded kernel faster, device-encoded filter faster.
	if host.KernelSeconds >= dev.KernelSeconds {
		t.Errorf("host-encoded kernel %.3g should beat device-encoded %.3g",
			host.KernelSeconds, dev.KernelSeconds)
	}
	if host.FilterSeconds <= dev.FilterSeconds {
		t.Errorf("device-encoded filter %.3g should beat host-encoded %.3g",
			dev.FilterSeconds, host.FilterSeconds)
	}
}

func TestEngineMultiGPUKernelScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pairs, _ := makePairs(rng, 1024, 100, 5)
	kt := map[int]float64{}
	// Zero the per-launch overhead so the small test workload isolates the
	// multi-GPU split (at paper scale compute dominates the launch cost).
	model := cuda.DefaultCostModel()
	model.PerLaunchSeconds = 0
	model.PerBatchHostSeconds = 0
	for _, n := range []int{1, 4} {
		cfg := Config{ReadLen: 100, MaxE: 5, Encoding: EncodeOnHost, MaxBatchPairs: 2048, Model: model}
		eng, err := NewEngine(cfg, cuda.NewUniformContext(n, cuda.GTX1080Ti()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.FilterPairs(pairs, 5); err != nil {
			t.Fatal(err)
		}
		kt[n] = eng.Stats().KernelSeconds
		eng.Close()
	}
	speedup := kt[1] / kt[4]
	if speedup < 2.5 || speedup > 4.0 {
		t.Errorf("4-GPU kernel speedup %.2fx outside the expected near-linear band", speedup)
	}
}

func TestEnginePrefetchTelemetry(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pairs, _ := makePairs(rng, 300, 100, 5)

	pascal := newTestEngine(t, EncodeOnDevice, 1)
	if _, err := pascal.FilterPairs(pairs, 5); err != nil {
		t.Fatal(err)
	}
	if pascal.Stats().PrefetchMigration == 0 {
		t.Error("Pascal run recorded no prefetched bytes")
	}

	cfg := Config{ReadLen: 100, MaxE: 5, Encoding: EncodeOnDevice, Setup: Setup2(), MaxBatchPairs: 256}
	kepler, err := NewEngine(cfg, cuda.NewUniformContext(1, cuda.TeslaK20X()))
	if err != nil {
		t.Fatal(err)
	}
	defer kepler.Close()
	if _, err := kepler.FilterPairs(pairs, 5); err != nil {
		t.Fatal(err)
	}
	ks := kepler.Stats()
	if ks.PrefetchMigration != 0 {
		t.Error("Kepler run recorded prefetched bytes; prefetch is unsupported there")
	}
	if ks.FaultMigrations == 0 {
		t.Error("Kepler run recorded no fault migrations")
	}
	// Setup 2 must be slower end to end (Section 5.2).
	if ks.FilterSeconds <= pascal.Stats().FilterSeconds {
		t.Error("Setup 2 filter time should exceed Setup 1")
	}
}

func TestCPUEngineDecisionsMatchGPU(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pairs, _ := makePairs(rng, 300, 100, 5)
	gpu := newTestEngine(t, EncodeOnDevice, 1)
	gres, err := gpu.FilterPairs(pairs, 5)
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := NewCPUEngine(100, 5, 12, Setup1(), cuda.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	cres, err := cpu.FilterPairs(pairs, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range gres {
		if gres[i] != cres[i] {
			t.Fatalf("pair %d: gpu %+v cpu %+v", i, gres[i], cres[i])
		}
	}
}

func TestCPUEngineTimeGrowsWithThreshold(t *testing.T) {
	cpu, err := NewCPUEngine(100, 10, 12, Setup1(), cuda.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	pairs, _ := makePairs(rng, 200, 100, 10)
	if _, err := cpu.FilterPairs(pairs, 2); err != nil {
		t.Fatal(err)
	}
	t2 := cpu.Stats().KernelSeconds
	cpu.ResetStats()
	if _, err := cpu.FilterPairs(pairs, 10); err != nil {
		t.Fatal(err)
	}
	t10 := cpu.Stats().KernelSeconds
	if t10 < 1.5*t2 {
		t.Errorf("CPU kernel time should grow ~linearly with e: t(10)=%.3g vs t(2)=%.3g", t10, t2)
	}
}

func TestCPUEngineValidation(t *testing.T) {
	if _, err := NewCPUEngine(0, 5, 12, Setup1(), cuda.DefaultCostModel()); err == nil {
		t.Fatal("zero read length accepted")
	}
	if _, err := NewCPUEngine(100, 5, 0, Setup1(), cuda.DefaultCostModel()); err == nil {
		t.Fatal("zero cores accepted")
	}
	cpu, _ := NewCPUEngine(100, 5, 4, Setup{}, cuda.CostModel{})
	if _, err := cpu.FilterPairs(nil, 7); err == nil {
		t.Fatal("threshold beyond maxE accepted")
	}
}

func TestEncodingActorString(t *testing.T) {
	if EncodeOnDevice.String() != "device" || EncodeOnHost.String() != "host" {
		t.Fatal("EncodingActor.String broken")
	}
}

func TestSetups(t *testing.T) {
	s1, s2 := Setup1(), Setup2()
	if s1.Name == s2.Name {
		t.Fatal("setups must differ")
	}
	if s2.HostFactor <= s1.HostFactor {
		t.Fatal("Setup 2 host should be slower")
	}
}
