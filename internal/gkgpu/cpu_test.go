package gkgpu

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/cuda"
	"repro/internal/dna"
	"repro/internal/filter"
	"repro/internal/lint"
)

func newTestCPUEngine(t *testing.T, cores int) *CPUEngine {
	t.Helper()
	c, err := NewCPUEngine(100, 5, cores, Setup1(), cuda.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCPUEngineUndefinedStatsMatchGPU is the regression for the CPU
// baseline's undefined accounting: an N-containing pair must come back
// Undefined+Accept and increment Stats.Undefined identically on both
// engines (the CPU path used to report a plain accept on its error branch).
func TestCPUEngineUndefinedStatsMatchGPU(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pairs, _ := makePairs(rng, 60, 100, 5)
	// Sprinkle undefined pairs: N in the read, N in the ref.
	for _, i := range []int{3, 17, 31} {
		pairs[i].Read = append([]byte(nil), pairs[i].Read...)
		pairs[i].Read[i%100] = 'N'
	}
	for _, i := range []int{8, 44} {
		pairs[i].Ref = append([]byte(nil), pairs[i].Ref...)
		pairs[i].Ref[i%100] = 'N'
	}

	gpu := newTestEngine(t, EncodeOnDevice, 1)
	cpu := newTestCPUEngine(t, 12)
	gotGPU, err := gpu.FilterPairs(pairs, 5)
	if err != nil {
		t.Fatal(err)
	}
	gotCPU, err := cpu.FilterPairs(pairs, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range gotGPU {
		if gotGPU[i] != gotCPU[i] {
			t.Fatalf("pair %d: GPU %+v, CPU %+v", i, gotGPU[i], gotCPU[i])
		}
	}
	gs, cs := gpu.Stats(), cpu.Stats()
	if gs.Undefined != 5 || cs.Undefined != gs.Undefined {
		t.Fatalf("Stats.Undefined: GPU %d, CPU %d, want 5 on both", gs.Undefined, cs.Undefined)
	}
	if gs.Pairs != cs.Pairs || gs.Accepted != cs.Accepted || gs.Rejected != cs.Rejected {
		t.Fatalf("decision counters diverge: GPU %+v, CPU %+v", gs, cs)
	}
}

// TestCPUEngineWrongLengthPairUndefined pins the fixed error branch itself:
// where the GPU engine rejects a wrong-length pair up front, the CPU
// baseline keeps its slot defensively — and must count it as Undefined, not
// as a plain accept.
func TestCPUEngineWrongLengthPairUndefined(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	cpu := newTestCPUEngine(t, 2)
	good := dna.RandomSeq(rng, 100)
	res, err := cpu.FilterPairs([]Pair{
		{Read: good, Ref: good},
		{Read: dna.RandomSeq(rng, 90), Ref: good}, // wrong length: kernel error path
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res[1].Accept || !res[1].Undefined {
		t.Fatalf("wrong-length pair = %+v, want Undefined+Accept", res[1])
	}
	s := cpu.Stats()
	if s.Undefined != 1 {
		t.Fatalf("Stats.Undefined = %d, want 1", s.Undefined)
	}
	if s.Accepted != 2 || s.Rejected != 0 {
		t.Fatalf("stats = %+v, want 2 accepted (1 defensive), 0 rejected", s)
	}
}

// TestCPUEngineCandidatesMatchGPU: the CPU baseline's index-named candidate
// path must make exactly the GPU engine's decisions — including N-touched
// windows and N-containing reads — and reject the same invalid inputs.
func TestCPUEngineCandidatesMatchGPU(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	genome := dna.RandomSeq(rng, 20_000)
	genome[7_040] = 'N'

	gpu := newTestEngine(t, EncodeOnHost, 2)
	cpu := newTestCPUEngine(t, 12)
	if err := gpu.SetReference(genome); err != nil {
		t.Fatal(err)
	}
	if err := cpu.SetReference(genome); err != nil {
		t.Fatal(err)
	}

	var reads [][]byte
	var cands []Candidate
	for i := 0; i < 30; i++ {
		pos := rng.Intn(len(genome) - 100)
		read := dna.MutateSubstitutions(rng, genome[pos:pos+100], rng.Intn(10))
		if i == 13 {
			read[50] = 'N'
		}
		reads = append(reads, read)
		for _, p := range []int{pos, rng.Intn(len(genome) - 100), 6_990} {
			cands = append(cands, Candidate{ReadID: int64(i), Pos: int64(p)})
		}
	}
	want, err := gpu.FilterCandidates(reads, cands, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cpu.FilterCandidates(reads, cands, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("candidate %d (read %d pos %d): CPU %+v, GPU %+v",
				i, cands[i].ReadID, cands[i].Pos, got[i], want[i])
		}
	}
	gs, cs := gpu.Stats(), cpu.Stats()
	if gs.Undefined != cs.Undefined || gs.Accepted != cs.Accepted || gs.Rejected != cs.Rejected {
		t.Fatalf("candidate stats diverge: GPU %+v, CPU %+v", gs, cs)
	}

	// Validation parity with the GPU engine.
	fresh := newTestCPUEngine(t, 2)
	if _, err := fresh.FilterCandidates(reads, cands, 5); err == nil {
		t.Fatal("FilterCandidates before SetReference succeeded")
	}
	if _, err := cpu.FilterCandidates(reads, []Candidate{{ReadID: -1, Pos: 0}}, 5); err == nil {
		t.Fatal("negative ReadID accepted")
	}
	if _, err := cpu.FilterCandidates(reads, []Candidate{{ReadID: 0, Pos: int64(len(genome) - 50)}}, 5); err == nil {
		t.Fatal("out-of-reference window accepted")
	}
	if _, err := cpu.FilterCandidates([][]byte{make([]byte, 40)}, nil, 5); err == nil {
		t.Fatal("wrong-length read accepted")
	}
	if _, err := cpu.FilterCandidates(reads, cands, 6); err == nil {
		t.Fatal("threshold beyond maxE accepted")
	}
}

// TestCPUEngineWidthIdentity: the core count is a schedule, not a decision
// input — any width produces bit-identical results for pairs and candidates.
func TestCPUEngineWidthIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	pairs, _ := makePairs(rng, 300, 100, 5)
	serial := newTestCPUEngine(t, 1)
	want, err := serial.FilterPairs(pairs, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, cores := range []int{2, 3, 12} {
		eng := newTestCPUEngine(t, cores)
		got, err := eng.FilterPairs(pairs, 5)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("cores=%d pair %d: %+v != %+v", cores, i, got[i], want[i])
			}
		}
	}
}

// TestCPUEngineConcurrentCalls exercises the engine's concurrency contract
// (calls serialize on the internal mutex; persistent kernels are reused)
// under -race in CI.
func TestCPUEngineConcurrentCalls(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pairs, _ := makePairs(rng, 120, 100, 5)
	eng := newTestCPUEngine(t, 4)
	want, err := eng.FilterPairs(pairs, 5)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				got, err := eng.FilterPairs(pairs, 5)
				if err != nil {
					t.Error(err)
					return
				}
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("concurrent pair %d: %+v != %+v", i, got[i], want[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestCPUFilterRangeZeroAllocs guards the per-worker steady state of the
// pair path: one claimed block on a persistent kernel must not allocate.
func TestCPUFilterRangeZeroAllocs(t *testing.T) {
	if !lint.IsNoAlloc("repro/internal/gkgpu", "cpuFilterRange") {
		t.Fatal("cpuFilterRange is not in lint.NoAllocRegistry; static and runtime guards have drifted")
	}
	if raceEnabled {
		t.Skip("race instrumentation allocates; run without -race")
	}
	rng := rand.New(rand.NewSource(14))
	pairs, _ := makePairs(rng, 64, 100, 5)
	out := make([]Result, len(pairs))
	kern := filter.NewKernel(filter.ModeGPU, 100, 5)
	if allocs := testing.AllocsPerRun(200, func() {
		cpuFilterRange(kern, pairs, out, 5)
	}); allocs != 0 {
		t.Fatalf("cpuFilterRange allocated %.1f allocs/op, want 0", allocs)
	}
}

// TestCPUCandidateRangeZeroAllocs guards the candidate path's steady state:
// window extraction is a subslice and the encode is in-kernel scratch, so a
// claimed block must not allocate either.
func TestCPUCandidateRangeZeroAllocs(t *testing.T) {
	if !lint.IsNoAlloc("repro/internal/gkgpu", "cpuCandidateRange") {
		t.Fatal("cpuCandidateRange is not in lint.NoAllocRegistry; static and runtime guards have drifted")
	}
	if raceEnabled {
		t.Skip("race instrumentation allocates; run without -race")
	}
	rng := rand.New(rand.NewSource(15))
	genome := dna.RandomSeq(rng, 10_000)
	var reads [][]byte
	var cands []Candidate
	for i := 0; i < 32; i++ {
		pos := rng.Intn(len(genome) - 100)
		reads = append(reads, dna.MutateSubstitutions(rng, genome[pos:pos+100], rng.Intn(8)))
		cands = append(cands, Candidate{ReadID: int64(i), Pos: int64(pos)})
	}
	out := make([]Result, len(cands))
	kern := filter.NewKernel(filter.ModeGPU, 100, 5)
	if allocs := testing.AllocsPerRun(200, func() {
		cpuCandidateRange(kern, genome, 100, reads, cands, out, 5)
	}); allocs != 0 {
		t.Fatalf("cpuCandidateRange allocated %.1f allocs/op, want 0", allocs)
	}
}
