// Package gkgpu is the core of the reproduction: the GateKeeper-GPU
// pre-alignment filtering engine of Sections 3.1-3.4, built on the simulated
// CUDA runtime (package cuda) and the improved GateKeeper kernel (package
// filter).
//
// The engine follows the paper's four steps: (1) system configuration —
// compute the per-thread memory load and the largest batch of filtrations
// the device's free global memory sustains; (2) resource allocation —
// unified-memory buffers for reads, candidate segments, undefined flags and
// results; (3) preprocessing — 2-bit encoding on the host or inside the
// kernel, batching many reads per kernel call; (4) the kernel itself — one
// logical thread per filtration, results written back through unified
// memory, with memory advice and asynchronous prefetch on supporting
// devices.
//
// Two execution paths are offered. Engine.FilterPairs is the paper's
// one-shot pipeline: synchronized rounds in which every device receives a
// weighted share of the batch and the host charges encode, transfer and
// kernel time sequentially, reproducing the measured FilterSeconds of
// Section 4.3. Engine.FilterStream is the throughput-oriented extension: an
// asynchronous, double-buffered pipeline in which each device owns two
// buffer sets so the parallel host-encode pool fills batch N+1 while the
// kernel consumes batch N (the prefetch streams drive the overlap), with
// bounded in-flight batches, order-preserving results, and support for many
// concurrent producers feeding one input channel. Decisions are identical
// between the two paths; only the modelled timing differs, because the
// streaming pipeline hides host work behind kernel execution.
//
// Both execution styles exist for the index-named mrFAST integration too:
// Engine.FilterCandidates is the one-shot path over (read, location)
// candidates against the unified-memory reference loaded by SetReference,
// and Engine.FilterCandidateStream is its streaming counterpart — the same
// double-buffered per-device pipeline, with reads packed into the buffer
// sets on the host and reference segments extracted by the kernel from the
// device-resident encoded reference.
package gkgpu

import (
	"fmt"

	"repro/internal/cuda"
)

// EncodingActor selects which processor performs the 2-bit encoding, the
// paper's central deployment trade-off (Section 3.3, Figure 6): encoding on
// the host shrinks transfers and speeds the kernel, encoding on the device
// parallelizes the packing and wins on end-to-end filter time.
type EncodingActor int

// Encoding actors.
const (
	EncodeOnDevice EncodingActor = iota
	EncodeOnHost
)

func (a EncodingActor) String() string {
	if a == EncodeOnHost {
		return "host"
	}
	return "device"
}

// Setup bundles the host-side characteristics of the paper's two
// experimental platforms; the GPU side lives in cuda.DeviceSpec.
type Setup struct {
	Name string
	// HostFactor scales host preparation costs relative to Setup 1's
	// Xeon Gold 6140.
	HostFactor float64
	// CPUFactor scales the GateKeeper-CPU baseline relative to Setup 1.
	CPUFactor float64
	// CPUCores is the core count used for the multicore CPU baseline.
	CPUCores int
	// EncodeWorkers is the host-encode worker-pool width of the modelled
	// platform, used by the streaming path's pipelined cost model (the real
	// pool is sized to the simulating machine, but modelled clocks must not
	// depend on it). Zero behaves as 1.
	EncodeWorkers int
}

// Setup1 returns the paper's primary platform: Xeon Gold 6140 host with
// GTX 1080 Ti devices (PCIe 3, prefetch-capable).
func Setup1() Setup {
	return Setup{Name: "Setup 1", HostFactor: 1.0, CPUFactor: 1.0, CPUCores: 12, EncodeWorkers: 12}
}

// Setup2 returns the secondary platform: Xeon E5-2643 host with Tesla K20X
// devices (PCIe 2, no prefetch).
func Setup2() Setup {
	return Setup{Name: "Setup 2", HostFactor: 1.2, CPUFactor: 1.08, CPUCores: 12, EncodeWorkers: 12}
}

// Config parametrizes an Engine. ReadLen and MaxE mirror the CUDA build's
// compile-time constants: the kernel's bitmask arrays are fixed-size, so the
// engine is built for one geometry and rejects others at run time.
type Config struct {
	ReadLen  int
	MaxE     int
	Encoding EncodingActor
	Setup    Setup
	Model    cuda.CostModel

	// RegsPerThread and ThreadsPerBlock define the launch geometry;
	// GateKeeper-GPU uses 40-48 registers and maximizes the block size to
	// maximize the batch (Section 5.4.1). Zero values take the defaults.
	RegsPerThread   int
	ThreadsPerBlock int

	// MaxBatchPairs caps the per-device batch regardless of free memory
	// (useful to keep simulation memory bounded); zero means no extra cap.
	MaxBatchPairs int

	// StreamBatchPairs is the dispatch granularity of FilterStream: how many
	// pairs accumulate before a batch is handed to a device. Smaller batches
	// lower latency and spread load across devices; larger batches amortize
	// the per-launch overhead. Zero picks a default, and values above the
	// smallest per-device batch capacity are clamped to it.
	StreamBatchPairs int

	// Fault tunes the streaming engine's retry/quarantine reaction to device
	// failures; the zero value takes the documented defaults.
	Fault FaultPolicy
}

func (c *Config) applyDefaults() {
	if c.RegsPerThread == 0 {
		c.RegsPerThread = 48
	}
	if c.ThreadsPerBlock == 0 {
		c.ThreadsPerBlock = 1024
	}
	if c.Model == (cuda.CostModel{}) {
		c.Model = cuda.DefaultCostModel()
	}
	if c.Setup.Name == "" {
		c.Setup = Setup1()
	}
	if c.MaxBatchPairs == 0 {
		c.MaxBatchPairs = 1 << 20
	}
	c.Fault.applyDefaults()
}

// Validate rejects configurations the CUDA build could not compile.
func (c Config) Validate() error {
	if c.ReadLen <= 0 || c.ReadLen > 1024 {
		return fmt.Errorf("gkgpu: read length %d outside (0,1024]", c.ReadLen)
	}
	if c.MaxE < 0 || c.MaxE > c.ReadLen {
		return fmt.Errorf("gkgpu: error threshold %d outside [0,%d]", c.MaxE, c.ReadLen)
	}
	if c.StreamBatchPairs < 0 {
		return fmt.Errorf("gkgpu: negative stream batch size %d", c.StreamBatchPairs)
	}
	return nil
}

// Result is one filtration outcome in the result buffer. Estimate follows
// the kernel's hot-path semantics: for accepted pairs it is the sealed
// early-accept upper bound (<= the threshold), not the exhaustive windowed
// count — the engine consumes only the decision, as the paper's pipeline
// does.
type Result struct {
	Accept    bool
	Undefined bool
	Estimate  uint16
}

// Pair is one read/candidate-segment input.
type Pair struct {
	Read, Ref []byte
}

// resultStride is the per-pair footprint in the result buffer: accept flag,
// undefined flag, and a 16-bit edit-distance approximation.
const resultStride = 4
