package gkgpu

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cuda"
	"repro/internal/filter"
)

// cpuGrain is how many pairs a CPU worker claims per scheduling step, the
// same granularity trade-off as filter.BatchFilter: rare enough cursor
// traffic to stay off the shared cache line, fine enough that an uneven
// pair (early-sealed accept vs exhaustive reject) cannot strand a tail.
const cpuGrain = 64

// CPUEngine is the GateKeeper-CPU baseline of Section 4.3: the same improved
// GateKeeper algorithm executed by host threads ("we implement
// GateKeeper-CPU in a multicore fashion and report the results of 12
// cores"). Its modelled times grow almost linearly with the error threshold,
// which is the CPU-vs-GPU contrast of Figure S.12.
//
// A CPUEngine is safe for concurrent use; calls serialize on an internal
// mutex (the parallelism lives inside a call, across its pairs) and each
// worker goroutine owns a persistent Kernel, so the steady state of a warm
// engine allocates only the per-call result slice.
type CPUEngine struct {
	readLen int
	maxE    int
	cores   int
	setup   Setup
	model   cuda.CostModel

	mu      sync.Mutex
	kernels []*filter.Kernel
	refSeq  []byte
	stats   Stats
}

// NewCPUEngine builds the baseline for one geometry and logical core count.
func NewCPUEngine(readLen, maxE, cores int, setup Setup, model cuda.CostModel) (*CPUEngine, error) {
	if readLen <= 0 || maxE < 0 || maxE > readLen {
		return nil, fmt.Errorf("gkgpu: invalid CPU engine geometry L=%d e=%d", readLen, maxE)
	}
	if cores < 1 {
		return nil, fmt.Errorf("gkgpu: invalid core count %d", cores)
	}
	if model == (cuda.CostModel{}) {
		model = cuda.DefaultCostModel()
	}
	if setup.Name == "" {
		setup = Setup1()
	}
	return &CPUEngine{readLen: readLen, maxE: maxE, cores: cores, setup: setup, model: model}, nil
}

// workersFor bounds a call's fan-out by the configured core count, the
// machine width, and the work available, and makes sure a persistent kernel
// exists for every worker slot. Kernels survive across calls — the
// read-length-keyed scratch is the expensive part, and reusing it is what
// keeps the per-call steady state allocation-free inside the workers.
func (c *CPUEngine) workersFor(n int) int {
	workers := cuda.MaxWorkers(n)
	if workers > c.cores {
		workers = c.cores
	}
	if workers < 1 {
		workers = 1
	}
	for len(c.kernels) < workers {
		c.kernels = append(c.kernels, filter.NewKernel(filter.ModeGPU, c.readLen, c.maxE))
	}
	return workers
}

// runWidth fans out over [0, n) with dynamic grain-sized claiming: workers
// pull the next block off a shared cursor, so a block of early-sealed
// accepts doesn't leave its worker idle while another grinds through
// exhaustive rejects. Worker w runs body on its private persistent kernel.
func (c *CPUEngine) runWidth(workers, n int, body func(kern *filter.Kernel, lo, hi int)) {
	if workers == 1 {
		body(c.kernels[0], 0, n)
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(kern *filter.Kernel) {
			defer wg.Done()
			for {
				hi := int(cursor.Add(cpuGrain))
				lo := hi - cpuGrain
				if lo >= n {
					return
				}
				if hi > n {
					hi = n
				}
				body(kern, lo, hi)
			}
		}(c.kernels[w])
	}
	wg.Wait()
}

// FilterPairs filters every pair on the host, fanning out across goroutines
// (bounded by the configured core count) with one persistent kernel per
// worker. Results come back in input order, one per pair.
func (c *CPUEngine) FilterPairs(pairs []Pair, errThreshold int) ([]Result, error) {
	if errThreshold < 0 || errThreshold > c.maxE {
		return nil, fmt.Errorf("gkgpu: threshold %d outside [0,%d]", errThreshold, c.maxE)
	}
	results := make([]Result, len(pairs))
	c.mu.Lock()
	defer c.mu.Unlock()
	start := time.Now()
	workers := c.workersFor(len(pairs))
	c.runWidth(workers, len(pairs), func(kern *filter.Kernel, lo, hi int) {
		cpuFilterRange(kern, pairs[lo:hi], results[lo:hi], errThreshold)
	})

	w := cuda.Workload{Pairs: len(pairs), ReadLen: c.readLen, E: errThreshold, DeviceEncoded: true}
	c.stats.KernelSeconds += c.model.CPUKernelSeconds(w, c.cores, c.setup.CPUFactor)
	c.stats.FilterSeconds += c.model.CPUFilterSeconds(w, c.cores, c.setup.CPUFactor)
	c.stats.Batches++
	c.stats.countDecisions(results)
	c.stats.WallSeconds += time.Since(start).Seconds()
	return results, nil
}

// cpuFilterRange is one worker's claimed block of a pair batch: the
// per-worker steady state, filtering each pair on the worker's kernel. A
// pair the kernel cannot check (wrong-length sequences — FilterChecked's
// only error once the threshold is validated up front) keeps its slot as
// Undefined+Accept, the same defensive pass-to-verification convention the
// GPU engine applies to out-of-geometry streaming items, so Stats counts it
// as Undefined rather than a plain accept.
//
//gk:noalloc
func cpuFilterRange(kern *filter.Kernel, pairs []Pair, out []Result, errThreshold int) {
	for i := range pairs {
		d, err := kern.FilterChecked(pairs[i].Read, pairs[i].Ref, errThreshold)
		if err != nil {
			out[i] = Result{Accept: true, Undefined: true}
			continue
		}
		out[i] = Result{Accept: d.Accept, Undefined: d.Undefined, Estimate: uint16(d.Estimate)}
	}
}

// SetReference loads the reference the index-named candidate path filters
// against. Unlike the GPU engine there is nothing to encode up front: the
// host kernel encodes each candidate's window on demand (and that encode
// doubles as the window's 'N' scan), so the engine just keeps a private
// copy of the sequence.
func (c *CPUEngine) SetReference(seq []byte) error {
	if len(seq) < c.readLen {
		return fmt.Errorf("gkgpu: reference (%d) shorter than read length (%d)", len(seq), c.readLen)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.refSeq = append(c.refSeq[:0], seq...)
	return nil
}

// FilterCandidates filters index-named candidates against the loaded
// reference on the host, with the same validation, undefined semantics, and
// result ordering as the GPU engine's FilterCandidates: decisions are
// identical on both engines for the same inputs.
func (c *CPUEngine) FilterCandidates(reads [][]byte, cands []Candidate, errThreshold int) ([]Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.refSeq == nil {
		return nil, fmt.Errorf("gkgpu: FilterCandidates before SetReference")
	}
	if errThreshold < 0 || errThreshold > c.maxE {
		return nil, fmt.Errorf("gkgpu: threshold %d outside [0,%d]", errThreshold, c.maxE)
	}
	L := c.readLen
	for i, r := range reads {
		if len(r) != L {
			return nil, fmt.Errorf("gkgpu: read %d has length %d; engine compiled for %d", i, len(r), L)
		}
	}
	for i, cd := range cands {
		if cd.ReadID < 0 || int(cd.ReadID) >= len(reads) {
			return nil, fmt.Errorf("gkgpu: candidate %d references read %d of %d", i, cd.ReadID, len(reads))
		}
		if cd.Pos < 0 || int(cd.Pos)+L > len(c.refSeq) {
			return nil, fmt.Errorf("gkgpu: candidate %d window [%d,%d) outside reference of %d",
				i, cd.Pos, int(cd.Pos)+L, len(c.refSeq))
		}
	}
	results := make([]Result, len(cands))
	start := time.Now()
	workers := c.workersFor(len(cands))
	c.runWidth(workers, len(cands), func(kern *filter.Kernel, lo, hi int) {
		cpuCandidateRange(kern, c.refSeq, L, reads, cands[lo:hi], results[lo:hi], errThreshold)
	})

	// Timing model: the index path matches the GPU engine's host-encoded
	// transfer profile (reads shipped once, reference resident).
	w := cuda.Workload{Pairs: len(cands), ReadLen: L, E: errThreshold, DeviceEncoded: false}
	c.stats.KernelSeconds += c.model.CPUKernelSeconds(w, c.cores, c.setup.CPUFactor)
	c.stats.FilterSeconds += c.model.CPUFilterSeconds(w, c.cores, c.setup.CPUFactor)
	c.stats.Batches++
	c.stats.countDecisions(results)
	c.stats.WallSeconds += time.Since(start).Seconds()
	return results, nil
}

// cpuCandidateRange is cpuFilterRange for index-named candidates: each
// candidate's reference window is a subslice of the resident reference, and
// FilterChecked's encode pass detects an 'N' in the read or the window —
// exactly the readHasN/windowHasN conditions the GPU engine flags — so the
// undefined decisions agree without a recorded N-position index.
//
//gk:noalloc
func cpuCandidateRange(kern *filter.Kernel, ref []byte, L int,
	reads [][]byte, cands []Candidate, out []Result, errThreshold int) {

	for i := range cands {
		cd := cands[i]
		window := ref[cd.Pos : int(cd.Pos)+L]
		d, err := kern.FilterChecked(reads[cd.ReadID], window, errThreshold)
		if err != nil {
			out[i] = Result{Accept: true, Undefined: true}
			continue
		}
		out[i] = Result{Accept: d.Accept, Undefined: d.Undefined, Estimate: uint16(d.Estimate)}
	}
}

// Stats returns the accumulated measurements.
func (c *CPUEngine) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// ResetStats clears the accumulated measurements.
func (c *CPUEngine) ResetStats() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats = Stats{}
}
