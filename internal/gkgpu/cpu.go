package gkgpu

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cuda"
	"repro/internal/filter"
)

// CPUEngine is the GateKeeper-CPU baseline of Section 4.3: the same improved
// GateKeeper algorithm executed by host threads ("we implement
// GateKeeper-CPU in a multicore fashion and report the results of 12
// cores"). Its modelled times grow almost linearly with the error threshold,
// which is the CPU-vs-GPU contrast of Figure S.12.
type CPUEngine struct {
	readLen int
	maxE    int
	cores   int
	setup   Setup
	model   cuda.CostModel
	stats   Stats
}

// NewCPUEngine builds the baseline for one geometry and logical core count.
func NewCPUEngine(readLen, maxE, cores int, setup Setup, model cuda.CostModel) (*CPUEngine, error) {
	if readLen <= 0 || maxE < 0 || maxE > readLen {
		return nil, fmt.Errorf("gkgpu: invalid CPU engine geometry L=%d e=%d", readLen, maxE)
	}
	if cores < 1 {
		return nil, fmt.Errorf("gkgpu: invalid core count %d", cores)
	}
	if model == (cuda.CostModel{}) {
		model = cuda.DefaultCostModel()
	}
	if setup.Name == "" {
		setup = Setup1()
	}
	return &CPUEngine{readLen: readLen, maxE: maxE, cores: cores, setup: setup, model: model}, nil
}

// FilterPairs filters every pair on the host, fanning out across goroutines
// (bounded by the configured core count) with one kernel stack per worker.
func (c *CPUEngine) FilterPairs(pairs []Pair, errThreshold int) ([]Result, error) {
	if errThreshold < 0 || errThreshold > c.maxE {
		return nil, fmt.Errorf("gkgpu: threshold %d outside [0,%d]", errThreshold, c.maxE)
	}
	results := make([]Result, len(pairs))
	start := time.Now()
	workers := cuda.MaxWorkers(len(pairs))
	if workers > c.cores {
		workers = c.cores
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	chunk := (len(pairs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(pairs) {
			break
		}
		hi := lo + chunk
		if hi > len(pairs) {
			hi = len(pairs)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			kern := filter.NewKernel(filter.ModeGPU, c.readLen, c.maxE)
			for i := lo; i < hi; i++ {
				d, err := kern.FilterChecked(pairs[i].Read, pairs[i].Ref, errThreshold)
				if err != nil {
					results[i] = Result{Accept: true}
					continue
				}
				results[i] = Result{Accept: d.Accept, Undefined: d.Undefined, Estimate: uint16(d.Estimate)}
			}
		}(lo, hi)
	}
	wg.Wait()

	w := cuda.Workload{Pairs: len(pairs), ReadLen: c.readLen, E: errThreshold, DeviceEncoded: true}
	c.stats.KernelSeconds += c.model.CPUKernelSeconds(w, c.cores, c.setup.CPUFactor)
	c.stats.FilterSeconds += c.model.CPUFilterSeconds(w, c.cores, c.setup.CPUFactor)
	c.stats.Batches++
	for _, r := range results {
		c.stats.Pairs++
		switch {
		case r.Undefined:
			c.stats.Undefined++
			c.stats.Accepted++
		case r.Accept:
			c.stats.Accepted++
		default:
			c.stats.Rejected++
		}
	}
	c.stats.WallSeconds += time.Since(start).Seconds()
	return results, nil
}

// Stats returns the accumulated measurements.
func (c *CPUEngine) Stats() Stats { return c.stats }

// ResetStats clears the accumulated measurements.
func (c *CPUEngine) ResetStats() { c.stats = Stats{} }
