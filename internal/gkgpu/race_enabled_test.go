//go:build race

package gkgpu

// raceEnabled reports whether the race detector is compiled in; its
// instrumentation allocates, so the zero-allocation guards skip under it.
const raceEnabled = true
