package gkgpu

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/cuda"
	"repro/internal/dna"
)

// newFaultStreamEngine builds a multi-device stream engine and hands the
// caller its cuda devices for fault-plan attachment.
func newFaultStreamEngine(t *testing.T, nDev, streamBatch int, pol FaultPolicy) (*Engine, *cuda.Context) {
	t.Helper()
	ctx := cuda.NewUniformContext(nDev, cuda.GTX1080Ti())
	cfg := Config{ReadLen: 100, MaxE: 5, Encoding: EncodeOnHost,
		MaxBatchPairs: 256, StreamBatchPairs: streamBatch, Fault: pol}
	eng, err := NewEngine(cfg, ctx)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	return eng, ctx
}

// decisionStats projects Stats onto the fields the fault-tolerance contract
// promises bit-identical under faults. Batches is excluded deliberately:
// batch segmentation was timing-dependent before fault injection existed
// (the dispatcher's linger timer may flush a partial batch), and clocks and
// retry counters are exactly what a faulty run is allowed to change.
type decisionStats struct {
	pairs, accepted, rejected, undefined int64
}

func decisionsOf(s Stats) decisionStats {
	return decisionStats{s.Pairs, s.Accepted, s.Rejected, s.Undefined}
}

func requireIdentical(t *testing.T, want, got []Result, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d results, want %d (loss or duplication)", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: result %d = %+v, want %+v (divergence or reorder)", label, i, got[i], want[i])
		}
	}
}

func TestStreamRetriesTransientFault(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	pairs, _ := makePairs(rng, 600, 100, 5)

	clean := newStreamEngine(t, EncodeOnHost, 1, 64)
	want := drainStream(t, clean, pairs, 5)

	eng, cctx := newFaultStreamEngine(t, 1, 64, FaultPolicy{Backoff: 50 * time.Microsecond})
	cctx.Device(0).InjectFaults(cuda.NewFaultPlan(3).FailNth(cuda.OpLaunch, 2).FailNth(cuda.OpLaunch, 5))
	got := drainStream(t, eng, pairs, 5)
	if err := eng.StreamErr(); err != nil {
		t.Fatalf("transient faults became terminal: %v", err)
	}
	requireIdentical(t, want, got, "retried stream")

	s := eng.Stats()
	if s.Retries == 0 {
		t.Fatal("transient faults recovered without counting retries")
	}
	if s.DevicesLost != 0 || s.Redispatches != 0 {
		t.Fatalf("transient faults quarantined a device: %+v", s)
	}
	if d := decisionsOf(s); d != decisionsOf(clean.Stats()) {
		t.Fatalf("decision stats diverged: %+v vs %+v", d, decisionsOf(clean.Stats()))
	}
}

func TestStreamRedispatchOnDeviceDeath(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	pairs, _ := makePairs(rng, 2000, 100, 5)

	clean := newStreamEngine(t, EncodeOnHost, 2, 64)
	want := drainStream(t, clean, pairs, 5)

	eng, cctx := newFaultStreamEngine(t, 2, 64, FaultPolicy{Backoff: 50 * time.Microsecond})
	cctx.Device(1).InjectFaults(cuda.NewFaultPlan(5).DieAtLaunch(3))
	got := drainStream(t, eng, pairs, 5)
	if err := eng.StreamErr(); err != nil {
		t.Fatalf("device death with a survivor became terminal: %v", err)
	}
	requireIdentical(t, want, got, "redispatched stream")

	s := eng.Stats()
	if s.DevicesLost != 1 {
		t.Fatalf("DevicesLost = %d, want 1", s.DevicesLost)
	}
	if s.Redispatches == 0 {
		t.Fatal("device died mid-stream but nothing redispatched")
	}
	if q := eng.QuarantinedDevices(); len(q) != 1 || q[0] != 1 {
		t.Fatalf("QuarantinedDevices = %v, want [1]", q)
	}
	if d := decisionsOf(s); d != decisionsOf(clean.Stats()) {
		t.Fatalf("decision stats diverged: %+v vs %+v", d, decisionsOf(clean.Stats()))
	}

	// The quarantine outlives the stream: the next stream runs entirely on
	// the survivor and still answers everything.
	again := drainStream(t, eng, pairs, 5)
	if err := eng.StreamErr(); err != nil {
		t.Fatalf("stream on quarantined engine: %v", err)
	}
	requireIdentical(t, want, again, "post-quarantine stream")
}

func TestStreamChaosIdentityUnderSeededFaults(t *testing.T) {
	// The tentpole identity sweep in miniature (the harness chaos experiment
	// runs the full grid): seeded per-op fault rates on every device of a
	// multi-device context, plus one mid-stream death, must not change a
	// single decision, the order, or the decision stats.
	rng := rand.New(rand.NewSource(73))
	pairs, _ := makePairs(rng, 3000, 100, 5)

	clean := newStreamEngine(t, EncodeOnHost, 3, 64)
	want := drainStream(t, clean, pairs, 5)
	wantDec := decisionsOf(clean.Stats())

	for _, seed := range []int64{1, 2, 3} {
		eng, cctx := newFaultStreamEngine(t, 3, 64, FaultPolicy{Backoff: 20 * time.Microsecond})
		for i := 0; i < 3; i++ {
			plan := cuda.NewFaultPlan(seed+int64(i)).
				WithRate(cuda.OpLaunch, 0.10).
				WithRate(cuda.OpTransfer, 0.05)
			if i == 2 {
				plan.DieAtLaunch(7)
			}
			cctx.Device(i).InjectFaults(plan)
		}
		got := drainStream(t, eng, pairs, 5)
		if err := eng.StreamErr(); err != nil {
			t.Fatalf("seed %d: chaos became terminal with survivors: %v", seed, err)
		}
		requireIdentical(t, want, got, "chaos stream")
		if d := decisionsOf(eng.Stats()); d != wantDec {
			t.Fatalf("seed %d: decision stats diverged: %+v vs %+v", seed, d, wantDec)
		}
	}
}

func TestStreamAllDevicesDeadDrainsProducer(t *testing.T) {
	// Satellite: terminal failure must (a) surface the first classified
	// fault through StreamErr under ErrStreamAborted, and (b) fully drain a
	// producer that knows nothing about the failure — plain blocking sends,
	// no ctx — instead of deadlocking it.
	rng := rand.New(rand.NewSource(74))
	pairs, _ := makePairs(rng, 4000, 100, 5)

	eng, cctx := newFaultStreamEngine(t, 2, 32, FaultPolicy{Backoff: 20 * time.Microsecond})
	cctx.Device(0).InjectFaults(cuda.NewFaultPlan(1).DieAtLaunch(2))
	cctx.Device(1).InjectFaults(cuda.NewFaultPlan(2).DieAtLaunch(3))

	in := make(chan Pair)
	out, err := eng.FilterStream(context.Background(), in, 5)
	if err != nil {
		t.Fatal(err)
	}
	produced := make(chan struct{})
	go func() {
		defer close(produced)
		for _, p := range pairs {
			in <- p // deliberately no select: the stream must drain us
		}
		close(in)
	}()
	for range out {
	}
	select {
	case <-produced:
	case <-time.After(30 * time.Second):
		t.Fatal("producer deadlocked after terminal stream failure")
	}

	serr := eng.StreamErr()
	if serr == nil {
		t.Fatal("all devices dead but StreamErr is nil")
	}
	if !errors.Is(serr, ErrStreamAborted) || !errors.Is(serr, ErrDeviceLost) {
		t.Fatalf("terminal error lacks taxonomy: %v", serr)
	}
	if !errors.Is(serr, cuda.ErrDeviceLost) {
		t.Fatalf("terminal error lost its cuda cause: %v", serr)
	}
	var df *DeviceFault
	if !errors.As(serr, &df) {
		t.Fatalf("StreamErr does not expose the first classified DeviceFault: %v", serr)
	}
	if df.Kind != ErrDeviceLost {
		t.Fatalf("first classified fault kind = %v, want ErrDeviceLost", df.Kind)
	}
	if s := eng.Stats(); s.DevicesLost != 2 {
		t.Fatalf("DevicesLost = %d, want 2", s.DevicesLost)
	}

	// A fresh stream on the fully quarantined engine fails fast with the
	// taxonomy error and still drains its input.
	in2 := make(chan Pair, 4)
	in2 <- pairs[0]
	close(in2)
	out2, err := eng.FilterStream(context.Background(), in2, 5)
	if err != nil {
		t.Fatal(err)
	}
	for range out2 {
		t.Fatal("quarantined engine emitted a result")
	}
	if err := eng.StreamErr(); !errors.Is(err, ErrDeviceLost) || !errors.Is(err, ErrStreamAborted) {
		t.Fatalf("quarantined-engine stream error: %v", err)
	}
}

func TestStreamTransferFaultTerminalWithoutRetry(t *testing.T) {
	// With retries disabled, an async transfer fault surfaces at the next
	// launch and classifies as ErrTransfer.
	rng := rand.New(rand.NewSource(75))
	pairs, _ := makePairs(rng, 300, 100, 5)

	eng, cctx := newFaultStreamEngine(t, 1, 64, FaultPolicy{MaxAttempts: 1})
	cctx.Device(0).InjectFaults(cuda.NewFaultPlan(1).FailNth(cuda.OpTransfer, 1))
	in := make(chan Pair)
	out, err := eng.FilterStream(context.Background(), in, 5)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for _, p := range pairs {
			in <- p
		}
		close(in)
	}()
	for range out {
	}
	serr := eng.StreamErr()
	if !errors.Is(serr, ErrStreamAborted) || !errors.Is(serr, ErrTransfer) {
		t.Fatalf("transfer fault classification: %v", serr)
	}
}

func TestStreamDeadlineRespectedMidBatch(t *testing.T) {
	// A device stuck in a retry loop must not pin the stream past its
	// deadline: the backoff wait carries a ctx arm.
	rng := rand.New(rand.NewSource(76))
	pairs, _ := makePairs(rng, 500, 100, 5)

	eng, cctx := newFaultStreamEngine(t, 1, 32,
		FaultPolicy{MaxAttempts: 1 << 20, Backoff: 50 * time.Millisecond, MaxBackoff: time.Second})
	cctx.Device(0).InjectFaults(cuda.NewFaultPlan(1).WithRate(cuda.OpLaunch, 1.0))

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	in := make(chan Pair)
	out, err := eng.FilterStream(ctx, in, 5)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		defer close(in)
		for _, p := range pairs {
			select {
			case in <- p:
			case <-ctx.Done():
				return
			}
		}
	}()
	start := time.Now()
	for range out {
	}
	if took := time.Since(start); took > 10*time.Second {
		t.Fatalf("deadline ignored: stream closed after %v", took)
	}
}

func TestFilterPairsClassifiesAndQuarantines(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	pairs, _ := makePairs(rng, 400, 100, 5)

	ctx := cuda.NewUniformContext(2, cuda.GTX1080Ti())
	eng, err := NewEngine(Config{ReadLen: 100, MaxE: 5, MaxBatchPairs: 256}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	want, err := eng.FilterPairs(pairs, 5)
	if err != nil {
		t.Fatal(err)
	}

	ctx.Device(0).InjectFaults(cuda.NewFaultPlan(1).DieAtLaunch(1))
	if _, err := eng.FilterPairs(pairs, 5); !errors.Is(err, ErrDeviceLost) {
		t.Fatalf("one-shot death not classified: %v", err)
	}
	if q := eng.QuarantinedDevices(); len(q) != 1 || q[0] != 0 {
		t.Fatalf("QuarantinedDevices = %v, want [0]", q)
	}
	// The next call re-weights onto the survivor and succeeds identically.
	got, err := eng.FilterPairs(pairs, 5)
	if err != nil {
		t.Fatalf("post-quarantine FilterPairs: %v", err)
	}
	requireIdentical(t, want, got, "post-quarantine FilterPairs")

	ctx.Device(1).InjectFaults(cuda.NewFaultPlan(2).Kill())
	if _, err := eng.FilterPairs(pairs, 5); !errors.Is(err, ErrDeviceLost) {
		t.Fatalf("second death not classified: %v", err)
	}
	if _, err := eng.FilterPairs(pairs, 5); !errors.Is(err, ErrDeviceLost) {
		t.Fatalf("all-quarantined FilterPairs: %v", err)
	}
}

func TestNewEngineAllocFaultClassified(t *testing.T) {
	ctx := cuda.NewUniformContext(1, cuda.GTX1080Ti())
	ctx.Device(0).InjectFaults(cuda.NewFaultPlan(1).FailNth(cuda.OpAlloc, 1))
	if _, err := NewEngine(Config{ReadLen: 100, MaxE: 5, MaxBatchPairs: 64}, ctx); !errors.Is(err, ErrAlloc) {
		t.Fatalf("NewEngine alloc fault: %v, want ErrAlloc", err)
	}
}

func TestSetReferenceAllocFaultClassified(t *testing.T) {
	ctx := cuda.NewUniformContext(1, cuda.GTX1080Ti())
	eng, err := NewEngine(Config{ReadLen: 100, MaxE: 5, MaxBatchPairs: 64}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	// The engine's own buffer sets allocate 8 buffers; fail the 9th — the
	// reference load.
	ctx.Device(0).InjectFaults(cuda.NewFaultPlan(1).FailNth(cuda.OpAlloc, 1))
	if err := eng.SetReference(make([]byte, 4096)); !errors.Is(err, ErrAlloc) {
		t.Fatalf("SetReference alloc fault: %v, want ErrAlloc", err)
	}
}

func TestCandidateStreamSurvivesDeviceDeath(t *testing.T) {
	// The fault tolerance is generic over the stream type: the index-named
	// candidate stream redispatches too.
	rng := rand.New(rand.NewSource(78))
	refSeq := dna.RandomSeq(rng, 8192)

	build := func(pol FaultPolicy) (*Engine, *cuda.Context) {
		ctx := cuda.NewUniformContext(2, cuda.GTX1080Ti())
		eng, err := NewEngine(Config{ReadLen: 100, MaxE: 5, Encoding: EncodeOnHost,
			MaxBatchPairs: 256, StreamBatchPairs: 32, Fault: pol}, ctx)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(eng.Close)
		if err := eng.SetReference(refSeq); err != nil {
			t.Fatal(err)
		}
		return eng, ctx
	}
	cands := make([]StreamCandidate, 800)
	for i := range cands {
		pos := rng.Intn(len(refSeq) - 100)
		cands[i] = StreamCandidate{Read: refSeq[pos : pos+100], Pos: int64(pos)}
	}
	run := func(eng *Engine) []Result {
		in := make(chan StreamCandidate)
		out, err := eng.FilterCandidateStream(context.Background(), in, 5)
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			for _, c := range cands {
				in <- c
			}
			close(in)
		}()
		var res []Result
		for r := range out {
			res = append(res, r)
		}
		return res
	}

	clean, _ := build(FaultPolicy{})
	want := run(clean)
	if err := clean.StreamErr(); err != nil {
		t.Fatal(err)
	}

	eng, cctx := build(FaultPolicy{Backoff: 20 * time.Microsecond})
	cctx.Device(0).InjectFaults(cuda.NewFaultPlan(4).DieAtLaunch(2))
	got := run(eng)
	if err := eng.StreamErr(); err != nil {
		t.Fatalf("candidate stream death with survivor: %v", err)
	}
	requireIdentical(t, want, got, "candidate stream")
	if s := eng.Stats(); s.DevicesLost != 1 {
		t.Fatalf("DevicesLost = %d, want 1", s.DevicesLost)
	}
}
