package gkgpu

import (
	"math/rand"
	"testing"

	"repro/internal/cuda"
	"repro/internal/dna"
)

func TestFilterCandidatesMatchesFilterPairs(t *testing.T) {
	// The index-named path must make exactly the decisions of the
	// materialized-pair path for the same windows.
	rng := rand.New(rand.NewSource(1))
	genome := dna.RandomSeq(rng, 50_000)
	eng := newTestEngine(t, EncodeOnHost, 2)
	if err := eng.SetReference(genome); err != nil {
		t.Fatal(err)
	}
	var reads [][]byte
	var cands []Candidate
	var pairs []Pair
	for i := 0; i < 40; i++ {
		pos := rng.Intn(len(genome) - 100)
		read := dna.MutateSubstitutions(rng, genome[pos:pos+100], rng.Intn(12))
		reads = append(reads, read)
		// Several candidates per read, including wrong ones.
		for _, p := range []int{pos, rng.Intn(len(genome) - 100), pos + 3} {
			cands = append(cands, Candidate{ReadID: int64(i), Pos: int64(p)})
			pairs = append(pairs, Pair{Read: read, Ref: genome[p : p+100]})
		}
	}
	got, err := eng.FilterCandidates(reads, cands, 5)
	if err != nil {
		t.Fatal(err)
	}
	eng2 := newTestEngine(t, EncodeOnHost, 1)
	want, err := eng2.FilterPairs(pairs, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("candidate %d: index path %+v, pair path %+v", i, got[i], want[i])
		}
	}
}

func TestFilterCandidatesUndefinedWindows(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	genome := dna.RandomSeq(rng, 10_000)
	genome[5_050] = 'N'
	eng := newTestEngine(t, EncodeOnDevice, 1)
	if err := eng.SetReference(genome); err != nil {
		t.Fatal(err)
	}
	read := dna.RandomSeq(rng, 100)
	res, err := eng.FilterCandidates([][]byte{read}, []Candidate{
		{ReadID: 0, Pos: 5_000}, // window overlaps the N
		{ReadID: 0, Pos: 200},   // clean window
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Undefined || !res[0].Accept {
		t.Fatalf("N-overlapping window not undefined: %+v", res[0])
	}
	if res[1].Undefined {
		t.Fatalf("clean window marked undefined: %+v", res[1])
	}

	// A read containing N is undefined everywhere.
	readN := append([]byte(nil), read...)
	readN[10] = 'N'
	res, err = eng.FilterCandidates([][]byte{readN}, []Candidate{{ReadID: 0, Pos: 200}}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Undefined {
		t.Fatal("N-containing read not undefined")
	}
}

func TestFilterCandidatesValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	genome := dna.RandomSeq(rng, 5_000)
	eng := newTestEngine(t, EncodeOnDevice, 1)
	read := dna.RandomSeq(rng, 100)

	if _, err := eng.FilterCandidates([][]byte{read}, nil, 5); err == nil {
		t.Fatal("FilterCandidates before SetReference accepted")
	}
	if err := eng.SetReference(genome[:50]); err == nil {
		t.Fatal("reference shorter than read length accepted")
	}
	if err := eng.SetReference(genome); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.FilterCandidates([][]byte{read}, []Candidate{{ReadID: 1, Pos: 0}}, 5); err == nil {
		t.Fatal("dangling read ID accepted")
	}
	if _, err := eng.FilterCandidates([][]byte{read}, []Candidate{{ReadID: 0, Pos: 4_950}}, 5); err == nil {
		t.Fatal("window beyond reference accepted")
	}
	if _, err := eng.FilterCandidates([][]byte{read}, []Candidate{{ReadID: 0, Pos: -1}}, 5); err == nil {
		t.Fatal("negative position accepted")
	}
	if _, err := eng.FilterCandidates([][]byte{read[:50]}, []Candidate{{ReadID: 0, Pos: 0}}, 5); err == nil {
		t.Fatal("short read accepted")
	}
	if _, err := eng.FilterCandidates([][]byte{read}, []Candidate{{ReadID: 0, Pos: 0}}, 9); err == nil {
		t.Fatal("threshold above compiled MaxE accepted")
	}
}

func TestSetReferenceReplacesAndCloses(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g1 := dna.RandomSeq(rng, 4_000)
	g2 := dna.RandomSeq(rng, 4_000)
	ctx := cuda.NewUniformContext(1, cuda.GTX1080Ti())
	eng, err := NewEngine(Config{ReadLen: 100, MaxE: 5, MaxBatchPairs: 256}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	freeBefore := ctx.Device(0).FreeMem()
	if err := eng.SetReference(g1); err != nil {
		t.Fatal(err)
	}
	afterFirst := ctx.Device(0).FreeMem()
	if afterFirst >= freeBefore {
		t.Fatal("reference did not charge device memory")
	}
	if err := eng.SetReference(g2); err != nil {
		t.Fatal(err)
	}
	if got := ctx.Device(0).FreeMem(); got != afterFirst {
		t.Fatalf("replacing the reference leaked memory: %d vs %d", got, afterFirst)
	}
	// Decisions reflect the new reference.
	read := append([]byte(nil), g2[100:200]...)
	res, err := eng.FilterCandidates([][]byte{read}, []Candidate{{ReadID: 0, Pos: 100}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Accept {
		t.Fatal("exact window against the replaced reference rejected")
	}
	eng.Close()
	if got := ctx.Device(0).FreeMem(); got != freeBefore+afterFirst-afterFirst {
		_ = got // Close frees engine buffers too; just ensure no panic path
	}
}

func TestReferenceNRecording(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	genome := dna.RandomSeq(rng, 3_000)
	for _, p := range []int{0, 777, 1_500, 2_999} {
		genome[p] = 'N'
	}
	eng := newTestEngine(t, EncodeOnDevice, 1)
	if err := eng.SetReference(genome); err != nil {
		t.Fatal(err)
	}
	r := eng.ref
	if len(r.nPositions) != 4 {
		t.Fatalf("recorded %d N positions, want 4", len(r.nPositions))
	}
	for _, tc := range []struct {
		start int64
		want  bool
	}{
		{0, true}, {1, false}, {700, true}, {778, false}, {1_401, true}, {1_501, false}, {2_900, true},
	} {
		if got := r.windowHasN(tc.start, 100); got != tc.want {
			t.Errorf("windowHasN(%d,100) = %v, want %v", tc.start, got, tc.want)
		}
	}
}

func TestFilterCandidatesSharedReadEncodedOnce(t *testing.T) {
	// Many candidates for one read must all work off the single encoded
	// copy; verified by decision agreement against per-pair filtering.
	rng := rand.New(rand.NewSource(6))
	genome := dna.RandomSeq(rng, 20_000)
	eng := newTestEngine(t, EncodeOnDevice, 1)
	if err := eng.SetReference(genome); err != nil {
		t.Fatal(err)
	}
	pos := 7_000
	read := dna.MutateSubstitutions(rng, genome[pos:pos+100], 3)
	var cands []Candidate
	for i := 0; i < 50; i++ {
		cands = append(cands, Candidate{ReadID: 0, Pos: int64(rng.Intn(len(genome) - 100))})
	}
	cands = append(cands, Candidate{ReadID: 0, Pos: int64(pos)})
	res, err := eng.FilterCandidates([][]byte{read}, cands, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res[len(res)-1].Accept {
		t.Fatal("true location rejected")
	}
}
