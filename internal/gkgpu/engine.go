package gkgpu

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"repro/internal/bitvec"
	"repro/internal/cuda"
	"repro/internal/dna"
	"repro/internal/filter"
)

// Stats accumulates the measurements of Section 4.3 across an engine's
// lifetime. KernelSeconds and FilterSeconds come from the calibrated cost
// model (the paper's CUDA-event and host-side clocks); WallSeconds is the
// real time this simulation spent, reported for transparency.
type Stats struct {
	Pairs     int64
	Accepted  int64
	Rejected  int64
	Undefined int64
	Batches   int64

	KernelSeconds     float64 // modelled device time (max across devices per round)
	FilterSeconds     float64 // modelled end-to-end filtering time
	HostPrepSeconds   float64 // modelled host encode/fill share of FilterSeconds
	TransferSeconds   float64 // modelled PCIe share of FilterSeconds
	WallSeconds       float64
	FaultMigrations   int64 // unified-memory bytes moved on demand
	PrefetchMigration int64 // unified-memory bytes moved by prefetch
}

// RejectionRate returns rejected / total pairs.
func (s Stats) RejectionRate() float64 {
	if s.Pairs == 0 {
		return 0
	}
	return float64(s.Rejected) / float64(s.Pairs)
}

// deviceState is the per-device slice of the engine: unified buffers, the
// prefetch streams, and one filter kernel per executor goroutine (the
// per-thread stack frames).
type deviceState struct {
	dev     *cuda.Device
	sys     SystemConfig
	readBuf *cuda.UMBuffer
	refBuf  *cuda.UMBuffer
	flagBuf *cuda.UMBuffer
	resBuf  *cuda.UMBuffer
	streams []*cuda.Stream
	kernels []*filter.Kernel
	// Host-encoded path scratch: per-worker word views of the packed input.
	readWords [][]uint32
	refWords  [][]uint32
}

// Engine is a GateKeeper-GPU instance bound to a context of simulated
// devices. It is safe for sequential use; one engine drives all its devices
// concurrently inside FilterPairs.
type Engine struct {
	cfg    Config
	ctx    *cuda.Context
	states []*deviceState
	stats  Stats
	ref    *reference // loaded by SetReference for the index-named path
}

// NewEngine configures buffers and kernels on every device of ctx for the
// given geometry, performing the paper's configuration and resource
// allocation stages.
func NewEngine(cfg Config, ctx *cuda.Context) (*Engine, error) {
	cfg.applyDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ctx.NumDevices() == 0 {
		return nil, fmt.Errorf("gkgpu: context has no devices")
	}
	e := &Engine{cfg: cfg, ctx: ctx}
	for _, dev := range ctx.Devices() {
		sys := Configure(dev.Spec, cfg.ReadLen, cfg.MaxE, cfg.Encoding,
			cfg.ThreadsPerBlock, cfg.RegsPerThread, cfg.MaxBatchPairs)
		st := &deviceState{dev: dev, sys: sys}
		var seqBytes int
		if cfg.Encoding == EncodeOnDevice {
			seqBytes = cfg.ReadLen
		} else {
			seqBytes = bitvec.EncodedWords(cfg.ReadLen) * 4
		}
		var err error
		if st.readBuf, err = dev.AllocUnified(sys.BatchPairs * seqBytes); err != nil {
			return nil, fmt.Errorf("gkgpu: read buffer: %w", err)
		}
		if st.refBuf, err = dev.AllocUnified(sys.BatchPairs * seqBytes); err != nil {
			return nil, fmt.Errorf("gkgpu: reference buffer: %w", err)
		}
		if st.flagBuf, err = dev.AllocUnified(sys.BatchPairs); err != nil {
			return nil, fmt.Errorf("gkgpu: flag buffer: %w", err)
		}
		if st.resBuf, err = dev.AllocUnified(sys.BatchPairs * resultStride); err != nil {
			return nil, fmt.Errorf("gkgpu: result buffer: %w", err)
		}
		// "The preferred location of the data is set to be the GPU device
		// for the input buffers"; each buffer prefetches on its own stream.
		st.readBuf.Advise(cuda.AdvisePreferredDevice)
		st.refBuf.Advise(cuda.AdvisePreferredDevice)
		st.flagBuf.Advise(cuda.AdvisePreferredDevice)
		for i := 0; i < 3; i++ {
			st.streams = append(st.streams, dev.NewStream())
		}
		workers := cuda.MaxWorkers(sys.BatchPairs)
		mode := filter.ModeGPU
		for w := 0; w < workers; w++ {
			st.kernels = append(st.kernels, filter.NewKernel(mode, cfg.ReadLen, cfg.MaxE))
			st.readWords = append(st.readWords, make([]uint32, bitvec.EncodedWords(cfg.ReadLen)))
			st.refWords = append(st.refWords, make([]uint32, bitvec.EncodedWords(cfg.ReadLen)))
		}
		e.states = append(e.states, st)
	}
	return e, nil
}

// Close releases every unified-memory buffer.
func (e *Engine) Close() {
	e.clearReference()
	for _, st := range e.states {
		st.readBuf.Free()
		st.refBuf.Free()
		st.flagBuf.Free()
		st.resBuf.Free()
	}
	e.states = nil
}

// Config returns the engine's (defaulted) configuration.
func (e *Engine) Config() Config { return e.cfg }

// SystemConfigs returns the per-device configuration results.
func (e *Engine) SystemConfigs() []SystemConfig {
	out := make([]SystemConfig, len(e.states))
	for i, st := range e.states {
		out[i] = st.sys
	}
	return out
}

// Stats returns the accumulated measurements.
func (e *Engine) Stats() Stats { return e.stats }

// ResetStats clears the accumulated measurements.
func (e *Engine) ResetStats() { e.stats = Stats{} }

// FilterPairs filters every pair at threshold e, batching across the
// context's devices exactly as Section 3.1 describes: each round hands every
// device an equal batch ("In the multi-GPU model, the batch size is equal
// for all devices to ensure a fair workload"). Results are returned in input
// order.
func (e *Engine) FilterPairs(pairs []Pair, errThreshold int) ([]Result, error) {
	if errThreshold < 0 || errThreshold > e.cfg.MaxE {
		return nil, fmt.Errorf("gkgpu: threshold %d outside compiled [0,%d]", errThreshold, e.cfg.MaxE)
	}
	for i, p := range pairs {
		if len(p.Read) != e.cfg.ReadLen || len(p.Ref) != e.cfg.ReadLen {
			return nil, fmt.Errorf("gkgpu: pair %d has lengths %d/%d; engine compiled for %d",
				i, len(p.Read), len(p.Ref), e.cfg.ReadLen)
		}
	}
	results := make([]Result, len(pairs))
	wallStart := time.Now()
	nDev := len(e.states)
	roundCap := 0
	for _, st := range e.states {
		roundCap += st.sys.BatchPairs
	}

	for off := 0; off < len(pairs); off += roundCap {
		end := off + roundCap
		if end > len(pairs) {
			end = len(pairs)
		}
		round := pairs[off:end]
		// Equal split across devices.
		share := (len(round) + nDev - 1) / nDev
		var wg sync.WaitGroup
		errs := make([]error, nDev)
		for di, st := range e.states {
			lo := di * share
			if lo >= len(round) {
				break
			}
			hi := lo + share
			if hi > len(round) {
				hi = len(round)
			}
			wg.Add(1)
			go func(di int, st *deviceState, chunk []Pair, out []Result) {
				defer wg.Done()
				errs[di] = e.runBatch(st, chunk, errThreshold, out)
			}(di, st, round[lo:hi], results[off+lo:off+hi])
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		// Model the round's timing: the kernel clock is the slowest device
		// ("kernel time represents the time of the device which takes the
		// longest"), here the full-share device.
		w := cuda.Workload{
			Pairs:         len(round),
			ReadLen:       e.cfg.ReadLen,
			E:             errThreshold,
			DeviceEncoded: e.cfg.Encoding == EncodeOnDevice,
		}
		spec := e.states[0].dev.Spec
		kt := e.cfg.Model.MultiGPUKernelSeconds(spec, w, nDev) + e.cfg.Model.PerLaunchSeconds
		ft := e.cfg.Model.MultiGPUFilterSeconds(spec, w, nDev, e.cfg.Setup.HostFactor) +
			e.cfg.Model.PerLaunchSeconds + e.cfg.Model.PerBatchHostSeconds
		e.stats.KernelSeconds += kt
		e.stats.FilterSeconds += ft
		e.stats.HostPrepSeconds += e.cfg.Model.HostPrepSeconds(w, e.cfg.Setup.HostFactor) / float64(nDev)
		e.stats.TransferSeconds += e.cfg.Model.TransferSeconds(spec, w) / float64(nDev)
		e.stats.Batches++
		util := e.cfg.Model.Utilization(spec, w)
		for di, st := range e.states {
			if di*share < len(round) {
				st.dev.RecordKernel(kt, util)
			}
		}
	}

	for i := range results {
		e.stats.Pairs++
		switch {
		case results[i].Undefined:
			e.stats.Undefined++
			e.stats.Accepted++
		case results[i].Accept:
			e.stats.Accepted++
		default:
			e.stats.Rejected++
		}
	}
	e.stats.WallSeconds += time.Since(wallStart).Seconds()
	e.stats.FaultMigrations = 0
	e.stats.PrefetchMigration = 0
	for _, st := range e.states {
		f1, p1 := st.readBuf.MigrationStats()
		f2, p2 := st.refBuf.MigrationStats()
		e.stats.FaultMigrations += f1 + f2
		e.stats.PrefetchMigration += p1 + p2
	}
	return results, nil
}

// runBatch executes one device's share of a round: fill unified buffers
// (preprocessing), advise/prefetch, launch, and decode the result buffer.
func (e *Engine) runBatch(st *deviceState, chunk []Pair, errThreshold int, out []Result) error {
	n := len(chunk)
	if n == 0 {
		return nil
	}
	L := e.cfg.ReadLen
	encWords := bitvec.EncodedWords(L)
	flags := st.flagBuf.Bytes()

	// Preprocessing: fill the unified buffers on the host.
	if e.cfg.Encoding == EncodeOnDevice {
		rb, fb := st.readBuf.Bytes(), st.refBuf.Bytes()
		for i, p := range chunk {
			copy(rb[i*L:], p.Read)
			copy(fb[i*L:], p.Ref)
			flags[i] = 0
		}
		st.readBuf.HostWrite(0, n*L)
		st.refBuf.HostWrite(0, n*L)
	} else {
		rb, fb := st.readBuf.Bytes(), st.refBuf.Bytes()
		words := make([]uint32, encWords)
		encodeInto := func(dst []byte, seq []byte) bool {
			if dna.HasN(seq) {
				return false
			}
			if err := dna.EncodeInto(words, seq); err != nil {
				return false
			}
			for w, v := range words {
				binary.LittleEndian.PutUint32(dst[w*4:], v)
			}
			return true
		}
		for i, p := range chunk {
			okR := encodeInto(rb[i*encWords*4:(i+1)*encWords*4], p.Read)
			okF := encodeInto(fb[i*encWords*4:(i+1)*encWords*4], p.Ref)
			if okR && okF {
				flags[i] = 0
			} else {
				flags[i] = 1 // undefined: skip filtration in the kernel
			}
		}
		st.readBuf.HostWrite(0, n*encWords*4)
		st.refBuf.HostWrite(0, n*encWords*4)
	}
	st.flagBuf.HostWrite(0, n)

	// Prefetch each input buffer on its own stream (no-ops on Kepler).
	st.readBuf.PrefetchAsync(st.streams[0])
	st.refBuf.PrefetchAsync(st.streams[1])
	st.flagBuf.PrefetchAsync(st.streams[2])
	if !st.dev.Spec.SupportsPrefetch() {
		// On-demand migration when the kernel touches the buffers.
		st.readBuf.DeviceTouch(0, st.readBuf.Len())
		st.refBuf.DeviceTouch(0, st.refBuf.Len())
	}

	res := st.resBuf.Bytes()
	lc := st.sys.Launch
	if need := (n + lc.ThreadsPerBlock - 1) / lc.ThreadsPerBlock; need < lc.Blocks {
		lc.Blocks = need // ragged final batch
	}
	err := st.dev.Launch(lc, n, func(worker, tid int) {
		var r Result
		if flags[tid] == 1 {
			r = Result{Accept: true, Undefined: true}
		} else if e.cfg.Encoding == EncodeOnDevice {
			d, ferr := st.kernels[worker].FilterChecked(
				st.readBuf.Bytes()[tid*L:(tid+1)*L],
				st.refBuf.Bytes()[tid*L:(tid+1)*L],
				errThreshold)
			if ferr != nil {
				r = Result{Accept: true} // defensive: pass to verification
			} else {
				r = Result{Accept: d.Accept, Undefined: d.Undefined, Estimate: uint16(d.Estimate)}
			}
		} else {
			rw, fw := st.readWords[worker], st.refWords[worker]
			rb := st.readBuf.Bytes()[tid*encWords*4:]
			fb := st.refBuf.Bytes()[tid*encWords*4:]
			for w := 0; w < encWords; w++ {
				rw[w] = binary.LittleEndian.Uint32(rb[w*4:])
				fw[w] = binary.LittleEndian.Uint32(fb[w*4:])
			}
			est, accept := st.kernels[worker].FilterEncoded(rw, fw, errThreshold)
			r = Result{Accept: accept, Estimate: uint16(est)}
		}
		base := tid * resultStride
		if r.Accept {
			res[base] = 1
		} else {
			res[base] = 0
		}
		if r.Undefined {
			res[base+1] = 1
		} else {
			res[base+1] = 0
		}
		binary.LittleEndian.PutUint16(res[base+2:], r.Estimate)
	})
	if err != nil {
		return err
	}

	// The host reads results back through the shared pointer — the batch's
	// only synchronization point (Section 3.5).
	st.resBuf.HostWrite(0, n*resultStride)
	for i := range out {
		base := i * resultStride
		out[i] = Result{
			Accept:    res[base] == 1,
			Undefined: res[base+1] == 1,
			Estimate:  binary.LittleEndian.Uint16(res[base+2:]),
		}
	}
	return nil
}
