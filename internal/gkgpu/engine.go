package gkgpu

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bitvec"
	"repro/internal/cuda"
	"repro/internal/dna"
	"repro/internal/filter"
)

// Stats accumulates the measurements of Section 4.3 across an engine's
// lifetime. KernelSeconds and FilterSeconds come from the calibrated cost
// model (the paper's CUDA-event and host-side clocks); WallSeconds is the
// real time this simulation spent, reported for transparency.
type Stats struct {
	Pairs     int64
	Accepted  int64
	Rejected  int64
	Undefined int64
	Batches   int64

	// Fault-recovery counters. Retries counts batch attempts repeated after
	// a transient fault, Redispatches counts batches moved to a surviving
	// device after a quarantine, DevicesLost counts quarantine events. They
	// are the only Stats fields a faulty-but-survived stream may change
	// relative to a fault-free run: decisions and decision counters stay
	// bit-identical.
	Retries      int64
	Redispatches int64
	DevicesLost  int64

	KernelSeconds     float64 // modelled device time (max across devices per round)
	FilterSeconds     float64 // modelled end-to-end filtering time
	HostPrepSeconds   float64 // modelled host encode/fill share of FilterSeconds
	TransferSeconds   float64 // modelled PCIe share of FilterSeconds
	WallSeconds       float64
	FaultMigrations   int64 // unified-memory bytes moved on demand
	PrefetchMigration int64 // unified-memory bytes moved by prefetch
}

// RejectionRate returns rejected / total pairs.
func (s Stats) RejectionRate() float64 {
	if s.Pairs == 0 {
		return 0
	}
	return float64(s.Rejected) / float64(s.Pairs)
}

// add merges a locally accumulated Stats delta into s. The migration fields
// are absolute gauges, not deltas: add ignores them and commitStats
// recomputes both from live buffer state after every merge.
func (s *Stats) add(d Stats) {
	s.Pairs += d.Pairs
	s.Accepted += d.Accepted
	s.Rejected += d.Rejected
	s.Undefined += d.Undefined
	s.Batches += d.Batches
	s.Retries += d.Retries
	s.Redispatches += d.Redispatches
	s.DevicesLost += d.DevicesLost
	s.KernelSeconds += d.KernelSeconds
	s.FilterSeconds += d.FilterSeconds
	s.HostPrepSeconds += d.HostPrepSeconds
	s.TransferSeconds += d.TransferSeconds
	s.WallSeconds += d.WallSeconds
}

// bufferSets is how many independent buffer sets each device holds. Two sets
// let the host encode batch N+1 while the kernel consumes batch N (the
// double-buffered streaming path); the system-configuration stage divides
// the memory budget accordingly.
const bufferSets = 2

// bufferSet is one independent group of unified-memory buffers plus the
// prefetch streams that drive its transfers. A set is owned by exactly one
// pipeline stage at a time: the encoder fills it, hands it to the launcher,
// and gets it back once the kernel's results have been decoded.
type bufferSet struct {
	readBuf *cuda.UMBuffer
	refBuf  *cuda.UMBuffer
	flagBuf *cuda.UMBuffer
	resBuf  *cuda.UMBuffer
	streams []*cuda.Stream
}

func (s *bufferSet) free() {
	if s == nil {
		return
	}
	for _, b := range []*cuda.UMBuffer{s.readBuf, s.refBuf, s.flagBuf, s.resBuf} {
		if b != nil {
			b.Free()
		}
	}
}

// deviceState is the per-device slice of the engine: double-buffered unified
// memory, one filter kernel per executor goroutine (the per-thread stack
// frames), and the scratch arrays of the host-side encode pool.
type deviceState struct {
	dev  *cuda.Device
	sys  SystemConfig
	sets [bufferSets]*bufferSet
	// Kernel-side scratch: per-worker kernels and word views used while
	// decoding packed input inside the simulated kernel.
	kernels   []*filter.Kernel
	readWords [][]uint64
	refWords  [][]uint64
	// Host-side encode-pool scratch, disjoint from the kernel scratch so the
	// encode of one buffer set can overlap the launch of the other.
	encWords [][]uint64
	// down marks the device quarantined: permanently failed (device lost)
	// or repeatedly faulting. Quarantine outlives the stream that imposed
	// it; every engine entry point skips down devices.
	down atomic.Bool
}

// Engine is a GateKeeper-GPU instance bound to a context of simulated
// devices. One engine drives all its devices concurrently inside FilterPairs
// and FilterStream. Engine methods are safe for concurrent use: Stats and
// ResetStats may be called at any time, and concurrent FilterPairs calls or
// streams serialize on the device buffers (a stream holds them for its whole
// lifetime). Many goroutines may produce into a single stream's input
// channel.
type Engine struct {
	cfg    Config
	ctx    *cuda.Context
	states []*deviceState
	ref    *reference // loaded by SetReference for the index-named path

	// runMu serializes buffer ownership: one FilterPairs call or one active
	// stream at a time. statsMu guards the accumulated measurements, which
	// are committed only after a round or stream completes without error,
	// and the last stream's terminal error.
	runMu     sync.Mutex
	statsMu   sync.Mutex
	stats     Stats
	streamErr error
}

// NewEngine configures buffers and kernels on every device of ctx for the
// given geometry, performing the paper's configuration and resource
// allocation stages. Each device receives two full buffer sets so the
// streaming path can overlap host encoding with kernel execution; the
// memory-derived batch capacity is halved accordingly (deliberately eager —
// allocation failures surface here, never mid-stream). Configurations
// bounded by MaxBatchPairs, the common case, are unaffected.
func NewEngine(cfg Config, ctx *cuda.Context) (*Engine, error) {
	cfg.applyDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ctx.NumDevices() == 0 {
		return nil, fmt.Errorf("gkgpu: context has no devices")
	}
	e := &Engine{cfg: cfg, ctx: ctx}
	for _, dev := range ctx.Devices() {
		sys := Configure(dev.Spec, cfg.ReadLen, cfg.MaxE, cfg.Encoding,
			cfg.ThreadsPerBlock, cfg.RegsPerThread, cfg.MaxBatchPairs)
		st := &deviceState{dev: dev, sys: sys}
		var seqBytes int
		if cfg.Encoding == EncodeOnDevice {
			seqBytes = cfg.ReadLen
		} else {
			seqBytes = bitvec.EncodedWords(cfg.ReadLen) * 8
		}
		for i := range st.sets {
			set, err := allocSet(dev, sys.BatchPairs, seqBytes)
			if err != nil {
				e.Close()
				return nil, err
			}
			st.sets[i] = set
		}
		workers := cuda.MaxWorkers(sys.BatchPairs)
		mode := filter.ModeGPU
		for w := 0; w < workers; w++ {
			st.kernels = append(st.kernels, filter.NewKernel(mode, cfg.ReadLen, cfg.MaxE))
			st.readWords = append(st.readWords, make([]uint64, bitvec.EncodedWords(cfg.ReadLen)))
			st.refWords = append(st.refWords, make([]uint64, bitvec.EncodedWords(cfg.ReadLen)))
			st.encWords = append(st.encWords, make([]uint64, bitvec.EncodedWords(cfg.ReadLen)))
		}
		e.states = append(e.states, st)
	}
	return e, nil
}

// allocSet allocates one buffer set on the device and applies the paper's
// memory advice: "the preferred location of the data is set to be the GPU
// device for the input buffers"; each buffer prefetches on its own stream.
func allocSet(dev *cuda.Device, batchPairs, seqBytes int) (*bufferSet, error) {
	set := &bufferSet{}
	var err error
	if set.readBuf, err = dev.AllocUnified(batchPairs * seqBytes); err != nil {
		set.free()
		return nil, fmt.Errorf("gkgpu: read buffer: %w", allocFault(dev, err))
	}
	if set.refBuf, err = dev.AllocUnified(batchPairs * seqBytes); err != nil {
		set.free()
		return nil, fmt.Errorf("gkgpu: reference buffer: %w", allocFault(dev, err))
	}
	if set.flagBuf, err = dev.AllocUnified(batchPairs); err != nil {
		set.free()
		return nil, fmt.Errorf("gkgpu: flag buffer: %w", allocFault(dev, err))
	}
	if set.resBuf, err = dev.AllocUnified(batchPairs * resultStride); err != nil {
		set.free()
		return nil, fmt.Errorf("gkgpu: result buffer: %w", allocFault(dev, err))
	}
	set.readBuf.Advise(cuda.AdvisePreferredDevice)
	set.refBuf.Advise(cuda.AdvisePreferredDevice)
	set.flagBuf.Advise(cuda.AdvisePreferredDevice)
	for i := 0; i < 3; i++ {
		set.streams = append(set.streams, dev.NewStream())
	}
	return set, nil
}

// Close releases every unified-memory buffer. It waits for an in-progress
// FilterPairs call or active stream to finish first, so buffers are never
// freed under a running kernel; cancel a stream's context (and let its
// result channel close) before calling Close if you are abandoning it.
func (e *Engine) Close() {
	e.runMu.Lock()
	defer e.runMu.Unlock()
	e.clearReference()
	for _, st := range e.states {
		for _, set := range st.sets {
			set.free()
		}
	}
	e.states = nil
}

// Config returns the engine's (defaulted) configuration.
func (e *Engine) Config() Config { return e.cfg }

// SystemConfigs returns the per-device configuration results.
func (e *Engine) SystemConfigs() []SystemConfig {
	out := make([]SystemConfig, len(e.states))
	for i, st := range e.states {
		out[i] = st.sys
	}
	return out
}

// Stats returns the accumulated measurements.
func (e *Engine) Stats() Stats {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	return e.stats
}

// ResetStats clears the accumulated measurements.
func (e *Engine) ResetStats() {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	e.stats = Stats{}
}

// commitStats merges a completed round's or stream's delta and refreshes the
// unified-memory migration gauges. Called only after every per-device error
// has been checked, so a failed round never inflates the counters.
func (e *Engine) commitStats(d Stats) {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	e.stats.add(d)
	e.stats.FaultMigrations = 0
	e.stats.PrefetchMigration = 0
	for _, st := range e.states {
		for _, set := range st.sets {
			f1, p1 := set.readBuf.MigrationStats()
			f2, p2 := set.refBuf.MigrationStats()
			e.stats.FaultMigrations += f1 + f2
			e.stats.PrefetchMigration += p1 + p2
		}
	}
}

// countDecisions folds a result slice into the Stats decision counters.
func (s *Stats) countDecisions(results []Result) {
	for i := range results {
		s.Pairs++
		switch {
		case results[i].Undefined:
			s.Undefined++
			s.Accepted++
		case results[i].Accept:
			s.Accepted++
		default:
			s.Rejected++
		}
	}
}

// kernelRecord is one device's modelled kernel execution, held back until a
// round's error check passes and then folded into the device telemetry.
type kernelRecord struct {
	dev      *cuda.Device
	kt, util float64
}

// roundClocks is the modelled timing of one multi-device round: the critical
// path across participating devices for each clock, plus the per-device
// kernel records.
type roundClocks struct {
	kernel, filter, prep, xfer float64
	records                    []kernelRecord
}

// modelRound evaluates one round's clocks on each participating device's
// actual spec and share, taking the max — "kernel time represents the time
// of the device which takes the longest".
func (e *Engine) modelRound(shares []int, w cuda.Workload) roundClocks {
	nActive := 0
	for _, s := range shares {
		if s > 0 {
			nActive++
		}
	}
	var rc roundClocks
	for di, st := range e.states {
		if shares[di] == 0 {
			continue
		}
		ws := w
		ws.Pairs = shares[di]
		dkt := e.cfg.Model.ShareKernelSeconds(st.dev.Spec, ws, nActive)
		dft := e.cfg.Model.ShareFilterSeconds(st.dev.Spec, ws, nActive, e.cfg.Setup.HostFactor)
		if dkt > rc.kernel {
			rc.kernel = dkt
		}
		if dft > rc.filter {
			rc.filter = dft
		}
		if p := e.cfg.Model.HostPrepSeconds(ws, e.cfg.Setup.HostFactor); p > rc.prep {
			rc.prep = p
		}
		if x := e.cfg.Model.TransferSeconds(st.dev.Spec, ws); x > rc.xfer {
			rc.xfer = x
		}
		rc.records = append(rc.records, kernelRecord{
			dev:  st.dev,
			kt:   dkt + e.cfg.Model.PerLaunchSeconds,
			util: e.cfg.Model.Utilization(st.dev.Spec, ws),
		})
	}
	rc.kernel += e.cfg.Model.PerLaunchSeconds
	rc.filter += e.cfg.Model.PerLaunchSeconds + e.cfg.Model.PerBatchHostSeconds
	return rc
}

// workload returns the cost-model workload shape for this engine at the
// given threshold and pair count.
func (e *Engine) workload(pairs, errThreshold int) cuda.Workload {
	return cuda.Workload{
		Pairs:         pairs,
		ReadLen:       e.cfg.ReadLen,
		E:             errThreshold,
		DeviceEncoded: e.cfg.Encoding == EncodeOnDevice,
	}
}

// roundShares splits a round of n pairs across the devices in proportion to
// each device's modelled filtration rate, capped by its batch capacity. For
// the paper's homogeneous contexts this degrades to the equal split of
// Section 3.1 ("the batch size is equal for all devices to ensure a fair
// workload"); a mixed Pascal/Kepler context hands the slower card
// proportionally fewer pairs so the round's critical path shrinks.
// Quarantined devices get zero weight, re-splitting the round across the
// survivors; callers guarantee at least one device is live.
func (e *Engine) roundShares(n int, w cuda.Workload) []int {
	nDev := len(e.states)
	shares := make([]int, nDev)
	if n <= 0 {
		return shares
	}
	weights := make([]float64, nDev)
	total := 0.0
	for i, st := range e.states {
		if st.down.Load() {
			continue
		}
		weights[i] = e.cfg.Model.PairRate(st.dev.Spec, w)
		total += weights[i]
	}
	// Largest-remainder apportionment keeps the split deterministic.
	type frac struct {
		i int
		f float64
	}
	fracs := make([]frac, nDev)
	assigned := 0
	for i := range shares {
		exact := float64(n) * weights[i] / total
		shares[i] = int(exact)
		assigned += shares[i]
		fracs[i] = frac{i, exact - float64(shares[i])}
	}
	sort.SliceStable(fracs, func(a, b int) bool { return fracs[a].f > fracs[b].f })
	for r := 0; r < n-assigned; r++ {
		shares[fracs[r%nDev].i]++
	}
	// Clamp to per-device capacity and push overflow to devices with spare
	// room; the caller guarantees n <= sum of capacities.
	overflow := 0
	for i, st := range e.states {
		if shares[i] > st.sys.BatchPairs {
			overflow += shares[i] - st.sys.BatchPairs
			shares[i] = st.sys.BatchPairs
		}
	}
	for i, st := range e.states {
		if overflow == 0 {
			break
		}
		if st.down.Load() {
			continue
		}
		if room := st.sys.BatchPairs - shares[i]; room > 0 {
			if room > overflow {
				room = overflow
			}
			shares[i] += room
			overflow -= room
		}
	}
	return shares
}

// liveRoundCap sums the batch capacities of non-quarantined devices: how
// many pairs one synchronized round can take.
func (e *Engine) liveRoundCap() int {
	cap := 0
	for _, st := range e.states {
		if st.down.Load() {
			continue
		}
		cap += st.sys.BatchPairs
	}
	return cap
}

// classifyRoundErrs resolves a one-shot round's per-device errors: the first
// failure is wrapped in the taxonomy, and a lost device is quarantined so
// later calls re-weight onto the survivors. The one-shot paths do not retry —
// the round already failed and the caller holds its inputs; FilterStream is
// the fault-tolerant path.
func (e *Engine) classifyRoundErrs(errs []error) error {
	for di, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, cuda.ErrDeviceLost) {
			e.states[di].down.Store(true)
		}
		return classifyFault(e.states[di].dev.ID, -1, 1, err)
	}
	return nil
}

// FilterPairs filters every pair at threshold e, batching across the
// context's devices as Section 3.1 describes, with the share of each device
// weighted by its modelled filtration rate. Results are returned in input
// order. The one-shot timing model matches the paper's measured pipeline
// (encode, transfer and kernel charged sequentially per round); FilterStream
// models and exercises the overlapped double-buffered pipeline instead.
func (e *Engine) FilterPairs(pairs []Pair, errThreshold int) ([]Result, error) {
	if errThreshold < 0 || errThreshold > e.cfg.MaxE {
		return nil, fmt.Errorf("gkgpu: threshold %d outside compiled [0,%d]", errThreshold, e.cfg.MaxE)
	}
	for i, p := range pairs {
		if len(p.Read) != e.cfg.ReadLen || len(p.Ref) != e.cfg.ReadLen {
			return nil, fmt.Errorf("gkgpu: pair %d has lengths %d/%d; engine compiled for %d",
				i, len(p.Read), len(p.Ref), e.cfg.ReadLen)
		}
	}
	// Rounds run under runMu by design: the devices are the contended
	// resource, and overlapping calls would interleave per-device batches.
	//gk:allow lockcheck: runMu intentionally serializes whole filtering rounds, including each round's wg.Wait
	e.runMu.Lock()
	defer e.runMu.Unlock()
	if len(e.states) == 0 {
		return nil, fmt.Errorf("gkgpu: engine is closed")
	}

	results := make([]Result, len(pairs))
	wallStart := time.Now()
	roundCap := e.liveRoundCap()
	if roundCap == 0 && len(pairs) > 0 {
		return nil, errAllQuarantined()
	}

	// Round stats and device telemetry accumulate locally and are committed
	// only after every per-device error has been checked, so a failed round
	// leaves the engine's counters untouched.
	var acc Stats
	var records []kernelRecord

	for off := 0; off < len(pairs); off += roundCap {
		end := off + roundCap
		if end > len(pairs) {
			end = len(pairs)
		}
		round := pairs[off:end]
		w := e.workload(len(round), errThreshold)
		shares := e.roundShares(len(round), w)
		var wg sync.WaitGroup
		errs := make([]error, len(e.states))
		lo := 0
		for di, st := range e.states {
			if shares[di] == 0 {
				continue
			}
			hi := lo + shares[di]
			wg.Add(1)
			go func(di int, st *deviceState, chunk []Pair, out []Result) {
				defer wg.Done()
				errs[di] = e.runBatch(st, st.sets[0], chunk, errThreshold, out)
			}(di, st, round[lo:hi], results[off+lo:off+hi])
			lo = hi
		}
		wg.Wait()
		if err := e.classifyRoundErrs(errs); err != nil {
			return nil, err
		}
		rc := e.modelRound(shares, w)
		acc.KernelSeconds += rc.kernel
		acc.FilterSeconds += rc.filter
		acc.HostPrepSeconds += rc.prep
		acc.TransferSeconds += rc.xfer
		acc.Batches++
		records = append(records, rc.records...)
	}

	acc.countDecisions(results)
	acc.WallSeconds = time.Since(wallStart).Seconds()
	for _, r := range records {
		r.dev.RecordKernel(r.kt, r.util)
	}
	e.commitStats(acc)
	return results, nil
}

// runBatch executes one device's share of a round on the given buffer set:
// fill unified buffers (preprocessing), advise/prefetch, launch, and decode
// the result buffer.
func (e *Engine) runBatch(st *deviceState, set *bufferSet, chunk []Pair, errThreshold int, out []Result) error {
	if len(chunk) == 0 {
		return nil
	}
	e.encodeChunk(st, set, chunk)
	e.prefetch(st, set)
	return e.launchDecode(st, set, len(chunk), errThreshold, out)
}

// encodeChunk performs the preprocessing stage for one batch: filling the
// unified buffers on the host, fanned out across the encode worker pool
// (each worker packs a contiguous slice of the batch with its own scratch
// words). A pair whose lengths do not match the compiled geometry is flagged
// undefined so the kernel skips it — FilterPairs rejects such pairs up
// front, but a stream must keep its slot to preserve ordering.
func (e *Engine) encodeChunk(st *deviceState, set *bufferSet, chunk []Pair) {
	n := len(chunk)
	L := e.cfg.ReadLen
	encWords := bitvec.EncodedWords(L)
	flags := set.flagBuf.Bytes()
	rb, fb := set.readBuf.Bytes(), set.refBuf.Bytes()

	workers := len(st.encWords)
	if workers > n {
		workers = n
	}
	stride := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		lo := wk * stride
		if lo >= n {
			break
		}
		hi := lo + stride
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(wk, lo, hi int) {
			defer wg.Done()
			if e.cfg.Encoding == EncodeOnDevice {
				for i := lo; i < hi; i++ {
					p := chunk[i]
					if len(p.Read) != L || len(p.Ref) != L {
						flags[i] = 1
						continue
					}
					copy(rb[i*L:], p.Read)
					copy(fb[i*L:], p.Ref)
					flags[i] = 0
				}
				return
			}
			words := st.encWords[wk]
			encodeInto := func(dst []byte, seq []byte) bool {
				// Encoding doubles as the 'N' scan: an unrecognized base is
				// the undefined condition, so each sequence is walked once
				// and no error value is allocated.
				if len(seq) != L || dna.TryEncodeInto(words, seq) >= 0 {
					return false
				}
				for w, v := range words {
					binary.LittleEndian.PutUint64(dst[w*8:], v)
				}
				return true
			}
			for i := lo; i < hi; i++ {
				p := chunk[i]
				okR := encodeInto(rb[i*encWords*8:(i+1)*encWords*8], p.Read)
				okF := encodeInto(fb[i*encWords*8:(i+1)*encWords*8], p.Ref)
				if okR && okF {
					flags[i] = 0
				} else {
					flags[i] = 1 // undefined: skip filtration in the kernel
				}
			}
		}(wk, lo, hi)
	}
	wg.Wait()

	if e.cfg.Encoding == EncodeOnDevice {
		set.readBuf.HostWrite(0, n*L)
		set.refBuf.HostWrite(0, n*L)
	} else {
		set.readBuf.HostWrite(0, n*encWords*8)
		set.refBuf.HostWrite(0, n*encWords*8)
	}
	set.flagBuf.HostWrite(0, n)
}

// prefetch submits each input buffer's migration on its own stream (no-ops
// on Kepler, where the kernel's first touch pays the fault path instead).
func (e *Engine) prefetch(st *deviceState, set *bufferSet) {
	set.readBuf.PrefetchAsync(set.streams[0])
	set.refBuf.PrefetchAsync(set.streams[1])
	set.flagBuf.PrefetchAsync(set.streams[2])
	if !st.dev.Spec.SupportsPrefetch() {
		// On-demand migration when the kernel touches the buffers.
		set.readBuf.DeviceTouch(0, set.readBuf.Len())
		set.refBuf.DeviceTouch(0, set.refBuf.Len())
	}
}

// launchDecode launches the filtration kernel over an encoded buffer set and
// decodes the result buffer into out.
func (e *Engine) launchDecode(st *deviceState, set *bufferSet, n, errThreshold int, out []Result) error {
	L := e.cfg.ReadLen
	encWords := bitvec.EncodedWords(L)
	flags := set.flagBuf.Bytes()
	res := set.resBuf.Bytes()
	lc := st.sys.Launch
	if need := (n + lc.ThreadsPerBlock - 1) / lc.ThreadsPerBlock; need < lc.Blocks {
		lc.Blocks = need // ragged final batch
	}
	err := st.dev.Launch(lc, n, func(worker, tid int) {
		var r Result
		if flags[tid] == 1 {
			r = Result{Accept: true, Undefined: true}
		} else if e.cfg.Encoding == EncodeOnDevice {
			d, ferr := st.kernels[worker].FilterChecked(
				set.readBuf.Bytes()[tid*L:(tid+1)*L],
				set.refBuf.Bytes()[tid*L:(tid+1)*L],
				errThreshold)
			if ferr != nil {
				r = Result{Accept: true} // defensive: pass to verification
			} else {
				r = Result{Accept: d.Accept, Undefined: d.Undefined, Estimate: uint16(d.Estimate)}
			}
		} else {
			rw, fw := st.readWords[worker], st.refWords[worker]
			rb := set.readBuf.Bytes()[tid*encWords*8:]
			fb := set.refBuf.Bytes()[tid*encWords*8:]
			for w := 0; w < encWords; w++ {
				rw[w] = binary.LittleEndian.Uint64(rb[w*8:])
				fw[w] = binary.LittleEndian.Uint64(fb[w*8:])
			}
			est, accept := st.kernels[worker].FilterEncoded(rw, fw, errThreshold)
			r = Result{Accept: accept, Estimate: uint16(est)}
		}
		base := tid * resultStride
		if r.Accept {
			res[base] = 1
		} else {
			res[base] = 0
		}
		if r.Undefined {
			res[base+1] = 1
		} else {
			res[base+1] = 0
		}
		binary.LittleEndian.PutUint16(res[base+2:], r.Estimate)
	})
	if err != nil {
		return err
	}

	// The host reads results back through the shared pointer — the batch's
	// only synchronization point (Section 3.5).
	set.resBuf.HostWrite(0, n*resultStride)
	for i := range out {
		base := i * resultStride
		out[i] = Result{
			Accept:    res[base] == 1,
			Undefined: res[base+1] == 1,
			Estimate:  binary.LittleEndian.Uint16(res[base+2:]),
		}
	}
	return nil
}
