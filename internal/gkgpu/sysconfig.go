package gkgpu

import (
	"repro/internal/bitvec"
	"repro/internal/cuda"
)

// SystemConfig is the output of the configuration stage (Section 3.1):
// GateKeeper-GPU "recognizes system specifications beforehand to allocate
// memory wisely", computing the approximate memory load of one filtration
// on a thread and the number of filtrations per kernel call that fully
// utilizes the GPU while keeping host-device transfers minimal.
type SystemConfig struct {
	// ThreadLoadBytes approximates one filtration's working set: the
	// per-thread stack frame (bitmask arrays) plus its slice of the input
	// and result buffers.
	ThreadLoadBytes int
	// BufferBytesPerPair is the unified-memory footprint per filtration.
	BufferBytesPerPair int
	// BatchPairs is the number of filtrations per kernel call per device.
	BatchPairs int
	// Launch is the kernel geometry for a full batch.
	Launch cuda.LaunchConfig
	// Prefetch reports whether memory advice and async prefetching will be
	// used (compute capability 6.x+).
	Prefetch bool
}

// Configure runs the system-configuration stage for one device and
// geometry. readLen and maxE are the compile-time constants; encoding
// selects the buffer layout (raw bytes for device encoding, packed words
// for host encoding).
func Configure(spec cuda.DeviceSpec, readLen, maxE int, encoding EncodingActor,
	threadsPerBlock, regsPerThread, maxBatchPairs int) SystemConfig {

	encWords := bitvec.EncodedWords(readLen)
	maskWords := bitvec.MaskWords(readLen)

	// Stack frame: two encoded-domain buffers (the raw-byte path's encode
	// targets) plus the accumulated final mask, mirroring filter.Kernel's
	// allocation — the fused pipeline carries the per-mask intermediate
	// state in registers, so the old shift/XOR/amendment scratch slices are
	// gone (64-bit words, 8 bytes each).
	threadLoad := 2*encWords*8 + maskWords*8

	var perPair int
	if encoding == EncodeOnDevice {
		perPair = 2*readLen + 2 + resultStride // raw read+ref, flags, result
	} else {
		perPair = 2*encWords*8 + 2 + resultStride // packed read+ref, flags, result
	}
	threadLoad += perPair

	// Batch size: fill 80% of free global memory with pair buffers, leaving
	// headroom for the driver and per-thread stacks; divide by the number of
	// buffer sets the engine allocates (double buffering for the streaming
	// path); cap to the caller's simulation bound; round down to a whole
	// number of blocks so the last block is the only ragged one.
	budget := int64(float64(spec.GlobalMemBytes) * 0.8 / bufferSets)
	batch := int(budget / int64(perPair))
	if maxBatchPairs > 0 && batch > maxBatchPairs {
		batch = maxBatchPairs
	}
	if batch < 1 {
		batch = 1
	}
	blocks := (batch + threadsPerBlock - 1) / threadsPerBlock

	return SystemConfig{
		ThreadLoadBytes:    threadLoad,
		BufferBytesPerPair: perPair,
		BatchPairs:         batch,
		Launch: cuda.LaunchConfig{
			Blocks:          blocks,
			ThreadsPerBlock: threadsPerBlock,
			RegsPerThread:   regsPerThread,
		},
		Prefetch: spec.SupportsPrefetch(),
	}
}
