package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTally(t *testing.T) {
	outcomes := []Outcome{
		{TrueWithin: true, Accept: true},   // true accept
		{TrueWithin: false, Accept: true},  // false accept
		{TrueWithin: true, Accept: false},  // false reject
		{TrueWithin: false, Accept: false}, // true reject
		{TrueWithin: false, Accept: false}, // true reject
	}
	c := Tally(outcomes)
	if c.Pairs != 5 || c.EdlibAccepts != 2 || c.EdlibRejects != 3 {
		t.Fatalf("ground-truth counts wrong: %+v", c)
	}
	if c.FilterAccepts != 2 || c.FilterRejects != 3 {
		t.Fatalf("filter counts wrong: %+v", c)
	}
	if c.FalseAccepts != 1 || c.FalseRejects != 1 || c.TrueRejects != 2 {
		t.Fatalf("confusion wrong: %+v", c)
	}
	if got := c.FalseAcceptRate(); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Fatalf("FalseAcceptRate = %v", got)
	}
	if got := c.TrueRejectRate(); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("TrueRejectRate = %v", got)
	}
}

func TestConfusionInvariantsQuick(t *testing.T) {
	f := func(raw []byte) bool {
		var c Confusion
		for _, b := range raw {
			c.Add(Outcome{TrueWithin: b&1 == 1, Accept: b&2 == 2})
		}
		if c.EdlibAccepts+c.EdlibRejects != c.Pairs {
			return false
		}
		if c.FilterAccepts+c.FilterRejects != c.Pairs {
			return false
		}
		// FA + TR = Edlib rejects; FR + true accepts = Edlib accepts.
		if c.FalseAccepts+c.TrueRejects != c.EdlibRejects {
			return false
		}
		return c.FalseAcceptRate() >= 0 && c.FalseAcceptRate() <= 1 &&
			c.TrueRejectRate() >= 0 && c.TrueRejectRate() <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyConfusionRates(t *testing.T) {
	var c Confusion
	if c.FalseAcceptRate() != 0 || c.TrueRejectRate() != 0 {
		t.Fatal("empty tally should have zero rates")
	}
}

func TestThroughputConversions(t *testing.T) {
	// 30M pairs in 0.29s -> 103.4M pairs/s -> 248 billion per 40 min
	// (Table S.13's 244.8 band).
	b := PairsPer40MinBillions(30_000_000, 0.29)
	if b < 200 || b < 240 || b > 260 {
		t.Fatalf("PairsPer40MinBillions = %.1f, want ~248", b)
	}
	m := MillionPairsPerSecond(30_000_000, 0.29)
	if m < 100 || m > 107 {
		t.Fatalf("MillionPairsPerSecond = %.1f, want ~103.4", m)
	}
	if PairsPer40MinBillions(10, 0) != 0 || MillionPairsPerSecond(10, -1) != 0 {
		t.Fatal("degenerate durations must yield zero")
	}
}

func TestSpeedup(t *testing.T) {
	if Speedup(10, 5) != 2 {
		t.Fatal("Speedup(10,5) != 2")
	}
	if Speedup(10, 0) != 0 {
		t.Fatal("zero denominator not guarded")
	}
}

func TestFmtInt(t *testing.T) {
	cases := map[int64]string{
		0:          "0",
		5:          "5",
		999:        "999",
		1000:       "1,000",
		29895597:   "29,895,597",
		-1234567:   "-1,234,567",
		1000000000: "1,000,000,000",
	}
	for n, want := range cases {
		if got := FmtInt(n); got != want {
			t.Errorf("FmtInt(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestFmtPct(t *testing.T) {
	if got := FmtPct(0.0853); got != "8.53%" {
		t.Fatalf("FmtPct = %q", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("e", "False Accepts", "Rate")
	tb.Add("0", "0", "0.00%")
	tb.AddF("%d\t%s\t%s", 5, FmtInt(2508272), FmtPct(0.0853))
	out := tb.String()
	if !strings.Contains(out, "False Accepts") {
		t.Fatal("missing header")
	}
	if !strings.Contains(out, "2,508,272") {
		t.Fatalf("missing formatted cell:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
	// Short rows pad out.
	tb2 := NewTable("a", "b")
	tb2.Add("only")
	if !strings.Contains(tb2.String(), "only") {
		t.Fatal("short row lost")
	}
}
