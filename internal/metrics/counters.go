package metrics

import "sync/atomic"

// Counter is a monotonically increasing event counter safe for concurrent
// use on the hot paths gklint guards: its methods are annotated
// //gk:noalloc, so instrumentation can never re-introduce allocation on the
// paths it observes.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
//
//gk:noalloc
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
//
//gk:noalloc
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
//
//gk:noalloc
func (c *Counter) Load() uint64 { return c.v.Load() }

// Reset zeroes the counter (test and per-run bookkeeping only; not a hot
// path).
func (c *Counter) Reset() { c.v.Store(0) }

// Package-level counters for the gklint-guarded hot-path entry points. They
// count work items, not wall time: one Filtrations per kernel invocation,
// one SeedLookups per k-mer probe of the CSR index, one ContigLocates per
// global-to-contig coordinate translation.
var (
	Filtrations   Counter
	SeedLookups   Counter
	ContigLocates Counter
)
