// Package metrics implements the paper's evaluation arithmetic: the
// false-accept / false-reject / true-reject accounting of Section 4.4
// (against Edlib ground truth) and the filtering-throughput conversions of
// Section 4.3 ("the total number of pairs that can be filtered in 40
// minutes"), plus a small fixed-width table renderer for the harness.
package metrics

import (
	"fmt"
	"strings"
)

// Outcome couples a pair's exact edit distance with a filter's decision.
// For undefined pairs the paper's first accuracy protocol treats both Edlib
// and the filter as accepting; callers encode that by setting Accept=true
// and TrueWithin=true.
type Outcome struct {
	TrueWithin bool // Edlib distance <= threshold (ground-truth accept)
	Accept     bool // filter decision
}

// Confusion is the tally of Section 4.4: "a false accept represents a pair
// that Edlib rejects ... but is accepted by the filter. On the contrary, a
// false reject case is a valid pair ... rejected by the filter. True rejects
// are the pairs that are rejected by both."
type Confusion struct {
	Pairs         int64
	EdlibAccepts  int64
	EdlibRejects  int64
	FilterAccepts int64
	FilterRejects int64
	FalseAccepts  int64
	FalseRejects  int64
	TrueRejects   int64
}

// Tally folds outcomes into a confusion tally.
func Tally(outcomes []Outcome) Confusion {
	var c Confusion
	for _, o := range outcomes {
		c.Add(o)
	}
	return c
}

// Add folds one outcome into the tally.
func (c *Confusion) Add(o Outcome) {
	c.Pairs++
	if o.TrueWithin {
		c.EdlibAccepts++
	} else {
		c.EdlibRejects++
	}
	if o.Accept {
		c.FilterAccepts++
	} else {
		c.FilterRejects++
	}
	switch {
	case o.Accept && !o.TrueWithin:
		c.FalseAccepts++
	case !o.Accept && o.TrueWithin:
		c.FalseRejects++
	case !o.Accept && !o.TrueWithin:
		c.TrueRejects++
	}
}

// FalseAcceptRate is "the percentage of the number of falsely accepted
// pairs by the filter over the number of rejected pairs by Edlib".
func (c Confusion) FalseAcceptRate() float64 {
	if c.EdlibRejects == 0 {
		return 0
	}
	return float64(c.FalseAccepts) / float64(c.EdlibRejects)
}

// TrueRejectRate is "the percentage of the number of correctly rejected
// pairs over the total number of rejected pairs by Edlib".
func (c Confusion) TrueRejectRate() float64 {
	if c.EdlibRejects == 0 {
		return 0
	}
	return float64(c.TrueRejects) / float64(c.EdlibRejects)
}

// Throughput conversions -----------------------------------------------

// fortyMinutes is the paper's throughput window, in seconds.
const fortyMinutes = 40 * 60

// PairsPer40MinBillions converts a measured rate into the paper's headline
// unit: billions of filtrations in 40 minutes.
func PairsPer40MinBillions(pairs int64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(pairs) / seconds * fortyMinutes / 1e9
}

// MillionPairsPerSecond converts a measurement to the figures' unit.
func MillionPairsPerSecond(pairs int64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(pairs) / seconds / 1e6
}

// Speedup returns base/improved, guarding zero.
func Speedup(baseSeconds, improvedSeconds float64) float64 {
	if improvedSeconds <= 0 {
		return 0
	}
	return baseSeconds / improvedSeconds
}

// Formatting helpers -----------------------------------------------------

// FmtInt renders an integer with thousands separators, as the paper's
// tables do (e.g. 29,895,597).
func FmtInt(n int64) string {
	s := fmt.Sprintf("%d", n)
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var sb strings.Builder
	for i, c := range s {
		if i > 0 && (len(s)-i)%3 == 0 {
			sb.WriteByte(',')
		}
		sb.WriteRune(c)
	}
	if neg {
		return "-" + sb.String()
	}
	return sb.String()
}

// FmtPct renders a ratio as a percentage with two decimals.
func FmtPct(x float64) string { return fmt.Sprintf("%.2f%%", 100*x) }

// Table is a minimal fixed-width table renderer for harness output.
type Table struct {
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table { return &Table{Headers: headers} }

// Add appends a row; short rows are padded with empty cells.
func (t *Table) Add(cells ...string) {
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddF appends a row of formatted values.
func (t *Table) AddF(format string, args ...any) {
	t.Add(strings.Split(fmt.Sprintf(format, args...), "\t")...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total-2))
	sb.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}
