// Package ref32 preserves the original 32-bit-word GateKeeper pipeline —
// the 2-bit codec (16 bases per 32-bit word), the carry-transfer bitvector
// operations, and the unfused six-pass filtration chain — exactly as the
// reproduction implemented it before the 64-bit fused kernel replaced it in
// the hot path.
//
// It exists for two reasons. First, as the differential reference model:
// the property and fuzz tests in internal/filter run every pair through
// both pipelines and require bit-identical decisions, so any carry-transfer
// or fusion bug in the 64-bit kernel is caught against this retained
// implementation rather than only against the per-character oracle. Second,
// as the measured pre-optimization baseline: the kernel benchmarks time
// this chain next to the fused kernel, which keeps the claimed speedup
// reproducible from the repository alone.
//
// Nothing here is a hot path; clarity and fidelity to the replaced code win
// over speed.
package ref32

import (
	"fmt"
	"math/bits"
)

// BasesPerWord is the number of 2-bit encoded bases per 32-bit word ("a
// 16-character window is encoded into an unsigned integer").
const BasesPerWord = 16

// CharsPerMaskWord is the number of bases per 32-bit mask word.
const CharsPerMaskWord = 32

// EncodedWords returns the number of encoded words for n bases.
func EncodedWords(n int) int { return (n + BasesPerWord - 1) / BasesPerWord }

// MaskWords returns the number of mask words for n bases.
func MaskWords(n int) int { return (n + CharsPerMaskWord - 1) / CharsPerMaskWord }

// codeTable maps an ASCII byte to its 2-bit code, or 0xFF for anything
// unrecognized — identical to the dna package's table.
var codeTable [256]byte

func init() {
	for i := range codeTable {
		codeTable[i] = 0xFF
	}
	for code, b := range [4]byte{'A', 'C', 'G', 'T'} {
		codeTable[b] = byte(code)
		codeTable[b+'a'-'A'] = byte(code)
	}
}

// Encode packs seq into the original layout: 2-bit codes, 16 bases per
// 32-bit word, base i at bits [2i mod 32, 2i mod 32 + 1] of word i/16.
func Encode(seq []byte) ([]uint32, error) {
	words := make([]uint32, EncodedWords(len(seq)))
	for i, b := range seq {
		c := codeTable[b]
		if c == 0xFF {
			return nil, fmt.Errorf("ref32: unrecognized base %q at position %d", b, i)
		}
		words[i/BasesPerWord] |= uint32(c) << uint((i%BasesPerWord)*2)
	}
	return words, nil
}

// shiftBitsUp is the original little-endian left shift with per-boundary
// carry-bit transfers.
func shiftBitsUp(dst, src []uint32, n uint) {
	wordShift := int(n / 32)
	bitShift := n % 32
	for i := len(dst) - 1; i >= 0; i-- {
		var w uint32
		if j := i - wordShift; j >= 0 {
			w = src[j] << bitShift
			if bitShift != 0 && j-1 >= 0 {
				w |= src[j-1] >> (32 - bitShift)
			}
		}
		dst[i] = w
	}
}

// shiftBitsDown is the original little-endian right shift with carries.
func shiftBitsDown(dst, src []uint32, n uint) {
	wordShift := int(n / 32)
	bitShift := n % 32
	for i := 0; i < len(dst); i++ {
		var w uint32
		if j := i + wordShift; j < len(src) {
			w = src[j] >> bitShift
			if bitShift != 0 && j+1 < len(src) {
				w |= src[j+1] << (32 - bitShift)
			}
		}
		dst[i] = w
	}
}

// extractEven compresses the 16 even-indexed bits of x into the low 16 bits.
func extractEven(x uint32) uint32 {
	x &= 0x55555555
	x = (x | x>>1) & 0x33333333
	x = (x | x>>2) & 0x0F0F0F0F
	x = (x | x>>4) & 0x00FF00FF
	x = (x | x>>8) & 0x0000FFFF
	return x
}

// collapse reduces an encoded-domain XOR result to a character mask.
func collapse(dst, src []uint32) {
	for m := range dst {
		lo2 := 2 * m
		var low, high uint32
		if lo2 < len(src) {
			w := src[lo2]
			low = extractEven(w | w>>1)
		}
		if lo2+1 < len(src) {
			w := src[lo2+1]
			high = extractEven(w | w>>1)
		}
		dst[m] = low | high<<16
	}
}

// setLeadingOnes forces the k lowest mask bits to 1 (the GPU-mode edge fix).
func setLeadingOnes(mask []uint32, k int) {
	for i := 0; i < len(mask) && k > 0; i++ {
		if k >= 32 {
			mask[i] = ^uint32(0)
			k -= 32
			continue
		}
		mask[i] |= (uint32(1) << uint(k)) - 1
		return
	}
}

// setTrailingOnes forces the k highest in-range bits of an n-base mask to 1.
func setTrailingOnes(mask []uint32, n, k int) {
	if k > n {
		k = n
	}
	for pos := n - k; pos < n; {
		w := pos / 32
		b := uint(pos % 32)
		remaining := n - pos
		width := 32 - int(b)
		if width > remaining {
			width = remaining
		}
		var m uint32
		if width >= 32 {
			m = ^uint32(0)
		} else {
			m = ((uint32(1) << uint(width)) - 1) << b
		}
		mask[w] |= m
		pos += width
	}
}

// clearLeading zeroes the k lowest mask bits (the FPGA/SHD behaviour).
func clearLeading(mask []uint32, k int) {
	for i := 0; i < len(mask) && k > 0; i++ {
		if k >= 32 {
			mask[i] = 0
			k -= 32
			continue
		}
		mask[i] &^= (uint32(1) << uint(k)) - 1
		return
	}
}

// clearTrailing zeroes the k highest in-range bits of an n-base mask.
func clearTrailing(mask []uint32, n, k int) {
	if k > n {
		k = n
	}
	for pos := n - k; pos < n; {
		w := pos / 32
		b := uint(pos % 32)
		remaining := n - pos
		width := 32 - int(b)
		if width > remaining {
			width = remaining
		}
		var m uint32
		if width >= 32 {
			m = ^uint32(0)
		} else {
			m = ((uint32(1) << uint(width)) - 1) << b
		}
		mask[w] &^= m
		pos += width
	}
}

// clearTail zeroes every mask bit at position >= n.
func clearTail(mask []uint32, n int) {
	w := n / 32
	b := uint(n % 32)
	if w < len(mask) && b != 0 {
		mask[w] &= (uint32(1) << b) - 1
		w++
	}
	for ; w < len(mask); w++ {
		mask[w] = 0
	}
}

// amend fills zero streaks of length 1-2 flanked by 1s, via the original
// shift-and-combine passes.
func amend(dst, src []uint32, n int, up1, dn1, dn2 []uint32) {
	shiftBitsUp(up1, src, 1)
	shiftBitsDown(dn1, src, 1)
	for i := range dst {
		dst[i] = src[i] | (up1[i] & dn1[i])
	}
	shiftBitsUp(up1, dst, 1)
	shiftBitsDown(dn2, dst, 2)
	for i := range dn1 {
		dn1[i] = up1[i] & dn2[i]
	}
	shiftBitsUp(dn2, dn1, 1)
	for i := range dst {
		dst[i] |= dn1[i] | dn2[i]
	}
	clearTail(dst, n)
}

// countWindows is the original windowed-LUT error counter: non-overlapping
// 4-bit windows, each window with any 1 costs one error.
func countWindows(mask []uint32, n int) int {
	total := 0
	for pos := 0; pos < n; pos += 4 {
		w := mask[pos/32]
		nib := int(w>>uint(pos%32)) & 0xF
		if width := n - pos; width < 4 {
			nib &= (1 << uint(width)) - 1
		}
		if nib != 0 {
			total++
		}
	}
	return total
}

// countRuns counts maximal 1-runs (the run-counting ablation's counter).
func countRuns(mask []uint32, n int) int {
	total := 0
	var prevTop uint32
	full := n / 32
	for i := 0; i < full; i++ {
		m := mask[i]
		starts := m &^ (m<<1 | prevTop)
		total += bits.OnesCount32(starts)
		prevTop = m >> 31
	}
	if rem := uint(n % 32); rem != 0 {
		m := mask[full] & ((uint32(1) << rem) - 1)
		starts := m &^ (m<<1 | prevTop)
		total += bits.OnesCount32(starts)
	}
	return total
}

// Kernel is the original unfused GateKeeper kernel: one fixed geometry, all
// scratch pre-allocated, six full-array passes per mask. gpuMode selects the
// improved edge treatment (forced 1s) over the FPGA/SHD behaviour (vacated
// zeros). It is not safe for concurrent use.
type Kernel struct {
	gpuMode bool
	readLen int

	// Ablation switches mirroring filter.Ablation, so ablated variants of
	// the fused kernel can be diffed too.
	SkipAmendment bool
	CountRuns     bool

	encWords  int
	maskWords int

	readEnc, refEnc   []uint32
	shifted, xorBuf   []uint32
	charMask, amended []uint32
	final             []uint32
	amendUp, amendDn  []uint32
	amendDn2          []uint32
}

// NewKernel builds a reference kernel for reads of length readLen.
func NewKernel(gpuMode bool, readLen int) *Kernel {
	ew := EncodedWords(readLen)
	mw := MaskWords(readLen)
	return &Kernel{
		gpuMode:   gpuMode,
		readLen:   readLen,
		encWords:  ew,
		maskWords: mw,
		readEnc:   make([]uint32, ew),
		refEnc:    make([]uint32, ew),
		shifted:   make([]uint32, ew),
		xorBuf:    make([]uint32, ew),
		charMask:  make([]uint32, mw),
		amended:   make([]uint32, mw),
		final:     make([]uint32, mw),
		amendUp:   make([]uint32, mw),
		amendDn:   make([]uint32, mw),
		amendDn2:  make([]uint32, mw),
	}
}

// amendOrCopy applies the amendment unless ablated away.
func (k *Kernel) amendOrCopy(dst, src []uint32, n int) {
	if k.SkipAmendment {
		copy(dst, src)
		return
	}
	amend(dst, src, n, k.amendUp, k.amendDn, k.amendDn2)
}

// FilterEncoded runs one filtration on pre-encoded (32-bit layout)
// sequences: the original shift → XOR → collapse → clear-tail → amend →
// edge-force → AND chain, with the exact windowed estimate computed after
// all 2e+1 masks.
func (k *Kernel) FilterEncoded(readEnc, refEnc []uint32, e int) (estimate int, accept bool) {
	L := k.readLen
	for i := range k.xorBuf {
		k.xorBuf[i] = readEnc[i] ^ refEnc[i]
	}
	collapse(k.charMask, k.xorBuf)
	clearTail(k.charMask, L)

	if e == 0 {
		est := countWindows(k.charMask, L)
		return est, est == 0
	}

	k.amendOrCopy(k.final, k.charMask, L)

	for shift := 1; shift <= e; shift++ {
		// Deletion mask: read shifted towards higher positions.
		shiftBitsUp(k.shifted, readEnc, uint(2*shift))
		for i := range k.xorBuf {
			k.xorBuf[i] = k.shifted[i] ^ refEnc[i]
		}
		collapse(k.charMask, k.xorBuf)
		clearTail(k.charMask, L)
		k.amendOrCopy(k.amended, k.charMask, L)
		if k.gpuMode {
			setLeadingOnes(k.amended, shift)
		} else {
			clearLeading(k.amended, shift)
		}
		for i := range k.final {
			k.final[i] &= k.amended[i]
		}

		// Insertion mask: read shifted towards lower positions.
		shiftBitsDown(k.shifted, readEnc, uint(2*shift))
		for i := range k.xorBuf {
			k.xorBuf[i] = k.shifted[i] ^ refEnc[i]
		}
		collapse(k.charMask, k.xorBuf)
		clearTail(k.charMask, L)
		k.amendOrCopy(k.amended, k.charMask, L)
		if k.gpuMode {
			setTrailingOnes(k.amended, L, shift)
		} else {
			clearTrailing(k.amended, L, shift)
		}
		for i := range k.final {
			k.final[i] &= k.amended[i]
		}
	}

	if k.CountRuns {
		estimate = countRuns(k.final, L)
	} else {
		estimate = countWindows(k.final, L)
	}
	return estimate, estimate <= e
}

// Filter runs one filtration on raw sequences, encoding into the kernel's
// scratch first. Sequences must be clean (no 'N') and of the configured
// length; it panics otherwise, as the reference model is only ever driven
// by tests and benchmarks that guarantee both.
func (k *Kernel) Filter(read, ref []byte, e int) (estimate int, accept bool) {
	if len(read) != k.readLen || len(ref) != k.readLen {
		panic(fmt.Sprintf("ref32: kernel configured for length %d, got read=%d ref=%d",
			k.readLen, len(read), len(ref)))
	}
	encodeInto(k.readEnc, read)
	encodeInto(k.refEnc, ref)
	return k.FilterEncoded(k.readEnc, k.refEnc, e)
}

func encodeInto(words []uint32, seq []byte) {
	for i := range words {
		words[i] = 0
	}
	for i, b := range seq {
		c := codeTable[b]
		if c == 0xFF {
			panic(fmt.Sprintf("ref32: unrecognized base %q at position %d", b, i))
		}
		words[i/BasesPerWord] |= uint32(c) << uint((i%BasesPerWord)*2)
	}
}
