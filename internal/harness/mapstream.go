package harness

import (
	"fmt"
	"runtime"

	"repro/internal/cuda"
	"repro/internal/gkgpu"
	"repro/internal/mapper"
	"repro/internal/metrics"
	"repro/internal/simdata"
)

func init() {
	register(Experiment{
		ID:       "mapstream",
		PaperRef: "beyond the paper (Section 3.5 integration, taken asynchronous)",
		Title:    "One-shot vs streaming end-to-end mapping (wall seconds)",
		Run:      runMapStream,
	})
}

// runMapStream compares the paper's phase-by-phase mapping pipeline
// (MapReads: seed, filter, verify in sequence) against the streaming mapper
// (MapStream: a seeding pool feeding the engine's candidate stream, with
// concurrent verification) on the same simulated whole-genome workload.
// Both paths execute the same filtrations and verifications; the mappings
// are checked byte-identical, and the wall clocks show what the pipeline
// overlap (plus the parallel verification pool it enables) buys.
func runMapStream(o Options) error {
	const genomeLen, e, L = 300_000, 5, 100
	nReads := o.scaled(1_500)
	cfg := simdata.DefaultGenomeConfig(genomeLen)
	cfg.Seed = o.Seed
	genome := simdata.Genome(cfg)
	reads, err := simdata.SimulateReads(genome, simdata.Illumina100, nReads, o.Seed+1)
	if err != nil {
		return err
	}
	seqs := make([][]byte, len(reads))
	for i, r := range reads {
		seqs[i] = r.Seq
	}

	// Zero the per-launch and per-batch overheads, as the gkgpu streaming
	// tests do: at paper scale compute dominates the launch cost, and the
	// filter-clock comparison must isolate the overlap model rather than
	// how the linger window happened to fragment a trickling candidate
	// stream into batches (with zero constants the modelled clocks are
	// partition-independent).
	model := cuda.DefaultCostModel()
	model.PerLaunchSeconds = 0
	model.PerBatchHostSeconds = 0
	mk := func() (*mapper.Mapper, *gkgpu.Engine, error) {
		eng, err := gkgpu.NewEngine(gkgpu.Config{
			ReadLen: L, MaxE: e, Encoding: gkgpu.EncodeOnHost, MaxBatchPairs: 1 << 15,
			Model: model,
		}, cuda.NewUniformContext(1, cuda.GTX1080Ti()))
		if err != nil {
			return nil, nil, err
		}
		m, err := mapper.New(genome, mapper.Config{ReadLen: L, MaxE: e, SeedLen: 9, Filter: eng})
		if err != nil {
			eng.Close()
			return nil, nil, err
		}
		return m, eng, nil
	}

	oneShot, eng1, err := mk()
	if err != nil {
		return err
	}
	want, osStats, err := oneShot.MapReads(seqs, e)
	eng1.Close()
	if err != nil {
		return err
	}

	stream, eng2, err := mk()
	if err != nil {
		return err
	}
	got, ssStats, err := stream.MapStream(seqs, e)
	eng2.Close()
	if err != nil {
		return err
	}
	if len(got) != len(want) {
		return fmt.Errorf("mapstream: streaming produced %d mappings, one-shot %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("mapstream: mapping %d drifted: stream %+v one-shot %+v", i, got[i], want[i])
		}
	}

	fmt.Fprintf(o.Out, "%d reads, %d candidates, e=%d, %d workers (GOMAXPROCS)\n\n",
		nReads, osStats.CandidatePairs, e, runtime.GOMAXPROCS(0))
	// The paper's accounting (as in Table 5): the filtering cost a real
	// deployment adds to the pipeline is the modelled device time, so
	// filter+verify compares modelled filter seconds plus the DP wall.
	osFV := osStats.FilterModelSeconds + osStats.VerifySeconds
	ssFV := ssStats.FilterModelSeconds + ssStats.VerifySeconds
	// One formula for both rows' serial decomposition — seed + modelled
	// filter + verify — so the column compares like with like (the one-shot
	// path's StageSeconds would otherwise use the simulated kernel's host
	// wall, a different clock than the streaming row's).
	stage := func(s mapper.Stats) float64 {
		return s.SeedSeconds + s.FilterModelSeconds + s.VerifySeconds
	}
	tb := metrics.NewTable("path", "filter model (s)", "filter+verify (s)", "total wall (s)",
		"stage seconds (serial)", "overlap hidden (s)")
	tb.Add("one-shot MapReads",
		fmt.Sprintf("%.4f", osStats.FilterModelSeconds),
		fmt.Sprintf("%.4f", osFV),
		fmt.Sprintf("%.3f", osStats.TotalSeconds),
		fmt.Sprintf("%.3f", stage(osStats)),
		"NA")
	tb.Add("streaming MapStream",
		fmt.Sprintf("%.4f", ssStats.FilterModelSeconds),
		fmt.Sprintf("%.4f", ssFV),
		fmt.Sprintf("%.3f", ssStats.TotalSeconds),
		fmt.Sprintf("%.3f", stage(ssStats)),
		fmt.Sprintf("%.3f", ssStats.OverlapSeconds()))
	fmt.Fprint(o.Out, tb.String())
	fmt.Fprintf(o.Out, "\nfilter+verify speedup (streaming over one-shot): %.2fx\n", osFV/ssFV)
	fmt.Fprintf(o.Out, "whole-pipeline wall speedup: %.2fx (real wall; needs spare cores to exceed 1)\n",
		osStats.TotalSeconds/ssStats.PipelineWallSeconds)

	// Enforce the win where it is deterministic: whatever the batch
	// partition, the double-buffered stream charges max(encode, device)
	// per batch where the one-shot rounds charge the sum, so the streaming
	// filter clock is strictly below the one-shot clock for any non-empty
	// workload. The real wall-clock win additionally needs spare cores to
	// overlap on, so it is enforced only on parallel hosts.
	if osStats.CandidatePairs > 0 && ssStats.FilterModelSeconds >= osStats.FilterModelSeconds {
		return fmt.Errorf("mapstream: streaming filter clock %.4fs not below one-shot %.4fs",
			ssStats.FilterModelSeconds, osStats.FilterModelSeconds)
	}
	if nReads >= 1_000 && runtime.GOMAXPROCS(0) >= 4 && ssStats.PipelineWallSeconds >= osStats.TotalSeconds {
		return fmt.Errorf("mapstream: streaming pipeline wall %.3fs not below one-shot total wall %.3fs",
			ssStats.PipelineWallSeconds, osStats.TotalSeconds)
	}
	fmt.Fprintln(o.Out, "\nShape checks: mappings byte-identical on both paths; the streaming filter clock")
	fmt.Fprintln(o.Out, "(host encode hidden behind kernel execution) beats the one-shot rounds, and on")
	fmt.Fprintln(o.Out, "multi-core hosts the overlapped pipeline wall undercuts the phase-by-phase run.")
	return nil
}
