package harness

import (
	"fmt"
	"strings"

	"repro/internal/align"
	"repro/internal/filter"
)

func init() {
	register(Experiment{
		ID:       "fig2",
		PaperRef: "Figures 2-3 / Sup. Figure S.1",
		Title:    "Worked mask example: edge-error hiding in GateKeeper vs the GPU fix",
		Run:      runFig2,
	})
}

// runFig2 renders the paper's illustrative figures: the full mask pipeline
// (Sup. Figure S.1) for a small pair, then the Figure 2/3 scenario where
// the original GateKeeper's vacated zeros hide edge mismatches and falsely
// accept a pair the improved algorithm rejects.
func runFig2(o Options) error {
	// Part 1: Sup. Figure S.1 style walk-through with e=2 on a short pair
	// containing one substitution and one deletion.
	read := []byte("TCGAGATTAAATCTCC")
	ref := []byte("TCGAGTTAAATCTCCA") // deletion of read's A6, appended base
	tr, err := filter.Trace(filter.ModeGPU, read, ref, 2)
	if err != nil {
		return err
	}
	fmt.Fprintln(o.Out, "Sup. Figure S.1 — GateKeeper workflow for e=2:")
	fmt.Fprintf(o.Out, "read %s\nref  %s\n\n%s\n", read, ref, tr.Render())
	fmt.Fprintf(o.Out, "exact edit distance: %d\n\n", align.Distance(read, ref))

	// Part 2: Figure 2/3 — a pair beyond the threshold whose extra
	// mismatches sit in the shift-vacated edges.
	L, e := 40, 2
	r2 := []byte(strings.Repeat("ACGT", L/4))
	c2 := append([]byte(nil), r2...)
	c2[0], c2[1] = 'T', 'G'
	c2[L-2], c2[L-1] = 'T', 'C'
	c2[20] = flip(c2[20])
	dist := align.Distance(r2, c2)
	fmt.Fprintf(o.Out, "Figure 2/3 — edge mismatches, exact distance %d > e=%d:\n\n", dist, e)
	for _, mode := range []filter.Mode{filter.ModeFPGA, filter.ModeGPU} {
		t2, err := filter.Trace(mode, r2, c2, e)
		if err != nil {
			return err
		}
		fmt.Fprint(o.Out, t2.Render())
		fmt.Fprintln(o.Out)
	}
	fmt.Fprintln(o.Out, "Shape check: the FPGA final AND loses the leading/trailing 1s (vacated")
	fmt.Fprintln(o.Out, "zeros dominate) and accepts; the GPU amendment keeps them and rejects.")
	return nil
}

func flip(b byte) byte {
	switch b {
	case 'A':
		return 'C'
	case 'C':
		return 'G'
	case 'G':
		return 'T'
	default:
		return 'A'
	}
}
