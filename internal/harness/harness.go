// Package harness regenerates every table and figure of the paper's
// evaluation section. Each experiment is registered under the ID used in
// DESIGN.md's per-experiment index, prints its measured rows next to the
// paper's reference values, and scales with a single factor so the same
// code runs in seconds on a laptop or for hours at paper scale.
package harness

import (
	"fmt"
	"io"
	"sort"
)

// Options configure one experiment run.
type Options struct {
	Out io.Writer
	// Scale multiplies the default (laptop-tractable) workload sizes;
	// 1.0 is the default quick configuration.
	Scale float64
	// Seed makes dataset generation reproducible.
	Seed int64
}

func (o *Options) applyDefaults() {
	if o.Scale <= 0 {
		o.Scale = 1.0
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
}

// scaled returns n scaled, with a floor to keep statistics meaningful.
func (o Options) scaled(n int) int {
	v := int(float64(n) * o.Scale)
	if v < 50 {
		v = 50
	}
	return v
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	ID       string
	PaperRef string // e.g. "Table 2", "Figure 5 / Sup. Table S.7"
	Title    string
	Run      func(o Options) error
}

var registry = map[string]Experiment{}

// register adds an experiment at package init time.
func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("harness: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("harness: unknown experiment %q (use IDs())", id)
	}
	return e, nil
}

// IDs returns every registered experiment ID, sorted.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// All returns every experiment, sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, id := range IDs() {
		out = append(out, registry[id])
	}
	return out
}

// Run executes one experiment by ID with a banner.
func Run(id string, o Options) error {
	o.applyDefaults()
	e, err := Get(id)
	if err != nil {
		return err
	}
	fmt.Fprintf(o.Out, "== %s — %s (%s) ==\n", e.ID, e.Title, e.PaperRef)
	fmt.Fprintf(o.Out, "   scale=%.2f seed=%d\n\n", o.Scale, o.Seed)
	if err := e.Run(o); err != nil {
		return fmt.Errorf("harness: experiment %s: %w", id, err)
	}
	fmt.Fprintln(o.Out)
	return nil
}

// thresholdsFor returns the paper's filtering error thresholds for a read
// length: 0% to 10% of the length, at the grid the supplementary tables use.
func thresholdsFor(readLen int) []int {
	switch readLen {
	case 100:
		return []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	case 150:
		return []int{0, 1, 3, 4, 6, 7, 9, 10, 12, 13, 15}
	case 250:
		return []int{0, 2, 5, 7, 10, 12, 15, 17, 20, 22, 25}
	default:
		max := readLen / 10
		step := max / 10
		if step < 1 {
			step = 1
		}
		var out []int
		for e := 0; e <= max; e += step {
			out = append(out, e)
		}
		return out
	}
}
