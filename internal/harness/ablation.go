package harness

import (
	"fmt"

	"repro/internal/align"
	"repro/internal/filter"
	"repro/internal/metrics"
	"repro/internal/simdata"
)

func init() {
	register(Experiment{
		ID:       "ablation",
		PaperRef: "DESIGN.md (design-choice ablations)",
		Title:    "Ablation of GateKeeper-GPU design elements on Set 3",
		Run:      runAblation,
	})
}

// runAblation quantifies each design element's contribution on the same
// dataset: the leading/trailing edge forcing (the paper's contribution over
// GateKeeper-FPGA), the short-zero amendment, and the windowed error
// counter.
func runAblation(o Options) error {
	profile, err := simdata.Set("set3")
	if err != nil {
		return err
	}
	n := o.scaled(6_000)
	cases := simdata.Generate(profile, o.Seed, n)
	dists := make([]int, len(cases))
	for i, pc := range cases {
		if pc.Undefined {
			dists[i] = -1
			continue
		}
		dists[i] = align.Distance(pc.Read, pc.Ref)
	}

	variants := []struct {
		name string
		mode filter.Mode
		abl  filter.Ablation
	}{
		{"full GateKeeper-GPU", filter.ModeGPU, filter.Ablation{}},
		{"- edge forcing (=FPGA/SHD)", filter.ModeFPGA, filter.Ablation{}},
		{"- amendment", filter.ModeGPU, filter.Ablation{SkipAmendment: true}},
		{"- windowed counter (runs)", filter.ModeGPU, filter.Ablation{CountRuns: true}},
	}
	thresholds := []int{2, 5, 10}
	tb := metrics.NewTable("variant", "e", "false accepts", "false rejects", "FA rate")
	for _, v := range variants {
		for _, e := range thresholds {
			kern := filter.NewKernel(v.mode, profile.ReadLen, e)
			kern.SetAblation(v.abl)
			var c metrics.Confusion
			for i, pc := range cases {
				if dists[i] < 0 {
					continue
				}
				d := kern.Filter(pc.Read, pc.Ref, e)
				c.Add(metrics.Outcome{TrueWithin: dists[i] <= e, Accept: d.Accept})
			}
			if c.FalseRejects != 0 {
				return fmt.Errorf("ablation %q produced %d false rejects at e=%d",
					v.name, c.FalseRejects, e)
			}
			tb.Add(v.name, fmt.Sprintf("%d", e),
				metrics.FmtInt(c.FalseAccepts), metrics.FmtInt(c.FalseRejects),
				metrics.FmtPct(c.FalseAcceptRate()))
		}
	}
	fmt.Fprint(o.Out, tb.String())
	fmt.Fprintln(o.Out, "\nShape checks: every ablation increases false accepts somewhere and none")
	fmt.Fprintln(o.Out, "introduces false rejects; the run-counting ablation degrades most at e=10.")
	return nil
}
