package harness

import (
	"fmt"

	"repro/internal/align"
	"repro/internal/filter"
	"repro/internal/metrics"
	"repro/internal/simdata"
)

// paperFARates holds the paper's GateKeeper-GPU false-accept rates (percent,
// Tables S.2-S.6) per threshold grid for the Section 5.1.1 experiments.
var paperFARates = map[string][]float64{
	"set3":     {0.00, 0.09, 0.45, 1.41, 3.93, 8.53, 18.44, 28.98, 39.31, 47.26, 54.39},
	"set6":     {0.00, 0.09, 1.14, 2.60, 9.31, 15.98, 39.60, 50.57, 64.73, 68.72, 75.48},
	"set10":    {0.00, 0.04, 0.30, 0.91, 3.39, 9.63, 28.87, 42.19, 58.40, 70.91, 88.19},
	"minimap2": {0.00, 0.21, 0.57, 1.39, 3.05, 6.01, 10.65, 16.59, 24.13, 32.03, 40.88},
	"bwamem":   {0.00, 1.97, 23.86, 38.41, 54.22, 78.05, 90.35, 97.24, 99.28, 100.00, 100.00},
}

func init() {
	type accuracyCase struct {
		id, ref, title, set string
	}
	for _, c := range []accuracyCase{
		{"fig4", "Figure 4 / Sup. Table S.2", "False accept analysis vs Edlib, 100bp (Set 3)", "set3"},
		{"fig4-150", "Sup. Figure S.3 / Table S.3", "False accept analysis vs Edlib, 150bp (Set 6)", "set6"},
		{"fig4-250", "Sup. Figure S.4 / Table S.4", "False accept analysis vs Edlib, 250bp (Set 10)", "set10"},
		{"fig-mm2", "Sup. Figure S.5 / Table S.5", "Accuracy on Minimap2-style candidate pairs", "minimap2"},
		{"fig-bwa", "Sup. Figure S.6 / Table S.6", "Accuracy on BWA-MEM-style candidate pairs", "bwamem"},
	} {
		c := c
		register(Experiment{
			ID:       c.id,
			PaperRef: c.ref,
			Title:    c.title,
			Run:      func(o Options) error { return runEdlibAccuracy(o, c.set) },
		})
	}
}

// runEdlibAccuracy reproduces the Section 5.1.1 protocol: undefined pairs
// are excluded (counted as accepted on both sides), GateKeeper-GPU decisions
// are tallied against Edlib global alignment across the threshold grid.
func runEdlibAccuracy(o Options, setName string) error {
	profile, err := simdata.Set(setName)
	if err != nil {
		return err
	}
	n := o.scaled(20_000)
	cases := simdata.Generate(profile, o.Seed, n)
	thresholds := thresholdsFor(profile.ReadLen)
	maxE := thresholds[len(thresholds)-1]
	kern := filter.NewKernel(filter.ModeGPU, profile.ReadLen, maxE)

	// Ground-truth distances once per pair.
	dists := make([]int, len(cases))
	undef := 0
	for i, pc := range cases {
		if pc.Undefined {
			dists[i] = -1 // excluded per protocol
			undef++
			continue
		}
		dists[i] = align.Distance(pc.Read, pc.Ref)
	}
	fmt.Fprintf(o.Out, "%s: %d pairs (%d undefined excluded; paper set: %s pairs)\n\n",
		profile.Name, n, undef, metrics.FmtInt(int64(profile.PaperPairs)))

	tb := metrics.NewTable("e", "Edlib rejects", "False accepts", "False rejects",
		"FA rate", "TR rate", "paper FA rate")
	paper := paperFARates[setName]
	for ti, e := range thresholds {
		var c metrics.Confusion
		for i, pc := range cases {
			if dists[i] < 0 {
				continue
			}
			d := kern.Filter(pc.Read, pc.Ref, e)
			c.Add(metrics.Outcome{TrueWithin: dists[i] <= e, Accept: d.Accept})
		}
		if c.FalseRejects != 0 {
			return fmt.Errorf("accuracy violation: %d false rejects at e=%d (paper: always 0)",
				c.FalseRejects, e)
		}
		ref := "-"
		if ti < len(paper) {
			ref = fmt.Sprintf("%.2f%%", paper[ti])
		}
		tb.Add(fmt.Sprintf("%d", e),
			metrics.FmtInt(c.EdlibRejects),
			metrics.FmtInt(c.FalseAccepts),
			metrics.FmtInt(c.FalseRejects),
			metrics.FmtPct(c.FalseAcceptRate()),
			metrics.FmtPct(c.TrueRejectRate()),
			ref)
	}
	fmt.Fprint(o.Out, tb.String())
	fmt.Fprintln(o.Out, "\nShape checks: zero false rejects at every threshold; FA rate rises with e.")
	return nil
}

// comparisonRef holds the paper's per-filter false-accept counts (including
// undefined pairs) for the Section 5.1.2 comparison sets, out of the paper's
// 30M pairs (Sup. Tables S.7-S.12).
type comparisonRef struct {
	gkgpu, fpga, shouji, magnet, snake []int64 // snake nil when not reported
}

var paperComparisons = map[string]comparisonRef{
	"set1": {
		gkgpu:  []int64{28009, 672164, 2290693, 4324420, 6744070, 9354269, 12092022, 13085652, 13139626, 12264194, 10929703},
		fpga:   []int64{0, 783185, 2704128, 5237529, 8231507, 11195124, 13781651, 14283519, 13814295, 13105305, 11389103},
		shouji: []int64{0, 333320, 1283004, 2674876, 4399886, 6452280, 9373309, 11113616, 11990529, 11693396, 10664722},
		magnet: []int64{963941, 800099, 1876518, 2428301, 2662902, 2916838, 3406303, 4026433, 4745672, 5319627, 5673172},
		snake:  []int64{0, 12473, 77165, 234003, 484179, 795582, 1240276, 1815478, 2567290, 3331944, 4020164},
	},
	"set4": {
		gkgpu:  []int64{31487, 31501, 31767, 32689, 40692, 71158, 193539, 435611, 951114, 1943019, 3710604},
		fpga:   []int64{0, 14, 155, 1196, 7436, 32792, 155134, 417444, 1031480, 29997022, 29998373},
		shouji: []int64{0, 2, 15, 216, 1986, 10551, 57258, 214005, 675029, 1742476, 3902535},
		magnet: []int64{7, 5, 2, 4, 13, 82, 298, 1030, 3129, 8234, 19013},
		snake:  []int64{0, 0, 0, 1, 3, 13, 69, 289, 1081, 3563, 9698},
	},
	"set5": {
		gkgpu:  []int64{30142, 171256, 1632544, 3118355, 6681929, 9016979, 15109160, 17023658, 18335496, 18145432, 16953324},
		fpga:   []int64{0, 173573, 2080279, 4023762, 9258602, 12481853, 22076837, 21341979, 19868151, 19082528, 17353835},
		shouji: []int64{0, 113519, 1539365, 3042831, 6025592, 8219336, 14568337, 16920389, 18270597, 18095207, 16993568},
		magnet: []int64{428412, 156891, 725873, 1064344, 1430272, 1532024, 1874734, 2194275, 3294672, 4066617, 5810797},
	},
	"set8": {
		gkgpu:  []int64{309, 365, 407, 573, 13606, 64840, 564241, 1049599, 2490712, 3677914, 7692574},
		fpga:   []int64{0, 58, 90, 267, 18110, 79418, 29698666, 29999388, 29999290, 29999204, 29998847},
		shouji: []int64{0, 43, 83, 137, 6259, 27092, 404742, 935486, 2514950, 3693298, 8034737},
		magnet: []int64{126, 42, 35, 28, 25, 27, 108, 231, 965, 2018, 8448},
	},
	"set9": {
		gkgpu:  []int64{35075, 250322, 1242873, 3113200, 7283863, 12260108, 19039913, 21308177, 22311079, 22311569, 21843548},
		fpga:   []int64{0, 238368, 1546126, 3933916, 26816729, 26137224, 25084654, 24449131, 23595168, 23040384, 22142250},
		shouji: []int64{0, 174366, 1071218, 2775419, 6669084, 11147373, 18406823, 20971826, 22223170, 22271215, 21849454},
		magnet: []int64{479104, 143066, 226864, 347819, 624927, 825468, 1066633, 1235999, 1695351, 2241984, 3514515},
		snake:  []int64{0, 12319, 38814, 79246, 235689, 407799, 705904, 914730, 1364891, 1879428, 3134474},
	},
	"set12": {
		gkgpu:  []int64{4763683, 4763696, 4763688, 4763704, 4771455, 4839211, 5481110, 6545084, 9894411, 14252812, 21963183},
		fpga:   []int64{0, 71, 249, 698, 29999528, 29999480, 29999425, 29999377, 29999282, 29999158, 29998867},
		shouji: []int64{0, 55, 161, 212, 5627, 64225, 775314, 2052498, 5679869, 10277297, 19676652},
		magnet: []int64{53, 44, 49, 48, 42, 45, 82, 175, 417, 593, 1174},
		snake:  []int64{0, 2, 6, 6, 14, 22, 47, 106, 326, 495, 955},
	},
}

func init() {
	type cmpCase struct {
		id, ref, title, set string
	}
	for _, c := range []cmpCase{
		{"fig5", "Figure 5 / Sup. Table S.7", "Filter comparison, Set 1 (100bp low-edit)", "set1"},
		{"fig5-he100", "Sup. Figure S.7 / Table S.8", "Filter comparison, Set 4 (100bp high-edit)", "set4"},
		{"fig5-le150", "Sup. Figure S.8 / Table S.9", "Filter comparison, Set 5 (150bp low-edit)", "set5"},
		{"fig5-he150", "Sup. Figure S.9 / Table S.10", "Filter comparison, Set 8 (150bp high-edit)", "set8"},
		{"fig5-le250", "Sup. Figure S.10 / Table S.11", "Filter comparison, Set 9 (250bp low-edit)", "set9"},
		{"fig5-he250", "Sup. Figure S.11 / Table S.12", "Filter comparison, Set 12 (250bp high-edit)", "set12"},
	} {
		c := c
		register(Experiment{
			ID:       c.id,
			PaperRef: c.ref,
			Title:    c.title,
			Run:      func(o Options) error { return runComparison(o, c.set) },
		})
	}
}

// runComparison reproduces the Section 5.1.2 protocol: all six filters on
// one dataset, undefined pairs included (GateKeeper-GPU passes them, so they
// surface in its false accepts), false-accept fractions compared with the
// paper's counts per 30M pairs.
func runComparison(o Options, setName string) error {
	profile, err := simdata.Set(setName)
	if err != nil {
		return err
	}
	n := o.scaled(1_200)
	cases := simdata.Generate(profile, o.Seed, n)
	thresholds := thresholdsFor(profile.ReadLen)
	filters := filter.All()
	ref := paperComparisons[setName]

	dists := make([]int, len(cases))
	for i, pc := range cases {
		dists[i] = align.Distance(pc.Read, pc.Ref)
	}
	fmt.Fprintf(o.Out, "%s: %d pairs, undefined included (paper protocol)\n", profile.Name, n)
	fmt.Fprintf(o.Out, "measured: FA%% of pairs; paper: FA%% of %s pairs\n\n",
		metrics.FmtInt(int64(profile.PaperPairs)))

	tb := metrics.NewTable("e",
		"GKGPU", "FPGA", "SHD", "Shouji", "MAGNET", "SnkSnake",
		"paper GKGPU", "paper FPGA", "paper Shouji", "paper MAGNET", "paper Snake")
	for ti, e := range thresholds {
		row := []string{fmt.Sprintf("%d", e)}
		for _, f := range filters {
			fa := 0
			for i, pc := range cases {
				if dists[i] <= e {
					continue // only Edlib-rejected pairs can be false accepts
				}
				if f.Filter(pc.Read, pc.Ref, e).Accept {
					fa++
				}
			}
			row = append(row, fmt.Sprintf("%.2f%%", 100*float64(fa)/float64(n)))
		}
		paperPct := func(vals []int64) string {
			if vals == nil || ti >= len(vals) {
				return "-"
			}
			return fmt.Sprintf("%.2f%%", 100*float64(vals[ti])/float64(profile.PaperPairs))
		}
		row = append(row, paperPct(ref.gkgpu), paperPct(ref.fpga), paperPct(ref.shouji),
			paperPct(ref.magnet), paperPct(ref.snake))
		tb.Add(row...)
	}
	fmt.Fprint(o.Out, tb.String())
	fmt.Fprintln(o.Out, "\nShape checks: GKGPU <= FPGA == SHD; SneakySnake & MAGNET lowest;")
	fmt.Fprintln(o.Out, "FPGA/SHD saturate toward accept-all at high e on high-edit sets while GKGPU keeps filtering.")
	return nil
}
