package harness

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/cuda"
	"repro/internal/gkgpu"
	"repro/internal/metrics"
	"repro/internal/simdata"
)

func init() {
	register(Experiment{
		ID:       "chaos",
		PaperRef: "beyond the paper (fault-tolerant streaming)",
		Title:    "Seeded fault injection: decision identity and degradation under device failures",
		Run:      runChaos,
	})
}

// runChaos sweeps seeded fault injection over the streaming filter — per-op
// fault rates crossed with device counts, plus one device dying mid-stream —
// and proves the degradation contract: as long as one device survives, the
// emitted decisions are bit-identical to the fault-free run (zero loss, zero
// duplication, zero reorder, identical decision counters), with the damage
// visible only in the retry/redispatch telemetry and the modelled filter
// clock. The final scenario kills every device and checks the terminal
// contract instead: a classified taxonomy error and a fully drained producer.
func runChaos(o Options) error {
	profile, err := simdata.Set("set3")
	if err != nil {
		return err
	}
	// Whatever the scale, the sweep needs enough batches that every device
	// launches often enough to reach its scheduled death and leave work to
	// redispatch; the floor guarantees ~64 batches on the largest grid row.
	n := o.scaled(20_000)
	if n < 4096 {
		n = 4096
	}
	cases := simdata.Generate(profile, o.Seed, n)
	pairs := simdata.ToEnginePairs(cases)
	const e = 5
	const batch = 64

	mk := func(nDev int) (*gkgpu.Engine, *cuda.Context, error) {
		cctx := cuda.NewUniformContext(nDev, cuda.GTX1080Ti())
		eng, err := gkgpu.NewEngine(gkgpu.Config{
			ReadLen: 100, MaxE: e, Encoding: gkgpu.EncodeOnHost,
			MaxBatchPairs: 2048, StreamBatchPairs: batch,
			Fault: gkgpu.FaultPolicy{Backoff: 100 * time.Microsecond},
		}, cctx)
		return eng, cctx, err
	}
	run := func(eng *gkgpu.Engine) ([]gkgpu.Result, error) {
		in := make(chan gkgpu.Pair, 64)
		go func() {
			defer close(in)
			for _, p := range pairs {
				in <- p
			}
		}()
		out, err := eng.FilterStream(context.Background(), in, e)
		if err != nil {
			return nil, err
		}
		res := make([]gkgpu.Result, 0, len(pairs))
		for r := range out {
			res = append(res, r)
		}
		return res, eng.StreamErr()
	}
	// The decision fields of Stats — everything a faulty-but-survived run
	// must leave untouched.
	decisions := func(s gkgpu.Stats) [4]int64 {
		return [4]int64{s.Pairs, s.Accepted, s.Rejected, s.Undefined}
	}

	fmt.Fprintf(o.Out, "%s, %d pairs, e=%d, batch=%d, one device dies mid-stream on every faulted row\n\n",
		profile.Name, len(pairs), e, batch)
	tb := metrics.NewTable("GPUs", "fault rate", "retries", "redispatches", "lost", "filter (s)", "vs clean", "identity")
	for _, nDev := range []int{2, 3} {
		clean, _, err := mk(nDev)
		if err != nil {
			return err
		}
		want, err := run(clean)
		if err != nil {
			clean.Close()
			return fmt.Errorf("chaos: fault-free baseline: %w", err)
		}
		cleanStats := clean.Stats()
		clean.Close()
		tb.Add(fmt.Sprintf("%d", nDev), "0 (baseline)", "0", "0", "0",
			fmt.Sprintf("%.4f", cleanStats.FilterSeconds), "1.00x", "reference")

		for _, rate := range []float64{0.01, 0.05, 0.10} {
			eng, cctx, err := mk(nDev)
			if err != nil {
				return err
			}
			for di := 0; di < nDev; di++ {
				plan := cuda.NewFaultPlan(o.Seed*1000+int64(di)).
					WithRate(cuda.OpLaunch, rate).
					WithRate(cuda.OpTransfer, rate/2)
				if di == nDev-1 {
					// The last device dies a few batches in: the survivors
					// absorb its in-flight and future work.
					plan.DieAtLaunch(5)
				}
				cctx.Device(di).InjectFaults(plan)
			}
			got, err := run(eng)
			if err != nil {
				eng.Close()
				return fmt.Errorf("chaos: %d GPUs rate %.2f: stream terminal with a survivor: %w", nDev, rate, err)
			}
			if len(got) != len(want) {
				eng.Close()
				return fmt.Errorf("chaos: %d GPUs rate %.2f: %d results, want %d (loss or duplication)",
					nDev, rate, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					eng.Close()
					return fmt.Errorf("chaos: %d GPUs rate %.2f: result %d drifted or reordered: %+v vs %+v",
						nDev, rate, i, got[i], want[i])
				}
			}
			st := eng.Stats()
			eng.Close()
			if decisions(st) != decisions(cleanStats) {
				return fmt.Errorf("chaos: %d GPUs rate %.2f: decision counters drifted: %v vs %v",
					nDev, rate, decisions(st), decisions(cleanStats))
			}
			if st.DevicesLost != 1 {
				return fmt.Errorf("chaos: %d GPUs rate %.2f: DevicesLost = %d, want 1", nDev, rate, st.DevicesLost)
			}
			if st.Redispatches == 0 {
				return fmt.Errorf("chaos: %d GPUs rate %.2f: a device died but nothing redispatched", nDev, rate)
			}
			tb.Add(fmt.Sprintf("%d", nDev), fmt.Sprintf("%.2f", rate),
				fmt.Sprintf("%d", st.Retries), fmt.Sprintf("%d", st.Redispatches),
				fmt.Sprintf("%d", st.DevicesLost),
				fmt.Sprintf("%.4f", st.FilterSeconds),
				fmt.Sprintf("%.2fx", st.FilterSeconds/cleanStats.FilterSeconds),
				"bit-identical")
		}
	}
	fmt.Fprint(o.Out, tb.String())

	// Terminal scenario: every device dies. The stream must end with the
	// classified taxonomy error and the producer — plain blocking sends, no
	// knowledge of the failure — must run to completion.
	eng, cctx, err := mk(2)
	if err != nil {
		return err
	}
	defer eng.Close()
	cctx.Device(0).InjectFaults(cuda.NewFaultPlan(o.Seed).DieAtLaunch(2))
	cctx.Device(1).InjectFaults(cuda.NewFaultPlan(o.Seed + 1).DieAtLaunch(3))
	in := make(chan gkgpu.Pair)
	out, err := eng.FilterStream(context.Background(), in, e)
	if err != nil {
		return err
	}
	produced := make(chan struct{})
	go func() {
		defer close(produced)
		for _, p := range pairs {
			in <- p
		}
		close(in)
	}()
	for range out {
	}
	select {
	case <-produced:
	case <-time.After(60 * time.Second):
		return fmt.Errorf("chaos: producer still blocked after terminal stream failure")
	}
	serr := eng.StreamErr()
	if !errors.Is(serr, gkgpu.ErrStreamAborted) || !errors.Is(serr, gkgpu.ErrDeviceLost) {
		return fmt.Errorf("chaos: all-dead stream error lacks taxonomy: %v", serr)
	}
	fmt.Fprintln(o.Out, "\nShape checks: on every faulted row the stream emitted exactly the fault-free")
	fmt.Fprintln(o.Out, "decisions in the fault-free order — injected launch/transfer faults and a")
	fmt.Fprintln(o.Out, "mid-stream device death cost only retries, redispatches and filter-clock time.")
	fmt.Fprintf(o.Out, "With every device dead the stream drained its producer and failed with the\nclassified taxonomy error: %v\n", serr)
	return nil
}
