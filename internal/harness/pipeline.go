package harness

import (
	"context"
	"fmt"

	"repro/internal/cuda"
	"repro/internal/gkgpu"
	"repro/internal/metrics"
	"repro/internal/simdata"
)

func init() {
	register(Experiment{
		ID:       "pipeline",
		PaperRef: "beyond the paper (Section 3.4 overlap, taken end-to-end)",
		Title:    "One-shot vs double-buffered streaming filtration (modelled filter seconds)",
		Run:      runPipeline,
	})
}

// runPipeline compares the paper's one-shot pipeline (encode, transfer and
// kernel charged sequentially per round) against the streaming engine, where
// each device's two buffer sets overlap the host-encode pool with kernel
// execution. Both paths execute the same real filtrations; the decisions are
// checked identical and the modelled filter clocks are compared.
func runPipeline(o Options) error {
	profile, err := simdata.Set("set3")
	if err != nil {
		return err
	}
	cases := simdata.Generate(profile, o.Seed, o.scaled(40_000))
	pairs := simdata.ToEnginePairs(cases)
	const e = 5

	fmt.Fprintf(o.Out, "host-encoded, %s, %d pairs, e=%d\n\n", profile.Name, len(pairs), e)
	tb := metrics.NewTable("GPUs", "one-shot ft(s)", "stream ft(s)", "speedup", "stream kt(s)")
	for _, nDev := range []int{1, 2, 4, 8} {
		mk := func() (*gkgpu.Engine, error) {
			// Stream dispatch granularity equals the per-device batch so
			// both paths pay the same launch overhead per pair; the clock
			// difference is then the overlap, not the batching policy.
			return gkgpu.NewEngine(gkgpu.Config{
				ReadLen: 100, MaxE: e, Encoding: gkgpu.EncodeOnHost,
				MaxBatchPairs: 2048, StreamBatchPairs: 2048,
			}, cuda.NewUniformContext(nDev, cuda.GTX1080Ti()))
		}
		oneShot, err := mk()
		if err != nil {
			return err
		}
		want, err := oneShot.FilterPairs(pairs, e)
		if err != nil {
			oneShot.Close()
			return err
		}
		osStats := oneShot.Stats()
		oneShot.Close()

		stream, err := mk()
		if err != nil {
			return err
		}
		in := make(chan gkgpu.Pair, len(pairs))
		for _, p := range pairs {
			in <- p
		}
		close(in)
		out, err := stream.FilterStream(context.Background(), in, e)
		if err != nil {
			stream.Close()
			return err
		}
		i := 0
		for r := range out {
			if r != want[i] {
				stream.Close()
				return fmt.Errorf("pipeline: decision drift at pair %d: stream %+v one-shot %+v", i, r, want[i])
			}
			i++
		}
		ssStats := stream.Stats()
		stream.Close()
		if i != len(want) {
			return fmt.Errorf("pipeline: stream returned %d of %d results", i, len(want))
		}
		// Enforce the win only when the workload yields enough batches to
		// balance across devices; at tiny -scale values the shared dispatch
		// queue's placement (not the overlap model) decides thin margins.
		// The placement-independent guarantee lives in the gkgpu tests.
		if nDev >= 2 && len(pairs) >= 8*nDev*2048 && ssStats.FilterSeconds >= osStats.FilterSeconds {
			return fmt.Errorf("pipeline: stream filter time %.6fs not below one-shot %.6fs on %d devices",
				ssStats.FilterSeconds, osStats.FilterSeconds, nDev)
		}
		tb.Add(fmt.Sprintf("%d", nDev),
			fmt.Sprintf("%.4f", osStats.FilterSeconds),
			fmt.Sprintf("%.4f", ssStats.FilterSeconds),
			fmt.Sprintf("%.2fx", osStats.FilterSeconds/ssStats.FilterSeconds),
			fmt.Sprintf("%.4f", ssStats.KernelSeconds))
	}
	fmt.Fprint(o.Out, tb.String())
	fmt.Fprintln(o.Out, "\nShape checks: decisions byte-identical on both paths; the double-buffered")
	fmt.Fprintln(o.Out, "stream beats the one-shot filter clock on every multi-device configuration")
	fmt.Fprintln(o.Out, "because the parallel host encode of batch N+1 hides behind the kernel of batch N.")
	return nil
}
