package harness

import (
	"bytes"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/cuda"
	"repro/internal/dna"
	"repro/internal/gkgpu"
	"repro/internal/mapper"
	"repro/internal/metrics"
	"repro/internal/simdata"
)

func init() {
	register(Experiment{
		ID:       "streamingest",
		PaperRef: "beyond the paper (streaming ingestion)",
		Title:    "Materialized vs channel-fed FASTQ ingestion (wall seconds, peak heap)",
		Run:      runStreamIngest,
	})
}

// runStreamIngest compares the two ways a FASTQ read set can enter the
// end-to-end mapper: materialized (decode the whole file into [][]byte,
// then MapStream) versus channel-fed (dna.FASTQScanner records flowing
// straight into MapReadStream as they decode, nothing retained). Both paths
// execute the same filtrations and verifications — the mappings are checked
// byte-identical — while the channel-fed path overlaps decoding with
// mapping and holds only in-flight reads, which the sampled peak heap
// makes visible.
func runStreamIngest(o Options) error {
	const genomeLen, e, L = 300_000, 5, 100
	nReads := o.scaled(3_000)
	cfg := simdata.DefaultGenomeConfig(genomeLen)
	cfg.Seed = o.Seed
	genome := simdata.Genome(cfg)
	reads, err := simdata.SimulateReads(genome, simdata.Illumina100, nReads, o.Seed+1)
	if err != nil {
		return err
	}
	recs := make([]dna.Record, len(reads))
	for i, r := range reads {
		recs[i] = dna.Record{Name: fmt.Sprintf("read%d", i), Seq: r.Seq}
	}
	var blob bytes.Buffer
	if err := dna.WriteFASTQ(&blob, recs); err != nil {
		return err
	}
	fastq := blob.Bytes()
	recs, reads = nil, nil

	mk := func() (*mapper.Mapper, *gkgpu.Engine, error) {
		eng, err := gkgpu.NewEngine(gkgpu.Config{
			ReadLen: L, MaxE: e, Encoding: gkgpu.EncodeOnHost, MaxBatchPairs: 1 << 15,
		}, cuda.NewUniformContext(1, cuda.GTX1080Ti()))
		if err != nil {
			return nil, nil, err
		}
		m, err := mapper.New(genome, mapper.Config{ReadLen: L, MaxE: e, SeedLen: 9, Filter: eng})
		if err != nil {
			eng.Close()
			return nil, nil, err
		}
		return m, eng, nil
	}

	// liveHeap forces a collection and returns the surviving heap — what a
	// path actually retains, as opposed to what it churned through.
	liveHeap := func() uint64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}

	// measure runs one ingestion path with a heap sampler alongside (peak
	// HeapAlloc over a GC'd baseline: allocation pressure at the worst
	// moment) and takes the run's own end-of-run live-heap reading, which
	// the run closure records while its inputs are still in scope.
	measure := func(run func(m *mapper.Mapper, live *uint64) ([]mapper.Mapping, mapper.Stats, error)) ([]mapper.Mapping, mapper.Stats, float64, uint64, uint64, error) {
		m, eng, err := mk()
		if err != nil {
			return nil, mapper.Stats{}, 0, 0, 0, err
		}
		defer eng.Close()
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		base := ms.HeapAlloc
		var peak atomic.Uint64
		peak.Store(base)
		stop := make(chan struct{})
		samplerDone := make(chan struct{})
		go func() {
			defer close(samplerDone)
			var s runtime.MemStats
			for {
				select {
				case <-stop:
					return
				default:
				}
				runtime.ReadMemStats(&s)
				for {
					cur := peak.Load()
					if s.HeapAlloc <= cur || peak.CompareAndSwap(cur, s.HeapAlloc) {
						break
					}
				}
				time.Sleep(200 * time.Microsecond)
			}
		}()
		t0 := time.Now()
		var live uint64
		mappings, st, err := run(m, &live)
		wall := time.Since(t0).Seconds()
		close(stop)
		<-samplerDone
		over := uint64(0)
		if p := peak.Load(); p > base {
			over = p - base
		}
		liveOver := uint64(0)
		if live > base {
			liveOver = live - base
		}
		return mappings, st, wall, over, liveOver, err
	}

	matMappings, matStats, matWall, matPeak, matLive, err := measure(func(m *mapper.Mapper, live *uint64) ([]mapper.Mapping, mapper.Stats, error) {
		all, err := dna.ReadFASTQ(bytes.NewReader(fastq))
		if err != nil {
			return nil, mapper.Stats{}, err
		}
		seqs := make([][]byte, len(all))
		for i, r := range all {
			seqs[i] = r.Seq
		}
		mappings, st, err := m.MapStream(seqs, e)
		*live = liveHeap() // the decoded read set is still live here
		// Pin the read set AND the mapper through the reading: Go liveness
		// is last-use-based, and letting the index die here would offset
		// the retention the reading exists to show.
		runtime.KeepAlive(all)
		runtime.KeepAlive(seqs)
		runtime.KeepAlive(m)
		return mappings, st, err
	})
	if err != nil {
		return err
	}

	strMappings, strStats, strWall, strPeak, strLive, err := measure(func(m *mapper.Mapper, live *uint64) ([]mapper.Mapping, mapper.Stats, error) {
		ch := make(chan mapper.Read, 64)
		decodeErr := make(chan error, 1)
		go func() {
			defer close(ch)
			sc := dna.NewFASTQScanner(bytes.NewReader(fastq))
			for sc.Scan() {
				rec := sc.Record()
				ch <- mapper.Read{Name: rec.Name, Seq: rec.Seq}
			}
			decodeErr <- sc.Err()
		}()
		mappings, st, err := m.MapReadStream(ch, e)
		if derr := <-decodeErr; err == nil && derr != nil {
			err = derr
		}
		*live = liveHeap() // nothing of the read set is retained here
		runtime.KeepAlive(m)
		return mappings, st, err
	})
	if err != nil {
		return err
	}

	if len(strMappings) != len(matMappings) {
		return fmt.Errorf("streamingest: channel-fed produced %d mappings, materialized %d",
			len(strMappings), len(matMappings))
	}
	for i := range strMappings {
		if strMappings[i] != matMappings[i] {
			return fmt.Errorf("streamingest: mapping %d drifted: channel-fed %+v materialized %+v",
				i, strMappings[i], matMappings[i])
		}
	}
	if strStats.Reads != matStats.Reads || strStats.CandidatePairs != matStats.CandidatePairs ||
		strStats.RejectedPairs != matStats.RejectedPairs {
		return fmt.Errorf("streamingest: counters drifted:\nchannel-fed  %+v\nmaterialized %+v", strStats, matStats)
	}

	fmt.Fprintf(o.Out, "%d reads (%.1f MB FASTQ), %d candidates, e=%d, %d workers (GOMAXPROCS)\n\n",
		nReads, float64(len(fastq))/1e6, matStats.CandidatePairs, e, runtime.GOMAXPROCS(0))
	tb := metrics.NewTable("ingestion", "wall (s)", "peak heap (MB)", "retained at end (MB)", "mapped reads")
	tb.Add("materialized (ReadFASTQ + MapStream)",
		fmt.Sprintf("%.3f", matWall), fmt.Sprintf("%.2f", float64(matPeak)/1e6),
		fmt.Sprintf("%.2f", float64(matLive)/1e6),
		fmt.Sprintf("%d", matStats.MappedReads))
	tb.Add("channel-fed (FASTQScanner + MapReadStream)",
		fmt.Sprintf("%.3f", strWall), fmt.Sprintf("%.2f", float64(strPeak)/1e6),
		fmt.Sprintf("%.2f", float64(strLive)/1e6),
		fmt.Sprintf("%d", strStats.MappedReads))
	fmt.Fprint(o.Out, tb.String())
	fmt.Fprintln(o.Out, "\nShape checks: mappings byte-identical on both paths. The channel-fed path never")
	fmt.Fprintln(o.Out, "holds the decoded read set — a record's bytes are garbage once its candidates")
	fmt.Fprintln(o.Out, "verify — so what it retains at end of run (GC'd live heap, both columns over a")
	fmt.Fprintln(o.Out, "common baseline) stays flat while the materialized path's grows with the input;")
	fmt.Fprintln(o.Out, "peak heap is allocation pressure sampled mid-run. Run at scale >= 1 for clear gaps.")

	// Enforce the retention claim where it is unambiguous: once the decoded
	// read set dwarfs sampling noise, the channel-fed path must retain less
	// than the materialized path still holding every sequence.
	if nReads*L >= 4<<20 && strLive >= matLive {
		return fmt.Errorf("streamingest: channel-fed retained %.2f MB at end of run, materialized %.2f MB",
			float64(strLive)/1e6, float64(matLive)/1e6)
	}
	return nil
}
