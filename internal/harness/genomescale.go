package harness

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"time"

	"repro/internal/dna"
	"repro/internal/mapper"
	"repro/internal/simdata"
)

// genomeScaleBound is the position-space ceiling the 64-bit index refactor
// removed: 2^31 bases, the largest reference the old int32 positions could
// address.
const genomeScaleBound = int64(1) << 31

// genomeScaleBase is the reference size at scale 1.0. Crossing the 2^31
// bound therefore needs -scale 34 (and roughly 40 GB of RAM for the
// unstepped index); any smaller scale demonstrates the machinery on the
// same code paths and says so loudly.
const genomeScaleBase = 64_000_000

// runGenomeScale exercises PR 8 end to end on one reference: build the
// unstepped and a step-16 index over a multi-contig genome, map reads drawn
// from the highest-offset contig with both, then serialize the stepped
// index, load it back, and prove the loaded index maps identically to the
// in-memory one. Reported rows: generation/build/serialize/load wall times,
// index entry counts (the ~step× shrink), candidate totals per step (the
// probe-fan trade-off), and mapped-read counts.
func runGenomeScale(o Options) error {
	total := int(float64(genomeScaleBase) * o.Scale)
	if total < 600_000 {
		total = 600_000
	}
	const nContigs = 8
	per := total / nContigs
	if int64(total) > genomeScaleBound {
		fmt.Fprintf(o.Out, "reference: %d bases — beyond the 2^31 bound (%d); every position in the\n", total, genomeScaleBound)
		fmt.Fprintf(o.Out, "last contig overflows int32 by construction.\n\n")
	} else {
		need := math.Ceil(float64(genomeScaleBound+1) / float64(genomeScaleBase))
		fmt.Fprintf(o.Out, "NOTE: reference is %d bases, BELOW the 2^31 genome-scale bound (%d).\n", total, genomeScaleBound)
		fmt.Fprintf(o.Out, "      This run drives the same 64-bit code paths at reduced size; rerun with\n")
		fmt.Fprintf(o.Out, "      -scale %.0f (roughly 40 GB RAM) to cross the bound for real.\n\n", need)
	}

	genStart := time.Now()
	recs := make([]dna.Record, nContigs)
	for i := range recs {
		cfg := simdata.DefaultGenomeConfig(per)
		cfg.Seed = o.Seed + int64(i)
		recs[i] = dna.Record{Name: fmt.Sprintf("chr%d", i+1), Seq: simdata.Genome(cfg)}
	}
	ref, err := mapper.NewReference(recs)
	if err != nil {
		return err
	}
	recs = nil // the reference holds the only copy from here on
	fmt.Fprintf(o.Out, "generated %d contigs, %d bases in %.2fs\n\n", ref.NumContigs(), ref.Len(), time.Since(genStart).Seconds())

	// Reads come from the LAST contig: its global offsets are the largest in
	// the reference, so at genome scale every candidate this read set
	// produces lives beyond int32.
	const readLen, maxE = 100, 3
	nReads := o.scaled(2_000)
	reads, err := simdata.SimulateReads(ref.ContigSeq(nContigs-1), simdata.Illumina100, nReads, o.Seed+99)
	if err != nil {
		return err
	}
	seqs := make([][]byte, len(reads))
	for i, r := range reads {
		seqs[i] = r.Seq
	}

	const step = 16
	type run struct {
		buildSecs  float64
		entries    int
		candidates int64
		mapped     int64
		mapSecs    float64
	}
	// mapWith maps the read set and returns scalars (plus the mappings for
	// identity checks); callers scope each mapper so the unstepped index —
	// tens of gigabytes at full scale — dies with its section.
	mapWith := func(m *mapper.Mapper, buildSecs float64) (run, []mapper.Mapping, error) {
		mappings, stats, err := m.MapReads(seqs, maxE)
		if err != nil {
			return run{}, nil, err
		}
		return run{
			buildSecs:  buildSecs,
			entries:    m.Index().Entries(),
			candidates: stats.CandidatePairs,
			mapped:     stats.MappedReads,
			mapSecs:    stats.TotalSeconds,
		}, mappings, nil
	}

	var r1 run
	{
		t0 := time.Now()
		m, err := mapper.NewFromReference(ref, mapper.Config{ReadLen: readLen, MaxE: maxE, SeedLen: 13})
		if err != nil {
			return err
		}
		build := time.Since(t0).Seconds()
		if r1, _, err = mapWith(m, build); err != nil {
			return err
		}
	}

	t0 := time.Now()
	m16, err := mapper.NewFromReference(ref, mapper.Config{ReadLen: readLen, MaxE: maxE, SeedLen: 13, SeedStep: step})
	if err != nil {
		return err
	}
	build16 := time.Since(t0).Seconds()
	r16, mappings16, err := mapWith(m16, build16)
	if err != nil {
		return err
	}

	fmt.Fprintf(o.Out, "%-22s %12s %12s %12s %12s %10s\n", "index", "build s", "entries", "candidates", "mapped", "map s")
	fmt.Fprintf(o.Out, "%-22s %12.2f %12d %12d %12d %10.2f\n", "step=1 (every window)", r1.buildSecs, r1.entries, r1.candidates, r1.mapped, r1.mapSecs)
	fmt.Fprintf(o.Out, "%-22s %12.2f %12d %12d %12d %10.2f\n", fmt.Sprintf("step=%d (sampled)", step), r16.buildSecs, r16.entries, r16.candidates, r16.mapped, r16.mapSecs)
	if r16.entries > 0 {
		fmt.Fprintf(o.Out, "index shrink %0.1fx, candidate ratio %0.2fx, mapped %d/%d of step=1\n\n",
			float64(r1.entries)/float64(r16.entries),
			float64(r16.candidates)/float64(max64(r1.candidates, 1)),
			r16.mapped, r1.mapped)
	}

	// Serialize the stepped index, load it back, and map with the loaded
	// copy: decisions must match the in-memory index exactly.
	dir, err := os.MkdirTemp("", "gkix-scale")
	if err != nil {
		return err
	}
	defer func() { _ = os.RemoveAll(dir) }() //gk:allow errcheck: best-effort temp cleanup
	path := filepath.Join(dir, "ref.gkix")

	t0 = time.Now()
	if err := m16.Index().SerializeToFile(path); err != nil {
		return err
	}
	serSecs := time.Since(t0).Seconds()
	st, err := os.Stat(path)
	if err != nil {
		return err
	}

	t0 = time.Now()
	mLoaded, err := mapper.NewFromSerializedIndex(ref, path, mapper.Config{ReadLen: readLen, MaxE: maxE})
	if err != nil {
		return err
	}
	loadSecs := time.Since(t0).Seconds()
	_, mappingsLoaded, err := mapWith(mLoaded, loadSecs)
	if err != nil {
		return err
	}
	identical := reflect.DeepEqual(mappings16, mappingsLoaded)

	mb := float64(st.Size()) / (1 << 20)
	fmt.Fprintf(o.Out, "serialize: %.1f MiB in %.2fs (%.0f MiB/s)\n", mb, serSecs, mb/math.Max(serSecs, 1e-9))
	fmt.Fprintf(o.Out, "load:      %.2fs (%.1fx faster than the step=%d build; k/step adopted from the file)\n",
		loadSecs, r16.buildSecs/math.Max(loadSecs, 1e-9), step)
	fmt.Fprintf(o.Out, "loaded-index mappings identical to in-memory: %v\n", identical)
	if !identical {
		return fmt.Errorf("harness: loaded index mapped differently from the in-memory index")
	}
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func init() {
	register(Experiment{
		ID:       "genomescale",
		PaperRef: "Section 5 (SOAP3-dp/SneakySnake whole-genome scale)",
		Title:    "Genome-scale 64-bit index: stepped seeding and serialized-index round trip",
		Run:      runGenomeScale,
	})
}
