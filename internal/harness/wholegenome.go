package harness

import (
	"fmt"

	"repro/internal/cuda"
	"repro/internal/dna"
	"repro/internal/gkgpu"
	"repro/internal/mapper"
	"repro/internal/metrics"
	"repro/internal/simdata"
)

// wgRun is one end-to-end mapping execution with its stats.
type wgRun struct {
	mappings int
	stats    mapper.Stats
}

// runWholeGenome maps simulated reads against a simulated genome, optionally
// with a GateKeeper-GPU engine between seeding and verification.
func runWholeGenome(o Options, profile simdata.ReadProfile, genomeLen, nReads, e, batch int,
	withFilter bool, ss setupSpec) (wgRun, error) {

	cfg := simdata.DefaultGenomeConfig(genomeLen)
	cfg.Seed = o.Seed
	genome := simdata.Genome(cfg)
	reads, err := simdata.SimulateReads(genome, profile, nReads, o.Seed+1)
	if err != nil {
		return wgRun{}, err
	}
	seqs := make([][]byte, len(reads))
	for i, r := range reads {
		seqs[i] = r.Seq
	}

	// Short seeds approximate mrFAST's candidate noisiness: 12-mers against
	// a 3 Gbp genome produce many spurious hits per read; on a laptop-scale
	// genome the same collision density needs a shorter seed.
	mcfg := mapper.Config{ReadLen: profile.Length, MaxE: e, MaxReadsPerBatch: batch, SeedLen: 9}
	var eng *gkgpu.Engine
	if withFilter {
		eng, err = gkgpu.NewEngine(gkgpu.Config{
			ReadLen: profile.Length, MaxE: e, Encoding: gkgpu.EncodeOnDevice,
			Setup: ss.setup, MaxBatchPairs: 1 << 15,
		}, cuda.NewUniformContext(1, ss.spec))
		if err != nil {
			return wgRun{}, err
		}
		defer eng.Close()
		mcfg.Filter = eng
	}
	m, err := mapper.New(genome, mcfg)
	if err != nil {
		return wgRun{}, err
	}
	mappings, stats, err := m.MapReads(seqs, e)
	if err != nil {
		return wgRun{}, err
	}
	return wgRun{mappings: len(mappings), stats: stats}, nil
}

func init() {
	register(Experiment{
		ID:       "table1",
		PaperRef: "Table 1",
		Title:    "Effect of the maximum number of reads per batch on time",
		Run:      runTable1,
	})
	register(Experiment{
		ID:       "table3",
		PaperRef: "Table 3",
		Title:    "Whole-genome mapping information with pre-alignment filtering (100bp)",
		Run:      runTable3,
	})
	register(Experiment{
		ID:       "table4",
		PaperRef: "Table 4",
		Title:    "Theoretical vs achieved speedup in verification (100bp, e=5)",
		Run:      runTable4,
	})
	register(Experiment{
		ID:       "table5",
		PaperRef: "Table 5",
		Title:    "Speedup of mrFAST-style mapping with pre-alignment filters (100bp, e=5)",
		Run:      runTable5,
	})
	register(Experiment{
		ID:       "tables24",
		PaperRef: "Sup. Table S.24",
		Title:    "Whole-genome mapping on sim set 1 (300bp rich-deletion, e=15)",
		Run:      func(o Options) error { return runSimSet(o, simdata.SimSet1, 15, 0.97, "0.13h vs 0.04h (slowdown)") },
	})
	register(Experiment{
		ID:       "tables25",
		PaperRef: "Sup. Table S.25",
		Title:    "Whole-genome mapping on sim set 2 (150bp low-indel, e=8)",
		Run:      func(o Options) error { return runSimSet(o, simdata.SimSet2, 8, 0.90, "3.0-3.4x filtering+DP speedup") },
	})
	register(Experiment{
		ID:       "tables26",
		PaperRef: "Sup. Table S.26",
		Title:    "Mapping information on additional real-profile sets (e=0, e=1)",
		Run:      runTable26,
	})
	register(Experiment{
		ID:       "multicontig",
		PaperRef: "Section 4.5 (whole-genome, multi-chromosome reference)",
		Title:    "Multi-contig mapping: per-contig breakdown and boundary safety",
		Run:      runMultiContig,
	})
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// runMultiContig maps per-contig simulated reads against a multi-contig
// reference — the shape of the paper's real whole-genome evaluation, where
// hg38's chromosomes load as one reference — with GateKeeper-GPU filtering,
// and reports the per-contig breakdown. Shape checks: every contig receives
// its own reads back (contig-relative coordinates near the planted origin),
// no mapping window leaves its contig, and reads drawn across a junction
// stay unmapped.
func runMultiContig(o Options) error {
	contigLens := []int{250_000, 150_000, 100_000}
	nReads := o.scaled(1_800)
	profile := simdata.Illumina100
	e := 5

	var recs []dna.Record
	for i, n := range contigLens {
		cfg := simdata.DefaultGenomeConfig(n)
		cfg.Seed = o.Seed + int64(i)
		recs = append(recs, dna.Record{Name: fmt.Sprintf("chr%d", i+1), Seq: simdata.Genome(cfg)})
	}
	ref, err := mapper.NewReference(recs)
	if err != nil {
		return err
	}

	// Per-contig reads, proportional to length, plus one junction-straddling
	// read per boundary (half the tail of one contig, half the head of the
	// next — a flat concatenated reference would map these).
	type origin struct{ contig, pos int }
	var seqs [][]byte
	var truth []origin
	total := ref.Len()
	for ci, c := range ref.Contigs() {
		n := nReads * c.Len / total
		reads, err := simdata.SimulateReads(ref.ContigSeq(ci), profile, n, o.Seed+10+int64(ci))
		if err != nil {
			return err
		}
		for _, r := range reads {
			seqs = append(seqs, r.Seq)
			truth = append(truth, origin{contig: ci, pos: r.TruePos})
		}
	}
	firstJunction := len(seqs)
	for ci := 0; ci+1 < ref.NumContigs(); ci++ {
		// A junction-straddling read: the tail of one contig glued to the
		// head of the next — bytes identical to a read lifted across the
		// boundary of the concatenated sequence, built without global
		// coordinates.
		tail := ref.ContigSeq(ci)
		head := ref.ContigSeq(ci + 1)
		read := append([]byte(nil), tail[len(tail)-profile.Length/2:]...)
		read = append(read, head[:profile.Length/2]...)
		seqs = append(seqs, read)
		truth = append(truth, origin{contig: -1})
	}

	eng, err := gkgpu.NewEngine(gkgpu.Config{
		ReadLen: profile.Length, MaxE: e, Encoding: gkgpu.EncodeOnDevice,
		Setup: setup1().setup, MaxBatchPairs: 1 << 15,
	}, cuda.NewUniformContext(1, setup1().spec))
	if err != nil {
		return err
	}
	defer eng.Close()
	m, err := mapper.NewFromReference(ref, mapper.Config{
		ReadLen: profile.Length, MaxE: e, SeedLen: 9, Filter: eng,
	})
	if err != nil {
		return err
	}
	mappings, stats, err := m.MapReads(seqs, e)
	if err != nil {
		return err
	}

	perContig := make([]int64, ref.NumContigs())
	perContigReads := make([]map[int]bool, ref.NumContigs())
	for i := range perContigReads {
		perContigReads[i] = map[int]bool{}
	}
	nearOrigin := map[int]bool{}
	junctionMapped := 0
	for _, mp := range mappings {
		c := ref.Contig(mp.Contig)
		if mp.Pos < 0 || mp.Pos+profile.Length > c.Len {
			return fmt.Errorf("mapping window leaves contig %s: %+v", c.Name, mp)
		}
		perContig[mp.Contig]++
		perContigReads[mp.Contig][mp.ReadID] = true
		tr := truth[mp.ReadID]
		if tr.contig == -1 {
			junctionMapped++
		} else if mp.Contig == tr.contig && absInt(mp.Pos-tr.pos) <= e {
			nearOrigin[mp.ReadID] = true
		}
	}
	if junctionMapped > 0 {
		return fmt.Errorf("%d junction-straddling reads mapped — boundary leak", junctionMapped)
	}

	tb := metrics.NewTable("contig", "length", "reads drawn", "mappings", "mapped reads")
	drawn := make([]int64, ref.NumContigs())
	for _, tr := range truth[:firstJunction] {
		drawn[tr.contig]++
	}
	for ci, c := range ref.Contigs() {
		tb.Add(c.Name, metrics.FmtInt(int64(c.Len)), metrics.FmtInt(drawn[ci]),
			metrics.FmtInt(perContig[ci]), metrics.FmtInt(int64(len(perContigReads[ci]))))
	}
	fmt.Fprint(o.Out, tb.String())
	fmt.Fprintf(o.Out, "\nreads: %s  mappings: %s  candidate reduction: %s\n",
		metrics.FmtInt(stats.Reads), metrics.FmtInt(stats.Mappings), metrics.FmtPct(stats.Reduction()))
	fmt.Fprintf(o.Out, "reads mapped near their planted origin (contig-relative): %d/%d\n",
		len(nearOrigin), firstJunction)
	fmt.Fprintf(o.Out, "junction-straddling reads mapped: 0/%d (boundary-aware candidates)\n",
		len(seqs)-firstJunction)
	fmt.Fprintln(o.Out, "\nShape checks: every contig maps its own reads with contig-relative")
	fmt.Fprintln(o.Out, "coordinates; no verified window leaves its contig; junction reads stay unmapped.")
	return nil
}

func runTable1(o Options) error {
	paper := map[int][4]float64{ // batch -> paper overall/encode/kernel/filter (s, host-encoded column)
		100: {3041.52, 109.54, 102.55, 212.17}, 1000: {1446.58, 105.99, 92.72, 114.61},
		10000: {1325.95, 109.14, 80.37, 92.99}, 100000: {1275.66, 103.13, 77.45, 88.96},
	}
	nReads := o.scaled(2_000)
	tb := metrics.NewTable("max reads/batch", "overall wall (s)", "prep model (s)",
		"kernel model (s)", "filter model (s)", "paper overall/kernel/filter")
	for _, batch := range []int{100, 1000, 10000, 100000} {
		r, err := runWholeGenome(o, simdata.Illumina100, 300_000, nReads, 5, batch, true, setup1())
		if err != nil {
			return err
		}
		p := paper[batch]
		tb.Add(fmt.Sprintf("%d", batch),
			fmt.Sprintf("%.3f", r.stats.TotalSeconds),
			fmt.Sprintf("%.4f", r.stats.FilterPrepModel),
			fmt.Sprintf("%.4f", r.stats.FilterKernelModel),
			fmt.Sprintf("%.4f", r.stats.FilterModelSeconds),
			fmt.Sprintf("%.0f/%.0f/%.0f", p[0], p[2], p[3]))
	}
	fmt.Fprint(o.Out, tb.String())
	fmt.Fprintln(o.Out, "\nShape check: larger batches monotonically shrink kernel and filter time")
	fmt.Fprintln(o.Out, "(fewer host-device transfers), flattening out by 100,000 reads per batch.")
	return nil
}

func runTable3(o Options) error {
	nReads := o.scaled(2_500)
	tb := metrics.NewTable("config", "e", "Mappings", "Mapped reads",
		"Verification pairs", "Rejected (reduction)", "paper reduction")
	paperReduction := map[int]string{0: "94%", 5: "90%"}
	for _, e := range []int{0, 5} {
		base, err := runWholeGenome(o, simdata.Illumina100, 400_000, nReads, e, 100_000, false, setup1())
		if err != nil {
			return err
		}
		filt, err := runWholeGenome(o, simdata.Illumina100, 400_000, nReads, e, 100_000, true, setup1())
		if err != nil {
			return err
		}
		if filt.mappings != base.mappings {
			return fmt.Errorf("filter changed mapping count at e=%d: %d vs %d (paper: identical at e=0, ~equal at e=5)",
				e, filt.mappings, base.mappings)
		}
		tb.Add("No Filter", fmt.Sprintf("%d", e),
			metrics.FmtInt(base.stats.Mappings), metrics.FmtInt(base.stats.MappedReads),
			metrics.FmtInt(base.stats.VerificationPairs), "NA", "")
		tb.Add("GateKeeper-GPU", fmt.Sprintf("%d", e),
			metrics.FmtInt(filt.stats.Mappings), metrics.FmtInt(filt.stats.MappedReads),
			metrics.FmtInt(filt.stats.VerificationPairs),
			fmt.Sprintf("%s (%.0f%%)", metrics.FmtInt(filt.stats.RejectedPairs), 100*filt.stats.Reduction()),
			paperReduction[e])
	}
	fmt.Fprint(o.Out, tb.String())
	fmt.Fprintln(o.Out, "\nShape checks: identical mappings and mapped reads with and without the filter;")
	fmt.Fprintln(o.Out, "large reduction in pairs entering verification at both thresholds.")
	return nil
}

func runTable4(o Options) error {
	nReads := o.scaled(2_500)
	base, err := runWholeGenome(o, simdata.Illumina100, 400_000, nReads, 5, 100_000, false, setup1())
	if err != nil {
		return err
	}
	filt, err := runWholeGenome(o, simdata.Illumina100, 400_000, nReads, 5, 100_000, true, setup1())
	if err != nil {
		return err
	}
	theoretical := float64(base.stats.VerificationPairs) / float64(filt.stats.VerificationPairs)
	achieved := metrics.Speedup(base.stats.VerifySeconds, filt.stats.VerifySeconds)
	tb := metrics.NewTable("quantity", "measured", "paper (Setup 1)")
	tb.Add("candidate reduction", metrics.FmtPct(filt.stats.Reduction()), "90%")
	tb.Add("theoretical DP speedup", fmt.Sprintf("%.1fx", theoretical), "10.6x")
	tb.Add("achieved DP speedup", fmt.Sprintf("%.1fx", achieved), "3.7x")
	fmt.Fprint(o.Out, tb.String())
	fmt.Fprintln(o.Out, "\nShape check: achieved speedup is well below theoretical — the surviving")
	fmt.Fprintln(o.Out, "pairs are the similar ones, whose banded DP cannot terminate early.")
	return nil
}

func runTable5(o Options) error {
	nReads := o.scaled(2_500)
	tb := metrics.NewTable("setup", "filt+DP speedup", "overall speedup",
		"paper filt+DP", "paper overall")
	paper := map[string][2]string{
		"Setup 1": {"2.9x", "1.3-1.4x"},
		"Setup 2": {"1.6-1.7x", "1.2x"},
	}
	for _, ss := range []setupSpec{setup1(), setup2()} {
		base, err := runWholeGenome(o, simdata.Illumina100, 400_000, nReads, 5, 100_000, false, ss)
		if err != nil {
			return err
		}
		filt, err := runWholeGenome(o, simdata.Illumina100, 400_000, nReads, 5, 100_000, true, ss)
		if err != nil {
			return err
		}
		// The paper's accounting: "For filtering time, we consider the
		// kernel time for GateKeeper-GPU" — the GPU runs filtrations in
		// parallel at negligible device time, so the filtering cost added
		// to the pipeline is the modelled kernel time, not this
		// simulation's single-core wall time for executing the kernel.
		filtDP := metrics.Speedup(base.stats.VerifySeconds,
			filt.stats.FilterKernelModel+filt.stats.VerifySeconds)
		filtOverall := filt.stats.TotalSeconds - filt.stats.FilterWallSeconds + filt.stats.FilterKernelModel
		overall := metrics.Speedup(base.stats.TotalSeconds, filtOverall)
		p := paper[ss.setup.Name]
		tb.Add(ss.setup.Name,
			fmt.Sprintf("%.1fx", filtDP), fmt.Sprintf("%.1fx", overall), p[0], p[1])
	}
	fmt.Fprint(o.Out, tb.String())
	fmt.Fprintln(o.Out, "\nPaper also reports GateKeeper-FPGA at 41x (Setup-independent, FPGA platform);")
	fmt.Fprintln(o.Out, "shape check: filtering+verification speedup > 1 and overall speedup smaller but > 1.")
	return nil
}

func runSimSet(o Options, profile simdata.ReadProfile, e int, paperReduction float64, paperNote string) error {
	nReads := o.scaled(800)
	genomeLen := 400_000
	base, err := runWholeGenome(o, profile, genomeLen, nReads, e, 100_000, false, setup1())
	if err != nil {
		return err
	}
	filt, err := runWholeGenome(o, profile, genomeLen, nReads, e, 100_000, true, setup1())
	if err != nil {
		return err
	}
	tb := metrics.NewTable("config", "Mappings", "Verification pairs", "Rejected (reduction)", "filt+DP vs DP")
	tb.Add("No Filter", metrics.FmtInt(base.stats.Mappings),
		metrics.FmtInt(base.stats.VerificationPairs), "NA",
		fmt.Sprintf("%.3fs", base.stats.VerifySeconds))
	tb.Add("GateKeeper-GPU", metrics.FmtInt(filt.stats.Mappings),
		metrics.FmtInt(filt.stats.VerificationPairs),
		fmt.Sprintf("%s (%.0f%%)", metrics.FmtInt(filt.stats.RejectedPairs), 100*filt.stats.Reduction()),
		fmt.Sprintf("%.3fs", filt.stats.FilterKernelModel+filt.stats.VerifySeconds))
	fmt.Fprint(o.Out, tb.String())
	fmt.Fprintf(o.Out, "\npaper: %.0f%% reduction; %s\n", 100*paperReduction, paperNote)
	if filt.mappings != base.mappings {
		fmt.Fprintf(o.Out, "note: mapping counts differ slightly (%d vs %d) — the paper observes the same on sim set 2\n",
			filt.mappings, base.mappings)
	}
	return nil
}

func runTable26(o Options) error {
	paper := []struct {
		name      string
		reduction string
	}{
		{"50bp e=0", "81%"}, {"50bp e=1", "83%"}, {"150bp e=0", "54%"}, {"250bp e=0", "72%"},
	}
	cases := []struct {
		profile simdata.ReadProfile
		e       int
	}{
		{simdata.Illumina50, 0}, {simdata.Illumina50, 1},
		{simdata.SimSet2, 0}, {simdata.Illumina250, 0},
	}
	nReads := o.scaled(1_200)
	tb := metrics.NewTable("dataset", "Mappings", "Mapped reads", "Verification pairs",
		"Rejected (reduction)", "paper reduction")
	for i, c := range cases {
		filt, err := runWholeGenome(o, c.profile, 300_000, nReads, c.e, 100_000, true, setup1())
		if err != nil {
			return err
		}
		tb.Add(fmt.Sprintf("%dbp e=%d", c.profile.Length, c.e),
			metrics.FmtInt(filt.stats.Mappings), metrics.FmtInt(filt.stats.MappedReads),
			metrics.FmtInt(filt.stats.VerificationPairs),
			fmt.Sprintf("%s (%.0f%%)", metrics.FmtInt(filt.stats.RejectedPairs), 100*filt.stats.Reduction()),
			paper[i].reduction)
	}
	fmt.Fprint(o.Out, tb.String())
	fmt.Fprintln(o.Out, "\nShape check: substantial reduction at e=0 across lengths; reduction depends on")
	fmt.Fprintln(o.Out, "how many repeat-driven candidates the genome produces, as in the paper's real sets.")
	return nil
}
