package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/dna"
	"repro/internal/filter"
	"repro/internal/mapper"
	"repro/internal/ref32"
	"repro/internal/simdata"
)

// BenchEntry is one micro-benchmark row of a machine-readable baseline.
type BenchEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	PairsPerSec float64 `json:"pairs_per_s,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// BenchReport is the schema of a BENCH_<stamp>.json perf baseline: enough
// to compare kernels, filters, and the seed index across PRs without
// re-running the old code.
type BenchReport struct {
	Stamp     string `json:"stamp"`
	Label     string `json:"label,omitempty"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	// GOMAXPROCS is the scheduler width the capture actually ran at — the
	// number that makes two captures comparable. Zero in a decoded report
	// means a pre-convention capture of unknown width; CompareBaseline
	// treats any width mismatch as invalid for trajectory claims.
	GOMAXPROCS int `json:"gomaxprocs"`
	// BenchTime is the per-measurement budget of the testing runner
	// (captures at different budgets have different noise floors).
	BenchTime string `json:"benchtime"`

	// Kernels are single-pair filtration paths: the fused 64-bit kernel
	// (several geometries, pre-encoded and raw-byte) and the retained
	// 32-bit unfused chain (internal/ref32), whose ratio against the fused
	// kernel is the PR's claimed speedup, reproducible from the repo alone.
	Kernels []BenchEntry `json:"kernels"`
	// Filters are whole-Filter pairs/s for every implemented filter on one
	// standard dataset (set1, e=5), the Figure 5 hot loop.
	Filters []BenchEntry `json:"filters"`
	// Index covers the CSR seed index: build and lookup.
	Index []BenchEntry `json:"index"`
}

// benchPairsPerSec converts a benchmark over `pairs` pairs per op into a rate.
func benchPairsPerSec(r testing.BenchmarkResult, pairs int) float64 {
	if r.T <= 0 {
		return 0
	}
	return float64(pairs) * float64(r.N) / r.T.Seconds()
}

func entry(name string, r testing.BenchmarkResult, pairs int) BenchEntry {
	e := BenchEntry{
		Name:        name,
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if pairs > 0 {
		e.PairsPerSec = benchPairsPerSec(r, pairs)
	}
	return e
}

// RunBenchJSON runs the kernel/filter/index micro-benchmark suite and
// writes a BENCH_<stamp>.json baseline into dir (default "."), returning
// the path. It is the machinery behind `gkbench -json`; each measurement
// uses the testing package's benchmark runner, so rows are directly
// comparable with `go test -bench` output.
func RunBenchJSON(dir, label string, out io.Writer) (string, error) {
	if dir == "" {
		dir = "."
	}
	rep := BenchReport{
		Stamp:      time.Now().UTC().Format("20060102T150405Z"),
		Label:      label,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		BenchTime:  "1s", // the testing runner's default budget
	}

	// Kernel suite: the Figure 4/7 hot loop on generated dataset pairs.
	type geom struct {
		name string
		set  string
		L, e int
	}
	for _, g := range []geom{
		{"fused-L100-e5", "set3", 100, 5},
		{"fused-L250-e10", "set11", 250, 10},
	} {
		p, err := simdata.Set(g.set)
		if err != nil {
			return "", err
		}
		all := simdata.ToEnginePairs(simdata.Generate(p, 42, 1000))
		// Drop undefined ('N') pairs so both kernels run the same defined
		// workload: the fused kernel shortcuts them, the reference panics.
		pairs := all[:0]
		for _, pr := range all {
			if !dna.HasN(pr.Read) && !dna.HasN(pr.Ref) {
				pairs = append(pairs, pr)
			}
		}
		kern := filter.NewKernel(filter.ModeGPU, g.L, g.e)
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, pr := range pairs {
					kern.Filter(pr.Read, pr.Ref, g.e)
				}
			}
		})
		rep.Kernels = append(rep.Kernels, entry("kernel-"+g.name, r, len(pairs)))

		// The retained 32-bit unfused chain on the same pairs: the in-repo
		// pre-optimization reference.
		r32 := ref32.NewKernel(true, g.L)
		rr := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, pr := range pairs {
					r32.Filter(pr.Read, pr.Ref, g.e)
				}
			}
		})
		rep.Kernels = append(rep.Kernels, entry("kernel-ref32-"+g.name[6:], rr, len(pairs)))
	}

	// Batch front end: aggregate machine-width throughput on the Figure 4
	// set3 L100/e5 configuration, at one worker and at GOMAXPROCS. The w1
	// row isolates the front end's scheduling overhead against the plain
	// kernel row above; the wN row is what the machine can actually do.
	{
		p, err := simdata.Set("set3")
		if err != nil {
			return "", err
		}
		all := simdata.ToEnginePairs(simdata.Generate(p, 42, 1000))
		// Same N-dropped workload as the kernel-fused-L100-e5 row, so the w1
		// row divides cleanly against it.
		pairs := make([]filter.BatchPair, 0, len(all))
		for _, pr := range all {
			if !dna.HasN(pr.Read) && !dna.HasN(pr.Ref) {
				pairs = append(pairs, filter.BatchPair{Read: pr.Read, Ref: pr.Ref})
			}
		}
		widths := []int{1}
		if w := runtime.GOMAXPROCS(0); w > 1 {
			widths = append(widths, w)
		}
		for _, w := range widths {
			bf := filter.NewBatchFilter(filter.NewGateKeeperGPU, w)
			dst := make([]filter.Decision, len(pairs))
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					bf.FilterBatchInto(dst, pairs, 5)
				}
			})
			rep.Kernels = append(rep.Kernels,
				entry(fmt.Sprintf("batch-fused-L100-e5-w%d", w), r, len(pairs)))
		}
	}

	// Pre-encoded path (what the engine's launch stage runs).
	{
		p, err := simdata.Set("set3")
		if err != nil {
			return "", err
		}
		pairs := simdata.ToEnginePairs(simdata.Generate(p, 42, 1000))
		type encPair struct{ read, ref []uint64 }
		enc := make([]encPair, 0, len(pairs))
		for _, pr := range pairs {
			re, err1 := dna.Encode(pr.Read)
			fe, err2 := dna.Encode(pr.Ref)
			if err1 != nil || err2 != nil {
				continue // undefined pairs bypass the encoded path
			}
			enc = append(enc, encPair{re, fe})
		}
		kern := filter.NewKernel(filter.ModeGPU, 100, 5)
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, pr := range enc {
					kern.FilterEncoded(pr.read, pr.ref, 5)
				}
			}
		})
		rep.Kernels = append(rep.Kernels, entry("kernel-fused-encoded-L100-e5", r, len(enc)))
	}

	// Per-filter pairs/s, Figure 5's loop on set1.
	{
		p, err := simdata.Set("set1")
		if err != nil {
			return "", err
		}
		pairs := simdata.ToEnginePairs(simdata.Generate(p, 42, 300))
		for _, f := range filter.All() {
			f := f
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					for _, pr := range pairs {
						f.Filter(pr.Read, pr.Ref, 5)
					}
				}
			})
			rep.Filters = append(rep.Filters, entry(f.Name(), r, len(pairs)))
		}
	}

	// CSR index: build rate and lookup latency.
	{
		rng := rand.New(rand.NewSource(42))
		ref := dna.RandomSeq(rng, 500_000)
		rb := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := mapper.NewIndex(ref, mapper.DefaultSeedLen); err != nil {
					b.Fatal(err)
				}
			}
		})
		rep.Index = append(rep.Index, entry("index-build-500k", rb, 0))

		idx, err := mapper.NewIndex(ref, mapper.DefaultSeedLen)
		if err != nil {
			return "", err
		}
		seeds := make([][]byte, 1024)
		for i := range seeds {
			p := rng.Intn(len(ref) - mapper.DefaultSeedLen)
			seeds[i] = ref[p : p+mapper.DefaultSeedLen]
		}
		var sink int
		rl := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sink += len(idx.Lookup(seeds[i&1023]))
			}
		})
		_ = sink
		rep.Index = append(rep.Index, entry("index-lookup", rl, 0))

		// GKIX serialization: raw-slab write rate and zero-copy load rate
		// over the same 500k index (PR 8's genome-scale startup path).
		var blob bytes.Buffer
		if err := idx.Serialize(&blob); err != nil {
			return "", err
		}
		rs := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var buf bytes.Buffer
				buf.Grow(blob.Len())
				if err := idx.Serialize(&buf); err != nil {
					b.Fatal(err)
				}
			}
		})
		rep.Index = append(rep.Index, entry("index-serialize-500k", rs, 0))

		refObj := mapper.SingleContig("", ref)
		data := blob.Bytes()
		ld := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := mapper.LoadIndex(bytes.NewReader(data), refObj); err != nil {
					b.Fatal(err)
				}
			}
		})
		rep.Index = append(rep.Index, entry("index-load-500k", ld, 0))
	}

	path := fmt.Sprintf("%s/BENCH_%s.json", dir, rep.Stamp)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	if out != nil {
		fmt.Fprintf(out, "wrote %s (gomaxprocs=%d benchtime=%s)\n", path, rep.GOMAXPROCS, rep.BenchTime)
		for _, e := range rep.Kernels {
			fmt.Fprintf(out, "  %-32s %12.0f ns/op %12.0f pairs/s %4d allocs/op\n",
				e.Name, e.NsPerOp, e.PairsPerSec, e.AllocsPerOp)
		}
		for _, e := range rep.Index {
			fmt.Fprintf(out, "  %-32s %12.0f ns/op %4d allocs/op\n", e.Name, e.NsPerOp, e.AllocsPerOp)
		}
	}
	return path, nil
}

// LoadBenchReport decodes one BENCH_<stamp>.json capture.
func LoadBenchReport(path string) (BenchReport, error) {
	var rep BenchReport
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("harness: decoding %s: %w", path, err)
	}
	return rep, nil
}

// CompareBench prints cur's rows against a baseline capture, row by row,
// with the new/old throughput ratio. When the captures disagree on machine
// width (CPUs or GOMAXPROCS — a baseline predating the gomaxprocs field
// reports "unknown") the comparison is printed anyway but framed by a loud
// warning: rates measured at different widths are not a perf trajectory,
// which is exactly the apples-to-oranges mistake the pre-PR-7 captures made.
func CompareBench(baseline, cur BenchReport, out io.Writer) {
	crossWidth := baseline.CPUs != cur.CPUs || baseline.GOMAXPROCS != cur.GOMAXPROCS
	warn := func() {
		oldWidth := fmt.Sprintf("%d", baseline.GOMAXPROCS)
		if baseline.GOMAXPROCS == 0 {
			oldWidth = "unknown"
		}
		fmt.Fprintf(out, "WARNING: cross-width comparison: baseline %s ran on cpus=%d gomaxprocs=%s,\n",
			baseline.Stamp, baseline.CPUs, oldWidth)
		fmt.Fprintf(out, "WARNING: this capture on cpus=%d gomaxprocs=%d. Throughput ratios below are\n",
			cur.CPUs, cur.GOMAXPROCS)
		fmt.Fprintf(out, "WARNING: NOT comparable and must not be read as a perf trajectory.\n")
	}
	if crossWidth {
		fmt.Fprintln(out, "****************************************************************")
		warn()
		fmt.Fprintln(out, "****************************************************************")
	}
	old := make(map[string]BenchEntry)
	for _, rows := range [][]BenchEntry{baseline.Kernels, baseline.Filters, baseline.Index} {
		for _, e := range rows {
			old[e.Name] = e
		}
	}
	fmt.Fprintf(out, "vs baseline %s (label %q):\n", baseline.Stamp, baseline.Label)
	for _, rows := range [][]BenchEntry{cur.Kernels, cur.Filters, cur.Index} {
		for _, e := range rows {
			o, ok := old[e.Name]
			if !ok {
				fmt.Fprintf(out, "  %-32s %12.0f ns/op   (new row, no baseline)\n", e.Name, e.NsPerOp)
				continue
			}
			if e.PairsPerSec > 0 && o.PairsPerSec > 0 {
				fmt.Fprintf(out, "  %-32s %12.0f -> %12.0f pairs/s  (x%.2f)\n",
					e.Name, o.PairsPerSec, e.PairsPerSec, e.PairsPerSec/o.PairsPerSec)
			} else if o.NsPerOp > 0 {
				fmt.Fprintf(out, "  %-32s %12.0f -> %12.0f ns/op    (x%.2f)\n",
					e.Name, o.NsPerOp, e.NsPerOp, o.NsPerOp/e.NsPerOp)
			}
		}
	}
	if crossWidth {
		warn()
	}
}
