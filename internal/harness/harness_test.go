package harness

import (
	"bytes"
	"strings"
	"testing"
)

// tinyOptions keeps test runtime low on small machines; Scale below the
// floor still produces statistically meaningful minimum sizes.
func tinyOptions(buf *bytes.Buffer) Options {
	return Options{Out: buf, Scale: 0.01, Seed: 7}
}

func TestRegistryComplete(t *testing.T) {
	// Every experiment promised by DESIGN.md's index must be registered.
	want := []string{
		"table1", "table2", "table3", "table4", "table5", "table6",
		"fig4", "fig4-150", "fig4-250", "fig-mm2", "fig-bwa",
		"fig5", "fig5-he100", "fig5-le150", "fig5-he150", "fig5-le250", "fig5-he250",
		"fig6", "fig6-150", "fig6-250", "fig7", "fig8", "figs12",
		"tables24", "tables25", "tables26", "occupancy", "ablation", "fig2",
		"pipeline", "mapstream", "streamingest", "multicontig", "genomescale",
		"chaos",
	}
	ids := IDs()
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(ids) != len(want) {
		t.Errorf("registry has %d experiments, DESIGN.md indexes %d", len(ids), len(want))
	}
	for _, e := range All() {
		if e.PaperRef == "" || e.Title == "" || e.Run == nil {
			t.Errorf("experiment %s incompletely registered", e.ID)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	var buf bytes.Buffer
	if err := Run("nope", Options{Out: &buf}); err == nil {
		t.Fatal("Run of unknown experiment accepted")
	}
}

func TestThresholdGrids(t *testing.T) {
	if got := thresholdsFor(100); len(got) != 11 || got[10] != 10 {
		t.Fatalf("100bp grid: %v", got)
	}
	if got := thresholdsFor(150); got[len(got)-1] != 15 {
		t.Fatalf("150bp grid: %v", got)
	}
	if got := thresholdsFor(250); got[len(got)-1] != 25 {
		t.Fatalf("250bp grid: %v", got)
	}
	if got := thresholdsFor(80); got[len(got)-1] != 8 {
		t.Fatalf("default grid: %v", got)
	}
}

func TestAccuracyExperimentRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("fig4", tinyOptions(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"False accepts", "paper FA rate", "zero false rejects"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig4 output missing %q:\n%s", want, out)
		}
	}
}

func TestComparisonExperimentRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("fig5", tinyOptions(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"GKGPU", "SnkSnake", "paper GKGPU"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig5 output missing %q", want)
		}
	}
}

func TestPipelineExperimentRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("pipeline", tinyOptions(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"speedup", "one-shot", "byte-identical"} {
		if !strings.Contains(out, want) {
			t.Fatalf("pipeline output missing %q:\n%s", want, out)
		}
	}
}

func TestMapStreamExperimentRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("mapstream", tinyOptions(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"one-shot MapReads", "streaming MapStream", "byte-identical", "speedup"} {
		if !strings.Contains(out, want) {
			t.Fatalf("mapstream output missing %q:\n%s", want, out)
		}
	}
}

func TestChaosExperimentRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("chaos", tinyOptions(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fault rate", "redispatches", "bit-identical", "drained its producer", "taxonomy error"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chaos output missing %q:\n%s", want, out)
		}
	}
}

func TestStreamIngestExperimentRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("streamingest", tinyOptions(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"materialized", "channel-fed", "byte-identical", "peak heap"} {
		if !strings.Contains(out, want) {
			t.Fatalf("streamingest output missing %q:\n%s", want, out)
		}
	}
}

func TestThroughputExperimentsRun(t *testing.T) {
	for _, id := range []string{"table2", "fig6", "fig7", "fig8", "figs12"} {
		var buf bytes.Buffer
		if err := Run(id, tinyOptions(&buf)); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s produced no output", id)
		}
	}
}

func TestWholeGenomeExperimentsRun(t *testing.T) {
	for _, id := range []string{"table3", "table4", "table5"} {
		var buf bytes.Buffer
		if err := Run(id, tinyOptions(&buf)); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(buf.String(), "paper") {
			t.Fatalf("%s output missing paper reference", id)
		}
	}
}

func TestMultiContigExperimentRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("multicontig", tinyOptions(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"chr1", "chr2", "chr3", "junction-straddling reads mapped: 0/"} {
		if !strings.Contains(out, want) {
			t.Fatalf("multicontig output missing %q:\n%s", want, out)
		}
	}
}

func TestPowerAndOccupancyRun(t *testing.T) {
	for _, id := range []string{"table6", "occupancy"} {
		var buf bytes.Buffer
		if err := Run(id, tinyOptions(&buf)); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
}

func TestSimSetExperimentsRun(t *testing.T) {
	for _, id := range []string{"tables25", "tables26"} {
		var buf bytes.Buffer
		if err := Run(id, tinyOptions(&buf)); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(buf.String(), "Rejected") {
			t.Fatalf("%s output missing reduction column", id)
		}
	}
}

func TestFig2AndAblationRun(t *testing.T) {
	for _, id := range []string{"fig2", "ablation"} {
		var buf bytes.Buffer
		if err := Run(id, tinyOptions(&buf)); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	var buf bytes.Buffer
	if err := Run("fig2", tinyOptions(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Hamming", "AND", "GateKeeper-FPGA", "GateKeeper-GPU"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig2 output missing %q", want)
		}
	}
}

func TestOptionsScaling(t *testing.T) {
	o := Options{Scale: 0.5}
	o.applyDefaults()
	if got := o.scaled(1000); got != 500 {
		t.Fatalf("scaled(1000) at 0.5 = %d", got)
	}
	o = Options{Scale: 0.0001}
	o.applyDefaults()
	if got := o.scaled(1000); got != 50 {
		t.Fatalf("floor not applied: %d", got)
	}
	var defaulted Options
	defaulted.applyDefaults()
	if defaulted.Scale != 1.0 || defaulted.Seed == 0 {
		t.Fatal("defaults not applied")
	}
}

func TestGenomeScaleExperimentRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("genomescale", tinyOptions(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"BELOW the 2^31", "step=1", "step=16", "serialize:", "load:", "identical to in-memory: true"} {
		if !strings.Contains(out, want) {
			t.Fatalf("genomescale output missing %q:\n%s", want, out)
		}
	}
}
