package harness

import (
	"fmt"

	"repro/internal/cuda"
	"repro/internal/gkgpu"
	"repro/internal/metrics"
)

func init() {
	register(Experiment{
		ID:       "table6",
		PaperRef: "Table 6 / Sup. Table S.27",
		Title:    "Power consumption of GateKeeper-GPU (watts)",
		Run:      runPower,
	})
	register(Experiment{
		ID:       "occupancy",
		PaperRef: "Section 5.4.1",
		Title:    "Resource utilization: occupancy, warp efficiency, SM efficiency",
		Run:      runOccupancy,
	})
}

func runPower(o Options) error {
	// Paper reference: Table 6 (Setup 1) and S.27 (Setup 2), average watts.
	paperAvg := map[string]map[string][2]float64{ // setup -> enc -> [100bp, 250bp]
		"Setup 1": {"device": {61.9, 89.0}, "host": {61.9, 77.1}},
		"Setup 2": {"device": {77.7, 85.5}, "host": {74.7, 77.7}},
	}
	m := cuda.DefaultCostModel()
	tb := metrics.NewTable("setup", "encoding", "len", "e", "min W", "avg W", "max W", "paper avg W")
	for _, ss := range []setupSpec{setup1(), setup2()} {
		for _, enc := range []gkgpu.EncodingActor{gkgpu.EncodeOnDevice, gkgpu.EncodeOnHost} {
			for i, c := range []struct{ L, e int }{{100, 4}, {250, 10}} {
				dev := cuda.NewDevice(0, ss.spec)
				w := cuda.Workload{Pairs: paperPairs, ReadLen: c.L, E: c.e,
					DeviceEncoded: enc == gkgpu.EncodeOnDevice}
				// One sample per batched kernel of a full paper-scale run.
				for batch := 0; batch < 10; batch++ {
					dev.RecordKernel(m.KernelSeconds(ss.spec, w)/10, m.Utilization(ss.spec, w))
				}
				p := dev.Power()
				tb.Add(ss.setup.Name, enc.String(),
					fmt.Sprintf("%dbp", c.L), fmt.Sprintf("%d", c.e),
					fmt.Sprintf("%.1f", p.MinWatts()),
					fmt.Sprintf("%.1f", p.AvgWatts()),
					fmt.Sprintf("%.1f", p.MaxWatts()),
					fmt.Sprintf("%.1f", paperAvg[ss.setup.Name][enc.String()][i]))
			}
		}
	}
	fmt.Fprint(o.Out, tb.String())
	fmt.Fprintln(o.Out, "\nShape checks: longer reads draw more power; the encoding actor has a")
	fmt.Fprintln(o.Out, "negligible effect at 100bp; Kepler idles higher (30 W vs 9 W floors).")
	return nil
}

func runOccupancy(o Options) error {
	lcMax := cuda.LaunchConfig{Blocks: 1, ThreadsPerBlock: 1024, RegsPerThread: 48}
	lc256 := cuda.LaunchConfig{Blocks: 1, ThreadsPerBlock: 256, RegsPerThread: 48}

	fmt.Fprintln(o.Out, "Theoretical occupancy (CUDA occupancy calculator):")
	tb := metrics.NewTable("device", "threads/block", "regs/thread", "blocks/SM",
		"warps/SM", "occupancy", "limited by", "paper")
	for _, spec := range []cuda.DeviceSpec{cuda.GTX1080Ti(), cuda.TeslaK20X()} {
		occ := cuda.TheoreticalOccupancy(spec, lcMax)
		tb.Add(spec.Name, "1024", "48", fmt.Sprintf("%d", occ.BlocksPerSM),
			fmt.Sprintf("%d", occ.WarpsPerSM), metrics.FmtPct(occ.Theoretical), occ.LimitedBy, "50%")
	}
	occ := cuda.TheoreticalOccupancy(cuda.GTX1080Ti(), lc256)
	tb.Add(cuda.GTX1080Ti().Name, "256", "48", fmt.Sprintf("%d", occ.BlocksPerSM),
		fmt.Sprintf("%d", occ.WarpsPerSM), metrics.FmtPct(occ.Theoretical), occ.LimitedBy, "63%")
	fmt.Fprint(o.Out, tb.String())

	// Paper achieved-occupancy values (Section 5.4.1).
	paperAchieved := map[string]map[string][2]float64{
		"Setup 1": {"device": {48.5, 49.2}, "host": {47.5, 48.9}},
		"Setup 2": {"device": {46.8, 48.7}, "host": {44.6, 47.8}},
	}
	fmt.Fprintln(o.Out, "\nAchieved occupancy and efficiencies:")
	tb2 := metrics.NewTable("setup", "encoding", "len", "achieved occ", "paper occ",
		"warp eff", "SM eff")
	for _, ss := range []setupSpec{setup1(), setup2()} {
		for _, enc := range []string{"device", "host"} {
			for i, L := range []int{100, 250} {
				a := cuda.AchievedOccupancy(ss.spec, lcMax, enc == "host", L)
				we := cuda.WarpExecutionEfficiency(ss.spec, enc == "host", L)
				tb2.Add(ss.setup.Name, enc, fmt.Sprintf("%dbp", L),
					metrics.FmtPct(a),
					fmt.Sprintf("%.1f%%", paperAchieved[ss.setup.Name][enc][i]),
					metrics.FmtPct(we),
					metrics.FmtPct(cuda.SMEfficiency(ss.spec)))
			}
		}
	}
	fmt.Fprint(o.Out, tb2.String())
	fmt.Fprintln(o.Out, "\nShape checks: achieved tracks the 50% theoretical bound; warp efficiency")
	fmt.Fprintln(o.Out, "~75-80% at 100bp and >98% at 250bp; SM efficiency always >=95%.")
	return nil
}
