package harness

import (
	"fmt"

	"repro/internal/cuda"
	"repro/internal/gkgpu"
	"repro/internal/metrics"
	"repro/internal/simdata"
)

// setupSpec couples a paper setup with its GPU model.
type setupSpec struct {
	setup gkgpu.Setup
	spec  cuda.DeviceSpec
	gpus  int // devices installed in that setup
}

func setup1() setupSpec { return setupSpec{gkgpu.Setup1(), cuda.GTX1080Ti(), 8} }
func setup2() setupSpec { return setupSpec{gkgpu.Setup2(), cuda.TeslaK20X(), 4} }

// paperPairs is the throughput datasets' size (Sets 3, 7 and 11).
const paperPairs = 30_000_000

// smokeRun executes a small real filtering batch so throughput numbers are
// backed by genuinely executed kernels, then returns the engine stats.
func smokeRun(o Options, ss setupSpec, enc gkgpu.EncodingActor, readLen, e, nDev int) (gkgpu.Stats, error) {
	profile := map[int]string{100: "set3", 150: "set7", 250: "set11"}[readLen]
	if profile == "" {
		profile = "set3"
	}
	p, err := simdata.Set(profile)
	if err != nil {
		return gkgpu.Stats{}, err
	}
	cases := simdata.Generate(p, o.Seed, o.scaled(2_000))
	eng, err := gkgpu.NewEngine(gkgpu.Config{
		ReadLen: readLen, MaxE: thresholdsFor(readLen)[len(thresholdsFor(readLen))-1],
		Encoding: enc, Setup: ss.setup, MaxBatchPairs: 1 << 14,
	}, cuda.NewUniformContext(nDev, ss.spec))
	if err != nil {
		return gkgpu.Stats{}, err
	}
	defer eng.Close()
	if _, err := eng.FilterPairs(simdata.ToEnginePairs(cases), e); err != nil {
		return gkgpu.Stats{}, err
	}
	return eng.Stats(), nil
}

// modelThroughput returns (kernel, filter) throughput in billions of pairs
// per 40 minutes at paper scale for a GPU configuration.
func modelThroughput(ss setupSpec, enc gkgpu.EncodingActor, readLen, e, nDev int) (kt40, ft40 float64) {
	m := cuda.DefaultCostModel()
	w := cuda.Workload{Pairs: paperPairs, ReadLen: readLen, E: e, DeviceEncoded: enc == gkgpu.EncodeOnDevice}
	kt := m.MultiGPUKernelSeconds(ss.spec, w, nDev)
	ft := m.MultiGPUFilterSeconds(ss.spec, w, nDev, ss.setup.HostFactor)
	return metrics.PairsPer40MinBillions(paperPairs, kt), metrics.PairsPer40MinBillions(paperPairs, ft)
}

// modelCPUThroughput returns the same for the GateKeeper-CPU baseline.
func modelCPUThroughput(ss setupSpec, readLen, e, cores int) (kt40, ft40 float64) {
	m := cuda.DefaultCostModel()
	w := cuda.Workload{Pairs: paperPairs, ReadLen: readLen, E: e, DeviceEncoded: true}
	kt := m.CPUKernelSeconds(w, cores, ss.setup.CPUFactor)
	ft := m.CPUFilterSeconds(w, cores, ss.setup.CPUFactor)
	return metrics.PairsPer40MinBillions(paperPairs, kt), metrics.PairsPer40MinBillions(paperPairs, ft)
}

func init() {
	register(Experiment{
		ID:       "table2",
		PaperRef: "Table 2 / Sup. Table S.13",
		Title:    "Filtering throughput for 100bp sequences (billions of pairs / 40 min)",
		Run:      runTable2,
	})
}

func runTable2(o Options) error {
	// Paper reference values (Table 2), row-major: for each setup and
	// metric, [CPU 1-core, CPU 12-core, dev 1-GPU, dev 8-GPU, host 1-GPU,
	// host 8-GPU]; NaN-like -1 marks NA.
	paper := map[string]map[int][]float64{
		"Setup1 kt": {2: {0.7, 7.2, 244.8, 1189.8, 476.8, 3198.4}, 5: {0.4, 3.9, 150.8, 1041.4, 249.3, 1684.7}},
		"Setup1 ft": {2: {0.6, 6.5, 7.7, 39.2, 3.0, 14.4}, 5: {0.4, 3.7, 7.6, 37.8, 2.9, 14.2}},
		"Setup2 kt": {2: {0.7, 5.5, 41.1, -1, 72.2, -1}, 5: {0.3, 3.0, 29.1, -1, 42.0, -1}},
		"Setup2 ft": {2: {0.6, 4.9, 6.1, -1, 2.7, -1}, 5: {0.3, 2.8, 5.7, -1, 2.7, -1}},
	}
	fmtv := func(v float64) string {
		if v < 0 {
			return "NA"
		}
		return fmt.Sprintf("%.1f", v)
	}

	// Authenticity: run a real batch per setup and encoding once.
	for _, ss := range []setupSpec{setup1(), setup2()} {
		for _, enc := range []gkgpu.EncodingActor{gkgpu.EncodeOnDevice, gkgpu.EncodeOnHost} {
			st, err := smokeRun(o, ss, enc, 100, 2, 1)
			if err != nil {
				return err
			}
			fmt.Fprintf(o.Out, "real run (%s, %s-encoded): %s pairs, %.1f%% rejected, wall %.3fs\n",
				ss.setup.Name, enc, metrics.FmtInt(st.Pairs), 100*st.RejectionRate(), st.WallSeconds)
		}
	}
	fmt.Fprintln(o.Out)

	tb := metrics.NewTable("row", "e", "CPU 1c", "CPU 12c",
		"dev 1GPU", "dev 8GPU", "host 1GPU", "host 8GPU", "(paper)")
	for _, rowName := range []string{"Setup1 kt", "Setup1 ft", "Setup2 kt", "Setup2 ft"} {
		ss := setup1()
		if rowName[5] == '2' {
			ss = setup2()
		}
		kernelRow := rowName[7] == 'k'
		for _, e := range []int{2, 5} {
			c1kt, c1ft := modelCPUThroughput(ss, 100, e, 1)
			c12kt, c12ft := modelCPUThroughput(ss, 100, e, 12)
			d1kt, d1ft := modelThroughput(ss, gkgpu.EncodeOnDevice, 100, e, 1)
			h1kt, h1ft := modelThroughput(ss, gkgpu.EncodeOnHost, 100, e, 1)
			var d8kt, d8ft, h8kt, h8ft = -1.0, -1.0, -1.0, -1.0
			if ss.gpus >= 8 {
				d8kt, d8ft = modelThroughput(ss, gkgpu.EncodeOnDevice, 100, e, 8)
				h8kt, h8ft = modelThroughput(ss, gkgpu.EncodeOnHost, 100, e, 8)
			}
			var cells []float64
			if kernelRow {
				cells = []float64{c1kt, c12kt, d1kt, d8kt, h1kt, h8kt}
			} else {
				cells = []float64{c1ft, c12ft, d1ft, d8ft, h1ft, h8ft}
			}
			prow := paper[rowName][e]
			pstr := ""
			for i, pv := range prow {
				if i > 0 {
					pstr += "/"
				}
				pstr += fmtv(pv)
			}
			tb.Add(rowName, fmt.Sprintf("%d", e),
				fmtv(cells[0]), fmtv(cells[1]), fmtv(cells[2]),
				fmtv(cells[3]), fmtv(cells[4]), fmtv(cells[5]), pstr)
		}
	}
	fmt.Fprint(o.Out, tb.String())
	fmt.Fprintln(o.Out, "\nShape checks: host-encoded kernel throughput highest; device-encoded filter")
	fmt.Fprintln(o.Out, "throughput beats host-encoded; GPU filter throughput ~constant in e while CPU halves.")
	return nil
}

func init() {
	for _, rl := range []struct {
		id, ref string
		readLen int
	}{
		{"fig6", "Figure 6 / Sup. Table S.17", 100},
		{"fig6-150", "Sup. Figure S.13 / Table S.18", 150},
		{"fig6-250", "Sup. Figure S.14 / Table S.19", 250},
	} {
		rl := rl
		register(Experiment{
			ID:       rl.id,
			PaperRef: rl.ref,
			Title:    fmt.Sprintf("Effect of the encoding actor on throughput, %dbp (M pairs/s)", rl.readLen),
			Run:      func(o Options) error { return runEncodingActor(o, rl.readLen) },
		})
	}
}

// paperFig6 holds Sup. Table S.17's Setup 1 reference series (100bp), M/s.
var paperFig6 = map[string][]float64{
	"dev kernel":  {110.1, 113.2, 102.0, 91.6, 72.5, 62.8, 57.0},
	"dev filter":  {3.2, 3.2, 3.2, 3.2, 3.2, 3.2, 3.2},
	"host kernel": {699.7, 282.6, 198.7, 149.7, 122.5, 103.9, 89.7},
	"host filter": {1.2, 1.2, 1.2, 1.2, 1.2, 1.2, 1.2},
}

func runEncodingActor(o Options, readLen int) error {
	m := cuda.DefaultCostModel()
	es := []int{0, 1, 2, 3, 4, 5, 6}
	tb := metrics.NewTable("e", "dev kernel", "dev filter", "host kernel", "host filter",
		"paper dev k", "paper host k")
	for i, e := range es {
		row := []string{fmt.Sprintf("%d", e)}
		for _, enc := range []bool{true, false} {
			w := cuda.Workload{Pairs: paperPairs, ReadLen: readLen, E: e, DeviceEncoded: enc}
			kt := m.KernelSeconds(cuda.GTX1080Ti(), w)
			ft := m.FilterSeconds(cuda.GTX1080Ti(), w, 1.0)
			row = append(row,
				fmt.Sprintf("%.1f", metrics.MillionPairsPerSecond(paperPairs, kt)),
				fmt.Sprintf("%.1f", metrics.MillionPairsPerSecond(paperPairs, ft)))
		}
		if readLen == 100 && i < len(paperFig6["dev kernel"]) {
			row = append(row,
				fmt.Sprintf("%.1f", paperFig6["dev kernel"][i]),
				fmt.Sprintf("%.1f", paperFig6["host kernel"][i]))
		} else {
			row = append(row, "-", "-")
		}
		tb.Add(row...)
	}
	fmt.Fprint(o.Out, tb.String())
	fmt.Fprintln(o.Out, "\nShape checks: host-encoded kernel always faster (bars); device-encoded filter")
	fmt.Fprintln(o.Out, "always faster end-to-end (lines); both filter series ~flat in e.")
	return nil
}

func init() {
	register(Experiment{
		ID:       "fig7",
		PaperRef: "Figure 7 / Sup. Table S.20",
		Title:    "Effect of read length on filtering throughput (M pairs/s, filter time)",
		Run:      runReadLength,
	})
}

func runReadLength(o Options) error {
	// Paper values (Table S.20), filter-time M/s at e=0 and e=4.
	paper := map[int]map[int][4]float64{ // e -> readLen -> [S1 dev, S1 host, S2 dev, S2 host]
		0: {100: {3.16, 1.18, 2.73, 1.18}, 150: {2.14, 0.64, 1.74, 0.71}, 250: {1.36, 0.41, 1.74, 0.43}},
		4: {100: {3.16, 1.23, 2.43, 1.11}, 150: {2.18, 0.68, 1.65, 0.70}, 250: {1.41, 0.43, 1.65, 0.43}},
	}
	tb := metrics.NewTable("e", "len", "S1 dev", "S1 host", "S2 dev", "S2 host", "paper (S1d/S1h/S2d/S2h)")
	for _, e := range []int{0, 4} {
		for _, L := range []int{100, 150, 250} {
			row := []string{fmt.Sprintf("%d", e), fmt.Sprintf("%dbp", L)}
			for _, ss := range []setupSpec{setup1(), setup2()} {
				for _, enc := range []gkgpu.EncodingActor{gkgpu.EncodeOnDevice, gkgpu.EncodeOnHost} {
					_, ft40 := modelThroughput(ss, enc, L, e, 1)
					// Convert billions/40min back to M/s for the figure's unit.
					row = append(row, fmt.Sprintf("%.2f", ft40*1e9/2400/1e6))
				}
			}
			p := paper[e][L]
			row = append(row, fmt.Sprintf("%.2f/%.2f/%.2f/%.2f", p[0], p[1], p[2], p[3]))
			tb.Add(row...)
		}
	}
	fmt.Fprint(o.Out, tb.String())
	fmt.Fprintln(o.Out, "\nShape check: throughput falls monotonically with read length in every configuration.")
	return nil
}

func init() {
	register(Experiment{
		ID:       "fig8",
		PaperRef: "Figure 8 / Sup. Tables S.21-S.23",
		Title:    "Multi-GPU scaling, Setup 1 (M pairs/s vs number of devices)",
		Run:      runMultiGPU,
	})
}

func runMultiGPU(o Options) error {
	// Sup. Table S.21 reference series (100bp, e=2).
	paperKernelDev := []float64{102, 201, 300, 364, 376, 488, 487, 496}
	paperKernelHost := []float64{199, 388, 542, 704, 877, 1062, 1171, 1333}
	paperFilterDev := []float64{3, 6, 8, 10, 12, 14, 15, 16}
	paperFilterHost := []float64{1, 2, 3, 4, 5, 5, 6, 6}

	cases := []struct {
		readLen, e int
		table      string
	}{
		{100, 2, "S.21"}, {150, 4, "S.22"}, {250, 8, "S.23"},
	}
	for _, c := range cases {
		fmt.Fprintf(o.Out, "%dbp, e=%d (Sup. Table %s):\n", c.readLen, c.e, c.table)
		tb := metrics.NewTable("GPUs", "dev kernel", "host kernel", "dev filter", "host filter",
			"paper dev k", "paper host k", "paper dev f", "paper host f")
		for n := 1; n <= 8; n++ {
			ss := setup1()
			dk, df := modelThroughput(ss, gkgpu.EncodeOnDevice, c.readLen, c.e, n)
			hk, hf := modelThroughput(ss, gkgpu.EncodeOnHost, c.readLen, c.e, n)
			toMs := func(b40 float64) string { return fmt.Sprintf("%.0f", b40*1e9/2400/1e6) }
			row := []string{fmt.Sprintf("%d", n), toMs(dk), toMs(hk), toMs(df), toMs(hf)}
			if c.readLen == 100 {
				row = append(row,
					fmt.Sprintf("%.0f", paperKernelDev[n-1]), fmt.Sprintf("%.0f", paperKernelHost[n-1]),
					fmt.Sprintf("%.0f", paperFilterDev[n-1]), fmt.Sprintf("%.0f", paperFilterHost[n-1]))
			} else {
				row = append(row, "-", "-", "-", "-")
			}
			tb.Add(row...)
		}
		fmt.Fprint(o.Out, tb.String())
		fmt.Fprintln(o.Out)
	}
	fmt.Fprintln(o.Out, "Shape checks: host-encoded kernel scales near-linearly with devices;")
	fmt.Fprintln(o.Out, "device-encoded kernel scaling is flatter; filter-time scaling is steeper for device encoding.")
	return nil
}

func init() {
	register(Experiment{
		ID:       "figs12",
		PaperRef: "Sup. Figure S.12 / Table S.16",
		Title:    "Effect of error threshold on filter time, 250bp, 30M pairs (seconds)",
		Run:      runThresholdEffect,
	})
}

func runThresholdEffect(o Options) error {
	// Sup. Table S.16 reference (Setup 1): filter seconds for 30M pairs.
	paperCPU := map[int]float64{0: 12.18, 1: 21.32, 2: 28.22, 4: 41.72, 6: 56.06, 8: 70.25, 10: 84.54}
	paperDev := map[int]float64{0: 22.10, 1: 23.84, 2: 22.03, 4: 21.27, 6: 21.78, 8: 21.61, 10: 22.06}
	paperHost := map[int]float64{0: 73.99, 1: 68.85, 2: 68.77, 4: 69.31, 6: 69.43, 8: 69.59, 10: 69.97}

	m := cuda.DefaultCostModel()
	ss := setup1()
	tb := metrics.NewTable("e", "CPU 12c", "GPU dev", "GPU host",
		"paper CPU", "paper dev", "paper host")
	for _, e := range []int{0, 1, 2, 4, 6, 8, 10} {
		wDev := cuda.Workload{Pairs: paperPairs, ReadLen: 250, E: e, DeviceEncoded: true}
		wHost := wDev
		wHost.DeviceEncoded = false
		tb.Add(fmt.Sprintf("%d", e),
			fmt.Sprintf("%.1f", m.CPUFilterSeconds(wDev, 12, ss.setup.CPUFactor)),
			fmt.Sprintf("%.1f", m.FilterSeconds(ss.spec, wDev, ss.setup.HostFactor)),
			fmt.Sprintf("%.1f", m.FilterSeconds(ss.spec, wHost, ss.setup.HostFactor)),
			fmt.Sprintf("%.1f", paperCPU[e]),
			fmt.Sprintf("%.1f", paperDev[e]),
			fmt.Sprintf("%.1f", paperHost[e]))
	}
	fmt.Fprint(o.Out, tb.String())
	fmt.Fprintln(o.Out, "\nShape checks: CPU grows ~linearly with e; both GPU series stay ~flat;")
	fmt.Fprintln(o.Out, "the CPU line crosses the device-encoded GPU line between e=1 and e=2.")
	return nil
}
