package cuda

// LaunchConfig describes one kernel launch geometry.
type LaunchConfig struct {
	Blocks          int
	ThreadsPerBlock int
	RegsPerThread   int
}

// Threads returns the total thread count of the launch.
func (lc LaunchConfig) Threads() int { return lc.Blocks * lc.ThreadsPerBlock }

// Occupancy holds the output of the CUDA occupancy calculator for one
// (device, kernel) combination — Section 5.4.1 evaluates exactly these
// quantities.
type Occupancy struct {
	BlocksPerSM   int
	WarpsPerSM    int
	ActiveThreads int     // per SM
	Theoretical   float64 // active warps / max warps
	LimitedBy     string  // "registers", "blocks", or "threads"
}

// TheoreticalOccupancy reproduces the CUDA occupancy calculator: given a
// device and a kernel's register footprint and block size, it reports how
// many warps per SM can be resident. GateKeeper-GPU uses 40-48 registers per
// thread; with the maximum 1024-thread blocks that limits Pascal to 1 block
// per SM = 32 of 64 warps = the 50% theoretical occupancy the paper reports
// (and 63% would need <=256-thread blocks, which the paper rejects because
// smaller blocks shrink the batch and multiply host-device transfers).
func TheoreticalOccupancy(spec DeviceSpec, lc LaunchConfig) Occupancy {
	if lc.ThreadsPerBlock <= 0 || lc.RegsPerThread <= 0 {
		return Occupancy{LimitedBy: "invalid"}
	}
	limit := "threads"
	// Limit from registers: whole blocks must fit the register file.
	regsPerBlock := lc.RegsPerThread * lc.ThreadsPerBlock
	byRegs := spec.RegistersPerSM / regsPerBlock
	// Limit from the block scheduler.
	byBlocks := spec.MaxBlocksPerSM
	// Limit from resident threads.
	byThreads := spec.MaxThreadsPerSM / lc.ThreadsPerBlock

	blocks := byRegs
	limit = "registers"
	if byBlocks < blocks {
		blocks, limit = byBlocks, "blocks"
	}
	if byThreads < blocks {
		blocks, limit = byThreads, "threads"
	}
	if blocks < 1 {
		return Occupancy{LimitedBy: limit}
	}
	warps := blocks * lc.ThreadsPerBlock / WarpSize
	if warps > spec.MaxWarpsPerSM {
		warps = spec.MaxWarpsPerSM
	}
	return Occupancy{
		BlocksPerSM:   blocks,
		WarpsPerSM:    warps,
		ActiveThreads: blocks * lc.ThreadsPerBlock,
		Theoretical:   float64(warps) / float64(spec.MaxWarpsPerSM),
		LimitedBy:     limit,
	}
}

// AchievedOccupancy models the measured occupancy of a GateKeeper-GPU run:
// very close to theoretical (the warp scheduler issues with negligible
// stalls, Section 5.4.1), shaved slightly by host encoding (less resident
// work per transfer) and on Kepler.
func AchievedOccupancy(spec DeviceSpec, lc LaunchConfig, hostEncoded bool, readLen int) float64 {
	theo := TheoreticalOccupancy(spec, lc).Theoretical
	f := 0.97
	if hostEncoded {
		f -= 0.02
	}
	if spec.Architecture == Kepler {
		f -= 0.025
	}
	if readLen >= 200 {
		f += 0.013 // longer reads keep warps busier between transfers
	}
	return theo * f
}

// WarpExecutionEfficiency models nvprof's warp_execution_efficiency metric:
// mostly-uniform control flow, dented at short read lengths where the
// per-thread tail work diverges, matching the ~75-80% (100bp) vs >98%
// (250bp) measurements of Section 5.4.1.
func WarpExecutionEfficiency(spec DeviceSpec, hostEncoded bool, readLen int) float64 {
	if readLen >= 200 {
		return 0.985
	}
	eff := 0.791
	if hostEncoded {
		eff -= 0.046
	}
	if spec.Architecture == Kepler {
		eff += 0.012
	}
	return eff
}

// SMEfficiency models multiprocessor activity: the paper reports >=98% on
// average and never below 95% regardless of read length or encoding actor.
func SMEfficiency(spec DeviceSpec) float64 {
	if spec.Architecture == Kepler {
		return 0.982
	}
	return 0.988
}
