package cuda

// PowerTrace accumulates an nvprof-style power profile (Section 5.4.2,
// Tables 6 and S.27): minimum, maximum and duration-weighted average power
// over the kernels a device has executed.
type PowerTrace struct {
	minW, maxW  float64
	weightedSum float64 // watt-seconds
	totalTime   float64 // seconds
	samples     int
}

// sample folds one kernel execution into the trace. Average draw is
// idle + (TDP-idle) x utilization; the transient peak the profiler catches
// is modelled as a utilization spike that grows with read-length-driven
// memory pressure (folded into the caller's utilization value).
func (p *PowerTrace) sample(spec DeviceSpec, seconds, utilization float64) {
	if seconds <= 0 {
		return
	}
	span := spec.TDPWatts - spec.IdleWatts
	avg := spec.IdleWatts + span*utilization
	peakUtil := utilization * (1.9 + 3.4*clamp01((utilization-0.20)/0.15))
	if peakUtil > 1 {
		peakUtil = 1
	}
	peak := spec.IdleWatts + span*peakUtil
	min := spec.IdleWatts

	if p.samples == 0 || min < p.minW {
		p.minW = min
	}
	if peak > p.maxW {
		p.maxW = peak
	}
	p.weightedSum += avg * seconds
	p.totalTime += seconds
	p.samples++
}

// MinWatts returns the minimum observed draw (idle floor).
func (p PowerTrace) MinWatts() float64 { return p.minW }

// MaxWatts returns the peak observed draw.
func (p PowerTrace) MaxWatts() float64 { return p.maxW }

// AvgWatts returns the duration-weighted average draw.
func (p PowerTrace) AvgWatts() float64 {
	if p.totalTime == 0 {
		return 0
	}
	return p.weightedSum / p.totalTime
}

// Samples returns the number of kernel executions folded in.
func (p PowerTrace) Samples() int { return p.samples }

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
