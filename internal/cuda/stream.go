package cuda

// Stream is a modelled CUDA stream: an ordered timeline of asynchronous
// operations. GateKeeper-GPU submits each input buffer's prefetch to its own
// stream so migrations overlap ("each buffer is asynchronously submitted to
// a different stream"); the engine models that overlap by taking the maximum
// of the streams' transfer times rather than their sum.
type Stream struct {
	dev *Device
	// busySeconds is the modelled time this stream has spent on transfers
	// and kernels since the last Reset.
	busySeconds float64
}

// NewStream creates a stream bound to the device.
func (d *Device) NewStream() *Stream { return &Stream{dev: d} }

// addTransfer appends a modelled transfer duration to the stream timeline.
func (s *Stream) addTransfer(seconds float64) { s.busySeconds += seconds }

// AddKernel appends a modelled kernel duration to the stream timeline.
func (s *Stream) AddKernel(seconds float64) { s.busySeconds += seconds }

// BusySeconds returns the stream's modelled occupancy since the last Reset.
func (s *Stream) BusySeconds() float64 { return s.busySeconds }

// Reset clears the stream timeline (start of a new batch).
func (s *Stream) Reset() { s.busySeconds = 0 }

// Event is a point on a device timeline, in the spirit of cudaEvent_t. The
// paper measures kernel time with the CUDA Event API; the engine brackets
// each modelled kernel with a pair of events.
type Event struct {
	seconds float64
	set     bool
}

// Record captures the given modelled timestamp.
func (e *Event) Record(seconds float64) {
	e.seconds = seconds
	e.set = true
}

// ElapsedSeconds returns the modelled time between two recorded events.
func ElapsedSeconds(start, end Event) float64 {
	if !start.set || !end.set {
		return 0
	}
	return end.seconds - start.seconds
}

// MaxStreamSeconds returns the longest busy time among streams — the
// effective wall contribution of overlapped asynchronous submissions.
func MaxStreamSeconds(streams ...*Stream) float64 {
	max := 0.0
	for _, s := range streams {
		if s.busySeconds > max {
			max = s.busySeconds
		}
	}
	return max
}
