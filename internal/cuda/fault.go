package cuda

import (
	"errors"
	"fmt"
	"sync"
)

// Fault injection: a seeded, deterministic failure schedule attachable to a
// Device. Real GPU deployments of this filter family run for hours across
// heterogeneous cards where transient launch failures, allocation failures,
// and transfer errors are routine; the simulated runtime reproduces them on
// demand so the engine's fault-tolerance paths are testable. A device with no
// plan attached pays one nil check per operation and nothing else.
//
// Faults follow the CUDA error model: Launch and AllocUnified fail
// synchronously, while transfer faults (PrefetchAsync/DeviceTouch are
// asynchronous in the real runtime) are recorded and surface at the next
// synchronization point — the next Launch on the device — exactly as an
// async CUDA error surfaces at the next cudaDeviceSynchronize.

// FaultOp identifies an operation class a FaultPlan can target.
type FaultOp uint8

// Operation classes.
const (
	OpLaunch FaultOp = iota
	OpAlloc
	OpTransfer
	numFaultOps
)

func (op FaultOp) String() string {
	switch op {
	case OpLaunch:
		return "launch"
	case OpAlloc:
		return "alloc"
	case OpTransfer:
		return "transfer"
	}
	return "unknown"
}

// Sentinel errors of the injection layer. ErrDeviceLost is permanent: once a
// device dies every subsequent operation on it fails with it.
var (
	ErrInjectedLaunch   = errors.New("cuda: injected launch fault")
	ErrInjectedAlloc    = errors.New("cuda: injected allocation fault")
	ErrInjectedTransfer = errors.New("cuda: injected transfer fault")
	ErrDeviceLost       = errors.New("cuda: device lost")
)

// FaultPlan is a deterministic failure schedule: per-op-class probabilities
// drawn from a seeded hash of the op ordinal (so a schedule replays
// identically however goroutines interleave, because ordinals within a class
// are serialized by the plan's lock and each draw depends only on seed, class,
// and ordinal), one-shot failures at chosen ordinals, and a permanent
// device-death mode. Attach with Device.InjectFaults. All methods are safe
// for concurrent use; the With*/Fail*/DieAt* configurators return the plan
// for chaining and are meant to run before the plan is attached.
type FaultPlan struct {
	mu      sync.Mutex
	seed    uint64
	rates   [numFaultOps]float64
	oneShot [numFaultOps]map[uint64]bool
	counts  [numFaultOps]uint64
	dieAt   uint64 // launch ordinal at which the device dies; 0 = never
	dead    bool
	pending error // async transfer fault awaiting the next sync point
}

// NewFaultPlan returns an empty plan (injects nothing) with the given seed.
func NewFaultPlan(seed int64) *FaultPlan {
	return &FaultPlan{seed: uint64(seed)}
}

// WithRate sets the failure probability for one op class; each operation of
// that class draws independently (but deterministically) against it.
func (p *FaultPlan) WithRate(op FaultOp, prob float64) *FaultPlan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rates[op] = prob
	return p
}

// FailNth makes the nth (1-based) operation of the class fail once.
func (p *FaultPlan) FailNth(op FaultOp, nth int) *FaultPlan {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.oneShot[op] == nil {
		p.oneShot[op] = make(map[uint64]bool)
	}
	p.oneShot[op][uint64(nth)] = true
	return p
}

// DieAtLaunch kills the device permanently at its nth (1-based) launch: that
// launch and every operation after it fail with ErrDeviceLost.
func (p *FaultPlan) DieAtLaunch(nth int) *FaultPlan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dieAt = uint64(nth)
	return p
}

// Kill marks the device dead immediately.
func (p *FaultPlan) Kill() *FaultPlan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dead = true
	return p
}

// Dead reports whether the device has died.
func (p *FaultPlan) Dead() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dead
}

// shouldFail draws the deterministic failure decision for the nth op of a
// class: a scheduled one-shot, or a seeded hash draw against the class rate.
func (p *FaultPlan) shouldFail(op FaultOp, n uint64) bool {
	if p.oneShot[op][n] {
		delete(p.oneShot[op], n)
		return true
	}
	return p.rates[op] > 0 && hash01(p.seed, op, n) < p.rates[op]
}

// checkLaunch gates one kernel launch: device death, then any pending async
// transfer fault (the launch is the synchronization point that surfaces it),
// then the launch's own scheduled or drawn fault.
func (p *FaultPlan) checkLaunch() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dead {
		return ErrDeviceLost
	}
	if err := p.pending; err != nil {
		p.pending = nil
		return err
	}
	p.counts[OpLaunch]++
	n := p.counts[OpLaunch]
	if p.dieAt > 0 && n >= p.dieAt {
		p.dead = true
		return fmt.Errorf("%w (died at launch %d)", ErrDeviceLost, n)
	}
	if p.shouldFail(OpLaunch, n) {
		return fmt.Errorf("%w (launch %d)", ErrInjectedLaunch, n)
	}
	return nil
}

// checkAlloc gates one unified-memory allocation.
func (p *FaultPlan) checkAlloc() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dead {
		return ErrDeviceLost
	}
	p.counts[OpAlloc]++
	if n := p.counts[OpAlloc]; p.shouldFail(OpAlloc, n) {
		return fmt.Errorf("%w (allocation %d)", ErrInjectedAlloc, n)
	}
	return nil
}

// noteTransfer draws one transfer operation's fault. Transfers are
// asynchronous, so a fault is not returned here: it is held and surfaced by
// the device's next launch.
func (p *FaultPlan) noteTransfer() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dead || p.pending != nil {
		return
	}
	p.counts[OpTransfer]++
	if n := p.counts[OpTransfer]; p.shouldFail(OpTransfer, n) {
		p.pending = fmt.Errorf("%w (transfer %d)", ErrInjectedTransfer, n)
	}
}

// hash01 maps (seed, op, ordinal) to [0,1) with a splitmix64-style finalizer,
// so fault draws are reproducible independent of scheduling.
func hash01(seed uint64, op FaultOp, n uint64) float64 {
	x := seed ^ (uint64(op)+1)*0x9E3779B97F4A7C15 ^ n*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// InjectFaults attaches a failure schedule to the device; nil detaches it.
// Attach before handing the device to an engine.
func (d *Device) InjectFaults(p *FaultPlan) { d.faults = p }

// FaultPlan returns the attached schedule, nil when none.
func (d *Device) FaultPlan() *FaultPlan { return d.faults }
