package cuda

// Workload describes one batch of filtrations for the cost model.
type Workload struct {
	Pairs         int  // number of read/candidate pairs
	ReadLen       int  // bases per sequence
	E             int  // error threshold (2e+1 masks)
	DeviceEncoded bool // encoding performed inside the kernel
}

// Words returns the encoded words per sequence (16 bases per 32-bit word).
func (w Workload) Words() int { return (w.ReadLen + 15) / 16 }

// Masks returns the number of Hamming masks the kernel builds.
func (w Workload) Masks() int { return 2*w.E + 1 }

// CostModel holds the calibration constants of the analytic performance
// model. The defaults are fitted to the paper's raw measurements
// (Sup. Tables S.13-S.19): per-pair kernel cost is linear in
// words x masks with a fixed overhead, device-side encoding costs grow with
// the square of the read length (strided uncoalesced stores), and host-side
// preparation costs are linear in read length. All GPU constants are in
// core-cycle slots (divide by cores x clock); host constants are seconds.
type CostModel struct {
	// GPU kernel, in cycle slots per pair.
	KernelBaseSlots    float64 // fixed per-filtration overhead
	KernelSlotsPerWord float64 // x words x masks
	EncodeSlotsPerLen2 float64 // x readLen^2, device-encoded only

	// Host preparation, seconds per pair per base.
	HostFillPerBase   float64 // device-encoded path: raw buffer fill
	HostEncodePerBase float64 // host-encoded path: 2-bit packing on CPU

	// Unified-memory penalties on devices without prefetch support.
	FaultTransferFactor float64 // transfers served by page faults
	FaultKernelStall    float64 // kernel slowdown from in-kernel faults

	// Per-kernel-launch overheads: launch latency on the device clock and
	// batching/synchronization cost on the host clock. These are what make
	// small read batches expensive (Table 1: 100-read batches almost halve
	// throughput versus 100,000-read batches).
	PerLaunchSeconds    float64
	PerBatchHostSeconds float64

	// Multi-GPU scaling imbalance per extra device.
	MultiGPUKernelOverheadDev  float64
	MultiGPUKernelOverheadHost float64
	MultiGPUFilterOverhead     float64

	// CPU (GateKeeper-CPU) constants, seconds per pair.
	CPUBasePerBase  float64 // x readLen: encoding + loop overhead
	CPUPerMaskWord  float64 // x words x masks
	CPUCoreEff      float64 // multi-core scaling efficiency
	CPUFilterFactor float64 // filter time / kernel time on CPU
}

// DefaultCostModel returns the constants calibrated against Setup 1
// (GTX 1080 Ti, Xeon Gold 6140) in the supplementary tables.
func DefaultCostModel() CostModel {
	return CostModel{
		KernelBaseSlots:    3516,
		KernelSlotsPerWord: 656,
		EncodeSlotsPerLen2: 4.34,

		HostFillPerBase:   3.0e-9,
		HostEncodePerBase: 8.1e-9,

		FaultTransferFactor: 3.0,
		FaultKernelStall:    1.20,

		PerLaunchSeconds:    0.6e-3,
		PerBatchHostSeconds: 2.5e-3,

		MultiGPUKernelOverheadDev:  0.090,
		MultiGPUKernelOverheadHost: 0.025,
		MultiGPUFilterOverhead:     0.060,

		CPUBasePerBase:  8.8e-9,
		CPUPerMaskWord:  72.6e-9,
		CPUCoreEff:      0.85,
		CPUFilterFactor: 1.12,
	}
}

// KernelSlotsPerPair returns the modelled core-cycle slots one filtration
// occupies on the device.
func (m CostModel) KernelSlotsPerPair(w Workload) float64 {
	slots := m.KernelBaseSlots + m.KernelSlotsPerWord*float64(w.Words()*w.Masks())
	if w.DeviceEncoded {
		slots += m.EncodeSlotsPerLen2 * float64(w.ReadLen) * float64(w.ReadLen)
	}
	return slots
}

// KernelSeconds returns the modelled kernel time for the workload on one
// device: slots / (cores x clock x architectural efficiency), plus the
// page-fault stall factor when the device cannot prefetch.
func (m CostModel) KernelSeconds(spec DeviceSpec, w Workload) float64 {
	slotRate := float64(spec.Cores()) * spec.ClockGHz * 1e9 * spec.EffFactor
	t := float64(w.Pairs) * m.KernelSlotsPerPair(w) / slotRate
	if !spec.SupportsPrefetch() {
		t *= m.FaultKernelStall
	}
	return t
}

// TransferBytes returns the host-to-device payload per pair: raw characters
// on the device-encoded path (1 byte per base, read + reference segment),
// packed words on the host-encoded path, plus the 8-byte result write-back.
func (w Workload) TransferBytes() int {
	if w.DeviceEncoded {
		return 2*w.ReadLen + 8
	}
	return 2*w.Words()*4 + 8
}

// TransferSeconds returns the modelled host-device transfer time. Without
// prefetch support every page moves on demand, multiplying the effective
// cost (FaultTransferFactor), which is the Setup 2 penalty the paper
// attributes to the missing prefetch feature.
func (m CostModel) TransferSeconds(spec DeviceSpec, w Workload) float64 {
	t := float64(w.Pairs) * float64(w.TransferBytes()) / spec.PCIeBandwidth()
	if !spec.SupportsPrefetch() {
		t *= m.FaultTransferFactor
	}
	return t
}

// HostPrepSeconds returns the host-side preparation time for the batch:
// filling raw buffers (device-encoded) or 2-bit packing (host-encoded).
// hostFactor scales for the host CPU of the setup (1.0 for Setup 1).
func (m CostModel) HostPrepSeconds(w Workload, hostFactor float64) float64 {
	perBase := m.HostEncodePerBase
	if w.DeviceEncoded {
		perBase = m.HostFillPerBase
	}
	return float64(w.Pairs) * perBase * float64(w.ReadLen) * hostFactor
}

// FilterSeconds returns the modelled end-to-end filter time on one device:
// host preparation + transfers + kernel (Section 4.3's "filter time,
// measured from the host's perspective").
func (m CostModel) FilterSeconds(spec DeviceSpec, w Workload, hostFactor float64) float64 {
	return m.HostPrepSeconds(w, hostFactor) +
		m.TransferSeconds(spec, w) +
		m.KernelSeconds(spec, w)
}

// MultiGPUKernelSeconds returns the modelled kernel time when the workload
// is split evenly across n devices: per-device share plus a per-extra-device
// imbalance overhead. Host-encoded batches scale closer to linearly because
// the kernel is pure mask arithmetic (Figure 8's observation).
func (m CostModel) MultiGPUKernelSeconds(spec DeviceSpec, w Workload, n int) float64 {
	if n <= 1 {
		return m.KernelSeconds(spec, w)
	}
	share := w
	share.Pairs = (w.Pairs + n - 1) / n
	overhead := m.MultiGPUKernelOverheadHost
	if w.DeviceEncoded {
		overhead = m.MultiGPUKernelOverheadDev
	}
	return m.KernelSeconds(spec, share) * (1 + overhead*float64(n-1))
}

// MultiGPUFilterSeconds is FilterSeconds under an even n-way split with the
// host preparation parallelized across per-device batching goroutines.
func (m CostModel) MultiGPUFilterSeconds(spec DeviceSpec, w Workload, n int, hostFactor float64) float64 {
	if n <= 1 {
		return m.FilterSeconds(spec, w, hostFactor)
	}
	share := w
	share.Pairs = (w.Pairs + n - 1) / n
	return m.FilterSeconds(spec, share, hostFactor) * (1 + m.MultiGPUFilterOverhead*float64(n-1))
}

// CPUKernelSeconds returns the modelled GateKeeper-CPU algorithm time on the
// given core count (kernel time in Table 2's CPU columns). cpuFactor scales
// for the setup's host CPU.
func (m CostModel) CPUKernelSeconds(w Workload, cores int, cpuFactor float64) float64 {
	perPair := m.CPUBasePerBase*float64(w.ReadLen) +
		m.CPUPerMaskWord*float64(w.Words()*w.Masks())
	t := float64(w.Pairs) * perPair * cpuFactor
	if cores > 1 {
		t /= float64(cores) * m.CPUCoreEff
	}
	return t
}

// CPUFilterSeconds returns the modelled end-to-end CPU filter time.
func (m CostModel) CPUFilterSeconds(w Workload, cores int, cpuFactor float64) float64 {
	return m.CPUKernelSeconds(w, cores, cpuFactor) * m.CPUFilterFactor
}

// Utilization models the average compute utilization the kernel sustains,
// which drives the power trace: longer reads process more words per thread
// and push the device harder (Section 5.4.2: "the kernel tends to use more
// power in longer sequences").
func (m CostModel) Utilization(spec DeviceSpec, w Workload) float64 {
	l := float64(w.ReadLen)
	if l > 250 {
		l = 250
	}
	util := 0.215 + 0.11*(l-100)/150
	if spec.Architecture == Kepler {
		util = 0.233 + 0.037*(l-100)/150
	}
	if !w.DeviceEncoded && w.ReadLen >= 200 {
		util -= 0.048 // host-encoded long reads stream more, compute less
	}
	if util < 0.05 {
		util = 0.05
	}
	return util
}
