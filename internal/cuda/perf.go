package cuda

// Workload describes one batch of filtrations for the cost model.
type Workload struct {
	Pairs         int  // number of read/candidate pairs
	ReadLen       int  // bases per sequence
	E             int  // error threshold (2e+1 masks)
	DeviceEncoded bool // encoding performed inside the kernel
}

// Words returns the encoded words per sequence (16 bases per 32-bit word).
//
//gk:noalloc
func (w Workload) Words() int { return (w.ReadLen + 15) / 16 }

// Masks returns the number of Hamming masks the kernel builds.
//
//gk:noalloc
func (w Workload) Masks() int { return 2*w.E + 1 }

// CostModel holds the calibration constants of the analytic performance
// model. The defaults are fitted to the paper's raw measurements
// (Sup. Tables S.13-S.19): per-pair kernel cost is linear in
// words x masks with a fixed overhead, device-side encoding costs grow with
// the square of the read length (strided uncoalesced stores), and host-side
// preparation costs are linear in read length. All GPU constants are in
// core-cycle slots (divide by cores x clock); host constants are seconds.
type CostModel struct {
	// GPU kernel, in cycle slots per pair.
	KernelBaseSlots    float64 // fixed per-filtration overhead
	KernelSlotsPerWord float64 // x words x masks
	EncodeSlotsPerLen2 float64 // x readLen^2, device-encoded only

	// Host preparation, seconds per pair per base.
	HostFillPerBase   float64 // device-encoded path: raw buffer fill
	HostEncodePerBase float64 // host-encoded path: 2-bit packing on CPU

	// Unified-memory penalties on devices without prefetch support.
	FaultTransferFactor float64 // transfers served by page faults
	FaultKernelStall    float64 // kernel slowdown from in-kernel faults

	// Per-kernel-launch overheads: launch latency on the device clock and
	// batching/synchronization cost on the host clock. These are what make
	// small read batches expensive (Table 1: 100-read batches almost halve
	// throughput versus 100,000-read batches).
	PerLaunchSeconds    float64
	PerBatchHostSeconds float64

	// Multi-GPU scaling imbalance per extra device.
	MultiGPUKernelOverheadDev  float64
	MultiGPUKernelOverheadHost float64
	MultiGPUFilterOverhead     float64

	// StreamEncodeEff is the per-extra-worker efficiency of the parallel
	// host-encode pool used by the double-buffered streaming path (1.0 would
	// be perfect linear scaling; memory-bandwidth contention keeps it below).
	StreamEncodeEff float64

	// CPU (GateKeeper-CPU) constants, seconds per pair.
	CPUBasePerBase  float64 // x readLen: encoding + loop overhead
	CPUPerMaskWord  float64 // x words x masks
	CPUCoreEff      float64 // multi-core scaling efficiency
	CPUFilterFactor float64 // filter time / kernel time on CPU
}

// DefaultCostModel returns the constants calibrated against Setup 1
// (GTX 1080 Ti, Xeon Gold 6140) in the supplementary tables.
func DefaultCostModel() CostModel {
	return CostModel{
		KernelBaseSlots:    3516,
		KernelSlotsPerWord: 656,
		EncodeSlotsPerLen2: 4.34,

		HostFillPerBase:   3.0e-9,
		HostEncodePerBase: 8.1e-9,

		FaultTransferFactor: 3.0,
		FaultKernelStall:    1.20,

		PerLaunchSeconds:    0.6e-3,
		PerBatchHostSeconds: 2.5e-3,

		MultiGPUKernelOverheadDev:  0.090,
		MultiGPUKernelOverheadHost: 0.025,
		MultiGPUFilterOverhead:     0.060,

		StreamEncodeEff: 0.75,

		CPUBasePerBase:  8.8e-9,
		CPUPerMaskWord:  72.6e-9,
		CPUCoreEff:      0.85,
		CPUFilterFactor: 1.12,
	}
}

// KernelSlotsPerPair returns the modelled core-cycle slots one filtration
// occupies on the device.
//
//gk:noalloc
func (m CostModel) KernelSlotsPerPair(w Workload) float64 {
	slots := m.KernelBaseSlots + m.KernelSlotsPerWord*float64(w.Words()*w.Masks())
	if w.DeviceEncoded {
		slots += m.EncodeSlotsPerLen2 * float64(w.ReadLen) * float64(w.ReadLen)
	}
	return slots
}

// KernelSeconds returns the modelled kernel time for the workload on one
// device: slots / (cores x clock x architectural efficiency), plus the
// page-fault stall factor when the device cannot prefetch.
//
//gk:noalloc
func (m CostModel) KernelSeconds(spec DeviceSpec, w Workload) float64 {
	slotRate := float64(spec.Cores()) * spec.ClockGHz * 1e9 * spec.EffFactor
	t := float64(w.Pairs) * m.KernelSlotsPerPair(w) / slotRate
	if !spec.SupportsPrefetch() {
		t *= m.FaultKernelStall
	}
	return t
}

// TransferBytes returns the host-to-device payload per pair: raw characters
// on the device-encoded path (1 byte per base, read + reference segment),
// packed words on the host-encoded path, plus the 8-byte result write-back.
//
//gk:noalloc
func (w Workload) TransferBytes() int {
	if w.DeviceEncoded {
		return 2*w.ReadLen + 8
	}
	return 2*w.Words()*4 + 8
}

// TransferSeconds returns the modelled host-device transfer time. Without
// prefetch support every page moves on demand, multiplying the effective
// cost (FaultTransferFactor), which is the Setup 2 penalty the paper
// attributes to the missing prefetch feature.
//
//gk:noalloc
func (m CostModel) TransferSeconds(spec DeviceSpec, w Workload) float64 {
	t := float64(w.Pairs) * float64(w.TransferBytes()) / spec.PCIeBandwidth()
	if !spec.SupportsPrefetch() {
		t *= m.FaultTransferFactor
	}
	return t
}

// HostPrepSeconds returns the host-side preparation time for the batch:
// filling raw buffers (device-encoded) or 2-bit packing (host-encoded).
// hostFactor scales for the host CPU of the setup (1.0 for Setup 1).
//
//gk:noalloc
func (m CostModel) HostPrepSeconds(w Workload, hostFactor float64) float64 {
	perBase := m.HostEncodePerBase
	if w.DeviceEncoded {
		perBase = m.HostFillPerBase
	}
	return float64(w.Pairs) * perBase * float64(w.ReadLen) * hostFactor
}

// FilterSeconds returns the modelled end-to-end filter time on one device:
// host preparation + transfers + kernel (Section 4.3's "filter time,
// measured from the host's perspective").
func (m CostModel) FilterSeconds(spec DeviceSpec, w Workload, hostFactor float64) float64 {
	return m.HostPrepSeconds(w, hostFactor) +
		m.TransferSeconds(spec, w) +
		m.KernelSeconds(spec, w)
}

// MultiGPUKernelSeconds returns the modelled kernel time when the workload
// is split evenly across n devices: per-device share plus a per-extra-device
// imbalance overhead. Host-encoded batches scale closer to linearly because
// the kernel is pure mask arithmetic (Figure 8's observation).
func (m CostModel) MultiGPUKernelSeconds(spec DeviceSpec, w Workload, n int) float64 {
	share := w
	if n > 1 {
		share.Pairs = (w.Pairs + n - 1) / n
	}
	return m.ShareKernelSeconds(spec, share, n)
}

// MultiGPUFilterSeconds is FilterSeconds under an even n-way split with the
// host preparation parallelized across per-device batching goroutines.
func (m CostModel) MultiGPUFilterSeconds(spec DeviceSpec, w Workload, n int, hostFactor float64) float64 {
	share := w
	if n > 1 {
		share.Pairs = (w.Pairs + n - 1) / n
	}
	return m.ShareFilterSeconds(spec, share, n, hostFactor)
}

// ShareKernelSeconds returns the modelled kernel time of one device's share
// of an n-device round. Unlike MultiGPUKernelSeconds it takes the share
// workload directly (share.Pairs is what this device actually received), so
// heterogeneous contexts can evaluate each device on its own spec and take
// the max ("kernel time represents the time of the device which takes the
// longest").
func (m CostModel) ShareKernelSeconds(spec DeviceSpec, share Workload, n int) float64 {
	t := m.KernelSeconds(spec, share)
	if n <= 1 {
		return t
	}
	overhead := m.MultiGPUKernelOverheadHost
	if share.DeviceEncoded {
		overhead = m.MultiGPUKernelOverheadDev
	}
	return t * (1 + overhead*float64(n-1))
}

// ShareFilterSeconds is FilterSeconds for one device's share of an n-device
// round, including the multi-GPU imbalance overhead.
func (m CostModel) ShareFilterSeconds(spec DeviceSpec, share Workload, n int, hostFactor float64) float64 {
	t := m.FilterSeconds(spec, share, hostFactor)
	if n <= 1 {
		return t
	}
	return t * (1 + m.MultiGPUFilterOverhead*float64(n-1))
}

// PairRate returns the modelled filtration throughput of a device in
// pairs/second for the workload shape (Pairs is ignored). Engines use it as
// the weight of the multi-device split, so a Kepler card in a mixed context
// receives proportionally fewer pairs than a Pascal card.
//
//gk:noalloc
func (m CostModel) PairRate(spec DeviceSpec, w Workload) float64 {
	one := w
	one.Pairs = 1
	t := m.KernelSeconds(spec, one)
	if t <= 0 {
		return 1
	}
	return 1 / t
}

// EncodePoolSpeedup returns the modelled speedup of spreading the host-side
// 2-bit encode loop across a pool of workers.
//
//gk:noalloc
func (m CostModel) EncodePoolSpeedup(workers int) float64 {
	if workers <= 1 {
		return 1
	}
	return 1 + m.StreamEncodeEff*float64(workers-1)
}

// PipelinedFilterSeconds returns the modelled busy time one batch adds to a
// device on the double-buffered streaming path: the host encode (parallelized
// across the worker pool) of batch N+1 overlaps the transfer and kernel of
// batch N, so the device's steady-state cost per batch is the slower of the
// two stages — not their sum, which is what the one-shot FilterSeconds
// charges. The launch and per-batch host synchronization overheads cannot be
// hidden (the result decode is each batch's sync point) and are charged in
// full, exactly as on the one-shot path.
//
//gk:noalloc
func (m CostModel) PipelinedFilterSeconds(spec DeviceSpec, w Workload, encodeWorkers int, hostFactor float64) float64 {
	prep := m.HostPrepSeconds(w, hostFactor) / m.EncodePoolSpeedup(encodeWorkers)
	dev := m.TransferSeconds(spec, w) + m.KernelSeconds(spec, w)
	busy := prep
	if dev > busy {
		busy = dev
	}
	return busy + m.PerLaunchSeconds + m.PerBatchHostSeconds
}

// CPUKernelSeconds returns the modelled GateKeeper-CPU algorithm time on the
// given core count (kernel time in Table 2's CPU columns). cpuFactor scales
// for the setup's host CPU.
func (m CostModel) CPUKernelSeconds(w Workload, cores int, cpuFactor float64) float64 {
	perPair := m.CPUBasePerBase*float64(w.ReadLen) +
		m.CPUPerMaskWord*float64(w.Words()*w.Masks())
	t := float64(w.Pairs) * perPair * cpuFactor
	if cores > 1 {
		t /= float64(cores) * m.CPUCoreEff
	}
	return t
}

// CPUFilterSeconds returns the modelled end-to-end CPU filter time.
func (m CostModel) CPUFilterSeconds(w Workload, cores int, cpuFactor float64) float64 {
	return m.CPUKernelSeconds(w, cores, cpuFactor) * m.CPUFilterFactor
}

// Utilization models the average compute utilization the kernel sustains,
// which drives the power trace: longer reads process more words per thread
// and push the device harder (Section 5.4.2: "the kernel tends to use more
// power in longer sequences").
//
//gk:noalloc
func (m CostModel) Utilization(spec DeviceSpec, w Workload) float64 {
	l := float64(w.ReadLen)
	if l > 250 {
		l = 250
	}
	util := 0.215 + 0.11*(l-100)/150
	if spec.Architecture == Kepler {
		util = 0.233 + 0.037*(l-100)/150
	}
	if !w.DeviceEncoded && w.ReadLen >= 200 {
		util -= 0.048 // host-encoded long reads stream more, compute less
	}
	if util < 0.05 {
		util = 0.05
	}
	return util
}
