package cuda

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// KernelFunc is the body of a simulated CUDA kernel, invoked once per
// logical thread. worker identifies the OS-level executor (0..workers-1) so
// callers can give each executor its own scratch state — the analogue of a
// CUDA thread's reserved stack frame; tid is the logical thread index, one
// per filtration, exactly as GateKeeper-GPU maps work ("each filtration is
// performed by a single CUDA thread").
type KernelFunc func(worker, tid int)

// Launch executes fn for logical threads 0..threads-1 under the given
// launch geometry. The geometry is validated against the device limits and
// used for occupancy/power accounting; actual execution fans out over a
// goroutine pool sized to the host. Launch blocks until every thread has
// run — the engine's only synchronization point, like the paper's
// per-batch cudaDeviceSynchronize.
func (d *Device) Launch(lc LaunchConfig, threads int, fn KernelFunc) error {
	if d.faults != nil {
		// Injected faults fire before any thread runs, so a failed launch
		// leaves the buffers untouched and a retry reproduces the batch.
		if err := d.faults.checkLaunch(); err != nil {
			return err
		}
	}
	if threads <= 0 {
		return fmt.Errorf("cuda: launch with %d threads", threads)
	}
	if lc.ThreadsPerBlock <= 0 || lc.ThreadsPerBlock > d.Spec.MaxThreadsPerBlock {
		return fmt.Errorf("cuda: %d threads per block outside (0,%d]",
			lc.ThreadsPerBlock, d.Spec.MaxThreadsPerBlock)
	}
	if lc.Blocks <= 0 {
		return fmt.Errorf("cuda: launch with %d blocks", lc.Blocks)
	}
	if lc.Threads() < threads {
		return fmt.Errorf("cuda: geometry provides %d threads, need %d", lc.Threads(), threads)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > threads {
		workers = threads
	}
	// Carve the logical thread space into warp-sized work units claimed
	// atomically, so stragglers balance across executors.
	const unit = 4 * WarpSize
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				start := int(next.Add(unit)) - unit
				if start >= threads {
					return
				}
				end := start + unit
				if end > threads {
					end = threads
				}
				for tid := start; tid < end; tid++ {
					fn(worker, tid)
				}
			}
		}(w)
	}
	wg.Wait()
	return nil
}

// MaxWorkers returns the executor pool size Launch will use for the given
// thread count; engines preallocate one scratch kernel per worker.
func MaxWorkers(threads int) int {
	w := runtime.GOMAXPROCS(0)
	if threads < w {
		w = threads
	}
	if w < 1 {
		w = 1
	}
	return w
}

// RecordKernel folds a modelled kernel execution into the device telemetry:
// its duration (CUDA-event kernel time) and the utilization driving the
// power trace.
func (d *Device) RecordKernel(seconds, utilization float64) {
	d.recordKernel(seconds, utilization)
}
