package cuda

import (
	"math"
	"sync/atomic"
	"testing"
)

func TestDeviceCatalog(t *testing.T) {
	p := GTX1080Ti()
	if p.Cores() != 3584 {
		t.Errorf("GTX 1080 Ti cores = %d, want 3584", p.Cores())
	}
	if !p.SupportsPrefetch() {
		t.Error("Pascal cc 6.1 must support prefetch")
	}
	k := TeslaK20X()
	if k.Cores() != 2688 {
		t.Errorf("K20X cores = %d, want 2688", k.Cores())
	}
	if k.SupportsPrefetch() {
		t.Error("Kepler cc 3.5 must not support prefetch")
	}
	if p.PCIeBandwidth() <= k.PCIeBandwidth() {
		t.Error("PCIe gen3 must outrun gen2")
	}
	if p.String() == "" || k.String() == "" {
		t.Error("empty device descriptions")
	}
}

func TestContextConstruction(t *testing.T) {
	ctx := NewUniformContext(8, GTX1080Ti())
	if ctx.NumDevices() != 8 {
		t.Fatalf("NumDevices = %d", ctx.NumDevices())
	}
	if ctx.Device(3).ID != 3 {
		t.Fatalf("device 3 has ID %d", ctx.Device(3).ID)
	}
	if ctx.Device(0).FreeMem() != GTX1080Ti().GlobalMemBytes {
		t.Fatal("fresh device should have all memory free")
	}
}

func TestUnifiedMemoryAllocation(t *testing.T) {
	d := NewDevice(0, GTX1080Ti())
	buf, err := d.AllocUnified(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 1<<20 {
		t.Fatalf("Len = %d", buf.Len())
	}
	if d.FreeMem() != GTX1080Ti().GlobalMemBytes-1<<20 {
		t.Fatal("allocation did not charge global memory")
	}
	buf.Free()
	if d.FreeMem() != GTX1080Ti().GlobalMemBytes {
		t.Fatal("free did not release global memory")
	}
	if _, err := d.AllocUnified(0); err == nil {
		t.Fatal("zero-size allocation accepted")
	}
	if _, err := d.AllocUnified(int(d.FreeMem() + 1)); err == nil {
		t.Fatal("over-allocation accepted")
	}
}

func TestUnifiedMemoryDoubleFree(t *testing.T) {
	d := NewDevice(0, GTX1080Ti())
	buf, err := d.AllocUnified(PageSize)
	if err != nil {
		t.Fatal(err)
	}
	buf.Free()
	free := d.FreeMem()
	buf.Free() // must be a no-op, not a double release
	if d.FreeMem() != free {
		t.Fatal("double Free released memory twice")
	}
}

func TestUnifiedMemoryMigration(t *testing.T) {
	d := NewDevice(0, GTX1080Ti())
	buf, err := d.AllocUnified(4 * PageSize)
	if err != nil {
		t.Fatal(err)
	}
	defer buf.Free()
	if buf.ResidentOnDevice() != 0 {
		t.Fatal("fresh unified buffer should be host-resident")
	}
	buf.DeviceTouch(0, 2*PageSize)
	if got := buf.ResidentOnDevice(); got != 0.5 {
		t.Fatalf("after touching half: resident = %v", got)
	}
	fault, prefetch := buf.MigrationStats()
	if fault != 2*PageSize || prefetch != 0 {
		t.Fatalf("migration stats fault=%d prefetch=%d", fault, prefetch)
	}
	s := d.NewStream()
	buf.PrefetchAsync(s)
	if buf.ResidentOnDevice() != 1 {
		t.Fatal("prefetch should migrate everything")
	}
	fault, prefetch = buf.MigrationStats()
	if prefetch != 2*PageSize {
		t.Fatalf("prefetch moved %d bytes, want %d", prefetch, 2*PageSize)
	}
	_ = fault
	if s.BusySeconds() <= 0 {
		t.Fatal("prefetch did not occupy the stream")
	}
	// Host write pulls pages back.
	buf.HostWrite(0, PageSize)
	if got := buf.ResidentOnDevice(); got != 0.75 {
		t.Fatalf("after host write: resident = %v", got)
	}
	// Re-prefetching already resident pages moves nothing new.
	s.Reset()
	buf.PrefetchAsync(s)
	if buf.ResidentOnDevice() != 1 {
		t.Fatal("re-prefetch failed")
	}
}

func TestKeplerSkipsAdviseAndPrefetch(t *testing.T) {
	d := NewDevice(0, TeslaK20X())
	buf, err := d.AllocUnified(2 * PageSize)
	if err != nil {
		t.Fatal(err)
	}
	defer buf.Free()
	buf.Advise(AdvisePreferredDevice)
	if buf.Advice() != AdviseNone {
		t.Fatal("Kepler recorded memory advice; it must be skipped below cc 6.x")
	}
	buf.PrefetchAsync(nil)
	if buf.ResidentOnDevice() != 0 {
		t.Fatal("Kepler prefetched; it must be skipped below cc 6.x")
	}
}

func TestAdviseOnPascal(t *testing.T) {
	d := NewDevice(0, GTX1080Ti())
	buf, err := d.AllocUnified(PageSize)
	if err != nil {
		t.Fatal(err)
	}
	defer buf.Free()
	buf.Advise(AdvisePreferredDevice)
	if buf.Advice() != AdvisePreferredDevice {
		t.Fatal("advice not recorded on Pascal")
	}
}

func TestLaunchExecutesEveryThread(t *testing.T) {
	d := NewDevice(0, GTX1080Ti())
	const n = 10_000
	var hits [n]int32
	lc := LaunchConfig{Blocks: (n + 1023) / 1024, ThreadsPerBlock: 1024, RegsPerThread: 48}
	err := d.Launch(lc, n, func(worker, tid int) {
		atomic.AddInt32(&hits[tid], 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("thread %d executed %d times", i, h)
		}
	}
}

func TestLaunchValidation(t *testing.T) {
	d := NewDevice(0, GTX1080Ti())
	noop := func(int, int) {}
	if err := d.Launch(LaunchConfig{Blocks: 1, ThreadsPerBlock: 2048}, 10, func(w, t int) {}); err == nil {
		t.Fatal("block size beyond device limit accepted")
	}
	if err := d.Launch(LaunchConfig{Blocks: 1, ThreadsPerBlock: 32}, 64, KernelFunc(noop)); err == nil {
		t.Fatal("undersized geometry accepted")
	}
	if err := d.Launch(LaunchConfig{Blocks: 1, ThreadsPerBlock: 32}, 0, KernelFunc(noop)); err == nil {
		t.Fatal("zero threads accepted")
	}
	if err := d.Launch(LaunchConfig{Blocks: 0, ThreadsPerBlock: 32}, 1, KernelFunc(noop)); err == nil {
		t.Fatal("zero blocks accepted")
	}
}

func TestMaxWorkers(t *testing.T) {
	if MaxWorkers(0) != 1 {
		t.Fatal("MaxWorkers(0) must be at least 1")
	}
	if MaxWorkers(1) != 1 {
		t.Fatal("MaxWorkers(1) = 1 expected")
	}
	if MaxWorkers(1<<20) < 1 {
		t.Fatal("MaxWorkers must be positive")
	}
}

func TestOccupancyPaperNumbers(t *testing.T) {
	spec := GTX1080Ti()
	// 48 registers, 1024-thread blocks: 1 block/SM, 32 warps -> 50%.
	occ := TheoreticalOccupancy(spec, LaunchConfig{Blocks: 1, ThreadsPerBlock: 1024, RegsPerThread: 48})
	if occ.Theoretical != 0.5 {
		t.Errorf("48 regs x 1024 threads: occupancy %.2f, want 0.50", occ.Theoretical)
	}
	if occ.LimitedBy != "registers" {
		t.Errorf("limited by %s, want registers", occ.LimitedBy)
	}
	// 48 registers, 256-thread blocks: 5 blocks/SM, 40 warps -> 62.5% ("63%").
	occ = TheoreticalOccupancy(spec, LaunchConfig{Blocks: 1, ThreadsPerBlock: 256, RegsPerThread: 48})
	if math.Abs(occ.Theoretical-0.625) > 1e-9 {
		t.Errorf("48 regs x 256 threads: occupancy %.3f, want 0.625", occ.Theoretical)
	}
	// 32 registers, 1024-thread blocks: threads limit -> 100%.
	occ = TheoreticalOccupancy(spec, LaunchConfig{Blocks: 1, ThreadsPerBlock: 1024, RegsPerThread: 32})
	if occ.Theoretical != 1.0 {
		t.Errorf("32 regs: occupancy %.2f, want 1.00", occ.Theoretical)
	}
	// Degenerate config.
	occ = TheoreticalOccupancy(spec, LaunchConfig{})
	if occ.Theoretical != 0 {
		t.Error("invalid config must yield zero occupancy")
	}
}

func TestAchievedOccupancyNearTheoretical(t *testing.T) {
	lc := LaunchConfig{Blocks: 1, ThreadsPerBlock: 1024, RegsPerThread: 48}
	for _, spec := range []DeviceSpec{GTX1080Ti(), TeslaK20X()} {
		for _, hostEnc := range []bool{false, true} {
			for _, L := range []int{100, 250} {
				got := AchievedOccupancy(spec, lc, hostEnc, L)
				if got < 0.43 || got >= 0.50 {
					t.Errorf("%s hostEnc=%v L=%d: achieved %.3f outside paper band [0.44, 0.50)",
						spec.Name, hostEnc, L, got)
				}
			}
		}
	}
	// Ordering: device-encoded >= host-encoded (paper Section 5.4.1).
	d := AchievedOccupancy(GTX1080Ti(), lc, false, 100)
	h := AchievedOccupancy(GTX1080Ti(), lc, true, 100)
	if d <= h {
		t.Errorf("device-encoded occupancy %.3f should exceed host-encoded %.3f", d, h)
	}
}

func TestWarpAndSMEfficiency(t *testing.T) {
	if e := WarpExecutionEfficiency(GTX1080Ti(), false, 250); e < 0.98 {
		t.Errorf("250bp warp efficiency %.3f, paper says >98%%", e)
	}
	e100 := WarpExecutionEfficiency(GTX1080Ti(), false, 100)
	if e100 < 0.70 || e100 > 0.85 {
		t.Errorf("100bp warp efficiency %.3f outside paper band", e100)
	}
	if WarpExecutionEfficiency(GTX1080Ti(), true, 100) >= e100 {
		t.Error("host-encoded warp efficiency should be lower at 100bp")
	}
	for _, spec := range []DeviceSpec{GTX1080Ti(), TeslaK20X()} {
		if SMEfficiency(spec) < 0.95 {
			t.Errorf("%s SM efficiency below the paper's 95%% floor", spec.Name)
		}
	}
}

func TestCostModelShapes(t *testing.T) {
	m := DefaultCostModel()
	pascal := GTX1080Ti()
	kepler := TeslaK20X()
	base := Workload{Pairs: 30_000_000, ReadLen: 100, E: 2, DeviceEncoded: true}

	// Host-encoded kernels are faster (no in-kernel encoding)...
	hostEnc := base
	hostEnc.DeviceEncoded = false
	if m.KernelSeconds(pascal, hostEnc) >= m.KernelSeconds(pascal, base) {
		t.Error("host-encoded kernel should be faster than device-encoded")
	}
	// ...but host-encoded end-to-end filter time is slower (CPU packing).
	if m.FilterSeconds(pascal, hostEnc, 1.0) <= m.FilterSeconds(pascal, base, 1.0) {
		t.Error("host-encoded filter time should exceed device-encoded (Fig 6 crossover)")
	}

	// Kernel time grows with e; filter time stays nearly constant
	// (Table S.16: <1% change across e=0..10 for the GPU).
	e10 := base
	e10.E = 10
	if m.KernelSeconds(pascal, e10) <= m.KernelSeconds(pascal, base) {
		t.Error("kernel time must grow with error threshold")
	}
	ftRatio := m.FilterSeconds(pascal, e10, 1.0) / m.FilterSeconds(pascal, base, 1.0)
	if ftRatio > 1.25 {
		t.Errorf("GPU filter time grew %.2fx from e=2 to e=10; paper shows near-constant", ftRatio)
	}
	// CPU filter time grows almost linearly in e.
	cpuRatio := m.CPUFilterSeconds(e10, 12, 1.0) / m.CPUFilterSeconds(base, 12, 1.0)
	if cpuRatio < 1.8 {
		t.Errorf("CPU filter time grew only %.2fx from e=2 to e=10; paper shows ~linear growth", cpuRatio)
	}

	// Longer reads filter slower end to end (Figure 7).
	long := base
	long.ReadLen = 250
	if m.FilterSeconds(pascal, long, 1.0) <= m.FilterSeconds(pascal, base, 1.0) {
		t.Error("250bp filter time should exceed 100bp")
	}

	// Setup 2 (Kepler, no prefetch, PCIe 2) is slower than Setup 1.
	if m.FilterSeconds(kepler, base, 1.2) <= m.FilterSeconds(pascal, base, 1.0) {
		t.Error("Kepler setup should be slower than Pascal setup")
	}
	if m.KernelSeconds(kepler, base) <= m.KernelSeconds(pascal, base) {
		t.Error("Kepler kernel should be slower than Pascal kernel")
	}
}

func TestCostModelCalibrationAgainstPaper(t *testing.T) {
	// Spot-check modelled times against Sup. Table S.13 (Setup 1, 30M 100bp
	// pairs): allow loose tolerance — we reproduce shape, not exact hours.
	m := DefaultCostModel()
	pascal := GTX1080Ti()
	check := func(name string, got, paper, tol float64) {
		t.Helper()
		if got < paper/tol || got > paper*tol {
			t.Errorf("%s: modelled %.2fs vs paper %.2fs (tolerance %.1fx)", name, got, paper, tol)
		}
	}
	devE2 := Workload{Pairs: 30_000_000, ReadLen: 100, E: 2, DeviceEncoded: true}
	hostE2 := Workload{Pairs: 30_000_000, ReadLen: 100, E: 2, DeviceEncoded: false}
	devE5 := devE2
	devE5.E = 5
	hostE5 := hostE2
	hostE5.E = 5
	check("kt dev e=2", m.KernelSeconds(pascal, devE2), 0.29, 2.0)
	check("kt host e=2", m.KernelSeconds(pascal, hostE2), 0.15, 2.0)
	check("kt dev e=5", m.KernelSeconds(pascal, devE5), 0.48, 2.0)
	check("kt host e=5", m.KernelSeconds(pascal, hostE5), 0.29, 2.0)
	check("ft dev e=2", m.FilterSeconds(pascal, devE2, 1.0), 9.40, 1.6)
	check("ft host e=2", m.FilterSeconds(pascal, hostE2, 1.0), 24.36, 1.6)
	// CPU single core and 12 cores (Table S.13).
	check("cpu kt 1c e=2", m.CPUKernelSeconds(devE2, 1, 1.0), 102.52, 1.5)
	check("cpu kt 12c e=2", m.CPUKernelSeconds(devE2, 12, 1.0), 10.04, 1.5)
	check("cpu kt 1c e=5", m.CPUKernelSeconds(devE5, 1, 1.0), 194.13, 1.5)
}

func TestMultiGPUScaling(t *testing.T) {
	m := DefaultCostModel()
	pascal := GTX1080Ti()
	w := Workload{Pairs: 30_000_000, ReadLen: 100, E: 2, DeviceEncoded: false}
	t1 := m.MultiGPUKernelSeconds(pascal, w, 1)
	t8 := m.MultiGPUKernelSeconds(pascal, w, 8)
	speedup := t1 / t8
	if speedup < 5.0 || speedup > 8.0 {
		t.Errorf("8-GPU host-encoded kernel speedup %.1fx outside the paper's ~6.7x band", speedup)
	}
	wd := w
	wd.DeviceEncoded = true
	sd := m.MultiGPUKernelSeconds(pascal, wd, 1) / m.MultiGPUKernelSeconds(pascal, wd, 8)
	if sd >= speedup {
		t.Errorf("device-encoded multi-GPU kernel scaling (%.1fx) should trail host-encoded (%.1fx)", sd, speedup)
	}
	ft1 := m.MultiGPUFilterSeconds(pascal, w, 1, 1.0)
	ft8 := m.MultiGPUFilterSeconds(pascal, w, 8, 1.0)
	if ft1/ft8 < 4.0 {
		t.Errorf("8-GPU filter speedup %.1fx too low", ft1/ft8)
	}
}

func TestPowerTracePaperBands(t *testing.T) {
	m := DefaultCostModel()
	for _, tc := range []struct {
		spec                 DeviceSpec
		readLen              int
		deviceEnc            bool
		wantAvgLo, wantAvgHi float64
	}{
		{GTX1080Ti(), 100, true, 45, 80},  // paper: 61.9 W
		{GTX1080Ti(), 250, true, 70, 110}, // paper: 89.0 W
		{GTX1080Ti(), 250, false, 60, 95}, // paper: 77.1 W
		{TeslaK20X(), 100, true, 60, 95},  // paper: 77.7 W
		{TeslaK20X(), 250, true, 70, 100}, // paper: 85.5 W
	} {
		d := NewDevice(0, tc.spec)
		w := Workload{Pairs: 1_000_000, ReadLen: tc.readLen, E: 4, DeviceEncoded: tc.deviceEnc}
		util := m.Utilization(tc.spec, w)
		for i := 0; i < 5; i++ {
			d.RecordKernel(m.KernelSeconds(tc.spec, w), util)
		}
		p := d.Power()
		if p.AvgWatts() < tc.wantAvgLo || p.AvgWatts() > tc.wantAvgHi {
			t.Errorf("%s L=%d dev=%v: avg %.1f W outside [%v, %v]",
				tc.spec.Name, tc.readLen, tc.deviceEnc, p.AvgWatts(), tc.wantAvgLo, tc.wantAvgHi)
		}
		if p.MinWatts() > p.AvgWatts() || p.AvgWatts() > p.MaxWatts() {
			t.Errorf("power ordering violated: min=%.1f avg=%.1f max=%.1f",
				p.MinWatts(), p.AvgWatts(), p.MaxWatts())
		}
		if p.Samples() != 5 {
			t.Errorf("samples = %d", p.Samples())
		}
	}
	// Longer reads draw more power on average (Section 5.4.2).
	d100 := NewDevice(0, GTX1080Ti())
	d250 := NewDevice(1, GTX1080Ti())
	w100 := Workload{Pairs: 1e6, ReadLen: 100, E: 4, DeviceEncoded: true}
	w250 := Workload{Pairs: 1e6, ReadLen: 250, E: 10, DeviceEncoded: true}
	d100.RecordKernel(1, m.Utilization(GTX1080Ti(), w100))
	d250.RecordKernel(1, m.Utilization(GTX1080Ti(), w250))
	if d250.Power().AvgWatts() <= d100.Power().AvgWatts() {
		t.Error("250bp should draw more average power than 100bp")
	}
}

func TestEventsAndStreams(t *testing.T) {
	var start, end Event
	if ElapsedSeconds(start, end) != 0 {
		t.Fatal("unset events must elapse zero")
	}
	start.Record(1.5)
	end.Record(4.0)
	if got := ElapsedSeconds(start, end); got != 2.5 {
		t.Fatalf("elapsed = %v", got)
	}
	d := NewDevice(0, GTX1080Ti())
	s1, s2 := d.NewStream(), d.NewStream()
	s1.AddKernel(2)
	s2.AddKernel(3)
	if MaxStreamSeconds(s1, s2) != 3 {
		t.Fatal("MaxStreamSeconds wrong")
	}
}

func TestKernelTelemetry(t *testing.T) {
	d := NewDevice(0, GTX1080Ti())
	d.RecordKernel(0.5, 0.3)
	d.RecordKernel(0.25, 0.3)
	if got := d.TotalKernelSeconds(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("TotalKernelSeconds = %v", got)
	}
	if d.KernelLaunches() != 2 {
		t.Fatalf("KernelLaunches = %d", d.KernelLaunches())
	}
}

func TestWorkloadHelpers(t *testing.T) {
	w := Workload{Pairs: 10, ReadLen: 100, E: 5, DeviceEncoded: true}
	if w.Words() != 7 {
		t.Fatalf("Words = %d", w.Words())
	}
	if w.Masks() != 11 {
		t.Fatalf("Masks = %d", w.Masks())
	}
	if w.TransferBytes() != 208 {
		t.Fatalf("device-encoded TransferBytes = %d", w.TransferBytes())
	}
	w.DeviceEncoded = false
	if w.TransferBytes() != 64 {
		t.Fatalf("host-encoded TransferBytes = %d", w.TransferBytes())
	}
}
