// Package cuda is a software stand-in for the CUDA runtime that
// GateKeeper-GPU targets. No GPU hardware is assumed: kernels execute on
// goroutines, while a calibrated analytic cost model supplies the quantities
// the paper measures on real devices — kernel time, transfer time, power,
// occupancy, warp efficiency. The devices of both experimental setups
// (8x GTX 1080 Ti / Pascal and 4x Tesla K20X / Kepler) are catalogued with
// their true geometry so the configuration logic of Section 3.1 (thread
// load, batch size, blocks and threads per kernel) runs unchanged.
//
// The split matters for what the reproduction can claim: every accept/reject
// decision is computed for real by the kernel function, so the accuracy
// experiments are exact; the timing/power experiments reproduce the paper's
// *shape* (orderings, crossovers, scaling curves) through the model rather
// than its absolute wall-clock numbers.
package cuda

import "fmt"

// Arch identifies a GPU microarchitecture generation.
type Arch string

// Architectures appearing in the paper's two setups.
const (
	Kepler Arch = "Kepler"
	Pascal Arch = "Pascal"
)

// DeviceSpec is the static description of a GPU model.
type DeviceSpec struct {
	Name         string
	Architecture Arch
	// ComputeMajor.ComputeMinor is the CUDA compute capability; memory
	// advice and asynchronous prefetching require 6.x or later (Section 3.4).
	ComputeMajor, ComputeMinor int

	SMCount    int     // streaming multiprocessors
	CoresPerSM int     // CUDA cores per SM
	ClockGHz   float64 // boost clock

	GlobalMemBytes int64   // usable global memory
	MemBandwidth   float64 // GB/s

	PCIeGen   int // host link generation
	PCIeLanes int

	// Per-SM scheduling limits used by the occupancy calculator.
	RegistersPerSM     int
	MaxThreadsPerBlock int
	MaxThreadsPerSM    int
	MaxWarpsPerSM      int
	MaxBlocksPerSM     int

	// Power envelope for the nvprof-style power model.
	IdleWatts float64
	TDPWatts  float64

	// EffFactor scales achievable arithmetic throughput relative to Pascal
	// (Kepler schedules the GateKeeper instruction mix less efficiently).
	EffFactor float64
}

// WarpSize is the number of threads per warp on every CUDA architecture the
// paper uses.
const WarpSize = 32

// GTX1080Ti returns the Setup 1 device: NVIDIA GeForce GTX 1080 Ti, Pascal,
// compute capability 6.1, PCIe 3.0 x16. The paper reports 10 GB usable
// global memory per card.
func GTX1080Ti() DeviceSpec {
	return DeviceSpec{
		Name:               "NVIDIA GeForce GTX 1080 Ti",
		Architecture:       Pascal,
		ComputeMajor:       6,
		ComputeMinor:       1,
		SMCount:            28,
		CoresPerSM:         128, // 3584 CUDA cores total
		ClockGHz:           1.582,
		GlobalMemBytes:     10 << 30,
		MemBandwidth:       484,
		PCIeGen:            3,
		PCIeLanes:          16,
		RegistersPerSM:     65536,
		MaxThreadsPerBlock: 1024,
		MaxThreadsPerSM:    2048,
		MaxWarpsPerSM:      64,
		MaxBlocksPerSM:     32,
		IdleWatts:          8.9,
		TDPWatts:           250,
		EffFactor:          1.0,
	}
}

// TeslaK20X returns the Setup 2 device: NVIDIA Tesla K20X, Kepler, compute
// capability 3.5, PCIe 2.0 x16, 5 GB usable global memory. Kepler predates
// unified-memory prefetching, which Section 5.2 identifies as a main cause
// of Setup 2's lower throughput.
func TeslaK20X() DeviceSpec {
	return DeviceSpec{
		Name:               "NVIDIA Tesla K20X",
		Architecture:       Kepler,
		ComputeMajor:       3,
		ComputeMinor:       5,
		SMCount:            14,
		CoresPerSM:         192, // 2688 CUDA cores total
		ClockGHz:           0.732,
		GlobalMemBytes:     5 << 30,
		MemBandwidth:       250,
		PCIeGen:            2,
		PCIeLanes:          16,
		RegistersPerSM:     65536,
		MaxThreadsPerBlock: 1024,
		MaxThreadsPerSM:    2048,
		MaxWarpsPerSM:      64,
		MaxBlocksPerSM:     16,
		IdleWatts:          30.1,
		TDPWatts:           235,
		EffFactor:          0.68,
	}
}

// Cores returns the total CUDA core count.
//
//gk:noalloc
func (s DeviceSpec) Cores() int { return s.SMCount * s.CoresPerSM }

// SupportsPrefetch reports whether the device supports cudaMemAdvise and
// cudaMemPrefetchAsync (compute capability 6.x or later with CUDA 8).
//
//gk:noalloc
func (s DeviceSpec) SupportsPrefetch() bool { return s.ComputeMajor >= 6 }

// PCIeBandwidth returns the effective host-device bandwidth in bytes/second,
// assuming ~75% of the raw per-lane rate is achievable for bulk copies.
//
//gk:noalloc
func (s DeviceSpec) PCIeBandwidth() float64 {
	var perLaneGBs float64
	switch s.PCIeGen {
	case 1:
		perLaneGBs = 0.25
	case 2:
		perLaneGBs = 0.5
	case 3:
		perLaneGBs = 0.985
	default:
		perLaneGBs = 1.969 // gen4+
	}
	return perLaneGBs * float64(s.PCIeLanes) * 0.75 * 1e9
}

// String implements fmt.Stringer for diagnostics and harness banners.
func (s DeviceSpec) String() string {
	return fmt.Sprintf("%s (%s, cc %d.%d, %d SMs x %d cores @ %.3f GHz, %d GiB)",
		s.Name, s.Architecture, s.ComputeMajor, s.ComputeMinor,
		s.SMCount, s.CoresPerSM, s.ClockGHz, s.GlobalMemBytes>>30)
}

// Device is one simulated GPU: a spec plus runtime state (free memory,
// accumulated kernel-time and power telemetry).
type Device struct {
	Spec DeviceSpec
	ID   int

	freeMem int64
	events  []float64 // modelled kernel durations, seconds
	power   PowerTrace
	faults  *FaultPlan // nil outside fault-injection runs
}

// NewDevice instantiates a device with its full global memory free.
func NewDevice(id int, spec DeviceSpec) *Device {
	return &Device{Spec: spec, ID: id, freeMem: spec.GlobalMemBytes}
}

// FreeMem returns the bytes of global memory not yet allocated. The system
// configuration step queries this to size batches (Section 3.1).
func (d *Device) FreeMem() int64 { return d.freeMem }

// reserve claims n bytes of global memory, failing when the device is full.
func (d *Device) reserve(n int64) error {
	if n < 0 {
		return fmt.Errorf("cuda: negative allocation %d", n)
	}
	if n > d.freeMem {
		return fmt.Errorf("cuda: out of memory on %s: want %d, free %d", d.Spec.Name, n, d.freeMem)
	}
	d.freeMem -= n
	return nil
}

// release returns n bytes of global memory.
func (d *Device) release(n int64) { d.freeMem += n }

// recordKernel logs a modelled kernel duration and feeds the power trace.
func (d *Device) recordKernel(seconds float64, utilization float64) {
	d.events = append(d.events, seconds)
	d.power.sample(d.Spec, seconds, utilization)
}

// TotalKernelSeconds returns the sum of modelled kernel durations — the
// "kernel time" measurement of Section 4.3 (CUDA Event API equivalent).
func (d *Device) TotalKernelSeconds() float64 {
	sum := 0.0
	for _, e := range d.events {
		sum += e
	}
	return sum
}

// KernelLaunches returns how many kernels the device has executed.
func (d *Device) KernelLaunches() int { return len(d.events) }

// Power returns the accumulated nvprof-style power trace.
func (d *Device) Power() PowerTrace { return d.power }

// Context owns a set of simulated devices, mirroring a multi-GPU host.
type Context struct {
	devices []*Device
}

// NewContext creates a context with one device per spec, in order.
func NewContext(specs ...DeviceSpec) *Context {
	ctx := &Context{}
	for i, s := range specs {
		ctx.devices = append(ctx.devices, NewDevice(i, s))
	}
	return ctx
}

// NewUniformContext creates a context with n identical devices, like the
// paper's 8x GTX 1080 Ti or 4x Tesla K20X hosts.
func NewUniformContext(n int, spec DeviceSpec) *Context {
	specs := make([]DeviceSpec, n)
	for i := range specs {
		specs[i] = spec
	}
	return NewContext(specs...)
}

// Devices returns the context's devices.
func (c *Context) Devices() []*Device { return c.devices }

// Device returns device i.
func (c *Context) Device(i int) *Device { return c.devices[i] }

// NumDevices returns the device count.
func (c *Context) NumDevices() int { return len(c.devices) }
