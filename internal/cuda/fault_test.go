package cuda

import (
	"errors"
	"testing"
)

func launchN(t *testing.T, d *Device, n int) []error {
	t.Helper()
	lc := LaunchConfig{Blocks: 1, ThreadsPerBlock: 32}
	errs := make([]error, n)
	for i := range errs {
		errs[i] = d.Launch(lc, 32, func(worker, tid int) {})
	}
	return errs
}

func TestFaultPlanDeterministic(t *testing.T) {
	schedule := func(seed int64) []bool {
		d := NewDevice(0, GTX1080Ti())
		d.InjectFaults(NewFaultPlan(seed).WithRate(OpLaunch, 0.3))
		fails := make([]bool, 200)
		for i, err := range launchN(t, d, 200) {
			fails[i] = err != nil
		}
		return fails
	}
	a, b := schedule(42), schedule(42)
	nFail := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at launch %d", i)
		}
		if a[i] {
			nFail++
		}
	}
	if nFail == 0 || nFail == len(a) {
		t.Fatalf("rate 0.3 over %d launches produced %d failures", len(a), nFail)
	}
	c := schedule(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestFaultPlanNilAndZeroRateAreClean(t *testing.T) {
	d := NewDevice(0, GTX1080Ti())
	for _, err := range launchN(t, d, 50) {
		if err != nil {
			t.Fatalf("no plan attached but launch failed: %v", err)
		}
	}
	d.InjectFaults(NewFaultPlan(1))
	for _, err := range launchN(t, d, 50) {
		if err != nil {
			t.Fatalf("empty plan but launch failed: %v", err)
		}
	}
}

func TestFaultPlanOneShot(t *testing.T) {
	d := NewDevice(0, GTX1080Ti())
	d.InjectFaults(NewFaultPlan(7).FailNth(OpLaunch, 3))
	errs := launchN(t, d, 5)
	for i, err := range errs {
		want := i == 2
		if got := err != nil; got != want {
			t.Fatalf("launch %d: err=%v, want failure=%v", i+1, err, want)
		}
	}
	if !errors.Is(errs[2], ErrInjectedLaunch) {
		t.Fatalf("one-shot fault not ErrInjectedLaunch: %v", errs[2])
	}
}

func TestFaultPlanDieAtLaunch(t *testing.T) {
	d := NewDevice(0, GTX1080Ti())
	plan := NewFaultPlan(7).DieAtLaunch(4)
	d.InjectFaults(plan)
	errs := launchN(t, d, 8)
	for i := 0; i < 3; i++ {
		if errs[i] != nil {
			t.Fatalf("launch %d before death failed: %v", i+1, errs[i])
		}
	}
	for i := 3; i < 8; i++ {
		if !errors.Is(errs[i], ErrDeviceLost) {
			t.Fatalf("launch %d after death: %v, want ErrDeviceLost", i+1, errs[i])
		}
	}
	if !plan.Dead() {
		t.Fatal("plan not marked dead")
	}
	if _, err := d.AllocUnified(64); !errors.Is(err, ErrDeviceLost) {
		t.Fatalf("alloc on dead device: %v, want ErrDeviceLost", err)
	}
}

func TestFaultPlanAlloc(t *testing.T) {
	d := NewDevice(0, GTX1080Ti())
	d.InjectFaults(NewFaultPlan(9).FailNth(OpAlloc, 2))
	if _, err := d.AllocUnified(64); err != nil {
		t.Fatalf("alloc 1: %v", err)
	}
	if _, err := d.AllocUnified(64); !errors.Is(err, ErrInjectedAlloc) {
		t.Fatalf("alloc 2: %v, want ErrInjectedAlloc", err)
	}
	if _, err := d.AllocUnified(64); err != nil {
		t.Fatalf("alloc 3: %v", err)
	}
}

func TestFaultPlanTransferSurfacesAtLaunch(t *testing.T) {
	// Transfer faults are asynchronous: the faulting prefetch itself does not
	// report, the next launch (the synchronization point) does.
	d := NewDevice(0, GTX1080Ti())
	d.InjectFaults(NewFaultPlan(11).FailNth(OpTransfer, 1))
	buf, err := d.AllocUnified(PageSize)
	if err != nil {
		t.Fatal(err)
	}
	defer buf.Free()
	buf.PrefetchAsync(nil)
	errs := launchN(t, d, 2)
	if !errors.Is(errs[0], ErrInjectedTransfer) {
		t.Fatalf("sync point after faulted transfer: %v, want ErrInjectedTransfer", errs[0])
	}
	if errs[1] != nil {
		t.Fatalf("pending fault not cleared: %v", errs[1])
	}
}

func TestFaultPlanKill(t *testing.T) {
	d := NewDevice(0, GTX1080Ti())
	d.InjectFaults(NewFaultPlan(1).Kill())
	if err := launchN(t, d, 1)[0]; !errors.Is(err, ErrDeviceLost) {
		t.Fatalf("killed device launched: %v", err)
	}
}
