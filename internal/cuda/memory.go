package cuda

import "fmt"

// PageSize is the unified-memory page granularity (64 KiB, the CUDA driver's
// migration unit on the paper's platforms).
const PageSize = 64 << 10

// Residency describes where a unified-memory page currently lives.
type Residency uint8

// Page locations.
const (
	OnHost Residency = iota
	OnDevice
)

// Advice mirrors cudaMemAdvise preferred-location hints (Section 2.2): the
// processor favors the advised placement when deciding migrations.
type Advice uint8

// Memory advice values.
const (
	AdviseNone Advice = iota
	AdvisePreferredHost
	AdvisePreferredDevice
	AdviseReadMostly
)

// UMBuffer is a unified-memory allocation: a single []byte the host and the
// simulated device share through one pointer, with per-page residency
// tracking. Touching device-resident state from the host (or vice versa)
// does not fault for real — instead the buffer records the migrations the
// CUDA driver would perform, and the cost model charges for them at either
// the bulk-prefetch rate or the page-fault rate.
type UMBuffer struct {
	dev    *Device
	data   []byte
	pages  []Residency
	advice Advice

	// Telemetry consumed by the cost model.
	faultMigrations    int64 // bytes moved on-demand (page-fault path)
	prefetchMigrations int64 // bytes moved by explicit prefetch (bulk path)
}

// AllocUnified allocates n bytes of unified memory resident on the host, as
// cudaMallocManaged does, charging the device's global memory.
func (d *Device) AllocUnified(n int) (*UMBuffer, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cuda: invalid unified allocation size %d", n)
	}
	if d.faults != nil {
		if err := d.faults.checkAlloc(); err != nil {
			return nil, err
		}
	}
	if err := d.reserve(int64(n)); err != nil {
		return nil, err
	}
	pages := (n + PageSize - 1) / PageSize
	return &UMBuffer{
		dev:   d,
		data:  make([]byte, n),
		pages: make([]Residency, pages),
	}, nil
}

// Free releases the buffer's global memory reservation.
func (b *UMBuffer) Free() {
	if b.data != nil {
		b.dev.release(int64(len(b.data)))
		b.data = nil
	}
}

// Bytes exposes the shared storage; host code reads and writes it directly,
// which is the whole point of unified memory ("a virtual space, which GPU
// and CPU have access with a single pointer").
func (b *UMBuffer) Bytes() []byte { return b.data }

// Len returns the buffer length in bytes.
func (b *UMBuffer) Len() int { return len(b.data) }

// Advise records a cudaMemAdvise hint. On devices without prefetch support
// (compute capability < 6.x) the call is a no-op, matching GateKeeper-GPU's
// behaviour of skipping these actions on Kepler.
func (b *UMBuffer) Advise(a Advice) {
	if !b.dev.Spec.SupportsPrefetch() {
		return
	}
	b.advice = a
}

// Advice returns the recorded hint (AdviseNone on non-supporting devices).
func (b *UMBuffer) Advice() Advice { return b.advice }

// HostWrite marks the byte range [off, off+n) as written by the host:
// device-resident pages in the range migrate back (on-demand, fault path).
func (b *UMBuffer) HostWrite(off, n int) {
	b.migrate(off, n, OnHost, false)
}

// PrefetchAsync migrates the whole buffer to the device ahead of a kernel,
// as cudaMemPrefetchAsync on a stream would; bytes moved this way are
// charged at the bulk PCIe rate instead of the page-fault rate. On devices
// without support it is a no-op and the subsequent kernel access pays the
// fault path, reproducing the Setup 1 vs Setup 2 gap.
func (b *UMBuffer) PrefetchAsync(s *Stream) {
	if !b.dev.Spec.SupportsPrefetch() {
		return
	}
	if b.dev.faults != nil {
		b.dev.faults.noteTransfer()
	}
	moved := b.migrate(0, len(b.data), OnDevice, true)
	if s != nil {
		s.addTransfer(float64(moved) / b.dev.Spec.PCIeBandwidth())
	}
}

// DeviceTouch marks the byte range as accessed by a kernel: host-resident
// pages migrate to the device on demand (fault path). Engines call this when
// a kernel reads a buffer that was not prefetched.
func (b *UMBuffer) DeviceTouch(off, n int) {
	if b.dev.faults != nil {
		b.dev.faults.noteTransfer()
	}
	b.migrate(off, n, OnDevice, false)
}

// migrate moves the pages covering [off, off+n) to the target residency and
// returns the bytes moved.
func (b *UMBuffer) migrate(off, n int, target Residency, prefetch bool) int64 {
	if n <= 0 || off < 0 || off >= len(b.data) {
		return 0
	}
	end := off + n
	if end > len(b.data) {
		end = len(b.data)
	}
	var moved int64
	for p := off / PageSize; p <= (end-1)/PageSize; p++ {
		if b.pages[p] == target {
			continue
		}
		b.pages[p] = target
		moved += PageSize
	}
	if prefetch {
		b.prefetchMigrations += moved
	} else {
		b.faultMigrations += moved
	}
	return moved
}

// ResidentOnDevice returns the fraction of pages currently device-resident.
func (b *UMBuffer) ResidentOnDevice() float64 {
	if len(b.pages) == 0 {
		return 0
	}
	n := 0
	for _, p := range b.pages {
		if p == OnDevice {
			n++
		}
	}
	return float64(n) / float64(len(b.pages))
}

// MigrationStats returns cumulative migrated byte counts: on-demand (page
// fault) and prefetched (bulk).
func (b *UMBuffer) MigrationStats() (faultBytes, prefetchBytes int64) {
	return b.faultMigrations, b.prefetchMigrations
}
