// Package coordsafe is gklint analyzer testdata mirroring the mapper's
// coordinate types: Contig carries a global Off/End, Mapping a
// contig-relative Pos, and the Reference methods plus the NewReference
// constructor are the whitelisted home of global-offset arithmetic.
package coordsafe

// Contig mirrors mapper.Contig.
type Contig struct {
	Name string
	Off  int
	Len  int
}

// End mirrors mapper.Contig.End.
func (c Contig) End() int { return c.Off + c.Len }

// Reference mirrors mapper.Reference; its methods are whitelisted.
type Reference struct {
	seq     []byte
	contigs []Contig
}

// ContigOf may touch Off/End freely: it is the accessor.
func (r *Reference) ContigOf(pos int) int {
	for i, c := range r.contigs {
		if pos >= c.Off && pos < c.End() {
			return i
		}
	}
	return -1
}

// NewReference is a whitelisted constructor.
func NewReference(seqs [][]byte) *Reference {
	r := &Reference{}
	for _, s := range seqs {
		r.contigs = append(r.contigs, Contig{Off: len(r.seq), Len: len(s)})
		r.seq = append(r.seq, s...)
	}
	return r
}

// Mapping mirrors mapper.Mapping: Pos is contig-relative.
type Mapping struct {
	Contig int
	Pos    int
}

func cleanRelative(m Mapping) int {
	return m.Pos + 5 // relative-only arithmetic is fine
}

func cleanConstNarrow() int32 {
	return int32(42) // constant conversions are fine
}

func allowedNarrow(pos int) int32 {
	return int32(pos) //gk:allow coordsafe: testdata justified narrowing
}

func badOffsetRead(c Contig) int {
	return c.Off // want "direct read of Contig.Off"
}

func badEnd(c Contig) int {
	return c.End() // want "Contig.End() outside"
}

func badNarrowInt(pos int) int32 {
	return int32(pos) // want "narrowing cast int32"
}

func badNarrowUint(pos int64) uint32 {
	return uint32(pos) // want "narrowing cast uint32"
}

// The post-migration regression shape: an int64 position (the width the
// whole pipeline now carries) squeezed back into 32 bits.
func badNarrowInt64(pos int64) int32 {
	return int32(pos) // want "narrowing cast int32"
}

func badMix(m Mapping, c Contig) bool {
	return m.Pos < c.Off // want "mixes a contig-relative Pos" "direct read of Contig.Off"
}
