// Package deferhot is gklint analyzer testdata: no defer and no escaping
// closure allocation inside loops of functions reachable from the
// //gk:noalloc roots — whatever syntax (for, range, goto) spells the loop.
package deferhot

import "sync"

func trace() {}

func apply(f func() int) int { return f() }

//gk:noalloc
func kernelRoot(xs []int) int {
	total := 0
	for _, x := range xs {
		total += process(x)
	}
	return total
}

// process is not annotated itself, but it is reachable from kernelRoot.
func process(x int) int {
	for i := 0; i < 3; i++ {
		defer trace() // want "defer inside a loop"
		x += i
	}
	return x
}

//gk:noalloc
func badClosureInLoop(xs []int) int {
	total := 0
	for _, x := range xs {
		total += apply(func() int { return x * 2 }) // want "closure allocated inside a loop"
	}
	return total
}

//gk:noalloc
func badGotoLoop(n int) {
	i := 0
loop:
	if i < n {
		defer trace() // want "defer inside a loop"
		i++
		goto loop
	}
}

//gk:noalloc
func goodDeferOutsideLoop(mu *sync.Mutex, xs []int) int {
	mu.Lock()
	defer mu.Unlock() // clean: entry block, runs once per call
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

//gk:noalloc
func goodHoistedClosure(xs []int) int {
	double := func(x int) int { return x * 2 } // clean: allocated once, outside the loop
	total := 0
	for _, x := range xs {
		total += double(x)
	}
	return total
}

// coldPath is reachable from no root: out of scope however it defers.
func coldPath(xs []int) {
	for range xs {
		defer trace()
	}
}

//gk:noalloc
func allowedDeferInLoop(xs []int) {
	for range xs {
		//gk:allow deferhot: testdata justified per-iteration defer
		defer trace()
	}
}
