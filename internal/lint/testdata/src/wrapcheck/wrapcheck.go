// Package wrapcheck is gklint analyzer testdata: fault-path errors must
// stay inside the declared sentinel taxonomy, and errors.Is/As targets must
// be declared sentinels/fault types. The golden test registers ErrBoom,
// ErrLost, the Fault type, and engine.setErr as the taxonomy.
package wrapcheck

import (
	"errors"
	"fmt"
	"io"
)

var (
	ErrBoom  = errors.New("boom")
	ErrLost  = errors.New("lost")
	ErrRogue = errors.New("rogue") // want "not in the declared sentinel registry"
)

// Fault is the declared rich fault type.
type Fault struct {
	Kind error
	Err  error
}

func (f *Fault) Error() string   { return f.Kind.Error() }
func (f *Fault) Unwrap() []error { return []error{f.Kind, f.Err} }

type engine struct{ err error }

func (e *engine) setErr(err error) { e.err = err }

func wrapsSentinel(cause error) error {
	return fmt.Errorf("%w: during flush: %v", ErrBoom, cause) // clean: %w of a sentinel
}

func buildsFaultType(cause error) error {
	return &Fault{Kind: ErrBoom, Err: cause} // clean: declared fault type
}

func passesThrough(cause error) error {
	if cause != nil {
		return fmt.Errorf("attempt 1: %w", cause) // clean: someone else's error, wrapped
	}
	return ErrLost
}

func badFresh(x int) error {
	if x < 0 {
		return errors.New("negative input") // want "returned fault-path error is a fresh error"
	}
	return ErrBoom
}

func badNoWrapVerb(x int) error {
	if x < 0 {
		return fmt.Errorf("bad input %d", x) // want "returned fault-path error is a fresh error"
	}
	return fmt.Errorf("%w: x=%d", ErrLost, x)
}

func badLaundered(base error) error {
	if errors.Is(base, ErrBoom) {
		return base
	}
	err := errors.New("fresh")
	return fmt.Errorf("wrapped: %w", err) // want "returned fault-path error is a fresh error"
}

func badSink(e *engine) {
	e.setErr(errors.New("oops")) // want "error passed to the stream fault sink"
}

func goodSink(e *engine, cause error) {
	e.setErr(fmt.Errorf("%w: %v", ErrLost, cause)) // clean: sink fed a sentinel wrap
}

func badFieldStore(f *Fault) {
	if f.Kind == ErrBoom {
		f.Err = errors.New("detail") // want "error stored in a fault struct field"
	}
}

func badIsLocal(err error) bool {
	adhoc := errors.New("adhoc")
	return errors.Is(err, adhoc) // want "not a package-level sentinel"
}

func badIsUnregistered(err error) bool {
	return errors.Is(err, ErrRogue) // want "not a declared sentinel"
}

func goodIsStd(err error) bool {
	return errors.Is(err, io.EOF) // clean: targets outside the module are exempt
}

type localErr struct{ msg string }

func (e *localErr) Error() string { return e.msg }

func badAsUndeclared(err error) bool {
	var le *localErr
	return errors.As(err, &le) // want "not a declared fault type"
}

func goodAsDeclared(err error) bool {
	var f *Fault
	return errors.As(err, &f) // clean: declared fault type
}

func validateOnly(x int) error {
	if x < 0 {
		return fmt.Errorf("x must be non-negative, got %d", x) // clean: not a fault path
	}
	return nil
}

func allowedOpaque(x int) error {
	if x < 0 {
		//gk:allow wrapcheck: testdata pre-taxonomy compatibility path
		return errors.New("legacy failure")
	}
	return ErrBoom
}
