// Package chanlife is gklint analyzer testdata: channels are closed at most
// once per path, never sent on after a close, closed on the receive side
// only behind a happens-before edge, and bounded local buffers must actually
// be drained.
package chanlife

import "sync"

func ownerCloses() {
	ch := make(chan int)
	go func() {
		defer close(ch) // clean: the sending goroutine owns the close
		for i := 0; i < 3; i++ {
			ch <- i
		}
	}()
	for range ch {
	}
}

func goodReceiverCloses(ch chan int, n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			select {
			case ch <- 1:
			default:
			}
		}()
	}
	wg.Wait()
	close(ch) // clean: Wait happens-before the close on every path
}

func badReceiverCloses(ch chan int, n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			select {
			case ch <- 1:
			default:
			}
		}()
	}
	close(ch) // want "close of ch on the receive side"
	wg.Wait()
}

func badSendAfterClose(ch chan int) {
	close(ch)
	ch <- 1 // want "reachable after its close"
}

func badDoubleClose(ch chan int) {
	close(ch)
	close(ch) // want "may already be closed"
}

func goodBranchClose(a, b chan int, cond bool) {
	if cond {
		close(a) // clean: the two closes are path-exclusive
	} else {
		close(b)
	}
}

func badDeferredThenExplicit(ch chan int) {
	defer close(ch)
	close(ch) // want "deferred close pending"
}

func badTwoDeferredCloses(ch chan int) {
	defer close(ch)
	defer close(ch) // want "already has a deferred close"
}

func badBoundedUndrained(n int) {
	resubmit := make(chan int, 4) // want "sent to but never drained"
	for i := 0; i < n; i++ {
		select {
		case resubmit <- i:
		default:
		}
	}
}

func goodBoundedDrained(n int) {
	resubmit := make(chan int, 4) // clean: the dispatcher keeps receiving
	for i := 0; i < n; i++ {
		select {
		case resubmit <- i:
		default:
		}
		<-resubmit
	}
}

func allowedFlagGuardedClose(events chan int, done chan struct{}) {
	closed := false
	for ev := range events {
		if ev < 0 && !closed {
			closed = true
			//gk:allow chanlife: testdata boolean guard the flow analysis cannot track
			close(done)
		}
	}
}
