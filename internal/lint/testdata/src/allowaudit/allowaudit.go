// Package allowaudit is gklint testdata for the suppression auditor itself:
// an allow above a statement that spans several lines, several suppressions
// sharing one comment, and the malformed-allow diagnostics.
package allowaudit

func doErr() error { return nil }

func doErr2(a, b int) error { return nil }

func multiLine() {
	//gk:allow errcheck: testdata allow above a statement spanning several lines
	doErr2(
		1,
		2,
	)
}

//gk:noalloc
func hot() {
	//gk:allow errcheck: testdata deliberate discard //gk:allow noalloc: testdata unannotated callee
	_ = doErr()
}

func malformed() {
	// want+1 "unknown analyzer"
	//gk:allow nosuchpass: testdata bogus analyzer name
	// want+1 "needs a justification"
	//gk:allow errcheck
}
