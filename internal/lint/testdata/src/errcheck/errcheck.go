// Package errcheck is gklint analyzer testdata: discarded error returns are
// findings unless explicitly discarded with _ = and a //gk:allow, or
// covered by the small idiom whitelist.
package errcheck

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"strings"
)

func mayFail() error { return errors.New("x") }

func handled() error {
	if err := mayFail(); err != nil {
		return err
	}
	return nil
}

func allowedBlank() {
	_ = mayFail() //gk:allow errcheck: testdata sanctioned discard
}

func cleanPrints(w *strings.Builder) {
	fmt.Println("ok")
	fmt.Fprintf(os.Stderr, "ok")
	fmt.Fprintf(w, "ok")
	w.WriteString("ok")
}

func cleanStickyWrites(bw *bufio.Writer) error {
	bw.WriteByte('x') // clean: bufio errors are sticky until Flush
	return bw.Flush()
}

func badDiscard() {
	mayFail() // want "error result of errcheck.mayFail discarded"
}

func badDefer(f *os.File) {
	defer f.Close() // want "deferred error result of os.File.Close discarded"
}

func badGo() {
	go mayFail() // want "spawned error result"
}

func badBlank() {
	_ = mayFail() // want "discarded into _"
}

func badMulti() {
	f, _ := os.Open("x") // want "discarded into _"
	_ = f
}

func badFlush(bw *bufio.Writer) {
	bw.Flush() // want "error result of bufio.Writer.Flush discarded"
}
