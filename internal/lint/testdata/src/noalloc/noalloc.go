// Package noalloc is gklint analyzer testdata: every line carrying a want
// comment must produce a diagnostic containing each quoted substring
// (want+1 refers to the next line), and every unmarked line must stay
// clean. The golden test fails in both directions, so deleting a rule from
// the analyzer breaks this package.
package noalloc

import (
	"fmt"
	"math/bits"
)

func helper() int { return 1 }

// pure is annotated and allocation-free: loops, arithmetic, and whitelisted
// std calls are fine.
//
//gk:noalloc
func pure(xs []uint64) int {
	n := 0
	for _, x := range xs {
		n += bits.OnesCount64(x)
	}
	return n
}

// callsPure may call other annotated functions.
//
//gk:noalloc
func callsPure(xs []uint64) int { return pure(xs) }

// inlineClosure binds closures to locals used only in call position — the
// fused-kernel pattern — which is allowed and analyzed inline.
//
//gk:noalloc
func inlineClosure(xs []uint64) uint64 {
	at := func(i int) uint64 { return xs[i] }
	return at(0) + at(1)
}

// allowedCold uses the sanctioned suppression for a cold path.
//
//gk:noalloc
func allowedCold(n int) []int {
	return make([]int, n) //gk:allow noalloc: testdata cold path
}

//gk:noalloc
func badMake(n int) []int {
	return make([]int, n) // want "make allocates"
}

//gk:noalloc
func badNew() *int {
	return new(int) // want "new allocates"
}

//gk:noalloc
func badAppend(xs []int) []int {
	return append(xs, 1) // want "append may grow"
}

//gk:noalloc
func badSliceLit() []int {
	return []int{1, 2} // want "slice literal allocates"
}

//gk:noalloc
func badMapLit() map[int]int {
	return map[int]int{} // want "map literal allocates"
}

//gk:noalloc
func badMapWrite(m map[int]int) {
	m[1] = 2 // want "map write may grow"
}

//gk:noalloc
func badConcat(a, b string) string {
	return a + b // want "string concatenation allocates"
}

//gk:noalloc
func badStringConv(b []byte) string {
	return string(b) // want "conversion to string allocates"
}

//gk:noalloc
func badBytesConv(s string) []byte {
	return []byte(s) // want "string-to-slice conversion allocates"
}

//gk:noalloc
func badBoxReturn(x int) any {
	return x // want "boxes into an interface"
}

//gk:noalloc
func sink(v any) { _ = v }

//gk:noalloc
func badBoxArg(x int) {
	sink(x) // want "boxes into an interface"
}

//gk:noalloc
func badUnannotatedCall() int {
	return helper() // want "not //gk:noalloc"
}

//gk:noalloc
func badStdCall(s string) int {
	return len(fmt.Sprint(s)) // want "assumed to allocate"
}

//gk:noalloc
func variadicCallee(xs ...int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}

//gk:noalloc
func badVariadic() int {
	return variadicCallee(1, 2, 3) // want "variadic call allocates"
}

//gk:noalloc
func badGo() {
	go helper() // want "go statement" "not //gk:noalloc"
}

//gk:noalloc
func badDefer() {
	defer helper() // want "defer in noalloc" "not //gk:noalloc"
}

//gk:noalloc
func badEscape() func() int {
	f := func() int { return 2 } // want "may escape"
	return f
}

type ifc interface{ M() }

//gk:noalloc
func badDynamic(v ifc) {
	v.M() // want "dynamic interface call"
}

//gk:noalloc
func badFuncValue(f func() int) int {
	return f() // want "call through a function value"
}

func malformedMarkers() {
	// want+1 "binds to nothing"
	//gk:noalloc
	// want+1 "unknown analyzer"
	x := 0 //gk:allow nosuchthing: because
	// want+1 "needs a justification"
	y := 0 //gk:allow noalloc
	// want+1 "unused //gk:allow"
	z := 0 //gk:allow noalloc: nothing here is flagged
	_, _, _ = x, y, z
}
