// Package streamsafe is gklint analyzer testdata: sends must sit under a
// select with a done/drain arm or target a locally bounded buffered
// channel, WaitGroup.Add must not run inside the goroutine it accounts
// for, and retry/backoff loops must wait with a cancellable timer, never
// time.Sleep.
package streamsafe

import (
	"context"
	"sync"
	"time"
)

func guardedSend(ch chan int, done chan struct{}) {
	go func() {
		select {
		case ch <- 1: // clean: the done arm lets the sender exit
		case <-done:
		}
	}()
	<-done
}

func defaultSend(ch chan int) {
	select {
	case ch <- 1: // clean: default arm, non-blocking
	default:
	}
}

func bufferedLocal() {
	ch := make(chan int, 4)
	go func() {
		ch <- 1 // clean: locally bounded buffered channel
	}()
	<-ch
}

func allowedDrain(ch chan int) {
	ch <- 1 //gk:allow streamsafe: testdata drain guarantee
}

func badBareSend(ch chan int) {
	ch <- 1 // want "channel send outside a select"
}

func badUnbuffered() {
	ch := make(chan int)
	go func() { <-ch }()
	ch <- 1 // want "channel send outside a select"
}

func badSelectNoDrain(a, b chan int) {
	select {
	case a <- 1: // want "channel send outside a select"
	case b <- 2: // want "channel send outside a select"
	}
}

func badWaitGroupAdd(wg *sync.WaitGroup) {
	go func() {
		wg.Add(1) // want "WaitGroup.Add inside the spawned goroutine"
		defer wg.Done()
	}()
	wg.Wait()
}

func cleanWaitGroup(wg *sync.WaitGroup, ch chan int) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-ch
	}()
	wg.Wait()
}

func badRetryBackoff(ctx context.Context, attempts int) {
	for i := 0; i < attempts; i++ {
		if ctx.Err() != nil {
			return
		}
		time.Sleep(time.Millisecond) // want "time.Sleep cannot observe cancellation"
	}
}

func cleanRetryBackoff(ctx context.Context, d time.Duration) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C: // clean: the backoff wait carries a cancellation arm
		return true
	case <-ctx.Done():
		return false
	}
}

func allowedSleep() {
	time.Sleep(time.Millisecond) //gk:allow streamsafe: testdata pacing guarantee
}
