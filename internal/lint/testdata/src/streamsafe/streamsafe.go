// Package streamsafe is gklint analyzer testdata: sends must sit under a
// select with a done/drain arm or target a locally bounded buffered
// channel, and WaitGroup.Add must not run inside the goroutine it accounts
// for.
package streamsafe

import "sync"

func guardedSend(ch chan int, done chan struct{}) {
	go func() {
		select {
		case ch <- 1: // clean: the done arm lets the sender exit
		case <-done:
		}
	}()
	<-done
}

func defaultSend(ch chan int) {
	select {
	case ch <- 1: // clean: default arm, non-blocking
	default:
	}
}

func bufferedLocal() {
	ch := make(chan int, 4)
	go func() {
		ch <- 1 // clean: locally bounded buffered channel
	}()
	<-ch
}

func allowedDrain(ch chan int) {
	ch <- 1 //gk:allow streamsafe: testdata drain guarantee
}

func badBareSend(ch chan int) {
	ch <- 1 // want "channel send outside a select"
}

func badUnbuffered() {
	ch := make(chan int)
	go func() { <-ch }()
	ch <- 1 // want "channel send outside a select"
}

func badSelectNoDrain(a, b chan int) {
	select {
	case a <- 1: // want "channel send outside a select"
	case b <- 2: // want "channel send outside a select"
	}
}

func badWaitGroupAdd(wg *sync.WaitGroup) {
	go func() {
		wg.Add(1) // want "WaitGroup.Add inside the spawned goroutine"
		defer wg.Done()
	}()
	wg.Wait()
}

func cleanWaitGroup(wg *sync.WaitGroup, ch chan int) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-ch
	}()
	wg.Wait()
}
