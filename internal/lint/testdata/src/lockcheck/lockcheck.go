// Package lockcheck is gklint analyzer testdata: every Lock must be
// released on every path out, no double-lock of the same receiver, and no
// lock held across a blocking operation (channel send/receive, select
// without default, WaitGroup.Wait).
package lockcheck

import "sync"

type engine struct {
	mu      sync.Mutex
	statsMu sync.RWMutex
	n       int
}

func deferredUnlock(e *engine) int {
	e.mu.Lock() // clean: deferred unlock covers every path
	defer e.mu.Unlock()
	return e.n
}

func branchUnlocks(e *engine, x int) int {
	e.mu.Lock() // clean: explicit unlock on each branch
	if x > 0 {
		e.mu.Unlock()
		return x
	}
	e.mu.Unlock()
	return e.n
}

func readLock(e *engine) int {
	e.statsMu.RLock() // clean: RLock with deferred RUnlock
	defer e.statsMu.RUnlock()
	return e.n
}

func badBranchLeak(e *engine, x int) int {
	e.mu.Lock() // want "not released on every path"
	if x > 0 {
		return x
	}
	e.mu.Unlock()
	return e.n
}

func badDoubleLock(e *engine) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.mu.Lock() // want "may already be held"
	e.mu.Unlock()
}

func badSendWhileLocked(e *engine, ch chan int) {
	e.mu.Lock() // want "held across a blocking channel send"
	ch <- e.n
	e.mu.Unlock()
}

func goodSendAfterUnlock(e *engine, ch chan int) {
	e.mu.Lock()
	n := e.n
	e.mu.Unlock()
	ch <- n // clean: released before blocking
}

func badReceiveWhileLocked(e *engine, ch chan int) {
	e.mu.Lock() // want "held across a blocking channel receive"
	e.n = <-ch
	e.mu.Unlock()
}

func badWaitWhileLocked(e *engine, wg *sync.WaitGroup) {
	e.mu.Lock() // want "held across a blocking wg.Wait call"
	wg.Wait()
	e.mu.Unlock()
}

func badRangeWhileLocked(e *engine, ch chan int) {
	e.mu.Lock() // want "held across a blocking range over a channel"
	for v := range ch {
		e.n += v
	}
	e.mu.Unlock()
}

func badSelectWhileLocked(e *engine, ch chan int, done chan struct{}) {
	e.mu.Lock() // want "held across a blocking select"
	select {
	case ch <- e.n:
	case <-done:
	}
	e.mu.Unlock()
}

func goodSelectDefault(e *engine, ch chan int) {
	e.mu.Lock() // clean: a select with a default arm never blocks
	defer e.mu.Unlock()
	select {
	case ch <- e.n:
	default:
	}
}

func allowedSerialization(e *engine, ch chan int) {
	//gk:allow lockcheck: testdata stand-in for a documented whole-stream serialization
	e.mu.Lock()
	defer e.mu.Unlock()
	ch <- e.n
}
