package lint

import (
	"encoding/json"
	"io"
)

// jsonDiagnostic is the machine-readable schema of one finding, one JSON
// object per line (JSON Lines): tooling consumes diagnostics without parsing
// the human file:line:col rendering.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// WriteJSON writes diags to w as JSON Lines, preserving their order (Run
// already sorts by file, line, column, analyzer).
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	enc := json.NewEncoder(w)
	for _, d := range diags {
		jd := jsonDiagnostic{
			File:     d.Position.Filename,
			Line:     d.Position.Line,
			Col:      d.Position.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		}
		if err := enc.Encode(jd); err != nil {
			return err
		}
	}
	return nil
}
