package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// cfg.go is the shared flow engine under the second-generation analyzers
// (lockcheck, chanlife, wrapcheck, deferhot): a statement-granularity
// control-flow graph over go/ast plus a generic forward worklist solver.
// The PR 6 analyzers are syntactic — they judge one statement at a time —
// but lock discipline, channel lifetime, and error provenance are path
// properties ("released on every path out", "no send reachable after the
// close"), and those need basic blocks and per-path facts.
//
// Design decisions, in the order they bite:
//
//   - Blocks hold ast.Node values, not only statements: an if condition or a
//     switch tag is an expression evaluated in the predecessor block, and
//     analyses must see its effects there. The builder never appends a
//     compound statement whole — control structure is encoded as edges — with
//     two deliberate exceptions, *ast.RangeStmt and *ast.SelectStmt, which
//     appear as per-iteration/blocking markers that analyses must interpret
//     without descending into their bodies (the bodies have their own
//     blocks).
//   - Nested function literals are opaque: their bodies never enter the
//     enclosing function's graph. funcContexts enumerates each literal as an
//     analysis context of its own, tagged with whether it runs on a spawned
//     goroutine, so concurrency analyses can treat goroutine boundaries as
//     ownership boundaries.
//   - Calls that cannot return (panic, os.Exit, runtime.Goexit, log.Fatal*)
//     terminate their block with no successor. A lock held at a panic is not
//     a leak the analyzers chase; only normal exits flow into the synthetic
//     Exit block.
//   - The solver is direction-agnostic about its lattice: a union join gives
//     may-facts (a lock that may be held, a channel that may be closed), an
//     intersection join gives must-facts (a happens-before edge that occurred
//     on every path) — the dominator-style path facts the analyzers combine.

// Block is one basic block: straight-line nodes and the edges out.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// CFG is one function context's control-flow graph. Entry is the first
// block; Exit is a synthetic join of every normal (non-panicking) way out.
type CFG struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block
}

type ctrlFrame struct {
	label      string
	isLoop     bool
	breakTo    *Block
	continueTo *Block
}

type cfgBuilder struct {
	info          *types.Info
	g             *CFG
	cur           *Block // nil after a terminator: following code is unreachable
	frames        []ctrlFrame
	labels        map[string]*Block
	fallthroughTo *Block
}

// BuildCFG builds the graph of one function body. info resolves callees for
// termination analysis; it may be nil in tests.
func BuildCFG(info *types.Info, body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{info: info, g: &CFG{}, labels: map[string]*Block{}}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	b.cur = b.g.Entry
	for _, s := range body.List {
		b.stmt(s, "")
	}
	b.seal(b.g.Exit)
	return b.g
}

func (b *cfgBuilder) newBlock() *Block {
	bl := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, bl)
	return bl
}

func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// seal connects the current block (if reachable) to the given join point.
func (b *cfgBuilder) seal(to *Block) { b.edge(b.cur, to) }

// ensure guarantees a current block; code after a terminator lands in a
// fresh predecessor-less block so analyses can still walk it.
func (b *cfgBuilder) ensure() {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
}

func (b *cfgBuilder) append(n ast.Node) {
	b.ensure()
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) labelBlock(name string) *Block {
	if bl, ok := b.labels[name]; ok {
		return bl
	}
	bl := b.newBlock()
	b.labels[name] = bl
	return bl
}

func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, t := range s.List {
			b.stmt(t, "")
		}
	case *ast.LabeledStmt:
		target := b.labelBlock(s.Label.Name)
		b.ensure()
		b.seal(target)
		b.cur = target
		b.stmt(s.Stmt, s.Label.Name)
	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		b.append(s.Cond)
		thenB := b.newBlock()
		after := b.newBlock()
		b.edge(b.cur, thenB)
		var elseB *Block
		if s.Else != nil {
			elseB = b.newBlock()
			b.edge(b.cur, elseB)
		} else {
			b.edge(b.cur, after)
		}
		b.cur = thenB
		b.stmt(s.Body, "")
		b.seal(after)
		if s.Else != nil {
			b.cur = elseB
			b.stmt(s.Else, "")
			b.seal(after)
		}
		b.cur = after
	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		b.ensure()
		header := b.newBlock()
		b.seal(header)
		b.cur = header
		if s.Cond != nil {
			b.append(s.Cond)
		}
		body := b.newBlock()
		after := b.newBlock()
		b.edge(header, body)
		if s.Cond != nil {
			b.edge(header, after)
		}
		contTo := header
		var postB *Block
		if s.Post != nil {
			postB = b.newBlock()
			contTo = postB
		}
		b.frames = append(b.frames, ctrlFrame{label: label, isLoop: true, breakTo: after, continueTo: contTo})
		b.cur = body
		b.stmt(s.Body, "")
		b.seal(contTo)
		b.frames = b.frames[:len(b.frames)-1]
		if s.Post != nil {
			b.cur = postB
			b.stmt(s.Post, "")
			b.seal(header)
		}
		b.cur = after
	case *ast.RangeStmt:
		b.ensure()
		header := b.newBlock()
		b.seal(header)
		header.Nodes = append(header.Nodes, s) // per-iteration marker; analyses look at X/Key/Value only
		body := b.newBlock()
		after := b.newBlock()
		b.edge(header, body)
		b.edge(header, after)
		b.frames = append(b.frames, ctrlFrame{label: label, isLoop: true, breakTo: after, continueTo: header})
		b.cur = body
		b.stmt(s.Body, "")
		b.seal(header)
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = after
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		if s.Tag != nil {
			b.append(s.Tag)
		}
		b.switchBody(s.Body, label, true, func(head *Block, cc *ast.CaseClause) {
			for _, e := range cc.List {
				head.Nodes = append(head.Nodes, e)
			}
		})
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		b.append(s.Assign)
		b.switchBody(s.Body, label, false, nil)
	case *ast.SelectStmt:
		b.append(s) // blocking marker; analyses must not descend into clause bodies
		head := b.cur
		after := b.newBlock()
		b.frames = append(b.frames, ctrlFrame{label: label, breakTo: after})
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			cb := b.newBlock()
			b.edge(head, cb)
			b.cur = cb
			if cc.Comm != nil {
				b.append(cc.Comm)
			}
			for _, t := range cc.Body {
				b.stmt(t, "")
			}
			b.seal(after)
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = after
	case *ast.ReturnStmt:
		b.append(s)
		b.seal(b.g.Exit)
		b.cur = nil
	case *ast.BranchStmt:
		b.ensure()
		name := ""
		if s.Label != nil {
			name = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			for i := len(b.frames) - 1; i >= 0; i-- {
				f := b.frames[i]
				if name == "" || f.label == name {
					b.seal(f.breakTo)
					break
				}
			}
		case token.CONTINUE:
			for i := len(b.frames) - 1; i >= 0; i-- {
				f := b.frames[i]
				if f.isLoop && (name == "" || f.label == name) {
					b.seal(f.continueTo)
					break
				}
			}
		case token.GOTO:
			b.seal(b.labelBlock(name))
		case token.FALLTHROUGH:
			b.seal(b.fallthroughTo)
		}
		b.cur = nil
	default:
		// Simple statements: assignments, sends, calls, defer/go, declarations.
		b.append(s)
		if es, ok := s.(*ast.ExprStmt); ok {
			if call, ok := ast.Unparen(es.X).(*ast.CallExpr); ok && b.terminates(call) {
				b.cur = nil
			}
		}
	}
}

// switchBody shares the clause wiring of expression and type switches.
func (b *cfgBuilder) switchBody(body *ast.BlockStmt, label string, allowFallthrough bool, caseExprs func(*Block, *ast.CaseClause)) {
	b.ensure()
	head := b.cur
	after := b.newBlock()
	b.frames = append(b.frames, ctrlFrame{label: label, breakTo: after})
	clauses := body.List
	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		if caseExprs != nil {
			caseExprs(head, cc)
		}
		bodies[i] = b.newBlock()
		b.edge(head, bodies[i])
	}
	if !hasDefault {
		b.edge(head, after)
	}
	savedFT := b.fallthroughTo
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		b.cur = bodies[i]
		b.fallthroughTo = nil
		if allowFallthrough && i+1 < len(clauses) {
			b.fallthroughTo = bodies[i+1]
		}
		for _, t := range cc.Body {
			b.stmt(t, "")
		}
		b.seal(after)
	}
	b.fallthroughTo = savedFT
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

// terminates reports whether the call provably never returns.
func (b *cfgBuilder) terminates(call *ast.CallExpr) bool {
	if b.info == nil {
		return false
	}
	switch obj := callee(b.info, call).(type) {
	case *types.Builtin:
		return obj.Name() == "panic"
	case *types.Func:
		if obj.Pkg() == nil {
			return false
		}
		switch obj.Pkg().Path() + "." + obj.Name() {
		case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln":
			return true
		}
	}
	return false
}

// ReversePostorder returns the blocks reachable from Entry in reverse
// postorder — the iteration order under which forward dataflow converges
// fastest and reporting passes read top-down.
func (g *CFG) ReversePostorder() []*Block {
	seen := make([]bool, len(g.Blocks))
	var post []*Block
	var dfs func(*Block)
	dfs = func(bl *Block) {
		seen[bl.Index] = true
		for _, s := range bl.Succs {
			if !seen[s.Index] {
				dfs(s)
			}
		}
		post = append(post, bl)
	}
	dfs(g.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// CyclicBlocks returns the reachable blocks that sit on a cycle — loop
// bodies, whatever syntax (for, range, goto) spelled the loop.
func (g *CFG) CyclicBlocks() map[*Block]bool {
	// Tarjan's SCC; iterative state kept per block index.
	const unvisited = -1
	index := make([]int, len(g.Blocks))
	low := make([]int, len(g.Blocks))
	onStack := make([]bool, len(g.Blocks))
	for i := range index {
		index[i] = unvisited
	}
	var stack []*Block
	next := 0
	out := map[*Block]bool{}
	var strong func(*Block)
	strong = func(v *Block) {
		index[v.Index], low[v.Index] = next, next
		next++
		stack = append(stack, v)
		onStack[v.Index] = true
		selfLoop := false
		for _, w := range v.Succs {
			if w == v {
				selfLoop = true
			}
			if index[w.Index] == unvisited {
				strong(w)
				if low[w.Index] < low[v.Index] {
					low[v.Index] = low[w.Index]
				}
			} else if onStack[w.Index] && index[w.Index] < low[v.Index] {
				low[v.Index] = index[w.Index]
			}
		}
		if low[v.Index] == index[v.Index] {
			var scc []*Block
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w.Index] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			if len(scc) > 1 || selfLoop {
				for _, w := range scc {
					out[w] = true
				}
			}
		}
	}
	strong(g.Entry)
	return out
}

// forwardDataflow runs a forward worklist iteration and returns each
// reachable block's in-fact. transfer must be pure in its fact argument and
// monotone; join merges facts at control-flow merges (union for may-facts,
// intersection for must-facts); equal detects the fixpoint.
func forwardDataflow[F any](g *CFG, entry F, transfer func(*Block, F) F, join func(F, F) F, equal func(F, F) bool) map[*Block]F {
	rpo := g.ReversePostorder()
	rank := make(map[*Block]int, len(rpo))
	for i, bl := range rpo {
		rank[bl] = i
	}
	in := map[*Block]F{g.Entry: entry}
	inQueue := map[*Block]bool{g.Entry: true}
	queue := []*Block{g.Entry}
	for len(queue) > 0 {
		best := 0
		for i := 1; i < len(queue); i++ {
			if rank[queue[i]] < rank[queue[best]] {
				best = i
			}
		}
		bl := queue[best]
		queue = append(queue[:best], queue[best+1:]...)
		inQueue[bl] = false
		out := transfer(bl, in[bl])
		for _, s := range bl.Succs {
			nf := out
			cur, seen := in[s]
			if seen {
				nf = join(cur, out)
			}
			if !seen || !equal(cur, nf) {
				in[s] = nf
				if !inQueue[s] {
					inQueue[s] = true
					queue = append(queue, s)
				}
			}
		}
	}
	return in
}

// Function contexts --------------------------------------------------------

// funcCtx is one analysis unit: a function declaration's body or one nested
// function literal's body. Concurrent marks contexts that run (or may run)
// on a goroutine other than the declaration's: the literal is spawned by a
// go statement, or is nested inside one that is.
type funcCtx struct {
	Body       *ast.BlockStmt
	Lit        *ast.FuncLit // nil for the declaration body
	Concurrent bool
}

// funcContexts enumerates the declaration body and every nested literal.
// The declaration body is always context 0.
func funcContexts(fd *ast.FuncDecl) []funcCtx {
	goLits := map[*ast.FuncLit]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
				goLits[lit] = true
			}
		}
		return true
	})
	ctxs := []funcCtx{{Body: fd.Body}}
	inspectStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		conc := goLits[lit]
		for _, anc := range stack {
			if al, ok := anc.(*ast.FuncLit); ok && goLits[al] {
				conc = true
			}
		}
		ctxs = append(ctxs, funcCtx{Body: lit.Body, Lit: lit, Concurrent: conc})
		return true
	})
	return ctxs
}

// shallowWalk visits n and its children, skipping nested function literals
// (they are separate contexts). n itself may be a FuncLit's body; only
// literals strictly below n are skipped.
func shallowWalk(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return f(m)
	})
}

// isChanType reports whether t's core type is a channel.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// selectHasDefault reports whether the select can complete without
// communicating.
func selectHasDefault(s *ast.SelectStmt) bool {
	for _, cl := range s.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// chanIdentObj resolves a channel-typed identifier operand to its object,
// or nil for anything more structured (field selectors, index expressions).
func chanIdentObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil || !isChanType(obj.Type()) {
		return nil
	}
	return obj
}
