// Package lint implements gklint, the repo's static-analysis suite. It
// machine-checks the invariants the performance and correctness claims rest
// on — invariants that runtime tests can only spot-check at a few call
// sites:
//
//   - noalloc: functions annotated //gk:noalloc must not contain allocating
//     constructs. This is the static complement of the AllocsPerRun guards:
//     the runtime guards prove three call sites allocation-free, the
//     analyzer proves every call site of every annotated function.
//   - coordsafe: the multi-contig coordinate discipline of PR 5 — no direct
//     reads of Reference offset internals, no narrowing casts of position
//     values, no arithmetic mixing contig-relative Pos with global offsets —
//     outside the whitelisted mapper.Reference accessors.
//   - streamsafe: the multi-producer streaming discipline — goroutine
//     channel sends happen under a select with a done/drain arm (or on a
//     locally bounded buffered channel), and WaitGroup.Add never runs inside
//     the goroutine it accounts for.
//   - errcheck: no silently discarded error returns.
//
// Four further analyzers are flow-sensitive, built on a shared CFG and
// forward-dataflow engine (cfg.go):
//
//   - lockcheck: every Lock released on every path out, no double-lock of
//     the same receiver, and (in the streaming packages) no lock held across
//     a blocking operation.
//   - chanlife: streaming channels closed exactly once by the goroutine that
//     owns the sends, never sent on after a reachable close, and bounded
//     resubmit-style buffers actually drained.
//   - wrapcheck: fault-path errors stay inside the declared sentinel
//     taxonomy — constructed errors wrap a sentinel with %w or build a
//     declared fault type, and errors.Is/As targets are declared sentinels.
//   - deferhot: no defer or escaping closure allocation inside loops of
//     functions reachable from the //gk:noalloc roots.
//
// Diagnostics are positional (file:line:col: analyzer: message) and
// suppressible only by a //gk:allow <analyzer>: <reason> comment on the
// flagged line or the line above; a justification is mandatory. The package
// uses only the standard library (go/parser, go/ast, go/types with the
// source importer), honouring the repo's zero-dependency constraint.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: where, which analyzer, and what.
type Diagnostic struct {
	Position token.Position
	Analyzer string
	Message  string
}

// String renders the canonical file:line:col: analyzer: message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Position.Filename, d.Position.Line, d.Position.Column, d.Analyzer, d.Message)
}

// Analyzer is one lint pass over a type-checked package.
type Analyzer interface {
	Name() string
	Check(c *Context)
}

// Context is what an analyzer sees for one package: the syntax and type
// information, the module-wide //gk:noalloc annotation set, and a reporter.
type Context struct {
	Pkg *Package
	// All is every package of the loaded module, for analyses that need a
	// module-wide view (call-graph reachability, cross-package helpers).
	All []*Package
	// Fset positions module syntax, for messages that reference a second
	// location.
	Fset *token.FileSet
	// Module is the module path; calls into packages under it are
	// module-internal (noalloc requires their callees to be annotated too).
	Module string
	// NoAlloc is the module-wide set of annotated functions, keyed by
	// FuncKey. It spans packages: an annotated function may call annotated
	// functions of other packages.
	NoAlloc map[string]token.Pos

	report func(analyzer string, pos token.Pos, msg string)
}

// Reportf records one diagnostic for the named analyzer.
func (c *Context) Reportf(analyzer string, pos token.Pos, format string, args ...any) {
	c.report(analyzer, pos, fmt.Sprintf(format, args...))
}

// Config configures one lint run.
type Config struct {
	Analyzers []Analyzer
	// CheckRegistry cross-checks the //gk:noalloc annotations found in the
	// source against the canonical NoAllocRegistry, in both directions, so
	// the static analyzer and the runtime AllocsPerRun guards cannot drift.
	CheckRegistry bool
	// ReportUnusedAllows flags //gk:allow comments that suppressed nothing —
	// stale suppressions hide future regressions.
	ReportUnusedAllows bool
}

// DefaultAnalyzers returns the eight repo analyzers with their production
// scopes: the four syntactic passes of PR 6 and the four flow-sensitive
// passes built on the CFG engine.
func DefaultAnalyzers() []Analyzer {
	return []Analyzer{
		NewNoAlloc(),
		NewCoordSafe(),
		NewStreamSafe(),
		NewErrCheck(),
		NewLockCheck(),
		NewChanLife(),
		NewWrapCheck(),
		NewDeferHot(),
	}
}

// Run lints the loaded module and returns the surviving diagnostics sorted
// by position.
func Run(m *Module, cfg Config) []Diagnostic {
	noalloc := CollectNoAlloc(m)

	var raw []Diagnostic
	report := func(analyzer string, pos token.Pos, msg string) {
		raw = append(raw, Diagnostic{Position: m.Fset.Position(pos), Analyzer: analyzer, Message: msg})
	}

	names := map[string]bool{}
	for _, a := range cfg.Analyzers {
		names[a.Name()] = true
	}

	for _, pkg := range m.Packages {
		c := &Context{Pkg: pkg, All: m.Packages, Fset: m.Fset, Module: m.Path, NoAlloc: noalloc, report: report}
		for _, a := range cfg.Analyzers {
			a.Check(c)
		}
	}

	if cfg.CheckRegistry {
		raw = append(raw, checkRegistry(m, noalloc)...)
	}

	allows, allowDiags := collectAllows(m, names)
	raw = append(raw, allowDiags...)

	var out []Diagnostic
	for _, d := range raw {
		if allows.suppress(d) {
			continue
		}
		out = append(out, d)
	}
	if cfg.ReportUnusedAllows {
		out = append(out, allows.unused()...)
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// Annotations ------------------------------------------------------------

const (
	noallocMarker = "//gk:noalloc"
	allowMarker   = "//gk:allow"
)

// FuncKey names a function the way the registry and the annotation set key
// it: pkgpath.Func for plain functions, pkgpath.Recv.Method for methods
// (receiver pointer-ness ignored).
func FuncKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		if fn.Pkg() == nil {
			return fn.Name()
		}
		return fn.Pkg().Path() + "." + fn.Name()
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	name := "?"
	if n, ok := t.(*types.Named); ok {
		name = n.Obj().Name()
	}
	if fn.Pkg() == nil {
		// Methods of universe types (error.Error) have no package.
		return name + "." + fn.Name()
	}
	return fn.Pkg().Path() + "." + name + "." + fn.Name()
}

// CollectNoAlloc scans every package for //gk:noalloc function annotations
// and returns the annotated set keyed by FuncKey.
func CollectNoAlloc(m *Module) map[string]token.Pos {
	out := map[string]token.Pos{}
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !hasNoAllocDoc(fd) {
					continue
				}
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					out[FuncKey(obj)] = fd.Pos()
				}
			}
		}
	}
	return out
}

func hasNoAllocDoc(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == noallocMarker {
			return true
		}
	}
	return false
}

// checkRegistry diffs the annotations found in the tree against the
// canonical registry.
func checkRegistry(m *Module, ann map[string]token.Pos) []Diagnostic {
	var out []Diagnostic
	reg := NoAllocSet()
	for key, pos := range ann {
		if !reg[key] {
			out = append(out, Diagnostic{
				Position: m.Fset.Position(pos),
				Analyzer: "noalloc",
				Message:  fmt.Sprintf("%s is annotated //gk:noalloc but missing from lint.NoAllocRegistry; add it so the runtime guards track it", key),
			})
		}
	}
	for _, key := range NoAllocRegistry {
		if _, ok := ann[key]; !ok {
			out = append(out, Diagnostic{
				Position: token.Position{Filename: "internal/lint/registry.go"},
				Analyzer: "noalloc",
				Message:  fmt.Sprintf("registry entry %s has no //gk:noalloc annotation in the source", key),
			})
		}
	}
	return out
}

// Suppressions -----------------------------------------------------------

type allowEntry struct {
	pos      token.Position
	analyzer string
	used     bool
}

type allowIndex struct {
	// byLine maps file -> line -> entries allowed on that line.
	byLine map[string]map[int][]*allowEntry
}

// collectAllows parses every //gk:allow comment. Malformed comments (unknown
// analyzer, missing justification) are diagnostics themselves: a suppression
// without a reason is a finding, not an escape hatch. It also flags
// //gk:noalloc markers that are not function doc comments — an annotation
// that silently binds to nothing would weaken the guarantee.
func collectAllows(m *Module, analyzers map[string]bool) (*allowIndex, []Diagnostic) {
	idx := &allowIndex{byLine: map[string]map[int][]*allowEntry{}}
	var diags []Diagnostic
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			docOwned := map[*ast.Comment]bool{}
			ast.Inspect(f, func(n ast.Node) bool {
				if fd, ok := n.(*ast.FuncDecl); ok && fd.Doc != nil {
					for _, c := range fd.Doc.List {
						docOwned[c] = true
					}
				}
				return true
			})
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(c.Text)
					pos := m.Fset.Position(c.Pos())
					if strings.HasPrefix(text, noallocMarker) && !docOwned[c] {
						diags = append(diags, Diagnostic{Position: pos, Analyzer: "lint",
							Message: "//gk:noalloc must be part of a function's doc comment; this one binds to nothing"})
						continue
					}
					if !strings.HasPrefix(text, allowMarker) {
						continue
					}
					// One comment may carry several suppressions (a line with
					// findings from two analyzers): each //gk:allow marker
					// starts a new entry, with the reason running to the next
					// marker.
					for _, seg := range strings.Split(text, allowMarker)[1:] {
						name, reason, _ := strings.Cut(seg, ":")
						name = strings.TrimSpace(name)
						if !analyzers[name] {
							diags = append(diags, Diagnostic{Position: pos, Analyzer: "lint",
								Message: fmt.Sprintf("//gk:allow names unknown analyzer %q", name)})
							continue
						}
						if strings.TrimSpace(reason) == "" {
							diags = append(diags, Diagnostic{Position: pos, Analyzer: "lint",
								Message: fmt.Sprintf("//gk:allow %s needs a justification: //gk:allow %s: <reason>", name, name)})
							continue
						}
						lines := idx.byLine[pos.Filename]
						if lines == nil {
							lines = map[int][]*allowEntry{}
							idx.byLine[pos.Filename] = lines
						}
						lines[pos.Line] = append(lines[pos.Line], &allowEntry{pos: pos, analyzer: name})
					}
				}
			}
		}
	}
	return idx, diags
}

// suppress reports whether d is covered by an allow on its line or the line
// directly above (a standalone comment line), marking the entry used.
func (idx *allowIndex) suppress(d Diagnostic) bool {
	lines := idx.byLine[d.Position.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{d.Position.Line, d.Position.Line - 1} {
		for _, e := range lines[line] {
			if e.analyzer == d.Analyzer {
				e.used = true
				return true
			}
		}
	}
	return false
}

func (idx *allowIndex) unused() []Diagnostic {
	var out []Diagnostic
	for _, lines := range idx.byLine {
		for _, entries := range lines {
			for _, e := range entries {
				if !e.used {
					out = append(out, Diagnostic{Position: e.pos, Analyzer: "lint",
						Message: fmt.Sprintf("unused //gk:allow %s: nothing on this line is flagged; remove the stale suppression", e.analyzer)})
				}
			}
		}
	}
	return out
}

// AST helpers ------------------------------------------------------------

// inspectStack walks root like ast.Inspect while maintaining the ancestor
// stack (stack excludes n itself; stack[len-1] is n's parent).
func inspectStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// callee resolves the called function or method object of a call, or nil for
// calls through function values.
func callee(info *types.Info, call *ast.CallExpr) types.Object {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[f]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok {
			return sel.Obj()
		}
		return info.Uses[f.Sel]
	}
	return nil
}

// namedTypeName returns the name of the (pointer-stripped) named type of t,
// or "".
func namedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
