package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NoAlloc enforces the //gk:noalloc contract: an annotated function must not
// contain constructs the compiler may lower to a heap allocation. It is the
// static complement of the AllocsPerRun runtime guards — those prove a
// handful of call sites allocation-free under one workload; this proves the
// property structurally for every call site.
//
// Flagged inside annotated functions:
//
//   - make / new / append (growth cannot be ruled out statically)
//   - slice and map composite literals (struct literals are fine: they live
//     in registers or on the stack unless something else flags them)
//   - map writes (rehash/growth)
//   - string concatenation and string<->[]byte/[]rune conversions
//   - boxing a non-pointer concrete value into an interface
//   - calls with non-empty variadic argument lists (the slice is implicit)
//   - go and defer statements
//   - closures, unless bound to a local variable that is only ever called
//     (non-escaping; its body is analyzed as part of the function)
//   - dynamic calls (interface methods, function values)
//   - calls to module functions not themselves annotated //gk:noalloc, and
//     calls into standard-library packages outside a small known-pure set
//
// Cold paths inside hot functions (error construction behind a geometry
// check, a panic that cannot fire in-range) carry //gk:allow noalloc with a
// justification.
type NoAlloc struct {
	// AllowedStd are standard-library import path prefixes whose functions
	// are known not to allocate (pure arithmetic/atomics).
	AllowedStd []string
}

// NewNoAlloc returns the analyzer with the production std whitelist.
func NewNoAlloc() *NoAlloc {
	return &NoAlloc{AllowedStd: []string{"math/bits", "sync/atomic", "math", "unsafe"}}
}

// Name implements Analyzer.
func (a *NoAlloc) Name() string { return "noalloc" }

// Check implements Analyzer.
func (a *NoAlloc) Check(c *Context) {
	for _, f := range c.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !hasNoAllocDoc(fd) || fd.Body == nil {
				continue
			}
			a.checkFunc(c, fd)
		}
	}
}

// allocBuiltins are the builtins that allocate.
var allocBuiltins = map[string]string{
	"make":    "make allocates",
	"new":     "new allocates",
	"append":  "append may grow its backing array",
	"print":   "print boxes its operands",
	"println": "println boxes its operands",
}

func (a *NoAlloc) checkFunc(c *Context, fd *ast.FuncDecl) {
	info := c.Pkg.Info
	inlined := inlinedClosures(info, fd)
	flaggedCalls := map[*ast.CallExpr]bool{}

	inspectStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			c.Reportf("noalloc", n.Pos(), "go statement in noalloc function %s: spawning a goroutine allocates", fd.Name.Name)
		case *ast.DeferStmt:
			c.Reportf("noalloc", n.Pos(), "defer in noalloc function %s may allocate its frame", fd.Name.Name)
		case *ast.FuncLit:
			if !inlined.lits[n] {
				c.Reportf("noalloc", n.Pos(), "closure in noalloc function %s may escape and allocate; bind it to a local used only in call position", fd.Name.Name)
			}
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				c.Reportf("noalloc", n.Pos(), "slice literal allocates in noalloc function %s", fd.Name.Name)
			case *types.Map:
				c.Reportf("noalloc", n.Pos(), "map literal allocates in noalloc function %s", fd.Name.Name)
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(info.TypeOf(n)) {
				c.Reportf("noalloc", n.Pos(), "string concatenation allocates in noalloc function %s", fd.Name.Name)
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if _, isMap := info.TypeOf(ix.X).Underlying().(*types.Map); isMap {
						c.Reportf("noalloc", lhs.Pos(), "map write may grow the map in noalloc function %s", fd.Name.Name)
					}
				}
				if i < len(n.Rhs) && len(n.Lhs) == len(n.Rhs) {
					a.checkBoxing(c, fd, info.TypeOf(lhs), n.Rhs[i])
				}
			}
		case *ast.ReturnStmt:
			sig := enclosingSignature(info, fd, stack)
			if sig != nil && sig.Results().Len() == len(n.Results) {
				for i, res := range n.Results {
					a.checkBoxing(c, fd, sig.Results().At(i).Type(), res)
				}
			}
		case *ast.CallExpr:
			a.checkCall(c, fd, n, inlined, flaggedCalls)
		}
		return true
	})
}

func (a *NoAlloc) checkCall(c *Context, fd *ast.FuncDecl, call *ast.CallExpr, inlined *closureSet, flagged map[*ast.CallExpr]bool) {
	info := c.Pkg.Info

	// Type conversions.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		dst := tv.Type
		if len(call.Args) == 1 {
			src := info.TypeOf(call.Args[0])
			switch {
			case isStringType(dst) && !isStringType(src) && !isUntypedConst(info, call.Args[0]):
				c.Reportf("noalloc", call.Pos(), "conversion to string allocates in noalloc function %s", fd.Name.Name)
			case isByteOrRuneSlice(dst) && isStringType(src):
				c.Reportf("noalloc", call.Pos(), "string-to-slice conversion allocates in noalloc function %s", fd.Name.Name)
			case types.IsInterface(dst) && !types.IsInterface(src) && !isPointerLike(src):
				c.Reportf("noalloc", call.Pos(), "conversion boxes a value into an interface in noalloc function %s", fd.Name.Name)
			}
		}
		return
	}

	obj := callee(info, call)
	switch obj := obj.(type) {
	case *types.Builtin:
		if msg, bad := allocBuiltins[obj.Name()]; bad {
			c.Reportf("noalloc", call.Pos(), "%s in noalloc function %s", msg, fd.Name.Name)
			flagged[call] = true
		}
		// Builtin arguments (panic's operand in particular) are exempt from
		// the boxing check: panic is terminal.
		return
	case *types.Func:
		sig := obj.Type().(*types.Signature)
		if recv := sig.Recv(); recv != nil && types.IsInterface(recv.Type()) {
			c.Reportf("noalloc", call.Pos(), "dynamic interface call %s in noalloc function %s cannot be proven allocation-free", obj.Name(), fd.Name.Name)
			flagged[call] = true
			break
		}
		key := FuncKey(obj)
		switch {
		case obj.Pkg() == nil:
			// Universe-scope (error.Error reached above); nothing else here.
		case strings.HasPrefix(obj.Pkg().Path(), c.Module+"/") || obj.Pkg().Path() == c.Module:
			if _, ok := c.NoAlloc[key]; !ok {
				c.Reportf("noalloc", call.Pos(), "call to %s, which is not //gk:noalloc, in noalloc function %s", key, fd.Name.Name)
				flagged[call] = true
			}
		default:
			if !a.stdAllowed(obj.Pkg().Path()) {
				c.Reportf("noalloc", call.Pos(), "call to %s in noalloc function %s: standard-library calls outside %v are assumed to allocate", key, fd.Name.Name, a.AllowedStd)
				flagged[call] = true
			}
		}
	default:
		// Call through a function value: fine only for the inlined-closure
		// pattern.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && inlined.objs[info.Uses[id]] {
			break
		}
		c.Reportf("noalloc", call.Pos(), "call through a function value in noalloc function %s cannot be proven allocation-free", fd.Name.Name)
		flagged[call] = true
	}

	if flagged[call] {
		return // one diagnostic per call; its arguments still get walked
	}

	// Variadic calls materialize their argument slice.
	if sig, ok := info.TypeOf(call.Fun).(*types.Signature); ok && sig.Variadic() && call.Ellipsis == token.NoPos {
		if len(call.Args) >= sig.Params().Len() {
			c.Reportf("noalloc", call.Pos(), "variadic call allocates its argument slice in noalloc function %s", fd.Name.Name)
			return
		}
	}

	// Boxing arguments into interface parameters.
	if sig, ok := info.TypeOf(call.Fun).(*types.Signature); ok {
		for i, arg := range call.Args {
			var pt types.Type
			if i < sig.Params().Len() {
				pt = sig.Params().At(i).Type()
			} else if sig.Variadic() {
				pt = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
			}
			if pt != nil {
				a.checkBoxing(c, fd, pt, arg)
			}
		}
	}
}

// checkBoxing flags storing a non-pointer concrete value into an
// interface-typed slot.
func (a *NoAlloc) checkBoxing(c *Context, fd *ast.FuncDecl, dst types.Type, src ast.Expr) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	st := c.Pkg.Info.TypeOf(src)
	if st == nil || types.IsInterface(st) || isPointerLike(st) || isUntypedNil(st) {
		return
	}
	c.Reportf("noalloc", src.Pos(), "value of type %s boxes into an interface in noalloc function %s", st, fd.Name.Name)
}

func (a *NoAlloc) stdAllowed(path string) bool {
	for _, p := range a.AllowedStd {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// closureSet records closures that behave like inlined code: bound once to a
// local variable whose every use is a direct call.
type closureSet struct {
	lits map[*ast.FuncLit]bool
	objs map[types.Object]bool
}

// inlinedClosures finds `f := func(...){...}` bindings inside fd whose
// variable is only ever used in call position — the pattern the compiler
// keeps off the heap, and the pattern maskPass uses for its fused helpers.
func inlinedClosures(info *types.Info, fd *ast.FuncDecl) *closureSet {
	cs := &closureSet{lits: map[*ast.FuncLit]bool{}, objs: map[types.Object]bool{}}
	candidates := map[types.Object]*ast.FuncLit{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			lit, ok := as.Rhs[i].(*ast.FuncLit)
			if !ok {
				continue
			}
			if obj := info.Defs[id]; obj != nil {
				candidates[obj] = lit
			}
		}
		return true
	})
	if len(candidates) == 0 {
		return cs
	}
	escaped := map[types.Object]bool{}
	inspectStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil || candidates[obj] == nil {
			return true
		}
		// The use is fine only as the Fun of a call.
		ok = false
		if len(stack) > 0 {
			if call, isCall := stack[len(stack)-1].(*ast.CallExpr); isCall && ast.Unparen(call.Fun) == id {
				ok = true
			}
		}
		if !ok {
			escaped[obj] = true
		}
		return true
	})
	for obj, lit := range candidates {
		if !escaped[obj] {
			cs.lits[lit] = true
			cs.objs[obj] = true
		}
	}
	return cs
}

// enclosingSignature returns the signature of the innermost function literal
// or declaration containing the current node.
func enclosingSignature(info *types.Info, fd *ast.FuncDecl, stack []ast.Node) *types.Signature {
	for i := len(stack) - 1; i >= 0; i-- {
		if lit, ok := stack[i].(*ast.FuncLit); ok {
			if sig, ok := info.TypeOf(lit).(*types.Signature); ok {
				return sig
			}
			return nil
		}
	}
	if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
		return obj.Type().(*types.Signature)
	}
	return nil
}

// Type predicates --------------------------------------------------------

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// isPointerLike reports types whose interface representation stores the
// value directly (no box): pointers, channels, maps, funcs, unsafe pointers.
func isPointerLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

func isUntypedConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}
