package lint

import (
	"go/ast"
	"go/types"
)

// StreamSafe enforces the streaming packages' concurrency discipline, the
// one the race detector can only probe dynamically:
//
//   - every channel send must sit under a select that also has a done/drain
//     arm (a receive or default case that lets the goroutine exit when the
//     consumer is gone), or target a channel created in the same function
//     with an explicit capacity (the bounded free-list/ack pattern, where
//     the buffer provably covers the senders). Anything else — notably the
//     documented drained-channel handoffs between runStream's stages — must
//     carry //gk:allow streamsafe naming the drain guarantee.
//   - sync.WaitGroup.Add must not run inside the goroutine it accounts for:
//     Add racing Wait is the classic leaked-goroutine/early-Wait bug. Add
//     before go, Done inside.
//   - time.Sleep is banned: a sleeping retry/backoff loop cannot observe
//     cancellation, so a cancelled stream holds its worker (and everything
//     draining behind it) for the full sleep. Back off with a time.Timer
//     inside a select that also has a ctx.Done arm.
//
// The analyzer runs over the streaming packages only (gkgpu's pipelines and
// the mapper's channel-fed core); other packages' incidental goroutines are
// covered by the race detector and vet.
type StreamSafe struct {
	// Packages are the package paths under the discipline.
	Packages map[string]bool
}

// NewStreamSafe returns the analyzer scoped to the streaming packages.
func NewStreamSafe() *StreamSafe {
	return &StreamSafe{Packages: map[string]bool{
		"repro/internal/gkgpu":  true,
		"repro/internal/mapper": true,
	}}
}

// Name implements Analyzer.
func (a *StreamSafe) Name() string { return "streamsafe" }

// Check implements Analyzer.
func (a *StreamSafe) Check(c *Context) {
	if !a.Packages[c.Pkg.Path] {
		return
	}
	info := c.Pkg.Info
	for _, f := range c.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			inspectStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
				switch n := n.(type) {
				case *ast.SendStmt:
					if !sendGuarded(info, fd, n, stack) {
						c.Reportf("streamsafe", n.Arrow, "channel send outside a select with a done/drain arm; add a cancellation case, use a locally bounded buffered channel, or document the drain guarantee with //gk:allow")
					}
				case *ast.GoStmt:
					if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
						checkWaitGroupAdd(c, info, lit)
					}
				case *ast.CallExpr:
					if isTimeSleep(info, n) {
						c.Reportf("streamsafe", n.Pos(), "time.Sleep cannot observe cancellation; back off with a time.Timer in a select with a ctx.Done arm")
					}
				}
				return true
			})
		}
	}
}

// sendGuarded reports whether the send is under a select with an escape arm
// or targets a channel made with explicit capacity inside this function.
func sendGuarded(info *types.Info, fd *ast.FuncDecl, send *ast.SendStmt, stack []ast.Node) bool {
	// Escape 1: the send is the comm of a select clause whose select has
	// another receive or default arm. (The clause's walk parent is the
	// select's BlockStmt, hence stack[i-2] for the SelectStmt.)
	for i := len(stack) - 1; i > 1; i-- {
		clause, ok := stack[i].(*ast.CommClause)
		if !ok || clause.Comm != send {
			continue
		}
		sel, ok := stack[i-2].(*ast.SelectStmt)
		if !ok {
			break
		}
		for _, cl := range sel.Body.List {
			cc := cl.(*ast.CommClause)
			if cc == clause {
				continue
			}
			if cc.Comm == nil { // default
				return true
			}
			switch cc.Comm.(type) {
			case *ast.ExprStmt, *ast.AssignStmt: // receive arm
				return true
			}
		}
		break
	}
	// Escape 2: the channel was made with an explicit capacity in this
	// function (including its closures) — the bounded-buffer pattern.
	id, ok := ast.Unparen(send.Chan).(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil {
		return false
	}
	return bufferedChanLocal(info, fd, obj)
}

// bufferedChanLocal reports whether obj is bound to a make(chan T, cap) call
// with an explicit capacity argument anywhere inside fd.
func bufferedChanLocal(info *types.Info, fd *ast.FuncDecl, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			bound := info.Defs[id]
			if bound == nil {
				bound = info.Uses[id]
			}
			if bound != obj {
				continue
			}
			if call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr); ok && len(call.Args) == 2 {
				if fn, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
					if b, ok := info.Uses[fn].(*types.Builtin); ok && b.Name() == "make" {
						// Zero-capacity literals don't count as buffered.
						if tv, ok := info.Types[call.Args[1]]; !ok || tv.Value == nil || tv.Value.String() != "0" {
							found = true
						}
					}
				}
			}
		}
		return true
	})
	return found
}

// isTimeSleep reports whether the call is time.Sleep.
func isTimeSleep(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Sleep" {
		return false
	}
	obj := info.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "time"
}

// checkWaitGroupAdd flags WaitGroup.Add calls lexically inside a spawned
// goroutine body.
func checkWaitGroupAdd(c *Context, info *types.Info, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Add" {
			return true
		}
		s, ok := info.Selections[sel]
		if !ok || s.Kind() != types.MethodVal {
			return true
		}
		recv := s.Recv()
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
		}
		if named, ok := recv.(*types.Named); ok {
			if named.Obj().Name() == "WaitGroup" && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync" {
				c.Reportf("streamsafe", call.Pos(), "WaitGroup.Add inside the spawned goroutine races Wait; Add before the go statement, Done inside")
			}
		}
		return true
	})
}
