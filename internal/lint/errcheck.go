package lint

import (
	"go/ast"
	"go/types"
)

// ErrCheck is errcheck-lite: no discarded error returns. A call whose error
// result is dropped on the floor — as a bare expression statement, behind a
// deferred cleanup, or assigned to _ — is a finding unless the discard is
// the sanctioned form: an explicit _ assignment justified by //gk:allow
// errcheck.
//
// "Lite" is a small idiom whitelist instead of a config file:
//
//   - fmt.Print/Printf/Println (terminal output; nothing actionable on
//     failure), and fmt.Fprint* when the writer is os.Stdout/os.Stderr, an
//     interface-typed io.Writer (the harness's best-effort report
//     rendering), or one of the sticky/infallible writers below — writes
//     straight to a concrete *os.File stay findings
//   - methods on strings.Builder and bytes.Buffer (documented never to fail)
//   - bufio.Writer's Write* methods — its errors are sticky and must be
//     checked exactly once, at Flush; Flush itself is therefore NOT
//     whitelisted
type ErrCheck struct{}

// NewErrCheck returns the analyzer.
func NewErrCheck() *ErrCheck { return &ErrCheck{} }

// Name implements Analyzer.
func (a *ErrCheck) Name() string { return "errcheck" }

// Check implements Analyzer.
func (a *ErrCheck) Check(c *Context) {
	for _, f := range c.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					a.checkDiscard(c, call, "")
				}
			case *ast.DeferStmt:
				a.checkDiscard(c, n.Call, "deferred ")
			case *ast.GoStmt:
				a.checkDiscard(c, n.Call, "spawned ")
			case *ast.AssignStmt:
				a.checkBlank(c, n)
			}
			return true
		})
	}
}

// checkDiscard flags a call statement whose error result vanishes.
func (a *ErrCheck) checkDiscard(c *Context, call *ast.CallExpr, how string) {
	info := c.Pkg.Info
	if !returnsError(info, call) || a.whitelisted(c, call) {
		return
	}
	name := calleeName(info, call)
	c.Reportf("errcheck", call.Pos(), "%serror result of %s discarded; handle it or discard explicitly with _ = and //gk:allow errcheck", how, name)
}

// checkBlank flags error results assigned to _.
func (a *ErrCheck) checkBlank(c *Context, as *ast.AssignStmt) {
	info := c.Pkg.Info
	// x, _ := f()  — single multi-value call on the right.
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		tuple, ok := info.TypeOf(call).(*types.Tuple)
		if !ok || a.whitelisted(c, call) {
			return
		}
		for i, lhs := range as.Lhs {
			if i >= tuple.Len() {
				break
			}
			if isBlank(lhs) && isErrorType(tuple.At(i).Type()) {
				c.Reportf("errcheck", lhs.Pos(), "error result of %s discarded into _; justify with //gk:allow errcheck", calleeName(info, call))
			}
		}
		return
	}
	// _ = expr — element-wise.
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		if !isBlank(lhs) || !isErrorType(info.TypeOf(as.Rhs[i])) {
			continue
		}
		name := "expression"
		if call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr); ok {
			if a.whitelisted(c, call) {
				continue
			}
			name = calleeName(info, call)
		}
		c.Reportf("errcheck", lhs.Pos(), "error result of %s discarded into _; justify with //gk:allow errcheck", name)
	}
}

// returnsError reports whether the call's results include an error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call)
	switch t := t.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
	default:
		return isErrorType(t)
	}
	return false
}

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// whitelisted implements the lite idiom list.
func (a *ErrCheck) whitelisted(c *Context, call *ast.CallExpr) bool {
	info := c.Pkg.Info
	obj, ok := callee(info, call).(*types.Func)
	if !ok || obj.Pkg() == nil {
		return false
	}
	pkg, name := obj.Pkg().Path(), obj.Name()

	sig := obj.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		switch namedOf(recv.Type()) {
		case "strings.Builder", "bytes.Buffer":
			return true
		case "bufio.Writer":
			return name != "Flush" // sticky errors surface at Flush
		}
		return false
	}

	if pkg == "fmt" {
		switch name {
		case "Print", "Printf", "Println":
			return true
		case "Fprint", "Fprintf", "Fprintln":
			return len(call.Args) > 0 && errorFreeWriter(info, call.Args[0])
		}
	}
	return false
}

// errorFreeWriter reports whether formatted output to w needs no error
// check: a std stream, an abstract io.Writer (best-effort rendering — the
// concrete writers that matter are checked at Flush/Close), or a writer
// whose errors are sticky or impossible.
func errorFreeWriter(info *types.Info, w ast.Expr) bool {
	if isStdStream(info, w) {
		return true
	}
	t := info.TypeOf(w)
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Interface); ok {
		return true
	}
	switch namedOf(t) {
	case "strings.Builder", "bytes.Buffer", "bufio.Writer":
		return true
	}
	return false
}

// namedOf renders the pointer-stripped named type as pkgpath.Name.
func namedOf(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Path() + "." + n.Obj().Name()
}

// isStdStream matches os.Stdout / os.Stderr.
func isStdStream(info *types.Info, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Stdout" && sel.Sel.Name != "Stderr") {
		return false
	}
	obj := info.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "os"
}

// calleeName renders the callee for diagnostics.
func calleeName(info *types.Info, call *ast.CallExpr) string {
	if obj, ok := callee(info, call).(*types.Func); ok {
		return FuncKey(obj)
	}
	return "call"
}
