package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// ChanLife enforces the channel-lifetime discipline of the streaming
// packages on the CFG:
//
//   - a channel is closed at most once per path: a close that may follow an
//     earlier close — or that an already-registered deferred close will
//     repeat at exit — panics at runtime, exactly when the fault paths that
//     exercise it are least tested.
//   - no send is reachable after a close of the same channel within a
//     context (send-on-closed panics).
//   - a close on the receive side — a context that neither owns the sends
//     nor shares their goroutine (the senders are in go-spawned contexts, or
//     the channel escapes into one) — must be preceded on every path by a
//     happens-before edge: a WaitGroup/Cond Wait, a channel receive, or a
//     call to a function that visibly performs one (the drain helpers).
//     Without it the close races the live senders. This is how gkgpu's
//     runStream justifies close(completed): workers.Wait() dominates it.
//   - a locally made bounded channel that is sent to by bare sends must be
//     drained somewhere in the function (a receive, range, or select arm)
//     or handed off (escape); the PR 9 resubmit pattern's capacity argument
//     only holds if the dispatcher actually keeps receiving. This verifies
//     the pattern instead of trusting the comment.
//
// Channel identity is the local identifier's object; fields and map/slice
// elements are out of scope. Cross-goroutine double closes (two different
// contexts closing the same channel) are not chased: mutually exclusive
// branches across goroutines (mapper's verifyJobs) would drown the signal
// in false positives — the per-context rule plus the ownership rule cover
// the real failure modes.
type ChanLife struct {
	// Packages under the discipline.
	Packages map[string]bool

	syncFuncsOnce bool
	syncFuncs     map[string]bool // FuncKeys of module functions that visibly sync
}

// NewChanLife returns the analyzer scoped to the streaming packages.
func NewChanLife() *ChanLife {
	return &ChanLife{Packages: map[string]bool{
		"repro/internal/gkgpu":  true,
		"repro/internal/mapper": true,
	}}
}

// Name implements Analyzer.
func (a *ChanLife) Name() string { return "chanlife" }

// chanFact carries the per-path channel state: may-closed and
// may-defer-closed sets (union join) and the must-have-synced bit
// (intersection join).
type chanFact struct {
	closed    map[types.Object]token.Pos
	willClose map[types.Object]token.Pos
	synced    bool
}

func (f chanFact) clone() chanFact {
	out := chanFact{synced: f.synced}
	if len(f.closed) > 0 {
		out.closed = make(map[types.Object]token.Pos, len(f.closed))
		for k, v := range f.closed {
			out.closed[k] = v
		}
	}
	if len(f.willClose) > 0 {
		out.willClose = make(map[types.Object]token.Pos, len(f.willClose))
		for k, v := range f.willClose {
			out.willClose[k] = v
		}
	}
	return out
}

func chanJoin(a, b chanFact) chanFact {
	out := a.clone()
	for k, v := range b.closed {
		if cur, ok := out.closed[k]; !ok || v < cur {
			if out.closed == nil {
				out.closed = map[types.Object]token.Pos{}
			}
			out.closed[k] = v
		}
	}
	for k, v := range b.willClose {
		if cur, ok := out.willClose[k]; !ok || v < cur {
			if out.willClose == nil {
				out.willClose = map[types.Object]token.Pos{}
			}
			out.willClose[k] = v
		}
	}
	out.synced = a.synced && b.synced
	return out
}

func chanEqual(a, b chanFact) bool {
	if a.synced != b.synced || len(a.closed) != len(b.closed) || len(a.willClose) != len(b.willClose) {
		return false
	}
	for k, v := range a.closed {
		if w, ok := b.closed[k]; !ok || v != w {
			return false
		}
	}
	for k, v := range a.willClose {
		if w, ok := b.willClose[k]; !ok || v != w {
			return false
		}
	}
	return true
}

// chanUse is the per-context usage summary the ownership rule consults.
type chanUse struct {
	sends    map[types.Object]bool
	escapes  map[types.Object]bool
	receives map[types.Object]bool
}

// Check implements Analyzer.
func (a *ChanLife) Check(c *Context) {
	if !a.Packages[c.Pkg.Path] {
		return
	}
	a.collectSyncFuncs(c)
	for _, f := range c.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			a.checkFunc(c, fd)
		}
	}
}

// collectSyncFuncs records, once per run, the module functions whose body
// visibly performs a happens-before operation (receive, range over a
// channel, or Wait) — one level of interprocedural credit so drain helpers
// like gkgpu's drainInput count as synchronization at their call sites.
func (a *ChanLife) collectSyncFuncs(c *Context) {
	if a.syncFuncsOnce {
		return
	}
	a.syncFuncsOnce = true
	a.syncFuncs = map[string]bool{}
	for _, pkg := range c.All {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				syncs := false
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if syncs {
						return false
					}
					switch n := n.(type) {
					case *ast.UnaryExpr:
						syncs = syncs || n.Op == token.ARROW
					case *ast.RangeStmt:
						syncs = syncs || isChanType(pkg.Info.TypeOf(n.X))
					case *ast.CallExpr:
						syncs = syncs || isSyncWait(pkg.Info, n)
					}
					return true
				})
				if !syncs {
					continue
				}
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					a.syncFuncs[FuncKey(obj)] = true
				}
			}
		}
	}
}

func (a *ChanLife) checkFunc(c *Context, fd *ast.FuncDecl) {
	info := c.Pkg.Info
	ctxs := funcContexts(fd)
	uses := make([]chanUse, len(ctxs))
	for i, fc := range ctxs {
		uses[i] = collectChanUse(info, fc.Body)
	}

	// foreignSent: from the closing context's point of view, could a sender
	// be live on another goroutine? True when a context that can run
	// concurrently with the closer sends on the channel or passes it onward
	// (to a function whose sends we cannot see).
	foreignSent := func(obj types.Object, closer int) bool {
		for j := range ctxs {
			if j == closer || (!ctxs[j].Concurrent && !ctxs[closer].Concurrent) {
				continue
			}
			if uses[j].sends[obj] || uses[j].escapes[obj] {
				return true
			}
		}
		return false
	}

	for i, fc := range ctxs {
		a.checkContext(c, fc, func(obj types.Object) bool { return foreignSent(obj, i) })
	}
	a.checkBoundedDrained(c, fd, ctxs, uses)
}

// collectChanUse summarizes one context's channel traffic, skipping nested
// literals (they summarize themselves).
func collectChanUse(info *types.Info, body *ast.BlockStmt) chanUse {
	u := chanUse{sends: map[types.Object]bool{}, escapes: map[types.Object]bool{}, receives: map[types.Object]bool{}}
	mark := func(m map[types.Object]bool, e ast.Expr) {
		if obj := chanIdentObj(info, e); obj != nil {
			m[obj] = true
		}
	}
	shallowWalk(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			mark(u.sends, n.Chan)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				mark(u.receives, n.X)
			}
		case *ast.RangeStmt:
			if isChanType(info.TypeOf(n.X)) {
				mark(u.receives, n.X)
			}
		case *ast.CallExpr:
			if isBuiltinNamed(info, n, "close") || isBuiltinNamed(info, n, "len") || isBuiltinNamed(info, n, "cap") {
				return true
			}
			for _, arg := range n.Args {
				mark(u.escapes, arg)
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				mark(u.escapes, r)
			}
		case *ast.AssignStmt:
			// Re-binding a channel to another name or storing it in a
			// structure loses tracking; count it as an escape.
			for _, r := range n.Rhs {
				mark(u.escapes, r)
			}
		}
		return true
	})
	return u
}

// isBuiltinNamed reports whether the call invokes the named builtin.
func isBuiltinNamed(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

func (a *ChanLife) checkContext(c *Context, fc funcCtx, foreignSent func(types.Object) bool) {
	info := c.Pkg.Info
	g := BuildCFG(info, fc.Body)
	transfer := func(bl *Block, in chanFact, report bool) chanFact {
		out := in.clone()
		for _, n := range bl.Nodes {
			a.transferNode(c, info, n, &out, report, foreignSent)
		}
		return out
	}
	in := forwardDataflow(g, chanFact{},
		func(bl *Block, f chanFact) chanFact { return transfer(bl, f, false) },
		chanJoin, chanEqual)
	for _, bl := range g.ReversePostorder() {
		transfer(bl, in[bl], true)
	}

	// Deferred closes run at function exit: the ownership rule applies with
	// the facts that hold when the context returns.
	exit, ok := in[g.Exit]
	if !ok {
		return
	}
	objs := make([]types.Object, 0, len(exit.willClose))
	for obj := range exit.willClose {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return exit.willClose[objs[i]] < exit.willClose[objs[j]] })
	for _, obj := range objs {
		if foreignSent(obj) && !exit.synced {
			c.Reportf("chanlife", exit.willClose[obj], "deferred close of %s runs while senders on other goroutines may be live; wait (WaitGroup or receive) before every return, or move the close to the sending goroutine", obj.Name())
		}
	}
}

func (a *ChanLife) transferNode(c *Context, info *types.Info, n ast.Node, out *chanFact, report bool, foreignSent func(types.Object) bool) {
	closeArg := func(call *ast.CallExpr) types.Object {
		if !isBuiltinNamed(info, call, "close") || len(call.Args) != 1 {
			return nil
		}
		return chanIdentObj(info, call.Args[0])
	}
	switch n := n.(type) {
	case *ast.DeferStmt:
		if obj := closeArg(n.Call); obj != nil {
			if report {
				if pos, ok := out.willClose[obj]; ok {
					c.Reportf("chanlife", n.Call.Pos(), "%s already has a deferred close (registered at %s); both will run and the second panics", obj.Name(), c.Fset.Position(pos))
				} else if pos, ok := out.closed[obj]; ok {
					c.Reportf("chanlife", n.Call.Pos(), "%s may already be closed (at %s) when this deferred close runs", obj.Name(), c.Fset.Position(pos))
				}
			}
			if out.willClose == nil {
				out.willClose = map[types.Object]token.Pos{}
			}
			if _, ok := out.willClose[obj]; !ok {
				out.willClose[obj] = n.Call.Pos()
			}
		}
		return
	case *ast.RangeStmt:
		if isChanType(info.TypeOf(n.X)) {
			out.synced = true
		}
		return
	case *ast.SelectStmt:
		// A select whose every communicating arm is a receive is a
		// happens-before edge once it completes; a default or a send arm
		// can complete without one.
		syncs := !selectHasDefault(n) && len(n.Body.List) > 0
		for _, cl := range n.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				if _, isSend := cc.Comm.(*ast.SendStmt); isSend {
					syncs = false
				}
			}
		}
		if syncs {
			out.synced = true
		}
		return
	}
	shallowWalk(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.CallExpr:
			if obj := closeArg(m); obj != nil {
				if report {
					if pos, ok := out.closed[obj]; ok {
						c.Reportf("chanlife", m.Pos(), "%s may already be closed (at %s); a second close panics", obj.Name(), c.Fset.Position(pos))
					} else if pos, ok := out.willClose[obj]; ok {
						c.Reportf("chanlife", m.Pos(), "%s has a deferred close pending (registered at %s); closing it here makes the deferred close a double close", obj.Name(), c.Fset.Position(pos))
					}
					if foreignSent(obj) && !out.synced {
						c.Reportf("chanlife", m.Pos(), "close of %s on the receive side without a preceding happens-before edge (WaitGroup.Wait or a receive); senders on other goroutines may still be live", obj.Name())
					}
				}
				if out.closed == nil {
					out.closed = map[types.Object]token.Pos{}
				}
				if _, ok := out.closed[obj]; !ok {
					out.closed[obj] = m.Pos()
				}
				return true
			}
			if isSyncWait(info, m) {
				out.synced = true
				return true
			}
			if fn, ok := callee(info, m).(*types.Func); ok && a.syncFuncs[FuncKey(fn)] {
				out.synced = true
			}
		case *ast.SendStmt:
			if report {
				if obj := chanIdentObj(info, m.Chan); obj != nil {
					if pos, ok := out.closed[obj]; ok {
						c.Reportf("chanlife", m.Arrow, "send on %s is reachable after its close at %s; send-on-closed panics", obj.Name(), c.Fset.Position(pos))
					}
				}
			}
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				out.synced = true
			}
		}
		return true
	})
}

// checkBoundedDrained verifies the bounded-buffer pattern end to end: a
// channel made locally with an explicit capacity and fed by bare sends must
// also be drained (received, ranged, or a select receive arm) or handed off
// somewhere in the function. The capacity argument that licenses the bare
// send is void if nothing ever takes from the channel.
func (a *ChanLife) checkBoundedDrained(c *Context, fd *ast.FuncDecl, ctxs []funcCtx, uses []chanUse) {
	info := c.Pkg.Info
	type mk struct {
		pos      token.Pos
		buffered bool
	}
	makes := map[types.Object]mk{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.Defs[id]
			if obj == nil || !isChanType(obj.Type()) {
				continue
			}
			call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
			if !ok || !isBuiltinNamed(info, call, "make") {
				continue
			}
			buffered := false
			if len(call.Args) == 2 {
				if tv, ok := info.Types[call.Args[1]]; !ok || tv.Value == nil || tv.Value.String() != "0" {
					buffered = true
				}
			}
			makes[obj] = mk{pos: as.Pos(), buffered: buffered}
		}
		return true
	})
	var objs []types.Object
	for obj := range makes {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return makes[objs[i]].pos < makes[objs[j]].pos })
	for _, obj := range objs {
		m := makes[obj]
		if !m.buffered {
			continue
		}
		sent, drained := false, false
		for i := range ctxs {
			sent = sent || uses[i].sends[obj]
			drained = drained || uses[i].receives[obj] || uses[i].escapes[obj]
		}
		if sent && !drained {
			c.Reportf("chanlife", m.pos, "bounded channel %s is sent to but never drained or handed off; its capacity argument cannot hold — add the receive side or remove the channel", obj.Name())
		}
	}
}
