package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// WrapCheck guards the fault taxonomy the retry/redispatch machinery and
// the mapper's index loader dispatch on. The taxonomy only works if it is
// closed: gkmap matches errors.Is(err, ErrStreamAborted), the engine
// quarantines on errors.Is(err, cuda.ErrDeviceLost), and the mapper's CLI
// explains corrupt indexes via the ErrIndex* family — an error constructed
// outside the taxonomy in a fault path is invisible to all of them.
//
//   - Module-wide: every errors.Is target must be a declared sentinel (or a
//     standard-library error); every errors.As target must be a declared
//     fault type. A comparison against an undeclared error is a taxonomy
//     fork at the consumption side.
//   - In the fault packages, a function that speaks the taxonomy — it
//     references a declared sentinel or feeds a declared error sink such as
//     Engine.setStreamErr — must speak it exclusively: every error it
//     produces (returns, passes to a sink, or stores in an err field of a
//     local fault struct) must be a sentinel, wrap one with %w, carry a
//     declared fault type, or pass through an error whose provenance is
//     someone else's (a callee result). Freshly minted opaque errors —
//     errors.New, fmt.Errorf without %w — are findings. Provenance is
//     tracked through local variables with a forward dataflow, so an opaque
//     error laundered through an assignment is still caught.
//   - In the fault packages, every package-level error variable must be in
//     the declared registry below: an ad-hoc sentinel is a taxonomy fork at
//     the production side.
//
// Functions that never touch the taxonomy (pure validation paths like the
// CPU engine's geometry checks) stay out of scope: their errors are
// contracts with the caller, not faults.
type WrapCheck struct {
	// Packages under the construction discipline (rules 2 and 3).
	Packages map[string]bool
	// Sentinels are the declared taxonomy errors, keyed "pkgpath.Name".
	Sentinels map[string]bool
	// FaultTypes are the declared rich fault types, keyed "pkgpath.Name".
	FaultTypes map[string]bool
	// Sinks map FuncKeys to the index of the error argument that enters the
	// fault plumbing.
	Sinks map[string]int
	// Module scopes the errors.Is/As rule: targets outside this module
	// (standard library, third-party) are exempt. Defaults to the loaded
	// module's path.
	Module string
}

// NewWrapCheck returns the analyzer with the production taxonomy.
func NewWrapCheck() *WrapCheck {
	return &WrapCheck{
		Packages: map[string]bool{
			"repro/internal/gkgpu":  true,
			"repro/internal/mapper": true,
			"repro/internal/cuda":   true,
		},
		Sentinels: map[string]bool{
			"repro/internal/gkgpu.ErrLaunch":          true,
			"repro/internal/gkgpu.ErrAlloc":           true,
			"repro/internal/gkgpu.ErrTransfer":        true,
			"repro/internal/gkgpu.ErrDeviceLost":      true,
			"repro/internal/gkgpu.ErrStreamAborted":   true,
			"repro/internal/cuda.ErrInjectedLaunch":   true,
			"repro/internal/cuda.ErrInjectedAlloc":    true,
			"repro/internal/cuda.ErrInjectedTransfer": true,
			"repro/internal/cuda.ErrDeviceLost":       true,
			"repro/internal/mapper.ErrIndexMagic":     true,
			"repro/internal/mapper.ErrIndexVersion":   true,
			"repro/internal/mapper.ErrIndexTruncated": true,
			"repro/internal/mapper.ErrIndexChecksum":  true,
			"repro/internal/mapper.ErrIndexGeometry":  true,
			"repro/internal/mapper.ErrIndexMismatch":  true,
			"repro/internal/mapper.ErrIndexByteOrder": true,
		},
		FaultTypes: map[string]bool{
			"repro/internal/gkgpu.DeviceFault": true,
		},
		Sinks: map[string]int{
			"repro/internal/gkgpu.Engine.setStreamErr": 0,
		},
	}
}

// Name implements Analyzer.
func (a *WrapCheck) Name() string { return "wrapcheck" }

// Error provenance classes, ordered so the join is max().
type provClass int

const (
	provUnknown  provClass = iota // callee results, parameters: someone else's contract
	provTaxonomy                  // sentinel, %w-wrap of one, or declared fault type
	provOpaque                    // freshly minted outside the taxonomy
)

type provFact map[types.Object]provClass

func (f provFact) clone() provFact {
	out := make(provFact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

func provJoin(a, b provFact) provFact {
	out := a.clone()
	for k, v := range b {
		if cur, ok := out[k]; !ok || v > cur {
			out[k] = v
		}
	}
	return out
}

func provEqual(a, b provFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if w, ok := b[k]; !ok || v != w {
			return false
		}
	}
	return true
}

// Check implements Analyzer.
func (a *WrapCheck) Check(c *Context) {
	module := a.Module
	if module == "" {
		module = c.Module
	}
	info := c.Pkg.Info
	for _, f := range c.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				a.checkIsAs(c, info, module, call)
			}
			return true
		})
	}
	if !a.Packages[c.Pkg.Path] {
		return
	}
	a.checkDeclaredSentinels(c)
	for _, f := range c.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !a.faultPath(info, fd) {
				continue
			}
			for _, fc := range funcContexts(fd) {
				a.checkContext(c, fc)
			}
		}
	}
}

// checkIsAs enforces the consumption side: errors.Is against declared
// sentinels, errors.As against declared fault types.
func (a *WrapCheck) checkIsAs(c *Context, info *types.Info, module string, call *ast.CallExpr) {
	fn, ok := callee(info, call).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "errors" || len(call.Args) != 2 {
		return
	}
	inModule := func(pkg *types.Package) bool {
		return pkg != nil && (pkg.Path() == module || strings.HasPrefix(pkg.Path(), module+"/"))
	}
	switch fn.Name() {
	case "Is":
		target := ast.Unparen(call.Args[1])
		var obj types.Object
		switch t := target.(type) {
		case *ast.Ident:
			obj = info.Uses[t]
		case *ast.SelectorExpr:
			obj = info.Uses[t.Sel]
		}
		v, ok := obj.(*types.Var)
		if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
			c.Reportf("wrapcheck", call.Args[1].Pos(), "errors.Is target is not a package-level sentinel; matching ad-hoc error values forks the fault taxonomy")
			return
		}
		if inModule(v.Pkg()) && !a.Sentinels[v.Pkg().Path()+"."+v.Name()] {
			c.Reportf("wrapcheck", call.Args[1].Pos(), "errors.Is target %s.%s is not a declared sentinel; add it to the wrapcheck registry or match a declared one", v.Pkg().Path(), v.Name())
		}
	case "As":
		t := info.TypeOf(call.Args[1])
		p, ok := t.(*types.Pointer)
		if !ok {
			return
		}
		elem := p.Elem()
		if pp, ok := elem.(*types.Pointer); ok {
			elem = pp.Elem()
		}
		named, ok := elem.(*types.Named)
		if !ok {
			return
		}
		pkg := named.Obj().Pkg()
		if inModule(pkg) && !a.FaultTypes[pkg.Path()+"."+named.Obj().Name()] {
			c.Reportf("wrapcheck", call.Args[1].Pos(), "errors.As target %s.%s is not a declared fault type; add it to the wrapcheck registry", pkg.Path(), named.Obj().Name())
		}
	}
}

// checkDeclaredSentinels enforces the production side of taxonomy closure:
// no ad-hoc package-level error variables in the fault packages.
func (a *WrapCheck) checkDeclaredSentinels(c *Context) {
	for _, f := range c.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj, ok := c.Pkg.Info.Defs[name].(*types.Var)
					if !ok || !isErrorValue(obj.Type()) {
						continue
					}
					if !a.Sentinels[c.Pkg.Path+"."+obj.Name()] {
						c.Reportf("wrapcheck", name.Pos(), "package-level error %s is not in the declared sentinel registry; register it in lint.NewWrapCheck or fold it into an existing sentinel", obj.Name())
					}
				}
			}
		}
	}
}

// isErrorValue reports whether t is the error interface type.
func isErrorValue(t types.Type) bool {
	if t == nil {
		return false
	}
	iface, ok := t.Underlying().(*types.Interface)
	return ok && iface.NumMethods() == 1 && iface.Method(0).Name() == "Error"
}

// faultPath reports whether the function speaks the taxonomy: it references
// a declared sentinel identifier or calls a declared sink anywhere in its
// body (nested literals included).
func (a *WrapCheck) faultPath(info *types.Info, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if v, ok := info.Uses[n].(*types.Var); ok && v.Pkg() != nil && a.Sentinels[v.Pkg().Path()+"."+v.Name()] {
				found = true
			}
		case *ast.CallExpr:
			if fn, ok := callee(info, n).(*types.Func); ok {
				if _, isSink := a.Sinks[FuncKey(fn)]; isSink {
					found = true
				}
			}
		}
		return true
	})
	return found
}

func (a *WrapCheck) checkContext(c *Context, fc funcCtx) {
	info := c.Pkg.Info
	g := BuildCFG(info, fc.Body)
	transfer := func(bl *Block, in provFact, report bool) provFact {
		out := in.clone()
		for _, n := range bl.Nodes {
			a.transferNode(c, info, n, out, report)
		}
		return out
	}
	in := forwardDataflow(g, provFact{},
		func(bl *Block, f provFact) provFact { return transfer(bl, f, false) },
		provJoin, provEqual)
	for _, bl := range g.ReversePostorder() {
		transfer(bl, in[bl], true)
	}
}

func (a *WrapCheck) transferNode(c *Context, info *types.Info, n ast.Node, out provFact, report bool) {
	prodCheck := func(e ast.Expr, what string) {
		if !report || e == nil || !isErrorValue(info.TypeOf(e)) {
			return
		}
		if a.classify(info, e, out) == provOpaque {
			c.Reportf("wrapcheck", e.Pos(), "%s is a fresh error outside the fault taxonomy; use a declared sentinel, wrap one with %%w, or build a declared fault type", what)
		}
	}
	switch n.(type) {
	case *ast.RangeStmt, *ast.SelectStmt:
		return // structural markers; their bodies have their own blocks
	}
	shallowWalk(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.AssignStmt:
			a.genAssign(info, m, out)
			for _, lhs := range m.Lhs {
				if sel, ok := lhs.(*ast.SelectorExpr); ok && (sel.Sel.Name == "err" || sel.Sel.Name == "Err") {
					if len(m.Rhs) == len(m.Lhs) {
						for i, l := range m.Lhs {
							if l == lhs {
								prodCheck(m.Rhs[i], "error stored in a fault struct field")
							}
						}
					}
				}
			}
		case *ast.DeclStmt:
			if gd, ok := m.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) == len(vs.Names) {
						for i, name := range vs.Names {
							if obj := info.Defs[name]; obj != nil && isErrorValue(obj.Type()) {
								out[obj] = a.classify(info, vs.Values[i], out)
							}
						}
					}
				}
			}
		case *ast.ReturnStmt:
			for _, r := range m.Results {
				prodCheck(r, "returned fault-path error")
			}
		case *ast.CallExpr:
			if fn, ok := callee(info, m).(*types.Func); ok {
				if idx, isSink := a.Sinks[FuncKey(fn)]; isSink && idx < len(m.Args) {
					prodCheck(m.Args[idx], "error passed to the stream fault sink")
				}
			}
		}
		return true
	})
}

// genAssign updates local error provenance from one assignment.
func (a *WrapCheck) genAssign(info *types.Info, as *ast.AssignStmt, out provFact) {
	if len(as.Lhs) != len(as.Rhs) {
		// Multi-value unpacking: every error result is a callee's contract.
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := defOrUse(info, id); obj != nil && isErrorValue(obj.Type()) {
					out[obj] = provUnknown
				}
			}
		}
		return
	}
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		obj := defOrUse(info, id)
		if obj == nil || !isErrorValue(obj.Type()) {
			continue
		}
		out[obj] = a.classify(info, as.Rhs[i], out)
	}
}

func defOrUse(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// classify assigns a provenance class to one error expression under the
// current facts.
func (a *WrapCheck) classify(info *types.Info, e ast.Expr, facts provFact) provClass {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		if e.Name == "nil" {
			return provUnknown
		}
		obj := defOrUse(info, e)
		if obj == nil {
			return provUnknown
		}
		if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && a.Sentinels[v.Pkg().Path()+"."+v.Name()] {
			return provTaxonomy
		}
		if cls, ok := facts[obj]; ok {
			return cls
		}
		return provUnknown
	case *ast.SelectorExpr:
		if obj, ok := info.Uses[e.Sel].(*types.Var); ok && obj.Pkg() != nil && a.Sentinels[obj.Pkg().Path()+"."+obj.Name()] {
			return provTaxonomy
		}
		return provUnknown
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return a.classify(info, e.X, facts)
		}
		return provUnknown
	case *ast.CompositeLit:
		if a.isFaultType(info.TypeOf(e)) {
			return provTaxonomy
		}
		return provUnknown
	case *ast.CallExpr:
		return a.classifyCall(info, e, facts)
	}
	return provUnknown
}

func (a *WrapCheck) isFaultType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return a.FaultTypes[named.Obj().Pkg().Path()+"."+named.Obj().Name()]
}

func (a *WrapCheck) classifyCall(info *types.Info, call *ast.CallExpr, facts provFact) provClass {
	fn, ok := callee(info, call).(*types.Func)
	if !ok {
		return provUnknown
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "errors" && fn.Name() == "New" {
		return provOpaque
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && fn.Name() == "Errorf" {
		return a.classifyErrorf(info, call, facts)
	}
	// A call whose result is a declared fault type carries the taxonomy.
	if sig, ok := fn.Type().(*types.Signature); ok {
		for i := 0; i < sig.Results().Len(); i++ {
			if a.isFaultType(sig.Results().At(i).Type()) {
				return provTaxonomy
			}
		}
	}
	return provUnknown
}

// classifyErrorf judges a fmt.Errorf: no %w verb mints an opaque error; with
// %w the class is the best class among the wrapped operands (wrapping a
// sentinel is taxonomy, wrapping a callee's error is passthrough, wrapping a
// known-opaque local launders nothing).
func (a *WrapCheck) classifyErrorf(info *types.Info, call *ast.CallExpr, facts provFact) provClass {
	if len(call.Args) == 0 {
		return provOpaque
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return provUnknown // dynamic format string: cannot judge
	}
	if countWrapVerbs(constant.StringVal(tv.Value)) == 0 {
		return provOpaque
	}
	cls := provOpaque
	sawError := false
	for _, arg := range call.Args[1:] {
		if !isErrorValue(info.TypeOf(arg)) && !a.isFaultType(info.TypeOf(arg)) {
			continue
		}
		sawError = true
		switch a.classify(info, arg, facts) {
		case provTaxonomy:
			return provTaxonomy
		case provUnknown:
			cls = provUnknown // passthrough of someone else's error
		}
	}
	if !sawError {
		return provOpaque // %w with no error operand is a vet error anyway
	}
	return cls
}

// countWrapVerbs counts %w verbs in a format string, skipping %%.
func countWrapVerbs(format string) int {
	n := 0
	for i := 0; i < len(format)-1; i++ {
		if format[i] != '%' {
			continue
		}
		if format[i+1] == '%' {
			i++
			continue
		}
		// Scan past flags/width to the verb.
		j := i + 1
		for j < len(format) && strings.ContainsRune("+-# 0123456789.[]*", rune(format[j])) {
			j++
		}
		if j < len(format) && format[j] == 'w' {
			n++
		}
		i = j - 1
	}
	return n
}
