package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package of the module.
type Package struct {
	Path  string // import path
	Dir   string
	Files []*ast.File // non-test files, in filename order
	Types *types.Package
	Info  *types.Info
}

// Module is a loaded module: every non-test package under its root,
// type-checked against one shared FileSet.
type Module struct {
	Path     string // module path from go.mod
	Root     string
	Fset     *token.FileSet
	Packages []*Package
}

// LoadModule parses and type-checks every package of the module rooted at
// root (the directory holding go.mod). Test files and testdata directories
// are skipped: the analyzers guard production code, and test packages lean
// on idioms (discarded setup errors, bare sends in fixtures) the analyzers
// would drown in. Type information for imports is built by the standard
// library's source importer, so no external loader dependency is needed.
//
// Every package is parsed first, then type-checked exactly once in
// dependency order: a moduleImporter serves already-checked module packages
// from its cache, so importing a module-internal package never re-runs the
// source importer over it (which previously re-type-checked each package
// once per importer).
func LoadModule(root string) (*Module, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	m := &Module{Path: modPath, Root: root, Fset: token.NewFileSet()}

	// Parse pass: syntax plus each package's module-internal imports, which
	// decide the checking order.
	type parsedPkg struct {
		dir, path string
		files     []*ast.File
		internal  []string
	}
	var ps []*parsedPkg
	byPath := map[string]*parsedPkg{}
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		files, err := parseDir(m.Fset, dir)
		if err != nil {
			return nil, err
		}
		if files == nil {
			continue
		}
		p := &parsedPkg{dir: dir, path: path, files: files}
		for _, f := range files {
			for _, spec := range f.Imports {
				ip := strings.Trim(spec.Path.Value, `"`)
				if ip == modPath || strings.HasPrefix(ip, modPath+"/") {
					p.internal = append(p.internal, ip)
				}
			}
		}
		ps = append(ps, p)
		byPath[path] = p
	}

	// Check pass: depth-first over the internal import graph, caching each
	// checked package so it is type-checked once however many packages
	// import it.
	mi := &moduleImporter{
		std:  importer.ForCompiler(m.Fset, "source", nil),
		pkgs: map[string]*types.Package{},
	}
	const (
		unvisited = iota
		visiting
		done
	)
	state := map[string]int{}
	var visit func(p *parsedPkg) error
	visit = func(p *parsedPkg) error {
		switch state[p.path] {
		case visiting:
			return fmt.Errorf("lint: import cycle through %s", p.path)
		case done:
			return nil
		}
		state[p.path] = visiting
		for _, ip := range p.internal {
			if dep, ok := byPath[ip]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		pkg, err := checkPackage(m.Fset, mi, p.dir, p.path, p.files)
		if err != nil {
			return err
		}
		mi.pkgs[p.path] = pkg.Types
		m.Packages = append(m.Packages, pkg)
		state[p.path] = done
		return nil
	}
	for _, p := range ps {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// moduleImporter resolves module-internal imports from the cache of packages
// this load already type-checked, and delegates everything else (standard
// library) to the shared source importer.
type moduleImporter struct {
	std  types.Importer
	pkgs map[string]*types.Package
}

// Import implements types.Importer.
func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := mi.pkgs[path]; ok {
		return p, nil
	}
	return mi.std.Import(path)
}

// LoadDir loads a single directory as one package with the given synthetic
// import path — the entry point for the analyzer testdata packages, which
// live under testdata/ precisely so LoadModule and the go tool ignore them.
func LoadDir(dir, path string) (*Module, error) {
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	pkg, err := loadPackage(fset, imp, dir, path)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	// The synthetic module path is the package path's first segment, so
	// same-package calls count as module-internal for the noalloc analyzer.
	modPath := path
	if i := strings.IndexByte(path, '/'); i >= 0 {
		modPath = path[:i]
	}
	return &Module{Path: modPath, Root: dir, Fset: fset, Packages: []*Package{pkg}}, nil
}

func loadPackage(fset *token.FileSet, imp types.Importer, dir, path string) (*Package, error) {
	files, err := parseDir(fset, dir)
	if err != nil || files == nil {
		return nil, err
	}
	return checkPackage(fset, imp, dir, path, files)
}

// parseDir parses a directory's non-test Go files in filename order, or
// returns nil files if there are none.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", filepath.Join(dir, name), err)
		}
		files = append(files, f)
	}
	return files, nil
}

// checkPackage type-checks already-parsed files as one package.
func checkPackage(fset *token.FileSet, imp types.Importer, dir, path string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}, nil
}

// packageDirs returns every directory under root holding non-test Go files,
// skipping testdata, vendor, and hidden directories.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range entries {
			n := e.Name()
			if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
				dirs = append(dirs, p)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: %w (gklint must run from inside the module)", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}
