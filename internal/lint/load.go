package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package of the module.
type Package struct {
	Path  string // import path
	Dir   string
	Files []*ast.File // non-test files, in filename order
	Types *types.Package
	Info  *types.Info
}

// Module is a loaded module: every non-test package under its root,
// type-checked against one shared FileSet.
type Module struct {
	Path     string // module path from go.mod
	Root     string
	Fset     *token.FileSet
	Packages []*Package
}

// LoadModule parses and type-checks every package of the module rooted at
// root (the directory holding go.mod). Test files and testdata directories
// are skipped: the analyzers guard production code, and test packages lean
// on idioms (discarded setup errors, bare sends in fixtures) the analyzers
// would drown in. Type information for imports is built by the standard
// library's source importer, so no external loader dependency is needed.
func LoadModule(root string) (*Module, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	m := &Module{Path: modPath, Root: root, Fset: token.NewFileSet()}
	imp := importer.ForCompiler(m.Fset, "source", nil)
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := loadPackage(m.Fset, imp, dir, path)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			m.Packages = append(m.Packages, pkg)
		}
	}
	return m, nil
}

// LoadDir loads a single directory as one package with the given synthetic
// import path — the entry point for the analyzer testdata packages, which
// live under testdata/ precisely so LoadModule and the go tool ignore them.
func LoadDir(dir, path string) (*Module, error) {
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	pkg, err := loadPackage(fset, imp, dir, path)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	// The synthetic module path is the package path's first segment, so
	// same-package calls count as module-internal for the noalloc analyzer.
	modPath := path
	if i := strings.IndexByte(path, '/'); i >= 0 {
		modPath = path[:i]
	}
	return &Module{Path: modPath, Root: dir, Fset: fset, Packages: []*Package{pkg}}, nil
}

func loadPackage(fset *token.FileSet, imp types.Importer, dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", filepath.Join(dir, name), err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}, nil
}

// packageDirs returns every directory under root holding non-test Go files,
// skipping testdata, vendor, and hidden directories.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range entries {
			n := e.Name()
			if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
				dirs = append(dirs, p)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: %w (gklint must run from inside the module)", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}
