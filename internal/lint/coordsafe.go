package lint

import (
	"go/ast"
	"go/types"
)

// CoordSafe enforces PR 5's coordinate discipline. The mapper deals in two
// position domains — global offsets into the concatenated reference sequence
// and contig-relative positions reported to callers — and every translation
// between them must go through the whitelisted mapper.Reference accessors
// (ContigOf, Locate, WindowContig, ...). Three rules:
//
//  1. offset internals: reading Contig.Off or calling Contig.End outside the
//     Reference/Contig methods is raw global-coordinate arithmetic and must
//     justify itself with //gk:allow (the index build legitimately walks
//     global coordinates; almost nothing else should).
//  2. narrowing casts: positions are 64-bit end to end since the
//     genome-scale migration (PR 8) — the index, candidate, and filter
//     paths all carry int64 and no build-time length guard exists any
//     more. Converting a native-width int or int64 to int32/uint32 inside
//     a position-domain package silently truncates beyond 2^31-1 bases
//     and quietly reintroduces the bound the migration removed, so every
//     such cast must justify itself with //gk:allow.
//  3. mixed-domain arithmetic: an expression combining a contig-relative
//     Mapping/PairMapping Pos with a global Contig.Off/End (or a raw int32
//     index position) adds apples to oranges; translate through Reference
//     first.
type CoordSafe struct {
	// AllowRecvs are receiver type names whose methods are the sanctioned
	// home of global-coordinate arithmetic.
	AllowRecvs map[string]bool
	// AllowFuncs are package-level constructor names with the same licence.
	AllowFuncs map[string]bool
	// NarrowPkgs are the package paths where rule 2 applies: the packages
	// that carry reference positions (the mapper, and the filter engine's
	// candidate path).
	NarrowPkgs map[string]bool
}

// NewCoordSafe returns the analyzer with the production whitelist.
func NewCoordSafe() *CoordSafe {
	return &CoordSafe{
		AllowRecvs: map[string]bool{"Reference": true, "Contig": true},
		AllowFuncs: map[string]bool{"NewReference": true, "SingleContig": true},
		NarrowPkgs: map[string]bool{
			"repro/internal/mapper": true,
			"repro/internal/gkgpu":  true,
		},
	}
}

// Name implements Analyzer.
func (a *CoordSafe) Name() string { return "coordsafe" }

// Check implements Analyzer.
func (a *CoordSafe) Check(c *Context) {
	for _, f := range c.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || a.whitelisted(fd) {
				continue
			}
			a.checkFunc(c, fd)
		}
	}
}

func (a *CoordSafe) whitelisted(fd *ast.FuncDecl) bool {
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		if a.AllowRecvs[recvTypeName(fd.Recv.List[0].Type)] {
			return true
		}
	}
	return fd.Recv == nil && a.AllowFuncs[fd.Name.Name]
}

func recvTypeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return recvTypeName(e.X)
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(e.X)
	}
	return ""
}

func (a *CoordSafe) checkFunc(c *Context, fd *ast.FuncDecl) {
	info := c.Pkg.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if isContigOffsetRead(info, n) {
				c.Reportf("coordsafe", n.Sel.Pos(), "direct read of Contig.%s outside the Reference accessors: global offsets belong to mapper.Reference (use ContigOf/Locate/WindowContig or justify with //gk:allow)", n.Sel.Name)
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "End" {
				if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal && namedTypeName(s.Recv()) == "Contig" {
					c.Reportf("coordsafe", sel.Sel.Pos(), "Contig.End() outside the Reference accessors yields a global offset; translate through Reference or justify with //gk:allow")
				}
			}
			a.checkNarrowing(c, n)
		case *ast.BinaryExpr:
			a.checkMixing(c, n)
		}
		return true
	})
}

// isContigOffsetRead reports a field read of Contig.Off (not inside the
// whitelist, which the caller already excluded).
func isContigOffsetRead(info *types.Info, sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != "Off" {
		return false
	}
	s, ok := info.Selections[sel]
	return ok && s.Kind() == types.FieldVal && namedTypeName(s.Recv()) == "Contig"
}

// checkNarrowing flags int -> int32/uint32 conversions inside the position
// domain's home package.
func (a *CoordSafe) checkNarrowing(c *Context, call *ast.CallExpr) {
	if !a.NarrowPkgs[c.Pkg.Path] || len(call.Args) != 1 {
		return
	}
	info := c.Pkg.Info
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	dst, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || (dst.Kind() != types.Int32 && dst.Kind() != types.Uint32) {
		return
	}
	arg := call.Args[0]
	if isUntypedConst(info, arg) {
		return
	}
	src, ok := info.TypeOf(arg).Underlying().(*types.Basic)
	if !ok || (src.Kind() != types.Int && src.Kind() != types.Int64) {
		return
	}
	c.Reportf("coordsafe", call.Pos(), "narrowing cast %s(...) of a native-width value: positions are 64-bit end to end; a 32-bit cast reintroduces the 2^31-base bound the genome-scale migration removed — justify with //gk:allow", dst.Name())
}

// checkMixing flags binary arithmetic combining a contig-relative Pos with a
// global offset.
func (a *CoordSafe) checkMixing(c *Context, b *ast.BinaryExpr) {
	switch b.Op.String() {
	case "+", "-", "<", "<=", ">", ">=", "==", "!=":
	default:
		return
	}
	info := c.Pkg.Info
	l, r := exprDomain(info, b.X), exprDomain(info, b.Y)
	if (l == domainRelative && r == domainGlobal) || (l == domainGlobal && r == domainRelative) {
		c.Reportf("coordsafe", b.OpPos, "arithmetic mixes a contig-relative Pos with a global offset; translate through mapper.Reference first")
	}
}

type coordDomain int

const (
	domainNone coordDomain = iota
	domainRelative
	domainGlobal
)

// exprDomain classifies an expression subtree: contig-relative if it reads a
// Mapping/PairMapping Pos field, global if it reads Contig.Off or calls
// Contig.End.
func exprDomain(info *types.Info, e ast.Expr) coordDomain {
	d := domainNone
	ast.Inspect(e, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := info.Selections[sel]
		if !ok {
			return true
		}
		recv := namedTypeName(s.Recv())
		switch {
		case s.Kind() == types.FieldVal && sel.Sel.Name == "Pos" && (recv == "Mapping" || recv == "PairMapping"):
			d = domainRelative
			return false
		case recv == "Contig" && (sel.Sel.Name == "Off" || sel.Sel.Name == "End"):
			d = domainGlobal
			return false
		}
		return true
	})
	return d
}
