package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// DeferHot upgrades the noalloc guarantee from call-whitelist to
// flow-aware. The noalloc analyzer bans allocation in //gk:noalloc
// functions outright, but it judges statements, not paths: a defer or a
// closure that only executes inside a loop costs one allocation per
// iteration — the difference between "one defer per call" (tolerable in a
// cold prologue) and "a defer per inner-loop pass" (a new hot-path
// allocation the AllocsPerRun guards will catch only at the call sites
// they pin).
//
// The analyzer computes the set of functions reachable from the annotated
// roots through module-internal static calls, builds each reachable
// function's CFG, and flags defer statements and escaping closure
// allocations in blocks that lie on a cycle — whatever syntax (for, range,
// goto) spells the loop. Closures the compiler provably inlines (bound to
// a local, called directly, never escaping) are exempt, matching noalloc's
// own exemption. Dynamic calls (interface methods, function values) are
// not traversed; noalloc already flags those edges inside annotated
// functions.
type DeferHot struct {
	built     bool
	reachable map[string]bool // FuncKeys reachable from //gk:noalloc roots
}

// NewDeferHot returns the analyzer; the reachable set is computed from the
// module on first use.
func NewDeferHot() *DeferHot { return &DeferHot{} }

// Name implements Analyzer.
func (a *DeferHot) Name() string { return "deferhot" }

// Check implements Analyzer.
func (a *DeferHot) Check(c *Context) {
	a.buildReachable(c)
	info := c.Pkg.Info
	for _, f := range c.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := info.Defs[fd.Name].(*types.Func)
			if !ok || !a.reachable[FuncKey(obj)] {
				continue
			}
			a.checkFunc(c, fd)
		}
	}
}

// buildReachable walks the module call graph once: edges are static calls
// to module-internal functions, roots are the //gk:noalloc annotations.
func (a *DeferHot) buildReachable(c *Context) {
	if a.built {
		return
	}
	a.built = true
	a.reachable = map[string]bool{}

	// Adjacency over FuncKeys, built from every function declaration in the
	// module (literals inside a declaration attribute their calls to it).
	adj := map[string][]string{}
	for _, pkg := range c.All {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				from := FuncKey(obj)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					fn, ok := callee(pkg.Info, call).(*types.Func)
					if !ok || fn.Pkg() == nil {
						return true
					}
					path := fn.Pkg().Path()
					if path != c.Module && !isUnder(path, c.Module) {
						return true
					}
					adj[from] = append(adj[from], FuncKey(fn))
					return true
				})
			}
		}
	}

	var queue []string
	for key := range c.NoAlloc {
		queue = append(queue, key)
	}
	sort.Strings(queue)
	for len(queue) > 0 {
		key := queue[0]
		queue = queue[1:]
		if a.reachable[key] {
			continue
		}
		a.reachable[key] = true
		queue = append(queue, adj[key]...)
	}
}

func isUnder(path, module string) bool {
	return len(path) > len(module) && path[:len(module)] == module && path[len(module)] == '/'
}

func (a *DeferHot) checkFunc(c *Context, fd *ast.FuncDecl) {
	info := c.Pkg.Info
	inlined := inlinedClosures(info, fd)
	for _, fc := range funcContexts(fd) {
		g := BuildCFG(info, fc.Body)
		cyclic := g.CyclicBlocks()
		for _, bl := range g.ReversePostorder() {
			if !cyclic[bl] {
				continue
			}
			for _, n := range bl.Nodes {
				switch n.(type) {
				case *ast.RangeStmt, *ast.SelectStmt:
					continue // structural markers; bodies have their own blocks
				}
				if ds, ok := n.(*ast.DeferStmt); ok {
					c.Reportf("deferhot", ds.Pos(), "defer inside a loop of a //gk:noalloc-reachable function allocates per iteration and only runs at return; restructure with an explicit call")
					continue
				}
				// Visit literal nodes without descending into them (a
				// literal's own loops are separate contexts); shallowWalk
				// would skip the literal node itself.
				ast.Inspect(n, func(m ast.Node) bool {
					if m == nil {
						return false
					}
					lit, ok := m.(*ast.FuncLit)
					if !ok {
						return true
					}
					if !inlined.lits[lit] {
						c.Reportf("deferhot", lit.Pos(), "closure allocated inside a loop of a //gk:noalloc-reachable function; hoist it out of the loop or inline the logic")
					}
					return false
				})
			}
		}
	}
}
