package lint

// NoAllocRegistry is the canonical list of hot-path functions that carry a
// //gk:noalloc annotation — the single source of truth shared by the static
// analyzer and the runtime AllocsPerRun guards. gklint fails if the
// annotations in the tree and this list ever differ (in either direction),
// and the alloc tests (internal/filter/alloc_test.go,
// internal/mapper/index_test.go) assert that the functions they exercise are
// registered here, so the static and runtime checks cannot drift apart.
//
// Keys are FuncKey form: pkgpath.Func, or pkgpath.Recv.Method with the
// receiver's pointer stripped.
var NoAllocRegistry = []string{
	// The fused 64-bit kernel: one filtration end to end.
	"repro/internal/filter.Kernel.FilterEncoded",
	"repro/internal/filter.Kernel.FilterChecked",
	"repro/internal/filter.Kernel.maskPass",
	"repro/internal/filter.Kernel.maskPassPair",
	"repro/internal/filter.Kernel.windowEstimate",
	"repro/internal/filter.Kernel.countErrors",

	// Bit-vector primitives the kernel leans on.
	"repro/internal/bitvec.extractEven",
	"repro/internal/bitvec.CollapsePair",
	"repro/internal/bitvec.CountWindowsWord",
	"repro/internal/bitvec.CountWindowsLUT",
	"repro/internal/bitvec.CountRunsLUT",

	// The 2-bit codec's hot-path forms.
	"repro/internal/dna.Code",
	"repro/internal/dna.IsACGT",
	"repro/internal/dna.WordsFor",
	"repro/internal/dna.TryEncodeInto",

	// CSR seed index lookup and the contig-coordinate accessors every
	// candidate's boundary check goes through.
	"repro/internal/mapper.Index.Lookup",
	"repro/internal/mapper.Contig.End",
	"repro/internal/mapper.Reference.ContigOff",
	"repro/internal/mapper.Reference.ContigOf",
	"repro/internal/mapper.Reference.Locate",
	"repro/internal/mapper.Reference.WindowContig",

	// The CPU baseline's per-worker steady states: one claimed block of a
	// pair batch or an index-named candidate batch on a persistent kernel.
	"repro/internal/gkgpu.cpuFilterRange",
	"repro/internal/gkgpu.cpuCandidateRange",

	// The streaming pipeline's steady-state per-batch accounting: runStream
	// recycles batches through a pool, and these are the helpers that run
	// once per batch after warm-up.
	"repro/internal/gkgpu.tallyBatch",
	"repro/internal/gkgpu.maxFloat",

	// The cost-model arithmetic tallyBatch evaluates per batch, plus the
	// workload/device accessors it leans on.
	"repro/internal/cuda.Workload.Words",
	"repro/internal/cuda.Workload.Masks",
	"repro/internal/cuda.Workload.TransferBytes",
	"repro/internal/cuda.DeviceSpec.Cores",
	"repro/internal/cuda.DeviceSpec.SupportsPrefetch",
	"repro/internal/cuda.DeviceSpec.PCIeBandwidth",
	"repro/internal/cuda.CostModel.KernelSlotsPerPair",
	"repro/internal/cuda.CostModel.KernelSeconds",
	"repro/internal/cuda.CostModel.TransferSeconds",
	"repro/internal/cuda.CostModel.HostPrepSeconds",
	"repro/internal/cuda.CostModel.EncodePoolSpeedup",
	"repro/internal/cuda.CostModel.PipelinedFilterSeconds",
	"repro/internal/cuda.CostModel.Utilization",
	"repro/internal/cuda.CostModel.PairRate",

	// Hot-path entry-point counters (instrumentation must not re-introduce
	// allocation on the paths it observes).
	"repro/internal/metrics.Counter.Inc",
	"repro/internal/metrics.Counter.Add",
	"repro/internal/metrics.Counter.Load",
}

// NoAllocSet returns the registry as a set.
func NoAllocSet() map[string]bool {
	s := make(map[string]bool, len(NoAllocRegistry))
	for _, k := range NoAllocRegistry {
		s[k] = true
	}
	return s
}

// IsNoAlloc reports whether pkgpath-qualified function fn (FuncKey form
// without the package prefix, e.g. "Kernel.FilterEncoded") is registered as
// a noalloc hot path. The runtime AllocsPerRun guards call this so a guard
// cannot silently test a function the static analyzer stopped covering.
func IsNoAlloc(pkgPath, fn string) bool {
	return NoAllocSet()[pkgPath+"."+fn]
}
