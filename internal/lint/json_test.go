package lint

import (
	"bytes"
	"encoding/json"
	"go/token"
	"reflect"
	"strings"
	"testing"
)

// TestWriteJSONSchema pins the machine-readable schema: one JSON object per
// line with exactly the file/line/col/analyzer/message fields, in input
// order.
func TestWriteJSONSchema(t *testing.T) {
	diags := []Diagnostic{
		{Position: token.Position{Filename: "a.go", Line: 3, Column: 7}, Analyzer: "lockcheck", Message: `mutex "mu" leaked`},
		{Position: token.Position{Filename: "b.go", Line: 1, Column: 1}, Analyzer: "wrapcheck", Message: "opaque error"},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, diags); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(diags) {
		t.Fatalf("got %d JSON lines, want %d", len(lines), len(diags))
	}
	want := []map[string]any{
		{"file": "a.go", "line": float64(3), "col": float64(7), "analyzer": "lockcheck", "message": `mutex "mu" leaked`},
		{"file": "b.go", "line": float64(1), "col": float64(1), "analyzer": "wrapcheck", "message": "opaque error"},
	}
	for i, line := range lines {
		var got map[string]any
		if err := json.Unmarshal([]byte(line), &got); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, line)
		}
		if !reflect.DeepEqual(got, want[i]) {
			t.Errorf("line %d schema mismatch:\ngot  %v\nwant %v", i, got, want[i])
		}
	}
}

// TestWriteJSONEmpty: no findings means no output, not "null" or "[]".
func TestWriteJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if buf.Len() != 0 {
		t.Errorf("empty diagnostic list produced output: %q", buf.String())
	}
}
