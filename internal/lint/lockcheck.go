package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockCheck enforces the mutex discipline on the CFG:
//
//   - every Lock()/RLock() must be released on every normal path out of its
//     function context — by a deferred unlock or an explicit unlock on each
//     branch. A lock that survives to the exit on any path is the
//     branch-path leak that deadlocks the next caller.
//   - no acquisition of a mutex that may already be held at that point
//     (double-lock of the same receiver self-deadlocks; sync.Mutex is not
//     reentrant).
//   - in the streaming packages, no lock may be held across a blocking
//     operation — a channel send or receive, a select without a default, a
//     range over a channel, or a WaitGroup/Cond Wait. A blocked goroutine
//     holding a mutex stalls every other path through that lock; the
//     streaming pipeline's liveness arguments all assume lock regions are
//     straight-line. Deliberate whole-stream serialization (gkgpu's runMu)
//     must say so with //gk:allow lockcheck naming the design reason.
//
// The analysis is intra-procedural and per function context (a goroutine
// literal holds and releases its own locks); lock identity is the rendered
// receiver expression, so e.statsMu on two paths is one lock and a helper
// that unlocks on the caller's behalf is invisible — such helpers don't
// exist in this repo and should not be introduced.
type LockCheck struct {
	// StreamPackages are the packages where rule 3 (no lock across a
	// blocking operation) applies; rules 1 and 2 apply module-wide.
	StreamPackages map[string]bool
}

// NewLockCheck returns the analyzer with the production scope.
func NewLockCheck() *LockCheck {
	return &LockCheck{StreamPackages: map[string]bool{
		"repro/internal/gkgpu":  true,
		"repro/internal/mapper": true,
	}}
}

// Name implements Analyzer.
func (a *LockCheck) Name() string { return "lockcheck" }

// lockHeld is one held lock's state on some path.
type lockHeld struct {
	pos      token.Pos // acquisition site
	deferred bool      // a deferred unlock covers every path from here
	read     bool      // RLock (shared) rather than Lock (exclusive)
}

type lockFact map[string]lockHeld

func (f lockFact) clone() lockFact {
	out := make(lockFact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

func lockJoin(a, b lockFact) lockFact {
	out := a.clone()
	for k, v := range b {
		if cur, ok := out[k]; ok {
			// Held on both paths: deferred only if both paths deferred;
			// keep the earliest acquisition for reporting.
			if v.pos < cur.pos {
				cur.pos = v.pos
			}
			cur.deferred = cur.deferred && v.deferred
			cur.read = cur.read && v.read
			out[k] = cur
		} else {
			// Held on one path only: the leak/blocking questions still
			// apply, so may-union keeps it.
			out[k] = v
		}
	}
	return out
}

func lockEqual(a, b lockFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if w, ok := b[k]; !ok || v != w {
			return false
		}
	}
	return true
}

const (
	opLock = iota
	opRLock
	opUnlock
	opRUnlock
)

// lockOp classifies a call as a sync lock/unlock operation and returns the
// lock's identity (the rendered receiver expression).
func lockOp(info *types.Info, call *ast.CallExpr) (key string, op int, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false
	}
	switch sel.Sel.Name {
	case "Lock":
		op = opLock
	case "RLock":
		op = opRLock
	case "Unlock":
		op = opUnlock
	case "RUnlock":
		op = opRUnlock
	default:
		return "", 0, false
	}
	obj := callee(info, call)
	fn, isFn := obj.(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", 0, false
	}
	return types.ExprString(sel.X), op, true
}

// selectComms collects the communication statements of every select in the
// body: they execute only when their select commits an arm, so blocking is
// the select's question, not theirs.
func selectComms(body *ast.BlockStmt) map[ast.Node]bool {
	out := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if s, ok := n.(*ast.SelectStmt); ok {
			for _, cl := range s.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
					out[cc.Comm] = true
				}
			}
		}
		return true
	})
	return out
}

// isSyncWait reports whether the call is sync.WaitGroup.Wait or
// sync.Cond.Wait — blocking synchronization points.
func isSyncWait(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Wait" {
		return false
	}
	fn, ok := callee(info, call).(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync"
}

// lockReporter dedupes rule 3 so one acquisition gets one finding (at the
// Lock site, naming the first blocking operation), whatever the number of
// blocking points inside the critical section — one //gk:allow per design
// decision. nil disables reporting (the fixpoint passes).
type lockReporter struct {
	c        *Context
	reported map[token.Pos]bool
}

func (r *lockReporter) blocking(f lockFact, opPos token.Pos, what string) {
	if r == nil {
		return
	}
	keys := make([]string, 0, len(f))
	for k := range f {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		h := f[k]
		if r.reported[h.pos] {
			continue
		}
		r.reported[h.pos] = true
		r.c.Reportf("lockcheck", h.pos, "%s is held across a blocking %s at %s; release before blocking or document the serialization with //gk:allow lockcheck",
			k, what, r.c.Fset.Position(opPos))
	}
}

func (r *lockReporter) doubleLock(pos token.Pos, key string, firstPos token.Pos) {
	if r == nil {
		return
	}
	r.c.Reportf("lockcheck", pos, "%s may already be held here (acquired at %s); sync.Mutex is not reentrant",
		key, r.c.Fset.Position(firstPos))
}

// Check implements Analyzer.
func (a *LockCheck) Check(c *Context) {
	stream := a.StreamPackages[c.Pkg.Path]
	for _, f := range c.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			for _, fc := range funcContexts(fd) {
				a.checkContext(c, stream, fc)
			}
		}
	}
}

func (a *LockCheck) checkContext(c *Context, stream bool, fc funcCtx) {
	info := c.Pkg.Info
	g := BuildCFG(info, fc.Body)
	comms := selectComms(fc.Body)
	transfer := func(bl *Block, in lockFact, rep *lockReporter) lockFact {
		out := in.clone()
		for _, n := range bl.Nodes {
			a.transferNode(c, info, stream, n, comms, out, rep)
		}
		return out
	}
	in := forwardDataflow(g, lockFact{},
		func(bl *Block, f lockFact) lockFact { return transfer(bl, f, nil) },
		lockJoin, lockEqual)

	// Reporting pass: replay each reachable block once with the solved
	// in-facts, so rule 2 and rule 3 fire exactly once per site.
	rep := &lockReporter{c: c, reported: map[token.Pos]bool{}}
	for _, bl := range g.ReversePostorder() {
		transfer(bl, in[bl], rep)
	}

	// Rule 1: anything still held at the synthetic exit without a deferred
	// unlock leaked on some path.
	exit, ok := in[g.Exit]
	if !ok {
		return // no normal path out (infinite loop or unconditional panic)
	}
	keys := make([]string, 0, len(exit))
	for k := range exit {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		h := exit[k]
		if h.deferred {
			continue
		}
		c.Reportf("lockcheck", h.pos, "%s acquired here is not released on every path out of the function; unlock on each branch or defer the unlock", k)
	}
}

func (a *LockCheck) transferNode(c *Context, info *types.Info, stream bool, n ast.Node, comms map[ast.Node]bool, out lockFact, rep *lockReporter) {
	if comms[n] {
		// A select communication clause blocks (or not) as part of its
		// select; the SelectStmt marker already judged that.
		return
	}
	switch n := n.(type) {
	case *ast.DeferStmt:
		// A deferred unlock covers every path out from here on.
		if key, op, ok := lockOp(info, n.Call); ok && (op == opUnlock || op == opRUnlock) {
			if h, held := out[key]; held {
				h.deferred = true
				out[key] = h
			}
		}
		return
	case *ast.RangeStmt:
		if stream && isChanType(info.TypeOf(n.X)) {
			rep.blocking(out, n.Pos(), "range over a channel")
		}
		return
	case *ast.SelectStmt:
		if stream && !selectHasDefault(n) {
			rep.blocking(out, n.Pos(), "select")
		}
		return
	}
	shallowWalk(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.CallExpr:
			if key, op, ok := lockOp(info, m); ok {
				switch op {
				case opLock:
					if h, held := out[key]; held && !h.read {
						rep.doubleLock(m.Pos(), key, h.pos)
					}
					out[key] = lockHeld{pos: m.Pos()}
				case opRLock:
					if _, held := out[key]; !held {
						out[key] = lockHeld{pos: m.Pos(), read: true}
					}
				case opUnlock, opRUnlock:
					delete(out, key)
				}
				return true
			}
			if stream && isSyncWait(info, m) {
				rep.blocking(out, m.Pos(), fmt.Sprintf("%s call", types.ExprString(m.Fun)))
			}
		case *ast.SendStmt:
			if stream {
				rep.blocking(out, m.Arrow, "channel send")
			}
		case *ast.UnaryExpr:
			if stream && m.Op == token.ARROW {
				rep.blocking(out, m.OpPos, "channel receive")
			}
		}
		return true
	})
}
