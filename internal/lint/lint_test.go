package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The golden harness: each testdata package encodes its expected
// diagnostics as want comments — `// want "substr"` expects a diagnostic on
// that line whose message contains the substring, several quoted substrings
// expect several diagnostics, and `// want+N` shifts the expectation N
// lines down (for diagnostics on comment-only lines, where the marker
// itself would collide with the construct under test). The test fails in
// both directions: a missing diagnostic and an unexpected one are both
// errors, so the testdata pins each analyzer rule exactly.

var (
	wantRe   = regexp.MustCompile(`// want([+-]\d+)?\s+(.+)$`)
	quotedRe = regexp.MustCompile(`"([^"]*)"`)
)

type wantKey struct {
	file string
	line int
}

func parseWants(t *testing.T, dir string) map[wantKey][]string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	wants := map[wantKey][]string{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("reading %s: %v", e.Name(), err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, "// want")
			if idx < 0 {
				continue
			}
			m := wantRe.FindStringSubmatch(line[idx:])
			if m == nil {
				t.Fatalf("%s:%d: malformed want comment: %s", e.Name(), i+1, line)
			}
			offset := 0
			if m[1] != "" {
				offset, _ = strconv.Atoi(m[1])
			}
			subs := quotedRe.FindAllStringSubmatch(m[2], -1)
			if len(subs) == 0 {
				t.Fatalf("%s:%d: want comment with no quoted substrings", e.Name(), i+1)
			}
			k := wantKey{file: e.Name(), line: i + 1 + offset}
			for _, s := range subs {
				wants[k] = append(wants[k], s[1])
			}
		}
	}
	return wants
}

func runGolden(t *testing.T, name string, cfg Config) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	m, err := LoadDir(dir, name)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	wants := parseWants(t, dir)
	for _, d := range Run(m, cfg) {
		k := wantKey{file: filepath.Base(d.Position.Filename), line: d.Position.Line}
		hit := -1
		for i, s := range wants[k] {
			if strings.Contains(d.Message, s) {
				hit = i
				break
			}
		}
		if hit < 0 {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		wants[k] = append(wants[k][:hit], wants[k][hit+1:]...)
	}
	for k, subs := range wants {
		for _, s := range subs {
			t.Errorf("%s:%d: expected a diagnostic containing %q, got none", k.file, k.line, s)
		}
	}
}

func TestNoAllocGolden(t *testing.T) {
	runGolden(t, "noalloc", Config{
		Analyzers:          []Analyzer{NewNoAlloc()},
		ReportUnusedAllows: true,
	})
}

func TestCoordSafeGolden(t *testing.T) {
	// The testdata package mirrors the mapper's types under its own path,
	// so rule 2 (narrowing casts) is re-scoped to it; the receiver and
	// constructor whitelists are name-based and carry over unchanged.
	a := NewCoordSafe()
	a.NarrowPkgs = map[string]bool{"coordsafe": true}
	runGolden(t, "coordsafe", Config{
		Analyzers:          []Analyzer{a},
		ReportUnusedAllows: true,
	})
}

func TestStreamSafeGolden(t *testing.T) {
	a := NewStreamSafe()
	a.Packages = map[string]bool{"streamsafe": true}
	runGolden(t, "streamsafe", Config{
		Analyzers:          []Analyzer{a},
		ReportUnusedAllows: true,
	})
}

func TestErrCheckGolden(t *testing.T) {
	runGolden(t, "errcheck", Config{
		Analyzers:          []Analyzer{NewErrCheck()},
		ReportUnusedAllows: true,
	})
}

func TestLockCheckGolden(t *testing.T) {
	a := NewLockCheck()
	a.StreamPackages = map[string]bool{"lockcheck": true}
	runGolden(t, "lockcheck", Config{
		Analyzers:          []Analyzer{a},
		ReportUnusedAllows: true,
	})
}

func TestChanLifeGolden(t *testing.T) {
	a := NewChanLife()
	a.Packages = map[string]bool{"chanlife": true}
	runGolden(t, "chanlife", Config{
		Analyzers:          []Analyzer{a},
		ReportUnusedAllows: true,
	})
}

// testWrapCheck returns a WrapCheck re-scoped to the testdata package, with
// ErrBoom/ErrLost, the Fault type, and engine.setErr as the taxonomy.
func testWrapCheck() *WrapCheck {
	return &WrapCheck{
		Packages:   map[string]bool{"wrapcheck": true},
		Sentinels:  map[string]bool{"wrapcheck.ErrBoom": true, "wrapcheck.ErrLost": true},
		FaultTypes: map[string]bool{"wrapcheck.Fault": true},
		Sinks:      map[string]int{"wrapcheck.engine.setErr": 0},
		Module:     "wrapcheck",
	}
}

func TestWrapCheckGolden(t *testing.T) {
	runGolden(t, "wrapcheck", Config{
		Analyzers:          []Analyzer{testWrapCheck()},
		ReportUnusedAllows: true,
	})
}

func TestDeferHotGolden(t *testing.T) {
	runGolden(t, "deferhot", Config{
		Analyzers:          []Analyzer{NewDeferHot()},
		ReportUnusedAllows: true,
	})
}

// TestAllowAuditGolden pins the suppression auditor's edge cases: an allow
// above a statement spanning several lines, two suppressions for different
// analyzers sharing one comment, and the malformed-allow diagnostics
// (unknown analyzer name, missing justification).
func TestAllowAuditGolden(t *testing.T) {
	runGolden(t, "allowaudit", Config{
		Analyzers:          []Analyzer{NewNoAlloc(), NewErrCheck()},
		ReportUnusedAllows: true,
	})
}

// TestNewAnalyzersNotVacuous re-runs each flow-sensitive analyzer over its
// golden package and requires a minimum number of findings — a seeded-bug
// guard against an analyzer going silently inert (wrong package scope,
// wrong registry key, a CFG that never reports).
func TestNewAnalyzersNotVacuous(t *testing.T) {
	lock := NewLockCheck()
	lock.StreamPackages = map[string]bool{"lockcheck": true}
	chanl := NewChanLife()
	chanl.Packages = map[string]bool{"chanlife": true}
	cases := []struct {
		name string
		a    Analyzer
		min  int
	}{
		{"lockcheck", lock, 7},
		{"chanlife", chanl, 6},
		{"wrapcheck", testWrapCheck(), 8},
		{"deferhot", NewDeferHot(), 3},
	}
	for _, tc := range cases {
		m, err := LoadDir(filepath.Join("testdata", "src", tc.name), tc.name)
		if err != nil {
			t.Fatalf("loading %s: %v", tc.name, err)
		}
		n := 0
		for _, d := range Run(m, Config{Analyzers: []Analyzer{tc.a}}) {
			if d.Analyzer == tc.name {
				n++
			}
		}
		if n < tc.min {
			t.Errorf("%s: %d finding(s) on its seeded golden package, want at least %d — the analyzer may be vacuously clean", tc.name, n, tc.min)
		}
	}
}

// TestRunOrdersDiagnostics pins the deterministic output contract: Run
// returns diagnostics sorted by (file, line, column, analyzer), whatever
// order the analyzers reported them in.
func TestRunOrdersDiagnostics(t *testing.T) {
	lock := NewLockCheck()
	lock.StreamPackages = map[string]bool{"lockcheck": true}
	m, err := LoadDir(filepath.Join("testdata", "src", "lockcheck"), "lockcheck")
	if err != nil {
		t.Fatalf("loading lockcheck testdata: %v", err)
	}
	// Two analyzers interleave their findings across the same file.
	diags := Run(m, Config{Analyzers: []Analyzer{NewErrCheck(), lock}})
	if len(diags) < 2 {
		t.Fatalf("expected several diagnostics to order, got %d", len(diags))
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		ka := []string{a.Position.Filename, strconv.Itoa(a.Position.Line), strconv.Itoa(a.Position.Column), a.Analyzer}
		kb := []string{b.Position.Filename, strconv.Itoa(b.Position.Line), strconv.Itoa(b.Position.Column), b.Analyzer}
		less := a.Position.Filename < b.Position.Filename ||
			(a.Position.Filename == b.Position.Filename && (a.Position.Line < b.Position.Line ||
				(a.Position.Line == b.Position.Line && (a.Position.Column < b.Position.Column ||
					(a.Position.Column == b.Position.Column && a.Analyzer <= b.Analyzer)))))
		if !less {
			t.Errorf("diagnostics out of order: %v before %v", ka, kb)
		}
	}
}

// TestRepoIsLintClean is the self-test: gklint over this repository, with
// the registry cross-check and stale-suppression reporting on, must find
// nothing. This is exactly what cmd/gklint runs in CI.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("source-importer module load is slow; skipped in -short")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("finding module root: %v", err)
	}
	m, err := LoadModule(root)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags := Run(m, Config{
		Analyzers:          DefaultAnalyzers(),
		CheckRegistry:      true,
		ReportUnusedAllows: true,
	})
	for _, d := range diags {
		t.Errorf("gklint finding: %s", d)
	}
}

// TestNoAllocRegistry pins the registry lookup helpers the runtime alloc
// guards depend on.
func TestNoAllocRegistry(t *testing.T) {
	if !IsNoAlloc("repro/internal/filter", "Kernel.FilterEncoded") {
		t.Error("Kernel.FilterEncoded missing from NoAllocRegistry")
	}
	if !IsNoAlloc("repro/internal/mapper", "Index.Lookup") {
		t.Error("Index.Lookup missing from NoAllocRegistry")
	}
	if IsNoAlloc("repro/internal/filter", "Kernel.NoSuchMethod") {
		t.Error("IsNoAlloc reports an unregistered function as registered")
	}
	if got, want := len(NoAllocSet()), len(NoAllocRegistry); got != want {
		t.Errorf("NoAllocRegistry has duplicate entries: set %d, list %d", got, want)
	}
}
