package mapper

import (
	"testing"

	"repro/internal/cuda"
	"repro/internal/gkgpu"
	"repro/internal/simdata"
)

// TestMapReadsWorkerWidthIdentity: the one-shot pipeline's worker pool is a
// schedule, not a decision input — MapReads must return byte-identical
// mappings and decision counters for any StreamWorkers setting, with and
// without a pre-alignment filter, traceback, and both-strand mapping.
func TestMapReadsWorkerWidthIdentity(t *testing.T) {
	g := testGenome(200_000)
	reads, err := simdata.SimulateReads(g, simdata.Illumina100, 120, 3)
	if err != nil {
		t.Fatal(err)
	}
	seqs := make([][]byte, len(reads))
	for i, r := range reads {
		seqs[i] = r.Seq
	}
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"plain", Config{ReadLen: 100, MaxE: 5}},
		{"traceback-bothstrands", Config{ReadLen: 100, MaxE: 5, Traceback: true, BothStrands: true}},
		{"cpu-filter", Config{ReadLen: 100, MaxE: 5}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run := func(workers int) ([]Mapping, Stats) {
				cfg := tc.cfg
				cfg.StreamWorkers = workers
				if tc.name == "cpu-filter" {
					eng, err := gkgpu.NewCPUEngine(100, 5, 12, gkgpu.Setup1(), cuda.DefaultCostModel())
					if err != nil {
						t.Fatal(err)
					}
					cfg.Filter = eng
				}
				m, err := New(g, cfg)
				if err != nil {
					t.Fatal(err)
				}
				mappings, st, err := m.MapReads(seqs, 5)
				if err != nil {
					t.Fatal(err)
				}
				return mappings, st
			}
			want, wantSt := run(1)
			for _, workers := range []int{2, 4, 0} { // 0 = GOMAXPROCS
				got, gotSt := run(workers)
				if len(got) != len(want) {
					t.Fatalf("workers=%d: %d mappings, serial %d", workers, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("workers=%d mapping %d: %+v != %+v", workers, i, got[i], want[i])
					}
				}
				if gotSt.CandidatePairs != wantSt.CandidatePairs ||
					gotSt.VerificationPairs != wantSt.VerificationPairs ||
					gotSt.RejectedPairs != wantSt.RejectedPairs ||
					gotSt.UndefinedPairs != wantSt.UndefinedPairs ||
					gotSt.Mappings != wantSt.Mappings ||
					gotSt.MappedReads != wantSt.MappedReads {
					t.Fatalf("workers=%d counters diverge:\n got %+v\nwant %+v", workers, gotSt, wantSt)
				}
			}
		})
	}
}

// TestMapReadsUsesCandidatePathOnCPUEngine: the CPU baseline now implements
// CandidateFilter, so the mapper should take the index-named path — decisions
// (and therefore mappings) must match the GPU engine's candidate path.
func TestMapReadsUsesCandidatePathOnCPUEngine(t *testing.T) {
	g := testGenome(150_000)
	reads, err := simdata.SimulateReads(g, simdata.Illumina100, 80, 4)
	if err != nil {
		t.Fatal(err)
	}
	seqs := make([][]byte, len(reads))
	for i, r := range reads {
		seqs[i] = r.Seq
	}

	cpuEng, err := gkgpu.NewCPUEngine(100, 5, 12, gkgpu.Setup1(), cuda.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	mCPU, err := New(g, Config{ReadLen: 100, MaxE: 5, Filter: cpuEng})
	if err != nil {
		t.Fatal(err)
	}
	if mCPU.candFilter == nil {
		t.Fatal("CPUEngine not recognized as a CandidateFilter")
	}
	gotCPU, stCPU, err := mCPU.MapReads(seqs, 5)
	if err != nil {
		t.Fatal(err)
	}

	gpuEng, err := gkgpu.NewEngine(gkgpu.Config{ReadLen: 100, MaxE: 5}, cuda.NewUniformContext(1, cuda.GTX1080Ti()))
	if err != nil {
		t.Fatal(err)
	}
	defer gpuEng.Close()
	mGPU, err := New(g, Config{ReadLen: 100, MaxE: 5, Filter: gpuEng})
	if err != nil {
		t.Fatal(err)
	}
	gotGPU, stGPU, err := mGPU.MapReads(seqs, 5)
	if err != nil {
		t.Fatal(err)
	}

	if len(gotCPU) != len(gotGPU) {
		t.Fatalf("CPU path %d mappings, GPU path %d", len(gotCPU), len(gotGPU))
	}
	for i := range gotGPU {
		if gotCPU[i] != gotGPU[i] {
			t.Fatalf("mapping %d: CPU %+v, GPU %+v", i, gotCPU[i], gotGPU[i])
		}
	}
	if stCPU.RejectedPairs != stGPU.RejectedPairs || stCPU.UndefinedPairs != stGPU.UndefinedPairs {
		t.Fatalf("filter counters diverge: CPU %+v, GPU %+v", stCPU, stGPU)
	}
}
