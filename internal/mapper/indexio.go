package mapper

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"os"
	"unsafe"
)

// On-disk index format ("GKIX", version 1): a fixed little-endian header,
// the index's three arrays as raw little-endian slabs, and a trailing CRC.
//
//	header (96 bytes):
//	  [0:4)   magic "GKIX"
//	  [4:8)   format version (uint32, = 1)
//	  [8:16)  byte-order marker 0x0102030405060708 — reads back as itself
//	          only when file and host agree on little-endian
//	  [16:24) k (seed length)
//	  [24:32) step (seed step)
//	  [32:40) shift (key -> bucket shift)
//	  [40:48) nBuckets (offsets array holds nBuckets+1 entries)
//	  [48:56) nEntries (keys/pos length)
//	  [56:64) distinct k-mer count
//	  [64:72) reference length (concatenated bases)
//	  [72:80) reference contig count
//	  [80:88) reference fingerprint (see refFingerprint)
//	  [88:96) reserved, zero
//	payload (8-byte aligned, raw little-endian slabs):
//	  offsets  (nBuckets+1) × uint64
//	  keys     nEntries × uint32, zero-padded to a multiple of 8 bytes
//	  pos      nEntries × int64
//	trailer (8 bytes):
//	  CRC-64/ECMA of the payload bytes
//
// The slab layout is what makes load mmap-style cheap: the whole payload is
// one aligned allocation filled by one io.ReadFull, and the three arrays
// are zero-copy reslices into it — no per-element decode, no second copy.
const (
	indexMagic       = "GKIX"
	indexVersion     = 1
	indexOrderMarker = 0x0102030405060708
	indexHeaderLen   = 96
)

// Named serialization failures, matched with errors.Is. Every corruption or
// misuse path fails loudly with one of these.
var (
	// ErrIndexMagic: the file does not start with the GKIX magic, or its
	// byte-order marker disagrees with little-endian.
	ErrIndexMagic = errors.New("mapper: not a GKIX index file")
	// ErrIndexVersion: a GKIX file from an unknown format version.
	ErrIndexVersion = errors.New("mapper: unsupported GKIX index version")
	// ErrIndexTruncated: the file ends before the declared arrays do.
	ErrIndexTruncated = errors.New("mapper: truncated GKIX index file")
	// ErrIndexChecksum: the payload bytes do not match the stored CRC.
	ErrIndexChecksum = errors.New("mapper: GKIX index checksum mismatch")
	// ErrIndexGeometry: the header declares an impossible index geometry
	// (k, step, or bucket/shift combination no build could produce).
	ErrIndexGeometry = errors.New("mapper: corrupt GKIX index geometry")
	// ErrIndexMismatch: a well-formed index that does not belong to the
	// reference (or configuration) it is being loaded against.
	ErrIndexMismatch = errors.New("mapper: GKIX index does not match")
	// ErrIndexByteOrder: this host is not little-endian; the zero-copy
	// slab layout only runs on little-endian hosts.
	ErrIndexByteOrder = errors.New("mapper: GKIX serialization requires a little-endian host")
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// hostIsLittleEndian reports the native byte order. The slab format is
// defined little-endian and both Serialize and LoadIndex move array memory
// without per-element swabbing, so a big-endian host must refuse rather
// than silently write or read swapped words.
func hostIsLittleEndian() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}

// refFingerprint is the identity check binding an index file to the
// reference it was built from: a CRC-64 over the contig table (names and
// lengths), the total length, and up to 64 sampled 256-byte windows spread
// evenly across the concatenated sequence. Sampling keeps the check
// milliseconds even on >2^31-base references (a full-sequence hash would
// cost a multi-second pass on every start, defeating the point of loading);
// it still catches wrong-reference, reordered-contig, and
// edited-in-sampled-window mistakes. The index arrays themselves are fully
// covered by the payload CRC.
func refFingerprint(r *Reference) uint64 {
	var meta []byte
	meta = binary.LittleEndian.AppendUint64(meta, uint64(r.Len()))
	meta = binary.LittleEndian.AppendUint64(meta, uint64(r.NumContigs()))
	for _, c := range r.Contigs() {
		meta = append(meta, c.Name...)
		meta = append(meta, 0)
		meta = binary.LittleEndian.AppendUint64(meta, uint64(c.Len))
	}
	sum := crc64.Checksum(meta, crcTable)
	seq := r.Seq()
	const windows, window = 64, 256
	if len(seq) <= windows*window {
		return crc64.Update(sum, crcTable, seq)
	}
	stride := (len(seq) - window) / (windows - 1)
	for w := 0; w < windows; w++ {
		off := w * stride
		sum = crc64.Update(sum, crcTable, seq[off:off+window])
	}
	return sum
}

// byteView reinterprets a slice of fixed-width integers as its raw bytes.
// Only valid on little-endian hosts (the only hosts Serialize/LoadIndex
// accept), where the in-memory image already is the file image.
func byteView[T uint64 | uint32 | int64](s []T, width int) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*width)
}

// keysPadBytes returns how many zero bytes pad the keys slab to an 8-byte
// boundary so the pos slab stays aligned.
func keysPadBytes(nEntries uint64) uint64 { return (nEntries % 2) * 4 }

// payloadBytes returns the payload slab size for a geometry.
func payloadBytes(nBuckets, nEntries uint64) uint64 {
	return (nBuckets+1)*8 + nEntries*4 + keysPadBytes(nEntries) + nEntries*8
}

// Serialize writes the index in the GKIX on-disk format. The arrays stream
// out as raw slabs (no per-element encode), so serialization runs at I/O
// speed; wrap w in a bufio.Writer when it is an unbuffered file.
func (x *Index) Serialize(w io.Writer) error {
	if !hostIsLittleEndian() {
		return ErrIndexByteOrder
	}
	nBuckets := uint64(len(x.offsets) - 1)
	nEntries := uint64(len(x.pos))

	var hdr [indexHeaderLen]byte
	copy(hdr[0:4], indexMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], indexVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], indexOrderMarker)
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(x.k))
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(x.step))
	binary.LittleEndian.PutUint64(hdr[32:40], uint64(x.shift))
	binary.LittleEndian.PutUint64(hdr[40:48], nBuckets)
	binary.LittleEndian.PutUint64(hdr[48:56], nEntries)
	binary.LittleEndian.PutUint64(hdr[56:64], uint64(x.distinct))
	binary.LittleEndian.PutUint64(hdr[64:72], uint64(x.ref.Len()))
	binary.LittleEndian.PutUint64(hdr[72:80], uint64(x.ref.NumContigs()))
	binary.LittleEndian.PutUint64(hdr[80:88], refFingerprint(x.ref))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("mapper: writing index header: %w", err)
	}

	var crc uint64
	var pad [8]byte
	for _, slab := range [][]byte{
		byteView(x.offsets, 8),
		byteView(x.keys, 4),
		pad[:keysPadBytes(nEntries)],
		byteView(x.pos, 8),
	} {
		if len(slab) == 0 {
			continue
		}
		crc = crc64.Update(crc, crcTable, slab)
		if _, err := w.Write(slab); err != nil {
			return fmt.Errorf("mapper: writing index arrays: %w", err)
		}
	}
	var trailer [8]byte
	binary.LittleEndian.PutUint64(trailer[:], crc)
	if _, err := w.Write(trailer[:]); err != nil {
		return fmt.Errorf("mapper: writing index checksum: %w", err)
	}
	return nil
}

// SerializeToFile writes the index to path via Serialize, fsync-free but
// atomic against partial writes being mistaken for an index (a failed write
// removes the file).
func (x *Index) SerializeToFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	err = x.Serialize(bw)
	if ferr := bw.Flush(); err == nil {
		err = ferr
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(path) //gk:allow errcheck: best-effort cleanup of a partial file
		return err
	}
	return nil
}

// LoadIndex reads a GKIX index serialized by Serialize and binds it to ref,
// which must be the reference the index was built from. The load is one
// header read plus a single ReadFull into one aligned allocation; the
// offsets/keys/pos arrays are zero-copy reslices of that buffer. Corruption
// and mismatch fail loudly: ErrIndexMagic, ErrIndexVersion,
// ErrIndexTruncated, ErrIndexChecksum, ErrIndexGeometry, ErrIndexMismatch.
func LoadIndex(r io.Reader, ref *Reference) (*Index, error) {
	if !hostIsLittleEndian() {
		return nil, ErrIndexByteOrder
	}
	var hdr [indexHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrIndexTruncated, err)
	}
	if string(hdr[0:4]) != indexMagic {
		return nil, fmt.Errorf("%w (magic %q)", ErrIndexMagic, hdr[0:4])
	}
	if order := binary.LittleEndian.Uint64(hdr[8:16]); order != indexOrderMarker {
		return nil, fmt.Errorf("%w (byte-order marker %#x)", ErrIndexMagic, order)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != indexVersion {
		return nil, fmt.Errorf("%w (file version %d, supported %d)", ErrIndexVersion, v, indexVersion)
	}

	k := binary.LittleEndian.Uint64(hdr[16:24])
	step := binary.LittleEndian.Uint64(hdr[24:32])
	shift := binary.LittleEndian.Uint64(hdr[32:40])
	nBuckets := binary.LittleEndian.Uint64(hdr[40:48])
	nEntries := binary.LittleEndian.Uint64(hdr[48:56])
	distinct := binary.LittleEndian.Uint64(hdr[56:64])
	refLen := binary.LittleEndian.Uint64(hdr[64:72])
	nContigs := binary.LittleEndian.Uint64(hdr[72:80])
	fingerprint := binary.LittleEndian.Uint64(hdr[80:88])

	// Geometry sanity: exactly the shapes buildReferenceIndex can produce.
	switch {
	case k < 8 || k > 16,
		step < 1 || step > MaxSeedStep,
		nBuckets == 0 || nBuckets&(nBuckets-1) != 0, // power of two
		nBuckets > 1<<26 || nBuckets > 1<<(2*k),     // build caps bucket bits at 26
		shift != 2*k-uint64(trailingBits(nBuckets)),
		nEntries > refLen,
		distinct > nEntries:
		return nil, fmt.Errorf("%w (k=%d step=%d shift=%d buckets=%d entries=%d)",
			ErrIndexGeometry, k, step, shift, nBuckets, nEntries)
	}

	// Reference identity before the (potentially large) payload read.
	if uint64(ref.Len()) != refLen || uint64(ref.NumContigs()) != nContigs {
		return nil, fmt.Errorf("%w: file indexes %d bases in %d contigs, reference has %d in %d",
			ErrIndexMismatch, refLen, nContigs, ref.Len(), ref.NumContigs())
	}
	if fp := refFingerprint(ref); fp != fingerprint {
		return nil, fmt.Errorf("%w: reference fingerprint %#x, file built from %#x",
			ErrIndexMismatch, fp, fingerprint)
	}

	payload := payloadBytes(nBuckets, nEntries)
	buf := make([]uint64, payload/8)
	raw := byteView(buf, 8)
	if _, err := io.ReadFull(r, raw); err != nil {
		return nil, fmt.Errorf("%w: arrays: %v", ErrIndexTruncated, err)
	}
	var trailer [8]byte
	if _, err := io.ReadFull(r, trailer[:]); err != nil {
		return nil, fmt.Errorf("%w: checksum: %v", ErrIndexTruncated, err)
	}
	if got, want := crc64.Checksum(raw, crcTable), binary.LittleEndian.Uint64(trailer[:]); got != want {
		return nil, fmt.Errorf("%w (computed %#x, stored %#x)", ErrIndexChecksum, got, want)
	}

	// Zero-copy reslices into the aligned buffer. The keys slab starts on
	// an 8-byte boundary (offsets are whole uint64s) and pos starts after
	// the zero-padded keys slab, so every array keeps natural alignment.
	x := &Index{
		ref:      ref,
		seq:      ref.Seq(),
		k:        int(k),
		step:     int(step),
		shift:    uint(shift),
		distinct: int(distinct),
	}
	x.offsets = buf[:nBuckets+1]
	if nEntries > 0 {
		keyWords := buf[nBuckets+1 : nBuckets+1+(nEntries*4+keysPadBytes(nEntries))/8]
		x.keys = unsafe.Slice((*uint32)(unsafe.Pointer(&keyWords[0])), nEntries)
		posWords := buf[uint64(len(buf))-nEntries:]
		x.pos = unsafe.Slice((*int64)(unsafe.Pointer(&posWords[0])), nEntries)
	}

	// Structural spot checks the CRC cannot express: offsets must be a
	// monotone prefix ending at nEntries (a well-formed CSR), and every
	// position must land inside the reference.
	if x.offsets[0] != 0 || x.offsets[nBuckets] != nEntries {
		return nil, fmt.Errorf("%w (offsets span [%d,%d], entries %d)",
			ErrIndexGeometry, x.offsets[0], x.offsets[nBuckets], nEntries)
	}
	return x, nil
}

// trailingBits returns log2 of a power of two.
func trailingBits(v uint64) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// LoadIndexFile is LoadIndex over a file path.
func LoadIndexFile(path string, ref *Reference) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }() //gk:allow errcheck: read-only input; read errors surface via LoadIndex
	x, err := LoadIndex(f, ref)
	if err != nil {
		return nil, fmt.Errorf("loading index %s: %w", path, err)
	}
	return x, nil
}
