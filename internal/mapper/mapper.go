package mapper

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/align"
	"repro/internal/dna"
	"repro/internal/gkgpu"
)

// PreFilter is the pre-alignment filtering hook between seeding and
// verification. Both gkgpu.Engine (the GPU path) and gkgpu.CPUEngine satisfy
// it; a nil PreFilter reproduces the paper's "No Filter" rows.
type PreFilter interface {
	FilterPairs(pairs []gkgpu.Pair, errThreshold int) ([]gkgpu.Result, error)
}

// CandidateFilter extends PreFilter with the paper's actual mrFAST
// integration (Section 3.5): the encoded reference lives in unified memory
// and candidates are named by (read, location) indices, so each read is
// copied to the device once and the kernel extracts reference segments
// itself. gkgpu.Engine implements it; the mapper uses this path whenever
// available.
type CandidateFilter interface {
	PreFilter
	SetReference(seq []byte) error
	FilterCandidates(reads [][]byte, cands []gkgpu.Candidate, errThreshold int) ([]gkgpu.Result, error)
}

// Config parametrizes a mapping run.
type Config struct {
	ReadLen int
	MaxE    int
	SeedLen int // defaults to DefaultSeedLen
	// SeedStep samples the index: only reference windows starting at
	// contig-relative offsets divisible by SeedStep are indexed
	// (accel-align's kmer_step), shrinking the index ~SeedStep× while
	// seeding probes SeedStep consecutive read offsets per pigeonhole seed
	// to compensate. Zero or 1 indexes every window (bit-identical to the
	// unstepped mapper). Must leave the probe span inside the read:
	// SeedStep <= ReadLen-SeedLen+1.
	SeedStep int
	// MaxReadsPerBatch is the number of reads whose candidates are batched
	// into one filtering round (Table 1; the paper finds 100,000 best).
	MaxReadsPerBatch int
	Filter           PreFilter
	// Traceback makes verification produce CIGAR strings for SAM output at
	// the cost of materializing the DP band.
	Traceback bool
	// BothStrands also maps the reverse complement of every read, as real
	// short read mappers do; reverse-strand mappings carry Reverse=true.
	BothStrands bool
	// StreamWorkers sizes the seeding and verification worker pools — the
	// streaming pipeline's stage pools and the one-shot MapReads fan-out
	// alike. Zero uses GOMAXPROCS.
	StreamWorkers int
}

func (c *Config) applyDefaults() {
	if c.SeedLen == 0 {
		c.SeedLen = DefaultSeedLen
	}
	if c.SeedStep == 0 {
		c.SeedStep = 1
	}
	if c.MaxReadsPerBatch == 0 {
		c.MaxReadsPerBatch = 100_000
	}
}

// Mapping is one reported alignment. Coordinates are contig-relative:
// Contig indexes the mapper's Reference contig table and Pos is the offset
// of the candidate window inside that contig (for a single-contig reference
// Contig is 0 and Pos equals the historical flat-reference offset).
type Mapping struct {
	ReadID   int
	Contig   int    // index into Reference.Contigs()
	Pos      int    // contig-relative offset of the candidate window
	Distance int    // verified edit distance
	CIGAR    string // populated when Config.Traceback is set
	Reverse  bool   // mapping of the read's reverse complement
}

// Stats carries the whole-genome evaluation metrics of Section 4.5: "the
// number of mappings, the number of mapped reads, the total number of
// candidate mappings, the total number of candidate mappings that enter
// verification, time spent for verification, time spent for preprocessing
// before pre-alignment filtering, and total kernel time".
type Stats struct {
	Reads              int64
	CandidatePairs     int64 // candidate mappings found by seeding
	VerificationPairs  int64 // candidates that enter verification
	RejectedPairs      int64 // candidates removed by the filter
	UndefinedPairs     int64 // candidates passed through for 'N'
	Mappings           int64
	MappedReads        int64
	SeedSeconds        float64 // wall: seeding + candidate collection
	PreprocessSeconds  float64 // wall: batching/buffer preparation
	FilterWallSeconds  float64 // wall: pre-alignment filtering
	FilterKernelModel  float64 // modelled device kernel seconds
	FilterModelSeconds float64 // modelled end-to-end filter seconds
	FilterPrepModel    float64 // modelled host encode/fill seconds
	VerifySeconds      float64 // wall: banded-DP verification
	TotalSeconds       float64

	// Streaming-pipeline metrics, populated by MapStream and MapPairs only.
	// On the streaming path SeedSeconds and VerifySeconds are aggregate
	// worker-busy seconds (the stage cost, summed across the pools) rather
	// than wall time, and PipelineWallSeconds is the single wall clock the
	// overlapped seed → filter → verify pipeline actually took.
	PipelineWallSeconds float64

	// Paired-end accounting, populated by MapPairs and MapPairStream only.
	ReadPairs       int64 // input mate pairs
	ConcordantPairs int64 // pairs resolved inside the insert window

	// Insert-window accounting, populated by MapPairs and MapPairStream
	// only. The window is the one concordance was resolved against; the
	// estimate fields stay zero when the caller passed an explicit window.
	InsertWindowMin    int
	InsertWindowMax    int
	InsertMean         float64 // estimated mean fragment length
	InsertStd          float64 // estimated fragment length std deviation
	InsertSampledPairs int64   // confident pairs behind the estimate
}

// StageSeconds is the modelled serial cost of the pipeline: what seeding,
// filtering, and verification would take end to end with no overlap. On the
// one-shot path it is simply how the run decomposed; on the streaming path
// comparing it against PipelineWallSeconds measures the overlap won.
func (s Stats) StageSeconds() float64 {
	if s.PipelineWallSeconds > 0 {
		// Streaming path: FilterWallSeconds is the wall the filter stream
		// stayed open, which overlaps the other stages (and includes time
		// spent waiting on producers); the filter's serial-equivalent cost
		// is the modelled end-to-end filter time.
		return s.SeedSeconds + s.FilterModelSeconds + s.VerifySeconds
	}
	return s.SeedSeconds + s.FilterWallSeconds + s.VerifySeconds
}

// OverlapSeconds is the stage time the streaming pipeline hid by running
// seeding, filtering, and verification concurrently (zero on the one-shot
// path, where PipelineWallSeconds is not populated).
func (s Stats) OverlapSeconds() float64 {
	if s.PipelineWallSeconds <= 0 {
		return 0
	}
	if d := s.StageSeconds() - s.PipelineWallSeconds; d > 0 {
		return d
	}
	return 0
}

// Reduction returns the fraction of candidate mappings the filter removed —
// the headline quantity of Tables 3 and S.24-S.26.
func (s Stats) Reduction() float64 {
	if s.CandidatePairs == 0 {
		return 0
	}
	return float64(s.RejectedPairs) / float64(s.CandidatePairs)
}

// Mapper maps fixed-length reads against an indexed (multi-contig)
// reference.
type Mapper struct {
	cfg        Config
	ref        *Reference
	idx        *Index
	candFilter CandidateFilter // non-nil when cfg.Filter supports the index path
}

// New builds a mapper over one flat reference sequence, treated as a single
// contig. NewFromReference is the multi-contig form.
func New(ref []byte, cfg Config) (*Mapper, error) {
	return NewFromReference(SingleContig("", ref), cfg)
}

// NewFromReference builds a mapper over a multi-contig reference: seeding,
// filtering, and verification run over the concatenated sequence, candidate
// windows never straddle a contig boundary, and reported Mappings carry
// (contig, contig-relative position) coordinates.
func NewFromReference(ref *Reference, cfg Config) (*Mapper, error) {
	cfg.applyDefaults()
	if cfg.ReadLen <= 0 {
		return nil, fmt.Errorf("mapper: read length %d", cfg.ReadLen)
	}
	if cfg.MaxE < 0 || cfg.MaxE >= cfg.ReadLen {
		return nil, fmt.Errorf("mapper: error threshold %d outside [0,%d)", cfg.MaxE, cfg.ReadLen)
	}
	if cfg.SeedLen > cfg.ReadLen {
		return nil, fmt.Errorf("mapper: seed length %d exceeds read length %d", cfg.SeedLen, cfg.ReadLen)
	}
	if cfg.SeedStep < 1 || cfg.SeedStep > cfg.ReadLen-cfg.SeedLen+1 {
		return nil, fmt.Errorf("mapper: seed step %d outside [1,%d] (probe span must fit the read)",
			cfg.SeedStep, cfg.ReadLen-cfg.SeedLen+1)
	}
	idx, err := NewSteppedReferenceIndex(ref, cfg.SeedLen, cfg.SeedStep)
	if err != nil {
		return nil, err
	}
	return newMapperWithIndex(ref, cfg, idx)
}

// newMapperWithIndex is the tail of NewFromReference, shared with
// NewFromSerializedIndex: wrap an already-built (or loaded) index and wire
// the optional candidate filter. cfg must already be validated and idx must
// index ref with cfg's seed geometry.
func newMapperWithIndex(ref *Reference, cfg Config, idx *Index) (*Mapper, error) {
	m := &Mapper{cfg: cfg, ref: ref, idx: idx}
	if cf, ok := cfg.Filter.(CandidateFilter); ok {
		if err := cf.SetReference(ref.Seq()); err != nil {
			return nil, fmt.Errorf("mapper: loading reference into filter: %w", err)
		}
		m.candFilter = cf
	}
	return m, nil
}

// NewFromSerializedIndex builds a Mapper from a reference plus a GKIX index
// file previously written by Index.Serialize (cmd/gkindex), skipping the
// index build. The file must have been built from ref (ErrIndexMismatch
// otherwise, via the serialized fingerprint). The index's seed geometry is
// authoritative: when cfg.SeedLen or cfg.SeedStep is zero the mapper adopts
// the file's k or step, and a non-zero value that disagrees with the file is
// an ErrIndexMismatch — mapping silently with a different geometry than the
// index was built for is never right.
func NewFromSerializedIndex(ref *Reference, path string, cfg Config) (*Mapper, error) {
	idx, err := LoadIndexFile(path, ref)
	if err != nil {
		return nil, err
	}
	if err := checkIndexGeometry(cfg, idx); err != nil {
		return nil, err
	}
	cfg.SeedLen, cfg.SeedStep = idx.K(), idx.Step()
	cfg.applyDefaults()
	if cfg.ReadLen <= 0 {
		return nil, fmt.Errorf("mapper: read length %d", cfg.ReadLen)
	}
	if cfg.MaxE < 0 || cfg.MaxE >= cfg.ReadLen {
		return nil, fmt.Errorf("mapper: error threshold %d outside [0,%d)", cfg.MaxE, cfg.ReadLen)
	}
	if cfg.SeedLen > cfg.ReadLen {
		return nil, fmt.Errorf("mapper: seed length %d exceeds read length %d", cfg.SeedLen, cfg.ReadLen)
	}
	if cfg.SeedStep < 1 || cfg.SeedStep > cfg.ReadLen-cfg.SeedLen+1 {
		return nil, fmt.Errorf("mapper: seed step %d outside [1,%d] (probe span must fit the read)",
			cfg.SeedStep, cfg.ReadLen-cfg.SeedLen+1)
	}
	return newMapperWithIndex(ref, cfg, idx)
}

// checkIndexGeometry verifies a non-zero configured seed geometry against a
// loaded index; a disagreement is an ErrIndexMismatch.
func checkIndexGeometry(cfg Config, idx *Index) error {
	if cfg.SeedLen != 0 && cfg.SeedLen != idx.K() {
		return fmt.Errorf("%w: config seed length %d, index built with k=%d",
			ErrIndexMismatch, cfg.SeedLen, idx.K())
	}
	if cfg.SeedStep != 0 && cfg.SeedStep != idx.Step() {
		return fmt.Errorf("%w: config seed step %d, index built with step=%d",
			ErrIndexMismatch, cfg.SeedStep, idx.Step())
	}
	return nil
}

// Index exposes the underlying k-mer index.
func (m *Mapper) Index() *Index { return m.idx }

// Reference exposes the mapper's contig table.
func (m *Mapper) Reference() *Reference { return m.ref }

// candidates runs pigeonhole seeding for one read: e+1 seeds at evenly
// spread offsets; each hit proposes the window that would place the read at
// that seed offset. When the index is stepped, each pigeonhole seed fans
// out over the step consecutive read offsets starting at its own — the
// index holds one in every step contig-relative window starts, so whatever
// phase the true alignment has, exactly one probe in the fan lines up with
// a sampled reference window (found whenever the k+step-1 bases around the
// seed are error-free, the stepped pigeonhole trade-off); at step 1 the fan
// is the single historical probe. Windows that would run past the start or
// end of the hit's contig — including into a neighbouring contig of the
// concatenated sequence — are dropped here, before filtering, so a
// cross-boundary candidate never reaches verification. Duplicates are
// merged.
func (m *Mapper) candidates(read []byte, e int) []int64 {
	L := m.cfg.ReadLen
	k := m.idx.k
	step := m.idx.step
	nSeeds := e + 1
	if maxSeeds := L / k; nSeeds > maxSeeds {
		nSeeds = maxSeeds
	}
	if nSeeds < 1 {
		nSeeds = 1
	}
	var out []int64
	for s := 0; s < nSeeds; s++ {
		var off int
		if nSeeds == 1 {
			off = 0
		} else {
			off = s * (L - k) / (nSeeds - 1)
		}
		for o := off; o < off+step && o+k <= L; o++ {
			for _, hit := range m.idx.Lookup(read[o : o+k]) {
				pos := hit - int64(o)
				// The hit's k-window is inside one contig by construction;
				// the proposed read window must be too — WindowContig
				// rejects windows out of range or straddling a contig
				// boundary.
				if m.ref.WindowContig(int(pos), L) < 0 {
					continue
				}
				out = append(out, pos)
			}
		}
	}
	if len(out) == 0 {
		return nil
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	dedup := out[:1]
	for _, p := range out[1:] {
		if p != dedup[len(dedup)-1] {
			dedup = append(dedup, p)
		}
	}
	return dedup
}

// workerCount resolves the configured pool width against the machine and the
// work available.
func (m *Mapper) workerCount(n int) int {
	w := m.cfg.StreamWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// parallelFor runs body over [0, n) across workers goroutines, each claiming
// grain-sized blocks off a shared cursor (the same dynamic schedule as the
// batch filter front end, and channel-free by design: the block index fully
// determines each worker's writes, so indexed slices are the only shared
// state). body must touch only its [lo, hi) slots.
func parallelFor(workers, n, grain int, body func(lo, hi int)) {
	if n == 0 {
		return
	}
	if workers == 1 || n <= grain {
		body(0, n)
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				hi := int(cursor.Add(int64(grain)))
				lo := hi - grain
				if lo >= n {
					return
				}
				if hi > n {
					hi = n
				}
				body(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// MapReads maps every read at threshold e, batching candidates through the
// configured pre-alignment filter (when present) before verification, and
// returns the mappings in (read, position) order together with the run's
// statistics. Seeding and verification fan out across the StreamWorkers
// pool (and the engines parallelize filtering internally), so the one-shot
// seeding→filter→verify pipeline runs at machine width end to end; the
// result is bit-identical to a serial run for any pool size.
func (m *Mapper) MapReads(reads [][]byte, e int) ([]Mapping, Stats, error) {
	if e > m.cfg.MaxE {
		return nil, Stats{}, fmt.Errorf("mapper: threshold %d exceeds configured %d", e, m.cfg.MaxE)
	}
	for i, r := range reads {
		if len(r) != m.cfg.ReadLen {
			return nil, Stats{}, fmt.Errorf("mapper: read %d has length %d, mapper built for %d",
				i, len(r), m.cfg.ReadLen)
		}
	}
	var st Stats
	var mappings []Mapping
	totalStart := time.Now()
	L := m.cfg.ReadLen
	ref := m.idx.seq

	for lo := 0; lo < len(reads); lo += m.cfg.MaxReadsPerBatch {
		hi := lo + m.cfg.MaxReadsPerBatch
		if hi > len(reads) {
			hi = len(reads)
		}
		// The batch's query sequences: each read, plus its reverse
		// complement when both-strand mapping is on.
		type query struct {
			readID  int
			reverse bool
		}
		var batch [][]byte
		var queries []query
		for ri, read := range reads[lo:hi] {
			batch = append(batch, read)
			queries = append(queries, query{readID: lo + ri})
			if m.cfg.BothStrands {
				batch = append(batch, dna.ReverseComplement(read))
				queries = append(queries, query{readID: lo + ri, reverse: true})
			}
		}

		// Seeding: collect candidate locations for the whole batch, fanned
		// out across the worker pool. Each query's candidate list lands in
		// its own slot, and the flatten below walks slots in query order, so
		// the candidate sequence is byte-identical to the serial walk.
		seedStart := time.Now()
		type cand struct {
			query int // index into batch/queries
			pos   int64
		}
		perQuery := make([][]int64, len(batch))
		parallelFor(m.workerCount(len(batch)), len(batch), 8, func(lo, hi int) {
			for qi := lo; qi < hi; qi++ {
				perQuery[qi] = m.candidates(batch[qi], e)
			}
		})
		var cands []cand
		for qi := range perQuery {
			for _, pos := range perQuery[qi] {
				cands = append(cands, cand{query: qi, pos: pos})
			}
		}
		st.SeedSeconds += time.Since(seedStart).Seconds()
		st.CandidatePairs += int64(len(cands))
		if len(cands) == 0 {
			continue
		}

		// Preprocessing: fill the filtering buffers ("we fill the buffers
		// with multiple reads and their candidate location indices").
		prepStart := time.Now()
		pairs := make([]gkgpu.Pair, len(cands))
		for i, c := range cands {
			pairs[i] = gkgpu.Pair{
				Read: batch[c.query],
				Ref:  ref[c.pos : int(c.pos)+L],
			}
		}
		st.PreprocessSeconds += time.Since(prepStart).Seconds()

		// Pre-alignment filtering: index-named when supported, otherwise
		// over materialized pairs.
		verdicts := make([]gkgpu.Result, len(pairs))
		if m.candFilter != nil {
			filtStart := time.Now()
			gcands := make([]gkgpu.Candidate, len(cands))
			for i, c := range cands {
				gcands[i] = gkgpu.Candidate{ReadID: int64(c.query), Pos: c.pos}
			}
			res, err := m.candFilter.FilterCandidates(batch, gcands, e)
			if err != nil {
				return nil, Stats{}, fmt.Errorf("mapper: pre-alignment filter: %w", err)
			}
			copy(verdicts, res)
			st.FilterWallSeconds += time.Since(filtStart).Seconds()
		} else if m.cfg.Filter != nil {
			filtStart := time.Now()
			res, err := m.cfg.Filter.FilterPairs(pairs, e)
			if err != nil {
				return nil, Stats{}, fmt.Errorf("mapper: pre-alignment filter: %w", err)
			}
			copy(verdicts, res)
			st.FilterWallSeconds += time.Since(filtStart).Seconds()
		} else {
			for i := range verdicts {
				verdicts[i].Accept = true
			}
		}

		// Verification: banded edit distance for surviving pairs, fanned out
		// across the worker pool into per-candidate slots; the serial pass
		// below tallies stats and appends surviving mappings in candidate
		// order, so the mapping list equals the serial walk's before the
		// final canonical sort.
		verifyStart := time.Now()
		slots := make([]Mapping, len(cands))
		kept := make([]bool, len(cands))
		parallelFor(m.workerCount(len(cands)), len(cands), 32, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if !verdicts[i].Accept {
					continue
				}
				c := cands[i]
				q := queries[c.query]
				ci, rel := m.ref.Locate(int(c.pos))
				if m.cfg.Traceback {
					if al, ok := align.Align(pairs[i].Read, pairs[i].Ref, e); ok {
						slots[i] = Mapping{ReadID: q.readID, Contig: ci, Pos: rel,
							Distance: al.Distance, CIGAR: al.CIGARCompat(), Reverse: q.reverse}
						kept[i] = true
					}
				} else if d, ok := align.DistanceBanded(pairs[i].Read, pairs[i].Ref, e); ok {
					slots[i] = Mapping{ReadID: q.readID, Contig: ci, Pos: rel,
						Distance: d, Reverse: q.reverse}
					kept[i] = true
				}
			}
		})
		for i := range cands {
			if !verdicts[i].Accept {
				st.RejectedPairs++
				continue
			}
			if verdicts[i].Undefined {
				st.UndefinedPairs++
			}
			st.VerificationPairs++
			if kept[i] {
				mappings = append(mappings, slots[i])
			}
		}
		st.VerifySeconds += time.Since(verifyStart).Seconds()
	}

	// Recompute aggregate counters from the mapping list (cheap and exact).
	st.Mappings = int64(len(mappings))
	mapped := make(map[int]bool, len(reads))
	for _, m := range mappings {
		mapped[m.ReadID] = true
	}
	st.MappedReads = int64(len(mapped))
	st.Reads = int64(len(reads))
	if eng, ok := m.cfg.Filter.(*gkgpu.Engine); ok {
		st.FilterKernelModel = eng.Stats().KernelSeconds
		st.FilterModelSeconds = eng.Stats().FilterSeconds
		st.FilterPrepModel = eng.Stats().HostPrepSeconds
	}
	if eng, ok := m.cfg.Filter.(*gkgpu.CPUEngine); ok {
		st.FilterKernelModel = eng.Stats().KernelSeconds
		st.FilterModelSeconds = eng.Stats().FilterSeconds
	}
	st.TotalSeconds = time.Since(totalStart).Seconds()

	sortMappings(mappings)
	return mappings, st, nil
}

// sortMappings puts a mapping list into the mapper's canonical report order:
// (read, contig, position, strand). Contigs order as the reference lays them
// out, so the order equals the historical flat-position order; the strand
// tie-break keeps it fully deterministic — MapReads and MapStream must emit
// byte-identical output — even for the rare read whose forward and
// reverse-complement queries map at the same position.
func sortMappings(mappings []Mapping) {
	sort.Slice(mappings, func(i, j int) bool {
		if mappings[i].ReadID != mappings[j].ReadID {
			return mappings[i].ReadID < mappings[j].ReadID
		}
		if mappings[i].Contig != mappings[j].Contig {
			return mappings[i].Contig < mappings[j].Contig
		}
		if mappings[i].Pos != mappings[j].Pos {
			return mappings[i].Pos < mappings[j].Pos
		}
		return !mappings[i].Reverse && mappings[j].Reverse
	})
}
