package mapper

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"testing"

	"repro/internal/dna"
	"repro/internal/gkgpu"
	"repro/internal/simdata"
)

func mustReference(t *testing.T, recs ...dna.Record) *Reference {
	t.Helper()
	r, err := NewReference(recs)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestReferenceTable(t *testing.T) {
	r := mustReference(t,
		dna.Record{Name: "chrA", Seq: []byte("ACGTACGTAC")},              // [0,10)
		dna.Record{Name: "chrB Homo sapiens", Seq: []byte("TTTT")},       // [10,14)
		dna.Record{Name: "chrC", Desc: "plasmid", Seq: []byte("GGGGGG")}, // [14,20)
	)
	if r.Len() != 20 || r.NumContigs() != 3 {
		t.Fatalf("table: len %d contigs %d", r.Len(), r.NumContigs())
	}
	if string(r.Seq()) != "ACGTACGTACTTTTGGGGGG" {
		t.Fatalf("concatenation drifted: %s", r.Seq())
	}
	// Names stay SAM-legal: a whitespace-bearing name splits into id+desc.
	if c := r.Contig(1); c.Name != "chrB" || c.Desc != "Homo sapiens" || c.Off != 10 || c.Len != 4 {
		t.Fatalf("contig 1: %+v", c)
	}
	if c := r.Contig(2); c.Desc != "plasmid" {
		t.Fatalf("contig 2 description lost: %+v", c)
	}
	for pos, want := range map[int]int{0: 0, 9: 0, 10: 1, 13: 1, 14: 2, 19: 2} {
		if got := r.ContigOf(pos); got != want {
			t.Fatalf("ContigOf(%d) = %d, want %d", pos, got, want)
		}
	}
	if r.ContigOf(-1) != -1 || r.ContigOf(20) != -1 {
		t.Fatal("out-of-range position located")
	}
	ci, rel := r.Locate(12)
	if ci != 1 || rel != 2 {
		t.Fatalf("Locate(12) = (%d,%d)", ci, rel)
	}
	// Window containment: inside one contig ok, straddling or overflowing no.
	if r.WindowContig(10, 4) != 1 {
		t.Fatal("in-contig window rejected")
	}
	for _, w := range [][2]int{{8, 4}, {12, 4}, {18, 4}, {-1, 4}} {
		if got := r.WindowContig(w[0], w[1]); got != -1 {
			t.Fatalf("window (%d,%d) accepted into contig %d", w[0], w[1], got)
		}
	}
	if r.LookupContig("chrB") != 1 || r.LookupContig("chrX") != -1 {
		t.Fatal("LookupContig")
	}
}

func TestReferenceValidation(t *testing.T) {
	if _, err := NewReference(nil); err == nil {
		t.Fatal("empty reference accepted")
	}
	if _, err := NewReference([]dna.Record{{Name: "", Seq: []byte("ACGT")}}); err == nil {
		t.Fatal("unnamed contig accepted")
	}
	if _, err := NewReference([]dna.Record{
		{Name: "c", Seq: []byte("ACGT")}, {Name: "c", Seq: []byte("TTTT")},
	}); err == nil {
		t.Fatal("duplicate contig name accepted")
	}
	if _, err := NewReference([]dna.Record{{Name: "c", Seq: nil}}); err == nil {
		t.Fatal("empty contig accepted")
	}
}

// multiContigOracle is mapOracle with contig boundaries: windows roll per
// contig, so nothing straddles.
func multiContigOracle(r *Reference, k int) map[uint32][]int64 {
	oracle := make(map[uint32][]int64)
	for _, c := range r.Contigs() {
		var key uint32
		mask := uint32(1)<<(2*k) - 1
		valid := 0
		for i := c.Off; i < c.End(); i++ {
			code, ok := dna.Code(r.Seq()[i])
			if !ok {
				valid = 0
				key = 0
				continue
			}
			key = (key<<2 | uint32(code)) & mask
			valid++
			if valid >= k {
				oracle[key] = append(oracle[key], int64(i-k+1))
			}
		}
	}
	return oracle
}

// TestReferenceIndexBoundaries pins the multi-contig index to the
// boundary-aware oracle: per-contig windows are all indexed, and no
// k-window spanning a contig junction ever is — even when the junction
// sequence is unique and would index fine on the concatenated bytes.
func TestReferenceIndexBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	r := mustReference(t,
		dna.Record{Name: "c1", Seq: randomRefWithNs(rng, 3000, 0.002)},
		dna.Record{Name: "c2", Seq: randomRefWithNs(rng, 50, 0)},
		dna.Record{Name: "c3", Seq: randomRefWithNs(rng, 7000, 0.002)},
	)
	for _, k := range []int{8, 13} {
		idx, err := NewReferenceIndex(r, k)
		if err != nil {
			t.Fatal(err)
		}
		oracle := multiContigOracle(r, k)
		if idx.DistinctKmers() != len(oracle) {
			t.Fatalf("k=%d: distinct %d, oracle %d", k, idx.DistinctKmers(), len(oracle))
		}
		total := 0
		for _, hits := range oracle {
			total += len(hits)
		}
		if idx.Entries() != total {
			t.Fatalf("k=%d: entries %d, oracle %d", k, idx.Entries(), total)
		}
		seq := r.Seq()
		for i := 0; i+k <= len(seq); i++ {
			window := seq[i : i+k]
			got := idx.Lookup(window)
			if dna.HasN(window) {
				if got != nil {
					t.Fatalf("k=%d: N-window returned hits", k)
				}
				continue
			}
			want := oracle[packKey(window)]
			if len(got) != len(want) {
				t.Fatalf("k=%d window@%d: %d hits, want %d", k, i, len(got), len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("k=%d window@%d: hit[%d]=%d, want %d", k, i, j, got[j], want[j])
				}
			}
		}
		// Every hit's window must sit wholly inside one contig.
		for _, p := range idx.pos {
			if r.WindowContig(int(p), k) < 0 {
				t.Fatalf("k=%d: indexed window at %d straddles a boundary", k, p)
			}
		}
	}
}

// TestShardedBuildIdentity holds the parallel per-contig-shard build to the
// sequential result: the CSR arrays must be bit-identical whatever the
// shard count, including the degenerate single-shard build.
func TestShardedBuildIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	var recs []dna.Record
	for i := 0; i < 9; i++ {
		recs = append(recs, dna.Record{
			Name: fmt.Sprintf("c%d", i),
			Seq:  randomRefWithNs(rng, 500+rng.Intn(4000), 0.003),
		})
	}
	r := mustReference(t, recs...)

	seq, err := buildReferenceIndex(r, 11, 1, 1) // sequential: one shard
	if err != nil {
		t.Fatal(err)
	}
	for _, maxShards := range []int{2, 3, 8, 64} {
		par, err := buildReferenceIndex(r, 11, 1, maxShards)
		if err != nil {
			t.Fatal(err)
		}
		if seq.shift != par.shift || seq.distinct != par.distinct {
			t.Fatalf("maxShards=%d: geometry drifted: shift %d/%d distinct %d/%d",
				maxShards, seq.shift, par.shift, seq.distinct, par.distinct)
		}
		if len(seq.offsets) != len(par.offsets) || len(seq.keys) != len(par.keys) ||
			len(seq.pos) != len(par.pos) {
			t.Fatalf("maxShards=%d: array lengths drifted", maxShards)
		}
		for i := range seq.offsets {
			if seq.offsets[i] != par.offsets[i] {
				t.Fatalf("maxShards=%d: offsets[%d] drifted", maxShards, i)
			}
		}
		for i := range seq.keys {
			if seq.keys[i] != par.keys[i] || seq.pos[i] != par.pos[i] {
				t.Fatalf("maxShards=%d: entry %d drifted: (%d,%d) vs (%d,%d)",
					maxShards, i, seq.keys[i], seq.pos[i], par.keys[i], par.pos[i])
			}
		}
	}
}

func TestShardContigs(t *testing.T) {
	var contigs []Contig
	off := 0
	for _, l := range []int{100, 5000, 200, 300, 4000, 50} {
		contigs = append(contigs, Contig{Off: off, Len: l})
		off += l
	}
	for _, maxShards := range []int{1, 2, 3, 6, 100} {
		shards := shardContigs(contigs, maxShards)
		if len(shards) > maxShards || len(shards) > len(contigs) || len(shards) < 1 {
			t.Fatalf("maxShards=%d: %d shards", maxShards, len(shards))
		}
		// Contiguous cover, in order.
		at := 0
		for _, sh := range shards {
			if sh.lo != at || sh.hi <= sh.lo {
				t.Fatalf("maxShards=%d: shard %+v at %d", maxShards, sh, at)
			}
			at = sh.hi
		}
		if at != len(contigs) {
			t.Fatalf("maxShards=%d: cover ends at %d", maxShards, at)
		}
	}
}

// recordingFilter is a CandidateFilter that accepts everything and records
// every candidate position it is asked to judge, so tests can assert what
// reached the filtering stage.
type recordingFilter struct {
	refLen int
	seen   []gkgpu.Candidate
}

func (f *recordingFilter) SetReference(seq []byte) error { f.refLen = len(seq); return nil }

func (f *recordingFilter) FilterPairs(pairs []gkgpu.Pair, _ int) ([]gkgpu.Result, error) {
	res := make([]gkgpu.Result, len(pairs))
	for i := range res {
		res[i].Accept = true
	}
	return res, nil
}

func (f *recordingFilter) FilterCandidates(_ [][]byte, cands []gkgpu.Candidate, _ int) ([]gkgpu.Result, error) {
	f.seen = append(f.seen, cands...)
	res := make([]gkgpu.Result, len(cands))
	for i := range res {
		res[i].Accept = true
	}
	return res, nil
}

// junctionReference builds three simulated contigs and returns reads that
// straddle each junction (half from the tail of one contig, half from the
// head of the next) — the reads a flat concatenated reference would happily
// map and a boundary-aware mapper must not.
func junctionReference(t *testing.T, readLen int) (*Reference, [][]byte) {
	t.Helper()
	var recs []dna.Record
	for i, n := range []int{20_000, 15_000, 25_000} {
		cfg := simdata.DefaultGenomeConfig(n)
		cfg.Seed = int64(31 + i)
		cfg.NRate = 0
		recs = append(recs, dna.Record{Name: fmt.Sprintf("chr%d", i+1), Seq: simdata.Genome(cfg)})
	}
	r := mustReference(t, recs...)
	var junction [][]byte
	for c := 0; c+1 < r.NumContigs(); c++ {
		end := r.Contig(c).End()
		read := append([]byte(nil), r.Seq()[end-readLen/2:end+readLen/2]...)
		junction = append(junction, read)
	}
	return r, junction
}

// TestNoCrossBoundaryCandidates is the boundary property test: reads copied
// straight off a contig junction produce no candidate that straddles the
// boundary — nothing straddling reaches the filter, verification, or the
// output — while ordinary in-contig reads still map, on every mapping path.
func TestNoCrossBoundaryCandidates(t *testing.T) {
	const L, e = 100, 3
	r, junctionReads := junctionReference(t, L)

	// In-contig reads drawn from each contig, exact copies.
	rng := rand.New(rand.NewSource(41))
	var inContig [][]byte
	wantContig := map[int]int{}
	for c := 0; c < r.NumContigs(); c++ {
		ct := r.Contig(c)
		for i := 0; i < 5; i++ {
			pos := ct.Off + rng.Intn(ct.Len-L)
			inContig = append(inContig, append([]byte(nil), r.Seq()[pos:pos+L]...))
			wantContig[len(inContig)-1] = c
		}
	}
	reads := append(append([][]byte(nil), inContig...), junctionReads...)

	rec := &recordingFilter{}
	m, err := NewFromReference(r, Config{ReadLen: L, MaxE: e, SeedLen: 10, Filter: rec})
	if err != nil {
		t.Fatal(err)
	}

	check := func(t *testing.T, mappings []Mapping) {
		t.Helper()
		byRead := map[int][]Mapping{}
		for _, mp := range mappings {
			byRead[mp.ReadID] = append(byRead[mp.ReadID], mp)
			ct := r.Contig(mp.Contig)
			if mp.Pos < 0 || mp.Pos+L > ct.Len {
				t.Fatalf("mapping window leaves its contig: %+v (contig len %d)", mp, ct.Len)
			}
		}
		for i := range inContig {
			found := false
			for _, mp := range byRead[i] {
				if mp.Contig == wantContig[i] {
					found = true
				}
			}
			if !found {
				t.Fatalf("in-contig read %d not mapped to contig %d", i, wantContig[i])
			}
		}
		for j := range junctionReads {
			if got := byRead[len(inContig)+j]; len(got) != 0 {
				t.Fatalf("junction read %d mapped: %+v", j, got)
			}
		}
	}

	mappings, _, err := m.MapReads(reads, e)
	if err != nil {
		t.Fatal(err)
	}
	check(t, mappings)
	// Everything the filter was asked to judge was wholly in one contig.
	if len(rec.seen) == 0 {
		t.Fatal("recording filter saw no candidates")
	}
	for _, c := range rec.seen {
		if r.WindowContig(int(c.Pos), L) < 0 {
			t.Fatalf("cross-boundary candidate reached the filter: pos %d", c.Pos)
		}
	}

	// The streaming paths agree mapping for mapping.
	streamed, _, err := m.MapStream(reads, e)
	if err != nil {
		t.Fatal(err)
	}
	check(t, streamed)
	if len(streamed) != len(mappings) {
		t.Fatalf("MapStream drifted: %d vs %d mappings", len(streamed), len(mappings))
	}
	for i := range streamed {
		if streamed[i] != mappings[i] {
			t.Fatalf("MapStream mapping %d drifted: %+v vs %+v", i, streamed[i], mappings[i])
		}
	}
	ch := make(chan Read, 8)
	go func() {
		defer close(ch)
		for i, s := range reads {
			ch <- Read{Name: fmt.Sprintf("r%d", i), Seq: s}
		}
	}()
	fed, _, err := m.MapReadStream(ch, e)
	if err != nil {
		t.Fatal(err)
	}
	check(t, fed)
}

// TestMultiContigGoldenSAM plants exact reads on three tiny contigs and
// pins the single-end SAM output byte for byte: three @SQ lines in FASTA
// order, RNAME naming each read's contig, POS contig-relative 1-based, and
// the junction read absent.
func TestMultiContigGoldenSAM(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	a, b, c := dna.RandomSeq(rng, 80), dna.RandomSeq(rng, 70), dna.RandomSeq(rng, 90)
	r := mustReference(t,
		dna.Record{Name: "chrA", Seq: a},
		dna.Record{Name: "chrB", Desc: "described header", Seq: b},
		dna.Record{Name: "chrC", Seq: c},
	)
	const L = 20
	reads := [][]byte{
		append([]byte(nil), a[5:5+L]...),
		append([]byte(nil), b[40:40+L]...),
		append([]byte(nil), c[0:L]...),
		append(append([]byte(nil), a[80-L/2:]...), b[:L/2]...), // junction chrA|chrB
	}
	m, err := NewFromReference(r, Config{ReadLen: L, MaxE: 2, SeedLen: 8})
	if err != nil {
		t.Fatal(err)
	}
	mappings, _, err := m.MapReads(reads, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSAM(&buf, r, nil, reads, mappings); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"@HD\tVN:1.6\tSO:unsorted",
		"@SQ\tSN:chrA\tLN:80",
		"@SQ\tSN:chrB\tLN:70",
		"@SQ\tSN:chrC\tLN:90",
		"@PG\tID:gatekeeper-gpu-repro\tPN:gkmap",
		fmt.Sprintf("read0\t0\tchrA\t6\t255\t20M\t*\t0\t0\t%s\t*\tNM:i:0", reads[0]),
		fmt.Sprintf("read1\t0\tchrB\t41\t255\t20M\t*\t0\t0\t%s\t*\tNM:i:0", reads[1]),
		fmt.Sprintf("read2\t0\tchrC\t1\t255\t20M\t*\t0\t0\t%s\t*\tNM:i:0", reads[2]),
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Fatalf("multi-contig SAM drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestMultiContigGoldenPairedSAM plants one concordant pair inside chrB and
// one split pair (mates on different contigs): the same-contig pair resolves
// and prints with RNEXT '=', the split pair is discordant and absent.
func TestMultiContigGoldenPairedSAM(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	a, b := dna.RandomSeq(rng, 100), dna.RandomSeq(rng, 120)
	r := mustReference(t,
		dna.Record{Name: "chrA", Seq: a},
		dna.Record{Name: "chrB", Seq: b},
	)
	const L = 20
	pairs := []ReadPair{
		// Fragment chrB[10:70): R1 = left end, R2 = revcomp of the right end.
		{R1: append([]byte(nil), b[10:10+L]...), R2: dna.ReverseComplement(b[50 : 50+L])},
		// Split pair: R1 on chrA, R2 on chrB. Globally the windows are 60
		// bases apart — inside the insert window if boundaries were ignored.
		{R1: append([]byte(nil), a[60:60+L]...), R2: dna.ReverseComplement(b[20 : 20+L])},
	}
	m, err := NewFromReference(r, Config{ReadLen: L, MaxE: 2, SeedLen: 8})
	if err != nil {
		t.Fatal(err)
	}
	resolved, st, err := m.MapPairs(pairs, 0, InsertWindow{Min: L, Max: 100})
	if err != nil {
		t.Fatal(err)
	}
	if st.ConcordantPairs != 1 {
		t.Fatalf("want 1 concordant pair (the split pair is discordant), got %d", st.ConcordantPairs)
	}
	var buf bytes.Buffer
	if err := WritePairedSAM(&buf, r, nil, pairs, resolved); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"@HD\tVN:1.6\tSO:unsorted",
		"@SQ\tSN:chrA\tLN:100",
		"@SQ\tSN:chrB\tLN:120",
		"@PG\tID:gatekeeper-gpu-repro\tPN:gkmap",
		fmt.Sprintf("pair0\t99\tchrB\t11\t255\t20M\t=\t51\t60\t%s\t*\tNM:i:0", pairs[0].R1),
		fmt.Sprintf("pair0\t147\tchrB\t51\t255\t20M\t=\t11\t-60\t%s\t*\tNM:i:0", dna.ReverseComplement(pairs[0].R2)),
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Fatalf("multi-contig paired SAM drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestSingleContigByteIdentity is the refactor's differential guard: on a
// single-contig reference, single-end and paired SAM output must be
// byte-identical to the pre-multi-contig implementation's captured output
// (testdata/single_contig_{se,pe}.sam, generated at the seed commit).
func TestSingleContigByteIdentity(t *testing.T) {
	cfg := simdata.DefaultGenomeConfig(60_000)
	cfg.Seed = 11
	genome := simdata.Genome(cfg)

	reads, err := simdata.SimulateReads(genome, simdata.Illumina100, 80, 12)
	if err != nil {
		t.Fatal(err)
	}
	seqs := make([][]byte, len(reads))
	for i, r := range reads {
		seqs[i] = r.Seq
	}
	m, err := New(genome, Config{ReadLen: 100, MaxE: 4, Traceback: true, BothStrands: true})
	if err != nil {
		t.Fatal(err)
	}
	mappings, _, err := m.MapReads(seqs, 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSAM(&buf, SingleContig("chrSim", genome), nil, seqs, mappings); err != nil {
		t.Fatal(err)
	}
	wantSE, err := os.ReadFile("testdata/single_contig_se.sam")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), wantSE) {
		t.Fatalf("single-end single-contig SAM drifted from the pre-refactor capture (%d vs %d bytes)",
			buf.Len(), len(wantSE))
	}

	simPairs, err := simdata.SimulatePairs(genome, simdata.Illumina100, 60, 400, 40, 13)
	if err != nil {
		t.Fatal(err)
	}
	pairs := make([]ReadPair, len(simPairs))
	for i, p := range simPairs {
		pairs[i] = ReadPair{R1: p.R1.Seq, R2: p.R2.Seq}
	}
	resolved, _, err := m.MapPairs(pairs, 4, InsertWindow{Min: 200, Max: 600})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WritePairedSAM(&buf, SingleContig("chrSim", genome), nil, pairs, resolved); err != nil {
		t.Fatal(err)
	}
	wantPE, err := os.ReadFile("testdata/single_contig_pe.sam")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), wantPE) {
		t.Fatalf("paired single-contig SAM drifted from the pre-refactor capture (%d vs %d bytes)",
			buf.Len(), len(wantPE))
	}
}

// TestEstimateInsertWindowSkipsSplitPairs: mates uniquely mapped to
// different contigs are not fragments; they must not enter the insert
// sample even when their contig-relative coordinates look plausible.
func TestEstimateInsertWindowSkipsSplitPairs(t *testing.T) {
	const L = 100
	var mappings []Mapping
	// 20 clean same-contig pairs with insert 300.
	for i := 0; i < 20; i++ {
		mappings = append(mappings,
			Mapping{ReadID: 2 * i, Contig: 0, Pos: 1000 + i},
			Mapping{ReadID: 2*i + 1, Contig: 0, Pos: 1200 + i},
		)
	}
	// 10 split pairs whose contig-relative gap would fake insert 1100.
	for i := 20; i < 30; i++ {
		mappings = append(mappings,
			Mapping{ReadID: 2 * i, Contig: 0, Pos: 500},
			Mapping{ReadID: 2*i + 1, Contig: 1, Pos: 1500},
		)
	}
	win, est, ok := EstimateInsertWindow(mappings, L, 0)
	if !ok {
		t.Fatalf("estimate failed: %+v", est)
	}
	if est.SampledPairs != 20 {
		t.Fatalf("sampled %d pairs, want 20 (split pairs excluded)", est.SampledPairs)
	}
	if est.Mean < 295 || est.Mean > 305 {
		t.Fatalf("split pairs skewed the mean: %.1f", est.Mean)
	}
	if win.Max >= 1100 {
		t.Fatalf("window stretched to cover split pairs: %+v", win)
	}
}

// TestPartialInsertWindow exercises the lone-bound semantics end to end:
// one explicit bound is kept verbatim and the other estimated from the
// data; inverted combinations are rejected, before mapping for explicit
// windows and after estimation for impossible partial ones.
func TestPartialInsertWindow(t *testing.T) {
	g := testGenome(150_000)
	simPairs, err := simdata.SimulatePairs(g, simdata.Illumina100, 300, 400, 30, 61)
	if err != nil {
		t.Fatal(err)
	}
	pairs := make([]ReadPair, len(simPairs))
	for i, p := range simPairs {
		pairs[i] = ReadPair{R1: p.R1.Seq, R2: p.R2.Seq}
	}
	m, err := New(g, Config{ReadLen: 100, MaxE: 4})
	if err != nil {
		t.Fatal(err)
	}

	// Fully estimated window, the baseline.
	_, full, err := m.MapPairs(pairs, 4, InsertWindow{})
	if err != nil {
		t.Fatal(err)
	}
	if full.InsertSampledPairs == 0 {
		t.Fatal("baseline estimate drew no sample")
	}

	// Pin the minimum, estimate the maximum.
	_, st, err := m.MapPairs(pairs, 4, InsertWindow{Min: 150})
	if err != nil {
		t.Fatal(err)
	}
	if st.InsertWindowMin != 150 {
		t.Fatalf("pinned minimum not kept: %d", st.InsertWindowMin)
	}
	if st.InsertWindowMax != full.InsertWindowMax {
		t.Fatalf("estimated maximum %d differs from the full estimate's %d",
			st.InsertWindowMax, full.InsertWindowMax)
	}
	if st.InsertSampledPairs == 0 {
		t.Fatal("partial estimation recorded no sample")
	}

	// Pin the maximum, estimate the minimum.
	_, st, err = m.MapPairs(pairs, 4, InsertWindow{Max: 900})
	if err != nil {
		t.Fatal(err)
	}
	if st.InsertWindowMax != 900 || st.InsertWindowMin != full.InsertWindowMin {
		t.Fatalf("window [%d,%d], want [%d,900]", st.InsertWindowMin, st.InsertWindowMax, full.InsertWindowMin)
	}

	// A pinned minimum above the estimated maximum cannot form a window.
	if _, _, err := m.MapPairs(pairs, 4, InsertWindow{Min: full.InsertWindowMax + 1000}); err == nil {
		t.Fatal("inverted estimated window accepted")
	} else if !strings.Contains(err.Error(), "inverted") {
		t.Fatalf("error does not name the inversion: %v", err)
	}

	// Explicit inversions are rejected up front, on both pair paths.
	if _, _, err := m.MapPairs(pairs, 4, InsertWindow{Min: 400, Max: 300}); err == nil {
		t.Fatal("explicit inverted window accepted")
	}
	ch := make(chan PairRead)
	close(ch)
	if _, _, err := m.MapPairStream(ch, 4, InsertWindow{Min: 400, Max: 300}); err == nil {
		t.Fatal("explicit inverted window accepted by MapPairStream")
	}
}
