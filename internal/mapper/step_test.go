package mapper

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dna"
)

// steppedOracle is mapOracle restricted to step-aligned contig-relative
// window starts: the semantics the stepped CSR build must reproduce.
func steppedOracle(r *Reference, k, step int) map[uint32][]int64 {
	oracle := make(map[uint32][]int64)
	mask := uint32(1)<<(2*k) - 1
	for ci := 0; ci < r.NumContigs(); ci++ {
		off := r.ContigOff(ci)
		var key uint32
		valid := 0
		for i, b := range r.ContigSeq(ci) {
			code, ok := dna.Code(b)
			if !ok {
				valid = 0
				key = 0
				continue
			}
			key = (key<<2 | uint32(code)) & mask
			valid++
			if valid >= k && (i-k+1)%step == 0 {
				oracle[key] = append(oracle[key], int64(off+i-k+1))
			}
		}
	}
	return oracle
}

// testReference builds a small multi-contig reference with some 'N's.
func testReference(t testing.TB, rng *rand.Rand, contigs, each int) *Reference {
	t.Helper()
	recs := make([]dna.Record, contigs)
	for i := range recs {
		recs[i] = dna.Record{Name: fmt.Sprintf("chr%d", i+1), Seq: randomRefWithNs(rng, each, 0.002)}
	}
	r, err := NewReference(recs)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestSteppedIndexIdentityAtStepOne pins the tentpole's compatibility
// requirement bit-for-bit: a step-1 stepped build and the unstepped build
// are the same index, arrays and all.
func TestSteppedIndexIdentityAtStepOne(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	r := testReference(t, rng, 3, 10_000)
	plain, err := NewReferenceIndex(r, 11)
	if err != nil {
		t.Fatal(err)
	}
	stepped, err := NewSteppedReferenceIndex(r, 11, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.offsets, stepped.offsets) ||
		!reflect.DeepEqual(plain.keys, stepped.keys) ||
		!reflect.DeepEqual(plain.pos, stepped.pos) ||
		plain.shift != stepped.shift || plain.distinct != stepped.distinct {
		t.Fatal("step-1 build differs from the unstepped build")
	}
	if plain.Step() != 1 || stepped.Step() != 1 {
		t.Fatalf("Step() = %d/%d, want 1/1", plain.Step(), stepped.Step())
	}
}

// TestSteppedIndexMatchesOracle holds the stepped build to the sampled-map
// semantics across steps, including steps that do not divide the contig
// length (phase anchors at each contig start, not globally).
func TestSteppedIndexMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	r := testReference(t, rng, 3, 7_003) // prime-ish lengths: junction phases differ
	k := 11
	for _, step := range []int{1, 2, 3, 5, 8, 16} {
		idx, err := NewSteppedReferenceIndex(r, k, step)
		if err != nil {
			t.Fatal(err)
		}
		oracle := steppedOracle(r, k, step)
		total := 0
		for _, hits := range oracle {
			total += len(hits)
		}
		if idx.Entries() != total {
			t.Fatalf("step=%d: entries %d, oracle %d", step, idx.Entries(), total)
		}
		if idx.DistinctKmers() != len(oracle) {
			t.Fatalf("step=%d: distinct %d, oracle %d", step, idx.DistinctKmers(), len(oracle))
		}
		seq := r.Seq()
		for i := 0; i+k <= len(seq); i += 5 {
			seed := seq[i : i+k]
			if dna.HasN(seed) {
				continue
			}
			got := idx.Lookup(seed)
			want := oracle[packKey(seed)]
			if len(got) != len(want) {
				t.Fatalf("step=%d seed@%d: %d hits, want %d", step, i, len(got), len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("step=%d seed@%d: hit[%d]=%d, want %d", step, i, j, got[j], want[j])
				}
			}
		}
	}
}

// TestSteppedShardedBuildIdentity extends the shard-count invariance oracle
// to stepped builds: the arrays must be bit-identical however the contigs
// are sharded.
func TestSteppedShardedBuildIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	r := testReference(t, rng, 7, 4_001)
	for _, step := range []int{3, 8} {
		seq, err := buildReferenceIndex(r, 11, step, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, maxShards := range []int{2, 3, 7, 64} {
			par, err := buildReferenceIndex(r, 11, step, maxShards)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seq.offsets, par.offsets) ||
				!reflect.DeepEqual(seq.keys, par.keys) ||
				!reflect.DeepEqual(seq.pos, par.pos) {
				t.Fatalf("step=%d maxShards=%d: sharded build differs from sequential", step, maxShards)
			}
		}
	}
}

// TestSteppedMappingFindsPlantedReads is the lookup/seeding sync guarantee:
// with the step recorded in the index, an error-free read planted at ANY
// phase offset — aligned to the sampling grid or not — must still map at
// its true position, on every contig.
func TestSteppedMappingFindsPlantedReads(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	recs := []dna.Record{
		{Name: "chr1", Seq: dna.RandomSeq(rng, 9_001)},
		{Name: "chr2", Seq: dna.RandomSeq(rng, 6_007)},
	}
	r, err := NewReference(recs)
	if err != nil {
		t.Fatal(err)
	}
	const L = 64
	for _, step := range []int{2, 5, 13} {
		m, err := NewFromReference(r, Config{ReadLen: L, MaxE: 3, SeedLen: 11, SeedStep: step})
		if err != nil {
			t.Fatal(err)
		}
		if got := m.Index().Step(); got != step {
			t.Fatalf("index step %d, want %d", got, step)
		}
		var reads [][]byte
		type want struct{ contig, pos int }
		var wants []want
		for ci := 0; ci < r.NumContigs(); ci++ {
			cs := r.ContigSeq(ci)
			// Every phase of the sampling grid, plus a tail position.
			for ph := 0; ph < step+2; ph++ {
				pos := 100 + ph
				reads = append(reads, cs[pos:pos+L])
				wants = append(wants, want{ci, pos})
			}
			reads = append(reads, cs[len(cs)-L:])
			wants = append(wants, want{ci, len(cs) - L})
		}
		mappings, _, err := m.MapReads(reads, 2)
		if err != nil {
			t.Fatal(err)
		}
		found := make([]bool, len(reads))
		for _, mp := range mappings {
			if mp.Contig == wants[mp.ReadID].contig && mp.Pos == wants[mp.ReadID].pos && mp.Distance == 0 {
				found[mp.ReadID] = true
			}
		}
		for i, ok := range found {
			if !ok {
				t.Errorf("step=%d: read %d (contig %d pos %d) not mapped at its true position",
					step, i, wants[i].contig, wants[i].pos)
			}
		}
	}
}

// TestSeedStepValidation pins the config- and index-level step guards.
func TestSeedStepValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	r := SingleContig("", dna.RandomSeq(rng, 2_000))
	if _, err := NewSteppedReferenceIndex(r, 11, 0); err == nil {
		t.Error("step 0 accepted at the index level")
	}
	if _, err := NewSteppedReferenceIndex(r, 11, MaxSeedStep+1); err == nil {
		t.Error("step beyond MaxSeedStep accepted")
	}
	if _, err := NewFromReference(r, Config{ReadLen: 50, MaxE: 2, SeedLen: 13, SeedStep: -1}); err == nil {
		t.Error("negative SeedStep accepted")
	}
	// Probe span must fit the read: ReadLen-SeedLen+1 is the largest step
	// that still guarantees one in-read probe per grid phase.
	if _, err := NewFromReference(r, Config{ReadLen: 50, MaxE: 2, SeedLen: 13, SeedStep: 39}); err == nil {
		t.Error("SeedStep beyond the probe span accepted")
	}
	if _, err := NewFromReference(r, Config{ReadLen: 50, MaxE: 2, SeedLen: 13, SeedStep: 38}); err != nil {
		t.Errorf("largest legal SeedStep rejected: %v", err)
	}
}
