package mapper

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/dna"
)

// serializeToBytes round-trips the index through an in-memory buffer.
func serializeToBytes(t *testing.T, x *Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := x.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestIndexSerializeRoundTrip pins the load to bit-identical arrays: every
// slab of the loaded index equals the built one, across steps and across
// an index whose keys slab needs padding (odd entry count).
func TestIndexSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	r := testReference(t, rng, 3, 8_009)
	for _, step := range []int{1, 4} {
		built, err := NewSteppedReferenceIndex(r, 11, step)
		if err != nil {
			t.Fatal(err)
		}
		data := serializeToBytes(t, built)
		loaded, err := LoadIndex(bytes.NewReader(data), r)
		if err != nil {
			t.Fatalf("step=%d: %v", step, err)
		}
		if loaded.K() != built.K() || loaded.Step() != built.Step() ||
			loaded.shift != built.shift || loaded.distinct != built.distinct {
			t.Fatalf("step=%d: scalar fields differ after round trip", step)
		}
		if !reflect.DeepEqual(built.offsets, loaded.offsets) {
			t.Fatalf("step=%d: offsets differ after round trip", step)
		}
		if len(built.keys) != len(loaded.keys) || len(built.pos) != len(loaded.pos) {
			t.Fatalf("step=%d: entry count differs after round trip", step)
		}
		for i := range built.keys {
			if built.keys[i] != loaded.keys[i] || built.pos[i] != loaded.pos[i] {
				t.Fatalf("step=%d: entry %d differs after round trip", step, i)
			}
		}
		// Behavior, not just representation: every reference window looks up
		// identically in both.
		seq := r.Seq()
		for i := 0; i+11 <= len(seq); i += 13 {
			a, b := built.Lookup(seq[i:i+11]), loaded.Lookup(seq[i:i+11])
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("step=%d: Lookup@%d differs after round trip", step, i)
			}
		}
	}
}

// TestIndexSerializeEmpty pins the zero-entry edge: a reference of only
// undefined bases serializes and loads with no entries and nil lookups.
func TestIndexSerializeEmpty(t *testing.T) {
	seq := bytes.Repeat([]byte{'N'}, 500)
	copy(seq, "ACGTACGTACG") // 11 defined bases < k=13: still zero indexable windows
	r := SingleContig("chrN", seq)
	built, err := NewSteppedReferenceIndex(r, 13, 1)
	if err != nil {
		t.Fatal(err)
	}
	if built.Entries() != 0 {
		t.Fatalf("expected an empty index, got %d entries", built.Entries())
	}
	loaded, err := LoadIndex(bytes.NewReader(serializeToBytes(t, built)), r)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Entries() != 0 || loaded.DistinctKmers() != 0 {
		t.Fatalf("loaded empty index has %d entries", loaded.Entries())
	}
	if got := loaded.Lookup([]byte("ACGTACGTACGTA")); got != nil {
		t.Fatalf("empty index returned %d hits", len(got))
	}
}

// TestIndexFileRoundTripMappingIdentity is the differential oracle the
// tentpole demands: build → serialize → load → map must produce SAM output
// byte-for-byte identical to build → map, through the full pipeline
// (NewFromSerializedIndex, with the config adopting the file's geometry).
func TestIndexFileRoundTripMappingIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	r := testReference(t, rng, 4, 6_007)
	for _, step := range []int{1, 3} {
		idx, err := NewSteppedReferenceIndex(r, 11, step)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "ref.gkix")
		if err := idx.SerializeToFile(path); err != nil {
			t.Fatal(err)
		}

		const L = 72
		var reads [][]byte
		var names []string
		for i := 0; i < 300; i++ {
			ci := rng.Intn(r.NumContigs())
			cs := r.ContigSeq(ci)
			p := rng.Intn(len(cs) - L)
			read := append([]byte(nil), cs[p:p+L]...)
			// Sprinkle a few substitutions so verification works too.
			for e := 0; e < rng.Intn(3); e++ {
				read[rng.Intn(L)] = "ACGT"[rng.Intn(4)]
			}
			reads = append(reads, read)
			names = append(names, fmt.Sprintf("r%d", i))
		}

		cfg := Config{ReadLen: L, MaxE: 3, SeedLen: 11, SeedStep: step, Traceback: true}
		mem, err := NewFromReference(r, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Adopt geometry from the file: zero SeedLen/SeedStep.
		disk, err := NewFromSerializedIndex(r, path, Config{ReadLen: L, MaxE: 3, Traceback: true})
		if err != nil {
			t.Fatal(err)
		}
		if disk.Index().K() != 11 || disk.Index().Step() != step {
			t.Fatalf("adopted geometry k=%d step=%d, want 11/%d", disk.Index().K(), disk.Index().Step(), step)
		}

		memMaps, _, err := mem.MapReads(reads, 2)
		if err != nil {
			t.Fatal(err)
		}
		diskMaps, _, err := disk.MapReads(reads, 2)
		if err != nil {
			t.Fatal(err)
		}
		var memSAM, diskSAM bytes.Buffer
		if err := WriteSAM(&memSAM, r, names, reads, memMaps); err != nil {
			t.Fatal(err)
		}
		if err := WriteSAM(&diskSAM, r, names, reads, diskMaps); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(memSAM.Bytes(), diskSAM.Bytes()) {
			t.Fatalf("step=%d: SAM output differs between in-memory and loaded index", step)
		}
		if memSAM.Len() == 0 {
			t.Fatal("differential oracle vacuous: no SAM output")
		}
	}
}

// TestNewFromSerializedIndexGeometryMismatch: a non-zero config geometry
// that disagrees with the file is an error, never a silent rebuild.
func TestNewFromSerializedIndexGeometryMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	r := testReference(t, rng, 2, 4_001)
	idx, err := NewSteppedReferenceIndex(r, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ref.gkix")
	if err := idx.SerializeToFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFromSerializedIndex(r, path, Config{ReadLen: 100, MaxE: 2, SeedLen: 13}); !errors.Is(err, ErrIndexMismatch) {
		t.Fatalf("SeedLen mismatch: got %v, want ErrIndexMismatch", err)
	}
	if _, err := NewFromSerializedIndex(r, path, Config{ReadLen: 100, MaxE: 2, SeedStep: 2}); !errors.Is(err, ErrIndexMismatch) {
		t.Fatalf("SeedStep mismatch: got %v, want ErrIndexMismatch", err)
	}
	if _, err := NewFromSerializedIndex(r, path, Config{ReadLen: 100, MaxE: 2, SeedLen: 12, SeedStep: 3}); err != nil {
		t.Fatalf("matching explicit geometry rejected: %v", err)
	}
}

// TestLoadIndexCorruption drives every named failure path with errors.Is.
func TestLoadIndexCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	r := testReference(t, rng, 2, 5_003)
	idx, err := NewSteppedReferenceIndex(r, 11, 2)
	if err != nil {
		t.Fatal(err)
	}
	good := serializeToBytes(t, idx)

	load := func(data []byte) error {
		_, err := LoadIndex(bytes.NewReader(data), r)
		return err
	}
	if err := load(good); err != nil {
		t.Fatalf("pristine file failed to load: %v", err)
	}

	// Truncation at several depths: inside the header, inside the arrays,
	// inside the trailer.
	for _, n := range []int{0, 10, indexHeaderLen - 1, indexHeaderLen + 5, len(good) / 2, len(good) - 9, len(good) - 1} {
		if err := load(good[:n]); !errors.Is(err, ErrIndexTruncated) {
			t.Errorf("truncated at %d of %d: got %v, want ErrIndexTruncated", n, len(good), err)
		}
	}

	corrupt := func(off int, b byte) []byte {
		c := append([]byte(nil), good...)
		c[off] ^= b
		return c
	}
	if err := load(corrupt(0, 0xff)); !errors.Is(err, ErrIndexMagic) {
		t.Errorf("bad magic: got %v, want ErrIndexMagic", err)
	}
	if err := load(corrupt(8, 0xff)); !errors.Is(err, ErrIndexMagic) {
		t.Errorf("bad byte-order marker: got %v, want ErrIndexMagic", err)
	}
	if err := load(corrupt(4, 0x02)); !errors.Is(err, ErrIndexVersion) {
		t.Errorf("bad version: got %v, want ErrIndexVersion", err)
	}
	if err := load(corrupt(16, 0xff)); !errors.Is(err, ErrIndexGeometry) {
		t.Errorf("absurd k: got %v, want ErrIndexGeometry", err)
	}
	if err := load(corrupt(40, 0x01)); !errors.Is(err, ErrIndexGeometry) {
		t.Errorf("non-power-of-two bucket count: got %v, want ErrIndexGeometry", err)
	}
	if err := load(corrupt(64, 0x01)); !errors.Is(err, ErrIndexMismatch) {
		t.Errorf("wrong reference length: got %v, want ErrIndexMismatch", err)
	}
	if err := load(corrupt(80, 0x01)); !errors.Is(err, ErrIndexMismatch) {
		t.Errorf("wrong reference fingerprint: got %v, want ErrIndexMismatch", err)
	}
	// One flipped bit anywhere in the payload must fail the checksum.
	for _, off := range []int{indexHeaderLen, indexHeaderLen + 8*len(idx.offsets), len(good) - 9} {
		if err := load(corrupt(off, 0x10)); !errors.Is(err, ErrIndexChecksum) {
			t.Errorf("payload flip at %d: got %v, want ErrIndexChecksum", off, err)
		}
	}
	// A flipped trailer byte is also a checksum mismatch (stored != computed).
	if err := load(corrupt(len(good)-1, 0x10)); !errors.Is(err, ErrIndexChecksum) {
		t.Errorf("trailer flip: got %v, want ErrIndexChecksum", err)
	}

	// Wrong reference entirely.
	other := testReference(t, rand.New(rand.NewSource(35)), 2, 5_003)
	if _, err := LoadIndex(bytes.NewReader(good), other); !errors.Is(err, ErrIndexMismatch) {
		t.Errorf("wrong reference: got %v, want ErrIndexMismatch", err)
	}
	// Same sequence, renamed contig: the fingerprint covers names too.
	renamed := []dna.Record{}
	for i, c := range r.Contigs() {
		name := c.Name
		if i == 0 {
			name = "renamed"
		}
		renamed = append(renamed, dna.Record{Name: name, Seq: r.ContigSeq(i)})
	}
	rr, err := NewReference(renamed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadIndex(bytes.NewReader(good), rr); !errors.Is(err, ErrIndexMismatch) {
		t.Errorf("renamed contig: got %v, want ErrIndexMismatch", err)
	}
}
