package mapper

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/align"
	"repro/internal/dna"
	"repro/internal/gkgpu"
)

// PairStreamFilter is a PreFilter with an order-preserving streaming path
// over materialized pairs, in the shape of gkgpu.Engine.FilterStream: many
// producers may feed in, results come back in send order, and StreamErr
// reports a terminal failure after the result channel closes.
type PairStreamFilter interface {
	PreFilter
	FilterStream(ctx context.Context, in <-chan gkgpu.Pair, errThreshold int) (<-chan gkgpu.Result, error)
	StreamErr() error
}

// CandidateStreamFilter is a CandidateFilter whose index-named path also
// streams: candidates carry the read bytes and a reference offset, and the
// filter extracts the window from its own device-resident reference.
// gkgpu.Engine implements it; MapStream prefers this path because no
// reference window is ever materialized on the host.
type CandidateStreamFilter interface {
	CandidateFilter
	FilterCandidateStream(ctx context.Context, in <-chan gkgpu.StreamCandidate, errThreshold int) (<-chan gkgpu.Result, error)
	StreamErr() error
}

// streamQuery is one oriented sequence to map: the read itself, or its
// reverse complement under Config.BothStrands. It carries the sequence
// directly — the pipeline keeps no global read table, so on the channel-fed
// ingestion paths a read's bytes are garbage once its candidates are
// verified.
type streamQuery struct {
	readID  int
	reverse bool
	seq     []byte
}

// candMeta identifies the candidate behind one in-flight filtration.
type candMeta struct {
	q   streamQuery
	pos int64
}

// metaQueue is the FIFO matching stream results back to their candidates:
// the feeder pushes a candidate's metadata immediately before sending it
// into the filter stream, and because the stream preserves input order, the
// consumer pops in lockstep with arriving results. It is unbounded so the
// feeder never deadlocks against the stream's internal buffering.
type metaQueue struct {
	mu   sync.Mutex
	q    []candMeta
	head int
}

func (m *metaQueue) push(c candMeta) {
	m.mu.Lock()
	m.q = append(m.q, c)
	m.mu.Unlock()
}

func (m *metaQueue) pop() candMeta {
	m.mu.Lock()
	c := m.q[m.head]
	m.head++
	if m.head == len(m.q) {
		m.q, m.head = m.q[:0], 0
	} else if m.head >= 4096 {
		m.q = append(m.q[:0], m.q[m.head:]...)
		m.head = 0
	}
	m.mu.Unlock()
	return c
}

// verifyJob is one accepted candidate awaiting banded-DP verification.
type verifyJob struct {
	q         streamQuery
	pos       int64
	undefined bool
}

// mapQueryStream is the engine room shared by MapStream, MapReadStream, and
// MapPairStream: a pool of seeding workers consumes oriented queries from
// feed, candidates flow through the configured filter's streaming path, and
// a verification pool consumes accepted candidates concurrently, so seeding,
// pre-alignment filtering, and banded-DP verification overlap instead of
// running as synchronized phases.
//
// feed runs in its own goroutine and must send every query with a select on
// ctx.Done() (the pipeline stops consuming on terminal errors); a non-nil
// return is reported as the run's error. feed is always run to completion
// before mapQueryStream returns, so state it captures is safe to read
// afterwards.
//
// The filter stage adapts to what Config.Filter supports: the index-named
// candidate stream (CandidateStreamFilter, gkgpu.Engine's path — reads ship
// to the device once per candidate, reference windows stay device-resident),
// a materialized-pair stream (PairStreamFilter), an inline one-shot filter
// (any other PreFilter, called per seeded read), or no filter at all.
// Config.StreamWorkers sizes the seeding and verification pools.
func (m *Mapper) mapQueryStream(e int, feed func(ctx context.Context, out chan<- streamQuery) error) ([]Mapping, Stats, error) {
	if e > m.cfg.MaxE {
		return nil, Stats{}, fmt.Errorf("mapper: threshold %d exceeds configured %d", e, m.cfg.MaxE)
	}
	totalStart := time.Now()
	L := m.cfg.ReadLen
	ref := m.idx.seq

	workers := m.cfg.StreamWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Filter mode resolution, most to least integrated.
	var candSF CandidateStreamFilter
	var pairSF PairStreamFilter
	if sf, ok := m.candFilter.(CandidateStreamFilter); ok && m.candFilter != nil {
		candSF = sf
	} else if sf, ok := m.cfg.Filter.(PairStreamFilter); ok {
		pairSF = sf
	}

	var engBefore gkgpu.Stats
	if eng, ok := m.cfg.Filter.(*gkgpu.Engine); ok {
		engBefore = eng.Stats()
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var errOnce sync.Once
	var firstErr error
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err; cancel() })
	}

	// Open the filter stream before any worker starts so an open failure
	// needs no pipeline teardown.
	var out <-chan gkgpu.Result
	var candIn chan gkgpu.StreamCandidate
	var pairIn chan gkgpu.Pair
	var err error
	switch {
	case candSF != nil:
		candIn = make(chan gkgpu.StreamCandidate)
		out, err = candSF.FilterCandidateStream(ctx, candIn, e)
	case pairSF != nil:
		pairIn = make(chan gkgpu.Pair)
		out, err = pairSF.FilterStream(ctx, pairIn, e)
	}
	if err != nil {
		return nil, Stats{}, fmt.Errorf("mapper: opening filter stream: %w", err)
	}

	var readCount, candCount, rejectCount, verifCount, undefCount atomic.Int64
	var timeMu sync.Mutex
	var seedBusy, verifyBusy, inlineFilterBusy float64

	// Verification pool: accepted candidates to banded DP, mappings into
	// per-worker slices merged (and sorted) at the end.
	verifyJobs := make(chan verifyJob, 4*workers)
	perWorker := make([][]Mapping, workers)
	var verifyWg sync.WaitGroup
	for w := 0; w < workers; w++ {
		verifyWg.Add(1)
		go func(w int) {
			defer verifyWg.Done()
			var local []Mapping
			var busy float64
			for j := range verifyJobs {
				t0 := time.Now()
				verifCount.Add(1)
				if j.undefined {
					undefCount.Add(1)
				}
				window := ref[j.pos : int(j.pos)+L]
				ci, rel := m.ref.Locate(int(j.pos))
				if m.cfg.Traceback {
					if al, ok := align.Align(j.q.seq, window, e); ok {
						local = append(local, Mapping{ReadID: j.q.readID, Contig: ci, Pos: rel,
							Distance: al.Distance, CIGAR: al.CIGARCompat(), Reverse: j.q.reverse})
					}
				} else if d, ok := align.DistanceBanded(j.q.seq, window, e); ok {
					local = append(local, Mapping{ReadID: j.q.readID, Contig: ci, Pos: rel,
						Distance: d, Reverse: j.q.reverse})
				}
				busy += time.Since(t0).Seconds()
			}
			timeMu.Lock()
			verifyBusy += busy
			perWorker[w] = local
			timeMu.Unlock()
		}(w)
	}

	// Seeding pool: oriented queries in, per-query candidate lists out.
	type seeded struct {
		q     streamQuery
		cands []int64
	}
	jobs := make(chan streamQuery)
	seededCh := make(chan seeded, 2*workers)
	var seedWg sync.WaitGroup
	for w := 0; w < workers; w++ {
		seedWg.Add(1)
		go func() {
			defer seedWg.Done()
			var busy float64
			defer func() {
				timeMu.Lock()
				seedBusy += busy
				timeMu.Unlock()
			}()
			for q := range jobs {
				if !q.reverse {
					readCount.Add(1)
				}
				t0 := time.Now()
				cands := m.candidates(q.seq, e)
				busy += time.Since(t0).Seconds()
				select {
				case seededCh <- seeded{q: q, cands: cands}:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		defer close(jobs)
		if err := feed(ctx, jobs); err != nil {
			fail(err)
		}
	}()
	go func() {
		seedWg.Wait()
		close(seededCh)
	}()

	// Dispatch stage: route seeded candidates to the filter and the filter's
	// verdicts to the verification pool.
	dispatchDone := make(chan struct{})
	if out != nil {
		// Streaming filter: a feeder serializes candidates into the stream
		// (recording each one's metadata in send order) and a consumer matches
		// results back and forwards accepted candidates to verification.
		metas := &metaQueue{}
		go func() {
			// This goroutine is the channel's only sender, so it closes; the
			// defer runs after the seededCh range (and so after seedWg.Wait)
			// has finished.
			if candIn != nil {
				defer close(candIn)
			} else {
				defer close(pairIn)
			}
			for s := range seededCh {
				for _, pos := range s.cands {
					candCount.Add(1)
					metas.push(candMeta{q: s.q, pos: pos})
					if candIn != nil {
						select {
						case candIn <- gkgpu.StreamCandidate{Read: s.q.seq, Pos: pos}:
						case <-ctx.Done():
							return
						}
					} else {
						select {
						case pairIn <- gkgpu.Pair{Read: s.q.seq, Ref: ref[pos : int(pos)+L]}:
						case <-ctx.Done():
							return
						}
					}
				}
			}
		}()
		go func() {
			defer close(dispatchDone)
			defer close(verifyJobs)
			for r := range out {
				mt := metas.pop()
				if !r.Accept {
					rejectCount.Add(1)
					continue
				}
				select {
				case verifyJobs <- verifyJob{q: mt.q, pos: mt.pos, undefined: r.Undefined}:
				case <-ctx.Done():
					for range out { // let the stream drain and close
					}
					return
				}
			}
			var serr error
			if candSF != nil {
				serr = candSF.StreamErr()
			} else {
				serr = pairSF.StreamErr()
			}
			if serr != nil {
				fail(fmt.Errorf("mapper: streaming pre-alignment filter: %w", serr))
			}
		}()
	} else {
		// Inline filter (or none): one dispatcher filters each seeded read's
		// candidates in place — the filter stage still overlaps seeding and
		// verification, just without the device pipeline.
		go func() {
			defer close(dispatchDone)
			defer close(verifyJobs)
			for s := range seededCh {
				if len(s.cands) == 0 {
					continue
				}
				candCount.Add(int64(len(s.cands)))
				var verdicts []gkgpu.Result
				if m.cfg.Filter != nil {
					pairs := make([]gkgpu.Pair, len(s.cands))
					for i, pos := range s.cands {
						pairs[i] = gkgpu.Pair{Read: s.q.seq, Ref: ref[pos : int(pos)+L]}
					}
					t0 := time.Now()
					res, ferr := m.cfg.Filter.FilterPairs(pairs, e)
					timeMu.Lock()
					inlineFilterBusy += time.Since(t0).Seconds()
					timeMu.Unlock()
					if ferr != nil {
						fail(fmt.Errorf("mapper: pre-alignment filter: %w", ferr))
						return
					}
					verdicts = res
				}
				for i, pos := range s.cands {
					j := verifyJob{q: s.q, pos: pos}
					if verdicts != nil {
						if !verdicts[i].Accept {
							rejectCount.Add(1)
							continue
						}
						j.undefined = verdicts[i].Undefined
					}
					select {
					case verifyJobs <- j:
					case <-ctx.Done():
						return
					}
				}
			}
		}()
	}

	<-dispatchDone
	verifyWg.Wait()
	if firstErr != nil {
		return nil, Stats{}, firstErr
	}

	var mappings []Mapping
	for _, local := range perWorker {
		mappings = append(mappings, local...)
	}
	sortMappings(mappings)

	var st Stats
	st.Reads = readCount.Load()
	st.CandidatePairs = candCount.Load()
	st.RejectedPairs = rejectCount.Load()
	st.VerificationPairs = verifCount.Load()
	st.UndefinedPairs = undefCount.Load()
	st.Mappings = int64(len(mappings))
	mapped := make(map[int]bool)
	for _, mp := range mappings {
		mapped[mp.ReadID] = true
	}
	st.MappedReads = int64(len(mapped))
	st.SeedSeconds = seedBusy
	st.VerifySeconds = verifyBusy
	st.FilterWallSeconds = inlineFilterBusy
	if eng, ok := m.cfg.Filter.(*gkgpu.Engine); ok {
		d := eng.Stats()
		st.FilterKernelModel = d.KernelSeconds - engBefore.KernelSeconds
		st.FilterModelSeconds = d.FilterSeconds - engBefore.FilterSeconds
		st.FilterPrepModel = d.HostPrepSeconds - engBefore.HostPrepSeconds
		if out != nil {
			// The stream's open wall overlaps the other stages; report it as
			// the filter's wall without adding it to the stage decomposition.
			st.FilterWallSeconds = d.WallSeconds - engBefore.WallSeconds
		}
	}
	st.TotalSeconds = time.Since(totalStart).Seconds()
	st.PipelineWallSeconds = st.TotalSeconds
	return mappings, st, nil
}

// MapStream is the streaming counterpart of MapReads over a materialized
// read set: decisions and output are byte-identical to MapReads — same
// mappings, same order — only the execution schedule (and therefore the
// wall clock) differs. For reads arriving from a decoder or the network,
// MapReadStream is the channel-fed form.
func (m *Mapper) MapStream(reads [][]byte, e int) ([]Mapping, Stats, error) {
	if e > m.cfg.MaxE {
		return nil, Stats{}, fmt.Errorf("mapper: threshold %d exceeds configured %d", e, m.cfg.MaxE)
	}
	for i, r := range reads {
		if len(r) != m.cfg.ReadLen {
			return nil, Stats{}, fmt.Errorf("mapper: read %d has length %d, mapper built for %d",
				i, len(r), m.cfg.ReadLen)
		}
	}
	mappings, st, err := m.mapQueryStream(e, func(ctx context.Context, out chan<- streamQuery) error {
		for ri, read := range reads {
			if !sendQuery(ctx, out, streamQuery{readID: ri, seq: read}) {
				return nil
			}
			if m.cfg.BothStrands {
				q := streamQuery{readID: ri, reverse: true, seq: dna.ReverseComplement(read)}
				if !sendQuery(ctx, out, q) {
					return nil
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, Stats{}, err
	}
	st.Reads = int64(len(reads))
	return mappings, st, nil
}

// sendQuery sends one query into the pipeline, giving up (false) when the
// pipeline has stopped consuming.
func sendQuery(ctx context.Context, out chan<- streamQuery, q streamQuery) bool {
	select {
	case out <- q:
		return true
	case <-ctx.Done():
		return false
	}
}
