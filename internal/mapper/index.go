// Package mapper implements a seed-and-extend short read mapper in the
// mould of mrFAST (Alkan et al. 2009), the tool the paper integrates
// GateKeeper-GPU into: a k-mer hash index over the reference, pigeonhole
// seeding (e+1 non-overlapping seeds, so any alignment with at most e edits
// preserves one seed exactly), candidate extension, optional pre-alignment
// filtering between seeding and verification, and banded dynamic-programming
// verification — the expensive stage the filter protects.
//
// Two execution paths are offered, mirroring package gkgpu's split.
// Mapper.MapReads is the paper's one-shot pipeline: synchronized phases in
// which a batch of reads is seeded, its candidates are filtered in one
// round, and the survivors are verified, with each phase's wall clock
// reported separately (the accounting of Section 4.5). Mapper.MapStream is
// the throughput-oriented extension: a pool of seeding workers feeds
// candidates into the filter's streaming path — preferring the index-named
// candidate stream (gkgpu.Engine.FilterCandidateStream), where reference
// windows stay in device-resident unified memory — while a verification
// pool consumes accepted candidates concurrently, so seeding, filtering,
// and verification overlap instead of running back to back. Decisions and
// output are byte-identical between the two paths; only the schedule (and
// the wall clock, reported via Stats.PipelineWallSeconds against
// Stats.StageSeconds) differs. Mapper.MapPairs builds paired-end mapping on
// top of the streaming path: both mates of an FR library map in one
// streaming pass and concordant pairs are resolved against an insert-size
// window.
package mapper

import (
	"fmt"

	"repro/internal/dna"
)

// Index is a k-mer hash index over a reference sequence. Every position of
// the reference whose k-window is fully defined (no 'N') is indexed.
type Index struct {
	ref  []byte
	k    int
	hash map[uint32][]int32
}

// DefaultSeedLen is the default k-mer length, in mrFAST's 12-14 range.
const DefaultSeedLen = 13

// NewIndex builds the index. k must be in [8, 16] so a seed packs into one
// 32-bit word.
func NewIndex(ref []byte, k int) (*Index, error) {
	if k < 8 || k > 16 {
		return nil, fmt.Errorf("mapper: seed length %d outside [8,16]", k)
	}
	if len(ref) < k {
		return nil, fmt.Errorf("mapper: reference (%d) shorter than seed (%d)", len(ref), k)
	}
	idx := &Index{ref: ref, k: k, hash: make(map[uint32][]int32, len(ref))}
	var key uint32
	mask := uint32(1)<<(2*k) - 1
	valid := 0 // defined bases in the current window
	for i, b := range ref {
		code, ok := dna.Code(b)
		if !ok {
			valid = 0
			key = 0
			continue
		}
		key = (key<<2 | uint32(code)) & mask
		valid++
		if valid >= k {
			pos := int32(i - k + 1)
			idx.hash[key] = append(idx.hash[key], pos)
		}
	}
	return idx, nil
}

// K returns the seed length.
func (x *Index) K() int { return x.k }

// Ref returns the indexed reference.
func (x *Index) Ref() []byte { return x.ref }

// Lookup returns the reference positions whose k-window equals seed, or nil
// when the seed contains an undefined base or has no hits.
func (x *Index) Lookup(seed []byte) []int32 {
	if len(seed) != x.k {
		return nil
	}
	var key uint32
	for _, b := range seed {
		code, ok := dna.Code(b)
		if !ok {
			return nil
		}
		key = key<<2 | uint32(code)
	}
	return x.hash[key]
}

// DistinctKmers returns the number of distinct indexed k-mers (diagnostics).
func (x *Index) DistinctKmers() int { return len(x.hash) }
