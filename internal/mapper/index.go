// Package mapper implements a seed-and-extend short read mapper in the
// mould of mrFAST (Alkan et al. 2009), the tool the paper integrates
// GateKeeper-GPU into: a k-mer hash index over the reference, pigeonhole
// seeding (e+1 non-overlapping seeds, so any alignment with at most e edits
// preserves one seed exactly), candidate extension, optional pre-alignment
// filtering between seeding and verification, and banded dynamic-programming
// verification — the expensive stage the filter protects.
//
// Two execution paths are offered, mirroring package gkgpu's split.
// Mapper.MapReads is the paper's one-shot pipeline: synchronized phases in
// which a batch of reads is seeded, its candidates are filtered in one
// round, and the survivors are verified, with each phase's wall clock
// reported separately (the accounting of Section 4.5). Mapper.MapStream is
// the throughput-oriented extension: a pool of seeding workers feeds
// candidates into the filter's streaming path — preferring the index-named
// candidate stream (gkgpu.Engine.FilterCandidateStream), where reference
// windows stay in device-resident unified memory — while a verification
// pool consumes accepted candidates concurrently, so seeding, filtering,
// and verification overlap instead of running back to back. Decisions and
// output are byte-identical between the two paths; only the schedule (and
// the wall clock, reported via Stats.PipelineWallSeconds against
// Stats.StageSeconds) differs. Mapper.MapPairs builds paired-end mapping on
// top of the streaming path: both mates of an FR library map in one
// streaming pass and concordant pairs are resolved against an insert-size
// window.
package mapper

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/dna"
)

// Index is a k-mer index over a reference sequence in CSR (compressed
// sparse row) form: one flat positions array grouped by k-mer, addressed
// through a bucket-offset array. Every position of the reference whose
// k-window is fully defined (no 'N') is indexed.
//
// The layout replaces the seed implementation's map[uint32][]int32: a map
// costs a hash probe plus pointer chases per lookup and fragments millions
// of small slices across the heap, while the CSR arrays are built once with
// a two-pass counting sort and answer every Lookup allocation-free with at
// most a short binary search inside one bucket. Buckets are the high bits
// of the packed k-mer key; within a bucket entries are sorted by full key
// (position-stable, so hit lists stay in ascending reference order exactly
// as the map layout appended them).
type Index struct {
	ref []byte
	k   int

	shift   uint     // key -> bucket: bucket = key >> shift
	offsets []uint32 // len nBuckets+1; bucket b spans keys/pos[offsets[b]:offsets[b+1]]
	keys    []uint32 // full k-mer key per indexed position, bucket-grouped, sorted within bucket
	pos     []int32  // reference position per indexed position, same order as keys

	distinct int // number of distinct indexed k-mers
}

// DefaultSeedLen is the default k-mer length, in mrFAST's 12-14 range.
const DefaultSeedLen = 13

// NewIndex builds the index. k must be in [8, 16] so a seed packs into one
// 32-bit key.
func NewIndex(ref []byte, k int) (*Index, error) {
	if k < 8 || k > 16 {
		return nil, fmt.Errorf("mapper: seed length %d outside [8,16]", k)
	}
	if len(ref) < k {
		return nil, fmt.Errorf("mapper: reference (%d) shorter than seed (%d)", len(ref), k)
	}

	// Pass 0: roll the 2-bit hash across the reference once to count
	// indexable windows (those with k defined bases).
	n := 0
	valid := 0
	for _, b := range ref {
		if !dna.IsACGT(b) {
			valid = 0
			continue
		}
		valid++
		if valid >= k {
			n++
		}
	}

	// Bucket geometry: use the full 2k key bits when small enough,
	// otherwise enough high bits for ~2x the entry count (about half an
	// entry per bucket), capped so the offsets array stays proportional to
	// the reference rather than to 4^k.
	bbits := 2 * k
	if lim := bits.Len(uint(n)) + 1; bbits > lim {
		bbits = lim
	}
	if bbits > 26 {
		bbits = 26
	}
	if bbits < 1 {
		bbits = 1
	}
	shift := uint(2*k - bbits)
	nBuckets := 1 << uint(bbits)

	idx := &Index{
		ref:     ref,
		k:       k,
		shift:   shift,
		offsets: make([]uint32, nBuckets+1),
		keys:    make([]uint32, n),
		pos:     make([]int32, n),
	}

	// Pass 1: count entries per bucket.
	counts := idx.offsets[1:] // alias: counts[b] accumulates bucket b's size
	var key uint32
	mask := uint32(1)<<(2*k) - 1
	valid = 0
	for _, b := range ref {
		code, ok := dna.Code(b)
		if !ok {
			valid = 0
			key = 0
			continue
		}
		key = (key<<2 | uint32(code)) & mask
		valid++
		if valid >= k {
			counts[key>>shift]++
		}
	}
	// Prefix-sum the counts into bucket offsets (offsets[0] is already 0).
	for b := 1; b < nBuckets; b++ {
		counts[b] += counts[b-1]
	}

	// Pass 2: place (key, pos) into its bucket. cursor[b] starts at the
	// bucket's base offset; scanning the reference left to right keeps each
	// bucket's entries in ascending position order.
	cursor := make([]uint32, nBuckets)
	copy(cursor, idx.offsets[:nBuckets])
	key = 0
	valid = 0
	for i, b := range ref {
		code, ok := dna.Code(b)
		if !ok {
			valid = 0
			key = 0
			continue
		}
		key = (key<<2 | uint32(code)) & mask
		valid++
		if valid >= k {
			bk := key >> shift
			c := cursor[bk]
			idx.keys[c] = key
			idx.pos[c] = int32(i - k + 1)
			cursor[bk] = c + 1
		}
	}

	// Sort each bucket by full key, stably, so equal keys keep ascending
	// positions. When shift is 0 every bucket holds exactly one key and the
	// sort is a no-op.
	if shift != 0 {
		for b := 0; b < nBuckets; b++ {
			lo, hi := idx.offsets[b], idx.offsets[b+1]
			if hi-lo > 1 {
				sortBucket(idx.keys[lo:hi], idx.pos[lo:hi])
			}
		}
	}

	// Count distinct k-mers (diagnostics), one linear scan: equal keys are
	// contiguous (equal value implies equal bucket, and buckets are sorted).
	for i := range idx.keys {
		if i == 0 || idx.keys[i] != idx.keys[i-1] {
			idx.distinct++
		}
	}
	return idx, nil
}

// sortBucket stable-sorts a bucket's parallel key/pos arrays by key.
// Buckets average under one entry, so a binary insertion sort wins in the
// common case; a low-complexity reference (a long poly-A run, say) can
// still pile one bucket high with interleaved keys, where insertion's
// quadratic element moves would dominate the build — those buckets fall
// back to the general stable sort. Both keep equal keys in their original
// (ascending-position) order.
func sortBucket(keys []uint32, pos []int32) {
	if len(keys) > 64 {
		type kp struct {
			key uint32
			pos int32
		}
		tmp := make([]kp, len(keys))
		for i := range keys {
			tmp[i] = kp{keys[i], pos[i]}
		}
		sort.SliceStable(tmp, func(a, b int) bool { return tmp[a].key < tmp[b].key })
		for i := range tmp {
			keys[i], pos[i] = tmp[i].key, tmp[i].pos
		}
		return
	}
	for i := 1; i < len(keys); i++ {
		k, p := keys[i], pos[i]
		lo := sort.Search(i, func(j int) bool { return keys[j] > k })
		copy(keys[lo+1:i+1], keys[lo:i])
		copy(pos[lo+1:i+1], pos[lo:i])
		keys[lo] = k
		pos[lo] = p
	}
}

// K returns the seed length.
func (x *Index) K() int { return x.k }

// Ref returns the indexed reference.
func (x *Index) Ref() []byte { return x.ref }

// Lookup returns the reference positions whose k-window equals seed, or nil
// when the seed contains an undefined base or has no hits. The returned
// slice is a view into the index's positions array — ascending, read-only,
// and produced without allocating.
func (x *Index) Lookup(seed []byte) []int32 {
	if len(seed) != x.k {
		return nil
	}
	var key uint32
	for _, b := range seed {
		code, ok := dna.Code(b)
		if !ok {
			return nil
		}
		key = key<<2 | uint32(code)
	}
	bucket := key >> x.shift
	lo := int(x.offsets[bucket])
	hi := int(x.offsets[bucket+1])
	keys := x.keys
	// Equal range of key inside its (key-sorted) bucket; hand-rolled binary
	// searches keep the hot path free of closure allocations.
	first, j := lo, hi
	for first < j {
		m := int(uint(first+j) >> 1)
		if keys[m] < key {
			first = m + 1
		} else {
			j = m
		}
	}
	if first == hi || keys[first] != key {
		return nil
	}
	last, j := first+1, hi
	for last < j {
		m := int(uint(last+j) >> 1)
		if keys[m] <= key {
			last = m + 1
		} else {
			j = m
		}
	}
	return x.pos[first:last]
}

// DistinctKmers returns the number of distinct indexed k-mers (diagnostics).
func (x *Index) DistinctKmers() int { return x.distinct }

// Entries returns the total number of indexed positions (diagnostics).
func (x *Index) Entries() int { return len(x.pos) }
