// Package mapper implements a seed-and-extend short read mapper in the
// mould of mrFAST (Alkan et al. 2009), the tool the paper integrates
// GateKeeper-GPU into: a k-mer hash index over the reference, pigeonhole
// seeding (e+1 non-overlapping seeds, so any alignment with at most e edits
// preserves one seed exactly), candidate extension, optional pre-alignment
// filtering between seeding and verification, and banded dynamic-programming
// verification — the expensive stage the filter protects.
//
// The reference is multi-contig (mapper.Reference): a whole-genome FASTA's
// chromosomes live concatenated in one sequence with a contig table mapping
// concatenated positions back to (contig, contig-relative) coordinates. The
// index never spans a k-window across a contig boundary, candidate windows
// are rejected unless wholly inside one contig, and reported Mappings carry
// contig-relative coordinates.
//
// Two execution paths are offered, mirroring package gkgpu's split.
// Mapper.MapReads is the paper's one-shot pipeline: synchronized phases in
// which a batch of reads is seeded, its candidates are filtered in one
// round, and the survivors are verified, with each phase's wall clock
// reported separately (the accounting of Section 4.5). Mapper.MapStream is
// the throughput-oriented extension: a pool of seeding workers feeds
// candidates into the filter's streaming path — preferring the index-named
// candidate stream (gkgpu.Engine.FilterCandidateStream), where reference
// windows stay in device-resident unified memory — while a verification
// pool consumes accepted candidates concurrently, so seeding, filtering,
// and verification overlap instead of running back to back. Decisions and
// output are byte-identical between the two paths; only the schedule (and
// the wall clock, reported via Stats.PipelineWallSeconds against
// Stats.StageSeconds) differs. Mapper.MapPairs builds paired-end mapping on
// top of the streaming path: both mates of an FR library map in one
// streaming pass and concordant pairs are resolved against an insert-size
// window, with concordance restricted to same-contig mates.
package mapper

import (
	"fmt"
	"math/bits"
	"runtime"
	"sort"
	"sync"

	"repro/internal/dna"
	"repro/internal/metrics"
)

// Index is a k-mer index over a (multi-contig) reference in CSR (compressed
// sparse row) form: one flat positions array grouped by k-mer, addressed
// through a bucket-offset array. Every position whose k-window is fully
// defined (no 'N') and fully inside one contig is indexed; windows that
// would straddle a contig boundary of the concatenated sequence are never
// entered, so seed hits can only land inside a contig.
//
// The layout replaces the seed implementation's map[uint32][]int32: a map
// costs a hash probe plus pointer chases per lookup and fragments millions
// of small slices across the heap, while the CSR arrays are built once with
// a two-pass counting sort and answer every Lookup allocation-free with at
// most a short binary search inside one bucket. Buckets are the high bits
// of the packed k-mer key; within a bucket entries are sorted by full key
// (position-stable, so hit lists stay in ascending reference order exactly
// as the map layout appended them).
//
// Positions and bucket offsets are 64-bit, so a reference is bounded only
// by memory — a >2^31-base genome (the SneakySnake/SOAP3-dp evaluation
// scale) indexes like any other. An optional seed step (accel-align's
// kmer_step) indexes only the contig-relative window starts divisible by
// step, shrinking the index by ~step× at the cost of probing step
// consecutive read offsets per seed at lookup time; the step is recorded in
// the index so seeding stays in sync automatically, and step 1 is
// bit-identical to the unstepped build.
//
// The build is sharded per contig: contigs are assigned to contiguous
// shards balanced by base count, and both counting-sort passes run one
// goroutine per shard (each shard owns a private bucket-count array merged
// into per-shard cursors between the passes), so whole-genome build time
// scales with cores. Shard order equals contig order equals position order,
// making the arrays bit-identical to a sequential build regardless of shard
// count.
type Index struct {
	ref  *Reference
	seq  []byte // ref.Seq(), kept flat for the hot paths
	k    int
	step int // contig-relative sampling stride (1 = every window indexed)

	shift   uint     // key -> bucket: bucket = key >> shift
	offsets []uint64 // len nBuckets+1; bucket b spans keys/pos[offsets[b]:offsets[b+1]]
	keys    []uint32 // full k-mer key per indexed position, bucket-grouped, sorted within bucket
	pos     []int64  // reference position per indexed position, same order as keys

	distinct int // number of distinct indexed k-mers
}

// DefaultSeedLen is the default k-mer length, in mrFAST's 12-14 range.
const DefaultSeedLen = 13

// maxShardCountBytes bounds the total transient bucket-count memory of a
// sharded build (8 bytes per bucket per shard, freed once the build
// returns); when the bucket array is huge the shard count degrades
// gracefully rather than ballooning. The budget is sized for whole-genome
// work: at the 2^26-bucket cap a shard's counts are 512 MiB, so a 1 GiB
// budget keeps 2 shards alive on chromosome-scale references — small next
// to the keys/pos arrays such a reference allocates anyway (12 bytes per
// indexed position). Kept under 2^31 so the constant stays a valid int on
// 32-bit platforms.
const maxShardCountBytes = 1 << 30

// MaxSeedStep bounds the index's seed step: past ~2^20 the per-seed probe
// fan (step lookups per pigeonhole seed) would dwarf any realistic read
// length, so a larger value is always a caller bug.
const MaxSeedStep = 1 << 20

// NewIndex builds the index over one flat sequence, treated as a single
// contig. k must be in [8, 16] so a seed packs into one 32-bit key.
func NewIndex(seq []byte, k int) (*Index, error) {
	return NewReferenceIndex(SingleContig("", seq), k)
}

// NewReferenceIndex builds the index over a multi-contig reference, sharding
// the counting-sort build per contig. k must be in [8, 16]. Every indexable
// window is entered (seed step 1); NewSteppedReferenceIndex is the sampled
// form.
func NewReferenceIndex(r *Reference, k int) (*Index, error) {
	return buildReferenceIndex(r, k, 1, runtime.GOMAXPROCS(0))
}

// NewSteppedReferenceIndex builds the index with a seed step: only windows
// whose contig-relative start is divisible by step are indexed, shrinking
// the index ~step× (accel-align's kmer_step). The step is recorded in the
// index and Mapper.candidates compensates automatically by probing step
// consecutive read offsets per pigeonhole seed, so any exact seed whose
// surrounding k+step-1 bases are error-free still finds a sampled hit.
// step 1 is bit-identical to NewReferenceIndex.
func NewSteppedReferenceIndex(r *Reference, k, step int) (*Index, error) {
	return buildReferenceIndex(r, k, step, runtime.GOMAXPROCS(0))
}

// buildReferenceIndex is NewSteppedReferenceIndex with the shard-count cap
// exposed: the result is bit-identical for any maxShards (tests force
// several counts to prove it).
func buildReferenceIndex(r *Reference, k, step, maxShards int) (*Index, error) {
	if k < 8 || k > 16 {
		return nil, fmt.Errorf("mapper: seed length %d outside [8,16]", k)
	}
	if step < 1 || step > MaxSeedStep {
		return nil, fmt.Errorf("mapper: seed step %d outside [1,%d]", step, MaxSeedStep)
	}
	if r.Len() < k {
		return nil, fmt.Errorf("mapper: reference (%d) shorter than seed (%d)", r.Len(), k)
	}

	contigs := r.Contigs()
	shards := shardContigs(contigs, maxShards)

	// Pass 0 (parallel per shard): count indexable windows — k defined bases
	// wholly inside one contig, starting on a step-aligned contig-relative
	// offset (every window when step is 1).
	perShardN := make([]int, len(shards))
	forEachShard(shards, func(s int, sh contigShard) {
		n := 0
		for ci := sh.lo; ci < sh.hi; ci++ {
			valid := 0
			for i, b := range r.ContigSeq(ci) {
				if !dna.IsACGT(b) {
					valid = 0
					continue
				}
				valid++
				if valid >= k && (step == 1 || (i-k+1)%step == 0) {
					n++
				}
			}
		}
		perShardN[s] = n
	})
	n := 0
	for _, sn := range perShardN {
		n += sn
	}

	// Bucket geometry: use the full 2k key bits when small enough,
	// otherwise enough high bits for ~2x the entry count (about half an
	// entry per bucket), capped so the offsets array stays proportional to
	// the reference rather than to 4^k.
	bbits := 2 * k
	if lim := bits.Len(uint(n)) + 1; bbits > lim {
		bbits = lim
	}
	if bbits > 26 {
		bbits = 26
	}
	if bbits < 1 {
		bbits = 1
	}
	shift := uint(2*k - bbits)
	nBuckets := 1 << uint(bbits)

	// Re-shard if the per-shard count arrays would blow the memory budget:
	// fewer shards, same result (the build is shard-count invariant).
	if maxByBudget := maxShardCountBytes / (8 * nBuckets); len(shards) > maxByBudget {
		if maxByBudget < 1 {
			maxByBudget = 1
		}
		shards = shardContigs(contigs, maxByBudget)
	}

	idx := &Index{
		ref:     r,
		seq:     r.seq,
		k:       k,
		step:    step,
		shift:   shift,
		offsets: make([]uint64, nBuckets+1),
		keys:    make([]uint32, n),
		pos:     make([]int64, n),
	}

	// Pass 1 (parallel per shard): count entries per (shard, bucket).
	counts := make([][]uint64, len(shards))
	forEachShard(shards, func(s int, sh contigShard) {
		cs := make([]uint64, nBuckets)
		idx.countShard(sh.lo, sh.hi, cs)
		counts[s] = cs
	})

	// Merge: turn the per-shard counts into per-shard start cursors and the
	// global bucket offsets. Bucket b's entries are laid out shard by shard,
	// and shards hold contigs in reference order, so each bucket's entries
	// stay in ascending position order — exactly the sequential layout.
	// The merge itself is O(nBuckets·shards), which at whole-genome bucket
	// counts would serialize between the two parallel passes, so it runs
	// per bucket range: each range's entry total is summed in parallel, a
	// short prefix over the range totals gives every range its base, and
	// the cursor/offset fill proceeds in parallel from those bases —
	// bit-identical to the sequential walk.
	ranges := splitRange(nBuckets, runtime.GOMAXPROCS(0))
	rangeTotal := make([]uint64, len(ranges))
	forEachRange(ranges, func(ri int, lo, hi int) {
		var t uint64
		for b := lo; b < hi; b++ {
			for _, cs := range counts {
				t += cs[b]
			}
		}
		rangeTotal[ri] = t
	})
	base := uint64(0)
	for ri, t := range rangeTotal {
		rangeTotal[ri] = base
		base += t
	}
	forEachRange(ranges, func(ri int, lo, hi int) {
		running := rangeTotal[ri]
		for b := lo; b < hi; b++ {
			for _, cs := range counts {
				c := cs[b]
				cs[b] = running // becomes shard s's cursor for bucket b
				running += c
			}
			idx.offsets[b+1] = running
		}
	})

	// Pass 2 (parallel per shard): place (key, pos) at the shard's cursors.
	// Within a shard the reference scans left to right, keeping each
	// (shard, bucket) run in ascending position order.
	forEachShard(shards, func(s int, sh contigShard) {
		idx.placeShard(sh.lo, sh.hi, counts[s])
	})

	// Sort each bucket by full key, stably, so equal keys keep ascending
	// positions. When shift is 0 every bucket holds exactly one key and the
	// sort is a no-op. Buckets are independent; split them across workers.
	if shift != 0 {
		forEachRange(ranges, func(_ int, lo, hi int) {
			for b := lo; b < hi; b++ {
				blo, bhi := idx.offsets[b], idx.offsets[b+1]
				if bhi-blo > 1 {
					sortBucket(idx.keys[blo:bhi], idx.pos[blo:bhi])
				}
			}
		})
	}

	// Count distinct k-mers (diagnostics), one linear scan: equal keys are
	// contiguous (equal value implies equal bucket, and buckets are sorted).
	for i := range idx.keys {
		if i == 0 || idx.keys[i] != idx.keys[i-1] {
			idx.distinct++
		}
	}
	return idx, nil
}

// countShard rolls the 2-bit hash across each of the shard's contigs
// independently (the key and validity reset at contig starts, so no window
// straddles a boundary) and counts each indexable, step-aligned window into
// its bucket. The loop body is kept direct — no per-window callback —
// because the two counting-sort passes dominate the build.
func (x *Index) countShard(lo, hi int, counts []uint64) {
	k, step := x.k, x.step
	shift := x.shift
	mask := uint32(1)<<(2*k) - 1
	for ci := lo; ci < hi; ci++ {
		var key uint32
		valid := 0
		for i, b := range x.ref.ContigSeq(ci) {
			code, ok := dna.Code(b)
			if !ok {
				valid = 0
				key = 0
				continue
			}
			key = (key<<2 | uint32(code)) & mask
			valid++
			if valid >= k && (step == 1 || (i-k+1)%step == 0) {
				counts[key>>shift]++
			}
		}
	}
}

// placeShard is countShard's second pass: the same per-contig rolling hash,
// placing each (key, global position) at the shard's bucket cursors. The
// global position is the contig's offset (via the sanctioned ContigOff
// accessor) plus the window's contig-relative start — 64-bit end to end.
func (x *Index) placeShard(lo, hi int, cursor []uint64) {
	k, step := x.k, x.step
	shift := x.shift
	mask := uint32(1)<<(2*k) - 1
	for ci := lo; ci < hi; ci++ {
		off := x.ref.ContigOff(ci)
		var key uint32
		valid := 0
		for i, b := range x.ref.ContigSeq(ci) {
			code, ok := dna.Code(b)
			if !ok {
				valid = 0
				key = 0
				continue
			}
			key = (key<<2 | uint32(code)) & mask
			valid++
			if valid >= k && (step == 1 || (i-k+1)%step == 0) {
				bk := key >> shift
				cu := cursor[bk]
				x.keys[cu] = key
				x.pos[cu] = int64(off + i - k + 1)
				cursor[bk] = cu + 1
			}
		}
	}
}

// contigShard is a contiguous run of contigs built by one worker.
type contigShard struct{ lo, hi int }

// shardContigs splits the contig table into at most maxShards contiguous
// runs balanced by base count. Contiguity is what keeps the sharded build
// deterministic: shard order equals contig order equals position order.
func shardContigs(contigs []Contig, maxShards int) []contigShard {
	if maxShards > len(contigs) {
		maxShards = len(contigs)
	}
	if maxShards < 1 {
		maxShards = 1
	}
	total := 0
	for _, c := range contigs {
		total += c.Len
	}
	target := (total + maxShards - 1) / maxShards
	shards := make([]contigShard, 0, maxShards)
	lo, acc := 0, 0
	for i, c := range contigs {
		acc += c.Len
		if acc >= target && len(shards) < maxShards-1 {
			shards = append(shards, contigShard{lo, i + 1})
			lo, acc = i+1, 0
		}
	}
	if lo < len(contigs) {
		shards = append(shards, contigShard{lo, len(contigs)})
	}
	return shards
}

// bucketRange is a contiguous run of buckets processed by one worker.
type bucketRange struct{ lo, hi int }

// splitRange chops [0,n) into at most workers contiguous chunks.
func splitRange(n, workers int) []bucketRange {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	chunk := (n + workers - 1) / workers
	ranges := make([]bucketRange, 0, workers)
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		ranges = append(ranges, bucketRange{lo, hi})
	}
	return ranges
}

// forEachRange runs fn once per bucket range, concurrently.
func forEachRange(ranges []bucketRange, fn func(ri, lo, hi int)) {
	if len(ranges) == 1 {
		fn(0, ranges[0].lo, ranges[0].hi)
		return
	}
	var wg sync.WaitGroup
	for ri, r := range ranges {
		wg.Add(1)
		go func(ri, lo, hi int) {
			defer wg.Done()
			fn(ri, lo, hi)
		}(ri, r.lo, r.hi)
	}
	wg.Wait()
}

// forEachShard runs fn once per shard, concurrently.
func forEachShard(shards []contigShard, fn func(s int, sh contigShard)) {
	if len(shards) == 1 {
		fn(0, shards[0])
		return
	}
	var wg sync.WaitGroup
	for s, sh := range shards {
		wg.Add(1)
		go func(s int, sh contigShard) {
			defer wg.Done()
			fn(s, sh)
		}(s, sh)
	}
	wg.Wait()
}

// sortBucket stable-sorts a bucket's parallel key/pos arrays by key.
// Buckets average under one entry, so a binary insertion sort wins in the
// common case; a low-complexity reference (a long poly-A run, say) can
// still pile one bucket high with interleaved keys, where insertion's
// quadratic element moves would dominate the build — those buckets fall
// back to the general stable sort. Both keep equal keys in their original
// (ascending-position) order.
func sortBucket(keys []uint32, pos []int64) {
	if len(keys) > 64 {
		type kp struct {
			key uint32
			pos int64
		}
		tmp := make([]kp, len(keys))
		for i := range keys {
			tmp[i] = kp{keys[i], pos[i]}
		}
		sort.SliceStable(tmp, func(a, b int) bool { return tmp[a].key < tmp[b].key })
		for i := range tmp {
			keys[i], pos[i] = tmp[i].key, tmp[i].pos
		}
		return
	}
	for i := 1; i < len(keys); i++ {
		k, p := keys[i], pos[i]
		lo := sort.Search(i, func(j int) bool { return keys[j] > k })
		copy(keys[lo+1:i+1], keys[lo:i])
		copy(pos[lo+1:i+1], pos[lo:i])
		keys[lo] = k
		pos[lo] = p
	}
}

// K returns the seed length.
func (x *Index) K() int { return x.k }

// Step returns the seed step: 1 when every window is indexed, s when only
// windows starting at contig-relative offsets divisible by s are. Seeding
// probes Step consecutive read offsets per pigeonhole seed to compensate.
func (x *Index) Step() int { return x.step }

// Ref returns the indexed reference's concatenated sequence.
func (x *Index) Ref() []byte { return x.seq }

// Reference returns the indexed multi-contig reference.
func (x *Index) Reference() *Reference { return x.ref }

// Lookup returns the reference positions whose k-window equals seed, or nil
// when the seed contains an undefined base or has no hits. The returned
// slice is a view into the index's positions array — ascending, read-only,
// and produced without allocating. Positions address the concatenated
// sequence; every hit's k-window lies wholly inside one contig.
//
//gk:noalloc
func (x *Index) Lookup(seed []byte) []int64 {
	metrics.SeedLookups.Inc()
	if len(seed) != x.k {
		return nil
	}
	var key uint32
	for _, b := range seed {
		code, ok := dna.Code(b)
		if !ok {
			return nil
		}
		key = key<<2 | uint32(code)
	}
	bucket := key >> x.shift
	lo := int(x.offsets[bucket])
	hi := int(x.offsets[bucket+1])
	keys := x.keys
	// Equal range of key inside its (key-sorted) bucket; hand-rolled binary
	// searches keep the hot path free of closure allocations.
	first, j := lo, hi
	for first < j {
		m := int(uint(first+j) >> 1)
		if keys[m] < key {
			first = m + 1
		} else {
			j = m
		}
	}
	if first == hi || keys[first] != key {
		return nil
	}
	last, j := first+1, hi
	for last < j {
		m := int(uint(last+j) >> 1)
		if keys[m] <= key {
			last = m + 1
		} else {
			j = m
		}
	}
	return x.pos[first:last]
}

// DistinctKmers returns the number of distinct indexed k-mers (diagnostics).
func (x *Index) DistinctKmers() int { return x.distinct }

// Entries returns the total number of indexed positions (diagnostics).
func (x *Index) Entries() int { return len(x.pos) }
