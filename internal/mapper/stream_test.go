package mapper

import (
	"math/rand"
	"testing"

	"repro/internal/cuda"
	"repro/internal/dna"
	"repro/internal/gkgpu"
	"repro/internal/simdata"
)

// mustEqualMappings asserts two mapping lists are byte-identical: same
// mappings, same order.
func mustEqualMappings(t *testing.T, got, want []Mapping, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d mappings, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: mapping %d differs: %+v vs %+v", label, i, got[i], want[i])
		}
	}
}

func TestMapStreamMatchesMapReads(t *testing.T) {
	// The ordering/consistency contract of the streaming pipeline: whatever
	// the worker count or filter mode, MapStream must produce byte-identical
	// output to the one-shot path. Run with -race in CI: the seeding pool is
	// a set of concurrent producers into the filter stream and the
	// verification pool a set of concurrent consumers.
	g := testGenome(150_000)
	reads, err := simdata.SimulateReads(g, simdata.Illumina100, 120, 11)
	if err != nil {
		t.Fatal(err)
	}
	seqs := make([][]byte, len(reads))
	for i, r := range reads {
		seqs[i] = r.Seq
	}

	mkGPU := func(t *testing.T) PreFilter {
		eng, err := gkgpu.NewEngine(gkgpu.Config{ReadLen: 100, MaxE: 5, MaxBatchPairs: 2048,
			StreamBatchPairs: 64}, cuda.NewUniformContext(2, cuda.GTX1080Ti()))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(eng.Close)
		return eng
	}
	mkCPU := func(t *testing.T) PreFilter {
		cpu, err := gkgpu.NewCPUEngine(100, 5, 4, gkgpu.Setup1(), cuda.DefaultCostModel())
		if err != nil {
			t.Fatal(err)
		}
		return cpu
	}
	cases := []struct {
		name string
		mk   func(t *testing.T) PreFilter
	}{
		{"gpu-candidate-stream", mkGPU},
		{"cpu-inline", mkCPU},
		{"no-filter", func(t *testing.T) PreFilter { return nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base, err := New(g, Config{ReadLen: 100, MaxE: 5, BothStrands: true, Filter: tc.mk(t)})
			if err != nil {
				t.Fatal(err)
			}
			want, wantStats, err := base.MapReads(seqs, 5)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 8} {
				strm, err := New(g, Config{ReadLen: 100, MaxE: 5, BothStrands: true,
					Filter: tc.mk(t), StreamWorkers: workers})
				if err != nil {
					t.Fatal(err)
				}
				got, gotStats, err := strm.MapStream(seqs, 5)
				if err != nil {
					t.Fatal(err)
				}
				mustEqualMappings(t, got, want, tc.name)
				if gotStats.CandidatePairs != wantStats.CandidatePairs ||
					gotStats.VerificationPairs != wantStats.VerificationPairs ||
					gotStats.RejectedPairs != wantStats.RejectedPairs ||
					gotStats.MappedReads != wantStats.MappedReads {
					t.Fatalf("stream counters drifted:\nstream  %+v\noneshot %+v", gotStats, wantStats)
				}
				if gotStats.RejectedPairs+gotStats.VerificationPairs != gotStats.CandidatePairs {
					t.Fatal("candidate accounting does not add up")
				}
				if gotStats.PipelineWallSeconds <= 0 {
					t.Fatal("PipelineWallSeconds not populated on the streaming path")
				}
				if gotStats.OverlapSeconds() < 0 {
					t.Fatal("negative overlap")
				}
			}
		})
	}
}

func TestMapStreamTracebackMatchesMapReads(t *testing.T) {
	g := testGenome(80_000)
	reads, err := simdata.SimulateReads(g, simdata.Illumina100, 50, 12)
	if err != nil {
		t.Fatal(err)
	}
	seqs := make([][]byte, len(reads))
	for i, r := range reads {
		seqs[i] = r.Seq
	}
	base, err := New(g, Config{ReadLen: 100, MaxE: 4, Traceback: true})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := base.MapReads(seqs, 4)
	if err != nil {
		t.Fatal(err)
	}
	strm, err := New(g, Config{ReadLen: 100, MaxE: 4, Traceback: true, StreamWorkers: 6})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := strm.MapStream(seqs, 4)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualMappings(t, got, want, "traceback")
	for _, mp := range got {
		if mp.CIGAR == "" {
			t.Fatalf("streamed mapping without CIGAR: %+v", mp)
		}
	}
}

func TestMapStreamValidation(t *testing.T) {
	g := testGenome(50_000)
	m, err := New(g, Config{ReadLen: 100, MaxE: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.MapStream([][]byte{make([]byte, 40)}, 3); err == nil {
		t.Fatal("wrong-length read accepted")
	}
	if _, _, err := m.MapStream(nil, 4); err == nil {
		t.Fatal("threshold above MaxE accepted")
	}
	// Empty input is a valid, empty run.
	mappings, st, err := m.MapStream(nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(mappings) != 0 || st.Reads != 0 {
		t.Fatalf("empty stream mapped something: %d mappings, %+v", len(mappings), st)
	}
}

func TestMapPairsResolvesConcordantPairs(t *testing.T) {
	g := testGenome(120_000)
	rng := rand.New(rand.NewSource(14))
	const L, insert = 100, 350
	var pairs []ReadPair
	var truePos []int
	for i := 0; i < 30; i++ {
		pos := rng.Intn(len(g) - insert)
		frag := g[pos : pos+insert]
		if dna.HasN(frag) {
			continue
		}
		r1 := dna.MutateSubstitutions(rng, frag[:L], 2)
		r2 := dna.ReverseComplement(dna.MutateSubstitutions(rng, frag[insert-L:], 2))
		pairs = append(pairs, ReadPair{R1: r1, R2: r2})
		truePos = append(truePos, pos)
	}

	eng, err := gkgpu.NewEngine(gkgpu.Config{ReadLen: L, MaxE: 4, MaxBatchPairs: 2048},
		cuda.NewUniformContext(1, cuda.GTX1080Ti()))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	m, err := New(g, Config{ReadLen: L, MaxE: 4, Filter: eng, StreamWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	resolved, st, err := m.MapPairs(pairs, 4, InsertWindow{Min: 200, Max: 500})
	if err != nil {
		t.Fatal(err)
	}
	if st.ReadPairs != int64(len(pairs)) {
		t.Fatalf("ReadPairs = %d, want %d", st.ReadPairs, len(pairs))
	}
	if st.ConcordantPairs != int64(len(resolved)) {
		t.Fatalf("ConcordantPairs = %d but %d resolved", st.ConcordantPairs, len(resolved))
	}
	if len(resolved) < len(pairs)-2 {
		t.Fatalf("only %d/%d pairs concordant", len(resolved), len(pairs))
	}
	byPair := map[int]PairMapping{}
	for _, pm := range resolved {
		byPair[pm.PairID] = pm
	}
	for i := range pairs {
		pm, ok := byPair[i]
		if !ok {
			continue
		}
		if pm.Insert < 200 || pm.Insert > 500 {
			t.Fatalf("pair %d insert %d outside window", i, pm.Insert)
		}
		if abs(pm.Mate1.Pos-truePos[i]) > 4 {
			t.Errorf("pair %d mate1 at %d, fragment at %d", i, pm.Mate1.Pos, truePos[i])
		}
		if abs(pm.Mate2.Pos-(truePos[i]+insert-L)) > 4 {
			t.Errorf("pair %d mate2 at %d, want near %d", i, pm.Mate2.Pos, truePos[i]+insert-L)
		}
		if pm.Mate1.Reverse != pm.Mate2.Reverse {
			t.Errorf("pair %d resolved with incompatible orientations", i)
		}
	}
}

func TestMapPairsInsertWindowExcludes(t *testing.T) {
	g := testGenome(60_000)
	rng := rand.New(rand.NewSource(15))
	const L, insert = 100, 400
	pos := 20_000
	frag := g[pos : pos+insert]
	for dna.HasN(frag) {
		pos += insert
		frag = g[pos : pos+insert]
	}
	pair := ReadPair{
		R1: dna.MutateSubstitutions(rng, frag[:L], 1),
		R2: dna.ReverseComplement(dna.MutateSubstitutions(rng, frag[insert-L:], 1)),
	}
	m, err := New(g, Config{ReadLen: L, MaxE: 3})
	if err != nil {
		t.Fatal(err)
	}
	// A window that cannot contain the true 400bp fragment.
	resolved, st, err := m.MapPairs([]ReadPair{pair}, 3, InsertWindow{Min: 150, Max: 250})
	if err != nil {
		t.Fatal(err)
	}
	if len(resolved) != 0 || st.ConcordantPairs != 0 {
		t.Fatalf("discordant pair resolved: %+v", resolved)
	}
	// The right window finds it.
	resolved, _, err = m.MapPairs([]ReadPair{pair}, 3, InsertWindow{Min: 300, Max: 500})
	if err != nil {
		t.Fatal(err)
	}
	if len(resolved) != 1 || resolved[0].Insert != insert {
		t.Fatalf("true pair not resolved: %+v", resolved)
	}
	// Window validation.
	if _, _, err := m.MapPairs(nil, 3, InsertWindow{Min: 300, Max: 200}); err == nil {
		t.Fatal("inverted window accepted")
	}
	if _, _, err := m.MapPairs(nil, 3, InsertWindow{Min: 50, Max: 200}); err == nil {
		t.Fatal("window below read length accepted")
	}
}

func TestMapPairsRejectsEvertedArrangement(t *testing.T) {
	// FR concordance is order as well as orientation: if R1's window lands
	// to the RIGHT of R2's with both mapping forward, the mates point
	// outward (an everted arrangement) and the pair is discordant even when
	// the outer distance fits the window.
	g := testGenome(60_000)
	rng := rand.New(rand.NewSource(16))
	const L = 100
	pos := 30_000
	for dna.HasN(g[pos : pos+400]) {
		pos += 400
	}
	everted := ReadPair{
		R1: dna.MutateSubstitutions(rng, g[pos+300:pos+400], 1),                  // right window, forward
		R2: dna.ReverseComplement(dna.MutateSubstitutions(rng, g[pos:pos+L], 1)), // left window
	}
	m, err := New(g, Config{ReadLen: L, MaxE: 3})
	if err != nil {
		t.Fatal(err)
	}
	resolved, st, err := m.MapPairs([]ReadPair{everted}, 3, InsertWindow{Min: 300, Max: 500})
	if err != nil {
		t.Fatal(err)
	}
	if len(resolved) != 0 || st.ConcordantPairs != 0 {
		t.Fatalf("everted pair resolved as concordant: %+v", resolved)
	}
	// The properly ordered pair over the same windows is concordant.
	proper := ReadPair{
		R1: dna.MutateSubstitutions(rng, g[pos:pos+L], 1),
		R2: dna.ReverseComplement(dna.MutateSubstitutions(rng, g[pos+300:pos+400], 1)),
	}
	resolved, _, err = m.MapPairs([]ReadPair{proper}, 3, InsertWindow{Min: 300, Max: 500})
	if err != nil {
		t.Fatal(err)
	}
	if len(resolved) != 1 {
		t.Fatalf("properly ordered pair not resolved: %+v", resolved)
	}
}
