package mapper

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/cuda"
	"repro/internal/gkgpu"
	"repro/internal/simdata"
)

// feedReads pushes a materialized read set through a channel, the way a
// decoder would.
func feedReads(seqs [][]byte) chan Read {
	ch := make(chan Read, 8)
	go func() {
		defer close(ch)
		for i, s := range seqs {
			ch <- Read{Name: fmt.Sprintf("r%d", i), Seq: s}
		}
	}()
	return ch
}

func feedPairs(pairs []ReadPair) chan PairRead {
	ch := make(chan PairRead, 8)
	go func() {
		defer close(ch)
		for i, p := range pairs {
			ch <- PairRead{Name: fmt.Sprintf("p%d", i), R1: p.R1, R2: p.R2}
		}
	}()
	return ch
}

func TestMapReadStreamMatchesMapStream(t *testing.T) {
	// The channel-fed ingestion contract: reads arriving one at a time must
	// produce byte-identical output to the same records materialized into a
	// slice, whatever the filter mode or worker count. Run with -race in CI.
	g := testGenome(150_000)
	reads, err := simdata.SimulateReads(g, simdata.Illumina100, 120, 21)
	if err != nil {
		t.Fatal(err)
	}
	seqs := make([][]byte, len(reads))
	for i, r := range reads {
		seqs[i] = r.Seq
	}

	mkGPU := func(t *testing.T) PreFilter {
		eng, err := gkgpu.NewEngine(gkgpu.Config{ReadLen: 100, MaxE: 5, MaxBatchPairs: 2048,
			StreamBatchPairs: 64}, cuda.NewUniformContext(2, cuda.GTX1080Ti()))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(eng.Close)
		return eng
	}
	cases := []struct {
		name string
		mk   func(t *testing.T) PreFilter
	}{
		{"gpu-candidate-stream", mkGPU},
		{"no-filter", func(t *testing.T) PreFilter { return nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base, err := New(g, Config{ReadLen: 100, MaxE: 5, BothStrands: true, Filter: tc.mk(t)})
			if err != nil {
				t.Fatal(err)
			}
			want, wantStats, err := base.MapStream(seqs, 5)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 8} {
				strm, err := New(g, Config{ReadLen: 100, MaxE: 5, BothStrands: true,
					Filter: tc.mk(t), StreamWorkers: workers})
				if err != nil {
					t.Fatal(err)
				}
				got, gotStats, err := strm.MapReadStream(feedReads(seqs), 5)
				if err != nil {
					t.Fatal(err)
				}
				mustEqualMappings(t, got, want, tc.name)
				if gotStats.Reads != wantStats.Reads ||
					gotStats.CandidatePairs != wantStats.CandidatePairs ||
					gotStats.VerificationPairs != wantStats.VerificationPairs ||
					gotStats.RejectedPairs != wantStats.RejectedPairs ||
					gotStats.MappedReads != wantStats.MappedReads {
					t.Fatalf("channel-fed counters drifted:\nchannel %+v\nslice   %+v", gotStats, wantStats)
				}
				if gotStats.PipelineWallSeconds <= 0 {
					t.Fatal("PipelineWallSeconds not populated on the channel-fed path")
				}
			}
		})
	}
}

func TestMapReadStreamWrongLengthUnblocksProducer(t *testing.T) {
	// A wrong-length record mid-stream is a terminal error that names the
	// record, and the remaining input must be drained so the producer's
	// sends never block.
	g := testGenome(50_000)
	m, err := New(g, Config{ReadLen: 100, MaxE: 3, StreamWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	reads, err := simdata.SimulateReads(g, simdata.Illumina100, 40, 22)
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan Read) // unbuffered: a stuck consumer would deadlock this test
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer close(ch)
		for i, r := range reads {
			seq := r.Seq
			if i == 7 {
				seq = seq[:60] // the bad record
			}
			ch <- Read{Name: fmt.Sprintf("r%d", i), Seq: seq}
		}
	}()
	_, _, err = m.MapReadStream(ch, 3)
	if err == nil {
		t.Fatal("wrong-length record accepted")
	}
	if !strings.Contains(err.Error(), "read 7") || !strings.Contains(err.Error(), `"r7"`) {
		t.Fatalf("error does not name the record: %v", err)
	}
	<-done // producer finished all 40 sends despite the error at record 7
}

func TestMapPairStreamEarlyErrorUnblocksProducer(t *testing.T) {
	// Errors raised before the pipeline consumes anything — an invalid
	// insert window, a too-high threshold — must still honor the
	// never-block guarantee for a producer already pushing records.
	g := testGenome(50_000)
	m, err := New(g, Config{ReadLen: 100, MaxE: 3})
	if err != nil {
		t.Fatal(err)
	}
	producer := func() (chan PairRead, chan struct{}) {
		ch := make(chan PairRead) // unbuffered: an unconsumed channel deadlocks this test
		done := make(chan struct{})
		go func() {
			defer close(done)
			defer close(ch)
			for i := 0; i < 50; i++ {
				ch <- PairRead{R1: make([]byte, 100), R2: make([]byte, 100)}
			}
		}()
		return ch, done
	}
	ch, done := producer()
	if _, _, err := m.MapPairStream(ch, 3, InsertWindow{Min: 5000, Max: 400}); err == nil {
		t.Fatal("inverted window accepted")
	}
	<-done
	ch, done = producer()
	if _, _, err := m.MapPairStream(ch, 9, InsertWindow{Min: 200, Max: 400}); err == nil {
		t.Fatal("threshold above MaxE accepted")
	}
	<-done
	rch, rdone := make(chan Read), make(chan struct{})
	go func() {
		defer close(rdone)
		defer close(rch)
		for i := 0; i < 50; i++ {
			rch <- Read{Seq: make([]byte, 100)}
		}
	}()
	if _, _, err := m.MapReadStream(rch, 9); err == nil {
		t.Fatal("threshold above MaxE accepted")
	}
	<-rdone
}

func TestMapPairStreamMatchesMapPairs(t *testing.T) {
	g := testGenome(150_000)
	simPairs, err := simdata.SimulatePairs(g, simdata.Illumina100, 60, 400, 40, 23)
	if err != nil {
		t.Fatal(err)
	}
	pairs := make([]ReadPair, len(simPairs))
	for i, p := range simPairs {
		pairs[i] = ReadPair{R1: p.R1.Seq, R2: p.R2.Seq}
	}
	win := InsertWindow{Min: 240, Max: 560}
	mk := func(workers int) *Mapper {
		eng, err := gkgpu.NewEngine(gkgpu.Config{ReadLen: 100, MaxE: 5, MaxBatchPairs: 2048},
			cuda.NewUniformContext(1, cuda.GTX1080Ti()))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(eng.Close)
		m, err := New(g, Config{ReadLen: 100, MaxE: 5, Filter: eng, StreamWorkers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	want, wantStats, err := mk(0).MapPairs(pairs, 5, win)
	if err != nil {
		t.Fatal(err)
	}
	got, gotStats, err := mk(4).MapPairStream(feedPairs(pairs), 5, win)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("channel-fed resolved %d pairs, slice path %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("pair %d drifted: %+v vs %+v", i, got[i], want[i])
		}
	}
	if gotStats.ReadPairs != wantStats.ReadPairs ||
		gotStats.ConcordantPairs != wantStats.ConcordantPairs ||
		gotStats.Reads != wantStats.Reads ||
		gotStats.InsertWindowMin != wantStats.InsertWindowMin ||
		gotStats.InsertWindowMax != wantStats.InsertWindowMax {
		t.Fatalf("paired counters drifted:\nchannel %+v\nslice   %+v", gotStats, wantStats)
	}
}

func TestEstimateInsertWindowRecoversSimulatedLibrary(t *testing.T) {
	// The estimator must recover the library geometry SimulatePairs drew
	// from — mean 400, std 40 — from nothing but single-end mappings of the
	// interleaved mates.
	g := testGenome(200_000)
	const mean, std = 400, 40
	simPairs, err := simdata.SimulatePairs(g, simdata.Illumina100, 300, mean, std, 24)
	if err != nil {
		t.Fatal(err)
	}
	pairs := make([]ReadPair, len(simPairs))
	for i, p := range simPairs {
		pairs[i] = ReadPair{R1: p.R1.Seq, R2: p.R2.Seq}
	}
	m, err := New(g, Config{ReadLen: 100, MaxE: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Zero window: MapPairs estimates internally and records the estimate.
	resolved, st, err := m.MapPairs(pairs, 5, InsertWindow{})
	if err != nil {
		t.Fatal(err)
	}
	if st.InsertSampledPairs < minInsertSample {
		t.Fatalf("estimate rests on %d pairs", st.InsertSampledPairs)
	}
	if math.Abs(st.InsertMean-mean) > 15 {
		t.Fatalf("estimated mean %.1f, library mean %d", st.InsertMean, mean)
	}
	if st.InsertStd < 20 || st.InsertStd > 60 {
		t.Fatalf("estimated std %.1f, library std %d", st.InsertStd, std)
	}
	if st.InsertWindowMin < 100 || st.InsertWindowMax <= st.InsertWindowMin {
		t.Fatalf("estimated window [%d,%d] malformed", st.InsertWindowMin, st.InsertWindowMax)
	}
	if len(resolved) == 0 {
		t.Fatal("no pairs resolved under the estimated window")
	}

	// Acceptance criterion: the estimated window resolves at least as many
	// concordant pairs as the explicit true-parameter window.
	explicit, _, err := m.MapPairs(pairs, 5, InsertWindow{Min: mean - 4*std, Max: mean + 4*std})
	if err != nil {
		t.Fatal(err)
	}
	if len(resolved) < len(explicit) {
		t.Fatalf("estimated window resolved %d pairs, explicit window %d", len(resolved), len(explicit))
	}

	// Channel-fed path with estimation agrees.
	streamed, sst, err := m.MapPairStream(feedPairs(pairs), 5, InsertWindow{})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(resolved) || sst.InsertWindowMin != st.InsertWindowMin ||
		sst.InsertWindowMax != st.InsertWindowMax {
		t.Fatalf("MapPairStream estimate drifted: %d pairs window [%d,%d] vs %d pairs window [%d,%d]",
			len(streamed), sst.InsertWindowMin, sst.InsertWindowMax,
			len(resolved), st.InsertWindowMin, st.InsertWindowMax)
	}
}

func TestEstimateInsertWindowNeedsConfidentPairs(t *testing.T) {
	// Too few confident pairs: no window, ok=false, and the zero-window
	// mapping paths surface a clear error instead of guessing.
	if _, est, ok := EstimateInsertWindow(nil, 100, 0); ok || est.SampledPairs != 0 {
		t.Fatalf("estimate from nothing: ok=%v est=%+v", ok, est)
	}
	// A pair with a multi-mapped mate is not confident.
	mappings := []Mapping{
		{ReadID: 0, Pos: 100}, {ReadID: 0, Pos: 900},
		{ReadID: 1, Pos: 400},
	}
	if _, _, ok := EstimateInsertWindow(mappings, 100, 0); ok {
		t.Fatal("multi-mapped mate treated as confident")
	}
	g := testGenome(50_000)
	m, err := New(g, Config{ReadLen: 100, MaxE: 3})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = m.MapPairs(nil, 3, InsertWindow{})
	if err == nil || !strings.Contains(err.Error(), "estimate") {
		t.Fatalf("zero-window MapPairs over no data: %v", err)
	}
}

func TestEstimateInsertWindowTrimsOutliers(t *testing.T) {
	// A handful of wild fragments (unique mis-mappings) must not blow the
	// window open: synthetic mappings with 40 tight pairs at insert 400 and
	// 2 at 30,000.
	var mappings []Mapping
	id := 0
	add := func(pos1, pos2 int) {
		mappings = append(mappings,
			Mapping{ReadID: 2 * id, Pos: pos1},
			Mapping{ReadID: 2*id + 1, Pos: pos2})
		id++
	}
	for i := 0; i < 40; i++ {
		start := 1000 + 37*i
		add(start, start+300+i%7) // inserts 400..406
	}
	add(500, 30_400)
	add(600, 30_500)
	win, est, ok := EstimateInsertWindow(mappings, 100, 0)
	if !ok {
		t.Fatalf("estimate failed: %+v", est)
	}
	if est.SampledPairs != 40 {
		t.Fatalf("outliers kept: estimate over %d pairs", est.SampledPairs)
	}
	if win.Max > 1000 {
		t.Fatalf("window [%d,%d] blown open by outliers (mean %.1f std %.1f)",
			win.Min, win.Max, est.Mean, est.Std)
	}
	if win.Min > 400 || win.Max < 406 {
		t.Fatalf("window [%d,%d] does not cover the library", win.Min, win.Max)
	}
}
