package mapper

import (
	"context"
	"fmt"

	"repro/internal/dna"
)

// Read is one named read arriving on a channel — the ingestion unit of
// MapReadStream. Name is used for error messages only; callers that need
// names later (SAM QNAMEs) keep their own record.
type Read struct {
	Name string
	Seq  []byte
}

// PairRead is one named FR mate pair arriving on a channel — the ingestion
// unit of MapPairStream. R1 and R2 are as sequenced (R2 reverse-complement
// oriented), exactly like ReadPair.
type PairRead struct {
	Name   string
	R1, R2 []byte
}

// MapReadStream is the channel-fed MapStream: reads enter the overlapped
// seeding → filter-stream → verification pipeline as they arrive from in
// (a FASTQ decoder, a network source), so the read set is never
// materialized — the mapper retains no reference to a sequence once its
// candidates are verified, and peak memory is bounded by in-flight work,
// not input size.
//
// ReadIDs are assigned in arrival order, so the output is byte-identical
// to MapStream over the same records collected into a slice. The producer
// must close in; on a terminal error (wrong-length record, filter failure)
// the remaining input is drained and discarded so the producer never
// blocks.
func (m *Mapper) MapReadStream(in <-chan Read, e int) ([]Mapping, Stats, error) {
	var reads int64
	mappings, st, err := m.mapQueryStream(e, func(ctx context.Context, out chan<- streamQuery) error {
		defer drain(in)
		id := 0
		for r := range in {
			if len(r.Seq) != m.cfg.ReadLen {
				return fmt.Errorf("mapper: streamed read %d (%q) has length %d, mapper built for %d",
					id, r.Name, len(r.Seq), m.cfg.ReadLen)
			}
			if !sendQuery(ctx, out, streamQuery{readID: id, seq: r.Seq}) {
				return nil
			}
			if m.cfg.BothStrands {
				q := streamQuery{readID: id, reverse: true, seq: dna.ReverseComplement(r.Seq)}
				if !sendQuery(ctx, out, q) {
					return nil
				}
			}
			id++
		}
		reads = int64(id)
		return nil
	})
	if err != nil {
		// The feed closure drains in when it runs; errors raised before it
		// starts (threshold validation, filter-stream open failure) must
		// honor the never-block guarantee too. Draining an already-drained
		// closed channel is a no-op.
		go drain(in)
		return nil, Stats{}, err
	}
	st.Reads = reads
	return mappings, st, nil
}

// MapPairStream is the channel-fed MapPairs: mate pairs enter the streaming
// pipeline as they arrive (each pair as its two interleaved mate queries,
// R1 forward and R2 reverse-complemented) and concordant pairs are resolved
// once the stream ends. A zero-value win estimates the insert window from
// the mapped sample (EstimateInsertWindow), as MapPairs does.
//
// The producer must close in; on a terminal error the remaining input is
// drained and discarded so the producer never blocks. Output is identical
// to MapPairs over the same pairs collected into a slice.
func (m *Mapper) MapPairStream(in <-chan PairRead, e int, win InsertWindow) ([]PairMapping, Stats, error) {
	if err := checkInsertWindow(win, m.cfg.ReadLen); err != nil {
		go drain(in) // never-block guarantee: see MapReadStream
		return nil, Stats{}, err
	}
	var nPairs int64
	mappings, st, err := m.mapQueryStream(e, func(ctx context.Context, out chan<- streamQuery) error {
		defer drain(in)
		id := 0
		for p := range in {
			if len(p.R1) != m.cfg.ReadLen || len(p.R2) != m.cfg.ReadLen {
				return fmt.Errorf("mapper: streamed pair %d (%q) has mate lengths %d/%d, mapper built for %d",
					id, p.Name, len(p.R1), len(p.R2), m.cfg.ReadLen)
			}
			if !m.feedMate(ctx, out, 2*id, p.R1) {
				return nil
			}
			if !m.feedMate(ctx, out, 2*id+1, dna.ReverseComplement(p.R2)) {
				return nil
			}
			id++
		}
		nPairs = int64(id)
		return nil
	})
	if err != nil {
		go drain(in) // never-block guarantee: see MapReadStream
		return nil, st, err
	}
	st.ReadPairs = nPairs
	resolved, err := m.resolveConcordant(mappings, win, &st)
	if err != nil {
		return nil, st, err
	}
	return resolved, st, nil
}

// feedMate sends one mate query (and its reverse complement under
// Config.BothStrands) into the pipeline.
func (m *Mapper) feedMate(ctx context.Context, out chan<- streamQuery, readID int, seq []byte) bool {
	if !sendQuery(ctx, out, streamQuery{readID: readID, seq: seq}) {
		return false
	}
	if m.cfg.BothStrands {
		q := streamQuery{readID: readID, reverse: true, seq: dna.ReverseComplement(seq)}
		if !sendQuery(ctx, out, q) {
			return false
		}
	}
	return true
}

// drain discards the rest of a channel so its producer can finish sending
// and close it.
func drain[T any](ch <-chan T) {
	for range ch {
	}
}
