package mapper

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dna"
	"repro/internal/lint"
)

// mapOracle is the seed implementation's map layout, kept as the oracle the
// CSR index must reproduce hit for hit.
func mapOracle(ref []byte, k int) map[uint32][]int64 {
	oracle := make(map[uint32][]int64)
	var key uint32
	mask := uint32(1)<<(2*k) - 1
	valid := 0
	for i, b := range ref {
		code, ok := dna.Code(b)
		if !ok {
			valid = 0
			key = 0
			continue
		}
		key = (key<<2 | uint32(code)) & mask
		valid++
		if valid >= k {
			oracle[key] = append(oracle[key], int64(i-k+1))
		}
	}
	return oracle
}

// randomRefWithNs builds a reference with occasional 'N' runs so the
// undefined-window skipping is exercised.
func randomRefWithNs(rng *rand.Rand, n int, nRate float64) []byte {
	ref := dna.RandomSeq(rng, n)
	for i := 0; i < n; i++ {
		if rng.Float64() < nRate {
			run := 1 + rng.Intn(4)
			for j := i; j < i+run && j < n; j++ {
				ref[j] = 'N'
			}
			i += run
		}
	}
	return ref
}

// TestIndexMatchesMapOracle holds the CSR layout to the map semantics:
// every indexed k-mer returns exactly the oracle's hit list, in the same
// (ascending) order, across seed lengths and 'N' densities.
func TestIndexMatchesMapOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, k := range []int{8, 11, 13, 16} {
		for _, cfg := range []struct {
			n     int
			nRate float64
		}{{200, 0}, {5000, 0}, {5000, 0.01}, {20000, 0.002}} {
			ref := randomRefWithNs(rng, cfg.n, cfg.nRate)
			idx, err := NewIndex(ref, k)
			if err != nil {
				t.Fatal(err)
			}
			oracle := mapOracle(ref, k)
			if idx.DistinctKmers() != len(oracle) {
				t.Fatalf("k=%d n=%d: distinct %d, oracle %d", k, cfg.n, idx.DistinctKmers(), len(oracle))
			}
			total := 0
			for _, hits := range oracle {
				total += len(hits)
			}
			if idx.Entries() != total {
				t.Fatalf("k=%d n=%d: entries %d, oracle %d", k, cfg.n, idx.Entries(), total)
			}
			// Query every window of the reference (including undefined ones)
			// plus random probes that likely miss.
			for i := 0; i+k <= len(ref); i++ {
				seed := ref[i : i+k]
				got := idx.Lookup(seed)
				if dna.HasN(seed) {
					if got != nil {
						t.Fatalf("k=%d: N-seed %q returned %d hits", k, seed, len(got))
					}
					continue
				}
				key := packKey(seed)
				want := oracle[key]
				if len(got) != len(want) {
					t.Fatalf("k=%d seed %q: %d hits, want %d", k, seed, len(got), len(want))
				}
				for j := range got {
					if got[j] != want[j] {
						t.Fatalf("k=%d seed %q: hit[%d]=%d, want %d", k, seed, j, got[j], want[j])
					}
				}
			}
			for probe := 0; probe < 200; probe++ {
				seed := dna.RandomSeq(rng, k)
				got := idx.Lookup(seed)
				want := oracle[packKey(seed)]
				if len(got) != len(want) {
					t.Fatalf("k=%d random seed %q: %d hits, want %d", k, seed, len(got), len(want))
				}
			}
		}
	}
}

func packKey(seed []byte) uint32 {
	var key uint32
	for _, b := range seed {
		code, _ := dna.Code(b)
		key = key<<2 | uint32(code)
	}
	return key
}

// TestIndexLowComplexityReference drives the skewed-bucket path: a
// two-letter, heavily biased reference shares key prefixes so aggressively
// that single buckets exceed the insertion-sort threshold, exercising the
// stable-sort fallback while the oracle pins correctness (hit lists must
// stay position-ascending per key).
func TestIndexLowComplexityReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ref := make([]byte, 30_000)
	for i := range ref {
		if rng.Float64() < 0.9 {
			ref[i] = 'A'
		} else {
			ref[i] = 'C'
		}
	}
	for _, k := range []int{13, 16} {
		idx, err := NewIndex(ref, k)
		if err != nil {
			t.Fatal(err)
		}
		oracle := mapOracle(ref, k)
		if idx.DistinctKmers() != len(oracle) {
			t.Fatalf("k=%d: distinct %d, oracle %d", k, idx.DistinctKmers(), len(oracle))
		}
		for i := 0; i+k <= len(ref); i += 7 {
			seed := ref[i : i+k]
			got := idx.Lookup(seed)
			want := oracle[packKey(seed)]
			if len(got) != len(want) {
				t.Fatalf("k=%d seed@%d: %d hits, want %d", k, i, len(got), len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("k=%d seed@%d hit[%d]=%d, want %d (order must be position-ascending)",
						k, i, j, got[j], want[j])
				}
			}
		}
	}
}

func TestIndexLookupWrongLength(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ref := dna.RandomSeq(rng, 1000)
	idx, err := NewIndex(ref, 13)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Lookup(ref[:12]) != nil {
		t.Fatal("short seed returned hits")
	}
	if idx.Lookup(ref[:14]) != nil {
		t.Fatal("long seed returned hits")
	}
}

// TestIndexLookupZeroAllocs is the CSR hot-path guard: a Lookup, hit or
// miss, must not allocate.
func TestIndexLookupZeroAllocs(t *testing.T) {
	// Runtime guard and static analyzer must cover the same function.
	if !lint.IsNoAlloc("repro/internal/mapper", "Index.Lookup") {
		t.Fatal("Index.Lookup is not in lint.NoAllocRegistry; static and runtime guards have drifted")
	}
	if raceEnabled {
		t.Skip("race instrumentation allocates; run without -race")
	}
	rng := rand.New(rand.NewSource(3))
	ref := dna.RandomSeq(rng, 100_000)
	idx, err := NewIndex(ref, DefaultSeedLen)
	if err != nil {
		t.Fatal(err)
	}
	hit := ref[500 : 500+DefaultSeedLen]
	miss := dna.RandomSeq(rng, DefaultSeedLen)
	var sink []int64
	if allocs := testing.AllocsPerRun(1000, func() {
		sink = idx.Lookup(hit)
		sink = idx.Lookup(miss)
	}); allocs != 0 {
		t.Fatalf("Index.Lookup allocated %.1f allocs/op, want 0", allocs)
	}
	_ = sink
}

func BenchmarkIndexBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	ref := dna.RandomSeq(rng, 500_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewIndex(ref, DefaultSeedLen); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReferenceIndexBuild measures the sharded multi-contig build: 16
// contigs totalling the same 500kb as BenchmarkIndexBuild, so comparing the
// two shows what the per-contig-shard parallelism buys.
func BenchmarkReferenceIndexBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	recs := make([]dna.Record, 16)
	for i := range recs {
		recs[i] = dna.Record{Name: fmt.Sprintf("chr%d", i), Seq: dna.RandomSeq(rng, 500_000/16)}
	}
	ref, err := NewReference(recs)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewReferenceIndex(ref, DefaultSeedLen); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndexLookup(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	ref := dna.RandomSeq(rng, 500_000)
	idx, err := NewIndex(ref, DefaultSeedLen)
	if err != nil {
		b.Fatal(err)
	}
	// Query seeds drawn from the reference so most lookups hit.
	seeds := make([][]byte, 1024)
	for i := range seeds {
		p := rng.Intn(len(ref) - DefaultSeedLen)
		seeds[i] = ref[p : p+DefaultSeedLen]
	}
	b.ReportAllocs()
	b.ResetTimer()
	var total int
	for i := 0; i < b.N; i++ {
		total += len(idx.Lookup(seeds[i&1023]))
	}
	_ = total
}
