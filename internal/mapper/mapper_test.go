package mapper

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cuda"
	"repro/internal/dna"
	"repro/internal/gkgpu"
	"repro/internal/simdata"
)

func testGenome(n int) []byte {
	cfg := simdata.DefaultGenomeConfig(n)
	cfg.NRate = 0.0001
	return simdata.Genome(cfg)
}

func TestIndexLookupFindsEveryPosition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ref := dna.RandomSeq(rng, 5000)
	idx, err := NewIndex(ref, 13)
	if err != nil {
		t.Fatal(err)
	}
	for _, pos := range []int{0, 1, 100, 2500, 5000 - 13} {
		hits := idx.Lookup(ref[pos : pos+13])
		found := false
		for _, h := range hits {
			if int(h) == pos {
				found = true
			}
		}
		if !found {
			t.Fatalf("position %d not found by its own k-mer", pos)
		}
	}
	if idx.K() != 13 {
		t.Fatal("K accessor")
	}
	if idx.DistinctKmers() == 0 {
		t.Fatal("no k-mers indexed")
	}
}

func TestIndexSkipsN(t *testing.T) {
	ref := []byte(strings.Repeat("ACGT", 10) + "N" + strings.Repeat("ACGT", 10))
	idx, err := NewIndex(ref, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Windows overlapping the N must not be indexed: looking up a window
	// that would span it finds only clean copies.
	if hits := idx.Lookup([]byte("NACGTACG")); hits != nil {
		t.Fatal("lookup with N returned hits")
	}
}

func TestIndexValidation(t *testing.T) {
	if _, err := NewIndex([]byte("ACGT"), 13); err == nil {
		t.Fatal("reference shorter than seed accepted")
	}
	if _, err := NewIndex(make([]byte, 100), 7); err == nil {
		t.Fatal("seed length below 8 accepted")
	}
	if _, err := NewIndex(make([]byte, 100), 17); err == nil {
		t.Fatal("seed length above 16 accepted")
	}
}

func TestMapperFindsTrueLocations(t *testing.T) {
	g := testGenome(300_000)
	reads, err := simdata.SimulateReads(g, simdata.Illumina100, 150, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(g, Config{ReadLen: 100, MaxE: 5})
	if err != nil {
		t.Fatal(err)
	}
	seqs := make([][]byte, len(reads))
	for i, r := range reads {
		seqs[i] = r.Seq
	}
	mappings, st, err := m.MapReads(seqs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if st.Reads != 150 {
		t.Fatalf("Reads = %d", st.Reads)
	}
	// Every read whose true window is within threshold must be mapped at
	// (or very near) its origin.
	byRead := map[int][]Mapping{}
	for _, mp := range mappings {
		byRead[mp.ReadID] = append(byRead[mp.ReadID], mp)
	}
	missed := 0
	for i, r := range reads {
		if dna.HasN(r.Seq) {
			continue
		}
		found := false
		for _, mp := range byRead[i] {
			if abs(mp.Pos-r.TruePos) <= 5 {
				found = true
			}
		}
		if !found {
			missed++
		}
	}
	if missed > 8 { // a few reads legitimately exceed the threshold
		t.Errorf("%d/150 reads not mapped near their origin", missed)
	}
	if st.Mappings == 0 || st.MappedReads == 0 || st.CandidatePairs == 0 {
		t.Fatalf("counters empty: %+v", st)
	}
	if st.VerificationPairs != st.CandidatePairs {
		t.Fatal("without a filter, every candidate must be verified")
	}
}

func TestMapperWithGPUFilterSameMappings(t *testing.T) {
	// The headline integration claim (Table 3): with GateKeeper-GPU the
	// mapper reports the same mappings while verifying far fewer pairs.
	g := testGenome(200_000)
	reads, err := simdata.SimulateReads(g, simdata.Illumina100, 120, 3)
	if err != nil {
		t.Fatal(err)
	}
	seqs := make([][]byte, len(reads))
	for i, r := range reads {
		seqs[i] = r.Seq
	}

	plain, err := New(g, Config{ReadLen: 100, MaxE: 5})
	if err != nil {
		t.Fatal(err)
	}
	baseMappings, baseStats, err := plain.MapReads(seqs, 5)
	if err != nil {
		t.Fatal(err)
	}

	ctx := cuda.NewUniformContext(1, cuda.GTX1080Ti())
	eng, err := gkgpu.NewEngine(gkgpu.Config{ReadLen: 100, MaxE: 5, MaxBatchPairs: 4096}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	filtered, err := New(g, Config{ReadLen: 100, MaxE: 5, Filter: eng})
	if err != nil {
		t.Fatal(err)
	}
	filtMappings, filtStats, err := filtered.MapReads(seqs, 5)
	if err != nil {
		t.Fatal(err)
	}

	if len(filtMappings) != len(baseMappings) {
		t.Fatalf("filter changed mapping count: %d vs %d", len(filtMappings), len(baseMappings))
	}
	for i := range filtMappings {
		if filtMappings[i] != baseMappings[i] {
			t.Fatalf("mapping %d differs: %+v vs %+v", i, filtMappings[i], baseMappings[i])
		}
	}
	if filtStats.VerificationPairs >= baseStats.VerificationPairs {
		t.Fatalf("filter did not reduce verification pairs: %d vs %d",
			filtStats.VerificationPairs, baseStats.VerificationPairs)
	}
	if filtStats.RejectedPairs == 0 {
		t.Fatal("filter rejected nothing")
	}
	if filtStats.RejectedPairs+filtStats.VerificationPairs != filtStats.CandidatePairs {
		t.Fatal("candidate accounting does not add up")
	}
	if filtStats.Reduction() <= 0 {
		t.Fatal("reduction not positive")
	}
	if filtStats.FilterKernelModel <= 0 || filtStats.FilterModelSeconds <= 0 {
		t.Fatal("modelled filter times not captured")
	}
}

func TestMapperBatchingInvariance(t *testing.T) {
	g := testGenome(120_000)
	reads, err := simdata.SimulateReads(g, simdata.Illumina100, 60, 4)
	if err != nil {
		t.Fatal(err)
	}
	seqs := make([][]byte, len(reads))
	for i, r := range reads {
		seqs[i] = r.Seq
	}
	var prev []Mapping
	for _, batch := range []int{7, 25, 1000} {
		m, err := New(g, Config{ReadLen: 100, MaxE: 4, MaxReadsPerBatch: batch})
		if err != nil {
			t.Fatal(err)
		}
		mappings, _, err := m.MapReads(seqs, 4)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil {
			if len(mappings) != len(prev) {
				t.Fatalf("batch=%d changed mapping count", batch)
			}
			for i := range mappings {
				if mappings[i] != prev[i] {
					t.Fatalf("batch=%d mapping %d differs", batch, i)
				}
			}
		}
		prev = mappings
	}
}

func TestMapperValidation(t *testing.T) {
	g := testGenome(50_000)
	if _, err := New(g, Config{ReadLen: 0, MaxE: 2}); err == nil {
		t.Fatal("zero read length accepted")
	}
	if _, err := New(g, Config{ReadLen: 100, MaxE: 100}); err == nil {
		t.Fatal("e >= L accepted")
	}
	if _, err := New(g, Config{ReadLen: 10, MaxE: 2, SeedLen: 13}); err == nil {
		t.Fatal("seed longer than read accepted")
	}
	m, err := New(g, Config{ReadLen: 100, MaxE: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.MapReads([][]byte{make([]byte, 50)}, 3); err == nil {
		t.Fatal("wrong-length read accepted")
	}
	if _, _, err := m.MapReads(nil, 4); err == nil {
		t.Fatal("threshold above MaxE accepted")
	}
}

func TestMapperExactReadsAtEZero(t *testing.T) {
	g := testGenome(80_000)
	rng := rand.New(rand.NewSource(5))
	var seqs [][]byte
	var truth []int
	for i := 0; i < 40; i++ {
		pos := rng.Intn(len(g) - 100)
		window := g[pos : pos+100]
		if dna.HasN(window) {
			continue
		}
		seqs = append(seqs, append([]byte(nil), window...))
		truth = append(truth, pos)
	}
	m, err := New(g, Config{ReadLen: 100, MaxE: 2})
	if err != nil {
		t.Fatal(err)
	}
	mappings, st, err := m.MapReads(seqs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.MappedReads != int64(len(seqs)) {
		t.Fatalf("only %d/%d exact reads mapped", st.MappedReads, len(seqs))
	}
	for _, mp := range mappings {
		if mp.Distance != 0 {
			t.Fatalf("exact read mapped with distance %d", mp.Distance)
		}
	}
	_ = truth
}

func TestMapperBothStrands(t *testing.T) {
	g := testGenome(100_000)
	rng := rand.New(rand.NewSource(9))
	// Half the reads come from the reverse strand.
	var seqs [][]byte
	var wantReverse []bool
	for i := 0; i < 40; i++ {
		pos := rng.Intn(len(g) - 100)
		window := g[pos : pos+100]
		if dna.HasN(window) {
			continue
		}
		read := dna.MutateSubstitutions(rng, window, 2)
		if i%2 == 1 {
			read = dna.ReverseComplement(read)
			wantReverse = append(wantReverse, true)
		} else {
			wantReverse = append(wantReverse, false)
		}
		seqs = append(seqs, read)
	}

	// Forward-only mapping misses the reverse-strand reads.
	fwd, err := New(g, Config{ReadLen: 100, MaxE: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, fwdStats, err := fwd.MapReads(seqs, 4)
	if err != nil {
		t.Fatal(err)
	}

	both, err := New(g, Config{ReadLen: 100, MaxE: 4, BothStrands: true})
	if err != nil {
		t.Fatal(err)
	}
	mappings, bothStats, err := both.MapReads(seqs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if bothStats.MappedReads != int64(len(seqs)) {
		t.Fatalf("both-strand mapping mapped %d/%d reads", bothStats.MappedReads, len(seqs))
	}
	if fwdStats.MappedReads >= bothStats.MappedReads {
		t.Fatalf("forward-only (%d) should map fewer reads than both-strand (%d)",
			fwdStats.MappedReads, bothStats.MappedReads)
	}
	// Reverse-origin reads must carry Reverse mappings.
	byRead := map[int]bool{}
	for _, mp := range mappings {
		if mp.Reverse {
			byRead[mp.ReadID] = true
		}
	}
	for i, rev := range wantReverse {
		if rev && !byRead[i] {
			t.Errorf("read %d from the reverse strand has no reverse mapping", i)
		}
	}
}

func TestMapperBothStrandsWithGPUFilter(t *testing.T) {
	g := testGenome(60_000)
	rng := rand.New(rand.NewSource(10))
	var seqs [][]byte
	for i := 0; i < 20; i++ {
		pos := rng.Intn(len(g) - 100)
		window := g[pos : pos+100]
		if dna.HasN(window) {
			continue
		}
		read := dna.MutateSubstitutions(rng, window, 2)
		if i%2 == 1 {
			read = dna.ReverseComplement(read)
		}
		seqs = append(seqs, read)
	}
	ctx := cuda.NewUniformContext(1, cuda.GTX1080Ti())
	eng, err := gkgpu.NewEngine(gkgpu.Config{ReadLen: 100, MaxE: 4, MaxBatchPairs: 4096}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	m, err := New(g, Config{ReadLen: 100, MaxE: 4, BothStrands: true, Filter: eng})
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := m.MapReads(seqs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.MappedReads != int64(len(seqs)) {
		t.Fatalf("filtered both-strand mapping mapped %d/%d reads", st.MappedReads, len(seqs))
	}
}

func TestSAMReverseFlag(t *testing.T) {
	reads := [][]byte{[]byte("ACGTACGT")}
	mappings := []Mapping{{ReadID: 0, Pos: 10, Distance: 0, Reverse: true}}
	var buf bytes.Buffer
	if err := WriteSAM(&buf, SingleContig("chr", make([]byte, 100)), nil, reads, mappings); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "read0\t16\tchr") {
		t.Fatalf("reverse flag missing:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "ACGTACGT") { // palindromic revcomp here
		t.Fatal("sequence missing")
	}
}

func TestMapperTracebackCIGAR(t *testing.T) {
	g := testGenome(80_000)
	reads, err := simdata.SimulateReads(g, simdata.Illumina100, 40, 6)
	if err != nil {
		t.Fatal(err)
	}
	seqs := make([][]byte, len(reads))
	for i, r := range reads {
		seqs[i] = r.Seq
	}
	m, err := New(g, Config{ReadLen: 100, MaxE: 4, Traceback: true})
	if err != nil {
		t.Fatal(err)
	}
	mappings, _, err := m.MapReads(seqs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(mappings) == 0 {
		t.Fatal("no mappings")
	}
	for _, mp := range mappings {
		if mp.CIGAR == "" {
			t.Fatalf("mapping without CIGAR: %+v", mp)
		}
		if mp.Distance == 0 && mp.CIGAR != "100M" {
			t.Fatalf("exact mapping with CIGAR %s", mp.CIGAR)
		}
	}
	// Distances must agree with the non-traceback run.
	plain, err := New(g, Config{ReadLen: 100, MaxE: 4})
	if err != nil {
		t.Fatal(err)
	}
	plainMappings, _, err := plain.MapReads(seqs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(plainMappings) != len(mappings) {
		t.Fatalf("traceback changed mapping count: %d vs %d", len(mappings), len(plainMappings))
	}
	for i := range mappings {
		if mappings[i].Distance != plainMappings[i].Distance ||
			mappings[i].Pos != plainMappings[i].Pos {
			t.Fatalf("traceback changed mapping %d", i)
		}
	}
}

func TestWriteSAM(t *testing.T) {
	reads := [][]byte{[]byte("ACGTACGT")}
	mappings := []Mapping{{ReadID: 0, Pos: 41, Distance: 2}}
	chrSim := SingleContig("chrSim", make([]byte, 1000))
	var buf bytes.Buffer
	if err := WriteSAM(&buf, chrSim, nil, reads, mappings); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"@SQ\tSN:chrSim\tLN:1000", "read0\t0\tchrSim\t42\t255\t8M", "NM:i:2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("SAM output missing %q:\n%s", want, out)
		}
	}
	if err := WriteSAM(&buf, chrSim, nil, reads, []Mapping{{ReadID: 5}}); err == nil {
		t.Fatal("dangling read ID accepted")
	}
	if err := WriteSAM(&buf, chrSim, nil, reads, []Mapping{{ReadID: 0, Contig: 3}}); err == nil {
		t.Fatal("dangling contig index accepted")
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
