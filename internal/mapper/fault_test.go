package mapper

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/cuda"
	"repro/internal/dna"
	"repro/internal/gkgpu"
	"repro/internal/simdata"
)

// failingReader yields its payload, then fails every subsequent Read.
type failingReader struct {
	data []byte
	err  error
}

func (r *failingReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, r.err
	}
	n := copy(p, r.data)
	r.data = r.data[n:]
	return n, nil
}

func TestMapReadStreamFASTQMidStreamIOError(t *testing.T) {
	// The gkmap ingestion shape: a producer decodes FASTQ incrementally and
	// feeds MapReadStream. When the reader dies after N records, the decoder's
	// line-numbered error is the root cause the producer reports, and the
	// mappings for every record emitted before the failure are exactly what
	// mapping those records alone produces.
	g := testGenome(60_000)
	reads, err := simdata.SimulateReads(g, simdata.Illumina100, 30, 25)
	if err != nil {
		t.Fatal(err)
	}
	const survive = 20
	var payload bytes.Buffer
	for i := 0; i < survive; i++ {
		fmt.Fprintf(&payload, "@r%d\n%s\n+\n%s\n", i, reads[i].Seq, strings.Repeat("I", len(reads[i].Seq)))
	}
	boom := errors.New("read: input/output error")

	m, err := New(g, Config{ReadLen: 100, MaxE: 5, StreamWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan Read)
	feedErr := make(chan error, 1)
	go func() {
		defer close(ch)
		sc := dna.NewFASTQScanner(&failingReader{data: payload.Bytes(), err: boom})
		for sc.Scan() {
			rec := sc.Record()
			ch <- Read{Name: rec.Name, Seq: rec.Seq}
		}
		feedErr <- sc.Err()
	}()
	got, st, err := m.MapReadStream(ch, 5)
	if err != nil {
		t.Fatalf("partial stream mapped with error: %v", err)
	}
	ferr := <-feedErr
	if !errors.Is(ferr, boom) {
		t.Fatalf("producer lost the underlying I/O error: %v", ferr)
	}
	if !strings.Contains(ferr.Error(), fmt.Sprintf("line %d", 4*survive+1)) {
		t.Fatalf("producer error not line-numbered at the failure point: %v", ferr)
	}
	if st.Reads != survive {
		t.Fatalf("mapped %d reads, want the %d decoded before the failure", st.Reads, survive)
	}

	seqs := make([][]byte, survive)
	for i := range seqs {
		seqs[i] = reads[i].Seq
	}
	want, _, err := m.MapStream(seqs, 5)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualMappings(t, got, want, "pre-failure mappings")
}

func TestMapReadStreamPropagatesFaultTaxonomy(t *testing.T) {
	// A device lost under the streaming pre-alignment filter must surface
	// through MapReadStream as the gkgpu taxonomy — program-level callers
	// (gkmap's exit path) route on these sentinels — and the producer must
	// still be fully drained.
	g := testGenome(60_000)
	reads, err := simdata.SimulateReads(g, simdata.Illumina100, 60, 26)
	if err != nil {
		t.Fatal(err)
	}
	cctx := cuda.NewUniformContext(1, cuda.GTX1080Ti())
	eng, err := gkgpu.NewEngine(gkgpu.Config{ReadLen: 100, MaxE: 5, MaxBatchPairs: 2048,
		StreamBatchPairs: 32, Fault: gkgpu.FaultPolicy{MaxAttempts: 1}}, cctx)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	m, err := New(g, Config{ReadLen: 100, MaxE: 5, Filter: eng, StreamWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	cctx.Device(0).InjectFaults(cuda.NewFaultPlan(1).Kill())

	ch := make(chan Read) // unbuffered: a stuck consumer would deadlock this test
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer close(ch)
		for i, r := range reads {
			ch <- Read{Name: fmt.Sprintf("r%d", i), Seq: r.Seq}
		}
	}()
	_, _, err = m.MapReadStream(ch, 5)
	if err == nil {
		t.Fatal("dead filter device produced a clean mapping run")
	}
	if !errors.Is(err, gkgpu.ErrStreamAborted) || !errors.Is(err, gkgpu.ErrDeviceLost) {
		t.Fatalf("taxonomy lost through the mapper: %v", err)
	}
	var df *gkgpu.DeviceFault
	if !errors.As(err, &df) {
		t.Fatalf("first classified fault not exposed through the mapper: %v", err)
	}
	<-done // producer finished every send despite the terminal filter failure
}

func TestMapPairStreamPropagatesFaultTaxonomy(t *testing.T) {
	g := testGenome(60_000)
	simPairs, err := simdata.SimulatePairs(g, simdata.Illumina100, 40, 400, 40, 27)
	if err != nil {
		t.Fatal(err)
	}
	cctx := cuda.NewUniformContext(1, cuda.GTX1080Ti())
	eng, err := gkgpu.NewEngine(gkgpu.Config{ReadLen: 100, MaxE: 5, MaxBatchPairs: 2048,
		StreamBatchPairs: 32, Fault: gkgpu.FaultPolicy{MaxAttempts: 1}}, cctx)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	m, err := New(g, Config{ReadLen: 100, MaxE: 5, Filter: eng, StreamWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	cctx.Device(0).InjectFaults(cuda.NewFaultPlan(1).Kill())

	ch := make(chan PairRead)
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer close(ch)
		for i, p := range simPairs {
			ch <- PairRead{Name: fmt.Sprintf("p%d", i), R1: p.R1.Seq, R2: p.R2.Seq}
		}
	}()
	_, _, err = m.MapPairStream(ch, 5, InsertWindow{Min: 240, Max: 560})
	if err == nil {
		t.Fatal("dead filter device produced a clean paired run")
	}
	if !errors.Is(err, gkgpu.ErrStreamAborted) || !errors.Is(err, gkgpu.ErrDeviceLost) {
		t.Fatalf("taxonomy lost through the paired mapper: %v", err)
	}
	<-done
}

func TestMapReadsPropagatesOneShotFaultTaxonomy(t *testing.T) {
	// The non-streaming path classifies too: FilterPairs faults reach
	// MapReads callers as gkgpu sentinels.
	g := testGenome(60_000)
	reads, err := simdata.SimulateReads(g, simdata.Illumina100, 40, 28)
	if err != nil {
		t.Fatal(err)
	}
	seqs := make([][]byte, len(reads))
	for i, r := range reads {
		seqs[i] = r.Seq
	}
	cctx := cuda.NewUniformContext(1, cuda.GTX1080Ti())
	eng, err := gkgpu.NewEngine(gkgpu.Config{ReadLen: 100, MaxE: 5, MaxBatchPairs: 2048}, cctx)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	m, err := New(g, Config{ReadLen: 100, MaxE: 5, Filter: eng})
	if err != nil {
		t.Fatal(err)
	}
	cctx.Device(0).InjectFaults(cuda.NewFaultPlan(1).Kill())
	if _, _, err := m.MapReads(seqs, 5); !errors.Is(err, gkgpu.ErrDeviceLost) {
		t.Fatalf("one-shot path lost the taxonomy: %v", err)
	}
}
