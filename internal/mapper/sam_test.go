package mapper

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestWriteSAMThreadsNames(t *testing.T) {
	reads := [][]byte{[]byte("ACGTACGT"), []byte("TTTTAAAA")}
	mappings := []Mapping{
		{ReadID: 0, Pos: 10, Distance: 1},
		{ReadID: 1, Pos: 50, Distance: 0},
	}
	var buf bytes.Buffer
	// Names with a description: QNAME is the id up to the first whitespace.
	names := []string{"SRR001.1 descriptive text", "SRR001.2\ttabbed"}
	if err := WriteSAM(&buf, SingleContig("chr", make([]byte, 1000)), names, reads, mappings); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "SRR001.1\t0\tchr\t11") {
		t.Fatalf("first QNAME not threaded/truncated:\n%s", out)
	}
	if !strings.Contains(out, "SRR001.2\t0\tchr\t51") {
		t.Fatalf("second QNAME not threaded/truncated:\n%s", out)
	}
	if strings.Contains(out, "descriptive") || strings.Contains(out, "tabbed") {
		t.Fatalf("description leaked into QNAME:\n%s", out)
	}

	// Short or empty names fall back to read%d (simulated read sets).
	buf.Reset()
	if err := WriteSAM(&buf, SingleContig("chr", make([]byte, 1000)), []string{""}, reads, mappings); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	if !strings.Contains(out, "read0\t0") || !strings.Contains(out, "read1\t0") {
		t.Fatalf("fallback QNAMEs missing:\n%s", out)
	}
}

func TestWritePairedSAMGolden(t *testing.T) {
	// Two hand-built concordant pairs over a tiny reference: pair 0 is the
	// usual forward-strand fragment (R1 left, forward), pair 1 a
	// reverse-strand fragment (both mate queries mapped reversed, R2's
	// window leftmost). Sequences are chosen non-palindromic so orientation
	// mistakes change the output.
	pairs := []ReadPair{
		{R1: []byte("AACC"), R2: []byte("GGTT")}, // revcomp(R2) = AACC
		{R1: []byte("ACGG"), R2: []byte("TTCA")}, // revcomp(R2) = TGAA
	}
	names := []string{"frag.1/1 pos=10", "frag.2"}
	resolved := []PairMapping{
		{
			PairID: 0,
			Mate1:  Mapping{ReadID: 0, Pos: 10, Distance: 1},
			Mate2:  Mapping{ReadID: 1, Pos: 26, Distance: 0},
			Insert: 20,
		},
		{
			PairID: 1,
			Mate1:  Mapping{ReadID: 2, Pos: 58, Distance: 0, Reverse: true},
			Mate2:  Mapping{ReadID: 3, Pos: 40, Distance: 2, Reverse: true},
			Insert: 22,
		},
	}
	var buf bytes.Buffer
	if err := WritePairedSAM(&buf, SingleContig("chrT", make([]byte, 100)), names, pairs, resolved); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"@HD\tVN:1.6\tSO:unsorted",
		"@SQ\tSN:chrT\tLN:100",
		"@PG\tID:gatekeeper-gpu-repro\tPN:gkmap",
		// Forward fragment: R1 99 (paired|proper|mate-rev|first), leftmost,
		// TLEN +20; R2 147 (paired|proper|rev|last), SEQ revcomp(GGTT)=AACC.
		"frag.1\t99\tchrT\t11\t255\t4M\t=\t27\t20\tAACC\t*\tNM:i:1",
		"frag.1\t147\tchrT\t27\t255\t4M\t=\t11\t-20\tAACC\t*\tNM:i:0",
		// Reverse fragment: R1 83 (paired|proper|rev|first), rightmost,
		// TLEN -22, SEQ revcomp(ACGG)=CCGT; R2 163 (paired|proper|mate-rev|
		// last), leftmost, TLEN +22, SEQ as sequenced.
		"frag.2\t83\tchrT\t59\t255\t4M\t=\t41\t-22\tCCGT\t*\tNM:i:0",
		"frag.2\t163\tchrT\t41\t255\t4M\t=\t59\t22\tTTCA\t*\tNM:i:2",
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Fatalf("paired SAM drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// Dangling pair IDs are rejected, as WriteSAM rejects dangling reads.
	if err := WritePairedSAM(&buf, SingleContig("chrT", make([]byte, 100)), nil, pairs, []PairMapping{{PairID: 7}}); err == nil {
		t.Fatal("dangling pair ID accepted")
	}
}

func TestWritePairedSAMFlagInvariants(t *testing.T) {
	// Across both fragment orientations: exactly one record carries 0x40
	// and one 0x80, strand and mate-strand bits mirror each other, and both
	// records claim paired+proper.
	pairs := []ReadPair{{R1: []byte("AACC"), R2: []byte("GGTT")}}
	for _, reverse := range []bool{false, true} {
		resolved := []PairMapping{{
			Mate1:  Mapping{Pos: 5, Reverse: reverse},
			Mate2:  Mapping{Pos: 20, Reverse: reverse},
			Insert: 19,
		}}
		var buf bytes.Buffer
		if err := WritePairedSAM(&buf, SingleContig("c", make([]byte, 50)), nil, pairs, resolved); err != nil {
			t.Fatal(err)
		}
		var flags []int
		for _, line := range strings.Split(buf.String(), "\n") {
			if line == "" || strings.HasPrefix(line, "@") {
				continue
			}
			cols := strings.Split(line, "\t")
			f, err := strconv.Atoi(cols[1])
			if err != nil {
				t.Fatalf("flag column %q: %v", cols[1], err)
			}
			flags = append(flags, f)
		}
		if len(flags) != 2 {
			t.Fatalf("reverse=%v: %d records", reverse, len(flags))
		}
		f1, f2 := flags[0], flags[1]
		if f1&0x1 == 0 || f1&0x2 == 0 || f2&0x1 == 0 || f2&0x2 == 0 {
			t.Fatalf("reverse=%v: paired/proper missing: %d %d", reverse, f1, f2)
		}
		if f1&0x40 == 0 || f1&0x80 != 0 || f2&0x80 == 0 || f2&0x40 != 0 {
			t.Fatalf("reverse=%v: first/last bits wrong: %d %d", reverse, f1, f2)
		}
		if (f1&0x10 != 0) != (f2&0x20 != 0) || (f2&0x10 != 0) != (f1&0x20 != 0) {
			t.Fatalf("reverse=%v: strand/mate-strand mismatch: %d %d", reverse, f1, f2)
		}
		if (f1&0x10 != 0) == (f2&0x10 != 0) {
			t.Fatalf("reverse=%v: FR mates must align on opposite strands: %d %d", reverse, f1, f2)
		}
	}
}
