package mapper

import (
	"fmt"
	"strings"

	"repro/internal/dna"
	"repro/internal/metrics"
)

// Contig is one named sequence of a multi-contig reference: a chromosome,
// scaffold, or plasmid of a whole-genome FASTA. Its bases live at
// [Off, Off+Len) of the Reference's concatenated sequence.
type Contig struct {
	Name string
	Desc string // FASTA header description, "" when none
	Off  int    // offset into the concatenated sequence
	Len  int
}

// End returns the offset one past the contig's last base.
//
//gk:noalloc
func (c Contig) End() int { return c.Off + c.Len }

// Reference is a multi-contig reference genome: the contigs' bases
// concatenated back to back (no separator bytes, so a single-contig
// Reference is bit-identical to the flat []byte the mapper historically
// took), plus the name/offset/length table that maps a concatenated-sequence
// position back to (contig, contig-relative position). Whole-genome
// references are multi-contig by construction; every boundary-sensitive
// stage of the mapper — k-mer indexing, candidate generation, paired-end
// concordance, SAM emission — consults this table so no window ever
// straddles two contigs.
type Reference struct {
	seq     []byte
	contigs []Contig
}

// NewReference builds a Reference from FASTA records, in record order.
// Contig names are the records' ids; a name still carrying whitespace (a
// hand-built record with the full header in Name) is split at the first
// whitespace so identifiers stay SAM-legal. Names must be non-empty and
// unique; empty contigs are rejected (SAM requires LN >= 1).
func NewReference(recs []dna.Record) (*Reference, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("mapper: reference has no contigs")
	}
	r := &Reference{contigs: make([]Contig, 0, len(recs))}
	seen := make(map[string]bool, len(recs))
	total := 0
	for _, rec := range recs {
		total += len(rec.Seq)
	}
	r.seq = make([]byte, 0, total)
	for i, rec := range recs {
		name, desc := rec.Name, rec.Desc
		if j := strings.IndexAny(name, " \t"); j >= 0 {
			d := strings.TrimSpace(name[j+1:])
			name = name[:j]
			if desc == "" {
				desc = d
			}
		}
		if name == "" {
			return nil, fmt.Errorf("mapper: contig %d has no name", i)
		}
		if seen[name] {
			return nil, fmt.Errorf("mapper: duplicate contig name %q", name)
		}
		seen[name] = true
		if len(rec.Seq) == 0 {
			return nil, fmt.Errorf("mapper: contig %q is empty", name)
		}
		r.contigs = append(r.contigs, Contig{Name: name, Desc: desc, Off: len(r.seq), Len: len(rec.Seq)})
		r.seq = append(r.seq, rec.Seq...)
	}
	return r, nil
}

// SingleContig wraps one flat sequence as a single-contig Reference — the
// shape every pre-multi-contig caller used implicitly.
func SingleContig(name string, seq []byte) *Reference {
	if name == "" {
		name = "ref"
	}
	return &Reference{seq: seq, contigs: []Contig{{Name: name, Off: 0, Len: len(seq)}}}
}

// Seq returns the concatenated sequence. Positions produced by the index and
// the candidate stages address this slice.
func (r *Reference) Seq() []byte { return r.seq }

// Len returns the total base count across contigs.
func (r *Reference) Len() int { return len(r.seq) }

// NumContigs returns the contig count.
func (r *Reference) NumContigs() int { return len(r.contigs) }

// Contigs returns the contig table in reference order (read-only).
func (r *Reference) Contigs() []Contig { return r.contigs }

// Contig returns contig i.
func (r *Reference) Contig(i int) Contig { return r.contigs[i] }

// ContigSeq returns contig i's bases as a subslice of the concatenated
// sequence — the sanctioned way to walk one contig without touching global
// offsets.
func (r *Reference) ContigSeq(i int) []byte {
	c := r.contigs[i]
	return r.seq[c.Off:c.End()]
}

// ContigOff returns contig i's global offset in the concatenated sequence —
// the sanctioned way to translate a contig-relative position into the global
// coordinate space (the index build places global positions from it).
//
//gk:noalloc
func (r *Reference) ContigOff(i int) int { return r.contigs[i].Off }

// ContigOf returns the index of the contig containing concatenated position
// pos, or -1 when pos is outside the reference. Allocation-free (hot path:
// every candidate's boundary check goes through here).
//
//gk:noalloc
func (r *Reference) ContigOf(pos int) int {
	if pos < 0 || pos >= len(r.seq) {
		return -1
	}
	if len(r.contigs) == 1 {
		return 0
	}
	// First contig starting after pos, minus one.
	lo, hi := 0, len(r.contigs)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if r.contigs[m].Off <= pos {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return lo - 1
}

// Locate translates a concatenated position into (contig index,
// contig-relative position). pos must be inside the reference.
//
//gk:noalloc
func (r *Reference) Locate(pos int) (contig, rel int) {
	metrics.ContigLocates.Inc()
	c := r.ContigOf(pos)
	if c < 0 {
		panic(fmt.Sprintf("mapper: position %d outside reference of length %d", pos, len(r.seq))) //gk:allow noalloc: cold panic path, unreachable for in-range positions
	}
	return c, pos - r.contigs[c].Off
}

// WindowContig returns the contig index wholly containing the n-base window
// starting at concatenated position pos, or -1 when the window is out of
// range or straddles a contig boundary — the check that keeps cross-boundary
// candidates out of verification.
//
//gk:noalloc
func (r *Reference) WindowContig(pos, n int) int {
	c := r.ContigOf(pos)
	if c < 0 || pos+n > r.contigs[c].End() {
		return -1
	}
	return c
}

// LookupContig returns the index of the named contig, or -1. Linear: the
// contig table is small (chromosome-count sized) and kept in FASTA order.
func (r *Reference) LookupContig(name string) int {
	for i, c := range r.contigs {
		if c.Name == name {
			return i
		}
	}
	return -1
}
