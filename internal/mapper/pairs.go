package mapper

import (
	"fmt"
	"sort"

	"repro/internal/dna"
)

// ReadPair is one mate pair from an FR (forward/reverse) paired-end library:
// R1 reads into the fragment from its left end, R2 from its right end on the
// opposite strand, exactly as Illumina sequencers emit them.
type ReadPair struct {
	R1, R2 []byte
}

// InsertWindow bounds the accepted fragment length (outer distance: leftmost
// mapped base of one mate to rightmost mapped base of the other) for a
// concordant pair.
type InsertWindow struct {
	Min, Max int
}

// PairMapping is one resolved concordant paired-end mapping. Mate2 describes
// where the reverse complement of R2 maps on the forward strand, so both
// mates share one coordinate system; Insert is the outer fragment length.
type PairMapping struct {
	PairID       int
	Mate1, Mate2 Mapping
	Insert       int
}

// MapPairs maps read pairs through the streaming pipeline and resolves
// concordant pairs: both mates mapped in compatible orientation with the
// fragment length inside the insert window. Each pair contributes at most
// one PairMapping — the combination with the smallest summed edit distance
// (leftmost, then shortest insert, on ties). R1 is mapped as-is and R2 as
// its reverse complement, the FR orientation; under Config.BothStrands a
// fragment from the opposite strand is also found, as the combination where
// both mates' mappings carry Reverse=true.
//
// The returned Stats are MapStream's for the interleaved 2n mate reads,
// with ReadPairs and ConcordantPairs filled in.
func (m *Mapper) MapPairs(pairs []ReadPair, e int, win InsertWindow) ([]PairMapping, Stats, error) {
	if win.Min < 0 || win.Max < win.Min {
		return nil, Stats{}, fmt.Errorf("mapper: insert window [%d,%d] invalid", win.Min, win.Max)
	}
	if win.Min < m.cfg.ReadLen {
		return nil, Stats{}, fmt.Errorf("mapper: insert window minimum %d below read length %d",
			win.Min, m.cfg.ReadLen)
	}
	// Interleave the mates so one streaming pass maps both: query 2i is R1
	// of pair i, query 2i+1 is the reverse complement of its R2.
	seqs := make([][]byte, 0, 2*len(pairs))
	for _, p := range pairs {
		seqs = append(seqs, p.R1, dna.ReverseComplement(p.R2))
	}
	mappings, st, err := m.MapStream(seqs, e)
	if err != nil {
		return nil, st, err
	}
	st.ReadPairs = int64(len(pairs))

	L := m.cfg.ReadLen
	var resolved []PairMapping
	// mappings are sorted by ReadID, so each pair's two mates are adjacent
	// runs: readID 2i then 2i+1.
	for lo := 0; lo < len(mappings); {
		pairID := mappings[lo].ReadID / 2
		hi := lo
		var m1, m2 []Mapping
		for ; hi < len(mappings) && mappings[hi].ReadID/2 == pairID; hi++ {
			if mappings[hi].ReadID%2 == 0 {
				m1 = append(m1, mappings[hi])
			} else {
				m2 = append(m2, mappings[hi])
			}
		}
		if pm, ok := resolvePair(pairID, m1, m2, L, win); ok {
			resolved = append(resolved, pm)
		}
		lo = hi
	}
	st.ConcordantPairs = int64(len(resolved))
	sort.Slice(resolved, func(i, j int) bool { return resolved[i].PairID < resolved[j].PairID })
	return resolved, st, nil
}

// resolvePair picks the best concordant combination of one pair's mate
// mappings, if any: FR orientation, insert inside the window, minimal
// summed distance (then leftmost start, then shortest insert).
func resolvePair(pairID int, m1, m2 []Mapping, L int, win InsertWindow) (PairMapping, bool) {
	best := PairMapping{PairID: pairID}
	found := false
	better := func(a PairMapping, b PairMapping) bool {
		da, db := a.Mate1.Distance+a.Mate2.Distance, b.Mate1.Distance+b.Mate2.Distance
		if da != db {
			return da < db
		}
		la, lb := min(a.Mate1.Pos, a.Mate2.Pos), min(b.Mate1.Pos, b.Mate2.Pos)
		if la != lb {
			return la < lb
		}
		return a.Insert < b.Insert
	}
	for _, a := range m1 {
		for _, b := range m2 {
			// FR concordance is orientation AND order. On a forward-strand
			// fragment (both queries mapping forward) R1 reads the left end,
			// so its window must be leftmost; on a reverse-strand fragment
			// (both queries mapping reversed, under BothStrands) the layout
			// mirrors and R2's window is leftmost. Mixed orientations and
			// everted arrangements are discordant.
			if a.Reverse != b.Reverse {
				continue
			}
			if !a.Reverse && b.Pos < a.Pos {
				continue
			}
			if a.Reverse && a.Pos < b.Pos {
				continue
			}
			lo, hi := a.Pos, b.Pos
			if hi < lo {
				lo, hi = hi, lo
			}
			insert := hi + L - lo
			if insert < win.Min || insert > win.Max {
				continue
			}
			cand := PairMapping{PairID: pairID, Mate1: a, Mate2: b, Insert: insert}
			if !found || better(cand, best) {
				best = cand
				found = true
			}
		}
	}
	return best, found
}
