package mapper

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dna"
)

// ReadPair is one mate pair from an FR (forward/reverse) paired-end library:
// R1 reads into the fragment from its left end, R2 from its right end on the
// opposite strand, exactly as Illumina sequencers emit them.
type ReadPair struct {
	R1, R2 []byte
}

// InsertWindow bounds the accepted fragment length (outer distance: leftmost
// mapped base of one mate to rightmost mapped base of the other) for a
// concordant pair. The zero value asks the mapper to estimate the window
// from the data (EstimateInsertWindow), as real mappers do; a window with
// exactly one bound set (the other zero) estimates just the missing bound,
// so callers can pin one side and let the data pick the other. A merged or
// explicit window with Min > Max is rejected.
type InsertWindow struct {
	Min, Max int
}

// PairMapping is one resolved concordant paired-end mapping. Mate2 describes
// where the reverse complement of R2 maps on the forward strand, so both
// mates share one coordinate system; Insert is the outer fragment length.
type PairMapping struct {
	PairID       int
	Mate1, Mate2 Mapping
	Insert       int
}

// checkInsertWindow validates an explicit or partial window; the zero value
// passes (it selects estimation at resolution time), as does a window with
// one bound zero (that bound is estimated). An explicit Min > Max is
// rejected here, before any mapping work runs.
func checkInsertWindow(win InsertWindow, readLen int) error {
	if win.Min < 0 || win.Max < 0 {
		return fmt.Errorf("mapper: insert window [%d,%d] invalid", win.Min, win.Max)
	}
	if win.Min > 0 && win.Max > 0 && win.Max < win.Min {
		return fmt.Errorf("mapper: insert window [%d,%d] inverted (min > max)", win.Min, win.Max)
	}
	if win.Min > 0 && win.Min < readLen {
		return fmt.Errorf("mapper: insert window minimum %d below read length %d",
			win.Min, readLen)
	}
	return nil
}

// MapPairs maps read pairs through the streaming pipeline and resolves
// concordant pairs: both mates mapped to the same contig in compatible
// orientation with the fragment length inside the insert window. Each pair contributes at most
// one PairMapping — the combination with the smallest summed edit distance
// (leftmost, then shortest insert, on ties). R1 is mapped as-is and R2 as
// its reverse complement, the FR orientation; under Config.BothStrands a
// fragment from the opposite strand is also found, as the combination where
// both mates' mappings carry Reverse=true. A zero-value win estimates the
// window from a sample of confidently mapped pairs (EstimateInsertWindow).
//
// The returned Stats are MapStream's for the interleaved 2n mate reads,
// with the paired-end accounting (ReadPairs, ConcordantPairs, the window
// used and any estimate behind it) filled in. MapPairStream is the
// channel-fed form.
func (m *Mapper) MapPairs(pairs []ReadPair, e int, win InsertWindow) ([]PairMapping, Stats, error) {
	if err := checkInsertWindow(win, m.cfg.ReadLen); err != nil {
		return nil, Stats{}, err
	}
	// Interleave the mates so one streaming pass maps both: query 2i is R1
	// of pair i, query 2i+1 is the reverse complement of its R2.
	seqs := make([][]byte, 0, 2*len(pairs))
	for _, p := range pairs {
		seqs = append(seqs, p.R1, dna.ReverseComplement(p.R2))
	}
	mappings, st, err := m.MapStream(seqs, e)
	if err != nil {
		return nil, st, err
	}
	st.ReadPairs = int64(len(pairs))
	resolved, err := m.resolveConcordant(mappings, win, &st)
	if err != nil {
		return nil, st, err
	}
	return resolved, st, nil
}

// resolveConcordant groups interleaved-mate mappings (readID 2i = mate1,
// 2i+1 = reverse-complemented mate2) into concordant pairs under win,
// estimating any zero bound of the window first (both bounds for the zero
// value, just the missing one for a partial window), and records the window
// and pairing counters into st.
func (m *Mapper) resolveConcordant(mappings []Mapping, win InsertWindow, st *Stats) ([]PairMapping, error) {
	if win.Min == 0 || win.Max == 0 {
		est, ok := estimateInsert(mappings, m.cfg.ReadLen, 0)
		if !ok {
			return nil, fmt.Errorf("mapper: cannot estimate insert window: only %d confidently mapped pairs (need %d); pass an explicit window",
				est.SampledPairs, minInsertSample)
		}
		full := est.window(m.cfg.ReadLen)
		if win.Min == 0 {
			win.Min = full.Min
		}
		if win.Max == 0 {
			win.Max = full.Max
		}
		if win.Max < win.Min {
			return nil, fmt.Errorf("mapper: insert window [%d,%d] inverted after estimating the missing bound (estimated %v from mean %.0f ± %.0f); pass both bounds explicitly",
				win.Min, win.Max, full, est.Mean, est.Std)
		}
		st.InsertMean, st.InsertStd = est.Mean, est.Std
		st.InsertSampledPairs = int64(est.SampledPairs)
	}
	st.InsertWindowMin, st.InsertWindowMax = win.Min, win.Max

	L := m.cfg.ReadLen
	var resolved []PairMapping
	// mappings are sorted by ReadID, so each pair's two mates are adjacent
	// runs: readID 2i then 2i+1.
	for lo := 0; lo < len(mappings); {
		pairID := mappings[lo].ReadID / 2
		hi := lo
		var m1, m2 []Mapping
		for ; hi < len(mappings) && mappings[hi].ReadID/2 == pairID; hi++ {
			if mappings[hi].ReadID%2 == 0 {
				m1 = append(m1, mappings[hi])
			} else {
				m2 = append(m2, mappings[hi])
			}
		}
		if pm, ok := resolvePair(pairID, m1, m2, L, win); ok {
			resolved = append(resolved, pm)
		}
		lo = hi
	}
	st.ConcordantPairs = int64(len(resolved))
	sort.Slice(resolved, func(i, j int) bool { return resolved[i].PairID < resolved[j].PairID })
	return resolved, nil
}

// resolvePair picks the best concordant combination of one pair's mate
// mappings, if any: same contig, FR orientation, insert inside the window,
// minimal summed distance (then leftmost start on the earliest contig, then
// shortest insert).
func resolvePair(pairID int, m1, m2 []Mapping, L int, win InsertWindow) (PairMapping, bool) {
	best := PairMapping{PairID: pairID}
	found := false
	better := func(a PairMapping, b PairMapping) bool {
		da, db := a.Mate1.Distance+a.Mate2.Distance, b.Mate1.Distance+b.Mate2.Distance
		if da != db {
			return da < db
		}
		if a.Mate1.Contig != b.Mate1.Contig {
			return a.Mate1.Contig < b.Mate1.Contig
		}
		la, lb := min(a.Mate1.Pos, a.Mate2.Pos), min(b.Mate1.Pos, b.Mate2.Pos)
		if la != lb {
			return la < lb
		}
		return a.Insert < b.Insert
	}
	for _, a := range m1 {
		for _, b := range m2 {
			// A fragment is one piece of one chromosome: mates mapping to
			// different contigs are discordant no matter how close their
			// contig-relative coordinates look.
			if a.Contig != b.Contig {
				continue
			}
			// FR concordance is orientation AND order. On a forward-strand
			// fragment (both queries mapping forward) R1 reads the left end,
			// so its window must be leftmost; on a reverse-strand fragment
			// (both queries mapping reversed, under BothStrands) the layout
			// mirrors and R2's window is leftmost. Mixed orientations and
			// everted arrangements are discordant.
			if a.Reverse != b.Reverse {
				continue
			}
			if !a.Reverse && b.Pos < a.Pos {
				continue
			}
			if a.Reverse && a.Pos < b.Pos {
				continue
			}
			lo, hi := a.Pos, b.Pos
			if hi < lo {
				lo, hi = hi, lo
			}
			insert := hi + L - lo
			if insert < win.Min || insert > win.Max {
				continue
			}
			cand := PairMapping{PairID: pairID, Mate1: a, Mate2: b, Insert: insert}
			if !found || better(cand, best) {
				best = cand
				found = true
			}
		}
	}
	return best, found
}

// minInsertSample is the fewest confidently mapped pairs an insert-window
// estimate may rest on; defaultInsertSample caps how many it measures.
const (
	minInsertSample     = 8
	defaultInsertSample = 10_000
)

// InsertEstimate reports the sample statistics behind an estimated insert
// window.
type InsertEstimate struct {
	SampledPairs int // confident pairs the estimate drew on (after outlier trimming)
	Mean, Std    float64
}

// window derives the concordance window from the fitted sample: mean ±
// (4·std + readLen/4) — four sigma covers essentially the whole fragment
// distribution and the readLen/4 pad keeps the window from under-covering
// on small or low-variance samples. Min is clamped to readLen.
func (e InsertEstimate) window(readLen int) InsertWindow {
	half := 4*e.Std + float64(readLen)/4
	lo := int(math.Floor(e.Mean - half))
	hi := int(math.Ceil(e.Mean + half))
	if lo < readLen {
		lo = readLen
	}
	if hi < lo {
		hi = lo
	}
	return InsertWindow{Min: lo, Max: hi}
}

// EstimateInsertWindow infers the concordance window real mappers guess
// from the data itself, removing the need for an explicit -insert-min/-max:
// it walks single-end mappings of interleaved mates (readID 2i = mate1,
// 2i+1 = reverse-complemented mate2, MapPairs' layout), measures the
// fragment length of every confidently mapped pair — both mates mapped
// uniquely, on the same contig, same strand, proper FR order — and fits
// mean and standard deviation to the sample. Split pairs (mates uniquely
// mapping to different contigs) are excluded: their contig-relative
// coordinate difference is not a fragment length. Wild fragments (a unique
// mis-mapping placing the mates arbitrarily far apart) are discarded beyond
// ~6 robust standard deviations of the median before fitting, MAD-style, so
// a handful of outliers cannot blow the window open.
//
// The window is mean ± (4·std + readLen/4) with Min clamped to readLen (see
// InsertEstimate.window). maxSample caps the pairs measured (<=0 uses
// 10,000); ok is false when fewer than minInsertSample confident pairs
// exist.
func EstimateInsertWindow(mappings []Mapping, readLen, maxSample int) (InsertWindow, InsertEstimate, bool) {
	est, ok := estimateInsert(mappings, readLen, maxSample)
	if !ok {
		return InsertWindow{}, est, false
	}
	return est.window(readLen), est, true
}

// estimateInsert is EstimateInsertWindow without the window derivation.
func estimateInsert(mappings []Mapping, readLen, maxSample int) (InsertEstimate, bool) {
	if maxSample <= 0 {
		maxSample = defaultInsertSample
	}
	var inserts []float64
	for lo := 0; lo < len(mappings) && len(inserts) < maxSample; {
		pairID := mappings[lo].ReadID / 2
		hi := lo
		var a, b Mapping
		var n1, n2 int
		for ; hi < len(mappings) && mappings[hi].ReadID/2 == pairID; hi++ {
			if mappings[hi].ReadID%2 == 0 {
				a, n1 = mappings[hi], n1+1
			} else {
				b, n2 = mappings[hi], n2+1
			}
		}
		lo = hi
		if n1 != 1 || n2 != 1 || a.Contig != b.Contig || a.Reverse != b.Reverse {
			continue
		}
		if !a.Reverse && b.Pos < a.Pos {
			continue
		}
		if a.Reverse && a.Pos < b.Pos {
			continue
		}
		pl, ph := a.Pos, b.Pos
		if ph < pl {
			pl, ph = ph, pl
		}
		inserts = append(inserts, float64(ph+readLen-pl))
	}
	if len(inserts) < minInsertSample {
		return InsertEstimate{SampledPairs: len(inserts)}, false
	}

	// Robust outlier trim: keep inserts within 6 MAD-sigmas of the median
	// (floored at readLen so a tight library does not trim itself away).
	sort.Float64s(inserts)
	med := quantile(inserts, 0.5)
	devs := make([]float64, len(inserts))
	for i, x := range inserts {
		devs[i] = math.Abs(x - med)
	}
	sort.Float64s(devs)
	cutoff := 6 * 1.4826 * quantile(devs, 0.5)
	if cutoff < float64(readLen) {
		cutoff = float64(readLen)
	}
	var kept []float64
	for _, x := range inserts {
		if math.Abs(x-med) <= cutoff {
			kept = append(kept, x)
		}
	}
	if len(kept) < minInsertSample {
		return InsertEstimate{SampledPairs: len(kept)}, false
	}

	var sum float64
	for _, x := range kept {
		sum += x
	}
	mean := sum / float64(len(kept))
	var ss float64
	for _, x := range kept {
		ss += (x - mean) * (x - mean)
	}
	std := math.Sqrt(ss / float64(len(kept)))
	return InsertEstimate{SampledPairs: len(kept), Mean: mean, Std: std}, true
}

// quantile returns the q-quantile of sorted xs by nearest-rank.
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	i := int(q * float64(len(xs)-1))
	return xs[i]
}
