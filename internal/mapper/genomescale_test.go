package mapper

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/dna"
)

// TestGenomeScaleBeyondInt32 is the acceptance proof of the 64-bit
// migration: a reference longer than 2^31 bases builds, serializes, loads,
// and maps end to end, with reads planted past the old int32 position
// ceiling mapping at their true coordinates — and the loaded index mapping
// exactly like the in-memory one. It allocates several gigabytes and runs
// minutes single-core, so it is opt-in.
func TestGenomeScaleBeyondInt32(t *testing.T) {
	if os.Getenv("GK_GENOMESCALE") == "" {
		t.Skip("set GK_GENOMESCALE=1 to run the >2^31-base end-to-end test (~8 GB RAM, minutes of runtime)")
	}
	rng := rand.New(rand.NewSource(77))
	const l1 = 1<<31 - 200_000 // chr1: just under the int32 bound
	const l2 = 50_000_000      // chr2: pushes the total past it
	recs := []dna.Record{
		{Name: "chr1", Seq: dna.RandomSeq(rng, l1)},
		{Name: "chr2", Seq: dna.RandomSeq(rng, l2)},
	}
	ref, err := NewReference(recs)
	if err != nil {
		t.Fatal(err)
	}
	recs = nil
	if int64(ref.Len()) <= math.MaxInt32 {
		t.Fatalf("reference is %d bases; the test needs > %d", ref.Len(), math.MaxInt32)
	}

	// Step 64 keeps the index a few hundred megabytes; the probe fan needs
	// k+step-1 = 76 <= ReadLen error-free bases, and the planted reads are
	// error-free in full.
	const L, step = 100, 64
	cfg := Config{ReadLen: L, MaxE: 0, SeedLen: 13, SeedStep: step}
	m, err := NewFromReference(ref, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Reads from the tail of chr2: every true position is past 2^31 in
	// global coordinates.
	cs := ref.ContigSeq(1)
	var reads [][]byte
	var wantPos []int
	for i := 0; i < 20; i++ {
		pos := len(cs) - L - i*997
		reads = append(reads, cs[pos:pos+L])
		wantPos = append(wantPos, pos)
	}

	check := func(name string, mappings []Mapping) {
		found := make([]bool, len(reads))
		for _, mp := range mappings {
			if mp.Contig == 1 && mp.Pos == wantPos[mp.ReadID] && mp.Distance == 0 {
				found[mp.ReadID] = true
				if global := int64(ref.ContigOff(1)) + int64(mp.Pos); global <= math.MaxInt32 {
					t.Fatalf("%s: read %d mapped at global %d, inside int32 range — test is vacuous", name, mp.ReadID, global)
				}
			}
		}
		for i, ok := range found {
			if !ok {
				t.Errorf("%s: read %d (true pos %d) not mapped at its true position", name, i, wantPos[i])
			}
		}
	}

	memMaps, _, err := m.MapReads(reads, 0)
	if err != nil {
		t.Fatal(err)
	}
	check("in-memory", memMaps)

	path := filepath.Join(t.TempDir(), "big.gkix")
	if err := m.Index().SerializeToFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := NewFromSerializedIndex(ref, path, Config{ReadLen: L, MaxE: 0})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Index().K() != 13 || loaded.Index().Step() != step {
		t.Fatalf("loaded geometry k=%d step=%d", loaded.Index().K(), loaded.Index().Step())
	}
	loadedMaps, _, err := loaded.MapReads(reads, 0)
	if err != nil {
		t.Fatal(err)
	}
	check("loaded", loadedMaps)
	if !reflect.DeepEqual(memMaps, loadedMaps) {
		t.Fatal("loaded index mapped differently from the in-memory index")
	}
}
