package mapper

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/dna"
)

// samQName makes a FASTQ name SAM-legal: the name up to the first
// whitespace (SAM QNAMEs cannot contain it; FASTQ headers often carry a
// description after the id), or the fallback when nothing remains.
func samQName(name, fallback string) string {
	if i := strings.IndexAny(name, " \t"); i >= 0 {
		name = name[:i]
	}
	if name == "" {
		return fallback
	}
	return name
}

// writeSAMHeader emits @HD, one @SQ per contig (in reference order), and @PG.
func writeSAMHeader(bw *bufio.Writer, ref *Reference) error {
	if _, err := bw.WriteString("@HD\tVN:1.6\tSO:unsorted\n"); err != nil {
		return err
	}
	for _, c := range ref.Contigs() {
		if _, err := fmt.Fprintf(bw, "@SQ\tSN:%s\tLN:%d\n", c.Name, c.Len); err != nil {
			return err
		}
	}
	_, err := bw.WriteString("@PG\tID:gatekeeper-gpu-repro\tPN:gkmap\n")
	return err
}

// contigName resolves a mapping's RNAME, range-checking the contig index.
func contigName(ref *Reference, contig int) (string, error) {
	if contig < 0 || contig >= ref.NumContigs() {
		return "", fmt.Errorf("mapper: mapping references contig %d of %d", contig, ref.NumContigs())
	}
	return ref.Contig(contig).Name, nil
}

// WriteSAM emits mappings as minimal SAM records against a multi-contig
// reference (header with one @SQ per contig, one line per mapping with the
// mapping's contig as RNAME and its contig-relative 1-based POS, NM tag
// carrying the verified edit distance), enough for downstream tooling to
// consume the reproduction's output. names carries the reads' FASTQ names
// for the QNAME column (truncated at the first whitespace); a nil or short
// names slice falls back to read%d for the uncovered reads, which is how
// simulated read sets are written.
func WriteSAM(w io.Writer, ref *Reference, names []string, reads [][]byte, mappings []Mapping) error {
	bw := bufio.NewWriter(w)
	if err := writeSAMHeader(bw, ref); err != nil {
		return err
	}
	for _, m := range mappings {
		if m.ReadID < 0 || m.ReadID >= len(reads) {
			return fmt.Errorf("mapper: mapping references read %d of %d", m.ReadID, len(reads))
		}
		rname, err := contigName(ref, m.Contig)
		if err != nil {
			return err
		}
		read := reads[m.ReadID]
		flag := 0
		if m.Reverse {
			flag = 16 // SAM reverse-strand flag; SEQ is the aligned orientation
			read = dna.ReverseComplement(read)
		}
		cigar := m.CIGAR
		if cigar == "" {
			cigar = fmt.Sprintf("%dM", len(read))
		}
		qname := fmt.Sprintf("read%d", m.ReadID)
		if m.ReadID < len(names) {
			qname = samQName(names[m.ReadID], qname)
		}
		if _, err := fmt.Fprintf(bw, "%s\t%d\t%s\t%d\t255\t%s\t*\t0\t0\t%s\t*\tNM:i:%d\n",
			qname, flag, rname, m.Pos+1, cigar, read, m.Distance); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WritePairedSAM emits resolved concordant pairs as standard paired-end SAM:
// two records per PairMapping sharing one QNAME, with the paired flags
// (0x1 paired, 0x2 proper, 0x10/0x20 strand and mate strand, 0x40/0x80
// first/last in pair), RNEXT '=' for a same-contig mate (every concordant
// pair; the mate's contig name would be emitted otherwise), PNEXT pointing
// at the mate, and TLEN signed positive on the leftmost record. SEQ is the
// aligned orientation (R2 of a forward-strand fragment prints
// reverse-complemented with 0x10 set, exactly as mappers emit FR
// libraries). names carries the pairs' FASTQ names (pair%d fallback); pairs
// supplies the mate sequences.
func WritePairedSAM(w io.Writer, ref *Reference, names []string, pairs []ReadPair, resolved []PairMapping) error {
	bw := bufio.NewWriter(w)
	if err := writeSAMHeader(bw, ref); err != nil {
		return err
	}
	for _, pm := range resolved {
		if pm.PairID < 0 || pm.PairID >= len(pairs) {
			return fmt.Errorf("mapper: pair mapping references pair %d of %d", pm.PairID, len(pairs))
		}
		rname1, err := contigName(ref, pm.Mate1.Contig)
		if err != nil {
			return err
		}
		rname2, err := contigName(ref, pm.Mate2.Contig)
		if err != nil {
			return err
		}
		// Concordant mates share a contig, so RNEXT collapses to '='; keep
		// the general form so a future discordant emitter stays correct.
		rnext1, rnext2 := "=", "="
		if pm.Mate1.Contig != pm.Mate2.Contig {
			rnext1, rnext2 = rname2, rname1
		}
		p := pairs[pm.PairID]
		fallback := fmt.Sprintf("pair%d", pm.PairID)
		qname := fallback
		if pm.PairID < len(names) {
			qname = samQName(names[pm.PairID], fallback)
			// Both records share one QNAME; drop R1's legacy mate suffix.
			if t := strings.TrimSuffix(qname, "/1"); t != "" {
				qname = t
			}
		}
		// Aligned-orientation sequences. Mate1's query is R1 itself; Mate2's
		// query is the reverse complement of R2, so the R2 record prints
		// revcomp(R2) when that query mapped forward (the usual FR case) and
		// R2 as sequenced when it mapped reversed (opposite-strand fragment).
		seq1 := p.R1
		if pm.Mate1.Reverse {
			seq1 = dna.ReverseComplement(p.R1)
		}
		seq2 := dna.ReverseComplement(p.R2)
		if pm.Mate2.Reverse {
			seq2 = p.R2
		}
		const paired, proper = 0x1, 0x2
		f1 := paired | proper | 0x40
		f2 := paired | proper | 0x80
		if pm.Mate1.Reverse {
			f1 |= 0x10
			f2 |= 0x20
		}
		if !pm.Mate2.Reverse { // original R2 is reverse-complemented in the alignment
			f2 |= 0x10
			f1 |= 0x20
		}
		tlen1, tlen2 := pm.Insert, -pm.Insert
		if pm.Mate2.Pos < pm.Mate1.Pos {
			tlen1, tlen2 = -pm.Insert, pm.Insert
		}
		cigar1 := pm.Mate1.CIGAR
		if cigar1 == "" {
			cigar1 = fmt.Sprintf("%dM", len(seq1))
		}
		cigar2 := pm.Mate2.CIGAR
		if cigar2 == "" {
			cigar2 = fmt.Sprintf("%dM", len(seq2))
		}
		if _, err := fmt.Fprintf(bw, "%s\t%d\t%s\t%d\t255\t%s\t%s\t%d\t%d\t%s\t*\tNM:i:%d\n",
			qname, f1, rname1, pm.Mate1.Pos+1, cigar1, rnext1, pm.Mate2.Pos+1, tlen1, seq1, pm.Mate1.Distance); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(bw, "%s\t%d\t%s\t%d\t255\t%s\t%s\t%d\t%d\t%s\t*\tNM:i:%d\n",
			qname, f2, rname2, pm.Mate2.Pos+1, cigar2, rnext2, pm.Mate1.Pos+1, tlen2, seq2, pm.Mate2.Distance); err != nil {
			return err
		}
	}
	return bw.Flush()
}
