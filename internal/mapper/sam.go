package mapper

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/dna"
)

// WriteSAM emits mappings as minimal single-reference SAM records (header,
// one line per mapping, NM tag carrying the verified edit distance), enough
// for downstream tooling to consume the reproduction's output.
func WriteSAM(w io.Writer, refName string, refLen int, reads [][]byte, mappings []Mapping) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "@HD\tVN:1.6\tSO:unsorted\n@SQ\tSN:%s\tLN:%d\n@PG\tID:gatekeeper-gpu-repro\tPN:gkmap\n",
		refName, refLen); err != nil {
		return err
	}
	for _, m := range mappings {
		if m.ReadID < 0 || m.ReadID >= len(reads) {
			return fmt.Errorf("mapper: mapping references read %d of %d", m.ReadID, len(reads))
		}
		read := reads[m.ReadID]
		flag := 0
		if m.Reverse {
			flag = 16 // SAM reverse-strand flag; SEQ is the aligned orientation
			read = dna.ReverseComplement(read)
		}
		cigar := m.CIGAR
		if cigar == "" {
			cigar = fmt.Sprintf("%dM", len(read))
		}
		if _, err := fmt.Fprintf(bw, "read%d\t%d\t%s\t%d\t255\t%s\t*\t0\t0\t%s\t*\tNM:i:%d\n",
			m.ReadID, flag, refName, m.Pos+1, cigar, read, m.Distance); err != nil {
			return err
		}
	}
	return bw.Flush()
}
