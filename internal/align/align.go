// Package align provides exact edit-distance computation for the
// reproduction. The paper uses Edlib's global alignment as ground truth for
// every accuracy experiment; Edlib is an implementation of Myers' 1999
// bit-vector algorithm, which this package reimplements (blocked variant for
// sequences longer than one machine word, per Hyyrö 2003). A banded
// dynamic-programming Levenshtein (Ukkonen) serves as the mapper's
// verification kernel, and a plain quadratic DP acts as the reference
// implementation in tests.
package align

import "math"

const (
	wordBits = 64
	highBit  = uint64(1) << (wordBits - 1)
)

// Distance returns the global (Needleman-Wunsch / Levenshtein) edit distance
// between a and b using the blocked Myers bit-vector algorithm. It matches
// Edlib's NW mode: every character is an ordinary symbol, so 'N' matches only
// 'N'.
func Distance(a, b []byte) int {
	m, n := len(a), len(b)
	if m == 0 {
		return n
	}
	if n == 0 {
		return m
	}
	// Myers' algorithm treats `a` as the pattern (rows). Keeping the pattern
	// as the shorter string minimizes the block count.
	if m > n {
		a, b = b, a
		m, n = n, m
	}
	blocks := (m + wordBits - 1) / wordBits
	peq := buildPeq(a, blocks)
	zero := make([]uint64, blocks)

	pv := make([]uint64, blocks)
	mv := make([]uint64, blocks)
	for i := range pv {
		pv[i] = ^uint64(0)
	}
	lastBit := uint((m - 1) % wordBits)
	score := m
	for j := 0; j < n; j++ {
		eqAll := peq[b[j]]
		if eqAll == nil {
			eqAll = zero
		}
		hin := 1 // global mode: the first DP row is 0,1,2,...
		for blk := 0; blk < blocks; blk++ {
			var hout int
			pv[blk], mv[blk], hout = advanceBlock(pv[blk], mv[blk], eqAll[blk], hin,
				blk == blocks-1, lastBit)
			hin = hout
		}
		score += hin
	}
	return score
}

// advanceBlock performs one column step of Hyyrö's blocked Myers algorithm on
// a single 64-row block. hin is the horizontal delta entering the block from
// above (-1, 0, +1); the returned hout is the horizontal delta at the block's
// last row — or, when last is set, at lastBit (the final pattern row, which
// may fall inside a partially used block).
func advanceBlock(pv, mv, eq uint64, hin int, last bool, lastBit uint) (pvOut, mvOut uint64, hout int) {
	var hinIsNeg, hinIsPos uint64
	if hin < 0 {
		hinIsNeg = 1
	} else if hin > 0 {
		hinIsPos = 1
	}
	xv := eq | mv
	eq |= hinIsNeg
	xh := (((eq & pv) + pv) ^ pv) | eq
	ph := mv | ^(xh | pv)
	mh := pv & xh

	outBit := uint(wordBits - 1)
	if last {
		outBit = lastBit
	}
	hout = int((ph>>outBit)&1) - int((mh>>outBit)&1)

	ph = ph<<1 | hinIsPos
	mh = mh<<1 | hinIsNeg
	pvOut = mh | ^(xv | ph)
	mvOut = ph & xv
	return pvOut, mvOut, hout
}

// buildPeq precomputes the match bitvectors: peq[c][blk] has bit i set when
// pattern row blk*64+i equals byte c. Characters absent from the pattern map
// to nil (treated as an all-zero row set).
func buildPeq(pattern []byte, blocks int) [256][]uint64 {
	var peq [256][]uint64
	for i, c := range pattern {
		if peq[c] == nil {
			peq[c] = make([]uint64, blocks)
		}
		peq[c][i/wordBits] |= uint64(1) << uint(i%wordBits)
	}
	return peq
}

// DistanceBanded computes the global edit distance between a and b if it
// does not exceed maxDist, using Ukkonen's banded DP in O((max+1)·len) time.
// It returns (distance, true) when distance ≤ maxDist and (0, false)
// otherwise. This is the mapper's verification kernel — the
// computationally-expensive stage the pre-alignment filter protects.
func DistanceBanded(a, b []byte, maxDist int) (int, bool) {
	m, n := len(a), len(b)
	if maxDist < 0 {
		return 0, false
	}
	if abs(m-n) > maxDist {
		return 0, false
	}
	if m == 0 {
		return n, n <= maxDist
	}
	if n == 0 {
		return m, m <= maxDist
	}
	// Band half-width: cells with |i-j| > maxDist can never contribute.
	const inf = math.MaxInt32
	width := 2*maxDist + 1
	prev := make([]int, width)
	cur := make([]int, width)
	// Row 0: D[0][j] = j for j in [0, maxDist].
	for k := 0; k < width; k++ {
		j := k - maxDist // column offset relative to diagonal of row 0
		if j >= 0 && j <= n && j <= maxDist {
			prev[k] = j
		} else {
			prev[k] = inf
		}
	}
	for i := 1; i <= m; i++ {
		rowMin := inf
		for k := 0; k < width; k++ {
			j := i + k - maxDist
			if j < 0 || j > n {
				cur[k] = inf
				continue
			}
			best := inf
			if j == 0 {
				best = i
			} else {
				// Substitution / match: prev row, same k (diagonal).
				if prev[k] != inf {
					cost := 1
					if a[i-1] == b[j-1] {
						cost = 0
					}
					best = prev[k] + cost
				}
				// Deletion from a: prev row, k+1.
				if k+1 < width && prev[k+1] != inf && prev[k+1]+1 < best {
					best = prev[k+1] + 1
				}
				// Insertion into a: current row, k-1.
				if k-1 >= 0 && cur[k-1] != inf && cur[k-1]+1 < best {
					best = cur[k-1] + 1
				}
			}
			cur[k] = best
			if best < rowMin {
				rowMin = best
			}
		}
		if rowMin > maxDist {
			return 0, false
		}
		prev, cur = cur, prev
	}
	k := n - m + maxDist
	if k < 0 || k >= width || prev[k] > maxDist {
		return 0, false
	}
	return prev[k], true
}

// DistanceDP is the plain quadratic Levenshtein DP. It exists as the
// unambiguous reference implementation for property tests and worked
// examples; production paths use Distance or DistanceBanded.
func DistanceDP(a, b []byte) int {
	m, n := len(a), len(b)
	prev := make([]int, n+1)
	cur := make([]int, n+1)
	for j := 0; j <= n; j++ {
		prev[j] = j
	}
	for i := 1; i <= m; i++ {
		cur[0] = i
		for j := 1; j <= n; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			best := prev[j-1] + cost
			if prev[j]+1 < best {
				best = prev[j] + 1
			}
			if cur[j-1]+1 < best {
				best = cur[j-1] + 1
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	return prev[n]
}

// HammingDistance counts positional mismatches between equal-length slices;
// it panics if lengths differ (callers validate first).
func HammingDistance(a, b []byte) int {
	if len(a) != len(b) {
		panic("align: HammingDistance on unequal lengths")
	}
	d := 0
	for i := range a {
		if a[i] != b[i] {
			d++
		}
	}
	return d
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
